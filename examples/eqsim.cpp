/**
 * @file
 * eqsim — the general-purpose simulator driver.
 *
 * Runs any roster kernel under any policy with GPU-configuration
 * overrides and prints a full measurement report (timing, energy
 * breakdown, warp states, cache/DRAM behaviour, VF residency).
 *
 * Usage:
 *   eqsim kernel=<name> [policy=<p>] [overrides...]
 *
 * Policies: baseline (default), sm-high, sm-low, mem-high, mem-low,
 *           blocks-<n>, equalizer-perf, equalizer-energy, dyncta, ccws
 *
 * Overrides:
 *   sms=<n> issue_width=<n> lsu_depth=<n> reg_ports=<n>
 *   scheduler=lrr|gto sm_mhz=<f> mem_mhz=<f>
 *   epoch=<cycles> hysteresis=<n> sample=<cycles>
 *   threads=<n> (simulation worker threads; 0 = hardware concurrency,
 *                1 = serial; results are identical for any value)
 *   fast_path=<0|1> (cycle-skipping fast path, default on; results are
 *                bit-identical either way — fast_path=0 is the slow
 *                oracle for debugging, see docs/FAST_PATH.md)
 *   warm_start=<n> (simulate the first n invocations under the
 *                baseline policy, fork the warmed GPU state, and run
 *                the rest under the requested policy; the report then
 *                covers only the suffix — see docs/SNAPSHOT.md)
 *   sweep_mode=warm|cold (with warm_start: fork the warmed state via
 *                checkpointing, or re-simulate the prefix cold; the
 *                two modes produce byte-identical metrics, which CI
 *                diffs via export=. The deprecated warm_mode= spelling
 *                and its fork/rerun values still parse, with a
 *                warning)
 *   search=exhaustive|model (VF x CTA autotune over the kernel's
 *                operating-point grid after the warm_start prefix —
 *                docs/AUTOTUNE.md. exhaustive simulates every grid
 *                point (warm forks); model fits a bilinear
 *                cycles+joules predictor to a few warmed probes and
 *                simulates only the predicted Pareto frontier, then
 *                reports measured best-performance and best-energy
 *                configurations. export= writes the unified sweep
 *                table)
 *   probe_points=<n> (search=model: warmed probe simulations the
 *                model is fitted to, default 6)
 *   pareto_slack=<f> (search=model: epsilon of the predicted Pareto
 *                frontier cut, default 0.05)
 *   export=<path> (export the measured metrics; format inferred from
 *                the suffix: .csv, .json, .trace.json)
 *   trace=<path> (record an epoch-level execution trace; a .json path
 *                gets Chrome trace_event output for Perfetto, any
 *                other suffix the binary format — docs/TRACING.md)
 *   trace_buf_kb=<n> trace_epoch=<cycles> (tracing tunables)
 *   tenants=<k1,k2,...> (multi-tenant co-run: one tenant per kernel on
 *                exclusive SM partitions — docs/MULTI_TENANT.md; the
 *                report gains a per-tenant table and export= writes
 *                per-tenant rows)
 *   sm_limit=<f1,f2,...> (per-tenant SM-utilization caps in (0, 1],
 *                matched positionally to tenants=; missing entries
 *                default to 1.0 = unlimited; 0 is rejected, values
 *                above 1.0 clamp to unlimited with a warning)
 *   partition=rr|blocked (SM partition policy for tenants=)
 *   serve=1 (request-serving mode — docs/SERVING.md: an open-loop
 *                arrival stream of kernel-launch requests dispatched
 *                onto the device(s) in bounded quanta; policy= then
 *                selects the dispatcher: fcfs, sjf, edf, llf or
 *                preempt)
 *   admission=none|predictive (reject requests whose predicted
 *                completion already busts their SLO; rejections are
 *                counted and exported, never silently dropped)
 *   devices=<n> (shard the admission queue across n forked warm
 *                devices, each with its own scheduler core; dispatch
 *                picks the lowest predicted-free device)
 *   arrival=poisson|replay rate=<req/Mcycle> requests=<n> seed=<n>
 *   serve_kernels=<k[:prio],...> (Poisson kernel mix with optional
 *                priorities; larger = more urgent)
 *   replay=<path> (request trace to replay; arrival=replay)
 *   arrival_out=<path> (write the generated schedule as a replayable
 *                request trace)
 *   slo_us=<f> quantum=<cycles> preempt_cost=<cycles>
 *   serve_scale=<f> (shrink factor for request grids, default 0.25)
 *   list=1 (print the roster, the knob registry and exit)
 *
 * Unknown keys are rejected with a "did you mean" suggestion;
 * deprecated spellings (hyphens, json=) parse with a warning.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "harness/co_run.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "serve/arrival.hh"
#include "serve/server.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace_reader.hh"

using namespace equalizer;

namespace
{

PolicySpec
resolvePolicy(const std::string &name, const Config &cfg)
{
    EqualizerConfig ecfg;
    ecfg.epochCycles =
        static_cast<Cycle>(cfg.getInt("epoch", 4096));
    ecfg.sampleInterval =
        static_cast<Cycle>(cfg.getInt("sample", 128));
    ecfg.hysteresis = static_cast<int>(cfg.getInt("hysteresis", 3));

    if (name == "baseline")
        return policies::baseline();
    if (name == "sm-high")
        return policies::smHigh();
    if (name == "sm-low")
        return policies::smLow();
    if (name == "mem-high")
        return policies::memHigh();
    if (name == "mem-low")
        return policies::memLow();
    if (name == "equalizer-perf")
        return policies::equalizer(EqualizerMode::Performance, ecfg);
    if (name == "equalizer-energy")
        return policies::equalizer(EqualizerMode::Energy, ecfg);
    if (name == "dyncta")
        return policies::dynCta();
    if (name == "ccws")
        return policies::ccws();
    if (name.rfind("blocks-", 0) == 0)
        return policies::staticBlocks(std::stoi(name.substr(7)));
    fatal("unknown policy '", name, "'");
}

/** The documented knob registry (printed by list=1). */
const std::vector<Knob> &
knobs()
{
    static const std::vector<Knob> k = {
        {"kernel", "roster kernel to run", {}},
        {"policy", "controller policy (baseline, equalizer-perf, ...)",
         {}},
        {"sms", "number of SMs", {}},
        {"issue_width", "instructions issued per SM cycle", {}},
        {"lsu_depth", "LSU queue depth", {}},
        {"reg_ports", "register file read ports", {}},
        {"sm_mhz", "nominal SM clock in MHz", {}},
        {"mem_mhz", "nominal memory clock in MHz", {}},
        {"scheduler", "warp scheduler: lrr or gto", {}},
        {"epoch", "Equalizer decision epoch in cycles", {}},
        {"hysteresis", "Equalizer hysteresis threshold", {}},
        {"sample", "warp-state sample interval in cycles", {}},
        {"threads", "simulation worker threads (0 = hardware)", {}},
        {"fast_path",
         "cycle-skipping fast path (1 = on, 0 = slow oracle)", {}},
        {"warm_start", "baseline invocations to warm up before the "
                       "requested policy", {}},
        {"sweep_mode", "warm-up handoff: warm (fork the warmed state) "
                       "or cold (re-simulate the prefix)",
         {"warm_mode"}},
        {"search",
         "VF x CTA autotune over the operating-point grid: exhaustive "
         "or model",
         {}},
        {"probe_points",
         "search=model: warmed probe simulations to fit the model to",
         {}},
        {"pareto_slack",
         "search=model: epsilon of the predicted Pareto frontier cut",
         {}},
        {"export", "write measured metrics (.csv/.json/.trace.json)",
         {"json"}},
        {"trace", "record an execution trace (.json = Chrome "
                  "trace_event, else binary)", {}},
        {"trace_buf_kb", "per-SM trace ring capacity in KiB", {}},
        {"trace_epoch", "trace drain interval in cycles (power of 2)",
         {}},
        {"tenants", "comma-separated kernels for a multi-tenant co-run",
         {}},
        {"sm_limit",
         "per-tenant SM-utilization caps in (0, 1], matched to tenants=",
         {}},
        {"partition", "tenant SM partition policy: rr or blocked", {}},
        {"serve",
         "request-serving mode: policy= becomes the dispatcher "
         "(fcfs, sjf, edf, llf, preempt)",
         {}},
        {"admission",
         "admission control: none or predictive (reject requests "
         "predicted to bust their SLO)",
         {}},
        {"devices",
         "devices to shard the admission queue across (forked warm "
         "clones)",
         {}},
        {"arrival", "arrival process: poisson or replay", {}},
        {"rate", "mean arrivals per million wall cycles", {}},
        {"requests", "requests to generate (arrival=poisson)", {}},
        {"seed", "arrival-stream random seed", {}},
        {"serve_kernels",
         "Poisson kernel mix: name[:priority],... (larger = more "
         "urgent)",
         {}},
        {"replay", "request trace to replay (arrival=replay)", {}},
        {"arrival_out",
         "write the generated schedule as a replayable request trace",
         {}},
        {"slo_us", "per-request latency deadline in microseconds", {}},
        {"quantum", "SM cycles per dispatcher quantum", {}},
        {"preempt_cost",
         "modeled save/restore cost of a preemption, in cycles", {}},
        {"serve_scale", "shrink factor for request grids", {}},
        {"list", "print the roster and knob registry, then exit", {}},
    };
    return k;
}

/** Split a comma-separated list, dropping empty entries. */
std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string item =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/**
 * The serve= mode (docs/SERVING.md): generate or replay an open-loop
 * arrival schedule, dispatch it onto devices= forked devices in
 * bounded quanta under the selected policy and admission control, and
 * report latency percentiles, throughput, rejections and SLO
 * violations.
 */
int
runServeMode(const Config &cfg, const GpuConfig &gcfg)
{
    const std::string policy_name = cfg.getString("policy", "fcfs");
    const ServePolicy policy = servePolicyFromString(policy_name);
    const AdmissionPolicy admission = admissionPolicyFromString(
        cfg.getString("admission", "none"));
    const int devices = static_cast<int>(cfg.getInt("devices", 1));
    if (devices < 1)
        fatal("devices= must be at least 1, got ", devices);
    const int threads = static_cast<int>(cfg.getInt("threads", 0));

    ArrivalSpec spec;
    spec.kind = arrivalKindFromString(cfg.getString("arrival", "poisson"));
    spec.count = static_cast<int>(cfg.getInt("requests", 32));
    spec.ratePerMcycle = cfg.getDouble("rate", 20.0);
    spec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    spec.replayPath = cfg.getString("replay", "");
    const double slo_us = cfg.getDouble("slo_us", 0.0);
    spec.sloCycles =
        static_cast<Cycle>(slo_us * gcfg.smNominalHz / 1e6);
    for (const auto &item :
         splitCsv(cfg.getString("serve_kernels", "prtcl-2:1,bp-1:0"))) {
        ArrivalMix mix;
        const std::size_t colon = item.find(':');
        mix.kernel = item.substr(0, colon);
        if (colon != std::string::npos)
            mix.priority = std::stoi(item.substr(colon + 1));
        KernelZoo::byName(mix.kernel); // validate early
        spec.mix.push_back(std::move(mix));
    }
    if (spec.kind == ArrivalKind::Replay && spec.replayPath.empty())
        fatal("arrival=replay needs replay=<path>");

    const std::vector<ServeRequest> requests = generateArrivals(spec);
    if (const std::string out = cfg.getString("arrival_out", "");
        !out.empty())
        writeRequestTrace(out, requests);

    // Device 0 is built cold; every further device is a warm fork of
    // it (identical config fingerprint, so preemption shelves restore
    // on any device). The fork happens before the tracer attaches:
    // traces cover device 0 only.
    std::vector<std::unique_ptr<GpuTop>> gpus;
    for (int d = 0; d < devices; ++d) {
        gpus.push_back(
            std::make_unique<GpuTop>(gcfg, PowerConfig::gtx480()));
        if (d > 0)
            gpus.back()->forkFrom(*gpus.front());
    }
    GpuTop &gpu = *gpus.front();
    std::unique_ptr<ParallelExecutor> executor;
    if (threads != 1) {
        // One shared worker pool: the serve loop steps one device at a
        // time, so the pool is never contended across devices.
        executor = std::make_unique<ParallelExecutor>(threads);
        for (auto &g : gpus)
            g->setParallelExecutor(executor.get());
    }

    const std::string trace_path = cfg.getString("trace", "");
    TraceConfig tcfg;
    tcfg.bufKb = static_cast<std::size_t>(cfg.getInt("trace_buf_kb", 64));
    tcfg.epochCycles =
        static_cast<Cycle>(cfg.getInt("trace_epoch", 4096));
    std::unique_ptr<MemoryTraceSink> trace_mem;
    std::unique_ptr<FileTraceSink> trace_file;
    std::unique_ptr<Tracer> tracer;
    if (!trace_path.empty()) {
        if (chromeTracePath(trace_path)) {
            trace_mem = std::make_unique<MemoryTraceSink>();
            tracer = std::make_unique<Tracer>(tcfg, *trace_mem);
        } else {
            trace_file = std::make_unique<FileTraceSink>(trace_path);
            tracer = std::make_unique<Tracer>(tcfg, *trace_file);
        }
        gpu.setTracer(tracer.get());
    }

    ServeOptions opts;
    opts.policy = policy;
    opts.admission = admission;
    opts.quantumCycles =
        static_cast<Cycle>(cfg.getInt("quantum", 2048));
    opts.preemptSaveCycles =
        static_cast<Cycle>(cfg.getInt("preempt_cost", 512));
    opts.preemptRestoreCycles = opts.preemptSaveCycles;
    opts.kernelScale = cfg.getDouble("serve_scale", 0.25);

    std::cout << "serving " << requests.size() << " request(s), "
              << toString(spec.kind) << " arrivals, dispatcher "
              << toString(policy) << ", admission "
              << toString(admission) << ", " << devices
              << " device(s) x " << gcfg.numSms << " SMs, "
              << gpu.simThreads() << " sim thread(s)\n";

    std::vector<GpuTop *> gpu_ptrs;
    for (auto &g : gpus)
        gpu_ptrs.push_back(g.get());
    RequestServer server(gpu_ptrs, opts);
    const ServeReport rep = server.serve(requests);

    if (tracer) {
        gpu.setTracer(nullptr);
        tracer->finish();
        if (trace_mem) {
            writeChromeTraceFile(
                TraceReader::fromBytes(trace_mem->serialize()),
                trace_path);
        }
        std::cout << "trace: " << tracer->eventsRecorded()
                  << " events -> " << trace_path;
        if (tracer->eventsDropped() > 0)
            std::cout << " (" << tracer->eventsDropped()
                      << " dropped; raise trace_buf_kb)";
        std::cout << '\n';
    }

    if (const std::string export_path = cfg.getString("export", "");
        !export_path.empty()) {
        ExportSink sink = ExportSink::serveTable();
        const ServeSummary &s = rep.summary;
        sink.meta("policy", ExportCell::str(s.policy));
        sink.meta("admission", ExportCell::str(s.admission));
        sink.meta("devices", ExportCell::integer(s.devices));
        sink.meta("arrival", ExportCell::str(toString(spec.kind)));
        sink.meta("seed", ExportCell::integer(
                              static_cast<std::int64_t>(spec.seed)));
        sink.meta("requests", ExportCell::integer(s.requests));
        sink.meta("completed", ExportCell::integer(s.completed));
        sink.meta("rejected", ExportCell::integer(s.rejected));
        sink.meta("rejection_rate", ExportCell::num(s.rejectionRate));
        sink.meta("preemptions", ExportCell::integer(s.preemptions));
        sink.meta("wall_cycles",
                  ExportCell::integer(
                      static_cast<std::int64_t>(s.wallCycles)));
        sink.meta("p50_latency",
                  ExportCell::integer(
                      static_cast<std::int64_t>(s.p50Latency)));
        sink.meta("p95_latency",
                  ExportCell::integer(
                      static_cast<std::int64_t>(s.p95Latency)));
        sink.meta("p99_latency",
                  ExportCell::integer(
                      static_cast<std::int64_t>(s.p99Latency)));
        sink.meta("mean_latency", ExportCell::num(s.meanLatency));
        sink.meta("throughput_per_mcycle",
                  ExportCell::num(s.throughputPerMcycle));
        sink.meta("slo_violations",
                  ExportCell::integer(s.sloViolations));
        sink.meta("slo_violation_rate",
                  ExportCell::num(s.sloViolationRate));
        for (const auto &d : rep.deviceStats) {
            const std::string p = "dev" + std::to_string(d.device);
            sink.meta(p + "_completed",
                      ExportCell::integer(d.completed));
            sink.meta(p + "_preemptions",
                      ExportCell::integer(d.preemptions));
            sink.meta(p + "_executed_cycles",
                      ExportCell::integer(static_cast<std::int64_t>(
                          d.executedCycles)));
            sink.meta(p + "_wall_cycles",
                      ExportCell::integer(static_cast<std::int64_t>(
                          d.wallCycles)));
        }
        for (const auto &rec : rep.records)
            sink.addServeRequest(s.policy, rec);
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
    }

    const ServeSummary &s = rep.summary;
    banner("serving");
    TablePrinter t({"metric", "value"});
    t.row({"dispatcher", s.policy});
    t.row({"admission", s.admission});
    t.row({"devices", std::to_string(s.devices)});
    t.row({"requests", std::to_string(s.requests)});
    t.row({"completed", std::to_string(s.completed)});
    t.row({"rejected", std::to_string(s.rejected)});
    t.row({"preemptions", std::to_string(s.preemptions)});
    t.row({"wall cycles", std::to_string(s.wallCycles)});
    t.row({"executed cycles", std::to_string(s.executedCycles)});
    t.row({"throughput", fmt(s.throughputPerMcycle, 3) + " req/Mcycle"});
    t.print();

    if (s.devices > 1) {
        banner("devices");
        TablePrinter dev({"device", "completed", "preemptions",
                          "executed cycles", "wall cycles"});
        for (const auto &d : rep.deviceStats)
            dev.row({std::to_string(d.device),
                     std::to_string(d.completed),
                     std::to_string(d.preemptions),
                     std::to_string(d.executedCycles),
                     std::to_string(d.wallCycles)});
        dev.print();
    }

    banner("latency (SM cycles)");
    TablePrinter lat({"percentile", "cycles"});
    lat.row({"p50", std::to_string(s.p50Latency)});
    lat.row({"p95", std::to_string(s.p95Latency)});
    lat.row({"p99", std::to_string(s.p99Latency)});
    lat.row({"max", std::to_string(s.maxLatency)});
    lat.row({"mean", fmt(s.meanLatency, 1)});
    lat.print();

    if (spec.sloCycles > 0 || s.sloViolations > 0) {
        banner("SLO");
        TablePrinter slo({"metric", "value"});
        slo.row({"deadline", std::to_string(spec.sloCycles) +
                                 " cycles (" + fmt(slo_us, 1) + " us)"});
        slo.row({"violations", std::to_string(s.sloViolations)});
        slo.row({"violation rate", pct(s.sloViolationRate)});
        slo.print();
    }
    return 0;
}

/**
 * The search= mode (docs/AUTOTUNE.md): sweep the kernel's VF x CTA
 * operating-point grid after the warm_start prefix — exhaustively or
 * model-guided — and report the measured best-performance and
 * best-energy configurations plus the predicted-vs-measured table.
 */
int
runSearchMode(const Config &cfg, const GpuConfig &gcfg)
{
    const std::string search = cfg.getString("search", "");
    if (search != "exhaustive" && search != "model")
        fatal("search must be 'exhaustive' or 'model', got '", search,
              "'");
    const ZooEntry &entry =
        KernelZoo::byName(cfg.getString("kernel", "kmn"));
    const int threads = static_cast<int>(cfg.getInt("threads", 0));
    ExperimentRunner runner(gcfg, PowerConfig::gtx480(), threads);

    SweepPlan plan;
    plan.kernel = entry.params;
    plan.strategy = search == "model" ? SweepStrategy::Model
                                      : SweepStrategy::Warm;
    plan.prefixPolicy = policies::baseline();
    plan.prefixInvocations =
        static_cast<int>(cfg.getInt("warm_start", 2));
    plan.probePoints = static_cast<int>(cfg.getInt("probe_points", 6));
    plan.paretoSlack = cfg.getDouble("pareto_slack", 0.05);
    if (plan.prefixInvocations >= plan.kernel.invocationCount()) {
        // Most roster kernels run once; a warm-up prefix needs a
        // longer schedule, so synthesize one (the bench_fork_sweep
        // trick): warm_start baseline invocations plus a tuned tail.
        plan.kernel.invocations.assign(
            static_cast<std::size_t>(plan.prefixInvocations + 1),
            InvocationMod{});
    }

    std::cout << "autotune (" << search << ") of " << entry.params.name
              << " after " << plan.prefixInvocations
              << " warm-up invocation(s), " << gcfg.numSms << " SMs, "
              << runner.threads() << " sim thread(s)\n";

    const SweepResult res = runner.runSweep(plan);
    int simulated = 0;
    for (const auto &row : res.table)
        simulated += row.simulated ? 1 : 0;

    if (const std::string export_path = cfg.getString("export", "");
        !export_path.empty()) {
        ExportSink sink = ExportSink::sweepTable();
        sink.meta("kernel", ExportCell::str(entry.params.name));
        sink.meta("search", ExportCell::str(search));
        sink.meta("warm_start",
                  ExportCell::integer(plan.prefixInvocations));
        sink.meta("grid_points", ExportCell::integer(
                                     static_cast<std::int64_t>(
                                         res.table.size())));
        sink.meta("simulated_points", ExportCell::integer(simulated));
        sink.meta("best_perf", ExportCell::integer(res.bestPerf));
        sink.meta("best_energy", ExportCell::integer(res.bestEnergy));
        if (search == "model") {
            sink.meta("fit_error_seconds",
                      ExportCell::num(res.fitErrorSeconds));
            sink.meta("fit_error_joules",
                      ExportCell::num(res.fitErrorJoules));
        }
        for (const auto &row : res.table)
            sink.addSweepPoint(row);
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
    }

    banner("autotune");
    TablePrinter t({"metric", "value"});
    t.row({"grid points", std::to_string(res.table.size())});
    t.row({"simulated points", std::to_string(simulated)});
    if (search == "model") {
        t.row({"fit error (time)", pct(res.fitErrorSeconds)});
        t.row({"fit error (energy)", pct(res.fitErrorJoules)});
        t.row({"probe IPC", fmt(res.probeIpc, 3)});
        t.row({"probe memory pressure",
               fmt(res.probeMemoryPressure, 3)});
    }
    if (res.bestPerf >= 0) {
        const auto &p = res.table[static_cast<std::size_t>(res.bestPerf)];
        t.row({"best perf", p.policy + " (" +
                                fmt(p.measuredSeconds * 1e3, 4) +
                                " ms)"});
    }
    if (res.bestEnergy >= 0) {
        const auto &e =
            res.table[static_cast<std::size_t>(res.bestEnergy)];
        t.row({"best energy", e.policy + " (" +
                                  fmt(e.measuredJoules, 5) + " J)"});
    }
    t.print();

    banner("simulated points");
    TablePrinter pts({"point", "policy", "pred ms", "meas ms", "pred J",
                      "meas J"});
    for (const auto &row : res.table) {
        if (!row.simulated)
            continue;
        pts.row({std::to_string(row.id), row.policy,
                 search == "model" ? fmt(row.predictedSeconds * 1e3, 4)
                                   : std::string("-"),
                 fmt(row.measuredSeconds * 1e3, 4),
                 search == "model" ? fmt(row.predictedJoules, 5)
                                   : std::string("-"),
                 fmt(row.measuredJoules, 5)});
    }
    pts.print();
    return 0;
}

/**
 * The tenants= mode: partition the device, co-run one kernel per
 * tenant and report/export per-tenant attribution.
 */
int
runTenantsMode(const Config &cfg, const GpuConfig &gcfg)
{
    const std::vector<std::string> kernels =
        splitCsv(cfg.getString("tenants", ""));
    const std::vector<std::string> limits =
        splitCsv(cfg.getString("sm_limit", ""));
    if (limits.size() > kernels.size())
        fatal("sm_limit= has ", limits.size(), " entries for ",
              kernels.size(), " tenants");
    const PartitionPolicy partition =
        partitionPolicyFromName(cfg.getString("partition", "rr"));
    const std::string policy_name = cfg.getString("policy", "baseline");
    const PolicySpec policy = resolvePolicy(policy_name, cfg);
    const int threads = static_cast<int>(cfg.getInt("threads", 0));

    std::vector<CoRunTenant> tenants;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        CoRunTenant t;
        t.kernel = kernels[i];
        t.name = "t" + std::to_string(i);
        if (i < limits.size())
            t.smLimit = parseSmLimitKnob(limits[i]);
        tenants.push_back(std::move(t));
    }

    GpuTop gpu(gcfg, PowerConfig::gtx480());
    std::unique_ptr<ParallelExecutor> executor;
    if (threads != 1) {
        executor = std::make_unique<ParallelExecutor>(threads);
        gpu.setParallelExecutor(executor.get());
    }
    std::unique_ptr<GpuController> controller = policy.build();
    gpu.setController(controller.get());

    // trace=: same wiring as the single-kernel mode — .json converts
    // to Chrome trace_event at the end, anything else streams binary.
    const std::string trace_path = cfg.getString("trace", "");
    TraceConfig tcfg;
    tcfg.bufKb = static_cast<std::size_t>(cfg.getInt("trace_buf_kb", 64));
    tcfg.epochCycles =
        static_cast<Cycle>(cfg.getInt("trace_epoch", 4096));
    std::unique_ptr<MemoryTraceSink> trace_mem;
    std::unique_ptr<FileTraceSink> trace_file;
    std::unique_ptr<Tracer> tracer;
    if (!trace_path.empty()) {
        if (chromeTracePath(trace_path)) {
            trace_mem = std::make_unique<MemoryTraceSink>();
            tracer = std::make_unique<Tracer>(tcfg, *trace_mem);
        } else {
            trace_file = std::make_unique<FileTraceSink>(trace_path);
            tracer = std::make_unique<Tracer>(tcfg, *trace_file);
        }
        gpu.setTracer(tracer.get());
    }

    std::cout << "co-run of " << kernels.size() << " tenant(s), policy "
              << policy.name << ", " << gcfg.numSms << " SMs, "
              << gpu.simThreads() << " sim thread(s)\n";

    CoRunOptions opts;
    opts.partition = partition;
    const CoRunResult r = runCoRun(gpu, tenants, opts);

    if (tracer) {
        gpu.setTracer(nullptr);
        tracer->finish();
        if (trace_mem) {
            writeChromeTraceFile(
                TraceReader::fromBytes(trace_mem->serialize()),
                trace_path);
        }
        std::cout << "trace: " << tracer->eventsRecorded()
                  << " events -> " << trace_path;
        if (tracer->eventsDropped() > 0)
            std::cout << " (" << tracer->eventsDropped()
                      << " dropped; raise trace_buf_kb)";
        std::cout << '\n';
    }

    if (const std::string export_path = cfg.getString("export", "");
        !export_path.empty()) {
        ExportSink sink = ExportSink::tenantTable();
        sink.meta("policy", ExportCell::str(policy.name));
        sink.meta("partition",
                  ExportCell::str(cfg.getString("partition", "rr")));
        sink.meta("co_run", ExportCell::str(r.combined.kernel));
        sink.meta("sm_cycles",
                  ExportCell::integer(
                      static_cast<std::int64_t>(r.combined.smCycles)));
        for (const auto &t : r.tenants)
            sink.addTenantMetrics(policy.name, t);
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
    }

    banner("co-run");
    TablePrinter timing({"metric", "value"});
    timing.row({"label", r.combined.kernel});
    timing.row({"time", fmt(r.combined.seconds * 1e3, 4) + " ms"});
    timing.row({"SM cycles", std::to_string(r.combined.smCycles)});
    timing.row({"instructions",
                std::to_string(r.combined.instructions)});
    timing.row({"total energy",
                fmt(r.combined.totalJoules(), 5) + " J"});
    timing.print();

    banner("tenants");
    TablePrinter tt({"tenant", "kernel", "sm_limit", "SMs", "dispatched",
                     "blocks done", "instructions", "occupancy",
                     "limited cycles"});
    for (const auto &t : r.tenants)
        tt.row({t.tenant, t.kernels, fmt(t.smLimit, 2),
                std::to_string(t.smCount),
                std::to_string(t.dispatchedBlocks),
                std::to_string(t.blocksCompleted),
                std::to_string(t.instructions), pct(t.occupancyShare()),
                std::to_string(t.limitedCycles)});
    tt.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args, knobs());

    if (cfg.getBool("list", false)) {
        TablePrinter t({"kernel", "category", "application", "W_cta",
                        "max blocks", "grid", "invocations"});
        for (const auto &e : KernelZoo::all())
            t.row({e.params.name,
                   kernelCategoryName(e.params.category), e.application,
                   std::to_string(e.params.warpsPerBlock),
                   std::to_string(e.params.maxBlocksPerSm),
                   std::to_string(e.params.totalBlocks),
                   std::to_string(e.params.invocationCount())});
        t.print();
        std::cout << "\nknobs:\n" << Config::knobUsage(knobs());
        return 0;
    }

    const std::string kernel_name = cfg.getString("kernel", "kmn");
    const std::string policy_name = cfg.getString("policy", "baseline");

    GpuConfig gcfg = GpuConfig::gtx480();
    // (gcfg overrides below also apply to the tenants= co-run mode.)
    gcfg.numSms = static_cast<int>(cfg.getInt("sms", gcfg.numSms));
    gcfg.issueWidth =
        static_cast<int>(cfg.getInt("issue_width", gcfg.issueWidth));
    gcfg.lsuQueueDepth =
        static_cast<int>(cfg.getInt("lsu_depth", gcfg.lsuQueueDepth));
    gcfg.regReadPorts =
        static_cast<int>(cfg.getInt("reg_ports", gcfg.regReadPorts));
    gcfg.smNominalHz =
        cfg.getDouble("sm_mhz", gcfg.smNominalHz / 1e6) * 1e6;
    gcfg.memNominalHz =
        cfg.getDouble("mem_mhz", gcfg.memNominalHz / 1e6) * 1e6;
    if (cfg.getString("scheduler", "lrr") == "gto")
        gcfg.scheduler = SchedulerPolicy::GreedyThenOldest;
    gcfg.fastPath = cfg.getBool("fast_path", gcfg.fastPath);

    if (cfg.getBool("serve", false))
        return runServeMode(cfg, gcfg);

    if (!cfg.getString("tenants", "").empty())
        return runTenantsMode(cfg, gcfg);

    if (!cfg.getString("search", "").empty())
        return runSearchMode(cfg, gcfg);

    const ZooEntry &entry = KernelZoo::byName(kernel_name);
    const int threads = static_cast<int>(cfg.getInt("threads", 0));
    const int warm_start =
        static_cast<int>(cfg.getInt("warm_start", 0));
    std::string sweep_mode = cfg.getString("sweep_mode", "warm");
    if (sweep_mode == "fork" || sweep_mode == "rerun") {
        const std::string canonical =
            sweep_mode == "fork" ? "warm" : "cold";
        warn("sweep_mode value '", sweep_mode,
             "' is deprecated; use sweep_mode=", canonical);
        sweep_mode = canonical;
    }
    const SweepStrategy strategy = sweepStrategyFromName(sweep_mode);
    if (strategy == SweepStrategy::Model)
        fatal("sweep_mode=model is not a warm-start handoff; use "
              "search=model for the autotuner");
    ExperimentRunner runner(gcfg, PowerConfig::gtx480(), threads);
    const PolicySpec policy = resolvePolicy(policy_name, cfg);

    // trace=: a .json path records in memory and converts to Chrome
    // trace_event JSON at the end; anything else streams the binary
    // format directly to disk.
    const std::string trace_path = cfg.getString("trace", "");
    TraceConfig tcfg;
    tcfg.bufKb =
        static_cast<std::size_t>(cfg.getInt("trace_buf_kb", 64));
    tcfg.epochCycles =
        static_cast<Cycle>(cfg.getInt("trace_epoch", 4096));
    std::unique_ptr<MemoryTraceSink> trace_mem;
    std::unique_ptr<FileTraceSink> trace_file;
    std::unique_ptr<Tracer> tracer;
    if (!trace_path.empty()) {
        if (chromeTracePath(trace_path)) {
            trace_mem = std::make_unique<MemoryTraceSink>();
            tracer = std::make_unique<Tracer>(tcfg, *trace_mem);
        } else {
            trace_file = std::make_unique<FileTraceSink>(trace_path);
            tracer = std::make_unique<Tracer>(tcfg, *trace_file);
        }
        runner.setTracer(tracer.get());
    }

    std::cout << "kernel " << kernel_name << " ("
              << kernelCategoryName(entry.params.category) << "), policy "
              << policy.name << ", " << gcfg.numSms << " SMs, "
              << runner.threads() << " sim thread(s)";
    if (warm_start > 0) {
        std::cout << ", warm start after " << warm_start
                  << " baseline invocation(s) (" << sweep_mode << ")";
    }
    std::cout << '\n';

    AppRunResult r;
    if (warm_start >= entry.params.invocationCount()) {
        fatal("warm_start=", warm_start, " leaves no invocations: ",
              kernel_name, " has ", entry.params.invocationCount());
    }
    if (warm_start > 0) {
        SweepPlan plan;
        plan.kernel = entry.params;
        plan.strategy = strategy;
        plan.prefixPolicy = policies::baseline();
        plan.prefixInvocations = warm_start;
        plan.points = {policy};
        const auto sweep = runner.runSweep(plan);
        r = sweep.points.at(0);
    } else {
        r = runner.run(entry.params, policy);
    }
    const auto &m = r.total;

    if (tracer) {
        tracer->finish();
        if (trace_mem) {
            writeChromeTraceFile(
                TraceReader::fromBytes(trace_mem->serialize()),
                trace_path);
        }
        std::cout << "trace: " << tracer->eventsRecorded()
                  << " events -> " << trace_path;
        if (tracer->eventsDropped() > 0)
            std::cout << " (" << tracer->eventsDropped()
                      << " dropped; raise trace_buf_kb)";
        std::cout << '\n';
    }

    if (const std::string export_path = cfg.getString("export", "");
        !export_path.empty()) {
        ExportSink sink = ExportSink::metricsTable();
        sink.meta("kernel", ExportCell::str(kernel_name));
        sink.meta("policy", ExportCell::str(policy.name));
        sink.addResult(kernel_name, policy.name, r.total,
                       r.invocations);
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
    }

    banner("timing");
    TablePrinter timing({"metric", "value"});
    timing.row({"time", fmt(m.seconds * 1e3, 4) + " ms"});
    timing.row({"SM cycles", std::to_string(m.smCycles)});
    timing.row({"memory cycles", std::to_string(m.memCycles)});
    timing.row({"instructions", std::to_string(m.instructions)});
    timing.row({"IPC (all SMs)", fmt(m.ipc(), 3)});
    timing.row({"fast-forwarded cycles",
                std::to_string(m.fastForwardedCycles)});
    timing.row({"invocations",
                std::to_string(r.invocations.size())});
    timing.print();

    banner("energy");
    TablePrinter energy({"component", "value"});
    energy.row({"dynamic", fmt(m.dynamicJoules, 5) + " J"});
    energy.row({"static (leak+standby)", fmt(m.staticJoules, 5) + " J"});
    energy.row({"total", fmt(m.totalJoules(), 5) + " J"});
    energy.row({"mean power",
                fmt(m.totalJoules() / m.seconds, 1) + " W"});
    energy.row({"dram power-down", pct(m.dramPowerDownFraction)});
    energy.print();

    banner("warp states (fraction of active warp-cycles)");
    const double active = static_cast<double>(m.outcomeTotals.active);
    TablePrinter states({"state", "fraction"});
    if (active > 0) {
        states.row({"waiting",
                    pct(static_cast<double>(m.outcomeTotals.waiting) /
                        active)});
        states.row({"excess-mem (X_mem)",
                    pct(static_cast<double>(m.outcomeTotals.excessMem) /
                        active)});
        states.row({"excess-alu (X_alu)",
                    pct(static_cast<double>(m.outcomeTotals.excessAlu) /
                        active)});
        states.row({"issued",
                    pct(static_cast<double>(m.outcomeTotals.issued) /
                        active)});
    }
    states.print();

    banner("memory hierarchy");
    TablePrinter mem({"metric", "value"});
    mem.row({"L1 hit rate", pct(m.l1HitRate())});
    mem.row({"L1 accesses", std::to_string(m.l1Hits + m.l1Misses)});
    mem.row({"L2 hits / misses", std::to_string(m.l2Hits) + " / " +
                                     std::to_string(m.l2Misses)});
    mem.row({"DRAM accesses", std::to_string(m.dramAccesses)});
    mem.row({"DRAM row-hit rate",
             pct(m.dramAccesses
                     ? static_cast<double>(m.dramRowHits) / m.dramAccesses
                     : 0.0)});
    mem.print();

    banner("VF residency");
    TablePrinter vf({"domain", "low", "normal", "high"});
    Tick total = 0;
    for (auto t : m.smResidency)
        total += t;
    auto frac = [total](Tick t) {
        return total ? pct(static_cast<double>(t) / total) : pct(0.0);
    };
    vf.row({"SM", frac(m.smResidency[0]), frac(m.smResidency[1]),
            frac(m.smResidency[2])});
    vf.row({"memory", frac(m.memResidency[0]), frac(m.memResidency[1]),
            frac(m.memResidency[2])});
    vf.print();
    return 0;
}
