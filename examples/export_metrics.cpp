/**
 * @file
 * Batch measurement export: run one or more kernels under a set of
 * policies and emit machine-readable CSV/JSON for external plotting
 * (e.g. regenerating the paper's figures with matplotlib).
 *
 * Usage: export_metrics [kernel=<name>|all] [format=csv|json]
 *                       [out=<path>]
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "common/config.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string which = cfg.getString("kernel", "kmn");
    const std::string format = cfg.getString("format", "csv");
    const std::string out_path = cfg.getString("out", "");

    std::vector<std::string> kernels;
    if (which == "all")
        kernels = KernelZoo::names();
    else
        kernels.push_back(which);

    const std::vector<PolicySpec> policies = {
        policies::baseline(),
        policies::smHigh(),
        policies::memHigh(),
        policies::equalizer(EqualizerMode::Performance),
        policies::equalizer(EqualizerMode::Energy),
    };

    ExperimentRunner runner;
    MetricsExporter exporter;
    for (const auto &name : kernels) {
        const auto &entry = KernelZoo::byName(name);
        for (const auto &policy : policies) {
            std::cerr << "[export] " << name << " / " << policy.name
                      << '\n';
            const auto r = runner.run(entry.params, policy);
            exporter.addResult(name, policy.name, r.total, r.invocations);
        }
    }

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            fatal("cannot open '", out_path, "' for writing");
        os = &file;
    }
    if (format == "json")
        exporter.writeJson(*os);
    else
        exporter.writeCsv(*os);
    if (!out_path.empty())
        std::cerr << "[export] wrote " << exporter.size() << " rows to "
                  << out_path << '\n';
    return 0;
}
