/**
 * @file
 * Batch measurement export: run one or more kernels under a set of
 * policies and emit machine-readable CSV/JSON/trace-event output for
 * external plotting (e.g. regenerating the paper's figures with
 * matplotlib, or loading a sweep into Perfetto).
 *
 * Usage: export_metrics [kernel=<name>|all]
 *                       [format=csv|json|trace-event] [out=<path>]
 *
 * When out= is given and format= is not, the format is inferred from
 * the path suffix (.csv, .json, .trace.json).
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "common/config.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string which = cfg.getString("kernel", "kmn");
    const std::string format_name = cfg.getString("format", "");
    const std::string out_path = cfg.getString("out", "");

    ExportFormat format = ExportFormat::Csv;
    if (!format_name.empty())
        format = exportFormatFromName(format_name);
    else if (!out_path.empty())
        format = exportFormatForPath(out_path, ExportFormat::Csv);

    std::vector<std::string> kernels;
    if (which == "all")
        kernels = KernelZoo::names();
    else
        kernels.push_back(which);

    const std::vector<PolicySpec> policies = {
        policies::baseline(),
        policies::smHigh(),
        policies::memHigh(),
        policies::equalizer(EqualizerMode::Performance),
        policies::equalizer(EqualizerMode::Energy),
    };

    ExperimentRunner runner;
    ExportSink sink = ExportSink::metricsTable();
    sink.meta("kernel", ExportCell::str(which));
    for (const auto &name : kernels) {
        const auto &entry = KernelZoo::byName(name);
        for (const auto &policy : policies) {
            std::cerr << "[export] " << name << " / " << policy.name
                      << '\n';
            const auto r = runner.run(entry.params, policy);
            sink.addResult(name, policy.name, r.total, r.invocations);
        }
    }

    if (!out_path.empty()) {
        sink.writeFile(out_path, format);
        std::cerr << "[export] wrote " << sink.rowCount() << " rows to "
                  << out_path << " (" << exportFormatName(format)
                  << ")\n";
    } else {
        sink.write(std::cout, format);
    }
    return 0;
}
