/**
 * @file
 * Concurrent-kernel scenario: two kernels with opposite resource
 * appetites share the GPU, split across SM partitions — the situation
 * the paper cites when motivating per-SM decision making.
 *
 * Shows (a) that Equalizer's per-SM block tuning stays independent per
 * kernel, and (b) how the single chip-wide VRM must compromise between
 * the two kernels' frequency preferences (majority vote).
 *
 * Uses the deprecated runKernelsConcurrent() shim for brevity; for
 * the full tenant machinery (utilization caps, partition policies,
 * per-tenant attribution) see docs/MULTI_TENANT.md and
 * `eqsim tenants=`.
 *
 * Usage: multi_kernel [a=<kernel>] [b=<kernel>] [mode=perf|energy]
 */

#include <iostream>
#include <vector>

#include "common/config.hh"
#include "equalizer/equalizer.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string name_a = cfg.getString("a", "mri-q"); // compute
    const std::string name_b = cfg.getString("b", "lbm");   // memory
    const std::string mode_name = cfg.getString("mode", "perf");

    const auto &entry_a = KernelZoo::byName(name_a);
    const auto &entry_b = KernelZoo::byName(name_b);
    std::cout << "co-run: " << name_a << " ("
              << kernelCategoryName(entry_a.params.category) << ") + "
              << name_b << " ("
              << kernelCategoryName(entry_b.params.category)
              << "), SMs split half/half\n";

    SyntheticKernel ka(entry_a.params);
    SyntheticKernel kb(entry_b.params);

    // Baseline co-run.
    GpuTop base_gpu;
    const RunMetrics base = base_gpu.runKernelsConcurrent({&ka, &kb});

    // Equalizer-managed co-run.
    EqualizerConfig ecfg;
    ecfg.mode = mode_name == "energy" ? EqualizerMode::Energy
                                      : EqualizerMode::Performance;
    EqualizerEngine eq(ecfg);
    GpuTop eq_gpu;
    eq_gpu.setController(&eq);

    // Track per-partition block targets to show independent tuning.
    int min_target_a = 99;
    int min_target_b = 99;
    eq_gpu.setCycleObserver([&](GpuTop &g) {
        min_target_a = std::min(min_target_a, g.sm(0).targetBlocks());
        min_target_b = std::min(min_target_b, g.sm(1).targetBlocks());
    });
    const RunMetrics tuned = eq_gpu.runKernelsConcurrent({&ka, &kb});

    TablePrinter t({"config", "time(ms)", "energy(J)", "speedup",
                    "E_base/E"});
    t.row({"baseline co-run", fmt(base.seconds * 1e3, 3),
           fmt(base.totalJoules(), 4), "1.000", "1.000"});
    t.row({eq.name(), fmt(tuned.seconds * 1e3, 3),
           fmt(tuned.totalJoules(), 4), fmt(speedupOver(base, tuned), 3),
           fmt(energyEfficiencyOver(base, tuned), 3)});
    t.print();

    std::cout << "\nminimum block target reached: " << name_a
              << " partition = " << min_target_a << ", " << name_b
              << " partition = " << min_target_b << '\n';
    std::cout << "final VF states (global VRM compromise): SM "
              << vfStateName(eq_gpu.smDomain().state()) << ", memory "
              << vfStateName(eq_gpu.memDomain().state()) << '\n';
    std::cout << "(mixed-kernel co-runs are why the paper suggests per-SM"
                 " VRMs when affordable, Section V-A1)\n";
    return 0;
}
