/**
 * @file
 * Quickstart: build a GPU, run one kernel from the zoo under the stock
 * configuration and under Equalizer's two modes, and print what changed.
 *
 * Usage: quickstart [kernel=<name>]   (default kernel=kmn)
 */

#include <iostream>
#include <vector>

#include "common/config.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string kernel_name = cfg.getString("kernel", "kmn");

    const ZooEntry &entry = KernelZoo::byName(kernel_name);
    std::cout << "kernel " << kernel_name << " ("
              << kernelCategoryName(entry.params.category)
              << "), W_cta=" << entry.params.warpsPerBlock
              << ", maxBlocks/SM=" << entry.params.maxBlocksPerSm
              << ", grid=" << entry.params.totalBlocks << " blocks\n";

    ExperimentRunner runner;
    const auto base = runner.run(entry.params, policies::baseline());
    const auto perf =
        runner.run(entry.params, policies::equalizer(
                                     EqualizerMode::Performance));
    const auto energy =
        runner.run(entry.params,
                   policies::equalizer(EqualizerMode::Energy));

    TablePrinter table({"policy", "time(ms)", "speedup", "energy(J)",
                        "E_base/E", "IPC", "L1 hit", "X_alu/smp",
                        "X_mem/smp"});
    for (const auto *r : {&base, &perf, &energy}) {
        const auto &m = r->total;
        const double samples = static_cast<double>(m.outcomeCycles);
        table.row({r->policy, fmt(m.seconds * 1e3, 3),
                   fmt(speedupOver(base.total, m), 3),
                   fmt(m.totalJoules(), 4),
                   fmt(energyEfficiencyOver(base.total, m), 3),
                   fmt(m.ipc(), 2), pct(m.l1HitRate()),
                   fmt(static_cast<double>(m.outcomeTotals.excessAlu) /
                       samples, 2),
                   fmt(static_cast<double>(m.outcomeTotals.excessMem) /
                       samples, 2)});
    }
    table.print();
    return 0;
}
