/**
 * @file
 * Equalizer decision tracing: runs one kernel under Equalizer and prints
 * the per-epoch counters, tendency, block target and VF states — the
 * observability view of the runtime.
 *
 * Usage: policy_trace [kernel=<name>] [mode=perf|energy] [blocks=<n>]
 *                     [replay=<trace> [sm=<n>]]
 *   blocks=<n> runs a statically fixed block count instead (with the
 *   passive monitor), which is handy for calibration.
 *   replay=<trace> prints the same decision table from a recorded
 *   binary trace (eqsim trace=...) instead of running a simulation;
 *   sm=<n> selects the SM to replay (default 0).
 */

#include <iostream>
#include <vector>

#include "common/config.hh"
#include "equalizer/decision.hh"
#include "equalizer/monitor.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "trace/trace_reader.hh"

using namespace equalizer;

namespace
{

/**
 * Offline replay: reconstruct the per-epoch decision table of one SM
 * from a recorded trace, plus the device-level VF step log.
 */
int
replayTrace(const std::string &path, int sm)
{
    const TraceReader trace = TraceReader::fromFile(path);
    if (sm < 0 || sm >= static_cast<int>(trace.header().numSms))
        fatal("trace has ", trace.header().numSms, " SMs; sm=", sm,
              " is out of range");

    TablePrinter table({"cycle", "active", "waiting", "x_alu", "x_mem",
                        "tendency", "blocks"});
    TraceEvent sample;
    bool have_sample = false;
    for (const auto &e : trace.smEvents(sm)) {
        if (e.kind == TraceEventKind::EpochSample) {
            sample = e;
            have_sample = true;
        } else if (e.kind == TraceEventKind::Tendency) {
            table.row({std::to_string(e.cycle),
                       have_sample ? fmt(sample.p.d[0], 1) : "-",
                       have_sample ? fmt(sample.p.d[1], 1) : "-",
                       have_sample ? fmt(sample.p.d[2], 1) : "-",
                       have_sample ? fmt(sample.p.d[3], 1) : "-",
                       tendencyName(static_cast<Tendency>(e.p.i[0])),
                       std::to_string(e.p.i[2])});
            have_sample = false;
        }
    }
    table.print();

    for (const auto &e : trace.deviceEvents()) {
        if (e.kind != TraceEventKind::VfStep)
            continue;
        std::cout << "cycle " << e.cycle << ": "
                  << (e.p.i[0] == 0 ? "sm" : "mem") << " clock "
                  << vfStateName(static_cast<VfState>(e.p.i[1]))
                  << " -> "
                  << vfStateName(static_cast<VfState>(e.p.i[2]))
                  << '\n';
    }

    std::cout << "replayed " << trace.events().size() << " events ("
              << trace.segments() << " segment(s), "
              << trace.header().numSms << " SMs) from " << path << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(
        args, std::vector<Knob>{
                  {"kernel", "roster kernel to run", {}},
                  {"mode", "equalizer mode: perf or energy", {}},
                  {"blocks", "static block count (passive monitor)",
                   {}},
                  {"replay", "binary trace to replay instead of "
                             "simulating", {}},
                  {"sm", "SM index to replay (with replay=)", {}},
              });
    const std::string kernel_name = cfg.getString("kernel", "kmn");
    const std::string mode_name = cfg.getString("mode", "perf");
    const int static_blocks =
        static_cast<int>(cfg.getInt("blocks", -1));

    if (const std::string replay = cfg.getString("replay", "");
        !replay.empty()) {
        return replayTrace(replay,
                           static_cast<int>(cfg.getInt("sm", 0)));
    }

    const ZooEntry &entry = KernelZoo::byName(kernel_name);
    ExperimentRunner runner;

    if (static_blocks > 0) {
        // Static block count with a passive monitor.
        TablePrinter table({"cycle", "active", "waiting", "x_alu",
                            "x_mem", "issued"});
        WarpStateMonitor monitor(4096);
        auto result = runner.run(
            entry.params, policies::staticBlocks(static_blocks),
            [&monitor](GpuTop &gpu, GpuController *) {
                gpu.setCycleObserver(
                    [&monitor](GpuTop &g) { monitor.observe(g); });
            });
        for (const auto &s : monitor.samples())
            table.row({std::to_string(s.cycle), fmt(s.active, 1),
                       fmt(s.waiting, 1), fmt(s.xAlu, 1), fmt(s.xMem, 1),
                       fmt(s.issued, 2)});
        table.print();
        const auto &m = result.total;
        std::cout << "time " << fmt(m.seconds * 1e3, 3) << " ms, IPC "
                  << fmt(m.ipc(), 2) << ", L1 hit " << pct(m.l1HitRate())
                  << ", energy " << fmt(m.totalJoules(), 4) << " J\n";
        return 0;
    }

    EqualizerConfig ecfg;
    ecfg.mode = mode_name == "energy" ? EqualizerMode::Energy
                                      : EqualizerMode::Performance;

    TablePrinter table({"cycle", "active", "waiting", "x_alu", "x_mem",
                        "tendency", "blocks", "sm_vf", "mem_vf"});
    auto result = runner.run(
        entry.params, policies::equalizer(ecfg.mode, ecfg),
        [&table](GpuTop &, GpuController *ctrl) {
            auto *eq = dynamic_cast<EqualizerEngine *>(ctrl);
            eq->setEpochTrace([&table](const EqualizerEpochRecord &r) {
                table.row({std::to_string(r.cycle),
                           fmt(r.meanCounters.nActive, 1),
                           fmt(r.meanCounters.nWaiting, 1),
                           fmt(r.meanCounters.nAlu, 1),
                           fmt(r.meanCounters.nMem, 1),
                           tendencyName(r.tendency),
                           fmt(r.meanTargetBlocks, 1),
                           vfStateName(r.smState),
                           vfStateName(r.memState)});
            });
        });
    table.print();

    const auto &m = result.total;
    std::cout << "time " << fmt(m.seconds * 1e3, 3) << " ms, IPC "
              << fmt(m.ipc(), 2) << ", L1 hit " << pct(m.l1HitRate())
              << ", energy " << fmt(m.totalJoules(), 4) << " J\n";
    return 0;
}
