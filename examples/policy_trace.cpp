/**
 * @file
 * Equalizer decision tracing: runs one kernel under Equalizer and prints
 * the per-epoch counters, tendency, block target and VF states — the
 * observability view of the runtime.
 *
 * Usage: policy_trace [kernel=<name>] [mode=perf|energy] [blocks=<n>]
 *   blocks=<n> runs a statically fixed block count instead (with the
 *   passive monitor), which is handy for calibration.
 */

#include <iostream>
#include <vector>

#include "common/config.hh"
#include "equalizer/monitor.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string kernel_name = cfg.getString("kernel", "kmn");
    const std::string mode_name = cfg.getString("mode", "perf");
    const int static_blocks =
        static_cast<int>(cfg.getInt("blocks", -1));

    const ZooEntry &entry = KernelZoo::byName(kernel_name);
    ExperimentRunner runner;

    if (static_blocks > 0) {
        // Static block count with a passive monitor.
        TablePrinter table({"cycle", "active", "waiting", "x_alu",
                            "x_mem", "issued"});
        WarpStateMonitor monitor(4096);
        auto result = runner.run(
            entry.params, policies::staticBlocks(static_blocks),
            [&monitor](GpuTop &gpu, GpuController *) {
                gpu.setCycleObserver(
                    [&monitor](GpuTop &g) { monitor.observe(g); });
            });
        for (const auto &s : monitor.samples())
            table.row({std::to_string(s.cycle), fmt(s.active, 1),
                       fmt(s.waiting, 1), fmt(s.xAlu, 1), fmt(s.xMem, 1),
                       fmt(s.issued, 2)});
        table.print();
        const auto &m = result.total;
        std::cout << "time " << fmt(m.seconds * 1e3, 3) << " ms, IPC "
                  << fmt(m.ipc(), 2) << ", L1 hit " << pct(m.l1HitRate())
                  << ", energy " << fmt(m.totalJoules(), 4) << " J\n";
        return 0;
    }

    EqualizerConfig ecfg;
    ecfg.mode = mode_name == "energy" ? EqualizerMode::Energy
                                      : EqualizerMode::Performance;

    TablePrinter table({"cycle", "active", "waiting", "x_alu", "x_mem",
                        "tendency", "blocks", "sm_vf", "mem_vf"});
    auto result = runner.run(
        entry.params, policies::equalizer(ecfg.mode, ecfg),
        [&table](GpuTop &, GpuController *ctrl) {
            auto *eq = dynamic_cast<EqualizerEngine *>(ctrl);
            eq->setEpochTrace([&table](const EqualizerEpochRecord &r) {
                table.row({std::to_string(r.cycle),
                           fmt(r.meanCounters.nActive, 1),
                           fmt(r.meanCounters.nWaiting, 1),
                           fmt(r.meanCounters.nAlu, 1),
                           fmt(r.meanCounters.nMem, 1),
                           tendencyName(r.tendency),
                           fmt(r.meanTargetBlocks, 1),
                           vfStateName(r.smState),
                           vfStateName(r.memState)});
            });
        });
    table.print();

    const auto &m = result.total;
    std::cout << "time " << fmt(m.seconds * 1e3, 3) << " ms, IPC "
              << fmt(m.ipc(), 2) << ", L1 hit " << pct(m.l1HitRate())
              << ", energy " << fmt(m.totalJoules(), 4) << " J\n";
    return 0;
}
