/**
 * @file
 * Application-level scenario: run a whole application (every kernel of
 * a Rodinia/Parboil app, weighted as in the paper's Table II) under the
 * stock GPU and under Equalizer, and report end-to-end time and energy.
 *
 * This mirrors how the runtime would actually be used: one GPU instance
 * executes the app's kernels back to back and Equalizer re-adapts at
 * each kernel switch (per-kernel state is remembered across invocations
 * of the same kernel).
 *
 * Usage: app_pipeline [app=<name>] [mode=perf|energy]
 *        (apps: backprop, cfd, histo, leukocyte, mri-g, particle, ...)
 */

#include <iostream>
#include <vector>

#include "common/config.hh"
#include "equalizer/equalizer.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

namespace
{

/** Roster entries of one application, in roster order. */
std::vector<const ZooEntry *>
kernelsOfApp(const std::string &app)
{
    std::vector<const ZooEntry *> out;
    for (const auto &entry : KernelZoo::all())
        if (entry.application == app)
            out.push_back(&entry);
    return out;
}

/** Run every kernel of the app on one GPU; returns summed metrics. */
RunMetrics
runApp(const std::vector<const ZooEntry *> &kernels,
       GpuController *controller)
{
    GpuTop gpu;
    gpu.setController(controller);
    RunMetrics total;
    for (const auto *entry : kernels) {
        for (int inv = 0; inv < entry->params.invocationCount(); ++inv) {
            SyntheticKernel launch(entry->params, inv);
            total += gpu.runKernel(launch);
        }
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string app = cfg.getString("app", "histo");
    const std::string mode_name = cfg.getString("mode", "perf");

    const auto kernels = kernelsOfApp(app);
    if (kernels.empty()) {
        std::cerr << "unknown application '" << app << "'; known apps:";
        std::string last;
        for (const auto &e : KernelZoo::all())
            if (e.application != last) {
                std::cerr << ' ' << e.application;
                last = e.application;
            }
        std::cerr << '\n';
        return 1;
    }

    std::cout << "application " << app << " (" << kernels.size()
              << " kernels):";
    for (const auto *k : kernels)
        std::cout << ' ' << k->params.name << " ("
                  << kernelCategoryName(k->params.category) << ")";
    std::cout << '\n';

    const RunMetrics base = runApp(kernels, nullptr);

    EqualizerConfig ecfg;
    ecfg.mode = mode_name == "energy" ? EqualizerMode::Energy
                                      : EqualizerMode::Performance;
    EqualizerEngine eq(ecfg);
    const RunMetrics tuned = runApp(kernels, &eq);

    TablePrinter t({"config", "time(ms)", "energy(J)", "speedup",
                    "energy-ratio"});
    t.row({"baseline", fmt(base.seconds * 1e3, 3),
           fmt(base.totalJoules(), 4), "1.000", "1.000"});
    t.row({eq.name(), fmt(tuned.seconds * 1e3, 3),
           fmt(tuned.totalJoules(), 4),
           fmt(speedupOver(base, tuned), 3),
           fmt(tuned.totalJoules() / base.totalJoules(), 3)});
    t.print();
    return 0;
}
