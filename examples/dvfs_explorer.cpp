/**
 * @file
 * DVFS design-space exploration: run one kernel at all nine static
 * (SM x memory) operating points and print the performance/energy
 * frontier, marking which points Equalizer's two modes actually land on.
 *
 * Usage: dvfs_explorer [kernel=<name>]
 */

#include <iostream>
#include <vector>

#include "baselines/static_policy.hh"
#include "common/config.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const Config cfg = Config::fromArgs(args);
    const std::string kernel_name = cfg.getString("kernel", "lbm");
    const ZooEntry &entry = KernelZoo::byName(kernel_name);

    std::cout << "kernel " << kernel_name << " ("
              << kernelCategoryName(entry.params.category) << ")\n";

    ExperimentRunner runner;
    const auto base = runner.run(entry.params, policies::baseline());

    TablePrinter t({"sm", "mem", "perf", "E_base/E", "verdict"});
    for (auto sm : {VfState::Low, VfState::Normal, VfState::High}) {
        for (auto mem : {VfState::Low, VfState::Normal, VfState::High}) {
            const std::string name = std::string("static-") +
                                     vfStateName(sm) + "-" +
                                     vfStateName(mem);
            PolicySpec spec{name, [name, sm, mem] {
                                return std::make_unique<StaticPolicy>(
                                    name, sm, mem);
                            }};
            const auto r = runner.run(entry.params, spec);
            const double perf = speedupOver(base.total, r.total);
            const double eff =
                energyEfficiencyOver(base.total, r.total);
            const char *verdict =
                perf >= 1.0 && eff >= 1.0
                    ? "win-win"
                    : (perf >= 1.0 ? "faster, more energy"
                                   : (eff >= 1.0 ? "slower, less energy"
                                                 : "lose-lose"));
            t.row({vfStateName(sm), vfStateName(mem), fmt(perf, 3),
                   fmt(eff, 3), verdict});
        }
    }
    t.print();

    const auto eq_p = runner.run(
        entry.params, policies::equalizer(EqualizerMode::Performance));
    const auto eq_e =
        runner.run(entry.params, policies::equalizer(EqualizerMode::Energy));
    std::cout << "\nequalizer-perf  : perf "
              << fmt(speedupOver(base.total, eq_p.total), 3) << ", eff "
              << fmt(energyEfficiencyOver(base.total, eq_p.total), 3)
              << " (also retunes concurrency)\n";
    std::cout << "equalizer-energy: perf "
              << fmt(speedupOver(base.total, eq_e.total), 3) << ", eff "
              << fmt(energyEfficiencyOver(base.total, eq_e.total), 3)
              << '\n';
    return 0;
}
