/**
 * @file
 * Ablation study of Equalizer's design constants (beyond the paper's
 * figures): epoch length (the paper picked 4096 cycles after a
 * sensitivity study), block-change hysteresis (3 consecutive epochs),
 * and the bandwidth-saturation threshold (2 X_mem warps).
 *
 * Run on one kernel per category in performance mode; reported as
 * speedup over the stock GPU.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

const std::vector<std::string> &
representatives()
{
    static const std::vector<std::string> r = {"mri-q", "lbm", "kmn",
                                               "sc"};
    return r;
}

PolicySpec
variant(const std::string &name, EqualizerConfig cfg)
{
    return PolicySpec{name, [cfg] {
                          return std::make_unique<EqualizerEngine>(cfg);
                      }};
}

} // namespace

int
main()
{
    ExperimentRunner runner;

    banner("Ablation: epoch length (speedup over baseline, perf mode)");
    {
        TablePrinter t({"kernel", "epoch=1024", "epoch=2048",
                        "epoch=4096 (paper)", "epoch=8192"});
        for (const auto &name : representatives()) {
            const auto &entry = KernelZoo::byName(name);
            const auto base =
                runner.run(entry.params, policies::baseline());
            std::vector<std::string> row = {name};
            for (Cycle epoch : {1024u, 2048u, 4096u, 8192u}) {
                progress("ablation epoch " + name + " " +
                         std::to_string(epoch));
                EqualizerConfig cfg;
                cfg.mode = EqualizerMode::Performance;
                cfg.epochCycles = epoch;
                const auto r = runner.run(
                    entry.params,
                    variant("eq-epoch-" + std::to_string(epoch), cfg));
                row.push_back(fmt(speedupOver(base.total, r.total), 3));
            }
            t.row(row);
        }
        t.print();
    }

    banner("Ablation: block-change hysteresis");
    {
        TablePrinter t({"kernel", "hyst=1", "hyst=3 (paper)", "hyst=6"});
        for (const auto &name : representatives()) {
            const auto &entry = KernelZoo::byName(name);
            const auto base =
                runner.run(entry.params, policies::baseline());
            std::vector<std::string> row = {name};
            for (int h : {1, 3, 6}) {
                progress("ablation hyst " + name + " " +
                         std::to_string(h));
                EqualizerConfig cfg;
                cfg.mode = EqualizerMode::Performance;
                cfg.hysteresis = h;
                const auto r = runner.run(
                    entry.params,
                    variant("eq-hyst-" + std::to_string(h), cfg));
                row.push_back(fmt(speedupOver(base.total, r.total), 3));
            }
            t.row(row);
        }
        t.print();
    }

    banner("Ablation: X_mem bandwidth-saturation threshold");
    {
        TablePrinter t({"kernel", "thresh=1", "thresh=2 (paper)",
                        "thresh=4"});
        for (const auto &name : representatives()) {
            const auto &entry = KernelZoo::byName(name);
            const auto base =
                runner.run(entry.params, policies::baseline());
            std::vector<std::string> row = {name};
            for (double th : {1.0, 2.0, 4.0}) {
                progress("ablation thresh " + name);
                EqualizerConfig cfg;
                cfg.mode = EqualizerMode::Performance;
                cfg.memSaturationThreshold = th;
                const auto r = runner.run(
                    entry.params, variant("eq-thresh", cfg));
                row.push_back(fmt(speedupOver(base.total, r.total), 3));
            }
            t.row(row);
        }
        t.print();
    }

    std::cout << "\nExpectation: results are stable around the paper's "
                 "constants; very short epochs chase noise, hysteresis=1 "
                 "oscillates on cache kernels, and a high saturation "
                 "threshold stops detecting memory pressure.\n";
    return 0;
}
