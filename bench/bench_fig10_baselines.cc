/**
 * @file
 * Figure 10 reproduction: Equalizer (performance mode) versus DynCTA
 * and CCWS on the cache-sensitive kernels.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    banner("Figure 10: cache-sensitive kernels — speedup over baseline");
    TablePrinter t({"kernel", "dyncta", "ccws", "equalizer"});

    std::vector<double> dyn_all;
    std::vector<double> ccws_all;
    std::vector<double> eq_all;

    for (const auto &name :
         KernelZoo::namesInCategory(KernelCategory::Cache)) {
        progress("fig10 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto base = runner.run(entry.params, policies::baseline());
        const auto dyn = runner.run(entry.params, policies::dynCta());
        const auto ccws = runner.run(entry.params, policies::ccws());
        const auto eq = runner.run(
            entry.params, policies::equalizer(EqualizerMode::Performance));

        const double s_dyn = speedupOver(base.total, dyn.total);
        const double s_ccws = speedupOver(base.total, ccws.total);
        const double s_eq = speedupOver(base.total, eq.total);
        dyn_all.push_back(s_dyn);
        ccws_all.push_back(s_ccws);
        eq_all.push_back(s_eq);
        t.row({name, fmt(s_dyn, 3), fmt(s_ccws, 3), fmt(s_eq, 3)});
    }
    t.row({"GMEAN", fmt(geomean(dyn_all), 3), fmt(geomean(ccws_all), 3),
           fmt(geomean(eq_all), 3)});
    t.print();

    std::cout << "\nPaper reference: DynCTA up to 22%, CCWS up to 38% "
                 "(better on mmer), Equalizer highest geomean — its "
                 "advantage comes from re-growing concurrency when the "
                 "phase changes (spmv, Fig 11b).\n";
    return 0;
}
