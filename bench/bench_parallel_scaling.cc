/**
 * @file
 * Parallel-executor scaling: simulated SM cycles per wall-clock second
 * at 1/2/4/8 worker threads on the default 15-SM configuration.
 *
 * The simulation is bit-deterministic across thread counts, so every
 * row replays the identical run and the only thing that varies is
 * wall-clock time. The JSON output is uploaded as a CI artifact so the
 * performance trajectory stays visible per PR.
 *
 * Usage:
 *   bench_parallel_scaling [kernel=<name>] [sms=<n>] [threads=a,b,c]
 *                          [json=<path>]
 */

#include <chrono>
#include <fstream>
#include <sstream>

#include "bench_util.hh"
#include "common/config.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

std::vector<int>
parseThreadList(const std::string &csv)
{
    std::vector<int> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(std::stoi(tok));
    return out;
}

struct ScalingRow
{
    int threads;
    double seconds;
    Cycle smCycles;
    double cyclesPerSec;
};

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg =
        Config::fromArgs(std::vector<std::string>(argv + 1, argv + argc),
                         {"kernel", "sms", "threads", "json"});
    const std::string kernel = cfg.getString("kernel", "kmn");
    const std::string threads_csv = cfg.getString("threads", "1,2,4,8");
    const std::string json_path = cfg.getString("json", "");

    GpuConfig gcfg = GpuConfig::gtx480();
    gcfg.numSms = static_cast<int>(cfg.getInt("sms", gcfg.numSms));

    const ZooEntry &entry = KernelZoo::byName(kernel);

    banner("parallel scaling: " + kernel + " on " +
           std::to_string(gcfg.numSms) + " SMs (hardware threads: " +
           std::to_string(ParallelExecutor::hardwareThreads()) + ")");

    std::vector<ScalingRow> rows;
    TablePrinter t({"threads", "wall s", "sm cycles", "cycles/s",
                    "speedup"});
    double base_cps = 0.0;
    for (int threads : parseThreadList(threads_csv)) {
        progress("scaling threads=" + std::to_string(threads));
        ExperimentRunner runner(gcfg, PowerConfig::gtx480(), threads);

        const auto start = std::chrono::steady_clock::now();
        const auto r = runner.run(entry.params, policies::baseline());
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        ScalingRow row;
        row.threads = runner.threads();
        row.seconds = wall.count();
        row.smCycles = r.total.smCycles;
        row.cyclesPerSec = row.seconds > 0.0
                               ? static_cast<double>(row.smCycles) /
                                     row.seconds
                               : 0.0;
        if (base_cps == 0.0)
            base_cps = row.cyclesPerSec;
        rows.push_back(row);

        t.row({std::to_string(row.threads), fmt(row.seconds, 3),
               std::to_string(row.smCycles), fmt(row.cyclesPerSec, 0),
               fmt(base_cps > 0.0 ? row.cyclesPerSec / base_cps : 0.0,
                   2) +
                   "x"});
    }
    t.print();

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"parallel_scaling\",\n"
           << "  \"kernel\": \"" << kernel << "\",\n"
           << "  \"sms\": " << gcfg.numSms << ",\n"
           << "  \"hardware_threads\": "
           << ParallelExecutor::hardwareThreads() << ",\n"
           << "  \"rows\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            os << "    {\"threads\": " << r.threads
               << ", \"wall_seconds\": " << r.seconds
               << ", \"sm_cycles\": " << r.smCycles
               << ", \"cycles_per_sec\": " << r.cyclesPerSec << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        progress("wrote " + json_path);
    }
    return 0;
}
