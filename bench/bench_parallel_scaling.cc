/**
 * @file
 * Parallel-executor scaling: simulated SM cycles per wall-clock second
 * at 1/2/4/8 worker threads on the default 15-SM configuration.
 *
 * The simulation is bit-deterministic across thread counts, so every
 * row replays the identical run and the only thing that varies is
 * wall-clock time. The JSON output is uploaded as a CI artifact so the
 * performance trajectory stays visible per PR.
 *
 * Usage:
 *   bench_parallel_scaling [kernel=<name>] [sms=<n>] [threads=a,b,c]
 *                          [export=<path>] [trace=0|1]
 *   trace=1 re-runs each row with an attached tracer draining into a
 *   null sink and reports the tracing overhead (acceptance: <2%).
 */

#include <chrono>
#include <sstream>

#include "bench_util.hh"
#include "common/config.hh"
#include "harness/export.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

std::vector<int>
parseThreadList(const std::string &csv)
{
    std::vector<int> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(std::stoi(tok));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernel", "roster kernel to run", {}},
            {"sms", "number of SMs", {}},
            {"threads", "comma-separated worker-thread counts", {}},
            {"export", "write the scaling table (.csv/.json)",
             {"json"}},
            {"trace", "also measure tracing overhead per row", {}},
        });
    const std::string kernel = cfg.getString("kernel", "kmn");
    const std::string threads_csv = cfg.getString("threads", "1,2,4,8");
    const std::string json_path = cfg.getString("export", "");
    const bool measure_trace = cfg.getBool("trace", false);

    GpuConfig gcfg = GpuConfig::gtx480();
    gcfg.numSms = static_cast<int>(cfg.getInt("sms", gcfg.numSms));

    const ZooEntry &entry = KernelZoo::byName(kernel);

    banner("parallel scaling: " + kernel + " on " +
           std::to_string(gcfg.numSms) + " SMs (hardware threads: " +
           std::to_string(ParallelExecutor::hardwareThreads()) + ")");

    std::vector<std::string> columns = {"threads", "wall_seconds",
                                        "sm_cycles", "cycles_per_sec"};
    std::vector<std::string> headers = {"threads", "wall s",
                                        "sm cycles", "cycles/s",
                                        "speedup"};
    if (measure_trace) {
        columns.insert(columns.end(),
                       {"traced_wall_seconds", "trace_events",
                        "trace_overhead_pct"});
        headers.insert(headers.end(),
                       {"traced s", "events", "overhead"});
    }
    ExportSink sink(columns);
    sink.meta("bench", ExportCell::str("parallel_scaling"));
    sink.meta("kernel", ExportCell::str(kernel));
    sink.meta("sms", ExportCell::integer(gcfg.numSms));
    sink.meta("hardware_threads",
              ExportCell::integer(ParallelExecutor::hardwareThreads()));

    TablePrinter t(headers);
    double base_cps = 0.0;
    for (int threads : parseThreadList(threads_csv)) {
        progress("scaling threads=" + std::to_string(threads));
        ExperimentRunner runner(gcfg, PowerConfig::gtx480(), threads);

        const auto start = std::chrono::steady_clock::now();
        const auto r = runner.run(entry.params, policies::baseline());
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        const double seconds = wall.count();
        const double cps =
            seconds > 0.0
                ? static_cast<double>(r.total.smCycles) / seconds
                : 0.0;
        if (base_cps == 0.0)
            base_cps = cps;

        std::vector<ExportCell> cells = {
            ExportCell::integer(runner.threads()),
            ExportCell::num(seconds),
            ExportCell::integer(
                static_cast<std::int64_t>(r.total.smCycles)),
            ExportCell::num(cps)};
        std::vector<std::string> row = {
            std::to_string(runner.threads()), fmt(seconds, 3),
            std::to_string(r.total.smCycles), fmt(cps, 0),
            fmt(base_cps > 0.0 ? cps / base_cps : 0.0, 2) + "x"};

        if (measure_trace) {
            NullTraceSink null_sink;
            Tracer tracer(TraceConfig{}, null_sink);
            runner.setTracer(&tracer);
            const auto tstart = std::chrono::steady_clock::now();
            runner.run(entry.params, policies::baseline());
            const std::chrono::duration<double> twall =
                std::chrono::steady_clock::now() - tstart;
            runner.setTracer(nullptr);
            tracer.finish();

            const double traced = twall.count();
            const double overhead =
                seconds > 0.0 ? (traced - seconds) / seconds * 100.0
                              : 0.0;
            cells.insert(cells.end(),
                         {ExportCell::num(traced),
                          ExportCell::integer(static_cast<std::int64_t>(
                              tracer.eventsRecorded())),
                          ExportCell::num(overhead)});
            row.insert(row.end(),
                       {fmt(traced, 3),
                        std::to_string(tracer.eventsRecorded()),
                        fmt(overhead, 1) + "%"});
        }
        sink.row(cells);
        t.row(row);
    }
    t.print();

    if (!json_path.empty()) {
        sink.writeFile(json_path, exportFormatForPath(
                                      json_path, ExportFormat::Json));
        progress("wrote " + json_path);
    }
    return 0;
}
