/**
 * @file
 * Figure 1 reproduction: the Section II characterization sweeps.
 *
 * For every kernel: performance and energy efficiency (E_base/E) under
 * (a) SM +15%, (b) SM -15%, (c) DRAM +15%, (d) DRAM -15%, and
 * (e,f) the statically optimal concurrent-block count found by sweeping
 * 1..max blocks. The paper plots these as scatter quadrants; we print
 * the coordinates of every point.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    banner("Figure 1a-1d: VF sweeps — (performance, energy-efficiency) "
           "per kernel");
    TablePrinter vf({"category", "kernel", "sm+15 perf", "sm+15 eff",
                     "sm-15 perf", "sm-15 eff", "mem+15 perf",
                     "mem+15 eff", "mem-15 perf", "mem-15 eff"});

    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig1 vf " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto base = runner.run(entry.params, policies::baseline());
        auto point = [&](const PolicySpec &p) {
            const auto r = runner.run(entry.params, p);
            return std::pair<double, double>{
                speedupOver(base.total, r.total),
                energyEfficiencyOver(base.total, r.total)};
        };
        const auto sm_hi = point(policies::smHigh());
        const auto sm_lo = point(policies::smLow());
        const auto mem_hi = point(policies::memHigh());
        const auto mem_lo = point(policies::memLow());
        vf.row({kernelCategoryName(entry.params.category), name,
                fmt(sm_hi.first, 3), fmt(sm_hi.second, 3),
                fmt(sm_lo.first, 3), fmt(sm_lo.second, 3),
                fmt(mem_hi.first, 3), fmt(mem_hi.second, 3),
                fmt(mem_lo.first, 3), fmt(mem_lo.second, 3)});
    }
    vf.print();

    banner("Figure 1e/1f: statically optimal concurrency — best block "
           "count, performance and efficiency at it");
    TablePrinter blocks({"category", "kernel", "max-blocks",
                         "best-blocks", "perf@best", "eff@best"});
    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig1 blocks " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto base = runner.run(entry.params, policies::baseline());

        // Effective slot count mirrors the SM occupancy clamp.
        const int wcta = entry.params.warpsPerBlock;
        const GpuConfig gcfg = runner.gpuConfig();
        const int max_blocks =
            std::max(1, std::min({entry.params.maxBlocksPerSm,
                                  gcfg.maxWarpsPerSm / wcta,
                                  gcfg.maxBlocksPerSm}));

        double best_perf = 1.0;
        double best_eff = 1.0;
        int best_n = max_blocks;
        for (int n = 1; n <= max_blocks; ++n) {
            const auto r =
                runner.run(entry.params, policies::staticBlocks(n));
            const double perf = speedupOver(base.total, r.total);
            if (perf > best_perf) {
                best_perf = perf;
                best_eff = energyEfficiencyOver(base.total, r.total);
                best_n = n;
            }
        }
        blocks.row({kernelCategoryName(entry.params.category), name,
                    std::to_string(max_blocks), std::to_string(best_n),
                    fmt(best_perf, 3), fmt(best_eff, 3)});
    }
    blocks.print();

    std::cout << "\nPaper reference: compute kernels move with SM "
                 "frequency only; memory and cache kernels with DRAM "
                 "frequency; cache kernels peak at a reduced block "
                 "count (e.g. kmeans at (3.84, 3.29)); compute/memory "
                 "kernels peak at maximum blocks.\n";
    return 0;
}
