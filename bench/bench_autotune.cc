/**
 * @file
 * Autotuner validation bench (docs/AUTOTUNE.md): run the model-guided
 * sweep and the exhaustive warm sweep over the same VF x CTA grid and
 * gate the two promises the subsystem makes —
 *
 *  1. exactness: the model-guided search lands on the same measured
 *     best-performance and best-energy operating points as simulating
 *     every grid point, and
 *  2. economy: it simulates at least 5x fewer points doing so.
 *
 * Both sweeps fork the same warmed checkpoint, so any measured value
 * the model sweep produces must also be bit-identical to the
 * exhaustive sweep's at the same grid point (asserted per point; this
 * doubles as a check that the probe-feature tracer is observational).
 *
 * Usage:
 *   bench_autotune [kernels=<k1,k2,...>] [prefix=<n>] [threads=<n>]
 *                  [probe_points=<n>] [pareto_slack=<f>] [max_cta=<n>]
 *                  [export=<path>]
 *
 * max_cta=<n> caps the CTA axis for a reduced-cost run (CI smoke);
 * export= writes the model sweep tables of every kernel in the
 * ExportSink::sweepTable() schema, rows concatenated, one meta block
 * per kernel with the winners and the reduction factor.
 */

#include <string>
#include <vector>

#include "autotune/occupancy.hh"
#include "bench_util.hh"
#include "common/config.hh"
#include "harness/export.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

/** Split a comma-separated list, dropping empty entries. */
std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string item = csv.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernels", "roster kernels to autotune", {}},
            {"prefix", "shared warm-up invocations", {}},
            {"threads", "worker threads (default: EQ_THREADS or "
                        "hardware)", {}},
            {"probe_points", "probe simulations the model fits to", {}},
            {"pareto_slack", "epsilon of the predicted frontier cut",
             {}},
            {"max_cta", "cap on the CTA axis (reduced-cost smoke run)",
             {}},
            {"export", "write the model sweep tables (.csv/.json)",
             {"json"}},
        });
    const std::vector<std::string> kernels =
        splitCsv(cfg.getString("kernels", "lbm,kmn"));
    const int prefix = static_cast<int>(cfg.getInt("prefix", 2));
    const int max_cta = static_cast<int>(cfg.getInt("max_cta", 0));
    const std::string json_path = cfg.getString("export", "");

    ExperimentRunner runner = makeRunner(
        GpuConfig::gtx480(),
        static_cast<int>(cfg.getInt("threads", -1)));
    const GpuConfig gcfg = runner.gpuConfig();

    ExportSink sink = ExportSink::sweepTable();
    sink.meta("bench", ExportCell::str("autotune"));
    bool pass = true;
    TablePrinter t({"kernel", "grid", "simulated", "reduction",
                    "best perf", "best energy", "fit err (t)",
                    "exact"});

    for (const std::string &kernel : kernels) {
        SweepPlan plan;
        plan.kernel = KernelZoo::byName(kernel).params;
        plan.prefixPolicy = policies::baseline();
        plan.prefixInvocations = prefix;
        if (plan.prefixInvocations >= plan.kernel.invocationCount()) {
            plan.kernel.invocations.assign(
                static_cast<std::size_t>(prefix + 1), InvocationMod{});
        }
        plan.probePoints =
            static_cast<int>(cfg.getInt("probe_points", 6));
        plan.paretoSlack = cfg.getDouble("pareto_slack", 0.05);
        if (max_cta > 0) {
            const int eff = std::min(
                max_cta, effectiveMaxBlocks(gcfg, plan.kernel));
            for (int c = 1; c <= eff; ++c)
                plan.grid.blocks.push_back(c);
        }

        progress(kernel + ": model-guided sweep");
        plan.strategy = SweepStrategy::Model;
        const SweepResult model = runner.runSweep(plan);
        progress(kernel + ": exhaustive warm sweep");
        plan.strategy = SweepStrategy::Warm;
        const SweepResult exhaustive = runner.runSweep(plan);

        int simulated = 0;
        bool measured_identical = true;
        for (std::size_t i = 0; i < model.table.size(); ++i) {
            if (!model.table[i].simulated)
                continue;
            ++simulated;
            // Same warmed fork machinery: bit-identical or bust.
            measured_identical =
                measured_identical &&
                model.table[i].measuredSeconds ==
                    exhaustive.table[i].measuredSeconds &&
                model.table[i].measuredCycles ==
                    exhaustive.table[i].measuredCycles &&
                model.table[i].measuredJoules ==
                    exhaustive.table[i].measuredJoules;
        }
        const int grid = static_cast<int>(model.table.size());
        const double reduction =
            simulated > 0 ? static_cast<double>(grid) / simulated : 0.0;
        const bool winners_match =
            model.bestPerf == exhaustive.bestPerf &&
            model.bestEnergy == exhaustive.bestEnergy;
        const bool exact =
            winners_match && measured_identical && reduction >= 5.0;
        pass = pass && exact;

        t.row({kernel, std::to_string(grid), std::to_string(simulated),
               fmt(reduction, 2) + "x",
               model.bestPerf >= 0
                   ? model.table[static_cast<std::size_t>(
                                     model.bestPerf)]
                         .policy
                   : "-",
               model.bestEnergy >= 0
                   ? model.table[static_cast<std::size_t>(
                                     model.bestEnergy)]
                         .policy
                   : "-",
               fmt(model.fitErrorSeconds, 3),
               exact ? "yes" : "NO"});
        if (!winners_match) {
            std::cerr << kernel << ": model picked ("
                      << model.bestPerf << ", " << model.bestEnergy
                      << "), exhaustive (" << exhaustive.bestPerf
                      << ", " << exhaustive.bestEnergy << ")\n";
        }

        sink.meta(kernel + "_grid_points", ExportCell::integer(grid));
        sink.meta(kernel + "_simulated_points",
                  ExportCell::integer(simulated));
        sink.meta(kernel + "_reduction", ExportCell::num(reduction));
        sink.meta(kernel + "_best_perf",
                  ExportCell::integer(model.bestPerf));
        sink.meta(kernel + "_best_energy",
                  ExportCell::integer(model.bestEnergy));
        sink.meta(kernel + "_winners_match",
                  ExportCell::integer(winners_match ? 1 : 0));
        for (const auto &row : model.table)
            sink.addSweepPoint(row);
    }

    banner("autotune: model-guided vs exhaustive");
    t.print();

    if (!json_path.empty()) {
        sink.writeFile(json_path, exportFormatForPath(
                                      json_path, ExportFormat::Json));
        progress("wrote " + json_path);
    }

    if (!pass) {
        std::cerr << "FAIL: model-guided search missed an exhaustive "
                     "winner or fell under the 5x reduction gate\n";
        return 1;
    }
    return 0;
}
