/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 */

#ifndef EQ_BENCH_BENCH_UTIL_HH
#define EQ_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer::bench
{

/**
 * Simulation worker threads for benches: the EQ_THREADS environment
 * variable when set (a deprecated alias of the threads= knob),
 * otherwise 0 = hardware concurrency. Results are identical for any
 * value; only wall-clock time changes.
 */
inline int
simThreadsFromEnv()
{
    const char *v = std::getenv("EQ_THREADS");
    if (!v)
        return 0;
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0) {
        fatal("EQ_THREADS must be a non-negative integer, got '", v,
              "'");
    }
    warn("EQ_THREADS is deprecated; pass threads=", n, " instead");
    return static_cast<int>(n);
}

/**
 * An ExperimentRunner honouring the thread override: the threads=
 * knob when given (>= 0), else the EQ_THREADS environment variable.
 */
inline ExperimentRunner
makeRunner(GpuConfig cfg = GpuConfig::gtx480(), int threads = -1)
{
    return ExperimentRunner(cfg, PowerConfig::gtx480(),
                            threads >= 0 ? threads
                                         : simThreadsFromEnv());
}

/** Categories in the paper's figure order. */
inline const std::vector<KernelCategory> &
categoryOrder()
{
    static const std::vector<KernelCategory> order = {
        KernelCategory::Compute,
        KernelCategory::Memory,
        KernelCategory::Cache,
        KernelCategory::Unsaturated,
    };
    return order;
}

/** All 27 kernel names grouped by category, figure order. */
inline std::vector<std::string>
kernelsInFigureOrder()
{
    std::vector<std::string> names;
    for (auto c : categoryOrder())
        for (const auto &n : KernelZoo::namesInCategory(c))
            names.push_back(n);
    return names;
}

/** Per-category collection of values for geomean rows. */
class CategoryAggregator
{
  public:
    void
    add(KernelCategory c, double value)
    {
        values_[c].push_back(value);
        all_.push_back(value);
    }

    double
    categoryGeomean(KernelCategory c) const
    {
        auto it = values_.find(c);
        return it == values_.end() ? 1.0 : geomean(it->second);
    }

    double overallGeomean() const { return geomean(all_); }

  private:
    std::map<KernelCategory, std::vector<double>> values_;
    std::vector<double> all_;
};

/** Progress line on stderr so long benches are watchable. */
inline void
progress(const std::string &what)
{
    std::cerr << "[bench] " << what << '\n';
}

} // namespace equalizer::bench

#endif // EQ_BENCH_BENCH_UTIL_HH
