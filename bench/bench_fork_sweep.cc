/**
 * @file
 * Fork-sweep demonstration: a VF x CTA operating-point sweep over the
 * tail of a multi-invocation application, run twice — cold (every point
 * re-simulates the shared warm-up prefix) and warm (the prefix is
 * simulated once and every point forks the warmed GPU state via
 * GpuTop::forkFrom). Per-point results are identical by construction
 * (asserted); the warm sweep only buys wall-clock time.
 *
 * Usage:
 *   bench_fork_sweep [kernel=<name>] [invocations=<n>] [prefix=<n>]
 *                    [threads=<n>] [export=<path>]
 *
 * invocations=<n> synthesizes an n-invocation schedule from the chosen
 * roster kernel; prefix=<n> of those are the shared warm-up. The JSON
 * export carries every point's suffix metrics for both sweeps.
 */

#include <chrono>
#include <functional>

#include "baselines/static_policy.hh"
#include "bench_util.hh"
#include "common/config.hh"
#include "harness/export.hh"
#include "sim/vf.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

/** One VF x CTA grid point as a static policy. */
PolicySpec
operatingPoint(VfState sm_state, int blocks)
{
    const std::string name = std::string("vf-") + vfStateName(sm_state) +
                             "-blocks-" + std::to_string(blocks);
    return PolicySpec{name, [name, sm_state, blocks] {
                          return std::make_unique<StaticPolicy>(
                              name, sm_state, VfState::Normal, blocks);
                      }};
}

double
wallSeconds(const std::function<void()> &work)
{
    const auto start = std::chrono::steady_clock::now();
    work();
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start;
    return d.count();
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernel", "roster kernel to sweep", {}},
            {"invocations", "synthesized invocation count", {}},
            {"prefix", "shared warm-up invocations", {}},
            {"threads", "worker threads (default: EQ_THREADS or "
                        "hardware)", {}},
            {"export", "write per-point metrics (.csv/.json)",
             {"json"}},
        });
    const std::string kernel = cfg.getString("kernel", "sgemm");
    const int invocations =
        static_cast<int>(cfg.getInt("invocations", 8));
    const int prefix = static_cast<int>(cfg.getInt("prefix", 6));
    const std::string json_path = cfg.getString("export", "");

    KernelParams params = KernelZoo::byName(kernel).params;
    params.invocations.assign(static_cast<std::size_t>(invocations),
                              InvocationMod{});

    // A 2x3 VF x CTA grid: six operating points sharing one warm-up.
    std::vector<PolicySpec> points;
    for (VfState vf : {VfState::Normal, VfState::High})
        for (int blocks : {1, 2, params.maxBlocksPerSm})
            points.push_back(operatingPoint(vf, blocks));

    banner("fork sweep: " + kernel + " x " +
           std::to_string(points.size()) + " operating points (" +
           std::to_string(prefix) + "-invocation shared prefix of " +
           std::to_string(invocations) + ")");

    ExperimentRunner runner = makeRunner(
        GpuConfig::gtx480(),
        static_cast<int>(cfg.getInt("threads", -1)));
    SweepResult cold, warm;
    progress("cold sweep (prefix re-simulated per point)");
    const double cold_s = wallSeconds([&] {
        cold = runner.runColdSweep(params, policies::baseline(), prefix,
                                   points);
    });
    progress("warm sweep (prefix forked via GpuTop::forkFrom)");
    const double warm_s = wallSeconds([&] {
        warm = runner.runWarmSweep(params, policies::baseline(), prefix,
                                   points);
    });

    // The whole point: forking must not change any result.
    bool identical = true;
    TablePrinter t({"operating point", "suffix ms", "IPC", "energy J",
                    "identical"});
    ExportSink sink = ExportSink::metricsTable();
    sink.meta("bench", ExportCell::str("fork_sweep"));
    sink.meta("kernel", ExportCell::str(kernel));
    sink.meta("invocations", ExportCell::integer(invocations));
    sink.meta("prefix", ExportCell::integer(prefix));
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &c = cold.points[i];
        const auto &w = warm.points[i];
        const bool same =
            c.total.smCycles == w.total.smCycles &&
            c.total.instructions == w.total.instructions &&
            c.total.dynamicJoules == w.total.dynamicJoules &&
            c.total.staticJoules == w.total.staticJoules;
        identical = identical && same;
        sink.addResult(params.name, "cold-" + c.policy, c.total,
                       c.invocations);
        sink.addResult(params.name, "warm-" + w.policy, w.total,
                       w.invocations);
        t.row({c.policy, fmt(w.total.seconds * 1e3, 3),
               fmt(w.total.ipc(), 3), fmt(w.total.totalJoules(), 5),
               same ? "yes" : "NO"});
    }
    t.print();

    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    std::cout << "cold " << fmt(cold_s, 2) << " s, warm "
              << fmt(warm_s, 2) << " s -> " << fmt(speedup, 2)
              << "x wall-clock reduction\n";

    if (!json_path.empty()) {
        sink.writeFile(json_path, exportFormatForPath(
                                      json_path, ExportFormat::Json));
        progress("wrote " + json_path);
    }

    if (!identical) {
        std::cerr << "FAIL: warm sweep diverged from cold sweep\n";
        return 1;
    }
    return 0;
}
