/**
 * @file
 * Fork-sweep demonstration: a VF x CTA operating-point sweep over the
 * tail of a multi-invocation application, run twice — cold (every point
 * re-simulates the shared warm-up prefix) and warm (the prefix is
 * simulated once and every point forks the warmed GPU state via
 * GpuTop::forkFrom). Per-point results are identical by construction
 * (asserted); the warm sweep only buys wall-clock time.
 *
 * Both sweeps run through the unified runSweep() plan API with the
 * same declarative grid, so their tables align row for row; the export
 * is the warm sweep's table in the ExportSink::sweepTable() schema
 * (docs/AUTOTUNE.md).
 *
 * Usage:
 *   bench_fork_sweep [kernel=<name>] [invocations=<n>] [prefix=<n>]
 *                    [threads=<n>] [export=<path>]
 *
 * invocations=<n> synthesizes an n-invocation schedule from the chosen
 * roster kernel; prefix=<n> of those are the shared warm-up.
 */

#include <chrono>
#include <functional>

#include "bench_util.hh"
#include "common/config.hh"
#include "harness/export.hh"
#include "sim/vf.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

double
wallSeconds(const std::function<void()> &work)
{
    const auto start = std::chrono::steady_clock::now();
    work();
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start;
    return d.count();
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernel", "roster kernel to sweep", {}},
            {"invocations", "synthesized invocation count", {}},
            {"prefix", "shared warm-up invocations", {}},
            {"threads", "worker threads (default: EQ_THREADS or "
                        "hardware)", {}},
            {"export", "write the sweep table (.csv/.json)", {"json"}},
        });
    const std::string kernel = cfg.getString("kernel", "sgemm");
    const int invocations =
        static_cast<int>(cfg.getInt("invocations", 8));
    const int prefix = static_cast<int>(cfg.getInt("prefix", 6));
    const std::string json_path = cfg.getString("export", "");

    KernelParams params = KernelZoo::byName(kernel).params;
    params.invocations.assign(static_cast<std::size_t>(invocations),
                              InvocationMod{});

    // A 2x3 VF x CTA grid: six operating points sharing one warm-up.
    SweepPlan plan;
    plan.kernel = params;
    plan.prefixPolicy = policies::baseline();
    plan.prefixInvocations = prefix;
    plan.grid.smStates = {VfState::Normal, VfState::High};
    plan.grid.memStates = {VfState::Normal};
    plan.grid.blocks = {1, 2, params.maxBlocksPerSm};

    banner("fork sweep: " + kernel + " x 6 operating points (" +
           std::to_string(prefix) + "-invocation shared prefix of " +
           std::to_string(invocations) + ")");

    ExperimentRunner runner = makeRunner(
        GpuConfig::gtx480(),
        static_cast<int>(cfg.getInt("threads", -1)));
    SweepResult cold, warm;
    progress("cold sweep (prefix re-simulated per point)");
    plan.strategy = SweepStrategy::Cold;
    const double cold_s =
        wallSeconds([&] { cold = runner.runSweep(plan); });
    progress("warm sweep (prefix forked via GpuTop::forkFrom)");
    plan.strategy = SweepStrategy::Warm;
    const double warm_s =
        wallSeconds([&] { warm = runner.runSweep(plan); });

    // The whole point: forking must not change any result.
    bool identical = cold.table.size() == warm.table.size();
    TablePrinter t({"operating point", "suffix ms", "IPC", "energy J",
                    "identical"});
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
        const auto &c = cold.points[i];
        const auto &w = warm.points[i];
        const bool same =
            c.total.smCycles == w.total.smCycles &&
            c.total.instructions == w.total.instructions &&
            c.total.dynamicJoules == w.total.dynamicJoules &&
            c.total.staticJoules == w.total.staticJoules;
        identical = identical && same;
        t.row({c.policy, fmt(w.total.seconds * 1e3, 3),
               fmt(w.total.ipc(), 3), fmt(w.total.totalJoules(), 5),
               same ? "yes" : "NO"});
    }
    t.print();

    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    std::cout << "cold " << fmt(cold_s, 2) << " s, warm "
              << fmt(warm_s, 2) << " s -> " << fmt(speedup, 2)
              << "x wall-clock reduction\n";

    if (!json_path.empty()) {
        ExportSink sink = ExportSink::sweepTable();
        sink.meta("bench", ExportCell::str("fork_sweep"));
        sink.meta("kernel", ExportCell::str(kernel));
        sink.meta("invocations", ExportCell::integer(invocations));
        sink.meta("prefix", ExportCell::integer(prefix));
        sink.meta("strategy", ExportCell::str("warm"));
        sink.meta("identical_to_cold",
                  ExportCell::integer(identical ? 1 : 0));
        for (const auto &row : warm.table)
            sink.addSweepPoint(row);
        sink.writeFile(json_path, exportFormatForPath(
                                      json_path, ExportFormat::Json));
        progress("wrote " + json_path);
    }

    if (!identical) {
        std::cerr << "FAIL: warm sweep diverged from cold sweep\n";
        return 1;
    }
    return 0;
}
