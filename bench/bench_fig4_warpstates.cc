/**
 * @file
 * Figure 4 reproduction: distribution of warp states per kernel at
 * maximum concurrency — the fractions of observed warp-cycles spent
 * Waiting, in X_mem ("Excess Mem"), in X_alu ("Excess ALU"), and the
 * remainder (issued/others).
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    banner("Figure 4: state of warps at maximum threads (fraction of "
           "active warp-cycles)");
    TablePrinter t({"category", "kernel", "waiting", "excess-mem",
                    "excess-alu", "issued", "other"});

    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig4 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto r = runner.run(entry.params, policies::baseline());
        const auto &o = r.total.outcomeTotals;
        const double active = static_cast<double>(o.active);
        if (active <= 0)
            continue;
        const double waiting = static_cast<double>(o.waiting) / active;
        const double xmem = static_cast<double>(o.excessMem) / active;
        const double xalu = static_cast<double>(o.excessAlu) / active;
        const double issued = static_cast<double>(o.issued) / active;
        const double other = std::max(
            0.0, 1.0 - waiting - xmem - xalu - issued);
        t.row({kernelCategoryName(entry.params.category), name,
               pct(waiting), pct(xmem), pct(xalu), pct(issued),
               pct(other)});
    }
    t.print();

    std::cout << "\nPaper reference: compute kernels show dominant "
                 "Excess-ALU; memory and cache kernels dominant "
                 "Excess-Mem + Waiting; unsaturated kernels lean one "
                 "way without saturating (and leuko-1's texture path "
                 "hides its memory pressure: near-zero Excess-Mem).\n";
    return 0;
}
