/**
 * @file
 * Table II reproduction: the benchmark roster with measured baseline
 * characteristics alongside the paper's structural parameters.
 *
 * Usage:
 *   bench_table2_roster [kernels=<n>] [threads=<n>] [export=<path>]
 *
 * kernels=<n> truncates the roster to its first n entries (the CI smoke
 * job uses this as a reduced budget); export=<path> additionally
 * exports every measured row through an ExportSink for the workflow
 * artifact (format inferred from the path suffix, JSON by default).
 */

#include "bench_util.hh"
#include "common/config.hh"
#include "harness/export.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernels", "truncate the roster to its first n entries",
             {}},
            {"threads", "worker threads (default: EQ_THREADS or "
                        "hardware)", {}},
            {"export", "write measured rows (.csv/.json)", {"json"}},
        });
    const auto limit = cfg.getInt("kernels", -1);
    const std::string json_path = cfg.getString("export", "");

    ExperimentRunner runner = makeRunner(
        GpuConfig::gtx480(),
        static_cast<int>(cfg.getInt("threads", -1)));
    ExportSink sink = ExportSink::metricsTable();
    sink.meta("bench", ExportCell::str("table2_roster"));

    banner("Table II: kernel roster (paper structure + measured "
           "baseline behaviour)");
    TablePrinter t({"application", "kernel", "type", "fraction",
                    "blocks", "w_cta", "ipc", "l1-hit", "x_alu", "x_mem"});

    std::vector<std::string> names = kernelsInFigureOrder();
    if (limit >= 0 && static_cast<std::size_t>(limit) < names.size())
        names.resize(static_cast<std::size_t>(limit));

    for (const auto &name : names) {
        progress("table2 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto r = runner.run(entry.params, policies::baseline());
        sink.addResult(name, "baseline", r.total, r.invocations);
        const double cycles = static_cast<double>(r.total.outcomeCycles);
        t.row({entry.application, name,
               kernelCategoryName(entry.params.category),
               fmt(entry.appFraction, 2),
               std::to_string(entry.params.maxBlocksPerSm),
               std::to_string(entry.params.warpsPerBlock),
               fmt(r.total.ipc(), 2), pct(r.total.l1HitRate()),
               fmt(static_cast<double>(r.total.outcomeTotals.excessAlu) /
                       cycles, 2),
               fmt(static_cast<double>(r.total.outcomeTotals.excessMem) /
                       cycles, 2)});
    }
    t.print();

    if (!json_path.empty()) {
        sink.writeFile(json_path, exportFormatForPath(
                                      json_path, ExportFormat::Json));
        progress("wrote " + json_path);
    }

    std::cout << "\nNote: spmv is listed as Compute in the paper's "
                 "Table II but treated as cache-sensitive by Figures 4, "
                 "9, 10 and 11b; this repo follows the figures (see "
                 "DESIGN.md).\n";
    return 0;
}
