/**
 * @file
 * Table II reproduction: the benchmark roster with measured baseline
 * characteristics alongside the paper's structural parameters.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    banner("Table II: kernel roster (paper structure + measured "
           "baseline behaviour)");
    TablePrinter t({"application", "kernel", "type", "fraction",
                    "blocks", "w_cta", "ipc", "l1-hit", "x_alu", "x_mem"});

    for (const auto &name : kernelsInFigureOrder()) {
        progress("table2 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto r = runner.run(entry.params, policies::baseline());
        const double cycles = static_cast<double>(r.total.outcomeCycles);
        t.row({entry.application, name,
               kernelCategoryName(entry.params.category),
               fmt(entry.appFraction, 2),
               std::to_string(entry.params.maxBlocksPerSm),
               std::to_string(entry.params.warpsPerBlock),
               fmt(r.total.ipc(), 2), pct(r.total.l1HitRate()),
               fmt(static_cast<double>(r.total.outcomeTotals.excessAlu) /
                       cycles, 2),
               fmt(static_cast<double>(r.total.outcomeTotals.excessMem) /
                       cycles, 2)});
    }
    t.print();

    std::cout << "\nNote: spmv is listed as Compute in the paper's "
                 "Table II but treated as cache-sensitive by Figures 4, "
                 "9, 10 and 11b; this repo follows the figures (see "
                 "DESIGN.md).\n";
    return 0;
}
