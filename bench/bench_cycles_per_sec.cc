/**
 * @file
 * Simulator-throughput benchmark backing the CI perf gate: short
 * fixed-workload runs of one roster kernel per paper category
 * (sgemm = compute, lbm = memory, kmn = cache), reporting simulated SM
 * cycles per wall-clock second and the fraction of SM cycles the
 * cycle-skipping fast path jumped over (docs/FAST_PATH.md).
 *
 * The workloads are fully deterministic, so the simulated cycle counts
 * are fixed and only wall-clock time varies between machines. CI runs
 * this in Release and compares cycles/sec against the committed
 * BENCH_BASELINE.json via scripts/check_bench_baseline.py (fail on a
 * >25% regression, warn at >10%). Refresh the baseline with:
 *
 *   build/bench/bench_cycles_per_sec export=BENCH_BASELINE.json
 *
 * Usage:
 *   bench_cycles_per_sec [kernels=a,b,c] [threads=<n>] [repeats=<n>]
 *                        [fast_path=0|1] [compare=0|1] [shim=0|1]
 *                        [export=<path>]
 *   repeats=N times each kernel N times and keeps the best wall time
 *   (simulated results are identical across repeats by construction).
 *   compare=1 additionally times each kernel with fast_path=0 and
 *   reports the fast-path wall-clock speedup.
 *   shim=1 (default) appends a "shim:lbm" row timing a single-kernel
 *   run through the deprecated runKernelsConcurrent() tenant shim, so
 *   the perf gate tracks the tenant machinery's overhead too.
 *   serve=1 (default) appends "serve:poisson" and "serve:edf" rows
 *   timing a fixed serving workload through RequestServer under the
 *   preemptive and earliest-deadline-first dispatchers
 *   (docs/SERVING.md), so serving throughput is regression-gated and
 *   its simulated cycle counts pinned from day one.
 */

#include <algorithm>
#include <chrono>
#include <sstream>

#include "bench_util.hh"
#include "common/config.hh"
#include "gpu/gpu_top.hh"
#include "harness/export.hh"
#include "kernels/synthetic_kernel.hh"
#include "serve/arrival.hh"
#include "serve/server.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

std::vector<std::string>
parseKernelList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(tok);
    return out;
}

/** Best-of-@p repeats wall seconds plus the (identical) run result. */
struct TimedRun
{
    double wallSeconds = 0.0;
    AppRunResult result;
};

/** Best-of-@p repeats wall seconds for a single-kernel shim co-run. */
struct TimedShim
{
    double wallSeconds = 0.0;
    RunMetrics metrics;
};

/** Best-of-@p repeats wall seconds for the fixed serving workload. */
struct TimedServe
{
    double wallSeconds = 0.0;
    ServeSummary summary;
};

/**
 * The perf-gate serving workload: a fixed-seed Poisson burst over a
 * mixed short/long kernel set under @p policy, so the gate times the
 * whole serving stack — quantum stepping, checkpoint shelves,
 * dispatch bookkeeping. Deterministic by construction, so its
 * executed-cycle count is pinned by the exact sm_cycles check.
 * @p slo_cycles stamps every request with a deadline, which the
 * deadline-aware policies need to order by.
 */
TimedServe
timeServe(const GpuConfig &gcfg, int repeats, ServePolicy policy,
          Cycle slo_cycles)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.count = 24;
    spec.ratePerMcycle = 120.0;
    spec.seed = 7;
    spec.sloCycles = slo_cycles;
    spec.mix = {{"sgemm", 1}, {"bp-1", 0}, {"prtcl-2", 0}};
    const std::vector<ServeRequest> requests = generateArrivals(spec);

    ServeOptions opts;
    opts.policy = policy;
    opts.kernelScale = 0.25;

    TimedServe out;
    for (int i = 0; i < repeats; ++i) {
        GpuTop gpu(gcfg);
        RequestServer server(gpu, opts);
        const auto start = std::chrono::steady_clock::now();
        ServeReport rep = server.serve(requests);
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (i == 0 || wall.count() < out.wallSeconds)
            out.wallSeconds = wall.count();
        out.summary = std::move(rep.summary);
    }
    return out;
}

TimedShim
timeShim(const GpuConfig &gcfg, int repeats, const ZooEntry &entry)
{
    TimedShim out;
    for (int i = 0; i < repeats; ++i) {
        GpuTop gpu(gcfg);
        SyntheticKernel launch(entry.params, 0);
        const auto start = std::chrono::steady_clock::now();
        RunMetrics m = gpu.runKernelsConcurrent({&launch});
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (i == 0 || wall.count() < out.wallSeconds)
            out.wallSeconds = wall.count();
        out.metrics = std::move(m);
    }
    return out;
}

TimedRun
timeKernel(const GpuConfig &gcfg, int threads, int repeats,
           const ZooEntry &entry)
{
    TimedRun out;
    for (int i = 0; i < repeats; ++i) {
        // A fresh runner per repeat: the runner's result cache would
        // otherwise satisfy repeats 2..N without simulating.
        ExperimentRunner runner(gcfg, PowerConfig::gtx480(), threads);
        const auto start = std::chrono::steady_clock::now();
        auto r = runner.run(entry.params, policies::baseline());
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (i == 0 || wall.count() < out.wallSeconds)
            out.wallSeconds = wall.count();
        out.result = std::move(r);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"kernels", "comma-separated roster kernels to time", {}},
            {"threads", "simulation worker threads (1 = serial)", {}},
            {"repeats", "timings per kernel; best is reported", {}},
            {"fast_path", "enable the cycle-skipping fast path", {}},
            {"compare",
             "also time fast_path=0 and report the speedup", {}},
            {"shim",
             "append a shim:lbm row through runKernelsConcurrent", {}},
            {"serve",
             "append a serve:poisson row through RequestServer", {}},
            {"export", "write the throughput table (.csv/.json)",
             {"json"}},
        });
    const std::vector<std::string> kernels =
        parseKernelList(cfg.getString("kernels", "sgemm,lbm,kmn"));
    const int threads = static_cast<int>(cfg.getInt("threads", 1));
    const int repeats =
        std::max(1, static_cast<int>(cfg.getInt("repeats", 3)));
    const bool fast_path = cfg.getBool("fast_path", true);
    const bool compare = cfg.getBool("compare", false);
    const bool shim = cfg.getBool("shim", true);
    const bool serve = cfg.getBool("serve", true);
    const std::string export_path = cfg.getString("export", "");

    GpuConfig gcfg = GpuConfig::gtx480();
    gcfg.fastPath = fast_path;

    banner("simulator throughput (threads=" + std::to_string(threads) +
           ", repeats=" + std::to_string(repeats) +
           ", fast_path=" + std::string(fast_path ? "1" : "0") + ")");

    std::vector<std::string> columns = {"kernel", "wall_seconds",
                                        "sm_cycles", "cycles_per_sec",
                                        "fast_forwarded_cycles",
                                        "ff_ratio"};
    std::vector<std::string> headers = {"kernel",  "wall s",
                                        "cycles",  "cycles/s",
                                        "ff",      "ff ratio"};
    if (compare) {
        columns.insert(columns.end(),
                       {"slow_wall_seconds", "fast_speedup"});
        headers.insert(headers.end(), {"slow s", "speedup"});
    }
    ExportSink sink(columns);
    sink.meta("bench", ExportCell::str("cycles_per_sec"));
    sink.meta("threads", ExportCell::integer(threads));
    sink.meta("repeats", ExportCell::integer(repeats));
    sink.meta("fast_path", ExportCell::integer(fast_path ? 1 : 0));

    TablePrinter t(headers);
    for (const auto &name : kernels) {
        const ZooEntry &entry = KernelZoo::byName(name);
        progress("timing " + name);
        const TimedRun run = timeKernel(gcfg, threads, repeats, entry);

        const auto &m = run.result.total;
        const double cps =
            run.wallSeconds > 0.0
                ? static_cast<double>(m.smCycles) / run.wallSeconds
                : 0.0;
        const double ff_ratio =
            m.smCycles
                ? static_cast<double>(m.fastForwardedCycles) /
                      static_cast<double>(m.smCycles)
                : 0.0;

        std::vector<ExportCell> cells = {
            ExportCell::str(name), ExportCell::num(run.wallSeconds),
            ExportCell::integer(static_cast<std::int64_t>(m.smCycles)),
            ExportCell::num(cps),
            ExportCell::integer(
                static_cast<std::int64_t>(m.fastForwardedCycles)),
            ExportCell::num(ff_ratio)};
        std::vector<std::string> row = {
            name, fmt(run.wallSeconds, 3), std::to_string(m.smCycles),
            fmt(cps, 0), std::to_string(m.fastForwardedCycles),
            fmt(ff_ratio, 3)};

        if (compare) {
            GpuConfig slow_cfg = gcfg;
            slow_cfg.fastPath = false;
            progress("timing " + name + " (fast_path=0)");
            const TimedRun slow =
                timeKernel(slow_cfg, threads, repeats, entry);
            if (slow.result.total.smCycles != m.smCycles) {
                fatal("fast/slow cycle mismatch on ", name, ": ",
                      m.smCycles, " vs ", slow.result.total.smCycles);
            }
            const double speedup = run.wallSeconds > 0.0
                                       ? slow.wallSeconds /
                                             run.wallSeconds
                                       : 0.0;
            cells.insert(cells.end(),
                         {ExportCell::num(slow.wallSeconds),
                          ExportCell::num(speedup)});
            row.insert(row.end(), {fmt(slow.wallSeconds, 3),
                                   fmt(speedup, 2) + "x"});
        }
        sink.row(cells);
        t.row(row);
    }

    if (shim) {
        // Single-kernel run through the tenant shim: bit-identical
        // simulated cycles (the shim vetoes the fast path, so ff=0)
        // but timed separately so the perf gate catches overhead in
        // the invocation/tenant bookkeeping itself.
        const ZooEntry &entry = KernelZoo::byName("lbm");
        progress("timing shim:lbm (runKernelsConcurrent)");
        const TimedShim run = timeShim(gcfg, repeats, entry);
        const double cps =
            run.wallSeconds > 0.0
                ? static_cast<double>(run.metrics.smCycles) /
                      run.wallSeconds
                : 0.0;
        std::vector<ExportCell> cells = {
            ExportCell::str("shim:lbm"),
            ExportCell::num(run.wallSeconds),
            ExportCell::integer(
                static_cast<std::int64_t>(run.metrics.smCycles)),
            ExportCell::num(cps), ExportCell::integer(0),
            ExportCell::num(0.0)};
        std::vector<std::string> row = {
            "shim:lbm", fmt(run.wallSeconds, 3),
            std::to_string(run.metrics.smCycles), fmt(cps, 0), "0",
            fmt(0.0, 3)};
        if (compare) {
            cells.insert(cells.end(), {ExportCell::num(run.wallSeconds),
                                       ExportCell::num(1.0)});
            row.insert(row.end(), {fmt(run.wallSeconds, 3), "1.00x"});
        }
        sink.row(cells);
        t.row(row);
    }

    if (serve) {
        // The serving stack end to end; sm_cycles here is the summed
        // device cycles executed across requests (the serving wall
        // clock adds modeled preemption costs on top, so it is not a
        // device quantity). Two rows: the preemptive dispatcher on a
        // deadline-free stream, and edf on the same stream with a
        // uniform 70k-cycle SLO to order by.
        struct ServeRow
        {
            const char *label;
            ServePolicy policy;
            Cycle sloCycles;
        };
        for (const ServeRow &sr :
             {ServeRow{"serve:poisson", ServePolicy::Preempt, 0},
              ServeRow{"serve:edf", ServePolicy::Edf, 70'000}}) {
            progress(std::string("timing ") + sr.label +
                     " (RequestServer)");
            const TimedServe run =
                timeServe(gcfg, repeats, sr.policy, sr.sloCycles);
            const double cps =
                run.wallSeconds > 0.0
                    ? static_cast<double>(run.summary.executedCycles) /
                          run.wallSeconds
                    : 0.0;
            std::vector<ExportCell> cells = {
                ExportCell::str(sr.label),
                ExportCell::num(run.wallSeconds),
                ExportCell::integer(static_cast<std::int64_t>(
                    run.summary.executedCycles)),
                ExportCell::num(cps), ExportCell::integer(0),
                ExportCell::num(0.0)};
            std::vector<std::string> row = {
                sr.label, fmt(run.wallSeconds, 3),
                std::to_string(run.summary.executedCycles), fmt(cps, 0),
                "0", fmt(0.0, 3)};
            if (compare) {
                cells.insert(cells.end(),
                             {ExportCell::num(run.wallSeconds),
                              ExportCell::num(1.0)});
                row.insert(row.end(),
                           {fmt(run.wallSeconds, 3), "1.00x"});
            }
            sink.row(cells);
            t.row(row);
        }
    }
    t.print();

    if (!export_path.empty()) {
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
        progress("wrote " + export_path);
    }
    return 0;
}
