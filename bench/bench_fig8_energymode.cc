/**
 * @file
 * Figure 8 reproduction: energy mode.
 *
 * Top: performance relative to baseline for Equalizer (energy mode),
 * static SM -15% and static memory -15%. Bottom: energy savings for
 * Equalizer versus the "static best" point (the static throttle that
 * keeps performance above 0.95, as the paper defines it).
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;
    const auto eq = policies::equalizer(EqualizerMode::Energy);

    banner("Figure 8 (top): energy mode — performance vs baseline");
    TablePrinter perf({"category", "kernel", "equalizer", "sm-low",
                       "mem-low"});
    TablePrinter savings({"category", "kernel", "equalizer",
                          "static-best(P>0.95)"});

    CategoryAggregator eq_perf;
    CategoryAggregator eq_save;
    CategoryAggregator static_save;
    CategoryAggregator sm_perf;
    CategoryAggregator mem_perf;

    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig8 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto c = entry.params.category;
        const auto base = runner.run(entry.params, policies::baseline());
        const auto r_eq = runner.run(entry.params, eq);
        const auto r_sm = runner.run(entry.params, policies::smLow());
        const auto r_mem = runner.run(entry.params, policies::memLow());

        const double p_eq = speedupOver(base.total, r_eq.total);
        const double p_sm = speedupOver(base.total, r_sm.total);
        const double p_mem = speedupOver(base.total, r_mem.total);
        const double save_eq = -energyIncreaseOver(base.total, r_eq.total);
        const double save_sm = -energyIncreaseOver(base.total, r_sm.total);
        const double save_mem =
            -energyIncreaseOver(base.total, r_mem.total);

        // Paper's "static best": whichever static throttle loses no more
        // than 5% performance; when both qualify, the bigger saver.
        double best_static = 0.0;
        if (p_sm > 0.95)
            best_static = std::max(best_static, save_sm);
        if (p_mem > 0.95)
            best_static = std::max(best_static, save_mem);

        eq_perf.add(c, p_eq);
        sm_perf.add(c, p_sm);
        mem_perf.add(c, p_mem);
        eq_save.add(c, 1.0 + save_eq);
        static_save.add(c, 1.0 + best_static);

        perf.row({kernelCategoryName(c), name, fmt(p_eq, 3), fmt(p_sm, 3),
                  fmt(p_mem, 3)});
        savings.row({kernelCategoryName(c), name, pct(save_eq),
                     pct(best_static)});
    }

    for (auto c : categoryOrder()) {
        perf.row({std::string("geomean-") + kernelCategoryName(c), "",
                  fmt(eq_perf.categoryGeomean(c), 3),
                  fmt(sm_perf.categoryGeomean(c), 3),
                  fmt(mem_perf.categoryGeomean(c), 3)});
    }
    perf.row({"geomean-all", "", fmt(eq_perf.overallGeomean(), 3),
              fmt(sm_perf.overallGeomean(), 3),
              fmt(mem_perf.overallGeomean(), 3)});
    perf.print();

    banner("Figure 8 (bottom): energy savings vs baseline");
    for (auto c : categoryOrder()) {
        savings.row({std::string("geomean-") + kernelCategoryName(c), "",
                     pct(eq_save.categoryGeomean(c) - 1.0),
                     pct(static_save.categoryGeomean(c) - 1.0)});
    }
    savings.row({"geomean-all", "", pct(eq_save.overallGeomean() - 1.0),
                 pct(static_save.overallGeomean() - 1.0)});
    savings.print();

    std::cout << "\nPaper reference: Equalizer energy mode = 15% energy"
                 " saved at +5% performance; static best = 8% saved;"
                 " SM-low/mem-low alone lose 9%/7% performance.\n";
    return 0;
}
