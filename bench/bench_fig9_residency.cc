/**
 * @file
 * Figure 9 reproduction: distribution of time over the VF operating
 * points for every kernel, in performance (P) and energy (E) modes.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

struct Residency
{
    double coreHigh;
    double coreLow;
    double memHigh;
    double memLow;
    double normal;
};

Residency
residencyOf(const RunMetrics &m)
{
    double total = 0.0;
    for (int i = 0; i < numVfStates; ++i)
        total += static_cast<double>(
            m.smResidency[static_cast<std::size_t>(i)]);
    if (total <= 0.0)
        return Residency{0, 0, 0, 0, 1};
    auto frac = [total](Tick t) { return static_cast<double>(t) / total; };
    Residency r{};
    r.coreHigh = frac(m.smResidency[static_cast<int>(VfState::High)]);
    r.coreLow = frac(m.smResidency[static_cast<int>(VfState::Low)]);
    r.memHigh = frac(m.memResidency[static_cast<int>(VfState::High)]);
    r.memLow = frac(m.memResidency[static_cast<int>(VfState::Low)]);
    r.normal =
        std::max(0.0, 1.0 - r.coreHigh - r.coreLow - r.memHigh - r.memLow);
    return r;
}

} // namespace

int
main()
{
    ExperimentRunner runner;

    banner("Figure 9: time at each VF operating point (P = performance "
           "mode, E = energy mode)");
    TablePrinter t({"category", "kernel", "mode", "core-high", "core-low",
                    "mem-high", "mem-low", "normal"});

    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig9 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto perf = runner.run(
            entry.params, policies::equalizer(EqualizerMode::Performance));
        const auto energy = runner.run(
            entry.params, policies::equalizer(EqualizerMode::Energy));
        const Residency rp = residencyOf(perf.total);
        const Residency re = residencyOf(energy.total);
        t.row({kernelCategoryName(entry.params.category), name, "P",
               pct(rp.coreHigh), pct(rp.coreLow), pct(rp.memHigh),
               pct(rp.memLow), pct(rp.normal)});
        t.row({"", "", "E", pct(re.coreHigh), pct(re.coreLow),
               pct(re.memHigh), pct(re.memLow), pct(re.normal)});
    }
    t.print();

    std::cout << "\nPaper reference: compute kernels sit at core-high in "
                 "P mode and mem-low in E mode; memory/cache kernels at "
                 "mem-high in P mode and core-low in E mode; phase "
                 "kernels (histo-3, mri-g-1, mri-g-2, sc) split time "
                 "between both boosts.\n";
    return 0;
}
