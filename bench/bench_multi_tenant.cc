/**
 * @file
 * Multi-tenant co-run benchmark (docs/MULTI_TENANT.md): times one
 * co-run of several zoo kernels under the SM-partition + limiter
 * machinery and reports per-tenant throughput plus Jain's fairness
 * index over per-SM block throughput. Backs the bench-smoke CI job.
 *
 * Usage:
 *   bench_multi_tenant [tenants=a,b] [sm_limit=l0,l1,...]
 *                      [partition=rr|blocked] [threads=<n>]
 *                      [repeats=<n>] [export=<path>]
 *   sm_limit entries pair positionally with tenants; missing entries
 *   default to 1.0 (unlimited).
 */

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "harness/co_run.hh"
#include "harness/export.hh"
#include "sim/parallel_executor.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(tok);
    return out;
}

/**
 * Jain's fairness index over @p xs: (sum x)^2 / (n * sum x^2).
 * 1.0 = perfectly fair, 1/n = one tenant starves all others.
 */
double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0, sq = 0.0;
    for (double x : xs) {
        sum += x;
        sq += x * x;
    }
    return sq > 0.0 ? (sum * sum) / (static_cast<double>(xs.size()) * sq)
                    : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"tenants", "comma-separated zoo kernels, one per tenant",
             {}},
            {"sm_limit", "per-tenant SM-utilization caps (positional)",
             {}},
            {"partition", "SM partition policy: rr or blocked", {}},
            {"threads", "simulation worker threads (1 = serial)", {}},
            {"repeats", "timings per co-run; best is reported", {}},
            {"export", "write the per-tenant table (.csv/.json)",
             {"json"}},
        });

    const std::vector<std::string> kernels =
        splitCsv(cfg.getString("tenants", "lbm,kmn"));
    const std::vector<std::string> limits =
        splitCsv(cfg.getString("sm_limit", ""));
    if (limits.size() > kernels.size())
        fatal("sm_limit has more entries than tenants");
    const PartitionPolicy partition =
        partitionPolicyFromName(cfg.getString("partition", "rr"));
    const int threads = static_cast<int>(cfg.getInt("threads", 1));
    const int repeats =
        std::max(1, static_cast<int>(cfg.getInt("repeats", 3)));
    const std::string export_path = cfg.getString("export", "");

    std::vector<CoRunTenant> tenants;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        CoRunTenant t;
        t.kernel = kernels[i];
        t.name = "t" + std::to_string(i);
        if (i < limits.size() && !limits[i].empty())
            t.smLimit = std::stod(limits[i]);
        tenants.push_back(std::move(t));
    }

    banner("multi-tenant co-run (threads=" + std::to_string(threads) +
           ", repeats=" + std::to_string(repeats) + ")");

    CoRunOptions opts;
    opts.partition = partition;

    double best_wall = 0.0;
    CoRunResult result;
    for (int i = 0; i < repeats; ++i) {
        GpuTop gpu(GpuConfig::gtx480());
        std::unique_ptr<ParallelExecutor> exec;
        if (threads != 1) {
            exec = std::make_unique<ParallelExecutor>(threads);
            gpu.setParallelExecutor(exec.get());
        }
        progress("co-run repeat " + std::to_string(i + 1));
        const auto start = std::chrono::steady_clock::now();
        CoRunResult r = runCoRun(gpu, tenants, opts);
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (i == 0 || wall.count() < best_wall)
            best_wall = wall.count();
        result = std::move(r);
    }

    // Fairness over per-SM block throughput: each tenant's completed
    // blocks normalized by its share of the machine.
    std::vector<double> per_sm;
    for (const auto &t : result.tenants) {
        per_sm.push_back(t.smCount > 0
                             ? static_cast<double>(t.blocksCompleted) /
                                   static_cast<double>(t.smCount)
                             : 0.0);
    }
    const double fairness = jainIndex(per_sm);

    ExportSink sink = ExportSink::tenantTable();
    sink.meta("bench", ExportCell::str("multi_tenant"));
    sink.meta("partition",
              ExportCell::str(partitionPolicyName(partition)));
    sink.meta("threads", ExportCell::integer(threads));
    sink.meta("co_run", ExportCell::str(result.combined.kernel));
    sink.meta("sm_cycles",
              ExportCell::integer(
                  static_cast<std::int64_t>(result.combined.smCycles)));
    sink.meta("wall_seconds", ExportCell::num(best_wall));
    sink.meta("fairness_index", ExportCell::num(fairness));

    TablePrinter t({"tenant", "kernel", "limit", "sms", "dispatched",
                    "completed", "occupancy", "blocks/s"});
    for (const auto &row : result.tenants) {
        sink.addTenantMetrics(partitionPolicyName(partition), row);
        const double bps =
            best_wall > 0.0
                ? static_cast<double>(row.blocksCompleted) / best_wall
                : 0.0;
        t.row({row.tenant, row.kernels, fmt(row.smLimit, 2),
               std::to_string(row.smCount),
               std::to_string(row.dispatchedBlocks),
               std::to_string(row.blocksCompleted),
               fmt(row.occupancyShare(), 3), fmt(bps, 0)});
    }
    t.print();
    progress("co-run " + result.combined.kernel + ": " +
             std::to_string(result.combined.smCycles) +
             " sm cycles, fairness " + fmt(fairness, 4));

    if (!export_path.empty()) {
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
        progress("wrote " + export_path);
    }
    return 0;
}
