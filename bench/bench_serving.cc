/**
 * @file
 * Serving-policy comparison bench (docs/SERVING.md), two workloads:
 *
 * 1. Bursty: one long, low-priority kernel plus a flood of short,
 *    high-priority requests arriving while it runs, served under
 *    fcfs, sjf and preempt. Under FCFS every short request eats the
 *    long kernel's head-of-line blocking, while the preemptive
 *    dispatcher evicts the long kernel to a checkpoint shelf and
 *    serves the shorts immediately, so the preemptive p99 must come
 *    in below the FCFS p99 by roughly the long kernel's runtime.
 *
 * 2. Deadline-mixed: a backlog of long requests with loose SLOs
 *    interleaved with short requests on tight SLOs, served under
 *    fcfs, edf and llf. FCFS makes every short wait out the queued
 *    longs and bust its deadline; the deadline-aware policies jump
 *    the shorts ahead of queued longs, so edf's and llf's
 *    SLO-violation rates must come in strictly below fcfs's.
 *
 * Both wins are asserted with fatal() when the ordering breaks,
 * making each policy win a regression-gated fact, and every run
 * exports one summary row per (workload, policy).
 *
 * Usage:
 *   bench_serving [shorts=<n>] [export=<path>]
 */

#include "bench_util.hh"
#include "common/config.hh"
#include "gpu/gpu_top.hh"
#include "harness/export.hh"
#include "serve/arrival.hh"
#include "serve/server.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

/**
 * One long prtcl-2 (~58k device cycles at serving scale, priority 0)
 * at t=0, then @p shorts sgemm requests (~3.7k cycles, priority 1)
 * spread across the long kernel's runtime. Over 100 shorts keeps the
 * nearest-rank p99 off the single long request, so the percentile
 * reads the short-request experience.
 */
std::vector<ServeRequest>
burstyWorkload(int shorts)
{
    std::vector<ServeRequest> reqs;
    ServeRequest lng;
    lng.id = 0;
    lng.kernel = "prtcl-2";
    lng.priority = 0;
    lng.arrivalCycle = 0;
    reqs.push_back(lng);
    for (int i = 0; i < shorts; ++i) {
        ServeRequest s;
        s.id = i + 1;
        s.kernel = "sgemm";
        s.priority = 1;
        s.arrivalCycle = 2000 + static_cast<Cycle>(i) * 480;
        reqs.push_back(s);
    }
    return reqs;
}

/**
 * Four long prtcl-2 requests (~58k cycles each, loose 1M-cycle SLO)
 * front-load the queue, and 20 short sgemm requests (~3.7k cycles,
 * tight 150k-cycle SLO) arrive while the first long runs. FCFS drains
 * the longs first, so every short waits ~4 long runtimes and busts
 * its deadline; edf/llf reorder the queued shorts ahead of the queued
 * longs and meet them all — while the longs' loose deadlines still
 * hold either way.
 */
std::vector<ServeRequest>
deadlineMixedWorkload()
{
    std::vector<ServeRequest> reqs;
    int id = 0;
    for (int i = 0; i < 4; ++i) {
        ServeRequest lng;
        lng.id = id++;
        lng.kernel = "prtcl-2";
        lng.arrivalCycle = static_cast<Cycle>(i) * 1000;
        lng.sloCycles = 1'000'000;
        reqs.push_back(lng);
    }
    for (int i = 0; i < 20; ++i) {
        ServeRequest s;
        s.id = id++;
        s.kernel = "sgemm";
        s.arrivalCycle = 500 + static_cast<Cycle>(i) * 1000;
        s.sloCycles = 150'000;
        reqs.push_back(s);
    }
    return reqs;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config cfg = Config::fromArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        std::vector<Knob>{
            {"shorts", "short high-priority requests in the burst", {}},
            {"export", "write per-policy summary rows (.csv/.json)",
             {"json"}},
        });
    const int shorts =
        std::max(1, static_cast<int>(cfg.getInt("shorts", 100)));
    const std::string export_path = cfg.getString("export", "");

    const std::vector<ServeRequest> requests = burstyWorkload(shorts);

    banner("serving policies on a bursty mixed workload (" +
           std::to_string(requests.size()) + " requests)");

    ExportSink sink = ExportSink::serveSummaryTable();
    sink.meta("bench", ExportCell::str("serving"));
    sink.meta("shorts", ExportCell::integer(shorts));

    TablePrinter t({"policy", "p50", "p95", "p99", "max", "preempts",
                    "wall cycles"});
    Cycle fcfs_p99 = 0;
    Cycle preempt_p99 = 0;
    for (const ServePolicy policy :
         {ServePolicy::Fcfs, ServePolicy::Sjf, ServePolicy::Preempt}) {
        progress(std::string("serving under ") + toString(policy));
        GpuTop gpu; // fresh device per policy for comparability
        ServeOptions opts;
        opts.policy = policy;
        opts.kernelScale = 0.25;
        RequestServer server(gpu, opts);
        const ServeReport rep = server.serve(requests);
        const ServeSummary &s = rep.summary;
        if (s.completed != s.requests)
            fatal("policy ", toString(policy), " completed ",
                  s.completed, "/", s.requests, " requests");
        sink.addServeSummary(s);
        t.row({s.policy, std::to_string(s.p50Latency),
               std::to_string(s.p95Latency),
               std::to_string(s.p99Latency),
               std::to_string(s.maxLatency),
               std::to_string(s.preemptions),
               std::to_string(s.wallCycles)});
        if (policy == ServePolicy::Fcfs)
            fcfs_p99 = s.p99Latency;
        if (policy == ServePolicy::Preempt)
            preempt_p99 = s.p99Latency;
    }
    t.print();

    if (preempt_p99 >= fcfs_p99)
        fatal("preemptive-priority p99 (", preempt_p99,
              ") did not beat FCFS p99 (", fcfs_p99,
              ") on the bursty workload — the preemption win "
              "regressed");
    std::cout << "preempt p99 " << preempt_p99 << " < fcfs p99 "
              << fcfs_p99 << " (-"
              << (fcfs_p99 - preempt_p99) * 100 / fcfs_p99 << "%)\n";

    const std::vector<ServeRequest> deadline_reqs =
        deadlineMixedWorkload();
    banner("deadline-aware policies on a deadline-mixed workload (" +
           std::to_string(deadline_reqs.size()) + " requests)");

    TablePrinter dt({"policy", "violations", "violation rate", "p99",
                     "wall cycles"});
    double fcfs_rate = 0.0;
    double edf_rate = 0.0;
    double llf_rate = 0.0;
    for (const ServePolicy policy :
         {ServePolicy::Fcfs, ServePolicy::Edf, ServePolicy::Llf}) {
        progress(std::string("serving under ") + toString(policy));
        GpuTop gpu;
        ServeOptions opts;
        opts.policy = policy;
        opts.kernelScale = 0.25;
        RequestServer server(gpu, opts);
        const ServeReport rep = server.serve(deadline_reqs);
        const ServeSummary &s = rep.summary;
        if (s.completed != s.requests)
            fatal("policy ", toString(policy), " completed ",
                  s.completed, "/", s.requests, " requests");
        sink.addServeSummary(s);
        dt.row({s.policy, std::to_string(s.sloViolations),
                pct(s.sloViolationRate), std::to_string(s.p99Latency),
                std::to_string(s.wallCycles)});
        if (policy == ServePolicy::Fcfs)
            fcfs_rate = s.sloViolationRate;
        if (policy == ServePolicy::Edf)
            edf_rate = s.sloViolationRate;
        if (policy == ServePolicy::Llf)
            llf_rate = s.sloViolationRate;
    }
    dt.print();

    if (edf_rate >= fcfs_rate)
        fatal("edf SLO-violation rate (", edf_rate,
              ") did not beat fcfs (", fcfs_rate,
              ") on the deadline-mixed workload — the deadline win "
              "regressed");
    if (llf_rate >= fcfs_rate)
        fatal("llf SLO-violation rate (", llf_rate,
              ") did not beat fcfs (", fcfs_rate,
              ") on the deadline-mixed workload — the deadline win "
              "regressed");
    std::cout << "edf rate " << pct(edf_rate) << ", llf rate "
              << pct(llf_rate) << " < fcfs rate " << pct(fcfs_rate)
              << '\n';

    if (!export_path.empty()) {
        sink.writeFile(export_path,
                       exportFormatForPath(export_path,
                                           ExportFormat::Json));
        progress("wrote " + export_path);
    }
    return 0;
}
