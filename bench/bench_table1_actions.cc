/**
 * @file
 * Table I verification: for a representative kernel of each category,
 * run Equalizer in both objectives and report the action it actually
 * took on each knob (dominant VF states, block behaviour) against the
 * paper's action matrix.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

namespace
{

/** Dominant non-normal state of a domain, by residency. */
std::string
dominantAction(const std::array<Tick, numVfStates> &res)
{
    const auto high = res[static_cast<int>(VfState::High)];
    const auto low = res[static_cast<int>(VfState::Low)];
    const auto normal = res[static_cast<int>(VfState::Normal)];
    if (high > normal / 4 && high > low)
        return "increase";
    if (low > normal / 4 && low > high)
        return "decrease";
    return "maintain";
}

} // namespace

int
main()
{
    ExperimentRunner runner;

    banner("Table I: actions taken by Equalizer per kernel category and "
           "objective");
    TablePrinter t({"kernel", "category", "objective", "sm-freq",
                    "dram-freq", "blocks(end/max)", "paper-expect"});

    struct Row
    {
        const char *kernel;
        const char *expect_energy;
        const char *expect_perf;
    };
    const std::vector<Row> rows = {
        {"mri-q", "SM maintain, DRAM decrease, max blocks",
         "SM increase, DRAM maintain, max blocks"},
        {"lbm", "SM decrease, DRAM maintain, enough blocks",
         "SM maintain, DRAM increase, enough blocks"},
        {"kmn", "SM decrease, DRAM maintain, optimal blocks",
         "SM maintain, DRAM increase, optimal blocks"},
    };

    for (const auto &row : rows) {
        const auto &entry = KernelZoo::byName(row.kernel);
        for (const auto mode :
             {EqualizerMode::Energy, EqualizerMode::Performance}) {
            progress(std::string("table1 ") + row.kernel);
            int end_blocks = -1;
            const auto r = runner.run(
                entry.params, policies::equalizer(mode),
                [&end_blocks](GpuTop &gpu, GpuController *) {
                    gpu.setCycleObserver([&end_blocks](GpuTop &g) {
                        end_blocks = g.sm(0).targetBlocks();
                    });
                });
            const bool energy = mode == EqualizerMode::Energy;
            t.row({row.kernel,
                   kernelCategoryName(entry.params.category),
                   energy ? "energy" : "performance",
                   dominantAction(r.total.smResidency),
                   dominantAction(r.total.memResidency),
                   std::to_string(end_blocks) + "/" +
                       std::to_string(entry.params.maxBlocksPerSm),
                   energy ? row.expect_energy : row.expect_perf});
        }
    }
    t.print();
    return 0;
}
