/**
 * @file
 * Component microbenchmarks (google-benchmark): raw throughput of the
 * simulator's hot paths — tag lookups, DRAM scheduling, the Algorithm 1
 * decision, SM cycles and whole-GPU simulation speed.
 */

#include <benchmark/benchmark.h>

#include "equalizer/decision.hh"
#include "gpu/gpu_top.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "mem/tag_array.hh"

namespace equalizer
{
namespace
{

void
BM_TagArrayLookup(benchmark::State &state)
{
    TagArray tags(64, 4);
    for (int i = 0; i < 256; ++i)
        tags.insert(static_cast<Addr>(i) * 128);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tags.lookup(a));
        a = (a + 128) & 0xFFFF;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayLookup);

void
BM_TagArrayInsertEvict(benchmark::State &state)
{
    TagArray tags(64, 4);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tags.insert(a));
        a += 128;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayInsertEvict);

void
BM_DramPartitionTick(benchmark::State &state)
{
    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    DramPartition dram(cfg, 0, energy);
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        if (!dram.full()) {
            MemAccess acc;
            acc.lineAddr = a;
            a += 128 * 6;
            dram.submit(acc, now);
        }
        benchmark::DoNotOptimize(dram.tick(now));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramPartitionTick);

void
BM_EqualizerDecision(benchmark::State &state)
{
    DecisionInputs in;
    in.wCta = 8;
    in.numBlocks = 4;
    in.maxBlocks = 8;
    double x = 0.0;
    for (auto _ : state) {
        in.counters.nMem = x;
        in.counters.nAlu = 10.0 - x;
        in.counters.nWaiting = 20.0;
        in.counters.nActive = 40.0;
        benchmark::DoNotOptimize(decide(in));
        x = x < 12.0 ? x + 0.5 : 0.0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EqualizerDecision);

void
BM_FullGpuSimulation(benchmark::State &state)
{
    // Whole-GPU simulation throughput: SM-cycles per second on a small
    // compute kernel.
    KernelParams p = KernelZoo::byName("sgemm").params;
    p.totalBlocks = 30;
    p.instrsPerWarp = 300;
    for (auto _ : state) {
        GpuTop gpu;
        SyntheticKernel k(p, 0);
        const RunMetrics m = gpu.runKernel(k);
        state.counters["sm_cycles"] = static_cast<double>(m.smCycles);
        benchmark::DoNotOptimize(m.instructions);
    }
}
BENCHMARK(BM_FullGpuSimulation)->Unit(benchmark::kMillisecond);

void
BM_EnergyRecord(benchmark::State &state)
{
    EnergyModel e;
    for (auto _ : state)
        e.record(EnergyEvent::SmAluOp);
    benchmark::DoNotOptimize(e.dynamicJoules());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnergyRecord);

} // namespace
} // namespace equalizer

BENCHMARK_MAIN();
