/**
 * @file
 * Figure 5 reproduction: performance of the memory-intensive kernels as
 * a function of the number of concurrent thread blocks per SM — all of
 * them saturate well before the maximum.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    banner("Figure 5: memory kernels — speedup over 1 block vs "
           "concurrent blocks");

    std::vector<std::string> headers = {"kernel"};
    for (int n = 1; n <= 8; ++n)
        headers.push_back("b=" + std::to_string(n));
    TablePrinter t(headers);

    for (const auto &name :
         KernelZoo::namesInCategory(KernelCategory::Memory)) {
        progress("fig5 " + name);
        const auto &entry = KernelZoo::byName(name);
        const int wcta = entry.params.warpsPerBlock;
        const GpuConfig gcfg = runner.gpuConfig();
        const int max_blocks =
            std::max(1, std::min({entry.params.maxBlocksPerSm,
                                  gcfg.maxWarpsPerSm / wcta,
                                  gcfg.maxBlocksPerSm}));

        const auto one = runner.run(entry.params, policies::staticBlocks(1));
        std::vector<std::string> row = {name, fmt(1.0, 3)};
        for (int n = 2; n <= 8; ++n) {
            if (n > max_blocks) {
                row.push_back("-");
                continue;
            }
            const auto r =
                runner.run(entry.params, policies::staticBlocks(n));
            row.push_back(fmt(speedupOver(one.total, r.total), 3));
        }
        t.row(row);
    }
    t.print();

    std::cout << "\nPaper reference: every memory kernel's curve "
                 "flattens after 2-4 blocks (bandwidth saturation), so "
                 "blocks can be removed without losing performance.\n";
    return 0;
}
