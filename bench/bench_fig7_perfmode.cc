/**
 * @file
 * Figure 7 reproduction: performance mode.
 *
 * For every kernel: speedup and energy increase over the baseline GPU
 * for Equalizer (performance mode), static SM boost (+15%) and static
 * memory boost (+15%), with per-category and overall geomeans — the
 * same series the paper's Figure 7 plots.
 */

#include "bench_util.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;
    const auto eq = policies::equalizer(EqualizerMode::Performance);
    const auto sm_boost = policies::smHigh();
    const auto mem_boost = policies::memHigh();

    banner("Figure 7: performance mode — speedup over baseline GPU");
    TablePrinter perf({"category", "kernel", "equalizer", "sm-boost",
                       "mem-boost"});
    TablePrinter energy({"category", "kernel", "equalizer", "sm-boost",
                         "mem-boost"});

    CategoryAggregator eq_speed;
    CategoryAggregator sm_speed;
    CategoryAggregator mem_speed;
    CategoryAggregator eq_energy;
    CategoryAggregator sm_energy;
    CategoryAggregator mem_energy;

    for (const auto &name : kernelsInFigureOrder()) {
        progress("fig7 " + name);
        const auto &entry = KernelZoo::byName(name);
        const auto c = entry.params.category;
        const auto base = runner.run(entry.params, policies::baseline());
        const auto r_eq = runner.run(entry.params, eq);
        const auto r_sm = runner.run(entry.params, sm_boost);
        const auto r_mem = runner.run(entry.params, mem_boost);

        const double s_eq = speedupOver(base.total, r_eq.total);
        const double s_sm = speedupOver(base.total, r_sm.total);
        const double s_mem = speedupOver(base.total, r_mem.total);
        const double e_eq = energyIncreaseOver(base.total, r_eq.total);
        const double e_sm = energyIncreaseOver(base.total, r_sm.total);
        const double e_mem = energyIncreaseOver(base.total, r_mem.total);

        eq_speed.add(c, s_eq);
        sm_speed.add(c, s_sm);
        mem_speed.add(c, s_mem);
        eq_energy.add(c, 1.0 + e_eq);
        sm_energy.add(c, 1.0 + e_sm);
        mem_energy.add(c, 1.0 + e_mem);

        perf.row({kernelCategoryName(c), name, fmt(s_eq, 3), fmt(s_sm, 3),
                  fmt(s_mem, 3)});
        energy.row({kernelCategoryName(c), name, pct(e_eq), pct(e_sm),
                    pct(e_mem)});
    }

    for (auto c : categoryOrder()) {
        perf.row({std::string("geomean-") + kernelCategoryName(c), "",
                  fmt(eq_speed.categoryGeomean(c), 3),
                  fmt(sm_speed.categoryGeomean(c), 3),
                  fmt(mem_speed.categoryGeomean(c), 3)});
    }
    perf.row({"geomean-all", "", fmt(eq_speed.overallGeomean(), 3),
              fmt(sm_speed.overallGeomean(), 3),
              fmt(mem_speed.overallGeomean(), 3)});
    perf.print();

    banner("Figure 7 (bottom): energy increase over baseline GPU");
    for (auto c : categoryOrder()) {
        energy.row({std::string("geomean-") + kernelCategoryName(c), "",
                    pct(eq_energy.categoryGeomean(c) - 1.0),
                    pct(sm_energy.categoryGeomean(c) - 1.0),
                    pct(mem_energy.categoryGeomean(c) - 1.0)});
    }
    energy.row({"geomean-all", "", pct(eq_energy.overallGeomean() - 1.0),
                pct(sm_energy.overallGeomean() - 1.0),
                pct(mem_energy.overallGeomean() - 1.0)});
    energy.print();

    std::cout << "\nPaper reference: Equalizer perf mode = 22% speedup at"
                 " +6% energy; SM boost = 7% at +12%; mem boost = 6% at"
                 " +7%.\n";
    return 0;
}
