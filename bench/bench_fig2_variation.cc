/**
 * @file
 * Figure 2 reproduction: kernel requirements vary across and within
 * invocations.
 *
 * 2a: bfs-2's per-invocation execution time under statically fixed
 *     1/2/3 blocks, the per-invocation optimal, all normalized to the
 *     3-block (maximum) total.
 * 2b: mri-g-1's warp-state timeline (waiting / X_mem / X_alu) showing
 *     the two memory-pressure bursts.
 */

#include "bench_util.hh"

#include "equalizer/monitor.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    // ------------------------------------------------------------- 2a
    banner("Figure 2a: bfs-2 per-invocation time, normalized to the "
           "3-block total");
    const auto &bfs = KernelZoo::byName("bfs-2");
    progress("fig2a bfs-2 sweeps");
    const auto b1 = runner.run(bfs.params, policies::staticBlocks(1));
    const auto b2 = runner.run(bfs.params, policies::staticBlocks(2));
    const auto b3 = runner.run(bfs.params, policies::staticBlocks(3));

    const double norm = b3.total.seconds;
    TablePrinter t2a({"invocation", "1 block", "2 blocks", "3 blocks",
                      "optimal", "best"});
    double opt_total = 0.0;
    for (std::size_t i = 0; i < b3.invocations.size(); ++i) {
        const double t1 = b1.invocations[i].seconds / norm;
        const double t2 = b2.invocations[i].seconds / norm;
        const double t3 = b3.invocations[i].seconds / norm;
        const double opt = std::min({t1, t2, t3});
        opt_total += opt;
        const char *best = opt == t1 ? "1" : (opt == t2 ? "2" : "3");
        t2a.row({std::to_string(i + 1), fmt(t1, 4), fmt(t2, 4),
                 fmt(t3, 4), fmt(opt, 4), best});
    }
    t2a.row({"total", fmt(b1.total.seconds / norm, 4),
             fmt(b2.total.seconds / norm, 4), fmt(1.0, 4),
             fmt(opt_total, 4), "-"});
    t2a.print();
    std::cout << "Per-invocation optimal improves "
              << pct(1.0 - opt_total)
              << " over the best static choice (paper: ~16%).\n";

    // ------------------------------------------------------------- 2b
    banner("Figure 2b: mri-g-1 warp-state timeline (per ~8k cycles)");
    const auto &mri = KernelZoo::byName("mri-g-1");
    WarpStateMonitor monitor(8192);
    progress("fig2b mri-g-1 trace");
    runner.run(mri.params, policies::baseline(),
               [&monitor](GpuTop &gpu, GpuController *) {
                   gpu.setCycleObserver(
                       [&monitor](GpuTop &g) { monitor.observe(g); });
               });
    TablePrinter t2b({"cycle", "waiting", "x_mem", "x_alu"});
    for (const auto &s : monitor.samples())
        t2b.row({std::to_string(s.cycle), fmt(s.waiting, 2),
                 fmt(s.xMem, 2), fmt(s.xAlu, 2)});
    t2b.print();
    std::cout << "Paper reference: two intervals with many more warps "
                 "ready to issue to memory (X_mem spikes) than waiting; "
                 "boosting memory in those phases relieves pressure.\n";
    return 0;
}
