/**
 * @file
 * Figure 11 reproduction: Equalizer's adaptiveness.
 *
 * 11a: bfs-2 across invocations — Equalizer's per-invocation time and
 *      block choices versus static 1/2/3 blocks and the optimal.
 * 11b: spmv within an invocation — granted warps and waiting warps over
 *      time under Equalizer versus DynCTA (Equalizer re-grows
 *      concurrency when the phase changes; DynCTA does not).
 */

#include "bench_util.hh"

#include "equalizer/equalizer.hh"
#include "equalizer/monitor.hh"

using namespace equalizer;
using namespace equalizer::bench;

int
main()
{
    ExperimentRunner runner;

    // ------------------------------------------------------------ 11a
    banner("Figure 11a: bfs-2 per-invocation time — Equalizer vs static "
           "block counts (normalized to the 3-block total)");
    const auto &bfs = KernelZoo::byName("bfs-2");
    progress("fig11a bfs-2");
    const auto b1 = runner.run(bfs.params, policies::staticBlocks(1));
    const auto b3 = runner.run(bfs.params, policies::staticBlocks(3));

    // Equalizer with frequency changes disabled would isolate the block
    // effect; the paper does the same. We approximate by reporting the
    // energy-mode block trace but performance numbers from a run with
    // hysteresis identical to the shipping config.
    std::vector<double> mean_blocks_per_epoch;
    EqualizerConfig cfg;
    cfg.mode = EqualizerMode::Performance;
    const auto eq = runner.run(
        bfs.params, policies::equalizer(cfg.mode, cfg),
        [&mean_blocks_per_epoch](GpuTop &, GpuController *ctrl) {
            auto *engine = dynamic_cast<EqualizerEngine *>(ctrl);
            engine->setEpochTrace(
                [&mean_blocks_per_epoch](const EqualizerEpochRecord &r) {
                    mean_blocks_per_epoch.push_back(r.meanTargetBlocks);
                });
        });

    const double norm = b3.total.seconds;
    TablePrinter t({"invocation", "1 block", "3 blocks", "equalizer",
                    "optimal"});
    double opt_total = 0.0;
    double eq_total = 0.0;
    for (std::size_t i = 0; i < b3.invocations.size(); ++i) {
        const double t1 = b1.invocations[i].seconds / norm;
        const double t3 = b3.invocations[i].seconds / norm;
        const double te = eq.invocations[i].seconds / norm;
        const double opt = std::min(t1, t3);
        opt_total += opt;
        eq_total += te;
        t.row({std::to_string(i + 1), fmt(t1, 4), fmt(t3, 4), fmt(te, 4),
               fmt(opt, 4)});
    }
    t.row({"total", fmt(b1.total.seconds / norm, 4), fmt(1.0, 4),
           fmt(eq_total, 4), fmt(opt_total, 4)});
    t.print();
    std::cout << "Mean block target per epoch (first 30 epochs): ";
    for (std::size_t i = 0; i < mean_blocks_per_epoch.size() && i < 30;
         ++i)
        std::cout << fmt(mean_blocks_per_epoch[i], 1) << ' ';
    std::cout << "\nPaper reference: Equalizer tracks the optimal "
                 "(slower to drop blocks: 3-epoch hysteresis) and its "
                 "total is close to the optimal's.\n";

    // ------------------------------------------------------------ 11b
    banner("Figure 11b: spmv timeline — granted warps & waiting warps, "
           "Equalizer vs DynCTA");
    const auto &spmv = KernelZoo::byName("spmv");

    auto trace = [&runner, &spmv](const PolicySpec &policy) {
        WarpStateMonitor monitor(4096);
        runner.run(spmv.params, policy,
                   [&monitor](GpuTop &gpu, GpuController *) {
                       gpu.setCycleObserver(
                           [&monitor](GpuTop &g) { monitor.observe(g); });
                   });
        return monitor;
    };
    progress("fig11b spmv equalizer");
    const auto eq_mon =
        trace(policies::equalizer(EqualizerMode::Performance));
    progress("fig11b spmv dyncta");
    const auto dyn_mon = trace(policies::dynCta());

    TablePrinter t2({"sample", "eq-warps", "eq-waiting", "dyncta-warps",
                     "dyncta-waiting"});
    const std::size_t n =
        std::min(eq_mon.samples().size(), dyn_mon.samples().size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto &e = eq_mon.samples()[i];
        const auto &d = dyn_mon.samples()[i];
        t2.row({std::to_string(i), fmt(e.unpausedWarps, 1),
                fmt(e.waiting, 1), fmt(d.unpausedWarps, 1),
                fmt(d.waiting, 1)});
    }
    t2.print();
    std::cout << "Paper reference: both throttle early (cache "
                 "contention); when waiting rises in the later phase, "
                 "Equalizer raises its warp count again while DynCTA "
                 "stays low.\n";
    return 0;
}
