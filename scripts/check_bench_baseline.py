#!/usr/bin/env python3
"""Compare a fresh bench_cycles_per_sec export against the committed
perf baseline (BENCH_BASELINE.json at the repo root).

Two classes of check:

* ``sm_cycles`` must match the baseline exactly. Simulated cycle counts
  are machine-independent, so any drift means the simulator's behaviour
  changed without the baseline being refreshed — always an error.
* ``cycles_per_sec`` is wall-clock throughput and varies with the host;
  it is gated with a tolerance band (default: fail below 0.75x baseline,
  warn below 0.90x).

Refresh the baseline after an intentional perf or behaviour change:

    build/bench/bench_cycles_per_sec export=BENCH_BASELINE.json

and commit the result alongside the change that moved it.

Usage:
    scripts/check_bench_baseline.py FRESH.json [--baseline BENCH_BASELINE.json]
        [--fail-below 0.75] [--warn-below 0.90] [--skip-cycles-check]
        [--expect NAME]...

``--expect NAME`` (repeatable) fails the gate when the named row is
missing from the fresh export — use it to pin rows the bench is
expected to produce (e.g. ``--expect shim:lbm``) so a silently dropped
workload can't pass as "nothing regressed".

Exit status: 0 on pass (warnings allowed), 1 on any failure.
When $GITHUB_STEP_SUMMARY is set, a Markdown comparison table is
appended to it.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {row["kernel"]: row for row in doc["rows"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="JSON exported by bench_cycles_per_sec")
    ap.add_argument("--baseline", default="BENCH_BASELINE.json")
    ap.add_argument("--fail-below", type=float, default=0.75,
                    help="fail when cycles/sec drops below this fraction "
                         "of baseline (default 0.75)")
    ap.add_argument("--warn-below", type=float, default=0.90,
                    help="warn when cycles/sec drops below this fraction "
                         "of baseline (default 0.90)")
    ap.add_argument("--skip-cycles-check", action="store_true",
                    help="skip the exact sm_cycles comparison")
    ap.add_argument("--expect", action="append", default=[],
                    metavar="NAME",
                    help="fail when this row is missing from the fresh "
                         "export (repeatable)")
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    failures = []
    warnings = []
    lines = [
        "| kernel | base cycles/s | fresh cycles/s | ratio | sm_cycles | status |",
        "|---|---|---|---|---|---|",
    ]

    for kernel, base in baseline.items():
        row = fresh.get(kernel)
        if row is None:
            failures.append(f"{kernel}: missing from fresh export")
            lines.append(f"| {kernel} | — | — | — | — | MISSING |")
            continue

        status = "ok"
        cycles = "match"
        if not args.skip_cycles_check and row["sm_cycles"] != base["sm_cycles"]:
            failures.append(
                f"{kernel}: sm_cycles {row['sm_cycles']} != baseline "
                f"{base['sm_cycles']} — simulated behaviour changed; "
                f"refresh BENCH_BASELINE.json if intentional")
            cycles = f"{row['sm_cycles']} != {base['sm_cycles']}"
            status = "FAIL"

        ratio = row["cycles_per_sec"] / base["cycles_per_sec"]
        if ratio < args.fail_below:
            failures.append(
                f"{kernel}: cycles/sec {row['cycles_per_sec']:.0f} is "
                f"{ratio:.2f}x baseline {base['cycles_per_sec']:.0f} "
                f"(fail threshold {args.fail_below:.2f}x)")
            status = "FAIL"
        elif ratio < args.warn_below:
            warnings.append(
                f"{kernel}: cycles/sec {row['cycles_per_sec']:.0f} is "
                f"{ratio:.2f}x baseline {base['cycles_per_sec']:.0f} "
                f"(warn threshold {args.warn_below:.2f}x)")
            if status == "ok":
                status = "warn"

        lines.append(
            f"| {kernel} | {base['cycles_per_sec']:.0f} "
            f"| {row['cycles_per_sec']:.0f} | {ratio:.2f}x "
            f"| {cycles} | {status} |")

    for name in args.expect:
        if name not in fresh:
            failures.append(
                f"{name}: expected row missing from fresh export")

    for extra in sorted(set(fresh) - set(baseline)):
        warnings.append(f"{extra}: not in baseline (new kernel?)")

    print("\n".join(lines))
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("### Perf baseline comparison\n\n")
            f.write("\n".join(lines) + "\n")
            for w in warnings:
                f.write(f"\n> :warning: {w}\n")
            for fl in failures:
                f.write(f"\n> :x: {fl}\n")
            if not failures:
                f.write("\nTo refresh after an intentional change: "
                        "`build/bench/bench_cycles_per_sec "
                        "export=BENCH_BASELINE.json` and commit.\n")

    if failures:
        print("\nperf gate failed. If the regression (or sm_cycles "
              "change) is intentional, refresh the baseline:\n"
              "  build/bench/bench_cycles_per_sec "
              "export=BENCH_BASELINE.json", file=sys.stderr)
        return 1
    print("perf gate passed"
          + (f" with {len(warnings)} warning(s)" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
