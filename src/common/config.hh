/**
 * @file
 * String key/value configuration with typed accessors.
 *
 * Structured per-subsystem config structs (GpuConfig, PowerConfig, ...) are
 * the primary configuration mechanism; Config exists for command-line style
 * overrides in examples and benches ("key=value" pairs).
 */

#ifndef EQ_COMMON_CONFIG_HH
#define EQ_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace equalizer
{

/**
 * One documented runtime knob: the canonical snake_case key, its
 * one-line description, and any deprecated spellings that still parse
 * (with a warning pointing at the canonical name).
 */
struct Knob
{
    std::string name; ///< canonical snake_case key
    std::string doc;  ///< one-line description for usage output
    std::vector<std::string> aliases; ///< deprecated spellings
};

/** A flat dictionary of string options with typed getters. */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value" tokens; tokens without '=' raise fatal(). */
    static Config fromArgs(const std::vector<std::string> &args);

    /**
     * Like fromArgs(args), but additionally fatal()s on any key not in
     * @p known_keys, suggesting the closest registered keys ("did you
     * mean"). Tools with a fixed option roster use this so a typo like
     * "kernal=lbm" fails loudly instead of being silently ignored.
     */
    static Config fromArgs(const std::vector<std::string> &args,
                           const std::vector<std::string> &known_keys);

    /**
     * Knob-registry parse: every key is canonicalized (hyphens become
     * underscores, registered aliases map to their knob's name, both
     * with a deprecation warn()), then validated against the registry
     * with the same did-you-mean rejection as the known-keys overload.
     * The returned Config only contains canonical keys.
     */
    static Config fromArgs(const std::vector<std::string> &args,
                           const std::vector<Knob> &knobs);

    /** One "  name  doc [aliases: ...]" usage line per knob. */
    static std::string knobUsage(const std::vector<Knob> &knobs);

    /** Set (or overwrite) an option. */
    void set(const std::string &key, const std::string &value);

    bool contains(const std::string &key) const;

    /** Typed getters returning default_value when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &default_value) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t default_value) const;
    double getDouble(const std::string &key, double default_value) const;
    bool getBool(const std::string &key, bool default_value) const;

    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::optional<std::string> find(const std::string &key) const;

    std::map<std::string, std::string> entries_;
};

} // namespace equalizer

#endif // EQ_COMMON_CONFIG_HH
