/**
 * @file
 * A small named-statistics registry.
 *
 * Components register scalar counters and distributions by name; the
 * harness dumps them after a run. Deliberately simple: no formulas, no
 * hierarchy beyond dotted names.
 */

#ifndef EQ_COMMON_STATS_HH
#define EQ_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace equalizer
{

class StateVisitor;

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    /** Return to the freshly-constructed state. */
    void reset() { *this = Counter{}; }

    /** Capture the current value and reset — nothing carries over. */
    Counter
    snapshotAndReset()
    {
        Counter snap = *this;
        reset();
        return snap;
    }

    std::uint64_t value() const { return value_; }

    void visitState(StateVisitor &v);

  private:
    std::uint64_t value_ = 0;
};

/** A running mean/min/max over observed samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /**
     * Return to the freshly-constructed state. The next sample() fully
     * re-arms min/max, so no pre-reset sample can leak through.
     */
    void reset() { *this = Distribution{}; }

    /** Capture the current moments and reset — nothing carries over. */
    Distribution
    snapshotAndReset()
    {
        Distribution snap = *this;
        reset();
        return snap;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }
    std::uint64_t count() const { return count_; }

    void visitState(StateVisitor &v);

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * A last-value statistic: components publish the current level of some
 * quantity (queue depth, block target, joules so far) and the tracing
 * subsystem samples it once per epoch — the "live metrics" counterpart
 * of the monotone Counter (docs/TRACING.md).
 */
class Gauge
{
  public:
    /** Publish the current level. */
    void
    set(double v)
    {
        value_ = v;
        if (sets_ == 0 || v < min_)
            min_ = v;
        if (sets_ == 0 || v > max_)
            max_ = v;
        ++sets_;
    }

    /** Return to the freshly-constructed state. */
    void reset() { *this = Gauge{}; }

    /** Capture the current level and extremes, then reset. */
    Gauge
    snapshotAndReset()
    {
        Gauge snap = *this;
        reset();
        return snap;
    }

    double value() const { return value_; }
    double min() const { return min_; }
    double max() const { return max_; }
    std::uint64_t sets() const { return sets_; }

    void visitState(StateVisitor &v);

  private:
    double value_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t sets_ = 0;
};

/**
 * Owner of named statistics. Each simulated GPU instance carries one
 * registry so concurrent experiments never share counters.
 */
class StatRegistry
{
  public:
    /** Get or create a counter with the given dotted name. */
    Counter &counter(const std::string &name);

    /** Get or create a distribution with the given dotted name. */
    Distribution &distribution(const std::string &name);

    /** Get or create a gauge with the given dotted name. */
    Gauge &gauge(const std::string &name);

    /** Look up a gauge's last value; 0.0 when absent. */
    double gaugeValue(const std::string &name) const;

    /** Look up a counter's value; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /**
     * Capture every registered statistic and reset them all in one
     * step, so samples accumulated before the cut (e.g. a forked
     * sweep's shared prefix) cannot leak into the next interval.
     * Registered names survive the reset.
     */
    StatRegistry snapshotAndReset();

    /** Render "name value" lines, sorted by name. */
    std::string dump() const;

    void visitState(StateVisitor &v);

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Gauge> &gauges() const { return gauges_; }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Gauge> gauges_;
};

} // namespace equalizer

#endif // EQ_COMMON_STATS_HH
