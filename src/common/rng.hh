/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Simulation results must be reproducible run-to-run, so every stochastic
 * component owns an Rng seeded from its identity (kernel id, warp id, ...).
 * The generator is xoshiro256** (public domain, Blackman & Vigna).
 */

#ifndef EQ_COMMON_RNG_HH
#define EQ_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "sim/state.hh"

namespace equalizer
{

/** Deterministic 64-bit PRNG (xoshiro256**) with convenience draws. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so any 64-bit seed is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // mild modulo bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    void
    visitState(StateVisitor &v)
    {
        v.field(state_);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace equalizer

#endif // EQ_COMMON_RNG_HH
