#include "log.hh"

#include <atomic>

namespace equalizer
{

namespace
{
std::atomic<bool> verboseFlag{false};
} // namespace

void
setVerbose(bool v)
{
    verboseFlag.store(v, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
printMessage(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

void
exitWithMessage(const char *kind, const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
    std::fflush(stderr);
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace equalizer
