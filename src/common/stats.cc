#include "stats.hh"

#include <sstream>

namespace equalizer
{

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatRegistry::distribution(const std::string &name)
{
    return distributions_[name];
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, d] : distributions_)
        d.reset();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << ' ' << c.value() << '\n';
    for (const auto &[name, d] : distributions_) {
        os << name << ".mean " << d.mean() << '\n';
        os << name << ".min " << d.min() << '\n';
        os << name << ".max " << d.max() << '\n';
        os << name << ".count " << d.count() << '\n';
    }
    return os.str();
}

} // namespace equalizer
