#include "stats.hh"

#include <sstream>

#include "sim/state.hh"

namespace equalizer
{

void
Counter::visitState(StateVisitor &v)
{
    v.field(value_);
}

void
Distribution::visitState(StateVisitor &v)
{
    v.field(sum_);
    v.field(min_);
    v.field(max_);
    v.field(count_);
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

void
Gauge::visitState(StateVisitor &v)
{
    v.field(value_);
    v.field(min_);
    v.field(max_);
    v.field(sets_);
}

Distribution &
StatRegistry::distribution(const std::string &name)
{
    return distributions_[name];
}

Gauge &
StatRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

double
StatRegistry::gaugeValue(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value();
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, d] : distributions_)
        d.reset();
    for (auto &[name, g] : gauges_)
        g.reset();
}

StatRegistry
StatRegistry::snapshotAndReset()
{
    StatRegistry snap = *this;
    resetAll();
    return snap;
}

void
StatRegistry::visitState(StateVisitor &v)
{
    // v2: adds the gauge map (per-section bump policy, docs/SNAPSHOT.md).
    v.beginSection("stats", 2);
    v.field(counters_);
    v.field(distributions_);
    v.field(gauges_);
    v.endSection();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << ' ' << c.value() << '\n';
    for (const auto &[name, d] : distributions_) {
        os << name << ".mean " << d.mean() << '\n';
        os << name << ".min " << d.min() << '\n';
        os << name << ".max " << d.max() << '\n';
        os << name << ".count " << d.count() << '\n';
    }
    for (const auto &[name, g] : gauges_) {
        os << name << ".value " << g.value() << '\n';
        os << name << ".min " << g.min() << '\n';
        os << name << ".max " << g.max() << '\n';
    }
    return os.str();
}

} // namespace equalizer
