#include "config.hh"

#include <algorithm>
#include <cctype>

#include "log.hh"

namespace equalizer
{

Config
Config::fromArgs(const std::vector<std::string> &args)
{
    Config cfg;
    for (const auto &arg : args) {
        auto pos = arg.find('=');
        if (pos == std::string::npos || pos == 0)
            fatal("malformed option '", arg, "', expected key=value");
        cfg.set(arg.substr(0, pos), arg.substr(pos + 1));
    }
    return cfg;
}

namespace
{

/** Classic dynamic-programming edit distance (small strings only). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

/** Registered keys close enough to @p key to be plausible typos. */
std::vector<std::string>
closeMatches(const std::string &key,
             const std::vector<std::string> &known_keys)
{
    std::vector<std::string> out;
    for (const auto &k : known_keys) {
        const bool prefix =
            k.size() > key.size() && k.compare(0, key.size(), key) == 0;
        if (prefix || editDistance(key, k) <= 2)
            out.push_back(k);
    }
    return out;
}

} // namespace

Config
Config::fromArgs(const std::vector<std::string> &args,
                 const std::vector<std::string> &known_keys)
{
    const Config cfg = fromArgs(args);
    for (const auto &[key, value] : cfg.entries()) {
        (void)value;
        if (std::find(known_keys.begin(), known_keys.end(), key) !=
            known_keys.end()) {
            continue;
        }
        std::string msg = "unknown option '" + key + "'";
        const auto close = closeMatches(key, known_keys);
        if (!close.empty()) {
            msg += "; did you mean ";
            for (std::size_t i = 0; i < close.size(); ++i)
                msg += (i ? ", '" : "'") + close[i] + "'";
        } else {
            msg += "; known options:";
            for (const auto &k : known_keys)
                msg += " " + k;
        }
        fatal(msg);
    }
    return cfg;
}

Config
Config::fromArgs(const std::vector<std::string> &args,
                 const std::vector<Knob> &knobs)
{
    std::vector<std::string> names;
    names.reserve(knobs.size());
    for (const auto &k : knobs)
        names.push_back(k.name);

    // Map every raw key to its canonical knob name before validating,
    // warning once per deprecated spelling actually used.
    Config cfg;
    for (const auto &arg : args) {
        auto pos = arg.find('=');
        if (pos == std::string::npos || pos == 0)
            fatal("malformed option '", arg, "', expected key=value");
        const std::string raw = arg.substr(0, pos);
        const std::string value = arg.substr(pos + 1);

        std::string key = raw;
        std::replace(key.begin(), key.end(), '-', '_');
        auto canonical = [&knobs, &key]() -> const Knob * {
            for (const auto &k : knobs) {
                if (k.name == key)
                    return &k;
                for (const auto &a : k.aliases)
                    if (a == key)
                        return &k;
            }
            return nullptr;
        }();

        if (!canonical) {
            std::string msg = "unknown option '" + raw + "'";
            const auto close = closeMatches(key, names);
            if (!close.empty()) {
                msg += "; did you mean ";
                for (std::size_t i = 0; i < close.size(); ++i)
                    msg += (i ? ", '" : "'") + close[i] + "'";
            } else {
                msg += "; known options:";
                for (const auto &n : names)
                    msg += " " + n;
            }
            fatal(msg);
        }
        if (raw != canonical->name) {
            warn("option '", raw, "' is a deprecated spelling of '",
                 canonical->name, "'");
        }
        cfg.set(canonical->name, value);
    }
    return cfg;
}

std::string
Config::knobUsage(const std::vector<Knob> &knobs)
{
    std::size_t width = 0;
    for (const auto &k : knobs)
        width = std::max(width, k.name.size());
    std::string out;
    for (const auto &k : knobs) {
        out += "  " + k.name +
               std::string(width - k.name.size() + 2, ' ') + k.doc;
        if (!k.aliases.empty()) {
            out += " [aliases:";
            for (const auto &a : k.aliases)
                out += " " + a;
            out += "]";
        }
        out += "\n";
    }
    return out;
}

void
Config::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
Config::contains(const std::string &key) const
{
    return entries_.count(key) > 0;
}

std::optional<std::string>
Config::find(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key,
                  const std::string &default_value) const
{
    return find(key).value_or(default_value);
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    try {
        return std::stoll(*v);
    } catch (...) {
        fatal("option '", key, "' has non-integer value '", *v, "'");
    }
}

double
Config::getDouble(const std::string &key, double default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    try {
        return std::stod(*v);
    } catch (...) {
        fatal("option '", key, "' has non-numeric value '", *v, "'");
    }
}

bool
Config::getBool(const std::string &key, bool default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("option '", key, "' has non-boolean value '", *v, "'");
}

} // namespace equalizer
