#include "config.hh"

#include <algorithm>
#include <cctype>

#include "log.hh"

namespace equalizer
{

Config
Config::fromArgs(const std::vector<std::string> &args)
{
    Config cfg;
    for (const auto &arg : args) {
        auto pos = arg.find('=');
        if (pos == std::string::npos || pos == 0)
            fatal("malformed option '", arg, "', expected key=value");
        cfg.set(arg.substr(0, pos), arg.substr(pos + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
Config::contains(const std::string &key) const
{
    return entries_.count(key) > 0;
}

std::optional<std::string>
Config::find(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key,
                  const std::string &default_value) const
{
    return find(key).value_or(default_value);
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    try {
        return std::stoll(*v);
    } catch (...) {
        fatal("option '", key, "' has non-integer value '", *v, "'");
    }
}

double
Config::getDouble(const std::string &key, double default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    try {
        return std::stod(*v);
    } catch (...) {
        fatal("option '", key, "' has non-numeric value '", *v, "'");
    }
}

bool
Config::getBool(const std::string &key, bool default_value) const
{
    auto v = find(key);
    if (!v)
        return default_value;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("option '", key, "' has non-boolean value '", *v, "'");
}

} // namespace equalizer
