/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef EQ_COMMON_TYPES_HH
#define EQ_COMMON_TYPES_HH

#include <cstdint>

namespace equalizer
{

/** Simulated time in femtoseconds. 64 bits covers ~5 hours of sim time. */
using Tick = std::uint64_t;

/** A cycle count within one clock domain. */
using Cycle = std::uint64_t;

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Femtoseconds per second, for frequency/period conversions. */
inline constexpr Tick ticksPerSecond = 1'000'000'000'000'000ULL;

/**
 * Sentinel cycle meaning "no scheduled event on this timeline". Used by
 * the fast path's next-wakeup queries (docs/FAST_PATH.md): a component
 * with no self-scheduled state change reports noWakeup, and min-reduces
 * against real deadlines leave it in place only when nothing is pending.
 */
inline constexpr Cycle noWakeup = ~Cycle{0};

/** Identifier of a streaming multiprocessor. */
using SmId = int;

/** Identifier of a warp slot within an SM. */
using WarpId = int;

/** Identifier of a thread block (CTA) within a kernel launch. */
using BlockId = int;

/**
 * Convert a frequency in Hz to a clock period in ticks (femtoseconds).
 *
 * @param hz Frequency in Hertz; must be positive.
 * @return Period rounded to the nearest femtosecond.
 */
constexpr Tick
periodFromHz(double hz)
{
    return static_cast<Tick>(static_cast<double>(ticksPerSecond) / hz + 0.5);
}

} // namespace equalizer

#endif // EQ_COMMON_TYPES_HH
