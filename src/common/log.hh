/**
 * @file
 * Lightweight status/error reporting in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration); panic() is for internal
 * invariant violations. warn()/inform() print status without stopping the
 * simulation.
 */

#ifndef EQ_COMMON_LOG_HH
#define EQ_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace equalizer
{

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void exitWithMessage(const char *kind, const std::string &msg,
                                  bool abort_process);

void printMessage(const char *kind, const std::string &msg);

} // namespace detail

/** Whether inform() messages are printed. Tests may silence them. */
void setVerbose(bool verbose);
bool verbose();

/**
 * Terminate due to a user-visible error (bad config, invalid argument).
 * Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::exitWithMessage(
        "fatal", detail::concat(std::forward<Args>(args)...), false);
}

/**
 * Terminate due to an internal simulator bug. Calls std::abort() so a core
 * dump / debugger break is possible.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::exitWithMessage(
        "panic", detail::concat(std::forward<Args>(args)...), true);
}

/** Print a warning; the simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::printMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message when verbose mode is on. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (verbose())
        detail::printMessage(
            "info", detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define EQ_ASSERT(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond))                                                          \
            ::equalizer::panic("assertion '", #cond, "' failed at ",          \
                               __FILE__, ":", __LINE__, ": ", ##__VA_ARGS__); \
    } while (0)

} // namespace equalizer

#endif // EQ_COMMON_LOG_HH
