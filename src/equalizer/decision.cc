#include "decision.hh"

namespace equalizer
{

const char *
tendencyName(Tendency t)
{
    switch (t) {
      case Tendency::MemoryHeavy:
        return "memory-heavy";
      case Tendency::ComputeHeavy:
        return "compute-heavy";
      case Tendency::MemorySaturated:
        return "memory-saturated";
      case Tendency::UnsaturatedComp:
        return "unsaturated-compute";
      case Tendency::UnsaturatedMem:
        return "unsaturated-memory";
      case Tendency::IdleImbalance:
        return "idle-imbalance";
      case Tendency::Degenerate:
      default:
        return "degenerate";
    }
}

Decision
decide(const DecisionInputs &in)
{
    Decision d;
    const auto &c = in.counters;
    const double wcta = static_cast<double>(in.wCta);

    if (c.nMem > wcta) {
        // Definitely memory intensive: one fewer block keeps bandwidth
        // saturated while shrinking cache contention.
        d.tendency = Tendency::MemoryHeavy;
        if (in.numBlocks > 1)
            d.blockDelta = -1;
        d.memAction = true;
    } else if (c.nAlu > wcta) {
        // Definitely compute intensive.
        d.tendency = Tendency::ComputeHeavy;
        d.compAction = true;
    } else if (c.nMem > in.memSaturationThreshold) {
        // Likely memory intensive: bandwidth saturated, but reducing
        // blocks might under-subscribe it (Section III-A).
        d.tendency = Tendency::MemorySaturated;
        d.memAction = true;
    } else if (c.nWaiting > c.nActive / 2.0) {
        // Close to an ideal kernel: give it more work, and nudge the
        // resource it leans toward.
        if (in.numBlocks < in.maxBlocks)
            d.blockDelta = +1;
        if (c.nAlu > c.nMem) {
            d.tendency = Tendency::UnsaturatedComp;
            d.compAction = true;
        } else {
            d.tendency = Tendency::UnsaturatedMem;
            d.memAction = true;
        }
    } else if (c.nActive <= 0.0) {
        // Load-imbalance tail: most SMs idle; finish the stragglers
        // early (performance) or starve the idle memory (energy).
        d.tendency = Tendency::IdleImbalance;
        d.compAction = true;
    } else {
        d.tendency = Tendency::Degenerate;
    }
    return d;
}

VfTargets
applyObjective(const Decision &d, EqualizerMode mode, VfState current_sm,
               VfState current_mem)
{
    VfTargets t;
    t.sm = current_sm;
    t.mem = current_mem;

    if (d.compAction) {
        if (mode == EqualizerMode::Energy) {
            t.mem = VfState::Low;    // throttle the idle memory system
            t.sm = VfState::Normal;
        } else {
            t.sm = VfState::High;    // boost the bottleneck
            t.mem = VfState::Normal;
        }
    } else if (d.memAction) {
        if (mode == EqualizerMode::Energy) {
            t.sm = VfState::Low;     // throttle the idle SMs
            t.mem = VfState::Normal;
        } else {
            t.mem = VfState::High;   // boost the bottleneck
            t.sm = VfState::Normal;
        }
    }
    return t;
}

} // namespace equalizer
