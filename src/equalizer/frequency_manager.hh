/**
 * @file
 * The global frequency manager: collects per-SM VF preferences each
 * epoch, takes a majority vote per domain, and steps the domains one
 * discrete level at a time (paper Sections III and IV-C).
 */

#ifndef EQ_EQUALIZER_FREQUENCY_MANAGER_HH
#define EQ_EQUALIZER_FREQUENCY_MANAGER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/state.hh"
#include "sim/vf.hh"

namespace equalizer
{

class GpuTop;

/** Majority-vote VF governor shared by all SMs. */
class FrequencyManager
{
  public:
    explicit FrequencyManager(int num_sms);

    /** Record one SM's preferred operating points for this epoch. */
    void submit(SmId sm, VfState sm_target, VfState mem_target);

    /**
     * Close the epoch: take the majority vote per domain and move each
     * domain one step toward the winning target (through GpuTop, which
     * applies the VRM transition latency). Clears the ballot.
     */
    void resolve(GpuTop &gpu);

    /** Majority target of the current ballot for a domain (testable). */
    VfState majorityTarget(bool mem_domain, VfState fallback) const;

    /** Number of votes received this epoch. */
    int votesReceived() const;

    void
    clear()
    {
        for (auto &v : smVotes_)
            v = -1;
        for (auto &v : memVotes_)
            v = -1;
    }

    std::uint64_t transitionsRequested() const { return transitions_; }

    void
    visitState(StateVisitor &v)
    {
        v.field(smVotes_);
        v.field(memVotes_);
        v.field(transitions_);
    }

  private:
    std::vector<int> smVotes_;  ///< per SM: VfState index or -1
    std::vector<int> memVotes_;
    std::uint64_t transitions_ = 0;
};

} // namespace equalizer

#endif // EQ_EQUALIZER_FREQUENCY_MANAGER_HH
