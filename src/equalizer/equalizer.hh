/**
 * @file
 * The Equalizer runtime engine (the paper's contribution): per-SM
 * sampling, per-epoch Algorithm 1 decisions with block-count hysteresis,
 * and the global majority-vote frequency manager.
 */

#ifndef EQ_EQUALIZER_EQUALIZER_HH
#define EQ_EQUALIZER_EQUALIZER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "equalizer/decision.hh"
#include "equalizer/frequency_manager.hh"
#include "equalizer/sampler.hh"
#include "gpu/controller.hh"

namespace equalizer
{

/** Tunables of the Equalizer runtime (paper defaults). */
struct EqualizerConfig
{
    EqualizerMode mode = EqualizerMode::Performance;

    Cycle sampleInterval = 128; ///< cycles between counter samples
    Cycle epochCycles = 4096;   ///< decision window

    /**
     * Consecutive same-direction epoch decisions required before the
     * block count actually changes (paper Section IV-B).
     */
    int hysteresis = 3;

    /** X_mem level that indicates bandwidth saturation (paper: 2). */
    double memSaturationThreshold = 2.0;
};

/** One per-epoch trace record (figures 2b, 11a, 11b). */
struct EqualizerEpochRecord
{
    Cycle cycle = 0;            ///< SM cycle at the epoch boundary
    EpochCounters meanCounters; ///< averaged across SMs
    double meanTargetBlocks = 0.0;
    double meanUnpausedWarps = 0.0;
    Tendency tendency = Tendency::Degenerate;
    VfState smState = VfState::Normal;
    VfState memState = VfState::Normal;
};

/**
 * Equalizer as a GpuController.
 *
 * Keeps its adaptation state (per-SM block targets) across invocations
 * of the same kernel, which is what produces the paper's Figure 11a
 * behaviour.
 */
class EqualizerEngine : public GpuController
{
  public:
    explicit EqualizerEngine(EqualizerConfig cfg = EqualizerConfig{});

    std::string name() const override;

    void onKernelLaunch(GpuTop &gpu) override;
    void onInvocationLaunch(GpuTop &gpu,
                            const KernelInvocation &inv) override;
    void onSmCycle(GpuTop &gpu) override;
    void visitControllerState(StateVisitor &v, GpuTop &gpu) override;

    /**
     * The engine only acts on sample-interval and epoch boundaries; the
     * fast path may skip freely between them (docs/FAST_PATH.md).
     */
    Cycle nextActionCycle(const GpuTop &, Cycle now) const override;

    /** Install a per-epoch trace sink. */
    void setEpochTrace(std::function<void(const EqualizerEpochRecord &)> f)
    {
        trace_ = std::move(f);
    }

    const EqualizerConfig &config() const { return cfg_; }

    /** Epochs resolved since construction. */
    std::uint64_t epochsResolved() const { return epochs_; }

    /** Decisions that actually changed a block target. */
    std::uint64_t blockChanges() const { return blockChanges_; }

  private:
    void endEpoch(GpuTop &gpu);

    EqualizerConfig cfg_;

    std::vector<WarpStateSampler> samplers_;
    std::vector<int> pendingDir_;   ///< -1/0/+1 pending block direction
    std::vector<int> pendingCount_; ///< consecutive epochs in pendingDir
    std::vector<int> rememberedTargets_;

    /**
     * Kernel name each SM last ran, keyed per SM (not per device) so
     * co-resident tenants inherit adapted block targets independently
     * (paper Fig 11a generalised to multi-tenant partitions).
     */
    std::vector<std::string> lastKernelPerSm_;

    std::unique_ptr<FrequencyManager> freqMgr_;

    std::function<void(const EqualizerEpochRecord &)> trace_;

    std::uint64_t epochs_ = 0;
    std::uint64_t blockChanges_ = 0;
};

} // namespace equalizer

#endif // EQ_EQUALIZER_EQUALIZER_HH
