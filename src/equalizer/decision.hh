/**
 * @file
 * Algorithm 1 of the paper: the per-SM Equalizer decision, and the
 * Table I mapping from kernel tendency to VF targets per objective.
 */

#ifndef EQ_EQUALIZER_DECISION_HH
#define EQ_EQUALIZER_DECISION_HH

#include "equalizer/sampler.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** Objective of the runtime (paper Table I columns). */
enum class EqualizerMode
{
    Energy,      ///< throttle under-utilized resources
    Performance, ///< boost the bottleneck resource
};

/** Kernel tendency detected by Algorithm 1 (for tracing/reporting). */
enum class Tendency
{
    MemoryHeavy,     ///< nMem > W_cta: definitely memory intensive
    ComputeHeavy,    ///< nALU > W_cta: definitely compute intensive
    MemorySaturated, ///< nMem > 2: bandwidth saturated
    UnsaturatedComp, ///< waiting-dominated with compute inclination
    UnsaturatedMem,  ///< waiting-dominated with memory inclination
    IdleImbalance,   ///< nActive == 0: load imbalance tail
    Degenerate,      ///< no condition met: change nothing
};

const char *tendencyName(Tendency t);

/** Inputs of one per-SM decision. */
struct DecisionInputs
{
    EpochCounters counters;
    int wCta = 1;            ///< warps per block (the paper's threshold)
    int numBlocks = 1;       ///< current concurrency target
    int maxBlocks = 1;       ///< block-slot capacity of the SM
    double memSaturationThreshold = 2.0; ///< paper: two X_mem warps
};

/** Output of one per-SM decision. */
struct Decision
{
    Tendency tendency = Tendency::Degenerate;
    int blockDelta = 0;      ///< -1, 0 or +1
    bool memAction = false;  ///< MemAction of Algorithm 1
    bool compAction = false; ///< CompAction of Algorithm 1
};

/**
 * Algorithm 1 (paper Section III-B), verbatim:
 *
 *   if nMem > Wcta:          numBlocks--; MemAction
 *   else if nALU > Wcta:     CompAction
 *   else if nMem > 2:        MemAction
 *   else if nWaiting > nActive/2:
 *       numBlocks++
 *       if nALU > nMem: CompAction else MemAction
 *   else if nActive == 0:    CompAction   (load-imbalance tail)
 *
 * Block deltas are clamped to the SM's feasible range.
 */
Decision decide(const DecisionInputs &in);

/** VF targets for both domains derived from one decision. */
struct VfTargets
{
    VfState sm = VfState::Normal;
    VfState mem = VfState::Normal;
};

/**
 * Table I: map a decision to target operating points under an objective.
 *
 *   CompAction + Energy      -> memory Low,  SM Normal
 *   CompAction + Performance -> SM High,     memory Normal
 *   MemAction  + Energy      -> SM Low,      memory Normal
 *   MemAction  + Performance -> memory High, SM Normal
 *   neither                  -> keep the current states
 *
 * @param current_sm / @param current_mem The domain states now, returned
 *        unchanged for domains the decision does not touch.
 */
VfTargets applyObjective(const Decision &d, EqualizerMode mode,
                         VfState current_sm, VfState current_mem);

} // namespace equalizer

#endif // EQ_EQUALIZER_DECISION_HH
