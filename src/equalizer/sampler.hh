/**
 * @file
 * The per-SM warp-state sampler behind Equalizer's four counters.
 *
 * Hardware realization (paper Section V-A2): every 128 cycles the head
 * instruction of every unpaused warp is inspected and four counters are
 * bumped; an epoch of 4096 cycles therefore holds 32 samples, so an
 * 11-bit register per counter suffices (48 warps x 32 samples = 1536).
 */

#ifndef EQ_EQUALIZER_SAMPLER_HH
#define EQ_EQUALIZER_SAMPLER_HH

#include <cstdint>

#include "common/types.hh"
#include "gpu/warp_state.hh"

namespace equalizer
{

/** Averaged counter values over one epoch. */
struct EpochCounters
{
    double nActive = 0.0;
    double nWaiting = 0.0;
    double nAlu = 0.0;  ///< X_alu
    double nMem = 0.0;  ///< X_mem
    int samples = 0;
};

/** Accumulates warp-state samples across an epoch for one SM. */
class WarpStateSampler
{
  public:
    /** Add one 128-cycle sample. */
    void
    accumulate(const WarpStateCounts &counts)
    {
        active_ += counts.active;
        waiting_ += counts.waiting;
        alu_ += counts.excessAlu;
        mem_ += counts.excessMem;
        ++samples_;
    }

    /** Average counters over the epoch so far. */
    EpochCounters
    average() const
    {
        EpochCounters e;
        e.samples = samples_;
        if (samples_ == 0)
            return e;
        const double n = static_cast<double>(samples_);
        e.nActive = static_cast<double>(active_) / n;
        e.nWaiting = static_cast<double>(waiting_) / n;
        e.nAlu = static_cast<double>(alu_) / n;
        e.nMem = static_cast<double>(mem_) / n;
        return e;
    }

    /** Raw accumulated values (hardware-counter view; <= 1536 each). */
    std::int64_t rawActive() const { return active_; }
    std::int64_t rawWaiting() const { return waiting_; }
    std::int64_t rawAlu() const { return alu_; }
    std::int64_t rawMem() const { return mem_; }
    int samples() const { return samples_; }

    /** Start a new epoch. */
    void
    reset()
    {
        active_ = 0;
        waiting_ = 0;
        alu_ = 0;
        mem_ = 0;
        samples_ = 0;
    }

  private:
    std::int64_t active_ = 0;
    std::int64_t waiting_ = 0;
    std::int64_t alu_ = 0;
    std::int64_t mem_ = 0;
    int samples_ = 0;
};

} // namespace equalizer

#endif // EQ_EQUALIZER_SAMPLER_HH
