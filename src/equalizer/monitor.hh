/**
 * @file
 * A passive warp-state monitor for tracing figures (2b, 11b) and the
 * Figure 4 state-distribution experiment. Takes no actions.
 */

#ifndef EQ_EQUALIZER_MONITOR_HH
#define EQ_EQUALIZER_MONITOR_HH

#include <vector>

#include "common/types.hh"
#include "gpu/gpu_top.hh"

namespace equalizer
{

/** One timeline point averaged over all SMs. */
struct MonitorSample
{
    Cycle cycle = 0;
    double active = 0.0;
    double waiting = 0.0;
    double xAlu = 0.0;
    double xMem = 0.0;
    double issued = 0.0;
    double unpausedWarps = 0.0; ///< concurrency granted by the policy
};

/**
 * Samples the warp states of every SM at a fixed interval.
 *
 * Installed through GpuTop::setCycleObserver so it can run alongside any
 * controller:
 *
 *   WarpStateMonitor mon(1024);
 *   gpu.setCycleObserver([&](GpuTop &g) { mon.observe(g); });
 */
class WarpStateMonitor
{
  public:
    explicit WarpStateMonitor(Cycle interval = 1024) : interval_(interval)
    {
    }

    /** Call once per SM cycle. */
    void
    observe(GpuTop &gpu)
    {
        const Cycle c = gpu.smDomain().cycle();
        if (c % interval_ != 0)
            return;
        MonitorSample s;
        s.cycle = c;
        const int n = gpu.numSms();
        for (int i = 0; i < n; ++i) {
            const auto counts = gpu.sm(i).sampleStates();
            s.active += static_cast<double>(counts.active) / n;
            s.waiting += static_cast<double>(counts.waiting) / n;
            s.xAlu += static_cast<double>(counts.excessAlu) / n;
            s.xMem += static_cast<double>(counts.excessMem) / n;
            s.issued += static_cast<double>(counts.issued) / n;
            s.unpausedWarps +=
                static_cast<double>(gpu.sm(i).unpausedBlocks() *
                                    gpu.sm(i).warpsPerBlock()) /
                n;
        }
        samples_.push_back(s);
    }

    const std::vector<MonitorSample> &samples() const { return samples_; }

    void clear() { samples_.clear(); }

  private:
    Cycle interval_;
    std::vector<MonitorSample> samples_;
};

} // namespace equalizer

#endif // EQ_EQUALIZER_MONITOR_HH
