#include "frequency_manager.hh"

#include "common/log.hh"
#include "gpu/gpu_top.hh"

namespace equalizer
{

FrequencyManager::FrequencyManager(int num_sms)
    : smVotes_(static_cast<std::size_t>(num_sms), -1),
      memVotes_(static_cast<std::size_t>(num_sms), -1)
{
}

void
FrequencyManager::submit(SmId sm, VfState sm_target, VfState mem_target)
{
    EQ_ASSERT(sm >= 0 && sm < static_cast<int>(smVotes_.size()),
              "vote from unknown SM ", sm);
    smVotes_[static_cast<std::size_t>(sm)] = static_cast<int>(sm_target);
    memVotes_[static_cast<std::size_t>(sm)] = static_cast<int>(mem_target);
}

int
FrequencyManager::votesReceived() const
{
    int n = 0;
    for (auto v : smVotes_)
        n += v >= 0 ? 1 : 0;
    return n;
}

VfState
FrequencyManager::majorityTarget(bool mem_domain, VfState fallback) const
{
    const auto &votes = mem_domain ? memVotes_ : smVotes_;
    std::array<int, numVfStates> tally{};
    int cast = 0;
    for (int v : votes) {
        if (v >= 0) {
            ++tally[static_cast<std::size_t>(v)];
            ++cast;
        }
    }
    if (cast == 0)
        return fallback;

    int best = -1;
    int best_count = 0;
    for (int i = 0; i < numVfStates; ++i) {
        if (tally[static_cast<std::size_t>(i)] > best_count) {
            best_count = tally[static_cast<std::size_t>(i)];
            best = i;
        }
    }
    // Require a strict majority of the cast votes; otherwise hold.
    if (best_count * 2 <= cast)
        return fallback;
    return static_cast<VfState>(best);
}

void
FrequencyManager::resolve(GpuTop &gpu)
{
    const VfState cur_sm = gpu.smDomain().state();
    const VfState cur_mem = gpu.memDomain().state();

    const VfState want_sm = majorityTarget(false, cur_sm);
    const VfState want_mem = majorityTarget(true, cur_mem);

    auto step_toward = [](VfState cur, VfState want) {
        if (static_cast<int>(want) > static_cast<int>(cur))
            return stepUp(cur);
        if (static_cast<int>(want) < static_cast<int>(cur))
            return stepDown(cur);
        return cur;
    };

    const VfState next_sm = step_toward(cur_sm, want_sm);
    const VfState next_mem = step_toward(cur_mem, want_mem);

    // VfStep trace payload: i = {domain (0 sm / 1 mem), from, to}.
    Tracer *tracer = gpu.tracer();
    const Cycle now = gpu.smDomain().cycle();

    if (next_sm != cur_sm) {
        gpu.requestVfState(PowerDomain::Sm, next_sm);
        ++transitions_;
        if (tracer)
            tracer->emit(makeSmEvent(
                TraceEventKind::VfStep, now, -1, 0,
                static_cast<std::int64_t>(cur_sm),
                static_cast<std::int64_t>(next_sm)));
    }
    if (next_mem != cur_mem) {
        gpu.requestVfState(PowerDomain::Memory, next_mem);
        ++transitions_;
        if (tracer)
            tracer->emit(makeSmEvent(
                TraceEventKind::VfStep, now, -1, 1,
                static_cast<std::int64_t>(cur_mem),
                static_cast<std::int64_t>(next_mem)));
    }

    clear();
}

} // namespace equalizer
