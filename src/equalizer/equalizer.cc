#include "equalizer.hh"

#include <algorithm>

#include "gpu/gpu_top.hh"

namespace equalizer
{

EqualizerEngine::EqualizerEngine(EqualizerConfig cfg) : cfg_(cfg)
{
}

std::string
EqualizerEngine::name() const
{
    return cfg_.mode == EqualizerMode::Energy ? "equalizer-energy"
                                              : "equalizer-perf";
}

void
EqualizerEngine::onKernelLaunch(GpuTop &gpu)
{
    const int n = gpu.numSms();
    if (static_cast<int>(samplers_.size()) != n) {
        samplers_.assign(static_cast<std::size_t>(n), WarpStateSampler{});
        pendingDir_.assign(static_cast<std::size_t>(n), 0);
        pendingCount_.assign(static_cast<std::size_t>(n), 0);
        rememberedTargets_.assign(static_cast<std::size_t>(n), -1);
        lastKernelPerSm_.assign(static_cast<std::size_t>(n),
                                std::string{});
        freqMgr_ = std::make_unique<FrequencyManager>(n);
    }
}

void
EqualizerEngine::onInvocationLaunch(GpuTop &gpu,
                                    const KernelInvocation &inv)
{
    // Per-SM reset, scoped to the invocation's partition so a tenant's
    // relaunch does not disturb co-resident tenants mid-epoch.
    for (int i : inv.smSet()) {
        samplers_[static_cast<std::size_t>(i)].reset();
        pendingDir_[static_cast<std::size_t>(i)] = 0;
        pendingCount_[static_cast<std::size_t>(i)] = 0;
        // A new invocation of the same kernel inherits the adapted block
        // target (paper Fig 11a); a different kernel starts at maximum.
        const bool same_kernel =
            inv.name() == lastKernelPerSm_[static_cast<std::size_t>(i)];
        lastKernelPerSm_[static_cast<std::size_t>(i)] = inv.name();
        if (same_kernel &&
            rememberedTargets_[static_cast<std::size_t>(i)] > 0) {
            gpu.sm(i).setTargetBlocks(
                rememberedTargets_[static_cast<std::size_t>(i)]);
        } else {
            rememberedTargets_[static_cast<std::size_t>(i)] = -1;
        }
    }
}

void
EqualizerEngine::visitControllerState(StateVisitor &v, GpuTop &)
{
    // v2: lastKernel_ (one device-wide name) became lastKernelPerSm_.
    v.beginSection("equalizer", 2);
    v.field(samplers_);
    v.field(pendingDir_);
    v.field(pendingCount_);
    v.field(rememberedTargets_);
    v.field(lastKernelPerSm_);
    bool has_mgr = freqMgr_ != nullptr;
    v.field(has_mgr);
    if (!v.saving()) {
        // onKernelLaunch sizes the vote vectors; 0 is a placeholder
        // that visitState immediately overwrites.
        freqMgr_ = has_mgr ? std::make_unique<FrequencyManager>(0)
                           : nullptr;
    }
    if (freqMgr_)
        freqMgr_->visitState(v);
    v.field(epochs_);
    v.field(blockChanges_);
    v.endSection();
}

void
EqualizerEngine::onSmCycle(GpuTop &gpu)
{
    const Cycle c = gpu.smDomain().cycle();
    if (c % cfg_.sampleInterval == 0) {
        for (int i = 0; i < gpu.numSms(); ++i)
            samplers_[static_cast<std::size_t>(i)].accumulate(
                gpu.sm(i).sampleStates());
    }
    if (c % cfg_.epochCycles == 0)
        endEpoch(gpu);
}

Cycle
EqualizerEngine::nextActionCycle(const GpuTop &, Cycle now) const
{
    const Cycle s = (now / cfg_.sampleInterval + 1) * cfg_.sampleInterval;
    const Cycle e = (now / cfg_.epochCycles + 1) * cfg_.epochCycles;
    return std::min(s, e);
}

void
EqualizerEngine::endEpoch(GpuTop &gpu)
{
    ++epochs_;
    const int n = gpu.numSms();
    Tracer *tracer = gpu.tracer();

    EqualizerEpochRecord rec;
    rec.cycle = gpu.smDomain().cycle();
    Tendency first_tendency = Tendency::Degenerate;

    for (int i = 0; i < n; ++i) {
        auto &sampler = samplers_[static_cast<std::size_t>(i)];
        const EpochCounters avg = sampler.average();
        sampler.reset();

        auto &sm = gpu.sm(i);
        DecisionInputs in;
        in.counters = avg;
        in.wCta = sm.warpsPerBlock();
        in.numBlocks = sm.targetBlocks();
        in.maxBlocks = sm.blockSlotCount();
        in.memSaturationThreshold = cfg_.memSaturationThreshold;
        const Decision d = decide(in);
        if (i == 0)
            first_tendency = d.tendency;

        // --- Block-count hysteresis (paper IV-B): act only after
        // `hysteresis` consecutive epochs agree on the same change.
        auto &dir = pendingDir_[static_cast<std::size_t>(i)];
        auto &count = pendingCount_[static_cast<std::size_t>(i)];
        if (d.blockDelta != 0 && d.blockDelta == dir) {
            ++count;
        } else {
            dir = d.blockDelta;
            count = d.blockDelta != 0 ? 1 : 0;
        }
        const int old_target = sm.targetBlocks();
        if (d.blockDelta != 0 && count >= cfg_.hysteresis) {
            sm.setTargetBlocks(sm.targetBlocks() + d.blockDelta);
            ++blockChanges_;
            dir = 0;
            count = 0;
        }
        rememberedTargets_[static_cast<std::size_t>(i)] =
            sm.targetBlocks();

        // --- VF preference under the current objective.
        const VfTargets t =
            applyObjective(d, cfg_.mode, gpu.smDomain().state(),
                           gpu.memDomain().state());
        freqMgr_->submit(i, t.sm, t.mem);

        if (tracer) {
            tracer->emit(makeSampleEvent(TraceEventKind::EpochSample,
                                         rec.cycle, i, avg.nActive,
                                         avg.nWaiting, avg.nAlu,
                                         avg.nMem));
            tracer->emit(makeSmEvent(
                TraceEventKind::Tendency, rec.cycle, i,
                static_cast<std::int64_t>(d.tendency), d.blockDelta,
                sm.targetBlocks()));
            if (sm.targetBlocks() != old_target)
                tracer->emit(makeSmEvent(TraceEventKind::BlockTarget,
                                         rec.cycle, i,
                                         sm.targetBlocks(),
                                         old_target));
            tracer->emit(makeSmEvent(
                TraceEventKind::VfVote, rec.cycle, i,
                static_cast<std::int64_t>(t.sm),
                static_cast<std::int64_t>(t.mem)));
        }

        rec.meanCounters.nActive += avg.nActive / n;
        rec.meanCounters.nWaiting += avg.nWaiting / n;
        rec.meanCounters.nAlu += avg.nAlu / n;
        rec.meanCounters.nMem += avg.nMem / n;
        rec.meanTargetBlocks +=
            static_cast<double>(sm.targetBlocks()) / n;
        rec.meanUnpausedWarps +=
            static_cast<double>(sm.unpausedBlocks() * sm.warpsPerBlock()) /
            n;
    }

    freqMgr_->resolve(gpu);

    if (trace_) {
        rec.tendency = first_tendency;
        rec.smState = gpu.smDomain().state();
        rec.memState = gpu.memDomain().state();
        trace_(rec);
    }
}

} // namespace equalizer
