/**
 * @file
 * Event-based energy accounting with DVFS scaling, in the spirit of
 * GPUWattch/McPAT plus the Hynix GDDR5 datasheet's standby currents.
 *
 * Dynamic energy: every microarchitectural event (a warp instruction
 * issued, an L1 access, a DRAM line transfer, ...) deposits a fixed
 * per-event energy scaled by the square of the owning clock domain's
 * relative supply voltage at the moment of the event (E ~ C V^2).
 *
 * Static energy: leakage power scales linearly with voltage (the paper's
 * assumption) and is integrated over per-VF-state residency after the
 * run. DRAM active-standby power additionally grows with the memory
 * frequency state, modelling the 30%-higher idle standby current of
 * GDDR5 at higher data rates.
 */

#ifndef EQ_POWER_ENERGY_MODEL_HH
#define EQ_POWER_ENERGY_MODEL_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/state.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** Kinds of dynamic-energy events components may report. */
enum class EnergyEvent
{
    // SM-domain events
    SmIssue,      ///< a warp instruction issued (fetch/decode/schedule)
    SmAluOp,      ///< a 32-lane arithmetic warp operation executed
    SmSfuOp,      ///< a special-function warp operation executed
    SmRegAccess,  ///< an operand-collector register-file access
    SmLsuOp,      ///< LSU processing of one warp memory instruction
    SmSharedAccess, ///< a shared-memory (scratchpad) access
    L1Access,     ///< an L1 data-cache tag+data access
    // Memory-domain events
    NocFlit,      ///< one interconnect flit transferred
    L2Access,     ///< an L2 tag+data access
    DramActivate, ///< a DRAM row activate+precharge pair
    DramAccess,   ///< a 128 B DRAM read or write burst
    NumEvents,
};

/** Number of distinct EnergyEvent kinds. */
inline constexpr int numEnergyEvents =
    static_cast<int>(EnergyEvent::NumEvents);

/** Which clock domain an event's energy scales with. */
enum class PowerDomain
{
    Sm,
    Memory,
};

/** Static characterization of the modelled GPU's power. */
struct PowerConfig
{
    /// Per-event dynamic energies at nominal voltage, in joules.
    std::array<double, numEnergyEvents> eventEnergy{};

    /// SM-domain leakage power at nominal voltage, watts.
    double smLeakageWatts = 30.0;

    /// Memory-domain (NoC+L2+MC) leakage power at nominal voltage, watts.
    double memLeakageWatts = 11.9;

    /// DRAM active-standby power at the Normal memory state, watts.
    double dramStandbyWatts = 12.0;

    /**
     * Sensitivity of DRAM standby current to the frequency state:
     * standby ~ (1 + k * (fscale - 1)) * Vscale. k = 1.5 reproduces a
     * roughly 30% idle-current delta over a +/-15% window-and-a-half, in
     * line with the Hynix GDDR5 operating points.
     */
    double dramStandbySlope = 1.5;

    /**
     * Fraction of active-standby power still drawn while a DRAM
     * partition interface is powered down (MemScale-style low-power
     * state).
     */
    double dramPowerDownFactor = 0.45;

    /** GTX480-flavoured defaults (GPUWattch-calibrated shares). */
    static PowerConfig gtx480();
};

/** Map an event kind to its owning power domain. */
constexpr PowerDomain
eventDomain(EnergyEvent e)
{
    switch (e) {
      case EnergyEvent::NocFlit:
      case EnergyEvent::L2Access:
      case EnergyEvent::DramActivate:
      case EnergyEvent::DramAccess:
        return PowerDomain::Memory;
      default:
        return PowerDomain::Sm;
    }
}

/** Human-readable event name (for reports). */
const char *energyEventName(EnergyEvent e);

/**
 * Accumulates a run's energy online.
 *
 * The GPU top-level updates the domain states when the frequency manager
 * commits a change; components report events as they happen.
 *
 * Accounting is sharded: components that belong to one SM record into
 * that SM's shard (via the record overloads taking an SM id), while
 * memory-system components and standalone users record into a shared
 * serial shard. During the parallel SM phase each shard is written by
 * exactly one thread, so no synchronization is needed, and every query
 * reduces the shards in fixed index order — which makes the reported
 * energy bit-identical for any thread count, including the serial
 * oracle (see docs/PARALLELISM.md).
 */
class EnergyModel
{
  public:
    explicit EnergyModel(PowerConfig cfg = PowerConfig::gtx480());

    /** Inform the model of the current VF state of both domains. */
    void setDomainStates(VfState sm, VfState mem);

    /**
     * Guarantee per-SM shards [0, n) exist. Components owned by an SM
     * call this at construction; must not race with recording.
     */
    void
    ensureSmShards(int n)
    {
        if (static_cast<int>(smShards_.size()) < n)
            smShards_.resize(static_cast<std::size_t>(n));
    }

    /** Deposit @p count events of kind @p e at the current voltage. */
    void
    record(EnergyEvent e, std::uint64_t count = 1)
    {
        deposit(serial_, e, static_cast<double>(count), count);
    }

    /** Deposit events into the shard of SM @p sm. */
    void
    record(int sm, EnergyEvent e, std::uint64_t count = 1)
    {
        deposit(smShards_[static_cast<std::size_t>(sm)], e,
                static_cast<double>(count), count);
    }

    /**
     * Deposit @p n events as n separate single-event deposits.
     *
     * record(e, n) folds the count into one scaled floating-point add,
     * which is not bit-identical to n individual adds. The fast path
     * replays per-cycle retry energy (blocked L1/L2 heads) with this so
     * a skipped span accumulates exactly the joules the slow path would
     * (docs/FAST_PATH.md).
     */
    void
    recordRepeated(EnergyEvent e, std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            deposit(serial_, e, 1.0, 1);
    }

    /** recordRepeated into the shard of SM @p sm. */
    void
    recordRepeated(int sm, EnergyEvent e, std::uint64_t n)
    {
        auto &shard = smShards_[static_cast<std::size_t>(sm)];
        for (std::uint64_t i = 0; i < n; ++i)
            deposit(shard, e, 1.0, 1);
    }

    /**
     * Deposit one event whose energy is scaled (e.g. a divergent warp
     * op that only drives a fraction of the datapath lanes). Counted as
     * a single event.
     */
    void
    recordScaled(EnergyEvent e, double energy_scale)
    {
        deposit(serial_, e, energy_scale, 1);
    }

    /** recordScaled into the shard of SM @p sm. */
    void
    recordScaled(int sm, EnergyEvent e, double energy_scale)
    {
        deposit(smShards_[static_cast<std::size_t>(sm)], e, energy_scale,
                1);
    }

    /**
     * Static (leakage + DRAM standby) energy in joules, integrated over
     * the given per-state residencies.
     *
     * @param sm_residency Ticks spent by the SM domain in each VfState.
     * @param mem_residency Ticks spent by the memory domain per VfState.
     * @param dram_power_down_fraction Fraction of total DRAM
     *        partition-time spent in the powered-down state; that share
     *        of the standby power is scaled by dramPowerDownFactor.
     */
    double staticJoules(const std::array<Tick, numVfStates> &sm_residency,
                        const std::array<Tick, numVfStates> &mem_residency,
                        double dram_power_down_fraction = 0.0) const;

    /** Total dynamic energy so far, joules. */
    double dynamicJoules() const;

    /** Dynamic energy of a single event class, joules. */
    double
    dynamicJoules(EnergyEvent e) const
    {
        const int i = static_cast<int>(e);
        double total = serial_.joules[i];
        for (const auto &s : smShards_)
            total += s.joules[i];
        return total;
    }

    /** Count of recorded events of one kind. */
    std::uint64_t
    eventCount(EnergyEvent e) const
    {
        const int i = static_cast<int>(e);
        std::uint64_t total = serial_.counts[i];
        for (const auto &s : smShards_)
            total += s.counts[i];
        return total;
    }

    /** DRAM standby power (watts) at a given memory-domain state. */
    double dramStandbyWatts(VfState mem) const;

    /** Leakage power (watts) of both domains at given states. */
    double leakageWatts(VfState sm, VfState mem) const;

    const PowerConfig &config() const { return cfg_; }

    /** Zero all accumulated energy and counts. */
    void reset();

    /**
     * Serialize voltage state and every shard. Shards are cache-line
     * aligned, so their arrays are written individually rather than as
     * raw struct bytes (the alignment padding stays out of the stream).
     */
    void
    visitState(StateVisitor &v)
    {
        v.beginSection("energy", 1);
        v.field(smVsq_);
        v.field(memVsq_);
        visitShard(v, serial_);
        std::uint64_t n = smShards_.size();
        v.field(n);
        if (!v.saving())
            smShards_.resize(static_cast<std::size_t>(n));
        for (auto &s : smShards_)
            visitShard(v, s);
        v.endSection();
    }

  private:
    /**
     * One accumulator. Cache-line aligned so per-SM shards written
     * concurrently by different workers never false-share.
     */
    struct alignas(64) Shard
    {
        std::array<double, numEnergyEvents> joules{};
        std::array<std::uint64_t, numEnergyEvents> counts{};
    };

    static void
    visitShard(StateVisitor &v, Shard &shard)
    {
        v.field(shard.joules);
        v.field(shard.counts);
    }

    void
    deposit(Shard &shard, EnergyEvent e, double scale, std::uint64_t n)
    {
        const int i = static_cast<int>(e);
        shard.joules[i] +=
            scale * cfg_.eventEnergy[i] *
            (eventDomain(e) == PowerDomain::Sm ? smVsq_ : memVsq_);
        shard.counts[i] += n;
    }

    PowerConfig cfg_;
    double smVsq_ = 1.0;
    double memVsq_ = 1.0;
    Shard serial_;
    std::vector<Shard> smShards_;
};

} // namespace equalizer

#endif // EQ_POWER_ENERGY_MODEL_HH
