#include "energy_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

PowerConfig
PowerConfig::gtx480()
{
    PowerConfig cfg;
    auto set = [&cfg](EnergyEvent e, double joules) {
        cfg.eventEnergy[static_cast<int>(e)] = joules;
    };
    // Per-event energies chosen so that a fully issue-bound kernel burns
    // ~45-50 W of SM dynamic power at 15 SMs x 2 issues x 700 MHz and a
    // bandwidth-bound kernel burns ~25-30 W in the DRAM (+ NoC/L2), which
    // matches the component shares GPUWattch reports for GTX480.
    set(EnergyEvent::SmIssue, 0.30e-9);
    set(EnergyEvent::SmAluOp, 1.10e-9);
    set(EnergyEvent::SmSfuOp, 2.20e-9);
    set(EnergyEvent::SmRegAccess, 0.50e-9);
    set(EnergyEvent::SmLsuOp, 0.60e-9);
    set(EnergyEvent::SmSharedAccess, 0.35e-9);
    set(EnergyEvent::L1Access, 0.40e-9);
    set(EnergyEvent::NocFlit, 0.40e-9);
    set(EnergyEvent::L2Access, 1.20e-9);
    set(EnergyEvent::DramActivate, 2.00e-9);
    set(EnergyEvent::DramAccess, 20.0e-9);
    // Leakage split: the paper's 41.9 W total baseline leakage, divided
    // between the SM domain and the memory-system domain.
    cfg.smLeakageWatts = 30.0;
    cfg.memLeakageWatts = 11.9;
    cfg.dramStandbyWatts = 15.0;
    cfg.dramStandbySlope = 1.5;
    return cfg;
}

const char *
energyEventName(EnergyEvent e)
{
    switch (e) {
      case EnergyEvent::SmIssue:
        return "sm_issue";
      case EnergyEvent::SmAluOp:
        return "sm_alu";
      case EnergyEvent::SmSfuOp:
        return "sm_sfu";
      case EnergyEvent::SmRegAccess:
        return "sm_reg";
      case EnergyEvent::SmLsuOp:
        return "sm_lsu";
      case EnergyEvent::SmSharedAccess:
        return "sm_shared";
      case EnergyEvent::L1Access:
        return "l1_access";
      case EnergyEvent::NocFlit:
        return "noc_flit";
      case EnergyEvent::L2Access:
        return "l2_access";
      case EnergyEvent::DramActivate:
        return "dram_activate";
      case EnergyEvent::DramAccess:
        return "dram_access";
      default:
        return "unknown";
    }
}

EnergyModel::EnergyModel(PowerConfig cfg) : cfg_(cfg)
{
}

void
EnergyModel::setDomainStates(VfState sm, VfState mem)
{
    smVsq_ = voltageScale(sm) * voltageScale(sm);
    memVsq_ = voltageScale(mem) * voltageScale(mem);
}

double
EnergyModel::dramStandbyWatts(VfState mem) const
{
    const double fscale = frequencyScale(mem);
    const double iscale = 1.0 + cfg_.dramStandbySlope * (fscale - 1.0);
    return cfg_.dramStandbyWatts * iscale * voltageScale(mem);
}

double
EnergyModel::leakageWatts(VfState sm, VfState mem) const
{
    return cfg_.smLeakageWatts * voltageScale(sm) +
           cfg_.memLeakageWatts * voltageScale(mem);
}

double
EnergyModel::staticJoules(
    const std::array<Tick, numVfStates> &sm_residency,
    const std::array<Tick, numVfStates> &mem_residency,
    double dram_power_down_fraction) const
{
    // Standby power drops to dramPowerDownFactor for the powered-down
    // share of the run.
    const double pd = std::clamp(dram_power_down_fraction, 0.0, 1.0);
    const double standby_scale =
        1.0 - pd * (1.0 - cfg_.dramPowerDownFactor);

    double joules = 0.0;
    for (int i = 0; i < numVfStates; ++i) {
        const auto s = static_cast<VfState>(i);
        const double sm_seconds = static_cast<double>(sm_residency[i]) /
                                  static_cast<double>(ticksPerSecond);
        const double mem_seconds = static_cast<double>(mem_residency[i]) /
                                   static_cast<double>(ticksPerSecond);
        joules += cfg_.smLeakageWatts * voltageScale(s) * sm_seconds;
        joules += cfg_.memLeakageWatts * voltageScale(s) * mem_seconds;
        joules += dramStandbyWatts(s) * mem_seconds * standby_scale;
    }
    return joules;
}

double
EnergyModel::dynamicJoules() const
{
    // Reduce shards in fixed (event, serial-then-SM) order so the total
    // is the same double no matter how many threads recorded the events.
    double total = 0.0;
    for (int i = 0; i < numEnergyEvents; ++i)
        total += dynamicJoules(static_cast<EnergyEvent>(i));
    return total;
}

void
EnergyModel::reset()
{
    serial_ = Shard{};
    for (auto &s : smShards_)
        s = Shard{};
}

} // namespace equalizer
