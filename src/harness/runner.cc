#include "runner.hh"

#include <cmath>

#include "autotune/autotuner.hh"
#include "common/log.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{

const char *
sweepStrategyName(SweepStrategy s)
{
    switch (s) {
      case SweepStrategy::Cold:
        return "cold";
      case SweepStrategy::Warm:
        return "warm";
      case SweepStrategy::Model:
        return "model";
    }
    return "?";
}

SweepStrategy
sweepStrategyFromName(const std::string &name)
{
    if (name == "cold")
        return SweepStrategy::Cold;
    if (name == "warm")
        return SweepStrategy::Warm;
    if (name == "model")
        return SweepStrategy::Model;
    fatal("unknown sweep strategy '", name,
          "' (expected cold, warm or model)");
}

double
speedupOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    return variant.seconds > 0.0 ? baseline.seconds / variant.seconds : 0.0;
}

double
energyEfficiencyOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double v = variant.totalJoules();
    return v > 0.0 ? baseline.totalJoules() / v : 0.0;
}

double
energyIncreaseOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double b = baseline.totalJoules();
    return b > 0.0 ? variant.totalJoules() / b - 1.0 : 0.0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

ExperimentRunner::ExperimentRunner(GpuConfig gpu_cfg, PowerConfig power_cfg,
                                   int threads)
    : gpuCfg_(gpu_cfg), powerCfg_(power_cfg)
{
    const int n =
        threads == 0 ? ParallelExecutor::hardwareThreads() : threads;
    if (n > 1)
        executor_ = std::make_unique<ParallelExecutor>(n);
}

int
ExperimentRunner::threads() const
{
    return executor_ ? executor_->threads() : 1;
}

AppRunResult
ExperimentRunner::run(const KernelParams &kernel, const PolicySpec &policy,
                      const Instrument &instrument)
{
    const std::string key = kernel.name + "\x1f" + policy.name;
    if (!instrument && !tracer_) {
        for (const auto &[k, v] : cache_)
            if (k == key)
                return v;
    }

    GpuTop gpu(gpuCfg_, powerCfg_);
    gpu.setParallelExecutor(executor_.get());
    if (tracer_)
        gpu.setTracer(tracer_);
    auto controller = policy.build();
    gpu.setController(controller.get());
    if (instrument)
        instrument(gpu, controller.get());

    AppRunResult result;
    result.kernel = kernel.name;
    result.policy = policy.name;
    result.total.kernel = kernel.name;

    for (int inv = 0; inv < kernel.invocationCount(); ++inv) {
        SyntheticKernel launch(kernel, inv);
        RunMetrics m = gpu.runKernel(launch);
        result.total += m;
        result.invocations.push_back(std::move(m));
    }

    if (!instrument && !tracer_)
        cache_.emplace_back(key, result);
    return result;
}

AppRunResult
ExperimentRunner::runByName(const std::string &kernel_name,
                            const PolicySpec &policy,
                            const Instrument &instrument)
{
    return run(KernelZoo::byName(kernel_name).params, policy, instrument);
}

AppRunResult
ExperimentRunner::runSuffix(GpuTop &gpu, const KernelParams &kernel,
                            const PolicySpec &policy, int first_inv)
{
    // A hook-installing warm-up policy (CCWS) must not keep steering
    // the suffix; a forked child starts hook-free either way.
    gpu.clearPolicyHooks();
    auto controller = policy.build();
    gpu.setController(controller.get());

    AppRunResult result;
    result.kernel = kernel.name;
    result.policy = policy.name;
    result.total.kernel = kernel.name;
    for (int inv = first_inv; inv < kernel.invocationCount(); ++inv) {
        SyntheticKernel launch(kernel, inv);
        RunMetrics m = gpu.runKernel(launch);
        ++stats_.counter("sweep.invocations");
        result.total += m;
        result.invocations.push_back(std::move(m));
    }
    gpu.setController(nullptr);
    return result;
}

void
ExperimentRunner::checkPrefix(const KernelParams &kernel,
                              int prefix_invocations) const
{
    if (prefix_invocations < 0 ||
        prefix_invocations > kernel.invocationCount()) {
        fatal("sweep prefix of ", prefix_invocations,
              " invocations is outside this kernel's schedule of ",
              kernel.invocationCount());
    }
}

namespace
{

/**
 * Fill the grid table of an exhaustive (cold/warm) sweep: every grid
 * point was simulated in id order, so measurement i belongs to row i.
 */
void
fillExhaustiveTable(SweepResult &result,
                    const std::vector<OperatingPoint> &grid_points,
                    const std::vector<PolicySpec> &policies)
{
    for (std::size_t i = 0; i < grid_points.size(); ++i) {
        const RunMetrics &m = result.points[i].total;
        SweepPointRow row;
        row.id = static_cast<int>(i);
        row.policy = policies[i].name;
        row.smVf = grid_points[i].smVf;
        row.memVf = grid_points[i].memVf;
        row.cta = grid_points[i].cta;
        row.measuredSeconds = m.seconds;
        row.measuredCycles = static_cast<double>(m.smCycles);
        row.measuredJoules = m.totalJoules();
        row.simulated = true;
        result.table.push_back(std::move(row));
    }
    result.bestPerf = bestSweepRow(result.table, false);
    result.bestEnergy = bestSweepRow(result.table, true);
}

} // namespace

int
bestSweepRow(const std::vector<SweepPointRow> &table, bool by_energy)
{
    int best = -1;
    double best_value = 0.0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (!table[i].simulated)
            continue;
        const double v = by_energy ? table[i].measuredJoules
                                   : table[i].measuredSeconds;
        // Rows are visited in ascending id order, so "strictly less"
        // breaks measured ties toward the lower id.
        if (best < 0 || v < best_value) {
            best = static_cast<int>(i);
            best_value = v;
        }
    }
    return best;
}

SweepResult
ExperimentRunner::runSweep(const SweepPlan &plan)
{
    checkPrefix(plan.kernel, plan.prefixInvocations);
    if (plan.strategy == SweepStrategy::Model)
        return runModelSweep(*this, plan);

    // Explicit points keep the legacy shim behaviour (no table); a
    // grid-driven plan expands to operating-point policies and fills
    // the table afterwards.
    std::vector<OperatingPoint> grid_points;
    std::vector<PolicySpec> points = plan.points;
    if (points.empty()) {
        grid_points = expandSweepGrid(gpuCfg_, plan.kernel, plan.grid);
        for (const auto &op : grid_points)
            points.push_back(
                policies::operatingPoint(op.smVf, op.memVf, op.cta));
    }

    SweepResult result;
    if (plan.strategy == SweepStrategy::Cold) {
        for (const auto &point : points) {
            GpuTop gpu(gpuCfg_, powerCfg_);
            gpu.setParallelExecutor(executor_.get());
            if (tracer_)
                gpu.setTracer(tracer_);

            auto warmup = plan.prefixPolicy.build();
            gpu.setController(warmup.get());
            for (int inv = 0; inv < plan.prefixInvocations; ++inv) {
                SyntheticKernel launch(plan.kernel, inv);
                gpu.runKernel(launch);
                ++stats_.counter("sweep.prefix_invocations");
            }

            result.points.push_back(runSuffix(gpu, plan.kernel, point,
                                              plan.prefixInvocations));
            ++stats_.counter("sweep.points");
        }
    } else {
        GpuTop parent(gpuCfg_, powerCfg_);
        parent.setParallelExecutor(executor_.get());
        if (tracer_)
            parent.setTracer(tracer_);
        auto warmup = plan.prefixPolicy.build();
        parent.setController(warmup.get());
        for (int inv = 0; inv < plan.prefixInvocations; ++inv) {
            SyntheticKernel launch(plan.kernel, inv);
            parent.runKernel(launch);
            ++stats_.counter("sweep.prefix_invocations");
        }
        parent.setController(nullptr);

        for (const auto &point : points) {
            // Fork with no controller installed: the warm-up policy's
            // internal state is dropped, exactly as a cold point that
            // builds its controller after the prefix.
            GpuTop child(gpuCfg_, powerCfg_);
            child.setParallelExecutor(executor_.get());
            if (tracer_)
                child.setTracer(tracer_);
            child.forkFrom(parent);
            ++stats_.counter("sweep.forks");

            result.points.push_back(runSuffix(child, plan.kernel, point,
                                              plan.prefixInvocations));
            ++stats_.counter("sweep.points");
        }
    }

    if (!grid_points.empty())
        fillExhaustiveTable(result, grid_points, points);
    result.stats = stats_.snapshotAndReset();
    return result;
}

SweepResult
ExperimentRunner::runColdSweep(const KernelParams &kernel,
                               const PolicySpec &prefix_policy,
                               int prefix_invocations,
                               const std::vector<PolicySpec> &points)
{
    SweepPlan plan;
    plan.kernel = kernel;
    plan.strategy = SweepStrategy::Cold;
    plan.prefixPolicy = prefix_policy;
    plan.prefixInvocations = prefix_invocations;
    plan.points = points;
    return runSweep(plan);
}

SweepResult
ExperimentRunner::runWarmSweep(const KernelParams &kernel,
                               const PolicySpec &prefix_policy,
                               int prefix_invocations,
                               const std::vector<PolicySpec> &points)
{
    SweepPlan plan;
    plan.kernel = kernel;
    plan.strategy = SweepStrategy::Warm;
    plan.prefixPolicy = prefix_policy;
    plan.prefixInvocations = prefix_invocations;
    plan.points = points;
    return runSweep(plan);
}

} // namespace equalizer
