#include "runner.hh"

#include <cmath>

#include "kernels/kernel_zoo.hh"

namespace equalizer
{

double
speedupOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    return variant.seconds > 0.0 ? baseline.seconds / variant.seconds : 0.0;
}

double
energyEfficiencyOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double v = variant.totalJoules();
    return v > 0.0 ? baseline.totalJoules() / v : 0.0;
}

double
energyIncreaseOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double b = baseline.totalJoules();
    return b > 0.0 ? variant.totalJoules() / b - 1.0 : 0.0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

ExperimentRunner::ExperimentRunner(GpuConfig gpu_cfg, PowerConfig power_cfg,
                                   int threads)
    : gpuCfg_(gpu_cfg), powerCfg_(power_cfg)
{
    const int n =
        threads == 0 ? ParallelExecutor::hardwareThreads() : threads;
    if (n > 1)
        executor_ = std::make_unique<ParallelExecutor>(n);
}

int
ExperimentRunner::threads() const
{
    return executor_ ? executor_->threads() : 1;
}

AppRunResult
ExperimentRunner::run(const KernelParams &kernel, const PolicySpec &policy,
                      const Instrument &instrument)
{
    const std::string key = kernel.name + "\x1f" + policy.name;
    if (!instrument) {
        for (const auto &[k, v] : cache_)
            if (k == key)
                return v;
    }

    GpuTop gpu(gpuCfg_, powerCfg_);
    gpu.setParallelExecutor(executor_.get());
    auto controller = policy.build();
    gpu.setController(controller.get());
    if (instrument)
        instrument(gpu, controller.get());

    AppRunResult result;
    result.kernel = kernel.name;
    result.policy = policy.name;
    result.total.kernel = kernel.name;

    for (int inv = 0; inv < kernel.invocationCount(); ++inv) {
        SyntheticKernel launch(kernel, inv);
        RunMetrics m = gpu.runKernel(launch);
        result.total += m;
        result.invocations.push_back(std::move(m));
    }

    if (!instrument)
        cache_.emplace_back(key, result);
    return result;
}

AppRunResult
ExperimentRunner::runByName(const std::string &kernel_name,
                            const PolicySpec &policy,
                            const Instrument &instrument)
{
    return run(KernelZoo::byName(kernel_name).params, policy, instrument);
}

} // namespace equalizer
