#include "runner.hh"

#include <cmath>

#include "common/log.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{

double
speedupOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    return variant.seconds > 0.0 ? baseline.seconds / variant.seconds : 0.0;
}

double
energyEfficiencyOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double v = variant.totalJoules();
    return v > 0.0 ? baseline.totalJoules() / v : 0.0;
}

double
energyIncreaseOver(const RunMetrics &baseline, const RunMetrics &variant)
{
    const double b = baseline.totalJoules();
    return b > 0.0 ? variant.totalJoules() / b - 1.0 : 0.0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

ExperimentRunner::ExperimentRunner(GpuConfig gpu_cfg, PowerConfig power_cfg,
                                   int threads)
    : gpuCfg_(gpu_cfg), powerCfg_(power_cfg)
{
    const int n =
        threads == 0 ? ParallelExecutor::hardwareThreads() : threads;
    if (n > 1)
        executor_ = std::make_unique<ParallelExecutor>(n);
}

int
ExperimentRunner::threads() const
{
    return executor_ ? executor_->threads() : 1;
}

AppRunResult
ExperimentRunner::run(const KernelParams &kernel, const PolicySpec &policy,
                      const Instrument &instrument)
{
    const std::string key = kernel.name + "\x1f" + policy.name;
    if (!instrument && !tracer_) {
        for (const auto &[k, v] : cache_)
            if (k == key)
                return v;
    }

    GpuTop gpu(gpuCfg_, powerCfg_);
    gpu.setParallelExecutor(executor_.get());
    if (tracer_)
        gpu.setTracer(tracer_);
    auto controller = policy.build();
    gpu.setController(controller.get());
    if (instrument)
        instrument(gpu, controller.get());

    AppRunResult result;
    result.kernel = kernel.name;
    result.policy = policy.name;
    result.total.kernel = kernel.name;

    for (int inv = 0; inv < kernel.invocationCount(); ++inv) {
        SyntheticKernel launch(kernel, inv);
        RunMetrics m = gpu.runKernel(launch);
        result.total += m;
        result.invocations.push_back(std::move(m));
    }

    if (!instrument && !tracer_)
        cache_.emplace_back(key, result);
    return result;
}

AppRunResult
ExperimentRunner::runByName(const std::string &kernel_name,
                            const PolicySpec &policy,
                            const Instrument &instrument)
{
    return run(KernelZoo::byName(kernel_name).params, policy, instrument);
}

AppRunResult
ExperimentRunner::runSuffix(GpuTop &gpu, const KernelParams &kernel,
                            const PolicySpec &policy, int first_inv)
{
    // A hook-installing warm-up policy (CCWS) must not keep steering
    // the suffix; a forked child starts hook-free either way.
    gpu.clearPolicyHooks();
    auto controller = policy.build();
    gpu.setController(controller.get());

    AppRunResult result;
    result.kernel = kernel.name;
    result.policy = policy.name;
    result.total.kernel = kernel.name;
    for (int inv = first_inv; inv < kernel.invocationCount(); ++inv) {
        SyntheticKernel launch(kernel, inv);
        RunMetrics m = gpu.runKernel(launch);
        ++stats_.counter("sweep.invocations");
        result.total += m;
        result.invocations.push_back(std::move(m));
    }
    gpu.setController(nullptr);
    return result;
}

SweepResult
ExperimentRunner::runColdSweep(const KernelParams &kernel,
                               const PolicySpec &prefix_policy,
                               int prefix_invocations,
                               const std::vector<PolicySpec> &points)
{
    if (prefix_invocations < 0 ||
        prefix_invocations > kernel.invocationCount()) {
        fatal("sweep prefix of ", prefix_invocations,
              " invocations is outside this kernel's schedule of ",
              kernel.invocationCount());
    }

    SweepResult result;
    for (const auto &point : points) {
        GpuTop gpu(gpuCfg_, powerCfg_);
        gpu.setParallelExecutor(executor_.get());
        if (tracer_)
            gpu.setTracer(tracer_);

        auto warmup = prefix_policy.build();
        gpu.setController(warmup.get());
        for (int inv = 0; inv < prefix_invocations; ++inv) {
            SyntheticKernel launch(kernel, inv);
            gpu.runKernel(launch);
            ++stats_.counter("sweep.prefix_invocations");
        }

        result.points.push_back(
            runSuffix(gpu, kernel, point, prefix_invocations));
        ++stats_.counter("sweep.points");
    }
    result.stats = stats_.snapshotAndReset();
    return result;
}

SweepResult
ExperimentRunner::runWarmSweep(const KernelParams &kernel,
                               const PolicySpec &prefix_policy,
                               int prefix_invocations,
                               const std::vector<PolicySpec> &points)
{
    if (prefix_invocations < 0 ||
        prefix_invocations > kernel.invocationCount()) {
        fatal("sweep prefix of ", prefix_invocations,
              " invocations is outside this kernel's schedule of ",
              kernel.invocationCount());
    }

    GpuTop parent(gpuCfg_, powerCfg_);
    parent.setParallelExecutor(executor_.get());
    if (tracer_)
        parent.setTracer(tracer_);
    auto warmup = prefix_policy.build();
    parent.setController(warmup.get());
    for (int inv = 0; inv < prefix_invocations; ++inv) {
        SyntheticKernel launch(kernel, inv);
        parent.runKernel(launch);
        ++stats_.counter("sweep.prefix_invocations");
    }
    parent.setController(nullptr);

    SweepResult result;
    for (const auto &point : points) {
        // Fork with no controller installed: the warm-up policy's
        // internal state is dropped, exactly as a cold point that
        // builds its controller after the prefix.
        GpuTop child(gpuCfg_, powerCfg_);
        child.setParallelExecutor(executor_.get());
        if (tracer_)
            child.setTracer(tracer_);
        child.forkFrom(parent);
        ++stats_.counter("sweep.forks");

        result.points.push_back(
            runSuffix(child, kernel, point, prefix_invocations));
        ++stats_.counter("sweep.points");
    }
    result.stats = stats_.snapshotAndReset();
    return result;
}

} // namespace equalizer
