#include "co_run.hh"

#include <memory>

#include "common/log.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"

namespace equalizer
{

CoRunResult
runCoRun(GpuTop &gpu, const std::vector<CoRunTenant> &tenants,
         const CoRunOptions &opts)
{
    if (tenants.empty())
        fatal("runCoRun: no tenants");

    std::vector<TenantSpec> specs;
    for (const auto &t : tenants)
        specs.push_back({t.name, t.smLimit});
    gpu.configureTenants(specs, opts.partition);

    // The launches must outlive the run; invocation objects keep only
    // non-owning pointers.
    std::vector<std::unique_ptr<SyntheticKernel>> launches;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const auto &entry = KernelZoo::byName(tenants[i].kernel);
        const int n_inv =
            opts.allInvocations ? entry.params.invocationCount() : 1;
        for (int inv = 0; inv < n_inv; ++inv) {
            launches.push_back(
                std::make_unique<SyntheticKernel>(entry.params, inv));
            gpu.enqueueKernel(static_cast<int>(i), *launches.back());
        }
    }

    CoRunResult result;
    result.combined = gpu.runTenants(opts.maxSmCycles);

    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const Tenant &t = gpu.tenant(static_cast<int>(i));
        TenantRunMetrics row;
        row.tenant = t.name();
        row.kernels = tenants[i].kernel;
        row.smLimit = t.smLimit();
        row.smCount = static_cast<int>(t.smSet().size());
        row.dispatchedBlocks = t.dispatchedBlocks();
        row.busySmCycles = t.busySmCycles();
        row.limitedCycles = t.limitedCycles();
        row.elapsedCycles = t.elapsedCycles();
        for (const auto &inv : gpu.invocations()) {
            if (inv.tenantId() != static_cast<int>(i))
                continue;
            row.blocksCompleted += inv.blocksCompleted();
            row.instructions += inv.instructions();
        }
        result.tenants.push_back(std::move(row));
    }

    // Back to the classic whole-device configuration.
    gpu.configureTenants({});
    return result;
}

} // namespace equalizer
