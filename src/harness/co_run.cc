#include "co_run.hh"

#include <memory>

#include "common/log.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"

namespace equalizer
{

double
parseSmLimitKnob(const std::string &text)
{
    double v = 0.0;
    std::size_t used = 0;
    try {
        v = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size())
        fatal("sm_limit entry '", text, "' is not a number");
    if (v == 0.0)
        fatal("sm_limit=0 would starve the tenant: the token bucket "
              "pays sm_limit x |SMs| tokens per cycle, so 0 never "
              "dispatches a block; use a share in (0, 1], or omit the "
              "entry for unlimited");
    if (v < 0.0)
        fatal("sm_limit entry '", text, "' is negative; use a share "
              "in (0, 1]");
    if (v > 1.0) {
        warn("sm_limit=", text, " exceeds 1.0 (the whole partition); "
             "clamping to 1.0 = unlimited");
        v = 1.0;
    }
    return v;
}

CoRunResult
runCoRun(GpuTop &gpu, const std::vector<CoRunTenant> &tenants,
         const CoRunOptions &opts)
{
    if (tenants.empty())
        fatal("runCoRun: no tenants");

    std::vector<TenantSpec> specs;
    for (const auto &t : tenants)
        specs.push_back({t.name, t.smLimit});
    gpu.configureTenants(specs, opts.partition);

    // The launches must outlive the run; invocation objects keep only
    // non-owning pointers.
    std::vector<std::unique_ptr<SyntheticKernel>> launches;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const auto &entry = KernelZoo::byName(tenants[i].kernel);
        const int n_inv =
            opts.allInvocations ? entry.params.invocationCount() : 1;
        for (int inv = 0; inv < n_inv; ++inv) {
            launches.push_back(
                std::make_unique<SyntheticKernel>(entry.params, inv));
            gpu.enqueueKernel(static_cast<int>(i), *launches.back());
        }
    }

    CoRunResult result;
    result.combined = gpu.runTenants(opts.maxSmCycles);

    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const Tenant &t = gpu.tenant(static_cast<int>(i));
        TenantRunMetrics row;
        row.tenant = t.name();
        row.kernels = tenants[i].kernel;
        row.smLimit = t.smLimit();
        row.smCount = static_cast<int>(t.smSet().size());
        row.dispatchedBlocks = t.dispatchedBlocks();
        row.busySmCycles = t.busySmCycles();
        row.limitedCycles = t.limitedCycles();
        row.elapsedCycles = t.elapsedCycles();
        for (const auto &inv : gpu.invocations()) {
            if (inv.tenantId() != static_cast<int>(i))
                continue;
            row.blocksCompleted += inv.blocksCompleted();
            row.instructions += inv.instructions();
        }
        result.tenants.push_back(std::move(row));
    }

    // Back to the classic whole-device configuration.
    gpu.configureTenants({});
    return result;
}

} // namespace equalizer
