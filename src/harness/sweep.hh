/**
 * @file
 * The unified sweep API (docs/AUTOTUNE.md).
 *
 * A SweepPlan describes one VF x CTA operating-point sweep over the
 * tail of a kernel's invocation schedule: how the warm-up prefix is
 * handled (SweepStrategy), which points to visit (an explicit policy
 * list or a declarative SweepGrid), and — for the model-guided
 * strategy — the probe budget and Pareto slack of the search.
 * ExperimentRunner::runSweep() executes any plan; the legacy
 * runColdSweep()/runWarmSweep() entry points are shims over it.
 *
 * Every grid-driven sweep also fills SweepResult::table with one
 * SweepPointRow per grid point (predicted and measured cycles/joules
 * plus a simulated flag), the schema ExportSink::sweepTable() writes.
 */

#ifndef EQ_HARNESS_SWEEP_HH
#define EQ_HARNESS_SWEEP_HH

#include <string>
#include <vector>

#include "harness/policies.hh"
#include "kernels/kernel_params.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** How a sweep pays for the shared warm-up prefix. */
enum class SweepStrategy
{
    Cold, ///< re-simulate the prefix for every point
    Warm, ///< simulate the prefix once, fork each point (bit-identical)
    Model,///< warm probes fit a model; only the predicted Pareto
          ///< frontier is simulated (docs/AUTOTUNE.md)
};

/** Canonical name ("cold", "warm", "model"). */
const char *sweepStrategyName(SweepStrategy s);

/** Parse a strategy name; fatal() on anything unknown. */
SweepStrategy sweepStrategyFromName(const std::string &name);

/** One VF x CTA grid point. */
struct OperatingPoint
{
    VfState smVf = VfState::Normal;
    VfState memVf = VfState::Normal;
    int cta = 1; ///< concurrent blocks per SM

    bool
    operator==(const OperatingPoint &o) const
    {
        return smVf == o.smVf && memVf == o.memVf && cta == o.cta;
    }
};

/**
 * Declarative VF x CTA grid. Points expand in a fixed order (SM state
 * major, then memory state, then CTA), so grid point ids are stable
 * across strategies and thread counts.
 */
struct SweepGrid
{
    std::vector<VfState> smStates = {VfState::Low, VfState::Normal,
                                     VfState::High};
    std::vector<VfState> memStates = {VfState::Low, VfState::Normal,
                                      VfState::High};

    /**
     * Explicit CTA axis; empty = 1..effectiveMaxBlocks(), the
     * occupancy-calculator bound clamped by the kernel's Table II
     * limit.
     */
    std::vector<int> blocks;
};

/** Everything runSweep() needs to execute one sweep. */
struct SweepPlan
{
    KernelParams kernel;
    SweepStrategy strategy = SweepStrategy::Warm;

    /** Warm-up: invocations [0, prefixInvocations) under this policy. */
    PolicySpec prefixPolicy = policies::baseline();
    int prefixInvocations = 0;

    /**
     * Explicit operating points. Empty = expand @c grid instead (and
     * fill SweepResult::table). The Model strategy is grid-only.
     */
    std::vector<PolicySpec> points;
    SweepGrid grid;

    /** Model strategy: warmed probe simulations to fit from. */
    int probePoints = 6;

    /**
     * Model strategy: epsilon of the predicted Pareto frontier. A
     * point survives the frontier cut unless another predicted point
     * beats it by more than this factor on both time and energy.
     */
    double paretoSlack = 0.05;
};

/** One grid point of a sweep table (ExportSink::sweepTable schema). */
struct SweepPointRow
{
    int id = -1;          ///< stable grid point id
    std::string policy;   ///< operating-point policy name
    VfState smVf = VfState::Normal;
    VfState memVf = VfState::Normal;
    int cta = 0;

    /** Model predictions; zero under the exhaustive strategies. */
    double predictedSeconds = 0.0;
    double predictedCycles = 0.0;
    double predictedJoules = 0.0;

    /** Measured suffix totals; zero unless @c simulated. */
    double measuredSeconds = 0.0;
    double measuredCycles = 0.0;
    double measuredJoules = 0.0;

    bool simulated = false;
};

/**
 * Table index of the measured winner among simulated rows, by
 * measured seconds (or joules when @p by_energy); measured ties break
 * toward the lower id. -1 when nothing was simulated.
 */
int bestSweepRow(const std::vector<SweepPointRow> &table, bool by_energy);

} // namespace equalizer

#endif // EQ_HARNESS_SWEEP_HH
