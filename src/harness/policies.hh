/**
 * @file
 * Named runtime-policy factories used by tests, examples and benches.
 */

#ifndef EQ_HARNESS_POLICIES_HH
#define EQ_HARNESS_POLICIES_HH

#include <functional>
#include <memory>
#include <string>

#include "equalizer/equalizer.hh"
#include "gpu/controller.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** A named way to construct a controller (nullptr = stock GPU). */
struct PolicySpec
{
    std::string name;
    std::function<std::unique_ptr<GpuController>()> make;

    /** Build the controller; may return nullptr for the baseline. */
    std::unique_ptr<GpuController>
    build() const
    {
        return make ? make() : nullptr;
    }
};

namespace policies
{

/** Stock GPU: nominal frequencies, maximum concurrent blocks. */
PolicySpec baseline();

/** Static VF operating points (Figures 1, 7, 8). */
PolicySpec smHigh();
PolicySpec smLow();
PolicySpec memHigh();
PolicySpec memLow();

/** Statically fixed concurrent block count (Figures 1e, 2a, 5). */
PolicySpec staticBlocks(int blocks);

/**
 * One VF x CTA grid point of a sweep: both VF domains pinned plus a
 * fixed concurrent block count. Named "sm-<s>-mem-<m>-cta-<n>" — the
 * canonical point id of the sweep table (docs/AUTOTUNE.md).
 */
PolicySpec operatingPoint(VfState sm_vf, VfState mem_vf, int blocks);

/** The Equalizer runtime in one of its two objectives. */
PolicySpec equalizer(EqualizerMode mode,
                     EqualizerConfig cfg = EqualizerConfig{});

/** Comparison baselines (Figure 10). */
PolicySpec dynCta();
PolicySpec ccws();

} // namespace policies

} // namespace equalizer

#endif // EQ_HARNESS_POLICIES_HH
