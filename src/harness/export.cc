#include "export.hh"

#include <sstream>

namespace equalizer
{

namespace
{

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(9);
    os << v;
    return os.str();
}

} // namespace

void
MetricsExporter::addResult(const std::string &kernel,
                           const std::string &policy,
                           const RunMetrics &total,
                           const std::vector<RunMetrics> &invocations)
{
    for (std::size_t i = 0; i < invocations.size(); ++i)
        add(MetricsRow{kernel, policy, static_cast<int>(i),
                       invocations[i]});
    add(MetricsRow{kernel, policy, -1, total});
}

const std::vector<std::string> &
MetricsExporter::columns()
{
    static const std::vector<std::string> cols = {
        "kernel",         "policy",         "invocation",
        "seconds",        "sm_cycles",      "mem_cycles",
        "instructions",   "ipc",            "dynamic_joules",
        "static_joules",  "total_joules",   "l1_hit_rate",
        "l2_hits",        "l2_misses",      "dram_accesses",
        "dram_row_hits",  "waiting_frac",   "xmem_frac",
        "xalu_frac",      "sm_high_frac",   "sm_low_frac",
        "mem_high_frac",  "mem_low_frac",   "dram_pd_frac",
    };
    return cols;
}

std::vector<std::string>
MetricsExporter::values(const MetricsRow &row)
{
    const RunMetrics &m = row.metrics;
    const double active =
        std::max<double>(1.0, static_cast<double>(m.outcomeTotals.active));
    Tick total_res = 0;
    for (auto t : m.smResidency)
        total_res += t;
    auto res_frac = [total_res](Tick t) {
        return total_res
                   ? static_cast<double>(t) / static_cast<double>(total_res)
                   : 0.0;
    };

    return {
        row.kernel,
        row.policy,
        std::to_string(row.invocation),
        num(m.seconds),
        std::to_string(m.smCycles),
        std::to_string(m.memCycles),
        std::to_string(m.instructions),
        num(m.ipc()),
        num(m.dynamicJoules),
        num(m.staticJoules),
        num(m.totalJoules()),
        num(m.l1HitRate()),
        std::to_string(m.l2Hits),
        std::to_string(m.l2Misses),
        std::to_string(m.dramAccesses),
        std::to_string(m.dramRowHits),
        num(static_cast<double>(m.outcomeTotals.waiting) / active),
        num(static_cast<double>(m.outcomeTotals.excessMem) / active),
        num(static_cast<double>(m.outcomeTotals.excessAlu) / active),
        num(res_frac(m.smResidency[static_cast<int>(VfState::High)])),
        num(res_frac(m.smResidency[static_cast<int>(VfState::Low)])),
        num(res_frac(m.memResidency[static_cast<int>(VfState::High)])),
        num(res_frac(m.memResidency[static_cast<int>(VfState::Low)])),
        num(m.dramPowerDownFraction),
    };
}

void
MetricsExporter::writeCsv(std::ostream &os) const
{
    const auto &cols = columns();
    for (std::size_t c = 0; c < cols.size(); ++c)
        os << (c ? "," : "") << cols[c];
    os << '\n';
    for (const auto &row : rows_) {
        const auto vals = values(row);
        for (std::size_t c = 0; c < vals.size(); ++c)
            os << (c ? "," : "") << vals[c];
        os << '\n';
    }
}

void
MetricsExporter::writeJson(std::ostream &os) const
{
    const auto &cols = columns();
    os << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto vals = values(rows_[r]);
        os << "  {";
        for (std::size_t c = 0; c < cols.size(); ++c) {
            os << (c ? ", " : "") << '"' << cols[c] << "\": ";
            // Identity columns are strings; the rest are numeric.
            if (c < 2)
                os << '"' << vals[c] << '"';
            else
                os << vals[c];
        }
        os << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

} // namespace equalizer
