#include "export.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "serve/request.hh"
#include "serve/server.hh"

namespace equalizer
{

namespace
{

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(9);
    os << v;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeCellJson(std::ostream &os, const ExportCell &cell)
{
    if (cell.quoted)
        os << '"' << jsonEscape(cell.text) << '"';
    else
        os << cell.text;
}

} // namespace

const char *
exportFormatName(ExportFormat format)
{
    switch (format) {
      case ExportFormat::Csv:
        return "csv";
      case ExportFormat::Json:
        return "json";
      case ExportFormat::TraceEvent:
        return "trace-event";
    }
    return "?";
}

ExportFormat
exportFormatFromName(const std::string &name)
{
    if (name == "csv")
        return ExportFormat::Csv;
    if (name == "json")
        return ExportFormat::Json;
    if (name == "trace-event" || name == "trace_event")
        return ExportFormat::TraceEvent;
    fatal("unknown export format '", name,
          "' (expected csv, json or trace-event)");
}

ExportFormat
exportFormatForPath(const std::string &path, ExportFormat fallback)
{
    auto ends_with = [&path](const char *suffix) {
        const std::string s(suffix);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with(".trace.json"))
        return ExportFormat::TraceEvent;
    if (ends_with(".json"))
        return ExportFormat::Json;
    if (ends_with(".csv"))
        return ExportFormat::Csv;
    return fallback;
}

ExportCell
ExportCell::str(std::string s)
{
    return ExportCell{std::move(s), true};
}

ExportCell
ExportCell::num(double v)
{
    return ExportCell{equalizer::num(v), false};
}

ExportCell
ExportCell::integer(std::int64_t v)
{
    return ExportCell{std::to_string(v), false};
}

ExportSink::ExportSink(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
    if (columns_.empty())
        fatal("ExportSink needs at least one column");
}

void
ExportSink::meta(const std::string &key, ExportCell value)
{
    for (auto &[k, v] : meta_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    meta_.emplace_back(key, std::move(value));
}

void
ExportSink::row(std::vector<ExportCell> cells)
{
    if (cells.size() != columns_.size())
        fatal("export row has ", cells.size(), " cells but the table has ",
              columns_.size(), " columns");
    rows_.push_back(std::move(cells));
}

void
ExportSink::write(std::ostream &os, ExportFormat format) const
{
    switch (format) {
      case ExportFormat::Csv:
        writeCsv(os);
        return;
      case ExportFormat::Json:
        writeJson(os);
        return;
      case ExportFormat::TraceEvent:
        writeTraceEvent(os);
        return;
    }
}

void
ExportSink::writeFile(const std::string &path, ExportFormat format) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open export file '", path, "'");
    write(os, format);
}

void
ExportSink::writeCsv(std::ostream &os) const
{
    for (const auto &[key, value] : meta_)
        os << "# " << key << " = " << value.text << '\n';
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << (c ? "," : "") << columns_[c];
    os << '\n';
    for (const auto &cells : rows_) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c].text;
        os << '\n';
    }
}

void
ExportSink::writeJsonArray(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &cells = rows_[r];
        os << "  {";
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            os << (c ? ", " : "") << '"' << jsonEscape(columns_[c])
               << "\": ";
            writeCellJson(os, cells[c]);
        }
        os << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
ExportSink::writeJson(std::ostream &os) const
{
    os << "{\n\"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        os << (i ? ", " : "") << '"' << jsonEscape(meta_[i].first)
           << "\": ";
        writeCellJson(os, meta_[i].second);
    }
    os << "},\n\"rows\": ";
    writeJsonArray(os);
    os << "}\n";
}

void
ExportSink::writeTraceEvent(std::ostream &os) const
{
    // Each row becomes one counter sample per numeric column at
    // ts = row index, so a sweep loads directly into Perfetto.
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    os << "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
          "\"args\": {\"name\": \"export\"}}";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &cells = rows_[r];
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            if (cells[c].quoted)
                continue;
            os << ",\n{\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": "
               << r << ", \"name\": \"" << jsonEscape(columns_[c])
               << "\", \"args\": {\"value\": " << cells[c].text << "}}";
        }
    }
    os << "\n]}\n";
}

ExportSink
ExportSink::metricsTable()
{
    return ExportSink(MetricsExporter::columns());
}

void
ExportSink::addMetrics(const std::string &kernel, const std::string &policy,
                       int invocation, const RunMetrics &m)
{
    const double active =
        std::max<double>(1.0, static_cast<double>(m.outcomeTotals.active));
    Tick total_res = 0;
    for (auto t : m.smResidency)
        total_res += t;
    auto res_frac = [total_res](Tick t) {
        return total_res
                   ? static_cast<double>(t) / static_cast<double>(total_res)
                   : 0.0;
    };

    row({
        ExportCell::str(kernel),
        ExportCell::str(policy),
        ExportCell::integer(invocation),
        ExportCell::num(m.seconds),
        ExportCell::integer(static_cast<std::int64_t>(m.smCycles)),
        ExportCell::integer(static_cast<std::int64_t>(m.memCycles)),
        ExportCell::integer(static_cast<std::int64_t>(m.instructions)),
        ExportCell::num(m.ipc()),
        ExportCell::num(m.dynamicJoules),
        ExportCell::num(m.staticJoules),
        ExportCell::num(m.totalJoules()),
        ExportCell::num(m.l1HitRate()),
        ExportCell::integer(static_cast<std::int64_t>(m.l2Hits)),
        ExportCell::integer(static_cast<std::int64_t>(m.l2Misses)),
        ExportCell::integer(static_cast<std::int64_t>(m.dramAccesses)),
        ExportCell::integer(static_cast<std::int64_t>(m.dramRowHits)),
        ExportCell::num(static_cast<double>(m.outcomeTotals.waiting) /
                        active),
        ExportCell::num(static_cast<double>(m.outcomeTotals.excessMem) /
                        active),
        ExportCell::num(static_cast<double>(m.outcomeTotals.excessAlu) /
                        active),
        ExportCell::num(
            res_frac(m.smResidency[static_cast<int>(VfState::High)])),
        ExportCell::num(
            res_frac(m.smResidency[static_cast<int>(VfState::Low)])),
        ExportCell::num(
            res_frac(m.memResidency[static_cast<int>(VfState::High)])),
        ExportCell::num(
            res_frac(m.memResidency[static_cast<int>(VfState::Low)])),
        ExportCell::num(m.dramPowerDownFraction),
    });
}

void
ExportSink::addResult(const std::string &kernel, const std::string &policy,
                      const RunMetrics &total,
                      const std::vector<RunMetrics> &invocations)
{
    for (std::size_t i = 0; i < invocations.size(); ++i)
        addMetrics(kernel, policy, static_cast<int>(i), invocations[i]);
    addMetrics(kernel, policy, -1, total);
}

ExportSink
ExportSink::tenantTable()
{
    return ExportSink({
        "tenant",
        "kernels",
        "policy",
        "sm_limit",
        "sm_count",
        "dispatched_blocks",
        "blocks_completed",
        "instructions",
        "busy_sm_cycles",
        "limited_cycles",
        "elapsed_cycles",
        "occupancy_share",
    });
}

void
ExportSink::addTenantMetrics(const std::string &policy,
                             const TenantRunMetrics &t)
{
    row({
        ExportCell::str(t.tenant),
        ExportCell::str(t.kernels),
        ExportCell::str(policy),
        ExportCell::num(t.smLimit),
        ExportCell::integer(t.smCount),
        ExportCell::integer(
            static_cast<std::int64_t>(t.dispatchedBlocks)),
        ExportCell::integer(static_cast<std::int64_t>(t.blocksCompleted)),
        ExportCell::integer(static_cast<std::int64_t>(t.instructions)),
        ExportCell::integer(static_cast<std::int64_t>(t.busySmCycles)),
        ExportCell::integer(static_cast<std::int64_t>(t.limitedCycles)),
        ExportCell::integer(static_cast<std::int64_t>(t.elapsedCycles)),
        ExportCell::num(t.occupancyShare()),
    });
}

ExportSink
ExportSink::sweepTable()
{
    return ExportSink({
        "point",
        "policy",
        "sm_vf",
        "mem_vf",
        "cta",
        "predicted_seconds",
        "predicted_cycles",
        "predicted_joules",
        "measured_seconds",
        "measured_cycles",
        "measured_joules",
        "simulated",
    });
}

void
ExportSink::addSweepPoint(const SweepPointRow &p)
{
    row({
        ExportCell::integer(p.id),
        ExportCell::str(p.policy),
        ExportCell::str(vfStateName(p.smVf)),
        ExportCell::str(vfStateName(p.memVf)),
        ExportCell::integer(p.cta),
        ExportCell::num(p.predictedSeconds),
        ExportCell::num(p.predictedCycles),
        ExportCell::num(p.predictedJoules),
        ExportCell::num(p.measuredSeconds),
        ExportCell::num(p.measuredCycles),
        ExportCell::num(p.measuredJoules),
        ExportCell::integer(p.simulated ? 1 : 0),
    });
}

ExportSink
ExportSink::serveTable()
{
    return ExportSink({
        "request",
        "kernel",
        "policy",
        "priority",
        "arrival_cycle",
        "start_cycle",
        "complete_cycle",
        "latency_cycles",
        "executed_cycles",
        "preemptions",
        "slo_cycles",
        "slo_violated",
        "completed",
        "rejected",
        "device",
    });
}

void
ExportSink::addServeRequest(const std::string &policy,
                            const RequestRecord &rec)
{
    row({
        ExportCell::integer(rec.req.id),
        ExportCell::str(rec.req.kernel),
        ExportCell::str(policy),
        ExportCell::integer(rec.req.priority),
        ExportCell::integer(
            static_cast<std::int64_t>(rec.req.arrivalCycle)),
        ExportCell::integer(static_cast<std::int64_t>(rec.startCycle)),
        ExportCell::integer(
            static_cast<std::int64_t>(rec.completeCycle)),
        ExportCell::integer(
            static_cast<std::int64_t>(rec.latencyCycles)),
        ExportCell::integer(
            static_cast<std::int64_t>(rec.executedCycles)),
        ExportCell::integer(rec.preemptions),
        ExportCell::integer(
            static_cast<std::int64_t>(rec.req.sloCycles)),
        ExportCell::integer(rec.sloViolated ? 1 : 0),
        ExportCell::integer(rec.completed ? 1 : 0),
        ExportCell::integer(rec.rejected ? 1 : 0),
        ExportCell::integer(rec.device),
    });
}

ExportSink
ExportSink::serveSummaryTable()
{
    return ExportSink({
        "policy",
        "admission",
        "devices",
        "requests",
        "completed",
        "rejected",
        "rejection_rate",
        "preemptions",
        "wall_cycles",
        "executed_cycles",
        "p50_latency",
        "p95_latency",
        "p99_latency",
        "max_latency",
        "mean_latency",
        "throughput_per_mcycle",
        "slo_violations",
        "slo_violation_rate",
    });
}

void
ExportSink::addServeSummary(const ServeSummary &s)
{
    row({
        ExportCell::str(s.policy),
        ExportCell::str(s.admission),
        ExportCell::integer(s.devices),
        ExportCell::integer(s.requests),
        ExportCell::integer(s.completed),
        ExportCell::integer(s.rejected),
        ExportCell::num(s.rejectionRate),
        ExportCell::integer(s.preemptions),
        ExportCell::integer(static_cast<std::int64_t>(s.wallCycles)),
        ExportCell::integer(
            static_cast<std::int64_t>(s.executedCycles)),
        ExportCell::integer(static_cast<std::int64_t>(s.p50Latency)),
        ExportCell::integer(static_cast<std::int64_t>(s.p95Latency)),
        ExportCell::integer(static_cast<std::int64_t>(s.p99Latency)),
        ExportCell::integer(static_cast<std::int64_t>(s.maxLatency)),
        ExportCell::num(s.meanLatency),
        ExportCell::num(s.throughputPerMcycle),
        ExportCell::integer(s.sloViolations),
        ExportCell::num(s.sloViolationRate),
    });
}

const std::vector<std::string> &
MetricsExporter::columns()
{
    static const std::vector<std::string> cols = {
        "kernel",         "policy",         "invocation",
        "seconds",        "sm_cycles",      "mem_cycles",
        "instructions",   "ipc",            "dynamic_joules",
        "static_joules",  "total_joules",   "l1_hit_rate",
        "l2_hits",        "l2_misses",      "dram_accesses",
        "dram_row_hits",  "waiting_frac",   "xmem_frac",
        "xalu_frac",      "sm_high_frac",   "sm_low_frac",
        "mem_high_frac",  "mem_low_frac",   "dram_pd_frac",
    };
    return cols;
}

} // namespace equalizer
