#include "report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace equalizer
{

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    EQ_ASSERT(cells.size() == headers_.size(),
              "table row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &r : rows_)
        print_row(r);
}

void
banner(const std::string &title, std::ostream &os)
{
    os << '\n' << "== " << title << " ==\n";
}

} // namespace equalizer
