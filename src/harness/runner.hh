/**
 * @file
 * The experiment runner: executes a kernel's full invocation schedule on
 * a fresh GPU under a policy and aggregates the metrics.
 */

#ifndef EQ_HARNESS_RUNNER_HH
#define EQ_HARNESS_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "gpu/gpu_top.hh"
#include "harness/policies.hh"
#include "kernels/kernel_params.hh"
#include "kernels/synthetic_kernel.hh"
#include "power/energy_model.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{

/** Result of running one application (all invocations of one kernel). */
struct AppRunResult
{
    std::string kernel;
    std::string policy;
    RunMetrics total;                   ///< summed over invocations
    std::vector<RunMetrics> invocations;
};

/**
 * Result of a sweep: one suffix-only AppRunResult per policy point (the
 * shared warm-up prefix is excluded from every point's metrics, so warm
 * and cold sweeps are directly comparable), plus the sweep's own
 * bookkeeping counters.
 */
struct SweepResult
{
    std::vector<AppRunResult> points;
    StatRegistry stats; ///< sweep.* counters (forks, invocations, ...)
};

/** Relative performance: baseline time / variant time (>1 = faster). */
double speedupOver(const RunMetrics &baseline, const RunMetrics &variant);

/** Energy efficiency as the paper plots it: E_base / E_variant. */
double energyEfficiencyOver(const RunMetrics &baseline,
                            const RunMetrics &variant);

/** Relative energy: E_variant / E_base - 1 (positive = more energy). */
double energyIncreaseOver(const RunMetrics &baseline,
                          const RunMetrics &variant);

/** Geometric mean; empty input yields 1.0. */
double geomean(const std::vector<double> &values);

/**
 * Runs kernels under policies on freshly constructed GPUs.
 *
 * A small cache keyed by (kernel, policy) avoids re-simulating the
 * baseline for every figure that normalizes against it.
 */
class ExperimentRunner
{
  public:
    /** Invoked after GPU construction, before the first invocation. */
    using Instrument = std::function<void(GpuTop &, GpuController *)>;

    /**
     * @param threads Worker threads for the per-SM parallel phase:
     *        0 = hardware concurrency (the default), 1 = the serial
     *        oracle path. Results are bit-identical either way; the
     *        knob only trades wall-clock time.
     */
    explicit ExperimentRunner(GpuConfig gpu_cfg = GpuConfig::gtx480(),
                              PowerConfig power_cfg = PowerConfig::gtx480(),
                              int threads = 0);

    /** Threads the runner will use for the SM phase. */
    int threads() const;

    /**
     * Record every subsequent run into @p tracer (nullptr disables).
     * Applied to each GpuTop the runner constructs — including sweep
     * parents and forked children — and bypasses the result cache so a
     * traced run always simulates.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Simulate every invocation of @p kernel under @p policy.
     *
     * @param instrument Optional hook for monitors/traces (disables the
     *        result cache for that call).
     */
    AppRunResult run(const KernelParams &kernel, const PolicySpec &policy,
                     const Instrument &instrument = {});

    /** run() against the roster entry with this kernel name. */
    AppRunResult runByName(const std::string &kernel_name,
                           const PolicySpec &policy,
                           const Instrument &instrument = {});

    /**
     * Sweep @p points over the tail of @p kernel's invocation schedule.
     * Every point observes the same history: invocations
     * [0, prefix_invocations) run under @p prefix_policy, then the
     * point's own (freshly built) policy runs the rest. Each point's
     * AppRunResult covers only the suffix.
     *
     * The cold sweep re-simulates the prefix for every point.
     */
    SweepResult runColdSweep(const KernelParams &kernel,
                             const PolicySpec &prefix_policy,
                             int prefix_invocations,
                             const std::vector<PolicySpec> &points);

    /**
     * Same contract and bit-identical per-point results as
     * runColdSweep(), but the prefix is simulated once and each point
     * forks the warmed GPU state (GpuTop::forkFrom), so an N-point
     * sweep pays for the prefix once instead of N times.
     */
    SweepResult runWarmSweep(const KernelParams &kernel,
                             const PolicySpec &prefix_policy,
                             int prefix_invocations,
                             const std::vector<PolicySpec> &points);

    /** Clear the (kernel, policy) result cache. */
    void clearCache() { cache_.clear(); }

    const GpuConfig &gpuConfig() const { return gpuCfg_; }

  private:
    /** Suffix of a sweep point: invocations [first_inv, count). */
    AppRunResult runSuffix(GpuTop &gpu, const KernelParams &kernel,
                           const PolicySpec &policy, int first_inv);

    GpuConfig gpuCfg_;
    PowerConfig powerCfg_;
    Tracer *tracer_ = nullptr;
    std::unique_ptr<ParallelExecutor> executor_; ///< null = serial path
    std::vector<std::pair<std::string, AppRunResult>> cache_;

    /// Sweep bookkeeping; snapshotAndReset() between sweeps keeps the
    /// counters of one sweep from leaking into the next.
    StatRegistry stats_;
};

} // namespace equalizer

#endif // EQ_HARNESS_RUNNER_HH
