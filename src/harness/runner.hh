/**
 * @file
 * The experiment runner: executes a kernel's full invocation schedule on
 * a fresh GPU under a policy and aggregates the metrics.
 */

#ifndef EQ_HARNESS_RUNNER_HH
#define EQ_HARNESS_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "gpu/gpu_top.hh"
#include "harness/policies.hh"
#include "harness/sweep.hh"
#include "kernels/kernel_params.hh"
#include "kernels/synthetic_kernel.hh"
#include "power/energy_model.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{

/** Result of running one application (all invocations of one kernel). */
struct AppRunResult
{
    std::string kernel;
    std::string policy;
    RunMetrics total;                   ///< summed over invocations
    std::vector<RunMetrics> invocations;
};

/**
 * Result of a sweep: one suffix-only AppRunResult per policy point (the
 * shared warm-up prefix is excluded from every point's metrics, so warm
 * and cold sweeps are directly comparable), plus the sweep's own
 * bookkeeping counters.
 */
struct SweepResult
{
    std::vector<AppRunResult> points; ///< one per *simulated* point
    StatRegistry stats; ///< sweep.* counters (forks, invocations, ...)

    /**
     * One row per grid point when the plan was grid-driven (empty for
     * explicit-point sweeps): ids, predictions, measurements and the
     * simulated flag — the ExportSink::sweepTable() schema.
     */
    std::vector<SweepPointRow> table;

    /** Table indices of the measured winners (-1 = no table). */
    int bestPerf = -1;   ///< lowest measured seconds, ties to lower id
    int bestEnergy = -1; ///< lowest measured joules, ties to lower id

    /** Model strategy only: mean relative error over the probe fit. */
    double fitErrorSeconds = 0.0;
    double fitErrorJoules = 0.0;

    /** Model strategy only: probe-run features (docs/AUTOTUNE.md). */
    double probeIpc = 0.0;
    double probeMemoryPressure = 0.0;
    std::uint64_t probeEpochSamples = 0;
};

/** Relative performance: baseline time / variant time (>1 = faster). */
double speedupOver(const RunMetrics &baseline, const RunMetrics &variant);

/** Energy efficiency as the paper plots it: E_base / E_variant. */
double energyEfficiencyOver(const RunMetrics &baseline,
                            const RunMetrics &variant);

/** Relative energy: E_variant / E_base - 1 (positive = more energy). */
double energyIncreaseOver(const RunMetrics &baseline,
                          const RunMetrics &variant);

/** Geometric mean; empty input yields 1.0. */
double geomean(const std::vector<double> &values);

/**
 * Runs kernels under policies on freshly constructed GPUs.
 *
 * A small cache keyed by (kernel, policy) avoids re-simulating the
 * baseline for every figure that normalizes against it.
 */
class ExperimentRunner
{
  public:
    /** Invoked after GPU construction, before the first invocation. */
    using Instrument = std::function<void(GpuTop &, GpuController *)>;

    /**
     * @param threads Worker threads for the per-SM parallel phase:
     *        0 = hardware concurrency (the default), 1 = the serial
     *        oracle path. Results are bit-identical either way; the
     *        knob only trades wall-clock time.
     */
    explicit ExperimentRunner(GpuConfig gpu_cfg = GpuConfig::gtx480(),
                              PowerConfig power_cfg = PowerConfig::gtx480(),
                              int threads = 0);

    /** Threads the runner will use for the SM phase. */
    int threads() const;

    /**
     * Record every subsequent run into @p tracer (nullptr disables).
     * Applied to each GpuTop the runner constructs — including sweep
     * parents and forked children — and bypasses the result cache so a
     * traced run always simulates.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** The tracer every run records into (nullptr = none). */
    Tracer *tracer() const { return tracer_; }

    /**
     * Simulate every invocation of @p kernel under @p policy.
     *
     * @param instrument Optional hook for monitors/traces (disables the
     *        result cache for that call).
     */
    AppRunResult run(const KernelParams &kernel, const PolicySpec &policy,
                     const Instrument &instrument = {});

    /** run() against the roster entry with this kernel name. */
    AppRunResult runByName(const std::string &kernel_name,
                           const PolicySpec &policy,
                           const Instrument &instrument = {});

    /**
     * Execute one sweep plan (docs/AUTOTUNE.md).
     *
     * Every point observes the same history: invocations
     * [0, plan.prefixInvocations) run under plan.prefixPolicy, then
     * the point's own (freshly built) policy runs the rest; each
     * point's AppRunResult covers only the suffix. The strategy only
     * decides how that history is paid for — Cold re-simulates the
     * prefix per point, Warm simulates it once and forks each point
     * (bit-identical per-point results), Model additionally fits a
     * predictor to a few warmed probes and simulates only the
     * predicted Pareto frontier. Grid-driven plans (empty
     * plan.points) also fill SweepResult::table and the winner
     * indices.
     */
    SweepResult runSweep(const SweepPlan &plan);

    /**
     * Sweep explicit @p points with the Cold strategy.
     *
     * @deprecated Shim over runSweep(); kept for existing callers,
     * byte-identical results. New code should build a SweepPlan.
     */
    SweepResult runColdSweep(const KernelParams &kernel,
                             const PolicySpec &prefix_policy,
                             int prefix_invocations,
                             const std::vector<PolicySpec> &points);

    /**
     * Sweep explicit @p points with the Warm strategy (the prefix is
     * simulated once, each point forks the warmed state).
     *
     * @deprecated Shim over runSweep(); kept for existing callers,
     * byte-identical results. New code should build a SweepPlan.
     */
    SweepResult runWarmSweep(const KernelParams &kernel,
                             const PolicySpec &prefix_policy,
                             int prefix_invocations,
                             const std::vector<PolicySpec> &points);

    /** Clear the (kernel, policy) result cache. */
    void clearCache() { cache_.clear(); }

    const GpuConfig &gpuConfig() const { return gpuCfg_; }

  private:
    /// The model-guided strategy lives in src/autotune (the harness
    /// dispatches to it from runSweep); it drives warmed forks through
    /// runSuffix() and the sweep counters directly.
    friend SweepResult runModelSweep(ExperimentRunner &runner,
                                     const SweepPlan &plan);

    /** Suffix of a sweep point: invocations [first_inv, count). */
    AppRunResult runSuffix(GpuTop &gpu, const KernelParams &kernel,
                           const PolicySpec &policy, int first_inv);

    /** fatal() unless the plan's prefix fits the kernel's schedule. */
    void checkPrefix(const KernelParams &kernel,
                     int prefix_invocations) const;

    GpuConfig gpuCfg_;
    PowerConfig powerCfg_;
    Tracer *tracer_ = nullptr;
    std::unique_ptr<ParallelExecutor> executor_; ///< null = serial path
    std::vector<std::pair<std::string, AppRunResult>> cache_;

    /// Sweep bookkeeping; snapshotAndReset() between sweeps keeps the
    /// counters of one sweep from leaking into the next.
    StatRegistry stats_;
};

} // namespace equalizer

#endif // EQ_HARNESS_RUNNER_HH
