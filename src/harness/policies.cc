#include "policies.hh"

#include "baselines/ccws.hh"
#include "baselines/dyncta.hh"
#include "baselines/static_policy.hh"

namespace equalizer
{

namespace policies
{

PolicySpec
baseline()
{
    return PolicySpec{"baseline", nullptr};
}

PolicySpec
smHigh()
{
    return PolicySpec{"sm-high", [] {
                          return std::make_unique<StaticPolicy>(
                              "sm-high", VfState::High, VfState::Normal);
                      }};
}

PolicySpec
smLow()
{
    return PolicySpec{"sm-low", [] {
                          return std::make_unique<StaticPolicy>(
                              "sm-low", VfState::Low, VfState::Normal);
                      }};
}

PolicySpec
memHigh()
{
    return PolicySpec{"mem-high", [] {
                          return std::make_unique<StaticPolicy>(
                              "mem-high", VfState::Normal, VfState::High);
                      }};
}

PolicySpec
memLow()
{
    return PolicySpec{"mem-low", [] {
                          return std::make_unique<StaticPolicy>(
                              "mem-low", VfState::Normal, VfState::Low);
                      }};
}

PolicySpec
staticBlocks(int blocks)
{
    const std::string name = "blocks-" + std::to_string(blocks);
    return PolicySpec{name, [name, blocks] {
                          return std::make_unique<StaticPolicy>(
                              name, VfState::Normal, VfState::Normal,
                              blocks);
                      }};
}

PolicySpec
operatingPoint(VfState sm_vf, VfState mem_vf, int blocks)
{
    const std::string name = std::string("sm-") + vfStateName(sm_vf) +
                             "-mem-" + vfStateName(mem_vf) + "-cta-" +
                             std::to_string(blocks);
    return PolicySpec{name, [name, sm_vf, mem_vf, blocks] {
                          return std::make_unique<StaticPolicy>(
                              name, sm_vf, mem_vf, blocks);
                      }};
}

PolicySpec
equalizer(EqualizerMode mode, EqualizerConfig cfg)
{
    cfg.mode = mode;
    const std::string name = mode == EqualizerMode::Energy
                                 ? "equalizer-energy"
                                 : "equalizer-perf";
    return PolicySpec{name, [cfg] {
                          return std::make_unique<EqualizerEngine>(cfg);
                      }};
}

PolicySpec
dynCta()
{
    return PolicySpec{"dyncta",
                      [] { return std::make_unique<DynCta>(); }};
}

PolicySpec
ccws()
{
    return PolicySpec{"ccws", [] { return std::make_unique<Ccws>(); }};
}

} // namespace policies

} // namespace equalizer
