/**
 * @file
 * The unified export API: every machine-readable artifact the harness
 * emits (per-bench JSON, metrics CSV, Chrome trace-event JSON) goes
 * through one ExportSink, so benches and examples share one schema,
 * one formatter and one format-selection rule.
 *
 * An ExportSink is a named-column table plus free-form metadata.
 * Formats:
 *  - Csv: optional `# key = value` meta comments, header, one line
 *    per row.
 *  - Json: `{"meta": {...}, "rows": [{col: val, ...}, ...]}`.
 *  - TraceEvent: rows rendered as Chrome trace_event counter samples
 *    (ts = row index) for a quick Perfetto look at a sweep. Full
 *    simulation traces come from the trace subsystem instead
 *    (docs/TRACING.md).
 */

#ifndef EQ_HARNESS_EXPORT_HH
#define EQ_HARNESS_EXPORT_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "gpu/metrics.hh"
#include "gpu/tenant.hh"
#include "harness/sweep.hh"

namespace equalizer
{

struct RequestRecord;
struct ServeSummary;

/** Serialization formats an ExportSink can write. */
enum class ExportFormat
{
    Csv,
    Json,
    TraceEvent,
};

/** Canonical name ("csv", "json", "trace-event"). */
const char *exportFormatName(ExportFormat format);

/** Parse a format name; fatal() on anything unknown. */
ExportFormat exportFormatFromName(const std::string &name);

/**
 * Infer the format from a file suffix: ".csv", ".json", and
 * ".trace.json" (Chrome trace-event); anything else gets @p fallback.
 */
ExportFormat exportFormatForPath(const std::string &path,
                                 ExportFormat fallback);

/** One table cell: rendered text plus whether JSON must quote it. */
struct ExportCell
{
    std::string text;
    bool quoted = false;

    static ExportCell str(std::string s);
    static ExportCell num(double v);
    static ExportCell integer(std::int64_t v);
};

/**
 * The one export path: collect rows (and metadata), then write in any
 * ExportFormat.
 */
class ExportSink
{
  public:
    explicit ExportSink(std::vector<std::string> columns);

    /** Attach a metadata entry (sweep parameters, bench identity). */
    void meta(const std::string &key, ExportCell value);

    /** Append one row; fatal() unless it has one cell per column. */
    void row(std::vector<ExportCell> cells);

    const std::vector<std::string> &columnNames() const
    {
        return columns_;
    }

    std::size_t rowCount() const { return rows_.size(); }
    void clear() { rows_.clear(); }

    void write(std::ostream &os, ExportFormat format) const;

    /** write() to a file; fatal() when it cannot be opened. */
    void writeFile(const std::string &path, ExportFormat format) const;

    // --- The shared run-metrics schema (benches, eqsim, examples).

    /** A sink with the standard RunMetrics column set. */
    static ExportSink metricsTable();

    /** Append one RunMetrics row (invocation -1 = whole-app total). */
    void addMetrics(const std::string &kernel, const std::string &policy,
                    int invocation, const RunMetrics &m);

    /** Append all invocations (and the total) of a harness result. */
    void addResult(const std::string &kernel, const std::string &policy,
                   const RunMetrics &total,
                   const std::vector<RunMetrics> &invocations);

    // --- The per-tenant attribution schema (multi-tenant co-runs).

    /** A sink with the standard TenantRunMetrics column set. */
    static ExportSink tenantTable();

    /** Append one per-tenant attribution row of a co-run. */
    void addTenantMetrics(const std::string &policy,
                          const TenantRunMetrics &t);

    // --- The sweep-table schema (docs/AUTOTUNE.md): one row per grid
    // point with predictions, measurements and the simulated flag.

    /** A sink with the unified sweep-point column set. */
    static ExportSink sweepTable();

    /** Append one grid-point row of a sweep table. */
    void addSweepPoint(const SweepPointRow &p);

    // --- The serving schema (docs/SERVING.md): per-request rows and
    // the aggregate latency/throughput/SLO summary.

    /** A sink with the per-request serving column set. */
    static ExportSink serveTable();

    /** Append one request lifetime row of a serve() run. */
    void addServeRequest(const std::string &policy,
                         const RequestRecord &rec);

    /** A sink with the serving-summary column set. */
    static ExportSink serveSummaryTable();

    /** Append one serve() run's aggregate metrics row. */
    void addServeSummary(const ServeSummary &s);

  private:
    friend class MetricsExporter; // bare-array JSON compatibility

    void writeCsv(std::ostream &os) const;
    void writeJson(std::ostream &os) const;
    void writeJsonArray(std::ostream &os) const;
    void writeTraceEvent(std::ostream &os) const;

    std::vector<std::string> columns_;
    std::vector<std::pair<std::string, ExportCell>> meta_;
    std::vector<std::vector<ExportCell>> rows_;
};

/** One exported row: identity plus its measurements. */
struct MetricsRow
{
    std::string kernel;
    std::string policy;
    int invocation = -1; ///< -1 = whole-application total
    RunMetrics metrics;
};

/**
 * Streams MetricsRow collections as CSV or JSON.
 *
 * @deprecated Thin shim over ExportSink, kept so existing callers and
 * artifact consumers keep working; new code should use
 * ExportSink::metricsTable() and write()/writeFile() directly. The
 * output bytes are unchanged: writeCsv() is write(os, Csv), and
 * writeJson() keeps the historical bare-array form.
 */
class MetricsExporter
{
  public:
    MetricsExporter() : sink_(ExportSink::metricsTable()) {}

    /** Append one row. */
    void
    add(MetricsRow row)
    {
        sink_.addMetrics(row.kernel, row.policy, row.invocation,
                         row.metrics);
    }

    /** Append all invocations (and the total) of a harness result. */
    void
    addResult(const std::string &kernel, const std::string &policy,
              const RunMetrics &total,
              const std::vector<RunMetrics> &invocations)
    {
        sink_.addResult(kernel, policy, total, invocations);
    }

    /** Column header order of the CSV form. */
    static const std::vector<std::string> &columns();

    /** Render all rows as CSV (header + one line per row). */
    void writeCsv(std::ostream &os) const
    {
        sink_.write(os, ExportFormat::Csv);
    }

    /** Render all rows as a JSON array of objects. */
    void writeJson(std::ostream &os) const { sink_.writeJsonArray(os); }

    std::size_t size() const { return sink_.rowCount(); }
    void clear() { sink_.clear(); }

  private:
    ExportSink sink_;
};

} // namespace equalizer

#endif // EQ_HARNESS_EXPORT_HH
