/**
 * @file
 * Machine-readable export of run metrics (CSV / JSON) for plotting the
 * figures outside the simulator.
 */

#ifndef EQ_HARNESS_EXPORT_HH
#define EQ_HARNESS_EXPORT_HH

#include <iostream>
#include <string>
#include <vector>

#include "gpu/metrics.hh"

namespace equalizer
{

/** One exported row: identity plus its measurements. */
struct MetricsRow
{
    std::string kernel;
    std::string policy;
    int invocation = -1; ///< -1 = whole-application total
    RunMetrics metrics;
};

/** Streams MetricsRow collections as CSV or JSON. */
class MetricsExporter
{
  public:
    /** Append one row. */
    void add(MetricsRow row) { rows_.push_back(std::move(row)); }

    /** Append all invocations (and the total) of a harness result. */
    void addResult(const std::string &kernel, const std::string &policy,
                   const RunMetrics &total,
                   const std::vector<RunMetrics> &invocations);

    /** Column header order of the CSV form. */
    static const std::vector<std::string> &columns();

    /** Render all rows as CSV (header + one line per row). */
    void writeCsv(std::ostream &os) const;

    /** Render all rows as a JSON array of objects. */
    void writeJson(std::ostream &os) const;

    std::size_t size() const { return rows_.size(); }
    void clear() { rows_.clear(); }

  private:
    static std::vector<std::string> values(const MetricsRow &row);

    std::vector<MetricsRow> rows_;
};

} // namespace equalizer

#endif // EQ_HARNESS_EXPORT_HH
