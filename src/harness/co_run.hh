/**
 * @file
 * Multi-tenant co-run harness: builds zoo kernels for several tenants,
 * drives GpuTop's tenant API and attributes the results per tenant
 * (docs/MULTI_TENANT.md).
 */

#ifndef EQ_HARNESS_CO_RUN_HH
#define EQ_HARNESS_CO_RUN_HH

#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "gpu/tenant.hh"

namespace equalizer
{

/** One tenant of a co-run, at the knob level. */
struct CoRunTenant
{
    std::string kernel; ///< zoo kernel name
    double smLimit = 1.0;
    std::string name; ///< tenant label; "" derives "t<i>"
};

/** Co-run options beyond the per-tenant specs. */
struct CoRunOptions
{
    PartitionPolicy partition = PartitionPolicy::RoundRobin;
    Cycle maxSmCycles = 2'000'000'000ULL;

    /**
     * Run every invocation of each tenant's application schedule
     * (queued launches, exercising mid-co-run relaunch) instead of
     * invocation 0 only.
     */
    bool allInvocations = false;
};

/** A finished co-run: combined device metrics plus per-tenant rows. */
struct CoRunResult
{
    RunMetrics combined;
    std::vector<TenantRunMetrics> tenants;
};

/**
 * Partition @p gpu across @p tenants, run every queued invocation to
 * completion and attribute the results. The GPU is returned to the
 * implicit single-tenant configuration afterwards.
 */
CoRunResult runCoRun(GpuTop &gpu, const std::vector<CoRunTenant> &tenants,
                     const CoRunOptions &opts = {});

/**
 * Parse and validate one sm_limit= knob entry. The token bucket pays
 * sm_limit x |SMs| tokens per cycle, so the boundary values need
 * explicit treatment at the knob level rather than silent misbehaviour
 * in the limiter: 0 would never dispatch a block (fatal with an
 * explanation), negatives are rejected, and shares above 1.0 are
 * clamped to 1.0 (= unlimited) with a warning.
 */
double parseSmLimitKnob(const std::string &text);

} // namespace equalizer

#endif // EQ_HARNESS_CO_RUN_HH
