/**
 * @file
 * Fixed-width table rendering for bench/example output.
 */

#ifndef EQ_HARNESS_REPORT_HH
#define EQ_HARNESS_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

namespace equalizer
{

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

/** Format a fraction as a percentage string ("12.3%"). */
std::string pct(double fraction, int precision = 1);

/**
 * A simple console table: set headers once, stream rows, print aligned.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Add one row; cell count must match the header count. */
    void row(std::vector<std::string> cells);

    /** Render to @p os with column alignment and a rule under headers. */
    void print(std::ostream &os = std::cout) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("== Figure 7: ... =="). */
void banner(const std::string &title, std::ostream &os = std::cout);

} // namespace equalizer

#endif // EQ_HARNESS_REPORT_HH
