#include "dyncta.hh"

#include "gpu/gpu_top.hh"

namespace equalizer
{

void
DynCta::onKernelLaunch(GpuTop &gpu)
{
    windows_.assign(static_cast<std::size_t>(gpu.numSms()), SmWindow{});
}

void
DynCta::onInvocationLaunch(GpuTop &, const KernelInvocation &inv)
{
    // A tenant's mid-co-run relaunch restarts only its own windows;
    // co-resident tenants keep their in-flight measurement.
    for (int i : inv.smSet())
        windows_[static_cast<std::size_t>(i)].reset();
}

void
DynCta::visitControllerState(StateVisitor &v, GpuTop &)
{
    v.beginSection("dyncta", 1);
    v.field(windows_);
    v.field(blockChanges_);
    v.endSection();
}

void
DynCta::onSmCycle(GpuTop &gpu)
{
    const int n = gpu.numSms();
    for (int i = 0; i < n; ++i) {
        auto &w = windows_[static_cast<std::size_t>(i)];
        const auto counts = gpu.sm(i).sampleStates();
        ++w.cycles;
        if (counts.active > 0) {
            if (counts.waiting * 2 > counts.active)
                ++w.memStallCycles;
            if (counts.issued == 0)
                ++w.idleCycles;
        }

        if (w.cycles < cfg_.windowCycles)
            continue;

        const double mem_frac = static_cast<double>(w.memStallCycles) /
                                static_cast<double>(w.cycles);
        const double idle_frac = static_cast<double>(w.idleCycles) /
                                 static_cast<double>(w.cycles);
        w.reset();

        auto &sm = gpu.sm(i);
        const int old_target = sm.targetBlocks();
        if (mem_frac > cfg_.memStallHigh) {
            if (sm.targetBlocks() > 1) {
                sm.setTargetBlocks(sm.targetBlocks() - 1);
                ++blockChanges_;
            }
        } else if (mem_frac < cfg_.memStallLow &&
                   idle_frac > cfg_.idleHigh) {
            if (sm.targetBlocks() < sm.blockSlotCount()) {
                sm.setTargetBlocks(sm.targetBlocks() + 1);
                ++blockChanges_;
            }
        }
        if (sm.targetBlocks() != old_target) {
            if (Tracer *tracer = gpu.tracer())
                tracer->emit(makeSmEvent(
                    TraceEventKind::BlockTarget,
                    gpu.smDomain().cycle(), i, sm.targetBlocks(),
                    old_target));
        }
    }
}

} // namespace equalizer
