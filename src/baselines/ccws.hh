/**
 * @file
 * CCWS (Rogers et al., MICRO 2012): cache-conscious wavefront scheduling,
 * reimplemented as a comparison baseline for Figure 10.
 *
 * Mechanism: a per-warp victim tag array (VTA) records lines a warp
 * loses from the L1. A miss that hits in the warp's own VTA is "lost
 * intra-warp locality" and raises the warp's locality score. Warps are
 * granted memory-issue rights in score order until the score budget is
 * exhausted; the rest are throttled, shrinking the effective footprint.
 */

#ifndef EQ_BASELINES_CCWS_HH
#define EQ_BASELINES_CCWS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/controller.hh"
#include "mem/tag_array.hh"

namespace equalizer
{

/** Tunables of the CCWS locality scoring system. */
struct CcwsConfig
{
    int vtaSets = 2;           ///< victim tag array sets per warp
    int vtaWays = 4;           ///< ... and ways (8 entries per warp)
    double baseScore = 32.0;   ///< per-warp baseline locality score
    double vtaHitGain = 48.0;  ///< score bump on detected lost locality
    /// Clamp (~budget/6: a hot warp cannot starve the SM).
    double maxScore = 256.0;
    double decayPerKilocycle = 20.0; ///< score decay rate toward base
    Cycle updateInterval = 32; ///< cycles between issue-set recomputes
    int minAllowedWarps = 1;
};

/** CCWS controller: throttles which warps may issue memory operations. */
class Ccws : public GpuController
{
  public:
    explicit Ccws(CcwsConfig cfg = CcwsConfig{}) : cfg_(cfg) {}

    std::string name() const override { return "ccws"; }

    void onKernelLaunch(GpuTop &gpu) override;
    void onInvocationLaunch(GpuTop &gpu,
                            const KernelInvocation &inv) override;
    void onSmCycle(GpuTop &gpu) override;
    void visitControllerState(StateVisitor &v, GpuTop &gpu) override;

    /** Lost-locality events detected so far (all SMs). */
    std::uint64_t lostLocalityEvents() const { return lostEvents_; }

    /** Currently allowed warps on one SM (testable). */
    int allowedWarps(int sm) const;

  private:
    struct SmState
    {
        std::vector<std::unique_ptr<TagArray>> vta; ///< per warp
        std::vector<double> score;
        std::vector<bool> allowed;
    };

    /** (Re)size the per-SM scoring state to the GPU's geometry. */
    void buildStates(GpuTop &gpu);

    /** Fresh scoring state sized to SM @p i's kernel geometry. */
    std::unique_ptr<SmState> buildSmState(GpuTop &gpu, int i) const;

    /**
     * Point the L1 eviction/miss hooks and the memory-issue filter of
     * every SM at our per-SM state. Hooks are never serialized; a
     * restore rebuilds them here.
     */
    void installHooks(GpuTop &gpu);

    /** installHooks for one SM (per-invocation rebinding). */
    void installHooksFor(GpuTop &gpu, int i);

    void recomputeAllowed(SmState &st);

    CcwsConfig cfg_;
    std::vector<std::unique_ptr<SmState>> sms_;
    /// Bumped from per-SM L1 miss hooks, which run on worker threads
    /// under parallel execution; the count is order-independent.
    std::atomic<std::uint64_t> lostEvents_{0};
};

} // namespace equalizer

#endif // EQ_BASELINES_CCWS_HH
