#include "ccws.hh"

#include <algorithm>
#include <numeric>

#include "gpu/gpu_top.hh"

namespace equalizer
{

std::unique_ptr<Ccws::SmState>
Ccws::buildSmState(GpuTop &gpu, int i) const
{
    auto st = std::make_unique<SmState>();
    auto &sm = gpu.sm(i);
    const int warps = sm.blockSlotCount() * sm.warpsPerBlock();
    for (int w = 0; w < warps; ++w)
        st->vta.push_back(
            std::make_unique<TagArray>(cfg_.vtaSets, cfg_.vtaWays));
    st->score.assign(static_cast<std::size_t>(warps), cfg_.baseScore);
    st->allowed.assign(static_cast<std::size_t>(warps), true);
    return st;
}

void
Ccws::buildStates(GpuTop &gpu)
{
    sms_.clear();
    for (int i = 0; i < gpu.numSms(); ++i)
        sms_.push_back(buildSmState(gpu, i));
}

void
Ccws::installHooksFor(GpuTop &gpu, int i)
{
    auto &sm = gpu.sm(i);
    SmState *raw = sms_[static_cast<std::size_t>(i)].get();

    // Evicted lines are remembered in the owner warp's VTA.
    sm.l1().setEvictionHook([raw](Addr line, int owner) {
        if (owner >= 0 && owner < static_cast<int>(raw->vta.size())) {
            raw->vta[static_cast<std::size_t>(owner)]->insert(line,
                                                              owner);
        }
    });

    // A miss hitting the warp's own VTA is lost intra-warp locality.
    sm.l1().setMissHook([this, raw](WarpId warp, Addr line) {
        if (warp < 0 || warp >= static_cast<int>(raw->vta.size()))
            return;
        auto &vta = *raw->vta[static_cast<std::size_t>(warp)];
        if (vta.lookup(line)) {
            vta.invalidate(line);
            auto &s = raw->score[static_cast<std::size_t>(warp)];
            s = std::min(cfg_.maxScore, s + cfg_.vtaHitGain);
            ++lostEvents_;
        }
    });

    sm.setMemIssueFilter([raw](WarpId warp) {
        return warp < static_cast<int>(raw->allowed.size()) &&
               raw->allowed[static_cast<std::size_t>(warp)];
    });
}

void
Ccws::installHooks(GpuTop &gpu)
{
    for (int i = 0; i < gpu.numSms(); ++i)
        installHooksFor(gpu, i);
}

void
Ccws::onKernelLaunch(GpuTop &gpu)
{
    buildStates(gpu);
    installHooks(gpu);
}

void
Ccws::onInvocationLaunch(GpuTop &gpu, const KernelInvocation &inv)
{
    // Scoring state is per-kernel (VTA geometry follows the kernel's
    // warp layout): a relaunch rebuilds only the invocation's SMs, so
    // co-resident tenants keep their scores and victim tags.
    for (int i : inv.smSet()) {
        sms_[static_cast<std::size_t>(i)] = buildSmState(gpu, i);
        installHooksFor(gpu, i);
    }
}

void
Ccws::visitControllerState(StateVisitor &v, GpuTop &gpu)
{
    v.beginSection("ccws", 1);
    if (!v.saving()) {
        // Rebuild the per-SM structures to the restored GPU's geometry
        // (and re-install the hooks, which are never serialized), then
        // overwrite their contents from the checkpoint.
        buildStates(gpu);
        installHooks(gpu);
    }
    std::uint64_t lost = lostEvents_.load();
    v.field(lost);
    if (!v.saving())
        lostEvents_.store(lost);
    const std::uint64_t n = sms_.size();
    v.expectMatch(n, "ccws per-SM state count");
    for (auto &st : sms_) {
        const std::uint64_t warps = st->vta.size();
        v.expectMatch(warps, "ccws per-warp VTA count");
        for (auto &vta : st->vta)
            vta->visitState(v);
        v.field(st->score);
        v.field(st->allowed);
    }
    v.endSection();
}

void
Ccws::recomputeAllowed(SmState &st)
{
    const std::size_t n = st.score.size();
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&st](int a, int b) {
        return st.score[static_cast<std::size_t>(a)] >
               st.score[static_cast<std::size_t>(b)];
    });

    // Warps claim budget in score order; high scorers crowd out the
    // tail, throttling exactly the warps with the least locality claim.
    const double budget = cfg_.baseScore * static_cast<double>(n);
    double used = 0.0;
    int granted = 0;
    std::fill(st.allowed.begin(), st.allowed.end(), false);
    for (int w : order) {
        const double s = st.score[static_cast<std::size_t>(w)];
        if (granted >= cfg_.minAllowedWarps && used + s > budget)
            break;
        st.allowed[static_cast<std::size_t>(w)] = true;
        used += s;
        ++granted;
    }
}

void
Ccws::onSmCycle(GpuTop &gpu)
{
    const Cycle c = gpu.smDomain().cycle();
    if (c % cfg_.updateInterval != 0)
        return;

    const double decay = cfg_.decayPerKilocycle *
                         static_cast<double>(cfg_.updateInterval) / 1000.0;
    for (int i = 0; i < gpu.numSms(); ++i) {
        auto &st = *sms_[static_cast<std::size_t>(i)];
        for (auto &s : st.score)
            s = std::max(cfg_.baseScore, s - decay);
        recomputeAllowed(st);
    }

    // Live metrics: how hard CCWS is throttling, device-wide.
    if (Tracer *tracer = gpu.tracer()) {
        int allowed = 0;
        for (int i = 0; i < gpu.numSms(); ++i)
            allowed += allowedWarps(i);
        tracer->gauges().set("ccws_allowed_warps",
                             static_cast<double>(allowed));
        tracer->gauges().set("ccws_lost_locality_events",
                             static_cast<double>(lostEvents_.load()));
    }
}

int
Ccws::allowedWarps(int sm) const
{
    const auto &st = *sms_[static_cast<std::size_t>(sm)];
    int n = 0;
    for (bool a : st.allowed)
        n += a ? 1 : 0;
    return n;
}

} // namespace equalizer
