/**
 * @file
 * DynCTA (Kayiran et al., PACT 2013): a stall-heuristic CTA controller,
 * reimplemented as a comparison baseline for Figure 10/11b.
 */

#ifndef EQ_BASELINES_DYNCTA_HH
#define EQ_BASELINES_DYNCTA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/controller.hh"

namespace equalizer
{

/** Tunables of the DynCTA heuristic. */
struct DynCtaConfig
{
    Cycle windowCycles = 1024;

    /**
     * Window fraction of memory-stall cycles (most warps waiting on
     * loads) above which the block count is decreased.
     */
    double memStallHigh = 0.5;

    /**
     * Window fraction of idle-issue cycles (nothing issued while work is
     * resident) below which — together with low memory stall — the block
     * count is increased.
     */
    double idleHigh = 0.2;

    double memStallLow = 0.3;
};

/**
 * DynCTA distinguishes idle stalls from memory-waiting stalls and nudges
 * the number of CTAs accordingly. Unlike Equalizer it has no notion of
 * pipe back-pressure (X_mem) versus plain latency waiting, which is what
 * costs it in the spmv phase change (paper Fig 11b).
 */
class DynCta : public GpuController
{
  public:
    explicit DynCta(DynCtaConfig cfg = DynCtaConfig{}) : cfg_(cfg) {}

    std::string name() const override { return "dyncta"; }

    void onKernelLaunch(GpuTop &gpu) override;
    void onInvocationLaunch(GpuTop &gpu,
                            const KernelInvocation &inv) override;
    void onSmCycle(GpuTop &gpu) override;
    void visitControllerState(StateVisitor &v, GpuTop &gpu) override;

    std::uint64_t blockChanges() const { return blockChanges_; }

  private:
    struct SmWindow
    {
        std::uint64_t memStallCycles = 0;
        std::uint64_t idleCycles = 0;
        std::uint64_t cycles = 0;

        void
        reset()
        {
            memStallCycles = 0;
            idleCycles = 0;
            cycles = 0;
        }
    };

    DynCtaConfig cfg_;
    std::vector<SmWindow> windows_;
    std::uint64_t blockChanges_ = 0;
};

} // namespace equalizer

#endif // EQ_BASELINES_DYNCTA_HH
