/**
 * @file
 * Fixed operating points: the static comparison bars of Figures 7 and 8
 * (SM high/low, memory high/low) and statically fixed block counts
 * (Figures 1e, 2a, 5).
 */

#ifndef EQ_BASELINES_STATIC_POLICY_HH
#define EQ_BASELINES_STATIC_POLICY_HH

#include <string>

#include "gpu/controller.hh"
#include "gpu/gpu_top.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** Applies fixed VF states and/or a fixed block target at launch. */
class StaticPolicy : public GpuController
{
  public:
    /**
     * @param name Report name ("sm-high", "mem-low", "blocks-2", ...).
     * @param sm_state SM-domain operating point.
     * @param mem_state Memory-domain operating point.
     * @param block_target Fixed concurrent blocks per SM; -1 = maximum.
     */
    StaticPolicy(std::string name, VfState sm_state, VfState mem_state,
                 int block_target = -1)
        : name_(std::move(name)), smState_(sm_state), memState_(mem_state),
          blockTarget_(block_target)
    {
    }

    std::string name() const override { return name_; }

    /** Acts only at launch: never blocks the cycle-skipping fast path. */
    Cycle
    nextActionCycle(const GpuTop &, Cycle) const override
    {
        return noWakeup;
    }

    void
    onKernelLaunch(GpuTop &gpu) override
    {
        gpu.requestVfState(PowerDomain::Sm, smState_);
        gpu.requestVfState(PowerDomain::Memory, memState_);
        if (blockTarget_ > 0)
            gpu.setAllTargetBlocks(blockTarget_);
    }

  private:
    std::string name_;
    VfState smState_;
    VfState memState_;
    int blockTarget_;
};

} // namespace equalizer

#endif // EQ_BASELINES_STATIC_POLICY_HH
