/**
 * @file
 * A persistent worker pool for deterministic per-SM parallel simulation.
 *
 * Each simulation slice, the GPU top-level dispatches one parallelFor()
 * over the SMs (the parallel phase), then runs the shared memory system,
 * controller hooks and stats aggregation serially on the calling thread
 * (the epoch barrier). Work is split into contiguous index chunks with a
 * static partition, so the assignment of items to workers is a pure
 * function of (n, thread count) — nothing about the schedule depends on
 * timing, which is one half of the determinism argument (the other half
 * is that parallel items share no mutable state; see docs/PARALLELISM.md).
 */

#ifndef EQ_SIM_PARALLEL_EXECUTOR_HH
#define EQ_SIM_PARALLEL_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace equalizer
{

/**
 * Fork-join executor with persistent threads.
 *
 * parallelFor(n, fn) runs fn(i) for every i in [0, n) across the pool
 * and returns when all calls have completed (the epoch barrier). The
 * calling thread participates as worker 0, so a pool of T threads uses
 * T-1 spawned workers. With threads() == 1 the loop runs inline and no
 * threads are ever spawned — the legacy serial path, kept as the oracle
 * the parallel path is validated against.
 *
 * parallelFor is not reentrant and must always be called from the same
 * (owning) thread.
 */
class ParallelExecutor
{
  public:
    /** @param threads Pool size; 0 selects hardwareThreads(). */
    explicit ParallelExecutor(int threads = 0);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Pool size including the calling thread. */
    int threads() const { return threads_; }

    /** Run fn(i) for i in [0, n); blocks until every call returns. */
    void parallelFor(int n, const std::function<void(int)> &fn);

    /** Epochs dispatched to the worker pool so far (test visibility). */
    std::uint64_t epochsDispatched() const { return epoch_.load(); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

    /** Chunk [begin, end) of worker @p w under the static partition. */
    static std::pair<int, int> chunkOf(int w, int threads, int n);

  private:
    void workerLoop(int worker);
    void runChunk(int worker, int n, const std::function<void(int)> &fn);

    int threads_;
    std::vector<std::thread> workers_;

    // Dispatch state: fn_/n_ are published by the epoch_ increment
    // (release) and read by workers after observing it (acquire).
    const std::function<void(int)> *fn_ = nullptr;
    int n_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> remaining_{0};
    std::atomic<bool> stop_{false};
    std::mutex mutex_;
    std::condition_variable wake_;
};

} // namespace equalizer

#endif // EQ_SIM_PARALLEL_EXECUTOR_HH
