/**
 * @file
 * Interleaving driver for the SM and memory clock domains.
 */

#ifndef EQ_SIM_TWO_DOMAIN_HH
#define EQ_SIM_TWO_DOMAIN_HH

#include "sim/clock_domain.hh"

namespace equalizer
{

/** Which domain an edge belongs to. */
enum class DomainKind
{
    Sm,
    Memory,
};

/**
 * Steps two clock domains in global-time order.
 *
 * Ties are broken in favor of the memory domain so that data returned by
 * the memory system in a given instant is visible to SMs ticking at the
 * same instant — a conventional producer-before-consumer ordering.
 */
class TwoDomainScheduler
{
  public:
    TwoDomainScheduler(ClockDomain &sm, ClockDomain &mem)
        : sm_(sm), mem_(mem)
    {
    }

    /** Peek which domain fires next without advancing it. */
    DomainKind
    nextKind() const
    {
        return mem_.nextEdge() <= sm_.nextEdge() ? DomainKind::Memory
                                                 : DomainKind::Sm;
    }

    /**
     * Advance the earliest-edge domain by one cycle.
     * @return Which domain ticked.
     */
    DomainKind
    step()
    {
        const DomainKind kind = nextKind();
        if (kind == DomainKind::Memory)
            mem_.advance();
        else
            sm_.advance();
        return kind;
    }

    /** Global simulated time = the later of the two domains' clocks. */
    Tick
    now() const
    {
        // Each domain's "now" is its last-fired edge; the global clock is
        // the minimum next edge (nothing before it can still happen).
        return mem_.nextEdge() <= sm_.nextEdge() ? mem_.nextEdge()
                                                 : sm_.nextEdge();
    }

  private:
    ClockDomain &sm_;
    ClockDomain &mem_;
};

} // namespace equalizer

#endif // EQ_SIM_TWO_DOMAIN_HH
