#include "state.hh"

#include <cstring>
#include <fstream>

#include "gpu/gpu_config.hh"
#include "power/energy_model.hh"

namespace equalizer
{

namespace
{

/** 8-byte magic opening every checkpoint. */
constexpr std::uint8_t checkpointMagic[8] = {'E', 'Q', 'Z', 'S',
                                             'N', 'A', 'P', '\0'};

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x00000100000001b3ull;

/** Incremental FNV-1a used for the configuration fingerprint. */
class FnvHasher
{
  public:
    void
    addBytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= b[i];
            hash_ *= fnvPrime;
        }
    }

    void
    add(std::uint64_t v)
    {
        addBytes(&v, sizeof(v));
    }

    void
    add(std::int64_t v)
    {
        add(static_cast<std::uint64_t>(v));
    }

    void
    add(int v)
    {
        add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    }

    void
    add(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = fnvOffset;
};

} // namespace

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t hash = fnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= data[i];
        hash *= fnvPrime;
    }
    return hash;
}

//
// BufferStateWriter
//

BufferStateWriter::BufferStateWriter(std::uint64_t config_fingerprint)
{
    raw(checkpointMagic, sizeof(checkpointMagic));
    putU32(checkpointFormatVersion);
    putU64(config_fingerprint);
}

void
BufferStateWriter::raw(const void *p, std::size_t n)
{
    if (n == 0)
        return;
    const std::size_t offset = buf_.size();
    buf_.resize(offset + n);
    std::memcpy(buf_.data() + offset, p, n);
}

void
BufferStateWriter::putU32(std::uint32_t v)
{
    raw(&v, sizeof(v));
}

void
BufferStateWriter::putU64(std::uint64_t v)
{
    raw(&v, sizeof(v));
}

void
BufferStateWriter::beginSection(const char *tag, std::uint32_t version)
{
    const std::size_t tag_len = std::strlen(tag);
    putU32(static_cast<std::uint32_t>(tag_len));
    raw(tag, tag_len);
    putU32(version);
    const std::size_t length_offset = buf_.size();
    putU64(0); // payload length, backpatched in endSection()
    frames_.push_back(
        Frame{std::string(tag), version, length_offset, buf_.size()});
}

void
BufferStateWriter::endSection()
{
    EQ_ASSERT(!frames_.empty(), "endSection() without beginSection()");
    const Frame frame = frames_.back();
    frames_.pop_back();
    const std::uint64_t payload_len = buf_.size() - frame.payloadStart;
    std::memcpy(buf_.data() + frame.lengthOffset, &payload_len,
                sizeof(payload_len));
    putU64(fnv1a(buf_.data() + frame.payloadStart,
                 static_cast<std::size_t>(payload_len)));
}

std::uint32_t
BufferStateWriter::sectionVersion() const
{
    EQ_ASSERT(!frames_.empty(), "sectionVersion() outside a section");
    return frames_.back().version;
}

void
BufferStateWriter::bytes(void *data, std::size_t n)
{
    raw(data, n);
}

std::vector<std::uint8_t>
BufferStateWriter::take()
{
    EQ_ASSERT(frames_.empty(), "checkpoint finalized with open sections");
    return std::move(buf_);
}

//
// BufferStateReader
//

BufferStateReader::BufferStateReader(std::vector<std::uint8_t> buf,
                                     std::uint64_t expected_fingerprint)
    : buf_(std::move(buf))
{
    need(sizeof(checkpointMagic));
    if (std::memcmp(buf_.data(), checkpointMagic,
                    sizeof(checkpointMagic)) != 0)
        fatal("not a checkpoint: bad magic");
    pos_ = sizeof(checkpointMagic);
    const std::uint32_t version = getU32();
    if (version != checkpointFormatVersion)
        fatal("checkpoint format version ", version,
              " unsupported (this build reads version ",
              checkpointFormatVersion, ")");
    fingerprint_ = getU64();
    if (fingerprint_ != expected_fingerprint)
        fatal("checkpoint was taken under a different configuration "
              "(fingerprint ", fingerprint_, ", live configuration ",
              expected_fingerprint, ")");
}

void
BufferStateReader::need(std::size_t n) const
{
    const std::size_t limit =
        frames_.empty() ? buf_.size() : frames_.back().payloadEnd;
    if (pos_ + n > limit)
        fatal("checkpoint truncated or corrupt: read of ", n,
              " bytes crosses a ",
              frames_.empty() ? "buffer" : "section", " boundary");
}

std::uint32_t
BufferStateReader::getU32()
{
    std::uint32_t v;
    need(sizeof(v));
    std::memcpy(&v, buf_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
}

std::uint64_t
BufferStateReader::getU64()
{
    std::uint64_t v;
    need(sizeof(v));
    std::memcpy(&v, buf_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
}

void
BufferStateReader::beginSection(const char *tag, std::uint32_t version)
{
    const std::uint32_t tag_len = getU32();
    need(tag_len);
    std::string stored(reinterpret_cast<const char *>(buf_.data() + pos_),
                       tag_len);
    pos_ += tag_len;
    if (stored != tag)
        fatal("checkpoint section mismatch: expected '", tag, "', found '",
              stored, "'");
    const std::uint32_t stored_version = getU32();
    if (stored_version > version)
        fatal("checkpoint section '", tag, "' has version ",
              stored_version, ", newer than this build supports (",
              version, ")");
    const std::uint64_t payload_len = getU64();
    const std::size_t payload_start = pos_;
    const std::size_t payload_end =
        payload_start + static_cast<std::size_t>(payload_len);
    const std::size_t limit =
        frames_.empty() ? buf_.size() : frames_.back().payloadEnd;
    if (payload_end + sizeof(std::uint64_t) > limit)
        fatal("checkpoint truncated inside section '", tag, "'");
    frames_.push_back(
        Frame{std::move(stored), stored_version, payload_start,
              payload_end});
}

void
BufferStateReader::endSection()
{
    EQ_ASSERT(!frames_.empty(), "endSection() without beginSection()");
    const Frame frame = frames_.back();
    frames_.pop_back();
    if (pos_ != frame.payloadEnd)
        fatal("checkpoint section '", frame.tag, "' has ",
              frame.payloadEnd - pos_, " unread bytes — layout mismatch");
    const std::uint64_t stored = getU64();
    const std::uint64_t computed =
        fnv1a(buf_.data() + frame.payloadStart,
              frame.payloadEnd - frame.payloadStart);
    if (stored != computed)
        fatal("checkpoint section '", frame.tag,
              "' failed its checksum — file corrupt");
}

std::uint32_t
BufferStateReader::sectionVersion() const
{
    EQ_ASSERT(!frames_.empty(), "sectionVersion() outside a section");
    return frames_.back().version;
}

void
BufferStateReader::skipRemainingSection()
{
    EQ_ASSERT(!frames_.empty(),
              "skipRemainingSection() outside a section");
    pos_ = frames_.back().payloadEnd;
}

void
BufferStateReader::bytes(void *data, std::size_t n)
{
    need(n);
    std::memcpy(data, buf_.data() + pos_, n);
    pos_ += n;
}

void
BufferStateReader::finish() const
{
    EQ_ASSERT(frames_.empty(), "finish() with open sections");
    if (pos_ != buf_.size())
        fatal("checkpoint has ", buf_.size() - pos_,
              " trailing bytes — layout mismatch");
}

//
// Configuration fingerprint
//

std::uint64_t
configFingerprint(const GpuConfig &gpu, const PowerConfig &power)
{
    FnvHasher h;
    h.add(gpu.numSms);
    h.add(gpu.maxBlocksPerSm);
    h.add(gpu.maxWarpsPerSm);
    h.add(gpu.issueWidth);
    h.add(gpu.aluDepLatency);
    h.add(gpu.sfuDepLatency);
    h.add(gpu.lsuQueueDepth);
    h.add(gpu.lsuThroughput);
    h.add(gpu.smemLatency);
    h.add(gpu.regReadPorts);
    h.add(gpu.smNominalHz);
    h.add(gpu.memNominalHz);
    h.add(static_cast<int>(gpu.scheduler));

    const MemConfig &m = gpu.mem;
    h.add(m.l1Sets);
    h.add(m.l1Ways);
    h.add(m.l1MshrEntries);
    h.add(m.l1MaxMerges);
    h.add(m.l1HitLatency);
    h.add(m.numPartitions);
    h.add(m.nocRequestLatency);
    h.add(m.nocResponseLatency);
    h.add(m.nocRequestBwPerCycle);
    h.add(m.nocResponseBwPerCycle);
    h.add(m.smInjectQueueCap);
    h.add(m.texInjectQueueCap);
    h.add(m.partitionInQueueCap);
    h.add(m.smResponseQueueCap);
    h.add(m.l2SetsPerPartition);
    h.add(m.l2Ways);
    h.add(m.l2HitLatency);
    h.add(m.dramQueueCap);
    h.add(m.banksPerPartition);
    h.add(m.linesPerRow);
    h.add(m.dramRowHitCycles);
    h.add(m.dramRowMissCycles);
    h.add(m.dramPowerDownIdleCycles);
    h.add(m.dramPowerUpCycles);

    for (double e : power.eventEnergy)
        h.add(e);
    h.add(power.smLeakageWatts);
    h.add(power.memLeakageWatts);
    h.add(power.dramStandbyWatts);
    h.add(power.dramStandbySlope);
    h.add(power.dramPowerDownFactor);
    return h.value();
}

//
// File I/O
//

void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open checkpoint file '", path, "' for writing");
    out.write(reinterpret_cast<const char *>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out)
        fatal("short write to checkpoint file '", path, "'");
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        fatal("cannot open checkpoint file '", path, "'");
    const std::streamsize size = in.tellg();
    in.seekg(0, std::ios::beg);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(buf.data()), size);
    if (!in)
        fatal("short read from checkpoint file '", path, "'");
    return buf;
}

} // namespace equalizer
