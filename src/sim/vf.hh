/**
 * @file
 * Voltage/frequency operating states shared by the clock, power and
 * Equalizer modules.
 *
 * The paper uses three discrete steps per domain: nominal, and +/-15% in
 * both frequency and voltage (linear V-with-f scaling, Section V-A1).
 */

#ifndef EQ_SIM_VF_HH
#define EQ_SIM_VF_HH

#include <array>
#include <string>

namespace equalizer
{

/** Discrete voltage/frequency operating point of one clock domain. */
enum class VfState
{
    Low,    ///< -15% frequency and voltage
    Normal, ///< nominal operating point
    High,   ///< +15% frequency and voltage
};

/** Number of VfState values. */
inline constexpr int numVfStates = 3;

/** Relative frequency/voltage modulation step (paper: 15%). */
inline constexpr double vfStepFraction = 0.15;

/** Frequency multiplier for a state relative to nominal. */
constexpr double
frequencyScale(VfState s)
{
    switch (s) {
      case VfState::Low:
        return 1.0 - vfStepFraction;
      case VfState::High:
        return 1.0 + vfStepFraction;
      case VfState::Normal:
      default:
        return 1.0;
    }
}

/**
 * Voltage multiplier for a state relative to nominal. The paper assumes a
 * linear change in voltage for any change in frequency [24].
 */
constexpr double
voltageScale(VfState s)
{
    return frequencyScale(s);
}

/** One step toward higher frequency; saturates at High. */
constexpr VfState
stepUp(VfState s)
{
    return s == VfState::Low ? VfState::Normal : VfState::High;
}

/** One step toward lower frequency; saturates at Low. */
constexpr VfState
stepDown(VfState s)
{
    return s == VfState::High ? VfState::Normal : VfState::Low;
}

/** Human-readable state name. */
inline const char *
vfStateName(VfState s)
{
    switch (s) {
      case VfState::Low:
        return "low";
      case VfState::High:
        return "high";
      case VfState::Normal:
      default:
        return "normal";
    }
}

/** Direction of a requested frequency change. */
enum class VfRequest
{
    Decrease,
    Maintain,
    Increase,
};

inline const char *
vfRequestName(VfRequest r)
{
    switch (r) {
      case VfRequest::Decrease:
        return "decrease";
      case VfRequest::Increase:
        return "increase";
      case VfRequest::Maintain:
      default:
        return "maintain";
    }
}

} // namespace equalizer

#endif // EQ_SIM_VF_HH
