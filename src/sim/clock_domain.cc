#include "clock_domain.hh"

#include "common/log.hh"

namespace equalizer
{

ClockDomain::ClockDomain(std::string name, double nominal_hz, VfState start)
    : name_(std::move(name)), nominalHz_(nominal_hz), state_(start)
{
    EQ_ASSERT(nominal_hz > 0.0, "clock domain '", name_,
              "' needs a positive frequency");
    for (int i = 0; i < numVfStates; ++i) {
        auto s = static_cast<VfState>(i);
        periods_[i] = periodFromHz(nominalHz_ * frequencyScale(s));
    }
}

void
ClockDomain::scheduleState(VfState target, Tick effective_at)
{
    if (target == state_ && !pending_) {
        return;
    }
    pending_ = Pending{target, effective_at};
}

Tick
ClockDomain::advance()
{
    const Tick edge = nextEdge_;

    // Residency accrues at the state that was in force during the elapsed
    // interval [now_, edge).
    residency_[index(state_)] += edge - now_;
    now_ = edge;

    if (pending_ && pending_->at <= edge) {
        state_ = pending_->target;
        pending_.reset();
    }

    ++cycle_;
    nextEdge_ = edge + period();
    return edge;
}

void
ClockDomain::advanceCycles(Cycle n)
{
    if (n == 0)
        return;
    // n advance() calls with a constant period and state telescope into
    // one residency update. A pending transition inside the span would
    // change the period mid-way; the caller (GpuTop::tryFastForward)
    // bounds the span at pendingAt(), so it can only fall after the
    // last skipped edge.
    const Tick last_edge = nextEdge_ + (n - 1) * period();
    EQ_ASSERT(!pending_ || pending_->at > last_edge,
              "advanceCycles span on domain '", name_,
              "' crosses a pending VF transition");
    residency_[index(state_)] += last_edge - now_;
    now_ = last_edge;
    cycle_ += n;
    nextEdge_ = last_edge + period();
}

Tick
ClockDomain::totalTime() const
{
    Tick total = 0;
    for (auto r : residency_)
        total += r;
    return total;
}

void
ClockDomain::resetStats()
{
    cycle_ = 0;
    residency_.fill(0);
}

void
ClockDomain::visitState(StateVisitor &v)
{
    v.beginSection("clk", 1);
    v.expectMatch(name_, "clock domain name");
    v.expectMatch(nominalHz_, "clock domain nominal frequency");
    v.field(state_);
    v.field(pending_);
    v.field(now_);
    v.field(nextEdge_);
    v.field(cycle_);
    v.field(residency_);
    v.endSection();
}

} // namespace equalizer
