/**
 * @file
 * A runtime-retunable clock domain with VF-state residency tracking.
 */

#ifndef EQ_SIM_CLOCK_DOMAIN_HH
#define EQ_SIM_CLOCK_DOMAIN_HH

#include <array>
#include <optional>
#include <string>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/state.hh"
#include "sim/vf.hh"

namespace equalizer
{

/**
 * One clock domain (the SM domain or the memory-system domain).
 *
 * The domain advances in discrete edges. The period is derived from the
 * nominal frequency and the current VfState. State changes are scheduled
 * with a delay (the VRM transition latency) and take effect on the first
 * edge at or after the scheduled tick, so a change never splits a cycle.
 *
 * Residency time per VfState is tracked for the Figure 9 experiment and
 * for leakage-energy integration.
 */
class ClockDomain
{
  public:
    /**
     * @param name Domain name for stats ("sm" or "mem").
     * @param nominal_hz Frequency at VfState::Normal.
     * @param start State at time zero.
     */
    ClockDomain(std::string name, double nominal_hz,
                VfState start = VfState::Normal);

    /** Name given at construction. */
    const std::string &name() const { return name_; }

    /** Current operating state. */
    VfState state() const { return state_; }

    /** Current frequency in Hz. */
    double frequencyHz() const
    {
        return nominalHz_ * frequencyScale(state_);
    }

    /** Current supply voltage relative to nominal (unitless). */
    double relativeVoltage() const { return voltageScale(state_); }

    /** Clock period at the current state, in ticks. */
    Tick period() const { return periods_[index(state_)]; }

    /** Tick at which the next edge fires. */
    Tick nextEdge() const { return nextEdge_; }

    /** Cycles elapsed in this domain since construction. */
    Cycle cycle() const { return cycle_; }

    /**
     * Schedule a transition to @p target, effective no earlier than
     * @p effective_at. A later request replaces a pending one.
     */
    void scheduleState(VfState target, Tick effective_at);

    /** True if a scheduled state change has not yet been applied. */
    bool transitionPending() const { return pending_.has_value(); }

    /**
     * Fire the edge at nextEdge(): account residency, apply any due
     * pending state, bump the cycle count and compute the next edge.
     *
     * @return The tick of the edge that fired.
     */
    Tick advance();

    /**
     * Fire the next @p n edges at once — bit-identical to n advance()
     * calls, provided no pending transition falls due within the span
     * (asserted). The fast path uses this to jump over verified-idle
     * stretches; residency integrates over the whole span so static
     * energy is unaffected (docs/FAST_PATH.md).
     */
    void advanceCycles(Cycle n);

    /** Tick at which the pending transition may apply (must be pending). */
    Tick pendingAt() const
    {
        EQ_ASSERT(pending_.has_value(), "pendingAt() without a pending "
                                        "transition on domain '",
                  name_, "'");
        return pending_->at;
    }

    /** Total simulated time this domain has spent in @p s, in ticks. */
    Tick residency(VfState s) const { return residency_[index(s)]; }

    /** Sum of residencies = total advanced time. */
    Tick totalTime() const;

    /** Reset cycle/residency accounting; keeps frequency state. */
    void resetStats();

    /**
     * Serialize the dynamic state (current VfState, pending transition,
     * time, cycle count, residency). Name and nominal frequency are
     * configuration and only validated, never overwritten.
     */
    void visitState(StateVisitor &v);

  private:
    static int index(VfState s) { return static_cast<int>(s); }

    std::string name_;
    double nominalHz_;
    std::array<Tick, numVfStates> periods_;

    VfState state_;
    struct Pending
    {
        VfState target;
        Tick at;
    };
    std::optional<Pending> pending_;

    Tick now_ = 0;      ///< time of the most recent edge
    Tick nextEdge_ = 0; ///< the first edge fires at t=0
    Cycle cycle_ = 0;
    std::array<Tick, numVfStates> residency_{};
};

} // namespace equalizer

#endif // EQ_SIM_CLOCK_DOMAIN_HH
