#include "parallel_executor.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

int
ParallelExecutor::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::pair<int, int>
ParallelExecutor::chunkOf(int w, int threads, int n)
{
    // Contiguous static split: worker w owns [w*n/T, (w+1)*n/T). The
    // partition depends only on (w, threads, n), never on timing.
    const auto lo = static_cast<int>(
        static_cast<std::int64_t>(w) * n / threads);
    const auto hi = static_cast<int>(
        static_cast<std::int64_t>(w + 1) * n / threads);
    return {lo, hi};
}

ParallelExecutor::ParallelExecutor(int threads)
    : threads_(threads == 0 ? hardwareThreads() : std::max(1, threads))
{
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ParallelExecutor::runChunk(int worker, int n,
                           const std::function<void(int)> &fn)
{
    const auto [lo, hi] = chunkOf(worker, threads_, n);
    for (int i = lo; i < hi; ++i)
        fn(i);
}

void
ParallelExecutor::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_.load(std::memory_order_relaxed) ||
                       epoch_.load(std::memory_order_acquire) != seen;
            });
            if (stop_.load(std::memory_order_relaxed))
                return;
            seen = epoch_.load(std::memory_order_acquire);
        }
        runChunk(worker, n_, *fn_);
        remaining_.fetch_sub(1, std::memory_order_release);
    }
}

void
ParallelExecutor::parallelFor(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (threads_ == 1 || n == 1) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    EQ_ASSERT(remaining_.load(std::memory_order_relaxed) == 0,
              "parallelFor is not reentrant");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        n_ = n;
        remaining_.store(threads_ - 1, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_all();

    runChunk(0, n, fn); // the caller is worker 0

    // Epoch barrier: spin briefly (workers usually finish within the
    // cost of a context switch), then yield so oversubscribed or
    // single-core hosts make progress instead of burning the quantum.
    int spins = 0;
    while (remaining_.load(std::memory_order_acquire) != 0) {
        if (++spins > 256)
            std::this_thread::yield();
    }
    fn_ = nullptr;
}

} // namespace equalizer
