/**
 * @file
 * The StateVisitor serialization interface.
 *
 * Every stateful component implements visitState(StateVisitor &), naming
 * its members through the same code path for saving and loading (the
 * gem5 SERIALIZE / boost-archive idiom). Two visitors exist: a buffer
 * writer and a buffer reader. The buffer carries a small header (magic,
 * format version, configuration fingerprint) followed by flat sections,
 * each framed as
 *
 *   u32 tag-length | tag | u32 section-version | u64 payload-length |
 *   payload bytes  | u64 FNV-1a checksum of the payload
 *
 * Sections may nest; an inner section's frame is part of the outer
 * payload. Any mismatch on load (tag, version, length, checksum,
 * fingerprint) raises fatal(): a checkpoint is only restorable into a
 * simulator built with the same configuration (docs/SNAPSHOT.md).
 */

#ifndef EQ_SIM_STATE_HH
#define EQ_SIM_STATE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace equalizer
{

struct GpuConfig;
struct PowerConfig;

/**
 * Version of the checkpoint container format (header + section framing).
 * Bump ONLY when the framing itself changes; per-section layout changes
 * bump the section's own version instead (see docs/SNAPSHOT.md for the
 * bump policy).
 */
inline constexpr std::uint32_t checkpointFormatVersion = 1;

class StateVisitor;

namespace detail
{

/** Detects a member `void visitState(StateVisitor &)`. */
template <typename T, typename = void>
struct HasVisitState : std::false_type
{
};

template <typename T>
struct HasVisitState<T,
                     std::void_t<decltype(std::declval<T &>().visitState(
                         std::declval<StateVisitor &>()))>>
    : std::true_type
{
};

} // namespace detail

/**
 * Direction-agnostic serialization visitor.
 *
 * Components call field(member) for every piece of architectural state;
 * the same statements write on save and overwrite on load, so the two
 * directions cannot drift apart.
 */
class StateVisitor
{
  public:
    virtual ~StateVisitor() = default;

    /** True when writing a checkpoint, false when restoring one. */
    virtual bool saving() const = 0;

    /** Open a framed section. On load the tag must match exactly. */
    virtual void beginSection(const char *tag, std::uint32_t version) = 0;

    /** Close the innermost section (verifies length and checksum). */
    virtual void endSection() = 0;

    /**
     * Version of the innermost open section: the code's version when
     * saving, the stored version when loading (for future migrations).
     */
    virtual std::uint32_t sectionVersion() const = 0;

    /**
     * Loading only: discard the unread remainder of the innermost
     * section (used to drop state of a component the restored instance
     * does not have, e.g. a different controller). No-op when saving.
     */
    virtual void skipRemainingSection() = 0;

    /** Raw fixed-size payload — the primitive everything reduces to. */
    virtual void bytes(void *data, std::size_t n) = 0;

    /**
     * Serialize one member. Types providing visitState() recurse;
     * anything else must be trivially copyable and moves as raw bytes.
     */
    template <typename T>
    void
    field(T &v)
    {
        if constexpr (detail::HasVisitState<T>::value) {
            v.visitState(*this);
        } else {
            static_assert(std::is_trivially_copyable_v<T>,
                          "type needs a visitState() or an overload");
            bytes(&v, sizeof(T));
        }
    }

    void
    field(std::string &s)
    {
        std::uint64_t n = s.size();
        field(n);
        if (!saving())
            s.resize(static_cast<std::size_t>(n));
        if (n > 0)
            bytes(s.data(), s.size());
    }

    template <typename T>
    void
    field(std::vector<T> &vec)
    {
        std::uint64_t n = vec.size();
        field(n);
        if (!saving())
            vec.resize(static_cast<std::size_t>(n));
        if constexpr (std::is_trivially_copyable_v<T>) {
            if (!vec.empty())
                bytes(vec.data(), vec.size() * sizeof(T));
        } else {
            for (auto &e : vec)
                field(e);
        }
    }

    void
    field(std::vector<bool> &vec)
    {
        std::uint64_t n = vec.size();
        field(n);
        if (!saving())
            vec.assign(static_cast<std::size_t>(n), false);
        for (std::size_t i = 0; i < vec.size(); ++i) {
            std::uint8_t b = vec[i] ? 1 : 0;
            field(b);
            if (!saving())
                vec[i] = b != 0;
        }
    }

    template <typename T>
    void
    field(std::deque<T> &q)
    {
        std::uint64_t n = q.size();
        field(n);
        if (!saving())
            q.resize(static_cast<std::size_t>(n));
        for (auto &e : q)
            field(e);
    }

    template <typename T>
    void
    field(std::optional<T> &o)
    {
        std::uint8_t has = o.has_value() ? 1 : 0;
        field(has);
        if (!saving()) {
            if (has && !o.has_value())
                o.emplace();
            else if (!has)
                o.reset();
        }
        if (o.has_value())
            field(*o);
    }

    /** std::map with string keys (canonical: maps iterate sorted). */
    template <typename V>
    void
    field(std::map<std::string, V> &m)
    {
        std::uint64_t n = m.size();
        field(n);
        if (saving()) {
            for (auto &[key, value] : m) {
                std::string k = key;
                field(k);
                field(value);
            }
        } else {
            m.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string k;
                field(k);
                V value{};
                field(value);
                m.emplace(std::move(k), std::move(value));
            }
        }
    }

    /**
     * Round-trip a configuration-derived value and fatal() on load when
     * the stored value differs from the live one — the per-component
     * compatibility check backing the header fingerprint.
     */
    template <typename T>
    void
    expectMatch(const T &live, const char *what)
    {
        T v = live;
        field(v);
        if (!saving() && !(v == live))
            fatal("checkpoint incompatible with this configuration: ",
                  what, " differs");
    }
};

/** StateVisitor that appends to an in-memory buffer. */
class BufferStateWriter : public StateVisitor
{
  public:
    /** @param config_fingerprint Hash of the live configuration. */
    explicit BufferStateWriter(std::uint64_t config_fingerprint);

    bool saving() const override { return true; }
    void beginSection(const char *tag, std::uint32_t version) override;
    void endSection() override;
    std::uint32_t sectionVersion() const override;
    void skipRemainingSection() override {}
    void bytes(void *data, std::size_t n) override;

    /** Finalize (all sections must be closed) and yield the buffer. */
    std::vector<std::uint8_t> take();

  private:
    struct Frame
    {
        std::string tag;
        std::uint32_t version;
        std::size_t lengthOffset; ///< where the u64 payload length lives
        std::size_t payloadStart;
    };

    void raw(const void *p, std::size_t n);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);

    std::vector<std::uint8_t> buf_;
    std::vector<Frame> frames_;
};

/** StateVisitor that consumes a buffer written by BufferStateWriter. */
class BufferStateReader : public StateVisitor
{
  public:
    /**
     * Parses and validates the header.
     *
     * @param buf The checkpoint bytes.
     * @param expected_fingerprint Fingerprint of the live configuration;
     *        fatal() when it differs from the stored one.
     */
    BufferStateReader(std::vector<std::uint8_t> buf,
                      std::uint64_t expected_fingerprint);

    bool saving() const override { return false; }
    void beginSection(const char *tag, std::uint32_t version) override;
    void endSection() override;
    std::uint32_t sectionVersion() const override;
    void skipRemainingSection() override;
    void bytes(void *data, std::size_t n) override;

    /** Fingerprint stored in the checkpoint header. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Verify that every byte of the buffer was consumed. */
    void finish() const;

  private:
    struct Frame
    {
        std::string tag;
        std::uint32_t version;
        std::size_t payloadStart;
        std::size_t payloadEnd;
    };

    void need(std::size_t n) const;
    std::uint32_t getU32();
    std::uint64_t getU64();

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::vector<Frame> frames_;
};

/** FNV-1a over a byte range (the per-section checksum). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t n);

/**
 * Order-sensitive hash of every configuration field that affects the
 * simulated machine's structure. Stored in the checkpoint header and
 * compared on load: restoring into a differently-configured GpuTop is a
 * user error.
 */
std::uint64_t configFingerprint(const GpuConfig &gpu,
                                const PowerConfig &power);

/** Write a checkpoint buffer to a file; fatal() on I/O failure. */
void writeCheckpointFile(const std::string &path,
                         const std::vector<std::uint8_t> &buf);

/** Read a whole checkpoint file; fatal() on I/O failure. */
std::vector<std::uint8_t> readCheckpointFile(const std::string &path);

} // namespace equalizer

#endif // EQ_SIM_STATE_HH
