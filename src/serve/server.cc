#include "serve/server.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "gpu/gpu_top.hh"
#include "gpu/scheduler_core.hh"
#include "kernels/kernel_zoo.hh"
#include "trace/tracer.hh"

namespace equalizer
{

const char *
toString(ServePolicy policy)
{
    switch (policy) {
      case ServePolicy::Fcfs:
        return "fcfs";
      case ServePolicy::Sjf:
        return "sjf";
      case ServePolicy::Edf:
        return "edf";
      case ServePolicy::Llf:
        return "llf";
      case ServePolicy::Preempt:
        return "preempt";
    }
    return "unknown";
}

ServePolicy
servePolicyFromString(const std::string &name)
{
    if (name == "fcfs")
        return ServePolicy::Fcfs;
    if (name == "sjf")
        return ServePolicy::Sjf;
    if (name == "edf")
        return ServePolicy::Edf;
    if (name == "llf")
        return ServePolicy::Llf;
    if (name == "preempt")
        return ServePolicy::Preempt;
    fatal("unknown serve policy '", name,
          "' (fcfs, sjf, edf, llf, preempt)");
}

const char *
toString(AdmissionPolicy policy)
{
    switch (policy) {
      case AdmissionPolicy::None:
        return "none";
      case AdmissionPolicy::Predictive:
        return "predictive";
    }
    return "unknown";
}

AdmissionPolicy
admissionPolicyFromString(const std::string &name)
{
    if (name == "none")
        return AdmissionPolicy::None;
    if (name == "predictive")
        return AdmissionPolicy::Predictive;
    fatal("unknown admission policy '", name, "' (none, predictive)");
}

KernelParams
scaleKernelParams(KernelParams params, double scale)
{
    if (scale <= 0.0)
        fatal("scaleKernelParams: scale must be positive, got ", scale);
    if (scale < 1.0) {
        params.totalBlocks = std::max(
            1, static_cast<int>(params.totalBlocks * scale + 0.5));
        params.instrsPerWarp = std::max(
            32, static_cast<int>(params.instrsPerWarp * scale + 0.5));
    }
    // Serving requests are single launches at ANY scale: drop the
    // application's invocation schedule so one request = one grid,
    // and keep the long-block count inside the (possibly shrunk)
    // grid. An early return at scale >= 1 used to skip both and leak
    // the whole multi-invocation schedule into a "single" request.
    params.invocations.clear();
    params.longBlocks = std::min(params.longBlocks, params.totalBlocks);
    return params;
}

RequestServer::RequestServer(GpuTop &gpu, ServeOptions opts)
    : RequestServer(std::vector<GpuTop *>{&gpu}, opts)
{
}

RequestServer::RequestServer(std::vector<GpuTop *> gpus, ServeOptions opts)
    : gpus_(std::move(gpus)), opts_(opts),
      predictor_(gpus_.empty() ? 1 : gpus_.front()->numSms())
{
    if (gpus_.empty())
        fatal("RequestServer: need at least one device");
    if (opts_.quantumCycles == 0)
        fatal("RequestServer: quantum must be positive");
    for (std::size_t i = 0; i < gpus_.size(); ++i) {
        GpuTop *gpu = gpus_[i];
        if (gpu == nullptr)
            fatal("RequestServer: device ", i, " is null");
        if (gpu->midKernel())
            fatal("RequestServer: device ", i,
                  " already has a run in flight");
        if (gpu->numTenants() > 1)
            fatal("RequestServer: device ", i,
                  " is partitioned into tenants; serving drives whole "
                  "devices");
        if (gpu->numSms() != gpus_.front()->numSms())
            fatal("RequestServer: devices must be identically sized "
                  "(device ",
                  i, " has ", gpu->numSms(), " SMs, device 0 has ",
                  gpus_.front()->numSms(), ")");
        for (std::size_t j = 0; j < i; ++j)
            if (gpus_[j] == gpu)
                fatal("RequestServer: device ", i, " repeats device ",
                      j);
    }
}

const KernelParams &
RequestServer::paramsFor(const std::string &kernel)
{
    auto it = params_.find(kernel);
    if (it == params_.end())
        it = params_
                 .emplace(kernel,
                          scaleKernelParams(KernelZoo::byName(kernel).params,
                                            opts_.kernelScale))
                 .first;
    return it->second;
}

const KernelLaunch &
RequestServer::launchFor(const std::string &kernel)
{
    auto it = kernels_.find(kernel);
    if (it == kernels_.end())
        it = kernels_
                 .emplace(kernel, std::make_unique<SyntheticKernel>(
                                      paramsFor(kernel), 0))
                 .first;
    return *it->second;
}

/**
 * Queue position to dispatch next at wall clock @p now. The queue is
 * kept in admission order (ascending record index — dispatch erases
 * and eviction re-inserts by rank), so "first match wins" makes every
 * tie-break deterministic: fcfs picks the head outright, sjf the
 * earliest-admitted shortest prediction, edf the earliest-admitted
 * earliest deadline, llf the earliest-admitted least laxity, preempt
 * the earliest-admitted highest priority.
 */
std::size_t
RequestServer::pickNext(const std::vector<RequestRecord> &records,
                        const std::vector<int> &queue, Cycle now)
{
    EQ_ASSERT(!queue.empty(), "pickNext on an empty queue");
    switch (opts_.policy) {
      case ServePolicy::Fcfs:
        return 0;
      case ServePolicy::Sjf: {
        std::size_t best = 0;
        Cycle best_rem = noWakeup;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const RequestRecord &r =
                records[static_cast<std::size_t>(queue[i])];
            const Cycle rem = predictor_.remaining(
                paramsFor(r.req.kernel), r.executedCycles);
            if (rem < best_rem) {
                best_rem = rem;
                best = i;
            }
        }
        return best;
      }
      case ServePolicy::Edf: {
        std::size_t best = 0;
        Cycle best_dl = noWakeup;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Cycle dl = records[static_cast<std::size_t>(queue[i])]
                                 .req.deadlineCycle();
            if (dl < best_dl) {
                best_dl = dl;
                best = i;
            }
        }
        return best;
      }
      case ServePolicy::Llf: {
        std::size_t best = 0;
        std::int64_t best_lax = std::numeric_limits<std::int64_t>::max();
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const std::int64_t lax = laxityOf(
                records[static_cast<std::size_t>(queue[i])], now);
            if (lax < best_lax) {
                best_lax = lax;
                best = i;
            }
        }
        return best;
      }
      case ServePolicy::Preempt: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i)
            if (records[static_cast<std::size_t>(queue[i])].req.priority >
                records[static_cast<std::size_t>(queue[best])]
                    .req.priority)
                best = i;
        return best;
      }
    }
    return 0;
}

/**
 * Slack before @p rec busts its deadline if dispatched at @p now:
 * deadline minus (now + predicted remaining service). Negative =
 * already predicted late. Deadline-free requests report infinite
 * laxity so every deadline-carrying request outranks them.
 */
std::int64_t
RequestServer::laxityOf(const RequestRecord &rec, Cycle now)
{
    if (rec.req.sloCycles == 0)
        return std::numeric_limits<std::int64_t>::max();
    const Cycle rem = predictor_.remaining(paramsFor(rec.req.kernel),
                                           rec.executedCycles);
    return static_cast<std::int64_t>(rec.req.deadlineCycle()) -
           static_cast<std::int64_t>(now + rem);
}

/**
 * Predictor gate on priority eviction: shelving only pays when the
 * victim's predicted remaining service exceeds the challenger's plus
 * the modeled save+restore round trip — a near-finished victim is
 * cheaper to let run out than to bounce through a checkpoint.
 */
bool
RequestServer::evictionPays(const RequestRecord &running,
                            const RequestRecord &challenger)
{
    const Cycle victim_rem = predictor_.remaining(
        paramsFor(running.req.kernel), running.executedCycles);
    const Cycle challenger_rem = predictor_.remaining(
        paramsFor(challenger.req.kernel), challenger.executedCycles);
    return victim_rem > challenger_rem + opts_.preemptSaveCycles +
                            opts_.preemptRestoreCycles;
}

ServeReport
RequestServer::serve(const std::vector<ServeRequest> &requests)
{
    // One lane per device. A lane's wall clock is the serving time its
    // device has been simulated up to; the lane with the smallest wall
    // is always stepped next, so that wall doubles as the global "now"
    // of every admission and dispatch decision.
    struct Lane
    {
        GpuTop *gpu = nullptr;
        std::unique_ptr<SchedulerCore> core;
        Cycle wall = 0;
        Cycle lastComplete = 0;
        Cycle executed = 0;
        int running = -1;    // index into records
        int completed = 0;
        int preemptions = 0;
        bool parked = false; // idle and no work can ever reach it
    };

    std::vector<RequestRecord> records;
    for (const auto &r : requests) {
        RequestRecord rec;
        rec.req = r;
        records.push_back(std::move(rec));
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.req.arrivalCycle < b.req.arrivalCycle;
                     });

    std::vector<Lane> lanes(gpus_.size());
    for (std::size_t i = 0; i < gpus_.size(); ++i) {
        lanes[i].gpu = gpus_[i];
        lanes[i].core = std::make_unique<SchedulerCore>(*gpus_[i]);
    }

    std::map<int, std::vector<std::uint8_t>> shelves;
    std::vector<int> queue; // record indices, kept in admission order
    std::size_t next_arrival = 0;
    wall_ = 0;
    completed_ = 0;
    rejected_ = 0;
    preemptions_ = 0;

    const auto setGauges = [&] {
        Tracer *tracer = lanes[0].gpu->tracer();
        if (!tracer || !tracer->attached())
            return;
        auto &g = tracer->gauges();
        g.set("serve.queue_depth", static_cast<double>(queue.size()));
        const auto runId = [&](const Lane &lane) {
            return lane.running < 0
                       ? -1.0
                       : static_cast<double>(
                             records[static_cast<std::size_t>(
                                         lane.running)]
                                 .req.id);
        };
        g.set("serve.running_request", runId(lanes[0]));
        g.set("serve.completed", static_cast<double>(completed_));
        g.set("serve.preemptions", static_cast<double>(preemptions_));
        g.set("serve.rejected", static_cast<double>(rejected_));
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            const std::string p = "serve.dev" + std::to_string(k);
            g.set(p + ".running_request", runId(lanes[k]));
            g.set(p + ".completed",
                  static_cast<double>(lanes[k].completed));
            g.set(p + ".wall", static_cast<double>(lanes[k].wall));
        }
    };

    // Predicted wait a fresh arrival faces: the remaining service of
    // everything running or queued ahead of it, spread evenly across
    // the devices. Crude, but cheap, deterministic and online.
    const auto backlogShare = [&]() -> Cycle {
        Cycle backlog = 0;
        for (const auto &lane : lanes) {
            if (lane.running < 0)
                continue;
            const RequestRecord &r =
                records[static_cast<std::size_t>(lane.running)];
            backlog += predictor_.remaining(paramsFor(r.req.kernel),
                                            r.executedCycles);
        }
        for (int idx : queue) {
            const RequestRecord &r =
                records[static_cast<std::size_t>(idx)];
            backlog += predictor_.remaining(paramsFor(r.req.kernel),
                                            r.executedCycles);
        }
        return backlog / static_cast<Cycle>(lanes.size());
    };

    const auto admitUpTo = [&](Cycle now) {
        while (next_arrival < records.size() &&
               records[next_arrival].req.arrivalCycle <= now) {
            RequestRecord &rec = records[next_arrival];
            const int idx = static_cast<int>(next_arrival++);
            if (opts_.admission == AdmissionPolicy::Predictive &&
                rec.req.sloCycles > 0) {
                const Cycle service =
                    predictor_.predict(paramsFor(rec.req.kernel));
                if (now + backlogShare() + service >
                    rec.req.deadlineCycle()) {
                    rec.rejected = true;
                    ++rejected_;
                    continue;
                }
            }
            queue.push_back(idx);
        }
    };

    const auto dispatch = [&](std::size_t li, std::size_t pos) {
        Lane &lane = lanes[li];
        const int idx = queue[pos];
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
        RequestRecord &rec = records[static_cast<std::size_t>(idx)];
        const KernelLaunch &launch = launchFor(rec.req.kernel);
        auto shelf = shelves.find(rec.req.id);
        if (shelf != shelves.end()) {
            // Shelves restore on any lane: the devices are forked
            // clones with identical config fingerprints.
            lane.gpu->loadStateBuffer(shelf->second);
            shelves.erase(shelf);
            lane.core->adoptResumedKernel(launch);
            lane.wall += opts_.preemptRestoreCycles;
        } else {
            lane.core->launchKernel(launch, opts_.maxKernelCycles);
            rec.startCycle = lane.wall;
        }
        rec.device = static_cast<int>(li);
        lane.running = idx;
    };

    const int total = static_cast<int>(records.size());
    while (completed_ + rejected_ < total) {
        std::size_t li = lanes.size();
        for (std::size_t k = 0; k < lanes.size(); ++k) {
            if (lanes[k].parked)
                continue;
            if (li == lanes.size() || lanes[k].wall < lanes[li].wall)
                li = k;
        }
        if (li == lanes.size())
            fatal("RequestServer: all devices parked with ",
                  completed_ + rejected_, "/", total,
                  " requests settled");
        Lane &lane = lanes[li];
        if (lane.wall > opts_.maxWallCycles)
            fatal("RequestServer: wall clock passed ",
                  opts_.maxWallCycles, " cycles with ", completed_, "/",
                  total, " requests done; likely a deadlock");
        admitUpTo(lane.wall);
        if (lane.running < 0) {
            if (queue.empty()) {
                if (next_arrival >= records.size()) {
                    // Nothing queued, nothing left to arrive: this
                    // lane can never see work again (an eviction needs
                    // a queued challenger, so the queue cannot refill
                    // from here). Retire it from the pick.
                    lane.parked = true;
                    continue;
                }
                // Idle: jump this lane's wall to the next arrival.
                lane.wall = records[next_arrival].req.arrivalCycle;
                admitUpTo(lane.wall);
                if (queue.empty())
                    continue; // the whole batch was rejected
            }
            dispatch(li, pickNext(records, queue, lane.wall));
            continue;
        }
        if (opts_.policy == ServePolicy::Preempt && !queue.empty()) {
            const std::size_t cand =
                pickNext(records, queue, lane.wall);
            RequestRecord &run =
                records[static_cast<std::size_t>(lane.running)];
            const RequestRecord &ch =
                records[static_cast<std::size_t>(queue[cand])];
            if (ch.req.priority > run.req.priority &&
                evictionPays(run, ch)) {
                shelves[run.req.id] = lane.gpu->saveStateBuffer();
                lane.wall += opts_.preemptSaveCycles;
                ++run.preemptions;
                ++preemptions_;
                ++lane.preemptions;
                // Re-insert at its admission rank (the queue is kept
                // sorted by record index): tacking the victim onto the
                // tail made an evicted early request lose every later
                // tie-break to younger arrivals.
                queue.insert(std::lower_bound(queue.begin(),
                                              queue.end(),
                                              lane.running),
                             lane.running);
                lane.running = -1;
                continue;
            }
        }

        RequestRecord &rec =
            records[static_cast<std::size_t>(lane.running)];
        setGauges();
        const Cycle before = lane.gpu->smDomain().cycle();
        const StepStatus status = lane.core->step(opts_.quantumCycles);
        const Cycle advanced = lane.gpu->smDomain().cycle() - before;
        lane.wall += advanced;
        lane.executed += advanced;
        rec.executedCycles += advanced;
        if (status == StepStatus::Drained) {
            const RunMetrics m = lane.core->finish();
            rec.instructions = m.instructions;
            rec.completed = true;
            rec.completeCycle = lane.wall;
            rec.latencyCycles = lane.wall - rec.req.arrivalCycle;
            rec.sloViolated = rec.req.sloCycles > 0 &&
                              rec.latencyCycles > rec.req.sloCycles;
            predictor_.observe(paramsFor(rec.req.kernel),
                               rec.executedCycles);
            ++completed_;
            ++lane.completed;
            lane.lastComplete = lane.wall;
            lane.running = -1;
        }
    }
    setGauges();

    // Report in request-id order, independent of completion order.
    std::stable_sort(records.begin(), records.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.req.id < b.req.id;
                     });

    // The serving wall clock of the whole run is the time of the last
    // completion anywhere — idle jumps past the final arrival on a
    // lane that then parks do not count as served time.
    wall_ = 0;
    for (const auto &lane : lanes)
        wall_ = std::max(wall_, lane.lastComplete);

    ServeReport report;
    report.summary.policy = toString(opts_.policy);
    report.summary.admission = toString(opts_.admission);
    report.summary.devices = static_cast<int>(lanes.size());
    report.summary.requests = total;
    report.summary.completed = completed_;
    report.summary.rejected = rejected_;
    report.summary.preemptions = preemptions_;
    report.summary.wallCycles = wall_;
    std::vector<Cycle> latencies;
    double latency_sum = 0.0;
    for (const auto &rec : records) {
        report.summary.executedCycles += rec.executedCycles;
        if (!rec.completed)
            continue;
        latencies.push_back(rec.latencyCycles);
        latency_sum += static_cast<double>(rec.latencyCycles);
        report.summary.maxLatency =
            std::max(report.summary.maxLatency, rec.latencyCycles);
        if (rec.sloViolated)
            ++report.summary.sloViolations;
    }
    report.summary.p50Latency = latencyPercentile(latencies, 50.0);
    report.summary.p95Latency = latencyPercentile(latencies, 95.0);
    report.summary.p99Latency = latencyPercentile(latencies, 99.0);
    if (!latencies.empty()) {
        report.summary.meanLatency =
            latency_sum / static_cast<double>(latencies.size());
        report.summary.sloViolationRate =
            static_cast<double>(report.summary.sloViolations) /
            static_cast<double>(latencies.size());
    }
    if (total > 0)
        report.summary.rejectionRate =
            static_cast<double>(rejected_) / static_cast<double>(total);
    if (wall_ > 0)
        report.summary.throughputPerMcycle =
            static_cast<double>(completed_) * 1e6 /
            static_cast<double>(wall_);
    for (std::size_t k = 0; k < lanes.size(); ++k) {
        ServeDeviceStats stats;
        stats.device = static_cast<int>(k);
        stats.completed = lanes[k].completed;
        stats.preemptions = lanes[k].preemptions;
        stats.executedCycles = lanes[k].executed;
        stats.wallCycles = lanes[k].lastComplete;
        report.deviceStats.push_back(stats);
    }
    report.records = std::move(records);
    return report;
}

} // namespace equalizer
