#include "serve/server.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/gpu_top.hh"
#include "gpu/scheduler_core.hh"
#include "kernels/kernel_zoo.hh"
#include "trace/tracer.hh"

namespace equalizer
{

const char *
toString(ServePolicy policy)
{
    switch (policy) {
      case ServePolicy::Fcfs:
        return "fcfs";
      case ServePolicy::Sjf:
        return "sjf";
      case ServePolicy::Preempt:
        return "preempt";
    }
    return "unknown";
}

ServePolicy
servePolicyFromString(const std::string &name)
{
    if (name == "fcfs")
        return ServePolicy::Fcfs;
    if (name == "sjf")
        return ServePolicy::Sjf;
    if (name == "preempt")
        return ServePolicy::Preempt;
    fatal("unknown serve policy '", name, "' (fcfs, sjf, preempt)");
}

KernelParams
scaleKernelParams(KernelParams params, double scale)
{
    if (scale >= 1.0)
        return params;
    if (scale <= 0.0)
        fatal("scaleKernelParams: scale must be positive, got ", scale);
    params.totalBlocks = std::max(
        1, static_cast<int>(params.totalBlocks * scale + 0.5));
    params.instrsPerWarp = std::max(
        32, static_cast<int>(params.instrsPerWarp * scale + 0.5));
    // Serving requests are single launches; drop the application's
    // invocation schedule so one request = one grid.
    params.invocations.clear();
    params.longBlocks = std::min(params.longBlocks, params.totalBlocks);
    return params;
}

RequestServer::RequestServer(GpuTop &gpu, ServeOptions opts)
    : gpu_(gpu), opts_(opts), predictor_(gpu.numSms())
{
    if (gpu_.midKernel())
        fatal("RequestServer: the device already has a run in flight");
    if (gpu_.numTenants() > 1)
        fatal("RequestServer: the device is partitioned into tenants; "
              "serving drives the whole device");
    if (opts_.quantumCycles == 0)
        fatal("RequestServer: quantum must be positive");
}

const KernelParams &
RequestServer::paramsFor(const std::string &kernel)
{
    auto it = params_.find(kernel);
    if (it == params_.end())
        it = params_
                 .emplace(kernel,
                          scaleKernelParams(KernelZoo::byName(kernel).params,
                                            opts_.kernelScale))
                 .first;
    return it->second;
}

const KernelLaunch &
RequestServer::launchFor(const std::string &kernel)
{
    auto it = kernels_.find(kernel);
    if (it == kernels_.end())
        it = kernels_
                 .emplace(kernel, std::make_unique<SyntheticKernel>(
                                      paramsFor(kernel), 0))
                 .first;
    return *it->second;
}

/**
 * Queue position to dispatch next. The queue is kept in admission
 * order, so "first match wins" makes every tie-break deterministic:
 * fcfs picks the head outright, sjf the earliest-admitted shortest
 * prediction, preempt the earliest-admitted highest priority.
 */
std::size_t
RequestServer::pickNext(const std::vector<RequestRecord> &records,
                        const std::vector<int> &queue)
{
    EQ_ASSERT(!queue.empty(), "pickNext on an empty queue");
    switch (opts_.policy) {
      case ServePolicy::Fcfs:
        return 0;
      case ServePolicy::Sjf: {
        std::size_t best = 0;
        Cycle best_rem = noWakeup;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const RequestRecord &r =
                records[static_cast<std::size_t>(queue[i])];
            const Cycle pred =
                predictor_.predict(paramsFor(r.req.kernel));
            const Cycle rem =
                pred > r.executedCycles ? pred - r.executedCycles : 0;
            if (rem < best_rem) {
                best_rem = rem;
                best = i;
            }
        }
        return best;
      }
      case ServePolicy::Preempt: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i)
            if (records[static_cast<std::size_t>(queue[i])].req.priority >
                records[static_cast<std::size_t>(queue[best])]
                    .req.priority)
                best = i;
        return best;
      }
    }
    return 0;
}

void
RequestServer::setGauges(std::size_t queued, int running_id)
{
    Tracer *tracer = gpu_.tracer();
    if (!tracer || !tracer->attached())
        return;
    auto &g = tracer->gauges();
    g.set("serve.queue_depth", static_cast<double>(queued));
    g.set("serve.running_request", static_cast<double>(running_id));
    g.set("serve.completed", static_cast<double>(completed_));
    g.set("serve.preemptions", static_cast<double>(preemptions_));
}

ServeReport
RequestServer::serve(const std::vector<ServeRequest> &requests)
{
    std::vector<RequestRecord> records;
    for (const auto &r : requests) {
        RequestRecord rec;
        rec.req = r;
        records.push_back(std::move(rec));
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.req.arrivalCycle < b.req.arrivalCycle;
                     });

    SchedulerCore core(gpu_);
    std::map<int, std::vector<std::uint8_t>> shelves;
    std::vector<int> queue; // indices into records, admission order
    std::size_t next_arrival = 0;
    int running = -1; // index into records
    wall_ = 0;
    completed_ = 0;
    preemptions_ = 0;

    const auto admit = [&] {
        while (next_arrival < records.size() &&
               records[next_arrival].req.arrivalCycle <= wall_)
            queue.push_back(static_cast<int>(next_arrival++));
    };

    const auto dispatch = [&](std::size_t pos) {
        const int idx = queue[pos];
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
        RequestRecord &rec = records[static_cast<std::size_t>(idx)];
        const KernelLaunch &launch = launchFor(rec.req.kernel);
        auto shelf = shelves.find(rec.req.id);
        if (shelf != shelves.end()) {
            gpu_.loadStateBuffer(shelf->second);
            shelves.erase(shelf);
            core.adoptResumedKernel(launch);
            wall_ += opts_.preemptRestoreCycles;
        } else {
            core.launchKernel(launch, opts_.maxKernelCycles);
            rec.startCycle = wall_;
        }
        running = idx;
    };

    while (completed_ < static_cast<int>(records.size())) {
        if (wall_ > opts_.maxWallCycles)
            fatal("RequestServer: wall clock passed ", opts_.maxWallCycles,
                  " cycles with ", completed_, "/", records.size(),
                  " requests done; likely a deadlock");
        admit();
        if (running < 0) {
            if (queue.empty()) {
                // Idle: jump the wall clock to the next arrival.
                wall_ = records[next_arrival].req.arrivalCycle;
                admit();
            }
            dispatch(pickNext(records, queue));
            continue;
        }
        if (opts_.policy == ServePolicy::Preempt && !queue.empty()) {
            const std::size_t cand = pickNext(records, queue);
            RequestRecord &run = records[static_cast<std::size_t>(running)];
            if (records[static_cast<std::size_t>(queue[cand])]
                    .req.priority > run.req.priority) {
                shelves[run.req.id] = gpu_.saveStateBuffer();
                wall_ += opts_.preemptSaveCycles;
                ++run.preemptions;
                ++preemptions_;
                queue.push_back(running);
                running = -1;
                continue;
            }
        }

        RequestRecord &rec = records[static_cast<std::size_t>(running)];
        setGauges(queue.size(), rec.req.id);
        const Cycle before = gpu_.smDomain().cycle();
        const StepStatus status = core.step(opts_.quantumCycles);
        const Cycle advanced = gpu_.smDomain().cycle() - before;
        wall_ += advanced;
        rec.executedCycles += advanced;
        if (status == StepStatus::Drained) {
            const RunMetrics m = core.finish();
            rec.instructions = m.instructions;
            rec.completed = true;
            rec.completeCycle = wall_;
            rec.latencyCycles = wall_ - rec.req.arrivalCycle;
            rec.sloViolated = rec.req.sloCycles > 0 &&
                              rec.latencyCycles > rec.req.sloCycles;
            predictor_.observe(paramsFor(rec.req.kernel),
                               rec.executedCycles);
            ++completed_;
            running = -1;
        }
    }
    setGauges(queue.size(), -1);

    // Report in request-id order, independent of completion order.
    std::stable_sort(records.begin(), records.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.req.id < b.req.id;
                     });

    ServeReport report;
    report.summary.policy = toString(opts_.policy);
    report.summary.requests = static_cast<int>(records.size());
    report.summary.completed = completed_;
    report.summary.preemptions = preemptions_;
    report.summary.wallCycles = wall_;
    std::vector<Cycle> latencies;
    double latency_sum = 0.0;
    for (const auto &rec : records) {
        report.summary.executedCycles += rec.executedCycles;
        if (!rec.completed)
            continue;
        latencies.push_back(rec.latencyCycles);
        latency_sum += static_cast<double>(rec.latencyCycles);
        report.summary.maxLatency =
            std::max(report.summary.maxLatency, rec.latencyCycles);
        if (rec.sloViolated)
            ++report.summary.sloViolations;
    }
    report.summary.p50Latency = latencyPercentile(latencies, 50.0);
    report.summary.p95Latency = latencyPercentile(latencies, 95.0);
    report.summary.p99Latency = latencyPercentile(latencies, 99.0);
    if (!latencies.empty()) {
        report.summary.meanLatency =
            latency_sum / static_cast<double>(latencies.size());
        report.summary.sloViolationRate =
            static_cast<double>(report.summary.sloViolations) /
            static_cast<double>(latencies.size());
    }
    if (wall_ > 0)
        report.summary.throughputPerMcycle =
            static_cast<double>(completed_) * 1e6 /
            static_cast<double>(wall_);
    report.records = std::move(records);
    return report;
}

} // namespace equalizer
