/**
 * @file
 * Request-level types of the serving frontend (docs/SERVING.md): a
 * kernel-launch request with an arrival time, priority and deadline,
 * and its lifetime record as the dispatcher runs it.
 *
 * All serving time is measured on the server's wall clock, in SM
 * cycles: the accumulated SM cycles the device actually executed plus
 * the modeled preemption save/restore costs. The device's own clock
 * is NOT usable as a wall clock — restoring a preempted request's
 * checkpoint rewinds it.
 */

#ifndef EQ_SERVE_REQUEST_HH
#define EQ_SERVE_REQUEST_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace equalizer
{

/** One kernel-launch request entering the admission queue. */
struct ServeRequest
{
    int id = 0;              ///< dense index, assigned at generation
    std::string kernel;      ///< kernel zoo name
    int priority = 0;        ///< larger = more urgent (preempt policy)
    Cycle arrivalCycle = 0;  ///< wall-clock arrival
    Cycle sloCycles = 0;     ///< latency deadline; 0 = none

    /**
     * Absolute deadline on the wall clock (arrival + SLO); noWakeup
     * when the request carries no deadline, so deadline comparisons
     * order deadline-free requests last.
     */
    Cycle
    deadlineCycle() const
    {
        return sloCycles == 0 ? noWakeup : arrivalCycle + sloCycles;
    }
};

/** What happened to one request, filled in as the server runs it. */
struct RequestRecord
{
    ServeRequest req;
    bool completed = false;
    bool sloViolated = false;
    bool rejected = false;      ///< refused by admission control
    int preemptions = 0;        ///< times evicted to a shelf buffer
    int device = -1;            ///< device it (last) dispatched on
    Cycle startCycle = 0;       ///< wall clock at first dispatch
    Cycle completeCycle = 0;    ///< wall clock at completion
    Cycle latencyCycles = 0;    ///< completeCycle - arrivalCycle
    Cycle executedCycles = 0;   ///< device SM cycles spent on it
    std::uint64_t instructions = 0;
};

/**
 * Nearest-rank percentile (inclusive, @p pct in [0, 100]) of a latency
 * sample; 0 when the sample is empty. Sorts a copy — fine at serving
 * request counts.
 */
inline Cycle
latencyPercentile(std::vector<Cycle> sample, double pct)
{
    if (sample.empty())
        return 0;
    std::sort(sample.begin(), sample.end());
    const double rank = pct / 100.0 * static_cast<double>(sample.size());
    std::size_t idx = static_cast<std::size_t>(rank);
    if (static_cast<double>(idx) < rank)
        ++idx; // ceil
    if (idx > 0)
        --idx; // 1-based rank -> 0-based index
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

} // namespace equalizer

#endif // EQ_SERVE_REQUEST_HH
