/**
 * @file
 * Online structural runtime predictor for the SJF dispatcher, in the
 * spirit of Pai et al. (arXiv:1406.6037): a static structural prior —
 * how many occupancy-limited waves the grid needs times the work per
 * wave — refined online by a per-kernel EWMA of observed-over-prior
 * ratios. No oracle: the first prediction for a kernel is the prior,
 * and every completion tightens it.
 */

#ifndef EQ_SERVE_PREDICTOR_HH
#define EQ_SERVE_PREDICTOR_HH

#include <map>
#include <string>

#include "common/types.hh"
#include "kernels/kernel_params.hh"

namespace equalizer
{

/**
 * Remaining predicted service once @p executed cycles have already
 * run; saturates at 0 when the prediction has been overtaken (the
 * request is "past due" on the predictor's books but still running).
 */
inline Cycle
predictedRemaining(Cycle predicted, Cycle executed)
{
    return predicted > executed ? predicted - executed : 0;
}

class RuntimePredictor
{
  public:
    explicit RuntimePredictor(int num_sms, double alpha = 0.4)
        : numSms_(num_sms), alpha_(alpha)
    {
    }

    /**
     * Structural prior in SM cycles: waves(grid, occupancy) x warps
     * per block x instructions per warp x a nominal CPI. Deliberately
     * crude — the EWMA ratio absorbs the constant factors.
     */
    Cycle prior(const KernelParams &params) const;

    /** prior() scaled by the kernel's learned ratio (1.0 if unseen). */
    Cycle predict(const KernelParams &params) const;

    /** predict() minus @p executed_cycles, saturating at 0. */
    Cycle
    remaining(const KernelParams &params, Cycle executed_cycles) const
    {
        return predictedRemaining(predict(params), executed_cycles);
    }

    /** Fold one observed completion into the kernel's ratio. */
    void observe(const KernelParams &params, Cycle executed_cycles);

    /** Learned observed/prior ratio (1.0 if unseen). */
    double ratio(const std::string &kernel) const;

  private:
    int numSms_;
    double alpha_;
    // Ordered map: iteration (and thus any diagnostic dump) is
    // deterministic.
    std::map<std::string, double> ratios_;
};

} // namespace equalizer

#endif // EQ_SERVE_PREDICTOR_HH
