/**
 * @file
 * Open-loop arrival processes for the serving frontend: a Poisson
 * generator (deterministic splitmix64 stream, so a fixed seed gives a
 * byte-identical request schedule on every host and threads= setting)
 * and a plain-text trace format for replaying a committed schedule.
 */

#ifndef EQ_SERVE_ARRIVAL_HH
#define EQ_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace equalizer
{

/** How request arrivals are produced. */
enum class ArrivalKind
{
    Poisson, ///< open-loop Poisson process over a kernel mix
    Replay,  ///< replay a request trace file verbatim
};

const char *toString(ArrivalKind kind);

/** Parse "poisson" / "replay"; fatal() on anything else. */
ArrivalKind arrivalKindFromString(const std::string &name);

/** One kernel of the Poisson mix (picked uniformly per request). */
struct ArrivalMix
{
    std::string kernel;
    int priority = 0;
};

/** Everything that defines an arrival schedule. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    int count = 32;              ///< requests to generate (Poisson)
    double ratePerMcycle = 20.0; ///< mean arrivals per 1e6 wall cycles
    std::uint64_t seed = 1;
    std::vector<ArrivalMix> mix; ///< Poisson kernel mix (non-empty)
    Cycle sloCycles = 0;         ///< deadline stamped on every request
    std::string replayPath;      ///< trace file (Replay)
};

/**
 * Produce the request schedule for @p spec, sorted by arrival with ids
 * dense in arrival order. Pure function of the spec.
 */
std::vector<ServeRequest> generateArrivals(const ArrivalSpec &spec);

/**
 * Read a request trace: '#' comment lines, then one request per line
 * as "arrival_cycle kernel priority slo_cycles". fatal() on parse
 * errors.
 */
std::vector<ServeRequest> readRequestTrace(const std::string &path);

/** Write @p requests in the readRequestTrace() format. */
void writeRequestTrace(const std::string &path,
                       const std::vector<ServeRequest> &requests);

} // namespace equalizer

#endif // EQ_SERVE_ARRIVAL_HH
