#include "serve/predictor.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

Cycle
RuntimePredictor::prior(const KernelParams &params) const
{
    const int resident = std::max(1, numSms_ * params.maxBlocksPerSm);
    const int waves =
        (params.totalBlocks + resident - 1) / std::max(1, resident);
    // Nominal CPI of 2: issue plus an average stall share. The exact
    // constant washes out through the EWMA ratio; it only anchors the
    // first, unseen prediction at the right order of magnitude.
    const double per_wave = static_cast<double>(params.warpsPerBlock) *
                            static_cast<double>(params.instrsPerWarp) *
                            2.0;
    double cycles = static_cast<double>(waves) * per_wave;
    // Load imbalance is structural too: a long block's warp chain is a
    // serial critical path no amount of occupancy hides, so the prior
    // must be at least that long or the predictor systematically
    // undershoots imbalanced kernels until their first completion.
    if (params.longBlocks > 0 && params.longBlockFactor > 1.0) {
        const double critical =
            static_cast<double>(params.warpsPerBlock) *
            static_cast<double>(params.instrsPerWarp) *
            params.longBlockFactor * 2.0;
        cycles = std::max(cycles, critical);
    }
    return static_cast<Cycle>(cycles);
}

Cycle
RuntimePredictor::predict(const KernelParams &params) const
{
    return static_cast<Cycle>(static_cast<double>(prior(params)) *
                              ratio(params.name));
}

void
RuntimePredictor::observe(const KernelParams &params, Cycle executed_cycles)
{
    const Cycle p = prior(params);
    if (p == 0)
        return;
    const double observed = static_cast<double>(executed_cycles) /
                            static_cast<double>(p);
    auto it = ratios_.find(params.name);
    if (it == ratios_.end())
        ratios_.emplace(params.name, observed);
    else
        it->second = alpha_ * observed + (1.0 - alpha_) * it->second;
}

double
RuntimePredictor::ratio(const std::string &kernel) const
{
    auto it = ratios_.find(kernel);
    return it == ratios_.end() ? 1.0 : it->second;
}

} // namespace equalizer
