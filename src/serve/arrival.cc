#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace equalizer
{

namespace
{

/** splitmix64: tiny, seedable, identical everywhere. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform in (0, 1]: never 0, so -log() below is finite. */
double
u01(std::uint64_t &state)
{
    return (static_cast<double>(nextRand(state) >> 11) + 1.0) * 0x1.0p-53;
}

} // namespace

const char *
toString(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Replay:
        return "replay";
    }
    return "unknown";
}

ArrivalKind
arrivalKindFromString(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "replay")
        return ArrivalKind::Replay;
    fatal("unknown arrival kind '", name, "' (poisson, replay)");
}

std::vector<ServeRequest>
generateArrivals(const ArrivalSpec &spec)
{
    if (spec.kind == ArrivalKind::Replay)
        return readRequestTrace(spec.replayPath);

    if (spec.mix.empty())
        fatal("generateArrivals: empty kernel mix");
    if (spec.ratePerMcycle <= 0.0)
        fatal("generateArrivals: rate must be positive, got ",
              spec.ratePerMcycle);

    std::uint64_t state = spec.seed;
    std::vector<ServeRequest> out;
    Cycle wall = 0;
    for (int i = 0; i < spec.count; ++i) {
        // Exponential inter-arrival gap, floored at one cycle so the
        // schedule is strictly ordered.
        const double gap_cycles =
            -std::log(u01(state)) * 1e6 / spec.ratePerMcycle;
        wall += std::max<Cycle>(1, static_cast<Cycle>(std::llround(
                                       std::min(gap_cycles, 1e15))));
        const auto &mix =
            spec.mix[static_cast<std::size_t>(nextRand(state) %
                                              spec.mix.size())];
        ServeRequest r;
        r.id = i;
        r.kernel = mix.kernel;
        r.priority = mix.priority;
        r.arrivalCycle = wall;
        r.sloCycles = spec.sloCycles;
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<ServeRequest>
readRequestTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open request trace '", path, "'");
    std::vector<ServeRequest> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        ServeRequest r;
        std::uint64_t arrival = 0;
        std::uint64_t slo = 0;
        if (!(is >> arrival >> r.kernel >> r.priority >> slo))
            fatal("request trace '", path, "' line ", lineno,
                  ": expected 'arrival_cycle kernel priority "
                  "slo_cycles', got '",
                  line, "'");
        r.id = static_cast<int>(out.size());
        r.arrivalCycle = arrival;
        r.sloCycles = slo;
        out.push_back(std::move(r));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrivalCycle < b.arrivalCycle;
                     });
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].id = static_cast<int>(i);
    return out;
}

void
writeRequestTrace(const std::string &path,
                  const std::vector<ServeRequest> &requests)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write request trace '", path, "'");
    os << "# arrival_cycle kernel priority slo_cycles\n";
    for (const auto &r : requests)
        os << r.arrivalCycle << ' ' << r.kernel << ' ' << r.priority
           << ' ' << r.sloCycles << '\n';
}

} // namespace equalizer
