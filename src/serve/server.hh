/**
 * @file
 * The request server (docs/SERVING.md): an admission queue over one or
 * more simulated GPUs, advanced in bounded quanta through
 * SchedulerCore::step(), with five dispatch policies:
 *
 *  - fcfs:    run-to-completion in arrival order;
 *  - sjf:     shortest-predicted-remaining first (non-preemptive),
 *             runtimes from the online structural RuntimePredictor;
 *  - edf:     earliest absolute deadline (arrival + SLO) first,
 *             non-preemptive; deadline-free requests go last;
 *  - llf:     least laxity first (deadline minus wall minus predicted
 *             remaining service), non-preemptive — a long request with
 *             a loose deadline can still be more urgent than a short
 *             one with a tight deadline;
 *  - preempt: priority-preemptive — a higher-priority arrival evicts
 *             the running request to a checkpoint shelf
 *             (saveStateBuffer) and the victim later resumes from it
 *             (loadStateBuffer + adoptResumedKernel), charged a
 *             modeled save/restore cost on the wall clock. Eviction is
 *             predictor-gated: a higher priority alone does not evict
 *             unless the victim's predicted remaining service exceeds
 *             the challenger's predicted service plus the modeled
 *             save+restore cost, so near-finished victims run out.
 *
 * Admission control (admission=predictive) rejects a request at
 * admission time when its predicted completion — current backlog
 * spread across devices plus its own predicted service — already
 * busts its SLO. Rejected requests are counted and reported in every
 * export; they are never silently dropped.
 *
 * Multi-device serving shards one admission queue across N devices
 * (forked warm clones of one GpuTop): each device runs its own
 * SchedulerCore, and the dispatch pick is deterministic — the lowest
 * predicted-free device, index tie-break.
 *
 * Determinism: the device simulation is bit-identical at any threads=
 * setting, arrivals are a pure function of the spec, and every
 * dispatch decision is serial arithmetic over those quantities — so a
 * whole serve() run (per-request records, percentiles, trace bytes)
 * is byte-identical across thread counts for a fixed seed, at any
 * device count.
 */

#ifndef EQ_SERVE_SERVER_HH
#define EQ_SERVE_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/synthetic_kernel.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"

namespace equalizer
{

class GpuTop;

/** Dispatcher policy of the serving frontend. */
enum class ServePolicy
{
    Fcfs,    ///< first-come, first-served, run to completion
    Sjf,     ///< shortest predicted remaining time, non-preemptive
    Edf,     ///< earliest absolute deadline, non-preemptive
    Llf,     ///< least laxity (deadline - wall - predicted remaining)
    Preempt, ///< priority-preemptive via checkpoint shelves
};

const char *toString(ServePolicy policy);

/** Parse "fcfs" / "sjf" / "edf" / "llf" / "preempt"; fatal() else. */
ServePolicy servePolicyFromString(const std::string &name);

/** Admission-control policy of the serving frontend. */
enum class AdmissionPolicy
{
    None,       ///< admit everything
    Predictive, ///< reject when predicted completion busts the SLO
};

const char *toString(AdmissionPolicy policy);

/** Parse "none" / "predictive"; fatal() on anything else. */
AdmissionPolicy admissionPolicyFromString(const std::string &name);

/** Serving-loop knobs (see docs/SERVING.md for the cost model). */
struct ServeOptions
{
    ServePolicy policy = ServePolicy::Fcfs;

    /** Reject-at-admission policy (docs/SERVING.md). */
    AdmissionPolicy admission = AdmissionPolicy::None;

    /** SM cycles per SchedulerCore::step() quantum. */
    Cycle quantumCycles = 2048;

    /** Modeled wall-clock cost of evicting a request to its shelf. */
    Cycle preemptSaveCycles = 512;

    /** Modeled wall-clock cost of restoring a shelved request. */
    Cycle preemptRestoreCycles = 512;

    /**
     * Shrink factor applied to request grids (totalBlocks and
     * instrsPerWarp): serving studies sweep many requests, so the
     * 0.25 default turns a seconds-long zoo kernel into a tens-of-ms
     * request while keeping its resource character. 1.0 keeps the
     * full-size grid (the invocation schedule is still dropped — a
     * request is always exactly one grid).
     */
    double kernelScale = 0.25;

    /** Per-kernel deadlock valve, as in GpuTop::runKernel(). */
    Cycle maxKernelCycles = 2'000'000'000ULL;

    /** Whole-run deadlock valve on the wall clock. */
    Cycle maxWallCycles = 1'000'000'000'000ULL;
};

/** Aggregate serving metrics of one serve() run. */
struct ServeSummary
{
    std::string policy;
    std::string admission;
    int devices = 1;
    int requests = 0;
    int completed = 0;
    int rejected = 0;        ///< refused by admission control
    int preemptions = 0;     ///< total evictions across requests
    Cycle wallCycles = 0;    ///< wall clock at last completion
    Cycle executedCycles = 0;///< device SM cycles across requests
    Cycle p50Latency = 0;
    Cycle p95Latency = 0;
    Cycle p99Latency = 0;
    Cycle maxLatency = 0;
    double meanLatency = 0.0;
    double throughputPerMcycle = 0.0; ///< completions per 1e6 wall cyc
    int sloViolations = 0;
    double sloViolationRate = 0.0; ///< violations / completed
    double rejectionRate = 0.0;    ///< rejected / requests
};

/** Per-device attribution of one serve() run. */
struct ServeDeviceStats
{
    int device = 0;          ///< device index
    int completed = 0;       ///< requests this device completed
    int preemptions = 0;     ///< evictions charged to this device
    Cycle executedCycles = 0;///< SM cycles this device executed
    Cycle wallCycles = 0;    ///< device wall at its last completion
};

/** Everything serve() measured. */
struct ServeReport
{
    ServeSummary summary;
    std::vector<RequestRecord> records; ///< request id order
    std::vector<ServeDeviceStats> deviceStats; ///< device index order
};

/**
 * @p params normalized for serving: the grid (totalBlocks and
 * instrsPerWarp) shrunk by @p scale when scale < 1 (floor: one block,
 * 32 instructions), the application's invocation schedule dropped and
 * longBlocks clamped to the grid unconditionally — a request is
 * always exactly one nominal grid, whatever the scale.
 */
KernelParams scaleKernelParams(KernelParams params, double scale);

class RequestServer
{
  public:
    /**
     * Single-device serving: @p gpu must be idle (no run in flight)
     * and single-tenant; the server drives it exclusively for the
     * duration of serve().
     */
    RequestServer(GpuTop &gpu, ServeOptions opts);

    /**
     * Multi-device serving: one admission queue sharded across
     * @p gpus (each idle, single-tenant, identically configured —
     * fork warm clones from one device so checkpoint shelves restore
     * anywhere). Device pick is deterministic: lowest predicted-free
     * device, index tie-break.
     */
    RequestServer(std::vector<GpuTop *> gpus, ServeOptions opts);

    /**
     * Run the whole schedule to completion and report. Requests may
     * arrive unsorted; they are served in arrival order (ties by id).
     */
    ServeReport serve(const std::vector<ServeRequest> &requests);

    const RuntimePredictor &predictor() const { return predictor_; }

  private:
    const KernelLaunch &launchFor(const std::string &kernel);
    const KernelParams &paramsFor(const std::string &kernel);
    std::size_t pickNext(const std::vector<RequestRecord> &records,
                         const std::vector<int> &queue, Cycle now);
    std::int64_t laxityOf(const RequestRecord &rec, Cycle now);
    bool evictionPays(const RequestRecord &running,
                      const RequestRecord &challenger);

    std::vector<GpuTop *> gpus_;
    ServeOptions opts_;
    RuntimePredictor predictor_;
    // Scaled launch objects, one per kernel name, alive for the
    // server's lifetime (invocations keep a pointer into these).
    std::map<std::string, std::unique_ptr<SyntheticKernel>> kernels_;
    std::map<std::string, KernelParams> params_;
    Cycle wall_ = 0;
    int completed_ = 0;
    int rejected_ = 0;
    int preemptions_ = 0;
};

} // namespace equalizer

#endif // EQ_SERVE_SERVER_HH
