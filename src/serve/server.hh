/**
 * @file
 * The request server (docs/SERVING.md): an admission queue over a
 * single simulated GPU, advanced in bounded quanta through
 * SchedulerCore::step(), with three dispatch policies:
 *
 *  - fcfs:    run-to-completion in arrival order;
 *  - sjf:     shortest-predicted-remaining first (non-preemptive),
 *             runtimes from the online structural RuntimePredictor;
 *  - preempt: priority-preemptive — a higher-priority arrival evicts
 *             the running request to a checkpoint shelf
 *             (saveStateBuffer) and the victim later resumes from it
 *             (loadStateBuffer + adoptResumedKernel), charged a
 *             modeled save/restore cost on the wall clock.
 *
 * Determinism: the device simulation is bit-identical at any threads=
 * setting, arrivals are a pure function of the spec, and every
 * dispatch decision is serial arithmetic over those quantities — so a
 * whole serve() run (per-request records, percentiles, trace bytes)
 * is byte-identical across thread counts for a fixed seed.
 */

#ifndef EQ_SERVE_SERVER_HH
#define EQ_SERVE_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/synthetic_kernel.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"

namespace equalizer
{

class GpuTop;

/** Dispatcher policy of the serving frontend. */
enum class ServePolicy
{
    Fcfs,    ///< first-come, first-served, run to completion
    Sjf,     ///< shortest predicted remaining time, non-preemptive
    Preempt, ///< priority-preemptive via checkpoint shelves
};

const char *toString(ServePolicy policy);

/** Parse "fcfs" / "sjf" / "preempt"; fatal() on anything else. */
ServePolicy servePolicyFromString(const std::string &name);

/** Serving-loop knobs (see docs/SERVING.md for the cost model). */
struct ServeOptions
{
    ServePolicy policy = ServePolicy::Fcfs;

    /** SM cycles per SchedulerCore::step() quantum. */
    Cycle quantumCycles = 2048;

    /** Modeled wall-clock cost of evicting a request to its shelf. */
    Cycle preemptSaveCycles = 512;

    /** Modeled wall-clock cost of restoring a shelved request. */
    Cycle preemptRestoreCycles = 512;

    /**
     * Shrink factor applied to request grids (totalBlocks and
     * instrsPerWarp): serving studies sweep many requests, so 0.25
     * turns a seconds-long zoo kernel into a tens-of-ms request while
     * keeping its resource character. 1.0 = full-size kernels.
     */
    double kernelScale = 1.0;

    /** Per-kernel deadlock valve, as in GpuTop::runKernel(). */
    Cycle maxKernelCycles = 2'000'000'000ULL;

    /** Whole-run deadlock valve on the wall clock. */
    Cycle maxWallCycles = 1'000'000'000'000ULL;
};

/** Aggregate serving metrics of one serve() run. */
struct ServeSummary
{
    std::string policy;
    int requests = 0;
    int completed = 0;
    int preemptions = 0;     ///< total evictions across requests
    Cycle wallCycles = 0;    ///< wall clock at last completion
    Cycle executedCycles = 0;///< device SM cycles across requests
    Cycle p50Latency = 0;
    Cycle p95Latency = 0;
    Cycle p99Latency = 0;
    Cycle maxLatency = 0;
    double meanLatency = 0.0;
    double throughputPerMcycle = 0.0; ///< completions per 1e6 wall cyc
    int sloViolations = 0;
    double sloViolationRate = 0.0; ///< violations / completed
};

/** Everything serve() measured. */
struct ServeReport
{
    ServeSummary summary;
    std::vector<RequestRecord> records; ///< request id order
};

/**
 * @p params shrunk by @p scale for serving (floor: one block, 32
 * instructions); identity when scale >= 1.
 */
KernelParams scaleKernelParams(KernelParams params, double scale);

class RequestServer
{
  public:
    /**
     * @p gpu must be idle (no run in flight) and single-tenant; the
     * server drives it exclusively for the duration of serve().
     */
    RequestServer(GpuTop &gpu, ServeOptions opts);

    /**
     * Run the whole schedule to completion and report. Requests may
     * arrive unsorted; they are served in arrival order (ties by id).
     */
    ServeReport serve(const std::vector<ServeRequest> &requests);

    const RuntimePredictor &predictor() const { return predictor_; }

  private:
    const KernelLaunch &launchFor(const std::string &kernel);
    const KernelParams &paramsFor(const std::string &kernel);
    std::size_t pickNext(const std::vector<RequestRecord> &records,
                         const std::vector<int> &queue);
    void setGauges(std::size_t queued, int running_id);

    GpuTop &gpu_;
    ServeOptions opts_;
    RuntimePredictor predictor_;
    // Scaled launch objects, one per kernel name, alive for the
    // server's lifetime (invocations keep a pointer into these).
    std::map<std::string, std::unique_ptr<SyntheticKernel>> kernels_;
    std::map<std::string, KernelParams> params_;
    Cycle wall_ = 0;
    int completed_ = 0;
    int preemptions_ = 0;
};

} // namespace equalizer

#endif // EQ_SERVE_SERVER_HH
