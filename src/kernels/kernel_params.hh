/**
 * @file
 * Parameter space of the synthetic kernel zoo.
 *
 * Each Rodinia/Parboil kernel of the paper's Table II is modelled as a
 * parameterized instruction-stream generator. The parameters control
 * exactly the properties the Equalizer mechanism keys on: the ALU:MEM
 * mix (compute pressure), coalescing and streaming volume (bandwidth
 * pressure), per-warp working set and reuse (L1 sensitivity), dependence
 * structure (latency tolerance), phases (intra-invocation variation) and
 * per-invocation modifiers (inter-invocation variation).
 */

#ifndef EQ_KERNELS_KERNEL_PARAMS_HH
#define EQ_KERNELS_KERNEL_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace equalizer
{

/** Paper Section II kernel taxonomy. */
enum class KernelCategory
{
    Compute,     ///< contends for the arithmetic pipelines
    Memory,      ///< saturates DRAM bandwidth
    Cache,       ///< thrashes the L1 data cache at full occupancy
    Unsaturated, ///< saturates nothing; has an inclination
};

const char *kernelCategoryName(KernelCategory c);

/** One execution phase of a warp program. */
struct PhaseParams
{
    /** Fraction of the warp's instructions spent in this phase. */
    double weight = 1.0;

    /** Arithmetic instructions emitted per memory instruction. */
    double aluPerMem = 8.0;

    /** Fraction of arithmetic that uses the SFU pipe. */
    double sfuFraction = 0.0;

    /** Probability an arithmetic instruction depends on its predecessor. */
    double depProb = 0.3;

    /**
     * Arithmetic instructions between a load and its first consumer
     * (compile-time scheduling distance; larger = more latency hiding).
     */
    int loadDepDistance = 2;

    /** Coalesced 128 B transactions per streaming load. */
    int transactionsPerLoad = 1;

    /** Fraction of memory instructions that are stores. */
    double storeFraction = 0.1;

    /** Fraction of loads that target the per-warp working set. */
    double reuseFraction = 0.9;

    /** Per-warp reusable footprint in bytes. */
    std::size_t workingSetBytes = 512;

    /** Route loads through the texture path (deep buffering). */
    bool texture = false;

    /** Fraction of memory operations served by shared memory. */
    double sharedFraction = 0.0;

    /** Bank-conflict serialization of shared accesses (1 = none). */
    int smemConflictWays = 1;

    /**
     * Branch divergence: probability an arithmetic instruction runs
     * with a partial lane mask.
     */
    double divergence = 0.0;

    /** Emit a block-wide barrier every this many instructions (0=off). */
    int syncEvery = 0;
};

/** Per-invocation modifiers (inter-invocation variation, Fig 2a). */
struct InvocationMod
{
    double lengthScale = 1.0;   ///< scales instructions per warp
    double aluPerMemScale = 1.0;///< scales the compute:memory mix
    double reuseOverride = -1.0;///< >= 0: replaces reuseFraction
    double wsScale = 1.0;       ///< scales the working set
    double blocksScale = 1.0;   ///< scales the grid size
};

/** Complete description of one kernel of the zoo. */
struct KernelParams
{
    std::string name;
    KernelCategory category = KernelCategory::Unsaturated;

    int warpsPerBlock = 8;   ///< W_cta (paper Table II)
    int maxBlocksPerSm = 6;  ///< occupancy limit (paper Table II)
    int totalBlocks = 180;   ///< grid size
    int instrsPerWarp = 1200;///< nominal warp program length

    std::vector<PhaseParams> phases{PhaseParams{}};

    /**
     * Load imbalance (prtcl-2): the first @c longBlocks blocks run
     * @c longBlockFactor times longer than the rest.
     */
    int longBlocks = 0;
    double longBlockFactor = 1.0;

    /** Invocation schedule; empty means a single nominal invocation. */
    std::vector<InvocationMod> invocations;

    std::uint64_t seed = 0x5eed;

    /** Number of invocations the application performs. */
    int
    invocationCount() const
    {
        return invocations.empty()
                   ? 1
                   : static_cast<int>(invocations.size());
    }

    /** Modifier for one invocation (identity when unscheduled). */
    InvocationMod
    invocation(int index) const
    {
        if (invocations.empty())
            return InvocationMod{};
        return invocations[static_cast<std::size_t>(index) %
                           invocations.size()];
    }
};

} // namespace equalizer

#endif // EQ_KERNELS_KERNEL_PARAMS_HH
