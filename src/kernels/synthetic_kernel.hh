/**
 * @file
 * The synthetic-kernel implementation of the KernelLaunch contract.
 */

#ifndef EQ_KERNELS_SYNTHETIC_KERNEL_HH
#define EQ_KERNELS_SYNTHETIC_KERNEL_HH

#include <memory>

#include "gpu/kernel_launch.hh"
#include "kernels/kernel_params.hh"

namespace equalizer
{

/**
 * One invocation of a synthetic kernel.
 *
 * Deterministic: the stream of (block, warp) depends only on the kernel
 * seed, the invocation index and the coordinates.
 */
class SyntheticKernel : public KernelLaunch
{
  public:
    /**
     * @param params Kernel description (copied).
     * @param invocation Invocation index into the schedule.
     */
    explicit SyntheticKernel(KernelParams params, int invocation = 0);

    const KernelInfo &info() const override { return info_; }

    std::unique_ptr<InstructionStream>
    makeWarpStream(BlockId block, int warp_in_block) const override;

    const KernelParams &params() const { return params_; }
    int invocation() const { return invocation_; }

    /** Effective per-invocation modifier. */
    const InvocationMod &mod() const { return mod_; }

  private:
    KernelParams params_;
    int invocation_;
    InvocationMod mod_;
    KernelInfo info_;
};

} // namespace equalizer

#endif // EQ_KERNELS_SYNTHETIC_KERNEL_HH
