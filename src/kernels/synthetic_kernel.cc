#include "synthetic_kernel.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "mem/mem_access.hh"

namespace equalizer
{

namespace
{

/** Address-space layout of the synthetic kernels. */
constexpr Addr wsRegionBase = 0x0000'1000'0000'0000ULL;
constexpr Addr streamRegionBase = 0x0000'8000'0000'0000ULL;
constexpr Addr invocationStride = 0x0001'0000'0000'0000ULL;

/** Maximum per-warp working-set allocation (for base spacing). */
constexpr Addr wsAllocBytes = 64 * 1024;

/** Per-warp streaming arena. */
constexpr Addr streamAllocBytes = 1ULL << 30;

/** One phase with invocation modifiers folded in. */
struct EffectivePhase
{
    std::int64_t endInstr; ///< exclusive instruction bound of this phase
    double aluPerMem;
    double sfuFraction;
    double depProb;
    int loadDepDistance;
    int transactionsPerLoad;
    double storeFraction;
    double reuseFraction;
    std::int64_t wsLines;
    bool texture;
    double sharedFraction;
    int smemConflictWays;
    double divergence;
    int syncEvery;
};

/** Generator of one warp's instruction stream. */
class SyntheticStream : public InstructionStream
{
  public:
    SyntheticStream(const KernelParams &p, const InvocationMod &mod,
                    int invocation, BlockId block, int warp_in_block)
    {
        const std::int64_t warp_global =
            static_cast<std::int64_t>(block) * p.warpsPerBlock +
            warp_in_block;

        double length = p.instrsPerWarp * mod.lengthScale;
        if (block < p.longBlocks)
            length *= p.longBlockFactor;
        total_ = std::max<std::int64_t>(1, std::llround(length));

        const Addr inv_off =
            static_cast<Addr>(invocation) * invocationStride;
        // Stagger working-set bases across cache sets (odd multiple of
        // the line size) so warps do not all collide in the low sets.
        wsBase_ = wsRegionBase + inv_off +
                  static_cast<Addr>(warp_global) * wsAllocBytes +
                  static_cast<Addr>(warp_global % 61) * lineBytes * 7;
        streamBase_ = streamRegionBase + inv_off +
                      static_cast<Addr>(warp_global) * streamAllocBytes;

        // Fold the invocation modifiers into a flattened phase plan.
        double cum = 0.0;
        double total_weight = 0.0;
        for (const auto &ph : p.phases)
            total_weight += ph.weight;
        EQ_ASSERT(total_weight > 0.0, "kernel '", p.name,
                  "' has zero total phase weight");
        for (const auto &ph : p.phases) {
            cum += ph.weight / total_weight;
            EffectivePhase e;
            e.endInstr = std::min<std::int64_t>(
                total_, std::llround(cum * static_cast<double>(total_)));
            e.aluPerMem =
                std::max(1.0, ph.aluPerMem * mod.aluPerMemScale);
            e.sfuFraction = ph.sfuFraction;
            e.depProb = ph.depProb;
            e.loadDepDistance = ph.loadDepDistance;
            e.transactionsPerLoad =
                std::clamp(ph.transactionsPerLoad, 1,
                           maxTransactionsPerInst);
            e.storeFraction = ph.storeFraction;
            e.reuseFraction = mod.reuseOverride >= 0.0
                                  ? mod.reuseOverride
                                  : ph.reuseFraction;
            const double ws_bytes =
                static_cast<double>(ph.workingSetBytes) * mod.wsScale;
            e.wsLines = std::max<std::int64_t>(
                1, std::llround(ws_bytes / static_cast<double>(lineBytes)));
            e.texture = ph.texture;
            e.sharedFraction = ph.sharedFraction;
            e.smemConflictWays = std::max(1, ph.smemConflictWays);
            e.divergence = ph.divergence;
            e.syncEvery = ph.syncEvery;
            phases_.push_back(e);
        }
        phases_.back().endInstr = total_;

        std::uint64_t s = p.seed;
        s = s * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(invocation);
        s = s * 0xbf58476d1ce4e5b9ULL + static_cast<std::uint64_t>(block);
        s = s * 0x94d049bb133111ebULL +
            static_cast<std::uint64_t>(warp_in_block);
        rng_ = Rng(s);
    }

    bool
    next(WarpInstruction &out) override
    {
        if (emitted_ >= total_)
            return false;

        while (phases_[phase_].endInstr <= emitted_ &&
               phase_ + 1 < phases_.size()) {
            ++phase_;
            aluRemaining_ = 0; // phase change starts a fresh iteration
        }
        const EffectivePhase &ph = phases_[phase_];

        out = WarpInstruction{};

        if (ph.syncEvery > 0 && sinceSync_ >= ph.syncEvery) {
            out.op = OpClass::Sync;
            sinceSync_ = 0;
            ++emitted_;
            return true;
        }

        if (aluRemaining_ <= 0) {
            // Start a new iteration with its memory instruction; a
            // fraction of them are scratchpad accesses instead.
            if (rng_.chance(ph.sharedFraction)) {
                out.op = OpClass::Shared;
                out.conflictWays = ph.smemConflictWays;
                // Shared data is consumed like a load result, via the
                // dependsOnPrev scoreboard path.
                aluRemaining_ = std::max(
                    1, static_cast<int>(ph.aluPerMem));
                depPos_ = -1;
                aluIndex_ = 0;
                firstAluDependsOnPrev_ = true;
                ++emitted_;
                ++sinceSync_;
                return true;
            }
            const bool store = rng_.chance(ph.storeFraction);
            const bool ws_load = !store && rng_.chance(ph.reuseFraction);

            out.op = OpClass::Mem;
            out.write = store;
            out.texture = ph.texture && !store;
            if (ws_load) {
                out.transactionCount = ph.transactionsPerLoad;
                for (int t = 0; t < ph.transactionsPerLoad; ++t) {
                    out.lineAddrs[static_cast<std::size_t>(t)] =
                        wsBase_ +
                        static_cast<Addr>((wsPtr_ + t) % ph.wsLines) *
                            lineBytes;
                }
                wsPtr_ += ph.transactionsPerLoad;
            } else {
                out.transactionCount = ph.transactionsPerLoad;
                for (int t = 0; t < ph.transactionsPerLoad; ++t) {
                    out.lineAddrs[static_cast<std::size_t>(t)] =
                        streamBase_ +
                        static_cast<Addr>(streamPtr_ + t) * lineBytes;
                }
                streamPtr_ += ph.transactionsPerLoad;
            }

            // Plan the arithmetic tail of the iteration.
            const double apm = ph.aluPerMem;
            aluRemaining_ = static_cast<int>(apm);
            if (rng_.chance(apm - static_cast<double>(aluRemaining_)))
                ++aluRemaining_;
            aluRemaining_ = std::max(1, aluRemaining_);
            depPos_ = store ? -1
                            : std::min(ph.loadDepDistance,
                                       aluRemaining_ - 1);
            aluIndex_ = 0;

            ++emitted_;
            ++sinceSync_;
            return true;
        }

        // Arithmetic instruction within the current iteration.
        out.op = rng_.chance(ph.sfuFraction) ? OpClass::Sfu : OpClass::Alu;
        if (ph.divergence > 0.0 && rng_.chance(ph.divergence))
            out.activeLanes = 8 + static_cast<int>(rng_.below(17));
        if (firstAluDependsOnPrev_) {
            out.dependsOnPrev = true;
            firstAluDependsOnPrev_ = false;
        } else if (aluIndex_ == depPos_) {
            out.dependsOnLoads = true;
        } else {
            out.dependsOnPrev = rng_.chance(ph.depProb);
        }
        ++aluIndex_;
        --aluRemaining_;
        ++emitted_;
        ++sinceSync_;
        return true;
    }

  private:
    std::int64_t total_ = 0;
    std::int64_t emitted_ = 0;
    std::size_t phase_ = 0;

    Addr wsBase_ = 0;
    Addr streamBase_ = 0;
    std::int64_t wsPtr_ = 0;
    std::int64_t streamPtr_ = 0;

    int aluRemaining_ = 0;
    int aluIndex_ = 0;
    int depPos_ = -1;
    bool firstAluDependsOnPrev_ = false;
    int sinceSync_ = 0;

    std::vector<EffectivePhase> phases_;
    Rng rng_{0};
};

} // namespace

SyntheticKernel::SyntheticKernel(KernelParams params, int invocation)
    : params_(std::move(params)), invocation_(invocation),
      mod_(params_.invocation(invocation))
{
    info_.name = params_.name;
    info_.warpsPerBlock = params_.warpsPerBlock;
    info_.maxBlocksPerSm = params_.maxBlocksPerSm;
    info_.totalBlocks = std::max(
        1, static_cast<int>(
               std::llround(params_.totalBlocks * mod_.blocksScale)));
}

std::unique_ptr<InstructionStream>
SyntheticKernel::makeWarpStream(BlockId block, int warp_in_block) const
{
    return std::make_unique<SyntheticStream>(params_, mod_, invocation_,
                                             block, warp_in_block);
}

const char *
kernelCategoryName(KernelCategory c)
{
    switch (c) {
      case KernelCategory::Compute:
        return "compute";
      case KernelCategory::Memory:
        return "memory";
      case KernelCategory::Cache:
        return "cache";
      case KernelCategory::Unsaturated:
      default:
        return "unsaturated";
    }
}

} // namespace equalizer
