/**
 * @file
 * The 27-kernel workload roster of the paper's Table II.
 */

#ifndef EQ_KERNELS_KERNEL_ZOO_HH
#define EQ_KERNELS_KERNEL_ZOO_HH

#include <string>
#include <vector>

#include "kernels/kernel_params.hh"
#include "kernels/synthetic_kernel.hh"

namespace equalizer
{

/** One roster row: the kernel plus its Table II application facts. */
struct ZooEntry
{
    std::string application; ///< e.g. "backprop"
    double appFraction;      ///< fraction of application time (Table II)
    KernelParams params;
};

/**
 * Static registry of the paper's kernels.
 *
 * Categories follow the paper's figures (4, 9, 10); note spmv, which
 * Table II lists as Compute but every figure treats as cache-sensitive —
 * we follow the figures (see DESIGN.md).
 */
class KernelZoo
{
  public:
    /** All 27 kernels in the paper's figure order. */
    static const std::vector<ZooEntry> &all();

    /** Lookup by kernel name; fatal() when unknown. */
    static const ZooEntry &byName(const std::string &name);

    /** Names of every kernel in roster order. */
    static std::vector<std::string> names();

    /** Names of the kernels in one category, roster order. */
    static std::vector<std::string> namesInCategory(KernelCategory c);
};

} // namespace equalizer

#endif // EQ_KERNELS_KERNEL_ZOO_HH
