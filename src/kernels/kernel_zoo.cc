#include "kernel_zoo.hh"

#include "common/log.hh"

namespace equalizer
{

namespace
{

/** Shorthand for a single-phase kernel. */
KernelParams
makeKernel(std::string name, KernelCategory cat, int wcta, int max_blocks,
           int total_blocks, int instrs, PhaseParams phase,
           std::uint64_t seed)
{
    KernelParams p;
    p.name = std::move(name);
    p.category = cat;
    p.warpsPerBlock = wcta;
    p.maxBlocksPerSm = max_blocks;
    p.totalBlocks = total_blocks;
    p.instrsPerWarp = instrs;
    phase.weight = 1.0;
    p.phases = {phase};
    p.seed = seed;
    return p;
}

/** Compute-intensive phase template. */
PhaseParams
computePhase(double alu_per_mem, double sfu = 0.05, double dep = 0.3)
{
    PhaseParams ph;
    ph.aluPerMem = alu_per_mem;
    ph.sfuFraction = sfu;
    ph.depProb = dep;
    ph.loadDepDistance = 4;
    ph.transactionsPerLoad = 1;
    ph.storeFraction = 0.05;
    ph.reuseFraction = 0.95;
    ph.workingSetBytes = 512;
    return ph;
}

/** Bandwidth-bound streaming phase template. */
PhaseParams
memoryPhase(double alu_per_mem, int transactions, double stores = 0.2)
{
    PhaseParams ph;
    ph.aluPerMem = alu_per_mem;
    ph.sfuFraction = 0.0;
    ph.depProb = 0.25;
    ph.loadDepDistance = 2;
    ph.transactionsPerLoad = transactions;
    ph.storeFraction = stores;
    ph.reuseFraction = 0.1;
    ph.workingSetBytes = 1024;
    return ph;
}

/** L1-sensitive phase template. */
PhaseParams
cachePhase(double alu_per_mem, std::size_t ws_bytes, double reuse,
           double stores = 0.1)
{
    PhaseParams ph;
    ph.aluPerMem = alu_per_mem;
    ph.sfuFraction = 0.0;
    ph.depProb = 0.3;
    ph.loadDepDistance = 2;
    ph.transactionsPerLoad = 2;
    ph.storeFraction = stores;
    ph.reuseFraction = reuse;
    ph.workingSetBytes = ws_bytes;
    return ph;
}

/** Latency-bound (unsaturated) phase template. */
PhaseParams
unsaturatedPhase(double alu_per_mem, double dep = 0.6)
{
    PhaseParams ph;
    ph.aluPerMem = alu_per_mem;
    ph.sfuFraction = 0.02;
    ph.depProb = dep;
    ph.loadDepDistance = 3;
    ph.transactionsPerLoad = 1;
    ph.storeFraction = 0.1;
    ph.reuseFraction = 0.85;
    ph.workingSetBytes = 512;
    return ph;
}

std::vector<ZooEntry>
buildRoster()
{
    std::vector<ZooEntry> zoo;
    auto add = [&zoo](std::string app, double fraction, KernelParams p) {
        zoo.push_back(ZooEntry{std::move(app), fraction, std::move(p)});
    };

    // ----------------------------------------------------------------
    // Compute-intensive kernels (paper Figure 4, left group).
    // ----------------------------------------------------------------
    add("cutcp", 1.00,
        makeKernel("cutcp", KernelCategory::Compute, 6, 8, 240, 1700,
                   computePhase(24.0, 0.10), 0xc001));
    {
        // histo-2 accumulates bins in shared memory with conflicts.
        auto ph = computePhase(20.0, 0.02);
        ph.sharedFraction = 0.4;
        ph.smemConflictWays = 2;
        add("histo", 0.53,
            makeKernel("histo-2", KernelCategory::Compute, 24, 3, 60,
                       1700, ph, 0xc002));
    }
    add("lavaMD", 1.00,
        makeKernel("lavaMD", KernelCategory::Compute, 4, 4, 180, 3400,
                   computePhase(30.0, 0.08), 0xc003));
    add("leukocyte", 0.36,
        makeKernel("leuko-2", KernelCategory::Compute, 6, 3, 90, 2800,
                   computePhase(22.0, 0.06), 0xc004));
    add("mri-g", 0.13,
        makeKernel("mri-g-3", KernelCategory::Compute, 8, 6, 180, 1700,
                   computePhase(18.0, 0.05), 0xc005));
    add("mri-q", 1.00,
        makeKernel("mri-q", KernelCategory::Compute, 8, 5, 150, 2000,
                   computePhase(28.0, 0.15), 0xc006));
    add("pathfinder", 1.00,
        makeKernel("pf", KernelCategory::Compute, 8, 6, 180, 1700,
                   computePhase(16.0, 0.02), 0xc007));
    {
        // prtcl-2: heavy load imbalance — one block runs ~25x longer, so
        // most SMs idle for >95% of the kernel (paper Section V-B).
        auto p = makeKernel("prtcl-2", KernelCategory::Compute, 6, 3, 45,
                            2000, computePhase(20.0, 0.04), 0xc008);
        p.longBlocks = 1;
        p.longBlockFactor = 25.0;
        add("particle", 0.35, std::move(p));
    }
    {
        // sgemm tiles operands through shared memory.
        auto ph = computePhase(26.0, 0.0, 0.25);
        ph.sharedFraction = 0.35;
        add("sgemm", 1.00,
            makeKernel("sgemm", KernelCategory::Compute, 4, 6, 180, 2000,
                       ph, 0xc009));
    }

    // ----------------------------------------------------------------
    // Memory-intensive kernels.
    // ----------------------------------------------------------------
    add("cfd", 0.85,
        makeKernel("cfd-1", KernelCategory::Memory, 16, 3, 45, 300,
                   memoryPhase(3.0, 4, 0.20), 0x3e01));
    add("cfd", 0.15,
        makeKernel("cfd-2", KernelCategory::Memory, 6, 3, 60, 400,
                   memoryPhase(2.0, 4, 0.25), 0x3e02));
    add("histo", 0.17,
        makeKernel("histo-3", KernelCategory::Memory, 16, 3, 45, 350,
                   memoryPhase(3.0, 2, 0.35), 0x3e03));
    add("lbm", 1.00,
        makeKernel("lbm", KernelCategory::Memory, 4, 7, 120, 400,
                   memoryPhase(4.0, 4, 0.40), 0x3e04));
    {
        // leuko-1: texture-heavy. The deep texture buffering hides the
        // memory back-pressure from the LD/ST pipe, so X_mem stays low
        // and Equalizer misreads the kernel (paper Section V-B).
        auto ph = memoryPhase(4.0, 2, 0.05);
        ph.texture = true;
        ph.depProb = 0.1;
        add("leukocyte", 0.64,
            makeKernel("leuko-1", KernelCategory::Memory, 6, 6, 105, 400,
                       ph, 0x3e05));
    }

    // ----------------------------------------------------------------
    // Cache-sensitive kernels.
    // ----------------------------------------------------------------
    {
        // bfs-2: twelve invocations; the middle ones (8-10) are strongly
        // cache-bound while the rest favour parallelism (paper Fig 2a).
        auto bfs_phase = cachePhase(5.0, 1536, 0.90);
        bfs_phase.divergence = 0.45; // frontier-dependent branching
        auto p = makeKernel("bfs-2", KernelCategory::Cache, 16, 3, 60, 650,
                            bfs_phase, 0xca01);
        const double lengths[12] = {0.4, 0.5, 0.7, 0.9, 1.2, 1.3,
                                    1.2, 1.5, 1.3, 1.0, 0.6, 0.4};
        for (int i = 0; i < 12; ++i) {
            InvocationMod m;
            m.lengthScale = lengths[i];
            m.reuseOverride = (i >= 7 && i <= 9) ? 0.95 : 0.35;
            p.invocations.push_back(m);
        }
        add("bfs", 0.95, std::move(p));
    }
    add("backprop", 0.43,
        makeKernel("bp-2", KernelCategory::Cache, 8, 6, 132, 500,
                   cachePhase(5.0, 1792, 0.90), 0xca02));
    add("histo", 0.30,
        makeKernel("histo-1", KernelCategory::Cache, 16, 3, 60, 550,
                   cachePhase(4.0, 1280, 0.85, 0.2), 0xca03));
    add("kmeans", 0.24,
        makeKernel("kmn", KernelCategory::Cache, 8, 6, 132, 550,
                   cachePhase(4.0, 1792, 0.92), 0xca04));
    {
        auto ph = cachePhase(6.0, 1792, 0.88);
        ph.divergence = 0.35; // suffix-tree walks diverge per thread
        add("mummer", 1.00,
            makeKernel("mmer", KernelCategory::Cache, 8, 6, 132, 550, ph,
                       0xca05));
    }
    add("particle", 0.45,
        makeKernel("prtcl-1", KernelCategory::Cache, 16, 3, 60, 550,
                   cachePhase(5.0, 1280, 0.85), 0xca06));
    {
        // spmv: an early strongly cache-contended phase, then a phase
        // dominated by memory waiting (paper Fig 11b). Table II calls it
        // Compute, but every figure treats it as cache-sensitive.
        KernelParams p;
        p.name = "spmv";
        p.category = KernelCategory::Cache;
        p.warpsPerBlock = 6;
        p.maxBlocksPerSm = 8;
        p.totalBlocks = 150;
        p.instrsPerWarp = 500;
        PhaseParams early = cachePhase(3.0, 1536, 0.95);
        early.weight = 0.3;
        PhaseParams late = cachePhase(6.0, 1536, 0.60);
        late.weight = 0.7;
        late.transactionsPerLoad = 2;
        p.phases = {early, late};
        p.seed = 0xca07;
        add("spmv", 1.00, std::move(p));
    }

    // ----------------------------------------------------------------
    // Unsaturated kernels.
    // ----------------------------------------------------------------
    {
        auto ph = unsaturatedPhase(9.0, 0.7);
        ph.loadDepDistance = 4;
        // Small grid: only ~2 blocks per SM are resident, so neither the
        // issue slots nor the bandwidth saturate (latency-bound kernel).
        add("backprop", 0.57,
            makeKernel("bp-1", KernelCategory::Unsaturated, 8, 6, 40,
                       3500, ph, 0x0501));
    }
    {
        // mri-g-1: two short memory-pressure bursts inside a mostly
        // latency-bound kernel (paper Fig 2b).
        KernelParams p;
        p.name = "mri-g-1";
        p.category = KernelCategory::Unsaturated;
        p.warpsPerBlock = 2;
        p.maxBlocksPerSm = 8;
        p.totalBlocks = 150;
        p.instrsPerWarp = 2400;
        PhaseParams calm = unsaturatedPhase(12.0, 0.5);
        PhaseParams burst = memoryPhase(2.0, 4, 0.1);
        calm.weight = 0.35;
        burst.weight = 0.10;
        PhaseParams calm2 = calm;
        calm2.weight = 0.30;
        PhaseParams burst2 = burst;
        burst2.weight = 0.10;
        PhaseParams calm3 = calm;
        calm3.weight = 0.15;
        p.phases = {calm, burst, calm2, burst2, calm3};
        p.seed = 0x0502;
        add("mri-g", 0.68, std::move(p));
    }
    {
        auto ph = unsaturatedPhase(6.0, 0.5);
        ph.transactionsPerLoad = 2;
        ph.reuseFraction = 0.5;
        add("mri-g", 0.07,
            makeKernel("mri-g-2", KernelCategory::Unsaturated, 8, 3, 60,
                       1200, ph, 0x0503));
    }
    {
        KernelParams p;
        p.name = "sad-1";
        p.category = KernelCategory::Unsaturated;
        p.warpsPerBlock = 2;
        p.maxBlocksPerSm = 8;
        p.totalBlocks = 150;
        p.instrsPerWarp = 2000;
        PhaseParams a = unsaturatedPhase(10.0, 0.55);
        a.weight = 0.5;
        PhaseParams b = memoryPhase(4.0, 2, 0.15);
        b.weight = 0.5;
        p.phases = {a, b};
        p.seed = 0x0504;
        add("sad", 0.85, std::move(p));
    }
    {
        // sc: alternating compute-lean and memory-lean phases; boosts
        // both resources at different times (paper Fig 9).
        KernelParams p;
        p.name = "sc";
        p.category = KernelCategory::Unsaturated;
        p.warpsPerBlock = 16;
        p.maxBlocksPerSm = 3;
        p.totalBlocks = 60;
        p.instrsPerWarp = 800;
        PhaseParams comp = unsaturatedPhase(14.0, 0.45);
        comp.weight = 0.5;
        PhaseParams mem = memoryPhase(5.0, 1, 0.2);
        mem.weight = 0.5;
        p.phases = {comp, mem};
        p.seed = 0x0505;
        add("sc", 1.00, std::move(p));
    }
    {
        auto ph = unsaturatedPhase(9.0, 0.7);
        ph.syncEvery = 60;
        ph.reuseFraction = 0.6;
        ph.sharedFraction = 0.3; // halo cells staged in shared memory
        add("stencile", 1.00,
            makeKernel("stncl", KernelCategory::Unsaturated, 4, 5, 105,
                       1500, ph, 0x0506));
    }

    return zoo;
}

} // namespace

const std::vector<ZooEntry> &
KernelZoo::all()
{
    static const std::vector<ZooEntry> roster = buildRoster();
    return roster;
}

const ZooEntry &
KernelZoo::byName(const std::string &name)
{
    for (const auto &entry : all())
        if (entry.params.name == name)
            return entry;
    fatal("unknown kernel '", name, "'");
}

std::vector<std::string>
KernelZoo::names()
{
    std::vector<std::string> out;
    for (const auto &entry : all())
        out.push_back(entry.params.name);
    return out;
}

std::vector<std::string>
KernelZoo::namesInCategory(KernelCategory c)
{
    std::vector<std::string> out;
    for (const auto &entry : all())
        if (entry.params.category == c)
            out.push_back(entry.params.name);
    return out;
}

} // namespace equalizer
