/**
 * @file
 * A set-associative LRU tag array, reused by the L1, the L2 and the CCWS
 * victim-tag arrays.
 */

#ifndef EQ_MEM_TAG_ARRAY_HH
#define EQ_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/mem_access.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * Tag array with true-LRU replacement.
 *
 * Each line optionally remembers an "owner" (the warp that brought it in),
 * which the CCWS baseline uses to attribute evictions.
 */
class TagArray
{
  public:
    /** Result of an insertion. */
    struct Eviction
    {
        Addr lineAddr;  ///< evicted line address
        int owner;      ///< owner recorded at insertion/last touch
    };

    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity.
     * @param line_bytes Line size for set indexing.
     */
    TagArray(int sets, int ways, Addr line_bytes = lineBytes);

    /**
     * Probe for a line; updates LRU order (and owner) on hit.
     * @return true on hit.
     */
    bool lookup(Addr line_addr, int owner = -1);

    /** Probe without changing any replacement state. */
    bool probe(Addr line_addr) const;

    /**
     * Replay @p n consecutive lookup() touches of a present line in one
     * step: the use clock advances n times and the line carries the
     * final stamp, exactly as n owner-less lookups would leave it. Used
     * by the fast path to replicate an L2 head retrying against a hit
     * line for n skipped cycles. The line must be present (fatal if not).
     */
    void bulkTouch(Addr line_addr, std::uint64_t n);

    /**
     * Install a line (evicting LRU if the set is full). No-op if the line
     * is already present (it is touched instead).
     *
     * @return The eviction, when one occurred.
     */
    std::optional<Eviction> insert(Addr line_addr, int owner = -1);

    /** Remove a line if present. @return true when it was present. */
    bool invalidate(Addr line_addr);

    /** Remove every line. */
    void invalidateAll();

    int sets() const { return sets_; }
    int ways() const { return ways_; }

    /** Total lines currently valid. */
    int validCount() const;

    void
    visitState(StateVisitor &v)
    {
        v.expectMatch(sets_, "tag array sets");
        v.expectMatch(ways_, "tag array ways");
        v.expectMatch(lineBytes_, "tag array line size");
        v.field(useClock_);
        v.field(lines_);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        int owner = -1;
        std::uint64_t lastUse = 0;
    };

    int setIndex(Addr line_addr) const;
    Addr tagOf(Addr line_addr) const;

    int sets_;
    int ways_;
    Addr lineBytes_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_; ///< sets_ * ways_, row-major by set
};

} // namespace equalizer

#endif // EQ_MEM_TAG_ARRAY_HH
