#include "tag_array.hh"

#include "common/log.hh"

namespace equalizer
{

TagArray::TagArray(int sets, int ways, Addr line_bytes)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      lines_(static_cast<std::size_t>(sets) * ways)
{
    EQ_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
              "tag array needs a power-of-two set count, got ", sets);
    EQ_ASSERT(ways > 0, "tag array needs positive associativity");
}

int
TagArray::setIndex(Addr line_addr) const
{
    return static_cast<int>((line_addr / lineBytes_) &
                            static_cast<Addr>(sets_ - 1));
}

Addr
TagArray::tagOf(Addr line_addr) const
{
    return line_addr / lineBytes_ / static_cast<Addr>(sets_);
}

bool
TagArray::lookup(Addr line_addr, int owner)
{
    const int set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock_;
            if (owner >= 0)
                line.owner = owner;
            return true;
        }
    }
    return false;
}

bool
TagArray::probe(Addr line_addr) const
{
    const int set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);
    for (int w = 0; w < ways_; ++w) {
        const Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
TagArray::bulkTouch(Addr line_addr, std::uint64_t n)
{
    if (n == 0)
        return;
    const int set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.tag == tag) {
            useClock_ += n;
            line.lastUse = useClock_;
            return;
        }
    }
    fatal("bulkTouch() on a line that is not present");
}

std::optional<TagArray::Eviction>
TagArray::insert(Addr line_addr, int owner)
{
    const int set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);

    Line *victim = nullptr;
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.tag == tag) {
            // Already present (e.g., two MSHR fills raced); just touch.
            line.lastUse = ++useClock_;
            if (owner >= 0)
                line.owner = owner;
            return std::nullopt;
        }
        if (!line.valid) {
            if (!victim || victim->valid)
                victim = &line;
        } else if (!victim ||
                   (victim->valid && line.lastUse < victim->lastUse)) {
            victim = &line;
        }
    }

    std::optional<Eviction> evicted;
    if (victim->valid) {
        const Addr victim_line =
            (victim->tag * static_cast<Addr>(sets_) +
             static_cast<Addr>(set)) * lineBytes_;
        evicted = Eviction{victim_line, victim->owner};
    }
    victim->valid = true;
    victim->tag = tag;
    victim->owner = owner;
    victim->lastUse = ++useClock_;
    return evicted;
}

bool
TagArray::invalidate(Addr line_addr)
{
    const int set = setIndex(line_addr);
    const Addr tag = tagOf(line_addr);
    for (int w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return true;
        }
    }
    return false;
}

void
TagArray::invalidateAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

int
TagArray::validCount() const
{
    int count = 0;
    for (const auto &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace equalizer
