/**
 * @file
 * Small bounded-queue building blocks used across the memory system.
 *
 * Finite capacities are the point: the back-pressure chain that Equalizer
 * observes (X_mem warps) arises from these queues filling up.
 */

#ifndef EQ_MEM_QUEUES_HH
#define EQ_MEM_QUEUES_HH

#include <deque>
#include <optional>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/state.hh"

namespace equalizer
{

/** A FIFO with a fixed capacity; push fails when full. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return items_.size() >= capacity_; }
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** @return false (and leaves the queue unchanged) when full. */
    bool
    push(T item)
    {
        if (full())
            return false;
        items_.push_back(std::move(item));
        if (items_.size() > highWater_)
            highWater_ = items_.size();
        return true;
    }

    /**
     * Deepest occupancy since the last call; resets to the current
     * depth. Sampled per tracer epoch (HighWater events).
     */
    std::size_t
    takeHighWater()
    {
        const std::size_t hw = highWater_;
        highWater_ = items_.size();
        return hw;
    }

    /** Front element; queue must be non-empty. */
    T &
    front()
    {
        EQ_ASSERT(!items_.empty(), "front() on empty queue");
        return items_.front();
    }

    /** Read-only front element; queue must be non-empty. */
    const T &
    front() const
    {
        EQ_ASSERT(!items_.empty(), "front() on empty queue");
        return items_.front();
    }

    /** Pop and return the front element, or nullopt when empty. */
    std::optional<T>
    pop()
    {
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    void clear() { items_.clear(); }

    void
    visitState(StateVisitor &v)
    {
        v.expectMatch(capacity_, "bounded queue capacity");
        v.field(items_);
        v.field(highWater_);
    }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::size_t highWater_ = 0;
};

/**
 * A bounded FIFO whose elements become visible only after a ready time.
 *
 * Models a fixed-latency pipe (interconnect traversal, cache lookup).
 * Ready times must be pushed in non-decreasing order, which holds for any
 * constant-latency pipe fed in simulation order.
 */
template <typename T>
class DelayQueue
{
  public:
    explicit DelayQueue(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return items_.size() >= capacity_; }
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** @return false (and leaves the queue unchanged) when full. */
    bool
    push(T item, Cycle ready_at)
    {
        if (full())
            return false;
        EQ_ASSERT(items_.empty() || ready_at >= items_.back().readyAt,
                  "DelayQueue requires non-decreasing ready times");
        items_.push_back(Entry{std::move(item), ready_at});
        return true;
    }

    /** True when the head element exists and is ready at @p now. */
    bool
    headReady(Cycle now) const
    {
        return !items_.empty() && items_.front().readyAt <= now;
    }

    /** Peek the head element; it must exist (ready or not). */
    T &
    front()
    {
        EQ_ASSERT(!items_.empty(), "front() on empty delay queue");
        return items_.front().item;
    }

    /** Read-only peek at the head element; it must exist. */
    const T &
    front() const
    {
        EQ_ASSERT(!items_.empty(), "front() on empty delay queue");
        return items_.front().item;
    }

    /**
     * Cycle at which the head element becomes visible; the queue must
     * be non-empty. Ready times are non-decreasing, so this is the
     * earliest deadline in the queue — the fast path's wakeup source
     * for in-flight pipe traffic.
     */
    Cycle
    headReadyAt() const
    {
        EQ_ASSERT(!items_.empty(), "headReadyAt() on empty delay queue");
        return items_.front().readyAt;
    }

    /** Pop the head element if ready at @p now. */
    std::optional<T>
    popReady(Cycle now)
    {
        if (!headReady(now))
            return std::nullopt;
        T item = std::move(items_.front().item);
        items_.pop_front();
        return item;
    }

    void clear() { items_.clear(); }

    void
    visitState(StateVisitor &v)
    {
        v.expectMatch(capacity_, "delay queue capacity");
        v.field(items_);
    }

  private:
    struct Entry
    {
        T item;
        Cycle readyAt;
    };

    std::size_t capacity_;
    std::deque<Entry> items_;
};

} // namespace equalizer

#endif // EQ_MEM_QUEUES_HH
