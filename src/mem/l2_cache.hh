/**
 * @file
 * One L2 cache partition: a write-back, write-allocate bank in front of
 * a DRAM partition.
 */

#ifndef EQ_MEM_L2_CACHE_HH
#define EQ_MEM_L2_CACHE_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "mem/dram.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "mem/queues.hh"
#include "mem/tag_array.hh"
#include "power/energy_model.hh"

namespace equalizer
{

/**
 * L2 partition.
 *
 * Requests arrive through a bounded input DelayQueue (the interconnect
 * pushes with the NoC request latency applied). Each memory cycle the
 * partition processes at most one request from the head:
 *  - load hit: pushed to the output queue, ready after l2HitLatency;
 *  - load miss: forwarded to the DRAM partition (the head blocks while
 *    the DRAM queue is full — this is the back-pressure path);
 *  - store: write-allocate, marks the line dirty; a dirty eviction costs
 *    one DRAM write burst.
 * DRAM load completions fill the tags and enter the output queue. The
 * interconnect drains the output queue toward the SMs.
 */
class L2Partition
{
  public:
    L2Partition(const MemConfig &cfg, int partition_id, EnergyModel &energy);

    /** Interconnect-facing input (push with request latency applied). */
    DelayQueue<MemAccess> &input() { return input_; }

    /** Completed loads waiting for the response interconnect. */
    DelayQueue<MemAccess> &output() { return output_; }

    /** Advance one memory cycle. */
    void tick(Cycle now);

    /** Drop all cached lines and dirty state (kernel boundary). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    const DramPartition &dram() const { return dram_; }
    DramPartition &dram() { return dram_; }

    void visitState(StateVisitor &v);

  private:
    /** Install a line; performs dirty-writeback accounting on eviction. */
    void installLine(Addr line_addr, bool dirty, Cycle now);

    void handleRequest(Cycle now);

    const MemConfig &cfg_;
    EnergyModel &energy_;
    TagArray tags_;
    DelayQueue<MemAccess> input_;
    DelayQueue<MemAccess> output_;
    DramPartition dram_;

    /// Lines present and dirty (write-back state held beside the tags).
    std::unordered_set<Addr> dirty_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_L2_CACHE_HH
