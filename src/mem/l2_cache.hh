/**
 * @file
 * One L2 cache partition: a write-back, write-allocate bank in front of
 * a DRAM partition.
 */

#ifndef EQ_MEM_L2_CACHE_HH
#define EQ_MEM_L2_CACHE_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "mem/dram.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "mem/queues.hh"
#include "mem/tag_array.hh"
#include "power/energy_model.hh"

namespace equalizer
{

/**
 * L2 partition.
 *
 * Requests arrive through a bounded input DelayQueue (the interconnect
 * pushes with the NoC request latency applied). Each memory cycle the
 * partition processes at most one request from the head:
 *  - load hit: pushed to the output queue, ready after l2HitLatency;
 *  - load miss: forwarded to the DRAM partition (the head blocks while
 *    the DRAM queue is full — this is the back-pressure path);
 *  - store: write-allocate, marks the line dirty; a dirty eviction costs
 *    one DRAM write burst.
 * DRAM load completions fill the tags and enter the output queue. The
 * interconnect drains the output queue toward the SMs.
 */
class L2Partition
{
  public:
    L2Partition(const MemConfig &cfg, int partition_id, EnergyModel &energy);

    /** Interconnect-facing input (push with request latency applied). */
    DelayQueue<MemAccess> &input() { return input_; }
    const DelayQueue<MemAccess> &input() const { return input_; }

    /** Completed loads waiting for the response interconnect. */
    DelayQueue<MemAccess> &output() { return output_; }
    const DelayQueue<MemAccess> &output() const { return output_; }

    /** Advance one memory cycle. */
    void tick(Cycle now);

    // --- Fast-path support (docs/FAST_PATH.md).

    /**
     * Earliest memory cycle at which tick() might make progress, given
     * the partition's current state. Returns @p now + 1 when the very
     * next tick moves work (serve a request, start or complete a DRAM
     * burst), a later cycle when the next possible movement has a known
     * deadline (DRAM burst completion, input head maturing), or
     * noWakeup when the partition is fully quiet. Every tick at a cycle
     * strictly below the returned value is a verified no-progress tick
     * that skipCycles() can replay analytically. Pure probe.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replay @p n no-progress tick(now+1 .. now+n) calls: DRAM idle /
     * power-down accounting (only when the output queue has room, the
     * same gate tick() applies) and the per-cycle retry of a blocked
     * ready request head (L2 access energy each cycle, plus the LRU
     * touch for a blocked load hit). Only valid when every replayed
     * cycle is strictly below nextEventCycle(now)'s bound.
     */
    void skipCycles(Cycle now, Cycle n);

    /** Drop all cached lines and dirty state (kernel boundary). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    const DramPartition &dram() const { return dram_; }
    DramPartition &dram() { return dram_; }

    void visitState(StateVisitor &v);

  private:
    /** Install a line; performs dirty-writeback accounting on eviction. */
    void installLine(Addr line_addr, bool dirty, Cycle now);

    void handleRequest(Cycle now);

    const MemConfig &cfg_;
    EnergyModel &energy_;
    TagArray tags_;
    DelayQueue<MemAccess> input_;
    DelayQueue<MemAccess> output_;
    DramPartition dram_;

    /// Lines present and dirty (write-back state held beside the tags).
    std::unordered_set<Addr> dirty_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_L2_CACHE_HH
