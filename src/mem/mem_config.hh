/**
 * @file
 * Sizing parameters for the memory hierarchy (GTX480-flavoured defaults).
 */

#ifndef EQ_MEM_MEM_CONFIG_HH
#define EQ_MEM_MEM_CONFIG_HH

#include <cstddef>

#include "common/types.hh"

namespace equalizer
{

/**
 * Memory-hierarchy configuration.
 *
 * Latencies are expressed in cycles of the component's owning clock
 * domain: L1 in SM cycles, everything from the interconnect down in
 * memory-domain cycles. When the memory domain is rescaled by Equalizer,
 * all downstream latencies and bandwidths scale with it — exactly the
 * paper's "memory system VF domain" (NoC + L2 + MC + DRAM).
 */
struct MemConfig
{
    // --- L1 data cache, per SM (paper Table III: 64 sets, 4 ways, 128B).
    int l1Sets = 64;
    int l1Ways = 4;
    int l1MshrEntries = 32;
    int l1MaxMerges = 8;
    Cycle l1HitLatency = 24; ///< SM cycles, load-to-use

    // --- Interconnect.
    int numPartitions = 6;           ///< L2/DRAM partitions (GTX480: 6)
    Cycle nocRequestLatency = 40;    ///< mem cycles, SM -> partition
    Cycle nocResponseLatency = 40;   ///< mem cycles, partition -> SM
    int nocRequestBwPerCycle = 6;    ///< requests accepted per mem cycle
    int nocResponseBwPerCycle = 6;   ///< responses delivered per mem cycle
    std::size_t smInjectQueueCap = 8;    ///< per-SM request injection FIFO
    std::size_t texInjectQueueCap = 128; ///< per-SM texture FIFO (deep)
    std::size_t partitionInQueueCap = 16;///< per-partition L2 input
    std::size_t smResponseQueueCap = 256;///< per-SM response FIFO

    // --- L2, per partition (6 x 128 kB = 768 kB total).
    int l2SetsPerPartition = 128;
    int l2Ways = 8;
    Cycle l2HitLatency = 30;          ///< mem cycles
    std::size_t dramQueueCap = 16;    ///< per-partition MC input

    // --- DRAM (GDDR5-style service model).
    int banksPerPartition = 8;
    int linesPerRow = 32;             ///< 4 kB row / 128 B line
    Cycle dramRowHitCycles = 4;       ///< data-bus occupancy per burst
    Cycle dramRowMissCycles = 12;     ///< activate+precharge penalty path

    /**
     * GDDR5 low-power state (MemScale-style): after this many idle
     * memory cycles a partition powers down its interface, cutting its
     * share of the active-standby power (see PowerConfig); waking costs
     * dramPowerUpCycles on the next access. 0 disables power-down.
     */
    Cycle dramPowerDownIdleCycles = 200;
    Cycle dramPowerUpCycles = 10;

    /** Default GTX480-like configuration. */
    static MemConfig
    gtx480()
    {
        return MemConfig{};
    }
};

} // namespace equalizer

#endif // EQ_MEM_MEM_CONFIG_HH
