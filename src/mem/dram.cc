#include "dram.hh"

namespace equalizer
{

DramPartition::DramPartition(const MemConfig &cfg, int partition_id,
                             EnergyModel &energy)
    : cfg_(cfg), id_(partition_id), energy_(energy), cap_(cfg.dramQueueCap),
      openRow_(static_cast<std::size_t>(cfg.banksPerPartition), -1)
{
}

int
DramPartition::bankOf(Addr line_addr) const
{
    // Lines are already striped across partitions by the caller; within a
    // partition, consecutive partition-local lines stripe across banks at
    // row granularity so a stream keeps a row open.
    const Addr local = line_addr / lineBytes /
                       static_cast<Addr>(cfg_.numPartitions);
    return static_cast<int>((local / cfg_.linesPerRow) %
                            static_cast<Addr>(cfg_.banksPerPartition));
}

std::uint64_t
DramPartition::rowOf(Addr line_addr) const
{
    const Addr local = line_addr / lineBytes /
                       static_cast<Addr>(cfg_.numPartitions);
    return local / cfg_.linesPerRow / cfg_.banksPerPartition;
}

bool
DramPartition::submit(const MemAccess &access, Cycle now)
{
    if (full())
        return false;
    queue_.push_back(Pending{access, now});
    return true;
}

std::optional<MemAccess>
DramPartition::tick(Cycle now)
{
    std::optional<MemAccess> completed;

    if (inService_ && busyUntil_ <= now) {
        completed = inService_->access;
        inService_.reset();
        lastActive_ = now;
    }

    // Interface power management: enter the low-power state after a
    // long idle stretch; account time spent there.
    if (!inService_ && queue_.empty()) {
        if (cfg_.dramPowerDownIdleCycles > 0 &&
            now - lastActive_ >= cfg_.dramPowerDownIdleCycles) {
            poweredDown_ = true;
        }
        if (poweredDown_)
            ++poweredDownCycles_;
    }

    if (!inService_ && !queue_.empty()) {
        // FR-FCFS: oldest row-hit first, else the oldest request.
        std::size_t pick = 0;
        bool found_hit = false;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const Addr a = queue_[i].access.lineAddr;
            const int bank = bankOf(a);
            if (openRow_[static_cast<std::size_t>(bank)] ==
                static_cast<std::int64_t>(rowOf(a))) {
                pick = i;
                found_hit = true;
                break;
            }
        }

        Pending p = queue_[pick];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));

        const int bank = bankOf(p.access.lineAddr);
        const auto row = static_cast<std::int64_t>(rowOf(p.access.lineAddr));
        Cycle service;
        if (found_hit) {
            service = cfg_.dramRowHitCycles;
            ++rowHits_;
        } else {
            service = cfg_.dramRowMissCycles;
            openRow_[static_cast<std::size_t>(bank)] = row;
            energy_.record(EnergyEvent::DramActivate);
        }
        if (poweredDown_) {
            // Waking the interface delays the first access.
            service += cfg_.dramPowerUpCycles;
            poweredDown_ = false;
        }
        energy_.record(EnergyEvent::DramAccess);
        ++accesses_;
        queueDelaySum_ += now - p.enqueued;

        busyUntil_ = now + service;
        inService_ = p;
        lastActive_ = now;
    }

    return completed;
}

void
DramPartition::skipIdleCycles(Cycle now, Cycle n)
{
    if (n == 0)
        return;
    if (inService_) {
        EQ_ASSERT(busyUntil_ > now + n,
                  "DRAM skip span crosses a burst completion");
        return;
    }
    EQ_ASSERT(queue_.empty(),
              "DRAM skip with queued work on an idle bus");
    if (cfg_.dramPowerDownIdleCycles == 0)
        return;
    // First cycle in (now, now+n] whose tick counts a powered-down
    // cycle: immediately if already powered down, otherwise once the
    // idle stretch since lastActive_ reaches the threshold.
    const Cycle first =
        poweredDown_ ? now + 1
                     : std::max(now + 1,
                                lastActive_ + cfg_.dramPowerDownIdleCycles);
    if (first > now + n)
        return;
    poweredDown_ = true;
    poweredDownCycles_ += now + n - first + 1;
}

void
DramPartition::visitState(StateVisitor &v)
{
    v.beginSection("dram", 1);
    v.expectMatch(id_, "DRAM partition id");
    v.expectMatch(cap_, "DRAM queue capacity");
    v.field(queue_);
    v.field(openRow_);
    v.field(inService_);
    v.field(busyUntil_);
    v.field(accesses_);
    v.field(rowHits_);
    v.field(queueDelaySum_);
    v.field(lastActive_);
    v.field(poweredDown_);
    v.field(poweredDownCycles_);
    v.endSection();
}

} // namespace equalizer
