#include "memory_system.hh"

namespace equalizer
{

MemorySystem::MemorySystem(const MemConfig &cfg, int num_sms,
                           EnergyModel &energy)
    : cfg_(cfg), energy_(energy), numSms_(num_sms)
{
    for (int s = 0; s < num_sms; ++s) {
        injectQueues_.push_back(
            std::make_unique<BoundedQueue<MemAccess>>(cfg_.smInjectQueueCap));
        texQueues_.push_back(
            std::make_unique<BoundedQueue<MemAccess>>(cfg_.texInjectQueueCap));
        responseQueues_.push_back(std::make_unique<DelayQueue<MemAccess>>(
            cfg_.smResponseQueueCap));
    }
    for (int p = 0; p < cfg_.numPartitions; ++p)
        partitions_.push_back(std::make_unique<L2Partition>(cfg_, p, energy));
}

int
MemorySystem::partitionOf(Addr line_addr) const
{
    return static_cast<int>((line_addr / lineBytes) %
                            static_cast<Addr>(cfg_.numPartitions));
}

void
MemorySystem::tick(Cycle now)
{
    ++tickCount_;
    for (const auto &p : partitions_) {
        p->tick(now);
        dramQueueDepthSum_ += p->dram().queueDepth();
    }

    // --- Request network: move up to nocRequestBwPerCycle transactions
    // from SM injection queues into partition input queues.
    int request_budget = cfg_.nocRequestBwPerCycle;
    for (int scanned = 0; scanned < numSms_ && request_budget > 0; ++scanned) {
        const int sm = (rrSm_ + scanned) % numSms_;
        // The regular (L1 miss/store) path has priority; the texture path
        // fills any leftover slot for this SM.
        for (auto *queue :
             {injectQueues_[static_cast<std::size_t>(sm)].get(),
              texQueues_[static_cast<std::size_t>(sm)].get()}) {
            if (request_budget == 0 || queue->empty())
                continue;
            MemAccess &head = queue->front();
            auto &dest = partitions_[static_cast<std::size_t>(
                                         partitionOf(head.lineAddr))]
                             ->input();
            if (dest.full())
                continue; // head-of-line block for this queue
            MemAccess access = *queue->pop();
            dest.push(access, now + cfg_.nocRequestLatency);
            // A read request is one address flit; a write carries a line
            // (four 32 B data flits + address).
            energy_.record(EnergyEvent::NocFlit, access.write ? 5 : 1);
            --request_budget;
        }
    }
    rrSm_ = (rrSm_ + 1) % numSms_;

    // --- Response network: move up to nocResponseBwPerCycle completed
    // loads from partition outputs into per-SM response queues.
    int response_budget = cfg_.nocResponseBwPerCycle;
    const int nparts = static_cast<int>(partitions_.size());
    for (int scanned = 0; scanned < nparts && response_budget > 0;
         ++scanned) {
        const int p = (rrPartition_ + scanned) % nparts;
        auto &out = partitions_[static_cast<std::size_t>(p)]->output();
        while (response_budget > 0 && out.headReady(now)) {
            const MemAccess &head = out.front();
            auto &dest =
                *responseQueues_[static_cast<std::size_t>(head.sm)];
            if (dest.full())
                break; // head-of-line block for this partition
            MemAccess access = *out.popReady(now);
            dest.push(access, now + cfg_.nocResponseLatency);
            energy_.record(EnergyEvent::NocFlit, 5);
            --response_budget;
        }
    }
    rrPartition_ = (rrPartition_ + 1) % nparts;
}

std::vector<MemAccess>
MemorySystem::drainResponses(SmId sm, Cycle mem_now, int max_n)
{
    std::vector<MemAccess> out;
    auto &queue = *responseQueues_[static_cast<std::size_t>(sm)];
    while (static_cast<int>(out.size()) < max_n) {
        auto access = queue.popReady(mem_now);
        if (!access)
            break;
        out.push_back(*access);
    }
    return out;
}

void
MemorySystem::flushCaches()
{
    for (const auto &p : partitions_)
        p->flush();
}

std::uint64_t
MemorySystem::l2Hits() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->hits();
    return total;
}

std::uint64_t
MemorySystem::l2Misses() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->misses();
    return total;
}

std::uint64_t
MemorySystem::dramAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().accesses();
    return total;
}

std::uint64_t
MemorySystem::dramRowHits() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().rowHits();
    return total;
}

std::uint64_t
MemorySystem::dramPoweredDownCycles() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().poweredDownCycles();
    return total;
}

double
MemorySystem::meanDramQueueDepth() const
{
    const std::uint64_t samples =
        tickCount_ * static_cast<std::uint64_t>(partitions_.size());
    return samples ? static_cast<double>(dramQueueDepthSum_) / samples : 0.0;
}

void
MemorySystem::visitState(StateVisitor &v)
{
    // v2: bounded queues gained their high-water marks.
    v.beginSection("memsys", 2);
    v.expectMatch(numSms_, "SM count");
    v.expectMatch(static_cast<int>(partitions_.size()),
                  "partition count");
    for (auto &q : injectQueues_)
        v.field(*q);
    for (auto &q : texQueues_)
        v.field(*q);
    for (auto &p : partitions_)
        v.field(*p);
    for (auto &q : responseQueues_)
        v.field(*q);
    v.field(rrSm_);
    v.field(rrPartition_);
    v.field(dramQueueDepthSum_);
    v.field(tickCount_);
    v.endSection();
}

} // namespace equalizer
