#include "memory_system.hh"

#include <algorithm>

namespace equalizer
{

MemorySystem::MemorySystem(const MemConfig &cfg, int num_sms,
                           EnergyModel &energy)
    : cfg_(cfg), energy_(energy), numSms_(num_sms)
{
    for (int s = 0; s < num_sms; ++s) {
        injectQueues_.push_back(
            std::make_unique<BoundedQueue<MemAccess>>(cfg_.smInjectQueueCap));
        texQueues_.push_back(
            std::make_unique<BoundedQueue<MemAccess>>(cfg_.texInjectQueueCap));
        responseQueues_.push_back(std::make_unique<DelayQueue<MemAccess>>(
            cfg_.smResponseQueueCap));
    }
    for (int p = 0; p < cfg_.numPartitions; ++p)
        partitions_.push_back(std::make_unique<L2Partition>(cfg_, p, energy));
}

int
MemorySystem::partitionOf(Addr line_addr) const
{
    return static_cast<int>((line_addr / lineBytes) %
                            static_cast<Addr>(cfg_.numPartitions));
}

void
MemorySystem::tick(Cycle now)
{
    ++tickCount_;
    for (const auto &p : partitions_) {
        p->tick(now);
        dramQueueDepthSum_ += p->dram().queueDepth();
    }

    // --- Request network: move up to nocRequestBwPerCycle transactions
    // from SM injection queues into partition input queues.
    int request_budget = cfg_.nocRequestBwPerCycle;
    for (int scanned = 0; scanned < numSms_ && request_budget > 0; ++scanned) {
        const int sm = (rrSm_ + scanned) % numSms_;
        // The regular (L1 miss/store) path has priority; the texture path
        // fills any leftover slot for this SM.
        for (auto *queue :
             {injectQueues_[static_cast<std::size_t>(sm)].get(),
              texQueues_[static_cast<std::size_t>(sm)].get()}) {
            if (request_budget == 0 || queue->empty())
                continue;
            MemAccess &head = queue->front();
            auto &dest = partitions_[static_cast<std::size_t>(
                                         partitionOf(head.lineAddr))]
                             ->input();
            if (dest.full())
                continue; // head-of-line block for this queue
            MemAccess access = *queue->pop();
            dest.push(access, now + cfg_.nocRequestLatency);
            // A read request is one address flit; a write carries a line
            // (four 32 B data flits + address).
            energy_.record(EnergyEvent::NocFlit, access.write ? 5 : 1);
            --request_budget;
        }
    }
    rrSm_ = (rrSm_ + 1) % numSms_;

    // --- Response network: move up to nocResponseBwPerCycle completed
    // loads from partition outputs into per-SM response queues.
    int response_budget = cfg_.nocResponseBwPerCycle;
    const int nparts = static_cast<int>(partitions_.size());
    for (int scanned = 0; scanned < nparts && response_budget > 0;
         ++scanned) {
        const int p = (rrPartition_ + scanned) % nparts;
        auto &out = partitions_[static_cast<std::size_t>(p)]->output();
        while (response_budget > 0 && out.headReady(now)) {
            const MemAccess &head = out.front();
            auto &dest =
                *responseQueues_[static_cast<std::size_t>(head.sm)];
            if (dest.full())
                break; // head-of-line block for this partition
            MemAccess access = *out.popReady(now);
            dest.push(access, now + cfg_.nocResponseLatency);
            energy_.record(EnergyEvent::NocFlit, 5);
            --response_budget;
        }
    }
    rrPartition_ = (rrPartition_ + 1) % nparts;
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle bound = noWakeup;

    // Per-SM response queues. A matured head is consumed by the next SM
    // tick's drainResponses() on the SM clock — invisible to the
    // SM-side stall check — so it vetoes all skipping. An immature head
    // matures at the memory edge of its readyAt cycle; bounding the
    // span there keeps every skipped SM edge strictly before the first
    // tick that could drain it.
    for (const auto &q : responseQueues_) {
        if (q->empty())
            continue;
        const Cycle ready = q->headReadyAt();
        if (ready <= now)
            return now; // hard veto
        bound = std::min(bound, ready);
    }

    for (const auto &p : partitions_) {
        const Cycle b = p->nextEventCycle(now);
        if (b <= next)
            return next;
        bound = std::min(bound, b);
    }

    // Request network: a non-empty injection queue whose head's
    // destination has room transfers next tick. A blocked head stays
    // blocked for the span — its destination only drains on partition
    // progress, which the partition bounds above.
    for (int sm = 0; sm < numSms_; ++sm) {
        for (const auto *queue :
             {injectQueues_[static_cast<std::size_t>(sm)].get(),
              texQueues_[static_cast<std::size_t>(sm)].get()}) {
            if (queue->empty())
                continue;
            const MemAccess &head = queue->front();
            const auto &dest = partitions_[static_cast<std::size_t>(
                                               partitionOf(head.lineAddr))]
                                   ->input();
            if (!dest.full())
                return next;
        }
    }

    // Response network: a matured partition-output head with room in
    // its SM response queue transfers next tick. When the SM queue is
    // full its head is necessarily immature (a mature one hard-vetoed
    // above), so the blockage outlasts any span bounded by that head's
    // readyAt, already folded into `bound`.
    for (const auto &p : partitions_) {
        const auto &out = p->output();
        if (out.empty())
            continue;
        const Cycle ready = out.headReadyAt();
        if (ready > now) {
            bound = std::min(bound, ready);
            continue;
        }
        const MemAccess &head = out.front();
        if (!responseQueues_[static_cast<std::size_t>(head.sm)]->full())
            return next;
    }

    return bound;
}

void
MemorySystem::skipCycles(Cycle now, Cycle n)
{
    if (n == 0)
        return;
    tickCount_ += n;
    std::uint64_t depth_sum = 0;
    for (const auto &p : partitions_) {
        p->skipCycles(now, n);
        depth_sum += p->dram().queueDepth();
    }
    dramQueueDepthSum_ += depth_sum * n;
    rrSm_ = static_cast<int>((static_cast<Cycle>(rrSm_) + n) %
                             static_cast<Cycle>(numSms_));
    rrPartition_ =
        static_cast<int>((static_cast<Cycle>(rrPartition_) + n) %
                         static_cast<Cycle>(partitions_.size()));
}

std::vector<MemAccess>
MemorySystem::drainResponses(SmId sm, Cycle mem_now, int max_n)
{
    std::vector<MemAccess> out;
    auto &queue = *responseQueues_[static_cast<std::size_t>(sm)];
    while (static_cast<int>(out.size()) < max_n) {
        auto access = queue.popReady(mem_now);
        if (!access)
            break;
        out.push_back(*access);
    }
    return out;
}

void
MemorySystem::flushCaches()
{
    for (const auto &p : partitions_)
        p->flush();
}

std::uint64_t
MemorySystem::l2Hits() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->hits();
    return total;
}

std::uint64_t
MemorySystem::l2Misses() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->misses();
    return total;
}

std::uint64_t
MemorySystem::dramAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().accesses();
    return total;
}

std::uint64_t
MemorySystem::dramRowHits() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().rowHits();
    return total;
}

std::uint64_t
MemorySystem::dramPoweredDownCycles() const
{
    std::uint64_t total = 0;
    for (const auto &p : partitions_)
        total += p->dram().poweredDownCycles();
    return total;
}

double
MemorySystem::meanDramQueueDepth() const
{
    const std::uint64_t samples =
        tickCount_ * static_cast<std::uint64_t>(partitions_.size());
    return samples ? static_cast<double>(dramQueueDepthSum_) / samples : 0.0;
}

void
MemorySystem::visitState(StateVisitor &v)
{
    // v2: bounded queues gained their high-water marks.
    v.beginSection("memsys", 2);
    v.expectMatch(numSms_, "SM count");
    v.expectMatch(static_cast<int>(partitions_.size()),
                  "partition count");
    for (auto &q : injectQueues_)
        v.field(*q);
    for (auto &q : texQueues_)
        v.field(*q);
    for (auto &p : partitions_)
        v.field(*p);
    for (auto &q : responseQueues_)
        v.field(*q);
    v.field(rrSm_);
    v.field(rrPartition_);
    v.field(dramQueueDepthSum_);
    v.field(tickCount_);
    v.endSection();
}

} // namespace equalizer
