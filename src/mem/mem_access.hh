/**
 * @file
 * The memory transaction unit exchanged between SMs and the memory system.
 */

#ifndef EQ_MEM_MEM_ACCESS_HH
#define EQ_MEM_MEM_ACCESS_HH

#include "common/types.hh"

namespace equalizer
{

/** Bytes per cache line / DRAM burst throughout the model. */
inline constexpr Addr lineBytes = 128;

/** Align an address down to its line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~(lineBytes - 1);
}

/**
 * One 128-byte memory transaction.
 *
 * Produced by the LSU coalescer (one warp load/store expands into one or
 * more of these) and routed L1 -> NoC -> L2 -> DRAM and back.
 */
struct MemAccess
{
    Addr lineAddr = 0;   ///< line-aligned address
    SmId sm = 0;         ///< issuing SM (for the response route)
    WarpId warp = 0;     ///< warp to wake when data returns
    bool write = false;  ///< store (no response needed)
    bool texture = false;///< texture path: deep buffering, no LSU pressure
};

} // namespace equalizer

#endif // EQ_MEM_MEM_ACCESS_HH
