/**
 * @file
 * Miss-status holding registers for the L1 data cache.
 */

#ifndef EQ_MEM_MSHR_HH
#define EQ_MEM_MSHR_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * A fixed-capacity MSHR file. Each entry tracks one outstanding line and
 * the warps merged onto it.
 */
class MshrFile
{
  public:
    /** Outcome of trying to record a miss. */
    enum class Outcome
    {
        NewMiss,   ///< allocated a fresh entry; send a request downstream
        Merged,    ///< piggybacked on an in-flight entry; no new request
        NoEntry,   ///< MSHR file full
        NoMerge,   ///< entry exists but its merge list is full
    };

    /**
     * @param entries Maximum outstanding lines.
     * @param max_merges Maximum warps merged per line (including the
     *        original requester).
     */
    MshrFile(int entries, int max_merges)
        : entries_(entries), maxMerges_(max_merges)
    {
    }

    /** Try to record a miss for @p line_addr by @p warp. */
    Outcome
    allocate(Addr line_addr, WarpId warp)
    {
        auto it = pending_.find(line_addr);
        if (it != pending_.end()) {
            if (static_cast<int>(it->second.size()) >= maxMerges_)
                return Outcome::NoMerge;
            it->second.push_back(warp);
            return Outcome::Merged;
        }
        if (static_cast<int>(pending_.size()) >= entries_)
            return Outcome::NoEntry;
        pending_[line_addr].push_back(warp);
        highWater_ =
            std::max(highWater_, static_cast<int>(pending_.size()));
        return Outcome::NewMiss;
    }

    /**
     * Retire the entry for a filled line.
     * @return The warps waiting on it (empty if the line was unknown).
     */
    std::vector<WarpId>
    fill(Addr line_addr)
    {
        auto it = pending_.find(line_addr);
        if (it == pending_.end())
            return {};
        std::vector<WarpId> waiters = std::move(it->second);
        pending_.erase(it);
        return waiters;
    }

    bool full() const
    {
        return static_cast<int>(pending_.size()) >= entries_;
    }

    bool
    tracking(Addr line_addr) const
    {
        return pending_.count(line_addr) > 0;
    }

    /**
     * Whether a merge onto the tracked entry for @p line_addr would be
     * rejected (merge list at capacity). The line must be tracked.
     */
    bool
    mergeListFull(Addr line_addr) const
    {
        auto it = pending_.find(line_addr);
        EQ_ASSERT(it != pending_.end(),
                  "mergeListFull() on an untracked line");
        return static_cast<int>(it->second.size()) >= maxMerges_;
    }

    int outstanding() const { return static_cast<int>(pending_.size()); }

    /**
     * Most entries outstanding at once since the last call; resets to
     * the current occupancy. Sampled per tracer epoch.
     */
    int
    takeHighWater()
    {
        const int hw = highWater_;
        highWater_ = outstanding();
        return hw;
    }

    int capacity() const { return entries_; }

    void clear() { pending_.clear(); }

    /**
     * Serialize outstanding misses. The hash map is written in sorted
     * line-address order so the byte stream is canonical regardless of
     * the map's iteration order.
     */
    void
    visitState(StateVisitor &v)
    {
        // Own checksummed frame (v1 adds the high-water mark) so a
        // standalone MSHR payload detects corruption too.
        v.beginSection("mshr", 1);
        v.expectMatch(entries_, "MSHR entry count");
        v.expectMatch(maxMerges_, "MSHR merge limit");
        v.field(highWater_);
        std::uint64_t n = pending_.size();
        v.field(n);
        if (v.saving()) {
            std::vector<Addr> addrs;
            addrs.reserve(pending_.size());
            for (const auto &[addr, waiters] : pending_)
                addrs.push_back(addr);
            std::sort(addrs.begin(), addrs.end());
            for (Addr addr : addrs) {
                v.field(addr);
                v.field(pending_[addr]);
            }
        } else {
            pending_.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                Addr addr = 0;
                v.field(addr);
                v.field(pending_[addr]);
            }
        }
        v.endSection();
    }

  private:
    int entries_;
    int maxMerges_;
    int highWater_ = 0;
    std::unordered_map<Addr, std::vector<WarpId>> pending_;
};

} // namespace equalizer

#endif // EQ_MEM_MSHR_HH
