/**
 * @file
 * Per-SM L1 data cache: set-associative LRU tags, MSHRs, write-through
 * no-allocate stores, and a bounded miss path into the memory system.
 */

#ifndef EQ_MEM_L1_CACHE_HH
#define EQ_MEM_L1_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "mem/mshr.hh"
#include "mem/queues.hh"
#include "mem/tag_array.hh"
#include "power/energy_model.hh"

namespace equalizer
{

/**
 * L1 data cache of one SM.
 *
 * Timing is handled by the caller (the LSU schedules hit wakeups after
 * l1HitLatency; misses wake when fill() is called by the memory system).
 * The cache itself only decides hit/miss/blocked and manages MSHRs.
 */
class L1Cache
{
  public:
    /** Outcome of one coalesced transaction presented to the cache. */
    enum class Result
    {
        Hit,        ///< data available after the hit latency
        MissIssued, ///< new MSHR allocated, request sent downstream
        MissMerged, ///< merged onto an in-flight MSHR
        Blocked,    ///< MSHR/queue resources exhausted; caller must retry
    };

    /** Invoked on every eviction with (line address, owner warp). */
    using EvictionHook = std::function<void(Addr, int)>;

    /** Invoked on every load miss with (warp, line address). */
    using MissHook = std::function<void(WarpId, Addr)>;

    /**
     * @param cfg Hierarchy sizing.
     * @param sm Owning SM id (stamped into downstream requests).
     * @param miss_queue Bounded injection FIFO toward the interconnect.
     * @param energy Energy sink for access events.
     */
    L1Cache(const MemConfig &cfg, SmId sm,
            BoundedQueue<MemAccess> &miss_queue, EnergyModel &energy);

    /**
     * Present one transaction. Loads probe the tags and may allocate an
     * MSHR; stores are write-through no-allocate and only need queue
     * space downstream.
     */
    Result access(WarpId warp, Addr line_addr, bool write);

    /**
     * Install a returning line and retire its MSHR.
     * @return Warps whose data arrived with this fill.
     */
    std::vector<WarpId> fill(Addr line_addr);

    /** Probe tags without touching replacement state. */
    bool probe(Addr line_addr) const { return tags_.probe(line_addr); }

    /**
     * Whether access() would return Blocked, without any side effect
     * (no energy, no counters, no LRU touch). The fast path's per-SM
     * stall check uses this to confirm the LSU head cannot progress.
     */
    bool accessWouldBlock(Addr line_addr, bool write) const;

    /**
     * Replay @p n blocked retries of the head transaction: the slow
     * path burns one L1Access energy event and one blocked cycle per
     * retry, with no other state change. Deposits energy one event at
     * a time so the joules match the per-cycle adds bit-for-bit.
     */
    void skipBlockedCycles(Cycle n);

    /** Register a hook observing evictions (used by CCWS). */
    void
    setEvictionHook(EvictionHook hook)
    {
        evictionHook_ = std::move(hook);
    }

    /** Register a hook observing load misses (used by CCWS). */
    void setMissHook(MissHook hook) { missHook_ = std::move(hook); }

    /** Drop all lines and outstanding-miss state (kernel boundary). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t blocked() const { return blocked_; }

    /** Hit rate over load accesses; 0 when no loads were seen. */
    double hitRate() const
    {
        const std::uint64_t loads = hits_ + misses_;
        return loads ? static_cast<double>(hits_) / loads : 0.0;
    }

    int mshrOutstanding() const { return mshrs_.outstanding(); }

    /** MSHR occupancy high-water since the last call (trace epochs). */
    int takeMshrHighWater() { return mshrs_.takeHighWater(); }

    /**
     * Serialize tags, MSHRs and counters. The eviction/miss hooks are
     * std::functions owned by whoever installed them (CCWS) and are
     * reinstalled by that owner after a restore, never serialized.
     */
    void
    visitState(StateVisitor &v)
    {
        // v2: the MSHR file gained its high-water mark.
        v.beginSection("l1", 2);
        v.field(tags_);
        v.field(mshrs_);
        v.field(hits_);
        v.field(misses_);
        v.field(writes_);
        v.field(blocked_);
        v.endSection();
    }

  private:
    SmId sm_;
    TagArray tags_;
    MshrFile mshrs_;
    BoundedQueue<MemAccess> &missQueue_;
    EnergyModel &energy_;
    EvictionHook evictionHook_;
    MissHook missHook_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t blocked_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_L1_CACHE_HH
