#include "l2_cache.hh"

#include <algorithm>

namespace equalizer
{

L2Partition::L2Partition(const MemConfig &cfg, int partition_id,
                         EnergyModel &energy)
    : cfg_(cfg), energy_(energy), tags_(cfg.l2SetsPerPartition, cfg.l2Ways),
      input_(cfg.partitionInQueueCap),
      output_(/*capacity=*/cfg.partitionInQueueCap),
      dram_(cfg, partition_id, energy)
{
}

void
L2Partition::installLine(Addr line_addr, bool dirty, Cycle now)
{
    auto evicted = tags_.insert(line_addr);
    if (dirty)
        dirty_.insert(line_addr);
    if (evicted) {
        auto it = dirty_.find(evicted->lineAddr);
        if (it != dirty_.end()) {
            dirty_.erase(it);
            ++writebacks_;
            // Best-effort writeback: occupy DRAM when there is room,
            // otherwise account the energy only. This cannot deadlock
            // the request path and slightly under-counts writeback
            // occupancy under extreme pressure (documented in DESIGN.md).
            MemAccess wb;
            wb.lineAddr = evicted->lineAddr;
            wb.write = true;
            wb.sm = -1;
            if (!dram_.submit(wb, now))
                energy_.record(EnergyEvent::DramAccess);
        }
    }
}

void
L2Partition::handleRequest(Cycle now)
{
    if (!input_.headReady(now))
        return;

    MemAccess &head = input_.front();
    energy_.record(EnergyEvent::L2Access);

    if (head.write) {
        // Write-allocate, write-back.
        if (tags_.lookup(head.lineAddr)) {
            ++hits_;
        } else {
            ++misses_;
            installLine(head.lineAddr, /*dirty=*/true, now);
        }
        dirty_.insert(head.lineAddr);
        input_.popReady(now);
        return;
    }

    if (tags_.lookup(head.lineAddr)) {
        if (output_.full())
            return; // retry next cycle
        ++hits_;
        auto access = *input_.popReady(now);
        output_.push(access, now + cfg_.l2HitLatency);
        return;
    }

    // Load miss: forward to DRAM; block the head while DRAM is full.
    if (dram_.full())
        return;
    ++misses_;
    auto access = *input_.popReady(now);
    dram_.submit(access, now);
}

void
L2Partition::tick(Cycle now)
{
    // DRAM completion path first so its output slot check is accurate.
    if (!output_.full()) {
        if (auto done = dram_.tick(now)) {
            if (done->write) {
                // A drained writeback; nothing returns to the SMs.
            } else {
                installLine(done->lineAddr, /*dirty=*/false, now);
                output_.push(*done, now + cfg_.l2HitLatency);
            }
        }
    }

    handleRequest(now);
}

void
L2Partition::flush()
{
    tags_.invalidateAll();
    dirty_.clear();
}

void
L2Partition::visitState(StateVisitor &v)
{
    v.beginSection("l2", 1);
    v.field(tags_);
    v.field(input_);
    v.field(output_);
    v.field(dram_);
    // The dirty set is hash-ordered; write it sorted so the stream is
    // canonical.
    std::vector<Addr> addrs(dirty_.begin(), dirty_.end());
    std::sort(addrs.begin(), addrs.end());
    v.field(addrs);
    if (!v.saving()) {
        dirty_.clear();
        dirty_.insert(addrs.begin(), addrs.end());
    }
    v.field(hits_);
    v.field(misses_);
    v.field(writebacks_);
    v.endSection();
}

} // namespace equalizer
