#include "l2_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

L2Partition::L2Partition(const MemConfig &cfg, int partition_id,
                         EnergyModel &energy)
    : cfg_(cfg), energy_(energy), tags_(cfg.l2SetsPerPartition, cfg.l2Ways),
      input_(cfg.partitionInQueueCap),
      output_(/*capacity=*/cfg.partitionInQueueCap),
      dram_(cfg, partition_id, energy)
{
}

void
L2Partition::installLine(Addr line_addr, bool dirty, Cycle now)
{
    auto evicted = tags_.insert(line_addr);
    if (dirty)
        dirty_.insert(line_addr);
    if (evicted) {
        auto it = dirty_.find(evicted->lineAddr);
        if (it != dirty_.end()) {
            dirty_.erase(it);
            ++writebacks_;
            // Best-effort writeback: occupy DRAM when there is room,
            // otherwise account the energy only. This cannot deadlock
            // the request path and slightly under-counts writeback
            // occupancy under extreme pressure (documented in DESIGN.md).
            MemAccess wb;
            wb.lineAddr = evicted->lineAddr;
            wb.write = true;
            wb.sm = -1;
            if (!dram_.submit(wb, now))
                energy_.record(EnergyEvent::DramAccess);
        }
    }
}

void
L2Partition::handleRequest(Cycle now)
{
    if (!input_.headReady(now))
        return;

    MemAccess &head = input_.front();
    energy_.record(EnergyEvent::L2Access);

    if (head.write) {
        // Write-allocate, write-back.
        if (tags_.lookup(head.lineAddr)) {
            ++hits_;
        } else {
            ++misses_;
            installLine(head.lineAddr, /*dirty=*/true, now);
        }
        dirty_.insert(head.lineAddr);
        input_.popReady(now);
        return;
    }

    if (tags_.lookup(head.lineAddr)) {
        if (output_.full())
            return; // retry next cycle
        ++hits_;
        auto access = *input_.popReady(now);
        output_.push(access, now + cfg_.l2HitLatency);
        return;
    }

    // Load miss: forward to DRAM; block the head while DRAM is full.
    if (dram_.full())
        return;
    ++misses_;
    auto access = *input_.popReady(now);
    dram_.submit(access, now);
}

void
L2Partition::tick(Cycle now)
{
    // DRAM completion path first so its output slot check is accurate.
    if (!output_.full()) {
        if (auto done = dram_.tick(now)) {
            if (done->write) {
                // A drained writeback; nothing returns to the SMs.
            } else {
                installLine(done->lineAddr, /*dirty=*/false, now);
                output_.push(*done, now + cfg_.l2HitLatency);
            }
        }
    }

    handleRequest(now);
}

Cycle
L2Partition::nextEventCycle(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle bound = noWakeup;

    // DRAM service path: tick() runs it only while the output queue has
    // room. When the output is full the DRAM is frozen entirely, and
    // the output head's drain (which would unfreeze it) is bounded by
    // the response network at the MemorySystem level.
    if (!output_.full()) {
        if (dram_.inService())
            bound = std::min(bound, std::max(dram_.busyUntil(), next));
        else if (dram_.queueDepth() > 0)
            return next; // would start a burst next tick
    }

    if (!input_.empty()) {
        const Cycle ready = input_.headReadyAt();
        if (ready > now)
            return std::min(bound, std::max(ready, next));
        // Ready head: every tick retries it. That is progress unless
        // the head is blocked by a condition that cannot clear within
        // the span (output stays full, DRAM drain bounded above).
        const MemAccess &head = input_.front();
        if (head.write)
            return next;
        if (tags_.probe(head.lineAddr)) {
            if (!output_.full())
                return next;
        } else {
            if (!dram_.full())
                return next;
        }
    }
    return bound;
}

void
L2Partition::skipCycles(Cycle now, Cycle n)
{
    if (n == 0)
        return;

    if (!output_.full())
        dram_.skipIdleCycles(now, n);

    if (!input_.empty() && input_.headReadyAt() <= now) {
        // Blocked ready head: tick() retried it every skipped cycle,
        // costing one L2 access lookup per retry. Hit/miss counters do
        // not move on retries; a blocked hit touches LRU state each
        // time (same line, owner untouched).
        const MemAccess &head = input_.front();
        EQ_ASSERT(!head.write, "L2 skip with a ready store at the head");
        energy_.recordRepeated(EnergyEvent::L2Access, n);
        if (tags_.probe(head.lineAddr)) {
            EQ_ASSERT(output_.full(),
                      "L2 skip with a serviceable load hit at the head");
            tags_.bulkTouch(head.lineAddr, n);
        } else {
            EQ_ASSERT(dram_.full(),
                      "L2 skip with a forwardable load miss at the head");
        }
    }
}

void
L2Partition::flush()
{
    tags_.invalidateAll();
    dirty_.clear();
}

void
L2Partition::visitState(StateVisitor &v)
{
    v.beginSection("l2", 1);
    v.field(tags_);
    v.field(input_);
    v.field(output_);
    v.field(dram_);
    // The dirty set is hash-ordered; write it sorted so the stream is
    // canonical.
    std::vector<Addr> addrs(dirty_.begin(), dirty_.end());
    std::sort(addrs.begin(), addrs.end());
    v.field(addrs);
    if (!v.saving()) {
        dirty_.clear();
        dirty_.insert(addrs.begin(), addrs.end());
    }
    v.field(hits_);
    v.field(misses_);
    v.field(writebacks_);
    v.endSection();
}

} // namespace equalizer
