/**
 * @file
 * The GPU-wide memory system: per-SM injection queues, a bandwidth- and
 * latency-limited interconnect, banked L2 partitions and GDDR5-style DRAM
 * channels, plus the response network back to the SMs.
 */

#ifndef EQ_MEM_MEMORY_SYSTEM_HH
#define EQ_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/l2_cache.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "mem/queues.hh"
#include "power/energy_model.hh"

namespace equalizer
{

/**
 * Everything downstream of the L1s, ticked on the memory clock domain.
 *
 * SM-side producers push into per-SM bounded injection queues (the L1
 * miss path and the texture path); the response network delivers
 * completed loads into per-SM response queues that the SMs drain on
 * their own clock. All internal movement obeys finite buffers, so
 * saturation propagates back to the injection queues, which is the
 * back-pressure signal the LSU (and hence Equalizer's X_mem counter)
 * observes.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, int num_sms, EnergyModel &energy);

    /** L1-miss/store injection FIFO of one SM. */
    BoundedQueue<MemAccess> &smInjectQueue(SmId sm)
    {
        return *injectQueues_[static_cast<std::size_t>(sm)];
    }

    /** Texture-path injection FIFO of one SM (deep, rarely full). */
    BoundedQueue<MemAccess> &texInjectQueue(SmId sm)
    {
        return *texQueues_[static_cast<std::size_t>(sm)];
    }

    /** Advance the memory system by one memory-domain cycle. */
    void tick(Cycle now);

    // --- Fast-path support (docs/FAST_PATH.md).

    /**
     * Earliest memory cycle at which anything in the memory system
     * might make progress. Three regimes:
     *  - @p now: hard veto. A matured response sits at the head of a
     *    per-SM response queue; SM ticks consume those on the SM clock,
     *    outside this subsystem's view, so no cycle — SM or memory —
     *    may be skipped.
     *  - @p now + 1: the very next memory tick moves work (partition
     *    progress or interconnect transfer); memory cannot skip, but SM
     *    edges before that memory edge are unaffected by it.
     *  - a later cycle / noWakeup: every memory tick strictly below the
     *    bound is a verified no-progress tick, and no SM tick before
     *    the bound's memory edge can observe a memory-side change.
     * Pure probe.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replay @p n no-progress tick(now+1 .. now+n) calls analytically:
     * tick count, DRAM queue-depth sampling (depths are frozen over a
     * verified span), per-partition idle accounting and blocked-head
     * retries, and the round-robin arbitration pointers that advance
     * every cycle regardless of traffic.
     */
    void skipCycles(Cycle now, Cycle n);

    /**
     * Drain up to @p max_n completed loads destined for @p sm whose
     * network delay has elapsed by memory cycle @p mem_now. Called from
     * the SM clock domain (the caller supplies the memory clock).
     */
    std::vector<MemAccess> drainResponses(SmId sm, Cycle mem_now, int max_n);

    /**
     * Whether drainResponses(sm, mem_now, ...) would return anything:
     * the SM's response queue holds a head whose network delay has
     * elapsed. Pure probe; the per-SM fast tick checks it every cycle
     * (it is the one memory-side event that can unstall a cached-stall
     * SM). Safe to call from the parallel SM phase: only SM @p sm reads
     * its queue there, and pushes happen on memory ticks.
     */
    bool
    hasDrainableResponse(SmId sm, Cycle mem_now) const
    {
        return responseQueues_[static_cast<std::size_t>(sm)]->headReady(
            mem_now);
    }

    /** Invalidate all L2 partitions (kernel boundary). */
    void flushCaches();

    /** Aggregate stats over partitions. */
    std::uint64_t l2Hits() const;
    std::uint64_t l2Misses() const;
    std::uint64_t dramAccesses() const;
    std::uint64_t dramRowHits() const;

    /** Summed powered-down cycles across all DRAM partitions. */
    std::uint64_t dramPoweredDownCycles() const;

    /** Mean occupancy observed on DRAM queues (rough load indicator). */
    double meanDramQueueDepth() const;

    int numPartitions() const { return static_cast<int>(partitions_.size()); }

    L2Partition &partition(int i)
    {
        return *partitions_[static_cast<std::size_t>(i)];
    }

    void visitState(StateVisitor &v);

  private:
    int partitionOf(Addr line_addr) const;

    const MemConfig cfg_;
    EnergyModel &energy_;
    int numSms_;

    std::vector<std::unique_ptr<BoundedQueue<MemAccess>>> injectQueues_;
    std::vector<std::unique_ptr<BoundedQueue<MemAccess>>> texQueues_;
    std::vector<std::unique_ptr<L2Partition>> partitions_;

    /// Response network: one delayed FIFO per SM.
    std::vector<std::unique_ptr<DelayQueue<MemAccess>>> responseQueues_;

    /// Round-robin pointers for fair arbitration.
    int rrSm_ = 0;
    int rrPartition_ = 0;

    std::uint64_t dramQueueDepthSum_ = 0;
    std::uint64_t tickCount_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_MEMORY_SYSTEM_HH
