/**
 * @file
 * The GPU-wide memory system: per-SM injection queues, a bandwidth- and
 * latency-limited interconnect, banked L2 partitions and GDDR5-style DRAM
 * channels, plus the response network back to the SMs.
 */

#ifndef EQ_MEM_MEMORY_SYSTEM_HH
#define EQ_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/l2_cache.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "mem/queues.hh"
#include "power/energy_model.hh"

namespace equalizer
{

/**
 * Everything downstream of the L1s, ticked on the memory clock domain.
 *
 * SM-side producers push into per-SM bounded injection queues (the L1
 * miss path and the texture path); the response network delivers
 * completed loads into per-SM response queues that the SMs drain on
 * their own clock. All internal movement obeys finite buffers, so
 * saturation propagates back to the injection queues, which is the
 * back-pressure signal the LSU (and hence Equalizer's X_mem counter)
 * observes.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, int num_sms, EnergyModel &energy);

    /** L1-miss/store injection FIFO of one SM. */
    BoundedQueue<MemAccess> &smInjectQueue(SmId sm)
    {
        return *injectQueues_[static_cast<std::size_t>(sm)];
    }

    /** Texture-path injection FIFO of one SM (deep, rarely full). */
    BoundedQueue<MemAccess> &texInjectQueue(SmId sm)
    {
        return *texQueues_[static_cast<std::size_t>(sm)];
    }

    /** Advance the memory system by one memory-domain cycle. */
    void tick(Cycle now);

    /**
     * Drain up to @p max_n completed loads destined for @p sm whose
     * network delay has elapsed by memory cycle @p mem_now. Called from
     * the SM clock domain (the caller supplies the memory clock).
     */
    std::vector<MemAccess> drainResponses(SmId sm, Cycle mem_now, int max_n);

    /** Invalidate all L2 partitions (kernel boundary). */
    void flushCaches();

    /** Aggregate stats over partitions. */
    std::uint64_t l2Hits() const;
    std::uint64_t l2Misses() const;
    std::uint64_t dramAccesses() const;
    std::uint64_t dramRowHits() const;

    /** Summed powered-down cycles across all DRAM partitions. */
    std::uint64_t dramPoweredDownCycles() const;

    /** Mean occupancy observed on DRAM queues (rough load indicator). */
    double meanDramQueueDepth() const;

    int numPartitions() const { return static_cast<int>(partitions_.size()); }

    L2Partition &partition(int i)
    {
        return *partitions_[static_cast<std::size_t>(i)];
    }

    void visitState(StateVisitor &v);

  private:
    int partitionOf(Addr line_addr) const;

    const MemConfig cfg_;
    EnergyModel &energy_;
    int numSms_;

    std::vector<std::unique_ptr<BoundedQueue<MemAccess>>> injectQueues_;
    std::vector<std::unique_ptr<BoundedQueue<MemAccess>>> texQueues_;
    std::vector<std::unique_ptr<L2Partition>> partitions_;

    /// Response network: one delayed FIFO per SM.
    std::vector<std::unique_ptr<DelayQueue<MemAccess>>> responseQueues_;

    /// Round-robin pointers for fair arbitration.
    int rrSm_ = 0;
    int rrPartition_ = 0;

    std::uint64_t dramQueueDepthSum_ = 0;
    std::uint64_t tickCount_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_MEMORY_SYSTEM_HH
