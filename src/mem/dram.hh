/**
 * @file
 * A GDDR5-style DRAM partition: banked open-row timing with FR-FCFS
 * scheduling and per-command energy events.
 */

#ifndef EQ_MEM_DRAM_HH
#define EQ_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/mem_access.hh"
#include "mem/mem_config.hh"
#include "power/energy_model.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * One DRAM partition (channel). The data bus services one 128 B burst at
 * a time; a row hit occupies the bus for dramRowHitCycles, a row miss for
 * dramRowMissCycles (activate+precharge folded in). The scheduler is
 * FR-FCFS: the oldest row-hit request wins, else the oldest request.
 *
 * All timing is in memory-domain cycles, so DVFS on the memory domain
 * rescales the delivered bandwidth automatically.
 */
class DramPartition
{
  public:
    DramPartition(const MemConfig &cfg, int partition_id,
                  EnergyModel &energy);

    /** Whether the input queue can take another request. */
    bool full() const { return queue_.size() >= cap_; }

    /** Enqueue a request at memory cycle @p now. @return false when full. */
    bool submit(const MemAccess &access, Cycle now);

    /**
     * Advance one memory cycle.
     * @return A completed access, if one finished this cycle.
     */
    std::optional<MemAccess> tick(Cycle now);

    std::size_t queueDepth() const { return queue_.size(); }

    /** Whether a request currently occupies the data bus. */
    bool inService() const { return inService_.has_value(); }

    /** Cycle the in-service burst completes (valid while inService()). */
    Cycle busyUntil() const { return busyUntil_; }

    /**
     * Replay @p n no-progress tick(now+1 .. now+n) calls analytically.
     * Valid only when the span is verified quiet: either a burst is in
     * service whose completion falls after the span (each tick is then
     * a strict no-op), or the partition is idle with an empty queue (the
     * ticks only run the power-down accounting, which is integrated in
     * closed form). An idle bus with queued work is fatal — that tick
     * would start a burst and must run on the slow path.
     */
    void skipIdleCycles(Cycle now, Cycle n);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t rowHits() const { return rowHits_; }

    /** Memory cycles spent in the powered-down interface state. */
    std::uint64_t poweredDownCycles() const { return poweredDownCycles_; }

    /** Whether the partition interface is currently powered down. */
    bool poweredDown() const { return poweredDown_; }

    /** Average queueing delay experienced by completed requests. */
    double
    meanQueueDelay() const
    {
        return accesses_ ? static_cast<double>(queueDelaySum_) / accesses_
                         : 0.0;
    }

    void visitState(StateVisitor &v);

  private:
    struct Pending
    {
        MemAccess access;
        Cycle enqueued;
    };

    /** Bank and row decode for a line within this partition. */
    int bankOf(Addr line_addr) const;
    std::uint64_t rowOf(Addr line_addr) const;

    const MemConfig &cfg_;
    int id_;
    EnergyModel &energy_;
    std::size_t cap_;

    std::deque<Pending> queue_;
    std::vector<std::int64_t> openRow_; ///< per bank; -1 when closed

    /// Request currently occupying the data bus (if any).
    std::optional<Pending> inService_;
    Cycle busyUntil_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t queueDelaySum_ = 0;

    Cycle lastActive_ = 0;
    bool poweredDown_ = false;
    std::uint64_t poweredDownCycles_ = 0;
};

} // namespace equalizer

#endif // EQ_MEM_DRAM_HH
