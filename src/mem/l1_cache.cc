#include "l1_cache.hh"

namespace equalizer
{

L1Cache::L1Cache(const MemConfig &cfg, SmId sm,
                 BoundedQueue<MemAccess> &miss_queue, EnergyModel &energy)
    : sm_(sm), tags_(cfg.l1Sets, cfg.l1Ways),
      mshrs_(cfg.l1MshrEntries, cfg.l1MaxMerges), missQueue_(miss_queue),
      energy_(energy)
{
    energy_.ensureSmShards(sm_ + 1);
}

L1Cache::Result
L1Cache::access(WarpId warp, Addr line_addr, bool write)
{
    energy_.record(sm_, EnergyEvent::L1Access);

    if (write) {
        // Write-through, no-allocate: stores only need room downstream.
        if (missQueue_.full()) {
            ++blocked_;
            return Result::Blocked;
        }
        ++writes_;
        // Keep a present line coherent-ish by touching it.
        tags_.lookup(line_addr, warp);
        missQueue_.push(MemAccess{line_addr, sm_, warp, /*write=*/true,
                                  /*texture=*/false});
        return Result::Hit; // stores never stall the warp
    }

    if (tags_.lookup(line_addr, warp)) {
        ++hits_;
        return Result::Hit;
    }

    // Secondary miss: merge without consuming downstream bandwidth.
    if (mshrs_.tracking(line_addr)) {
        switch (mshrs_.allocate(line_addr, warp)) {
          case MshrFile::Outcome::Merged:
            ++misses_;
            if (missHook_)
                missHook_(warp, line_addr);
            return Result::MissMerged;
          default:
            ++blocked_;
            return Result::Blocked; // merge list full
        }
    }

    // Primary miss: needs both an MSHR entry and queue space, checked
    // before any state is mutated so a rejection has no side effects.
    if (mshrs_.full() || missQueue_.full()) {
        ++blocked_;
        return Result::Blocked;
    }
    const auto outcome = mshrs_.allocate(line_addr, warp);
    EQ_ASSERT(outcome == MshrFile::Outcome::NewMiss,
              "primary miss allocation must succeed after the full check");
    missQueue_.push(MemAccess{line_addr, sm_, warp, /*write=*/false,
                              /*texture=*/false});
    ++misses_;
    if (missHook_)
        missHook_(warp, line_addr);
    return Result::MissIssued;
}

bool
L1Cache::accessWouldBlock(Addr line_addr, bool write) const
{
    if (write)
        return missQueue_.full();
    if (tags_.probe(line_addr))
        return false;
    if (mshrs_.tracking(line_addr))
        return mshrs_.mergeListFull(line_addr);
    return mshrs_.full() || missQueue_.full();
}

void
L1Cache::skipBlockedCycles(Cycle n)
{
    energy_.recordRepeated(sm_, EnergyEvent::L1Access, n);
    blocked_ += n;
}

std::vector<WarpId>
L1Cache::fill(Addr line_addr)
{
    std::vector<WarpId> waiters = mshrs_.fill(line_addr);
    // Attribute the incoming line to its original requester so eviction
    // hooks (CCWS) can credit lost locality to the right warp.
    const int owner = waiters.empty() ? -1 : waiters.front();
    auto evicted = tags_.insert(line_addr, owner);
    if (evicted && evictionHook_)
        evictionHook_(evicted->lineAddr, evicted->owner);
    return waiters;
}

void
L1Cache::flush()
{
    tags_.invalidateAll();
    mshrs_.clear();
}

} // namespace equalizer
