/**
 * @file
 * SchedulerCore: the reentrant, externally-steppable run loop.
 *
 * The monolithic run-to-completion loop that used to live inside
 * GpuTop::runKernel()/runTenants() is factored out here so external
 * drivers (the request-serving frontend in src/serve/, tests, future
 * schedulers) can advance the device by bounded quanta and regain
 * control between them. The loop body is unchanged — pausing between
 * clock edges is state-neutral, so a run advanced via any sequence of
 * step() calls is bit-identical to a single run-to-completion call at
 * any threads= setting, with fast-path skips clamped to the quantum
 * boundary and tracing/checkpointing behaviour untouched.
 *
 * All mutable run state stays inside GpuTop (its RunContext is part of
 * the checkpoint image); a SchedulerCore is a cheap, stateless-ish
 * handle that can be recreated at will — e.g. after loadStateBuffer()
 * — and re-entered via the adopt*() calls.
 */

#ifndef EQ_GPU_SCHEDULER_CORE_HH
#define EQ_GPU_SCHEDULER_CORE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/metrics.hh"

namespace equalizer
{

class GpuTop;
class KernelLaunch;

/** What a bounded step() observed when it returned. */
enum class StepStatus
{
    Running,      ///< quantum exhausted; work remains
    Drained,      ///< every invocation completed; call finish()
    PreemptPoint, ///< paused at a requested preemption point
};

const char *toString(StepStatus status);

class SchedulerCore
{
  public:
    explicit SchedulerCore(GpuTop &gpu) : gpu_(gpu) {}

    /**
     * Bind @p kernel on the implicit whole-device tenant and arm the
     * run — guards, invocation creation, controller launch hook and
     * initial block distribution, exactly as the legacy
     * GpuTop::runKernel() preamble. Follow with step()/run().
     */
    void launchKernel(const KernelLaunch &kernel,
                      Cycle max_sm_cycles = 2'000'000'000ULL);

    /**
     * Bind every tenant's queue head and arm a multi-tenant run,
     * exactly as the legacy GpuTop::runTenants() preamble.
     */
    void launchTenants(Cycle max_sm_cycles = 2'000'000'000ULL,
                       const std::string &label = "");

    /**
     * Re-enter a run restored by loadStateBuffer(): validate that the
     * image is mid-kernel and rebind the (non-serialized) launch
     * pointer, as the legacy GpuTop::resumeKernel() preamble.
     */
    void adoptResumedKernel(const KernelLaunch &kernel);

    /** Multi-invocation flavour of adoptResumedKernel(). */
    void
    adoptResumedTenants(const std::vector<const KernelLaunch *> &kernels);

    /**
     * Advance the device by at most @p n_cycles SM cycles (memory
     * edges interleave on global time as always). noWakeup means
     * unbounded. Returns Drained when every invocation completed
     * (then call finish() exactly once), PreemptPoint when a
     * requestPreempt() was pending (the device is at a clock-edge
     * boundary: checkpoint, swap or just keep stepping), Running when
     * the quantum was exhausted first.
     */
    StepStatus step(Cycle n_cycles = noWakeup);

    /** step() until Drained (run-to-completion). */
    void run();

    /** Completion hooks, final trace events and the metrics delta. */
    RunMetrics finish();

    /**
     * Ask the next step() to pause at its next loop iteration and
     * return PreemptPoint instead of advancing further. Sticky until
     * delivered; delivered at most once per request.
     */
    void requestPreempt() { preemptRequested_ = true; }

    /** True while the armed/adopted run has not been finish()ed. */
    bool active() const;

    GpuTop &gpu() { return gpu_; }

  private:
    GpuTop &gpu_;
    bool preemptRequested_ = false;
};

} // namespace equalizer

#endif // EQ_GPU_SCHEDULER_CORE_HH
