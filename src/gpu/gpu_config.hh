/**
 * @file
 * Top-level GPU configuration (paper Table III: Fermi GTX480 flavour).
 */

#ifndef EQ_GPU_GPU_CONFIG_HH
#define EQ_GPU_GPU_CONFIG_HH

#include "common/types.hh"
#include "mem/mem_config.hh"

namespace equalizer
{

/** Warp scheduling policy of an SM. */
enum class SchedulerPolicy
{
    LooseRoundRobin, ///< rotate the start warp every cycle
    GreedyThenOldest,///< keep issuing the last warp until it stalls
};

/** Whole-GPU structural configuration. */
struct GpuConfig
{
    int numSms = 15;          ///< Table III: 15 SMs
    int maxBlocksPerSm = 8;   ///< Table III: 8 blocks
    int maxWarpsPerSm = 48;   ///< Table III: 48 warps
    int issueWidth = 2;       ///< dual warp schedulers per SM

    Cycle aluDepLatency = 10; ///< result latency of an ALU op (SM cycles)
    Cycle sfuDepLatency = 20; ///< result latency of an SFU op

    int lsuQueueDepth = 4;    ///< warp memory instructions buffered in LSU
    int lsuThroughput = 2;    ///< coalesced transactions presented per cycle

    Cycle smemLatency = 24;   ///< shared-memory load-to-use (SM cycles)

    /**
     * Operand-collector register-file read ports per cycle. Each issued
     * instruction consumes ~3 reads; the default leaves dual issue
     * unconstrained, lower values model register-file pressure.
     */
    int regReadPorts = 8;

    double smNominalHz = 700e6;   ///< GTX480 core clock
    double memNominalHz = 924e6;  ///< memory-system clock (GDDR5 command)

    SchedulerPolicy scheduler = SchedulerPolicy::LooseRoundRobin;

    /**
     * Cycle-skipping fast path (docs/FAST_PATH.md): when every warp on
     * every SM is provably stalled with a known wakeup bound, jump the
     * clocks to the next event instead of ticking through dead cycles.
     * Bit-identical to the slow path by construction; turn off to
     * debug a suspected divergence. Deliberately NOT part of the
     * checkpoint config fingerprint — fast and slow runs of the same
     * machine produce interchangeable (byte-identical) checkpoints.
     */
    bool fastPath = true;

    MemConfig mem = MemConfig::gtx480();

    /** Default GTX480-like configuration. */
    static GpuConfig
    gtx480()
    {
        return GpuConfig{};
    }
};

} // namespace equalizer

#endif // EQ_GPU_GPU_CONFIG_HH
