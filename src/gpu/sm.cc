#include "sm.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace equalizer
{

StreamingMultiprocessor::StreamingMultiprocessor(const GpuConfig &cfg,
                                                 SmId id,
                                                 MemorySystem &mem_system,
                                                 EnergyModel &energy)
    : cfg_(cfg), id_(id), memSystem_(mem_system), energy_(energy),
      l1_(cfg.mem, id, mem_system.smInjectQueue(id), energy),
      lsu_(cfg, id, l1_, mem_system)
{
    energy_.ensureSmShards(id_ + 1);
}

void
StreamingMultiprocessor::setKernel(const KernelLaunch *kernel)
{
    kernel_ = kernel;
    warpsPerBlock_ = std::max(1, kernel->info().warpsPerBlock);
    const int by_occupancy = kernel->info().maxBlocksPerSm;
    const int by_warps = cfg_.maxWarpsPerSm / warpsPerBlock_;
    blockSlots_ = std::max(
        1, std::min({by_occupancy, by_warps, cfg_.maxBlocksPerSm}));

    warps_.clear();
    warps_.resize(static_cast<std::size_t>(blockSlots_) * warpsPerBlock_);
    blocks_.assign(static_cast<std::size_t>(blockSlots_), BlockSlot{});
    warpRetiredCounted_.assign(warps_.size(), false);
    targetBlocks_ = blockSlots_;
    rrStart_ = 0;
    greedyWarp_ = 0;
    smemBusyUntil_ = 0;

    l1_.flush();
    lsu_.reset();
    debugStallWakeup_.reset();
    invalidateStallCache();
}

int
StreamingMultiprocessor::residentBlocks() const
{
    int n = 0;
    for (const auto &b : blocks_)
        n += b.occupied ? 1 : 0;
    return n;
}

int
StreamingMultiprocessor::unpausedBlocks() const
{
    int n = 0;
    for (const auto &b : blocks_)
        n += (b.occupied && !b.paused) ? 1 : 0;
    return n;
}

bool
StreamingMultiprocessor::hasFreeSlot() const
{
    for (const auto &b : blocks_)
        if (!b.occupied)
            return true;
    return false;
}

bool
StreamingMultiprocessor::wantsBlock() const
{
    if (!kernel_ || !hasFreeSlot())
        return false;
    // Prefer unpausing a resident block over fetching a new one: while a
    // paused block exists the SM never requests more work (paper IV-B).
    for (const auto &b : blocks_)
        if (b.occupied && b.paused)
            return false;
    return unpausedBlocks() < targetBlocks_;
}

void
StreamingMultiprocessor::assignBlock(BlockId block)
{
    int slot = -1;
    for (int s = 0; s < blockSlots_; ++s) {
        if (!blocks_[static_cast<std::size_t>(s)].occupied) {
            slot = s;
            break;
        }
    }
    EQ_ASSERT(slot >= 0, "assignBlock with no free slot on SM ", id_);

    auto &bs = blocks_[static_cast<std::size_t>(slot)];
    bs.occupied = true;
    bs.paused = false;
    bs.block = block;
    bs.warpsDone = 0;
    bs.assignOrder = assignCounter_++;

    for (int wib = 0; wib < warpsPerBlock_; ++wib) {
        const int wid = firstWarpOf(slot) + wib;
        auto &w = warps_[static_cast<std::size_t>(wid)];
        w.reset();
        w.active = true;
        w.blockSlot = slot;
        w.block = block;
        w.stream = kernel_->makeWarpStream(block, wib);
        warpRetiredCounted_[static_cast<std::size_t>(wid)] = false;
    }
    invalidateStallCache();
}

void
StreamingMultiprocessor::setTargetBlocks(int target)
{
    targetBlocks_ = std::clamp(target, 1, blockSlots_);
    applyPauseState();
    invalidateStallCache();
}

void
StreamingMultiprocessor::applyPauseState()
{
    auto set_block_pause = [this](int slot, bool paused) {
        auto &b = blocks_[static_cast<std::size_t>(slot)];
        b.paused = paused;
        for (int wib = 0; wib < warpsPerBlock_; ++wib)
            warps_[static_cast<std::size_t>(firstWarpOf(slot) + wib)]
                .paused = paused;
        traceEmit(traceRing_, [&] {
            return makeSmEvent(paused ? TraceEventKind::CtaPause
                                      : TraceEventKind::CtaResume,
                               cycle_, id_, slot, b.block);
        });
    };

    // Pause the youngest running blocks while over target.
    while (unpausedBlocks() > targetBlocks_) {
        int victim = -1;
        std::uint64_t newest = 0;
        for (int s = 0; s < blockSlots_; ++s) {
            const auto &b = blocks_[static_cast<std::size_t>(s)];
            if (b.occupied && !b.paused &&
                (victim < 0 || b.assignOrder >= newest)) {
                victim = s;
                newest = b.assignOrder;
            }
        }
        if (victim < 0)
            break;
        set_block_pause(victim, true);
    }

    // Unpause the oldest paused blocks while under target.
    while (unpausedBlocks() < targetBlocks_) {
        int pick = -1;
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (int s = 0; s < blockSlots_; ++s) {
            const auto &b = blocks_[static_cast<std::size_t>(s)];
            if (b.occupied && b.paused && b.assignOrder < oldest) {
                pick = s;
                oldest = b.assignOrder;
            }
        }
        if (pick < 0)
            break;
        set_block_pause(pick, false);
    }
}

void
StreamingMultiprocessor::refillInstruction(WarpSlot &w)
{
    WarpInstruction inst;
    if (w.stream->next(inst)) {
        ++w.fetched;
        w.inst = inst;
        w.hasInst = true;
        w.nextTransaction = 0;
        w.readyAt = inst.dependsOnPrev
                        ? w.lastIssueCycle + w.lastResultLatency
                        : 0;
    } else {
        w.streamDone = true;
        w.stream.reset();
    }
}

void
StreamingMultiprocessor::handleRetirement(WarpId wid)
{
    auto &w = warps_[static_cast<std::size_t>(wid)];
    if (warpRetiredCounted_[static_cast<std::size_t>(wid)] ||
        !w.streamDone || w.pendingLoads > 0) {
        return;
    }
    warpRetiredCounted_[static_cast<std::size_t>(wid)] = true;

    const int slot = w.blockSlot;
    auto &bs = blocks_[static_cast<std::size_t>(slot)];
    if (++bs.warpsDone < warpsPerBlock_)
        return;

    // Block complete: free the slot.
    const BlockId finished = bs.block;
    bs = BlockSlot{};
    for (int wib = 0; wib < warpsPerBlock_; ++wib) {
        const int i = firstWarpOf(slot) + wib;
        warps_[static_cast<std::size_t>(i)].reset();
        warpRetiredCounted_[static_cast<std::size_t>(i)] = false;
    }
    ++blocksCompleted_;
    traceEmit(traceRing_, [&] {
        return makeSmEvent(TraceEventKind::BlockComplete, cycle_, id_,
                           finished,
                           static_cast<std::int64_t>(blocksCompleted_));
    });

    // Paper IV-B: a paused block is unpaused when an active block
    // finishes; no new GWDE request is made in that case.
    applyPauseState();

    if (onBlockComplete_)
        onBlockComplete_(id_, finished);
}

void
StreamingMultiprocessor::releaseBarriers()
{
    for (int s = 0; s < blockSlots_; ++s) {
        const auto &bs = blocks_[static_cast<std::size_t>(s)];
        if (!bs.occupied || bs.paused)
            continue;
        bool any_at_barrier = false;
        bool all_parked = true;
        for (int wib = 0; wib < warpsPerBlock_; ++wib) {
            const auto &w =
                warps_[static_cast<std::size_t>(firstWarpOf(s) + wib)];
            if (!w.active)
                continue;
            if (w.atBarrier) {
                any_at_barrier = true;
            } else if (!w.streamDone) {
                all_parked = false;
                break;
            }
        }
        if (!any_at_barrier || !all_parked)
            continue;
        for (int wib = 0; wib < warpsPerBlock_; ++wib) {
            auto &w =
                warps_[static_cast<std::size_t>(firstWarpOf(s) + wib)];
            if (w.atBarrier) {
                w.atBarrier = false;
                w.hasInst = false; // consume the Sync instruction
            }
        }
    }
}

void
StreamingMultiprocessor::schedulePass()
{
    const int n = static_cast<int>(warps_.size());
    int slots = cfg_.issueWidth;
    int reg_reads = cfg_.regReadPorts;
    WarpStateCounts counts;

    const int start = cfg_.scheduler == SchedulerPolicy::GreedyThenOldest
                          ? greedyWarp_
                          : rrStart_;
    int first_issued = -1;

    for (int i = 0; i < n; ++i) {
        const int wid = (start + i) % n;
        auto &w = warps_[static_cast<std::size_t>(wid)];

        if (!w.active) {
            w.outcome = WarpOutcome::Unaccounted;
            ++counts.unaccounted;
            continue;
        }
        if (w.paused) {
            w.outcome = WarpOutcome::Paused;
            continue;
        }
        if (!w.hasInst && !w.streamDone && !w.atBarrier)
            refillInstruction(w);

        if (w.streamDone) {
            handleRetirement(wid);
            // handleRetirement may have freed the whole block slot.
            if (!w.active) {
                w.outcome = WarpOutcome::Unaccounted;
                ++counts.unaccounted;
                continue;
            }
            if (w.pendingLoads > 0) {
                w.outcome = WarpOutcome::Waiting;
                ++counts.active;
                ++counts.waiting;
            } else {
                w.outcome = WarpOutcome::Done;
            }
            continue;
        }

        if (w.atBarrier) {
            w.outcome = WarpOutcome::Barrier;
            ++counts.active;
            ++counts.barrier;
            continue;
        }

        EQ_ASSERT(w.hasInst, "active unparked warp without an instruction");
        ++counts.active;

        if (w.inst.op == OpClass::Sync) {
            w.atBarrier = true;
            w.outcome = WarpOutcome::Barrier;
            ++counts.barrier;
            continue;
        }

        const bool load_stall =
            w.inst.dependsOnLoads && w.pendingLoads > 0;
        const bool result_stall =
            w.inst.dependsOnPrev && cycle_ < w.readyAt;
        if (load_stall || result_stall) {
            w.outcome = WarpOutcome::Waiting;
            ++counts.waiting;
            continue;
        }

        if (w.inst.op == OpClass::Mem) {
            if (memIssueFilter_ && !memIssueFilter_(wid)) {
                // CCWS-style throttle: held back, not pipe pressure.
                w.outcome = WarpOutcome::Waiting;
                ++counts.waiting;
                continue;
            }
            if (slots > 0 && reg_reads >= 2 && lsu_.canAccept()) {
                lsu_.accept(wid, w.inst);
                if (!w.inst.write)
                    w.pendingLoads += w.inst.transactionCount;
                w.hasInst = false;
                w.lastIssueCycle = cycle_;
                w.lastResultLatency = 1;
                w.outcome = WarpOutcome::Issued;
                ++counts.issued;
                ++issued_;
                --slots;
                if (first_issued < 0)
                    first_issued = wid;
                reg_reads -= 2;
                energy_.record(id_, EnergyEvent::SmIssue);
                energy_.record(id_, EnergyEvent::SmLsuOp);
                energy_.record(id_, EnergyEvent::SmRegAccess, 2);
            } else {
                w.outcome = WarpOutcome::ExcessMem;
                ++counts.excessMem;
            }
            continue;
        }

        if (w.inst.op == OpClass::Shared) {
            // Scratchpad access: an SM-side pipe that serializes on bank
            // conflicts. Contention here is SM pressure (X_alu), not
            // memory-system pressure.
            if (slots > 0 && reg_reads >= 2 && cycle_ >= smemBusyUntil_) {
                smemBusyUntil_ =
                    cycle_ + static_cast<Cycle>(w.inst.conflictWays);
                w.hasInst = false;
                w.lastIssueCycle = cycle_;
                w.lastResultLatency =
                    cfg_.smemLatency +
                    static_cast<Cycle>(w.inst.conflictWays) - 1;
                w.outcome = WarpOutcome::Issued;
                ++counts.issued;
                ++issued_;
                --slots;
                reg_reads -= 2;
                if (first_issued < 0)
                    first_issued = wid;
                energy_.record(id_, EnergyEvent::SmIssue);
                energy_.record(id_, EnergyEvent::SmSharedAccess,
                               static_cast<std::uint64_t>(
                                   w.inst.conflictWays));
                energy_.record(id_, EnergyEvent::SmRegAccess, 2);
            } else {
                w.outcome = WarpOutcome::ExcessAlu;
                ++counts.excessAlu;
            }
            continue;
        }

        // Arithmetic (ALU or SFU).
        if (slots > 0 && reg_reads >= 3) {
            w.hasInst = false;
            w.lastIssueCycle = cycle_;
            // Real instruction mixes have varied result latencies; a
            // deterministic +/-2-cycle jitter keeps identical warps from
            // forming lockstep convoys that alias the issue slots.
            const Cycle base = w.inst.op == OpClass::Sfu
                                   ? cfg_.sfuDepLatency
                                   : cfg_.aluDepLatency;
            const Cycle jitter =
                (static_cast<Cycle>(wid) * 7 + cycle_) % 5;
            w.lastResultLatency = base + jitter - 2;
            w.outcome = WarpOutcome::Issued;
            ++counts.issued;
            ++issued_;
            --slots;
            if (first_issued < 0)
                first_issued = wid;
            reg_reads -= 3;
            energy_.record(id_, EnergyEvent::SmIssue);
            // Divergent warps drive only a fraction of the datapath.
            energy_.recordScaled(id_,
                                 w.inst.op == OpClass::Sfu
                                     ? EnergyEvent::SmSfuOp
                                     : EnergyEvent::SmAluOp,
                                 static_cast<double>(w.inst.activeLanes) /
                                     warpLanes);
            energy_.record(id_, EnergyEvent::SmRegAccess, 3);
        } else {
            w.outcome = WarpOutcome::ExcessAlu;
            ++counts.excessAlu;
        }
    }

    rrStart_ = n ? (rrStart_ + 1) % n : 0;
    if (cfg_.scheduler == SchedulerPolicy::GreedyThenOldest &&
        first_issued >= 0) {
        greedyWarp_ = first_issued;
    }

    outcomeTotals_ += counts;
    lastCounts_ = counts;
}

void
StreamingMultiprocessor::tick(Cycle mem_now)
{
    // Per-SM fast tick (docs/FAST_PATH.md): replay a memoized stalled
    // cycle in O(1) instead of re-scanning every warp. Decisions are
    // SM-local (plus this SM's response-queue head, stable during the
    // parallel phase), so results are identical at any threads= count.
    if (cfg_.fastPath && tryFastTick(mem_now))
        return;

    ++cycle_;
    lsu_.beginCycle();

    // 1. Returning memory data.
    for (const auto &resp :
         memSystem_.drainResponses(id_, mem_now,
                                   std::numeric_limits<int>::max())) {
        if (resp.texture) {
            auto &w = warps_[static_cast<std::size_t>(resp.warp)];
            if (w.active && w.pendingLoads > 0)
                --w.pendingLoads;
        } else {
            for (WarpId wid : l1_.fill(resp.lineAddr)) {
                auto &w = warps_[static_cast<std::size_t>(wid)];
                if (w.active && w.pendingLoads > 0)
                    --w.pendingLoads;
            }
        }
    }

    // 2. L1 hits maturing this cycle.
    for (WarpId wid : lsu_.drainHitWakeups(cycle_)) {
        auto &w = warps_[static_cast<std::size_t>(wid)];
        if (w.active && w.pendingLoads > 0)
            --w.pendingLoads;
    }

    // 3. Scheduling / issue.
    schedulePass();

    // 4. LSU transaction processing.
    lsu_.tick(cycle_);

    // 5. Barrier release.
    releaseBarriers();

    if (residentBlocks() > 0)
        ++activeCycles_;
}

bool
StreamingMultiprocessor::tryFastTick(Cycle mem_now)
{
    if (!stallCache_.valid) {
        // Lazy build; the gates mirror checkStalled().
        if (debugStallWakeup_ || memIssueFilter_ ||
            lastCounts_.issued > 0 || !lsu_.wouldIdle())
            return false;

        Cycle wakeup = lsu_.nextHitWakeup();
        WarpStateCounts counts;
        const int nw = static_cast<int>(warps_.size());
        for (WarpId wid = 0; wid < nw; ++wid) {
            const auto outcome = stalledOutcome(wid, counts, wakeup);
            if (!outcome)
                return false;
            // Freeze the outcome for the span; constant until the
            // cache is invalidated (same uniformity argument as
            // skipCycles()). Harmless if we bail below — the slow
            // pass overwrites every outcome.
            warps_[static_cast<std::size_t>(wid)].outcome = *outcome;
        }
        stallCache_.valid = true;
        stallCache_.wakeup = wakeup;
        stallCache_.counts = counts;
    }

    // Per-cycle revalidation, all O(1): the wakeup cycle itself must
    // run the full tick, as must any cycle where a matured response
    // awaits draining or the LSU head could move — the memory system
    // keeps running between SM ticks (unlike under the whole-device
    // fast path, which freezes it), so a head blocked on downstream
    // queue room can unblock on any memory tick.
    if (cycle_ + 1 >= stallCache_.wakeup) {
        invalidateStallCache();
        return false;
    }
    if (memSystem_.hasDrainableResponse(id_, mem_now)) {
        invalidateStallCache();
        return false;
    }
    if (!lsu_.wouldIdle()) {
        invalidateStallCache();
        return false;
    }

    ++cycle_;
    lsu_.skipCycles(1); // beginCycle() plus the blocked-head retry
    const int nw = static_cast<int>(warps_.size());
    if (nw > 0)
        rrStart_ = (rrStart_ + 1) % nw;
    // greedyWarp_ and smemBusyUntil_ only move when something issues.
    outcomeTotals_ += stallCache_.counts;
    lastCounts_ = stallCache_.counts;
    if (residentBlocks() > 0)
        ++activeCycles_;
    return true;
}

std::optional<WarpOutcome>
StreamingMultiprocessor::stalledOutcome(WarpId wid, WarpStateCounts &counts,
                                        Cycle &wakeup) const
{
    const auto &w = warps_[static_cast<std::size_t>(wid)];
    const Cycle c1 = cycle_ + 1; // the cycle being probed

    if (!w.active) {
        ++counts.unaccounted;
        return WarpOutcome::Unaccounted;
    }
    if (w.paused)
        return WarpOutcome::Paused;
    if (!w.hasInst && !w.streamDone && !w.atBarrier)
        return std::nullopt; // needs an instruction refill

    if (w.streamDone) {
        if (w.pendingLoads > 0) {
            // Retirement blocked on outstanding loads; their return is
            // a memory-system event, which bounds the span elsewhere.
            ++counts.active;
            ++counts.waiting;
            return WarpOutcome::Waiting;
        }
        if (!warpRetiredCounted_[static_cast<std::size_t>(wid)])
            return std::nullopt; // would retire (and maybe free a block)
        return WarpOutcome::Done;
    }

    if (w.atBarrier) {
        // Barrier release needs other warps to park or retire — both
        // vetoed for the whole SM — so the warp stays put all span.
        ++counts.active;
        ++counts.barrier;
        return WarpOutcome::Barrier;
    }

    if (w.inst.op == OpClass::Sync)
        return std::nullopt; // would park at the barrier (a mutation)

    const bool load_stall = w.inst.dependsOnLoads && w.pendingLoads > 0;
    if (load_stall) {
        ++counts.active;
        ++counts.waiting;
        return WarpOutcome::Waiting; // memory events bound the span
    }
    if (w.inst.dependsOnPrev && c1 < w.readyAt) {
        ++counts.active;
        ++counts.waiting;
        wakeup = std::min(wakeup, w.readyAt);
        return WarpOutcome::Waiting;
    }

    // The warp is ready. In a fully-stalled pass nothing else issues,
    // so it sees the full issue-slot and register-port budgets; if even
    // those would let it through, the SM is not skippable.
    if (w.inst.op == OpClass::Mem) {
        if (cfg_.issueWidth > 0 && cfg_.regReadPorts >= 2 &&
            !lsu_.queueFull())
            return std::nullopt; // would issue into the LSU
        ++counts.active;
        ++counts.excessMem;
        return WarpOutcome::ExcessMem;
    }
    if (w.inst.op == OpClass::Shared) {
        if (cfg_.issueWidth > 0 && cfg_.regReadPorts >= 2) {
            if (c1 >= smemBusyUntil_)
                return std::nullopt; // shared-memory pipe is free
            wakeup = std::min(wakeup, smemBusyUntil_);
        }
        ++counts.active;
        ++counts.excessAlu;
        return WarpOutcome::ExcessAlu;
    }
    // Arithmetic (ALU or SFU).
    if (cfg_.issueWidth > 0 && cfg_.regReadPorts >= 3)
        return std::nullopt; // nothing stops an arithmetic issue
    ++counts.active;
    ++counts.excessAlu;
    return WarpOutcome::ExcessAlu;
}

StreamingMultiprocessor::StallCheck
StreamingMultiprocessor::checkStalled() const
{
    if (debugStallWakeup_)
        return StallCheck{true, *debugStallWakeup_};
    StallCheck res;
    if (stallCache_.valid) {
        // The memoized verdict is maintained by invalidation (external
        // mutations) and by tick()'s per-cycle revalidation, so it
        // answers the whole-device probe in O(1) — except that memory
        // ticks since the last SM tick may have freed downstream queue
        // room, so the LSU idleness must be re-probed fresh.
        if (!lsu_.wouldIdle())
            return res;
        res.skippable = true;
        res.wakeup = stallCache_.wakeup;
        return res;
    }
    if (memIssueFilter_)
        return res; // external gate may flip any cycle: never skip
    if (lastCounts_.issued > 0)
        return res; // an issued warp needs a refill next cycle
    if (!lsu_.wouldIdle())
        return res; // the LSU head would move a transaction

    Cycle wakeup = lsu_.nextHitWakeup();
    WarpStateCounts counts;
    const int n = static_cast<int>(warps_.size());
    for (WarpId wid = 0; wid < n; ++wid)
        if (!stalledOutcome(wid, counts, wakeup))
            return res;
    res.skippable = true;
    res.wakeup = wakeup;
    return res;
}

void
StreamingMultiprocessor::skipCycles(Cycle n)
{
    if (n == 0)
        return;

    WarpStateCounts counts;
    Cycle unused = noWakeup;
    const int nw = static_cast<int>(warps_.size());
    for (WarpId wid = 0; wid < nw; ++wid) {
        const auto outcome = stalledOutcome(wid, counts, unused);
        EQ_ASSERT(outcome.has_value(),
                  "skipCycles() on SM ", id_, " with unstalled warp ", wid);
        warps_[static_cast<std::size_t>(wid)].outcome = *outcome;
    }

    cycle_ += n;
    lsu_.skipCycles(n); // covers beginCycle() and the blocked-head retry
    if (nw > 0)
        rrStart_ = static_cast<int>((static_cast<Cycle>(rrStart_) + n) %
                                    static_cast<Cycle>(nw));
    // greedyWarp_ only moves when something issues; smemBusyUntil_ only
    // when a Shared op issues — both are untouched by a stalled span.
    outcomeTotals_.addScaled(counts, static_cast<std::int64_t>(n));
    lastCounts_ = counts;
    if (residentBlocks() > 0)
        activeCycles_ += n;
}

WarpStateCounts
StreamingMultiprocessor::sampleStates() const
{
    return lastCounts_;
}

void
StreamingMultiprocessor::resetStats()
{
    issued_ = 0;
    activeCycles_ = 0;
    blocksCompleted_ = 0;
    outcomeTotals_ = WarpStateCounts{};
}

void
StreamingMultiprocessor::visitState(StateVisitor &v)
{
    v.beginSection("sm", 1);
    v.expectMatch(id_, "SM id");
    v.field(warpsPerBlock_);
    v.field(blockSlots_);
    v.field(warps_);
    v.field(blocks_);
    v.field(warpRetiredCounted_);
    v.field(targetBlocks_);
    v.field(assignCounter_);
    v.field(cycle_);
    v.field(rrStart_);
    v.field(greedyWarp_);
    v.field(smemBusyUntil_);
    v.field(issued_);
    v.field(activeCycles_);
    v.field(blocksCompleted_);
    v.field(outcomeTotals_);
    v.field(lastCounts_);
    v.field(l1_);
    v.field(lsu_);
    if (!v.saving())
        kernel_ = nullptr; // rebindKernel() must follow for mid-kernel
    invalidateStallCache();
    v.endSection();
}

void
StreamingMultiprocessor::rebindKernel(const KernelLaunch *kernel)
{
    EQ_ASSERT(kernel, "rebindKernel needs a kernel");
    const int wpb = std::max(1, kernel->info().warpsPerBlock);
    const int by_occupancy = kernel->info().maxBlocksPerSm;
    const int by_warps = cfg_.maxWarpsPerSm / wpb;
    const int slots = std::max(
        1, std::min({by_occupancy, by_warps, cfg_.maxBlocksPerSm}));
    if (wpb != warpsPerBlock_ || slots != blockSlots_)
        fatal("checkpoint geometry (", warpsPerBlock_, " warps/block, ",
              blockSlots_, " block slots) does not match kernel '",
              kernel->info().name, "' (", wpb, " warps/block, ", slots,
              " block slots)");
    kernel_ = kernel;

    // Rebuild in-flight instruction streams. The generators are pure
    // functions of (kernel, block, warp), so replaying the recorded
    // number of draws lands each stream exactly where it was saved.
    for (int wid = 0; wid < static_cast<int>(warps_.size()); ++wid) {
        auto &w = warps_[static_cast<std::size_t>(wid)];
        w.stream.reset();
        if (!w.active || w.streamDone)
            continue;
        const int wib = wid - firstWarpOf(w.blockSlot);
        w.stream = kernel_->makeWarpStream(w.block, wib);
        WarpInstruction scratch;
        for (std::uint64_t i = 0; i < w.fetched; ++i) {
            const bool ok = w.stream->next(scratch);
            EQ_ASSERT(ok, "stream replay ran dry on SM ", id_, " warp ",
                      wid);
        }
    }
}

} // namespace equalizer
