/**
 * @file
 * Runtime-policy hook. Equalizer, DynCTA, CCWS and the static operating
 * points all plug into the GPU through this interface.
 */

#ifndef EQ_GPU_CONTROLLER_HH
#define EQ_GPU_CONTROLLER_HH

#include <string>

#include "common/types.hh"

namespace equalizer
{

class GpuTop;
class KernelInvocation;
class StateVisitor;

/**
 * A hardware runtime policy observing and steering the GPU.
 *
 * Hooks are invoked by GpuTop: onKernelLaunch once per run (all SMs are
 * bound, blocks not yet distributed); onInvocationLaunch once per
 * kernel invocation (including a tenant's mid-co-run relaunch of its
 * next queued kernel); onSmCycle after every SM clock edge (all SMs
 * have ticked); onKernelComplete when every grid has drained.
 */
class GpuController
{
  public:
    virtual ~GpuController() = default;

    /** Short policy name for reports ("equalizer-perf", "sm-high", ...). */
    virtual std::string name() const = 0;

    virtual void onKernelLaunch(GpuTop &) {}

    /**
     * Per-invocation launch hook: the invocation's SMs are bound to its
     * kernel; decisions should be keyed by the invocation's SM set so
     * co-resident tenants don't disturb each other. Default no-op keeps
     * device-global policies working unchanged.
     */
    virtual void onInvocationLaunch(GpuTop &, const KernelInvocation &) {}

    virtual void onSmCycle(GpuTop &) {}
    virtual void onKernelComplete(GpuTop &) {}

    /**
     * Serialize controller-internal state (epoch counters, victim tag
     * arrays, ...). Stateless controllers keep the default no-op. On
     * load the controller may re-install its hooks on @p gpu.
     */
    virtual void visitControllerState(StateVisitor &, GpuTop &) {}

    /**
     * Fast-path hook (docs/FAST_PATH.md): the earliest SM cycle
     * strictly greater than @p now at which this controller's
     * onSmCycle hook might do anything, or noWakeup when it only acts
     * at kernel boundaries. The cycle-skipping fast path never skips
     * past the returned cycle's edge, so a periodic controller sees
     * exactly the edges it would on the slow path. The default returns
     * 0 — a standing veto that disables cycle skipping — so policies
     * that act on arbitrary cycles stay bit-exact without opting in.
     */
    virtual Cycle nextActionCycle(const GpuTop &, Cycle /*now*/) const
    {
        return 0;
    }
};

} // namespace equalizer

#endif // EQ_GPU_CONTROLLER_HH
