/**
 * @file
 * Per-run measurement record produced by GpuTop::runKernel.
 */

#ifndef EQ_GPU_METRICS_HH
#define EQ_GPU_METRICS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "gpu/warp_state.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** Everything measured over one kernel invocation. */
struct RunMetrics
{
    std::string kernel;

    double seconds = 0.0;      ///< wall-clock simulated time
    Cycle smCycles = 0;        ///< SM-domain cycles elapsed
    Cycle memCycles = 0;       ///< memory-domain cycles elapsed

    std::uint64_t instructions = 0; ///< warp instructions issued (all SMs)

    double dynamicJoules = 0.0;
    double staticJoules = 0.0;

    WarpStateCounts outcomeTotals; ///< summed per-cycle warp states
    std::uint64_t outcomeCycles = 0; ///< SM cycles x SMs contributing

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t dramRowHits = 0;

    /// Fraction of DRAM partition-time spent interface-powered-down.
    double dramPowerDownFraction = 0.0;

    /**
     * SM cycles the cycle-skipping fast path jumped over instead of
     * ticking (docs/FAST_PATH.md). Diagnostic only: excluded from the
     * export tables and epoch gauges so fast- and slow-path runs stay
     * byte-comparable; 0 when fastPath is off (and after a mid-kernel
     * restore, which resets the counter).
     */
    Cycle fastForwardedCycles = 0;

    /// Time at each VF state, per domain (for Figure 9).
    std::array<Tick, numVfStates> smResidency{};
    std::array<Tick, numVfStates> memResidency{};

    double totalJoules() const { return dynamicJoules + staticJoules; }

    double
    ipc() const
    {
        return smCycles ? static_cast<double>(instructions) / smCycles : 0.0;
    }

    double
    l1HitRate() const
    {
        const auto loads = l1Hits + l1Misses;
        return loads ? static_cast<double>(l1Hits) / loads : 0.0;
    }

    /** Merge another invocation's numbers into this record. */
    RunMetrics &
    operator+=(const RunMetrics &o)
    {
        seconds += o.seconds;
        smCycles += o.smCycles;
        memCycles += o.memCycles;
        instructions += o.instructions;
        dynamicJoules += o.dynamicJoules;
        staticJoules += o.staticJoules;
        outcomeTotals += o.outcomeTotals;
        outcomeCycles += o.outcomeCycles;
        l1Hits += o.l1Hits;
        l1Misses += o.l1Misses;
        l2Hits += o.l2Hits;
        l2Misses += o.l2Misses;
        dramAccesses += o.dramAccesses;
        dramRowHits += o.dramRowHits;
        fastForwardedCycles += o.fastForwardedCycles;
        // Time-weighted combine of the power-down fraction.
        const Cycle mc = memCycles; // already includes o.memCycles
        if (mc > 0) {
            dramPowerDownFraction =
                (dramPowerDownFraction *
                     static_cast<double>(mc - o.memCycles) +
                 o.dramPowerDownFraction *
                     static_cast<double>(o.memCycles)) /
                static_cast<double>(mc);
        }
        for (int i = 0; i < numVfStates; ++i) {
            smResidency[static_cast<std::size_t>(i)] +=
                o.smResidency[static_cast<std::size_t>(i)];
            memResidency[static_cast<std::size_t>(i)] +=
                o.memResidency[static_cast<std::size_t>(i)];
        }
        return *this;
    }
};

} // namespace equalizer

#endif // EQ_GPU_METRICS_HH
