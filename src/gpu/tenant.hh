/**
 * @file
 * Multi-tenant residency: a Tenant owns an exclusive SM partition, a
 * queue of kernel launches, and a token-bucket SM-utilization limiter
 * in the spirit of HAMi-core's CUDA_DEVICE_SM_LIMIT throttle
 * (docs/MULTI_TENANT.md).
 */

#ifndef EQ_GPU_TENANT_HH
#define EQ_GPU_TENANT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/kernel_launch.hh"
#include "sim/state.hh"

namespace equalizer
{

/** How GpuTop::configureTenants carves SMs into exclusive sets. */
enum class PartitionPolicy
{
    /** SM i belongs to tenant i % T (the legacy concurrent layout). */
    RoundRobin,
    /** Contiguous stripes: tenant t gets SMs [t*N/T, (t+1)*N/T). */
    Blocked,
};

/** Parse "rr"/"round-robin" or "blocked"; fatal() otherwise. */
PartitionPolicy partitionPolicyFromName(const std::string &name);

/** Knob-level name of @p policy ("rr" or "blocked"). */
const char *partitionPolicyName(PartitionPolicy policy);

/** Declarative description of one tenant (knob-level input). */
struct TenantSpec
{
    std::string name;

    /**
     * Long-run fraction of the tenant's SM partition it may keep busy,
     * in (0, 1]. 1.0 disables the limiter.
     */
    double smLimit = 1.0;
};

/**
 * Cycles of fully-limited inflow the bucket may bank while idle. Keeps
 * launch bursts bounded: after a long idle period a limited tenant can
 * run at most this many cycles at full occupancy before the limiter
 * engages.
 */
inline constexpr double tenantLimiterBurstCycles = 256.0;

/**
 * One tenant: an SM partition, a FIFO of pending launches, and the
 * dispatch limiter.
 *
 * Limiter math (docs/MULTI_TENANT.md): every SM cycle the bucket gains
 * `smLimit * |sms|` tokens and pays one token per owned SM that holds
 * at least one resident block. Block dispatch is gated on a
 * non-negative balance, so over any long window the busy-SM-cycle
 * fraction converges to smLimit: the balance is bounded above by the
 * burst cap and below by the deepest debt one grant can incur, so
 * average inflow must equal average spend. Everything is deterministic
 * and serialized, so limited co-runs checkpoint and stay bit-identical
 * across thread counts.
 */
class Tenant
{
  public:
    Tenant() = default;

    Tenant(int id, TenantSpec spec, std::vector<int> sm_set)
        : id_(id), spec_(std::move(spec)), sms_(std::move(sm_set))
    {
    }

    int id() const { return id_; }
    const std::string &name() const { return spec_.name; }
    double smLimit() const { return spec_.smLimit; }
    const std::vector<int> &smSet() const { return sms_; }

    /** True when the utilization limiter is engaged at all. */
    bool limited() const { return spec_.smLimit < 1.0; }

    /** May the GWDE hand this tenant's invocations a block now? */
    bool canDispatch() const { return !limited() || tokens_ >= 0.0; }

    /** Account one dispatched block. */
    void onDispatch() { ++dispatchedBlocks_; }

    /**
     * One SM-cycle limiter step: @p busy_sms owned SMs held resident
     * blocks this cycle; @p work_pending is whether an invocation of
     * this tenant still has undistributed blocks.
     */
    void
    tickLimiter(int busy_sms, bool work_pending)
    {
        ++elapsedCycles_;
        busySmCycles_ += static_cast<std::uint64_t>(busy_sms);
        if (!limited())
            return;
        const double owned = static_cast<double>(sms_.size());
        tokens_ += spec_.smLimit * owned - static_cast<double>(busy_sms);
        const double cap =
            tenantLimiterBurstCycles * spec_.smLimit * owned;
        if (tokens_ > cap)
            tokens_ = cap;
        if (work_pending && tokens_ < 0.0)
            ++limitedCycles_;
    }

    // --- Launch queue (FIFO; the head becomes the next invocation).
    void
    enqueue(const KernelLaunch *launch)
    {
        queue_.push_back({launch, launch->info().name});
    }

    bool queueEmpty() const { return queue_.empty(); }
    std::size_t queueSize() const { return queue_.size(); }

    /** Pop the next pending launch; queueEmpty() must not hold. */
    const KernelLaunch *
    popQueue()
    {
        const KernelLaunch *k = queue_.front().launch;
        queue_.pop_front();
        return k;
    }

    /** Names of the queued launches (restore-time rebinding). */
    std::vector<std::string> queuedNames() const;

    /** Re-attach queued launches after a restore (matched by name). */
    void rebindQueue(const std::vector<const KernelLaunch *> &launches);

    // --- Accounting (gauges, bench fairness, reports).
    std::uint64_t dispatchedBlocks() const { return dispatchedBlocks_; }
    std::uint64_t busySmCycles() const { return busySmCycles_; }
    std::uint64_t limitedCycles() const { return limitedCycles_; }
    std::uint64_t elapsedCycles() const { return elapsedCycles_; }

    /** Unserved spend when over-budget (0 while in credit). */
    double limiterDebt() const { return tokens_ < 0.0 ? -tokens_ : 0.0; }

    /** Busy fraction of the partition's SM-cycles so far. */
    double
    occupancyShare() const
    {
        const std::uint64_t denom =
            elapsedCycles_ * static_cast<std::uint64_t>(sms_.size());
        return denom ? static_cast<double>(busySmCycles_) /
                           static_cast<double>(denom)
                     : 0.0;
    }

    // --- Gauge identities (set by GpuTop::configureTenants).
    const std::string &gaugeDispatched() const { return gaugeDispatched_; }
    const std::string &gaugeDebt() const { return gaugeDebt_; }
    const std::string &gaugeShare() const { return gaugeShare_; }
    void setGaugeNames(std::string dispatched, std::string debt,
                       std::string share);

    void visitState(StateVisitor &v);

  private:
    /** A queued launch plus its serializable identity. */
    struct Pending
    {
        const KernelLaunch *launch = nullptr;
        std::string name;
    };

    int id_ = 0;
    TenantSpec spec_;
    std::vector<int> sms_;

    double tokens_ = 0.0;
    std::uint64_t dispatchedBlocks_ = 0;
    std::uint64_t busySmCycles_ = 0;
    std::uint64_t limitedCycles_ = 0;
    std::uint64_t elapsedCycles_ = 0;

    std::deque<Pending> queue_;

    std::string gaugeDispatched_;
    std::string gaugeDebt_;
    std::string gaugeShare_;
};

/** Per-tenant measurement row over one co-run (harness/bench/eqsim). */
struct TenantRunMetrics
{
    std::string tenant;
    std::string kernels; ///< "+"-joined kernel names the tenant ran
    double smLimit = 1.0;
    int smCount = 0;
    std::uint64_t dispatchedBlocks = 0;
    std::uint64_t blocksCompleted = 0;
    std::uint64_t instructions = 0;
    std::uint64_t busySmCycles = 0;
    std::uint64_t limitedCycles = 0;
    std::uint64_t elapsedCycles = 0;

    double
    occupancyShare() const
    {
        const std::uint64_t denom =
            elapsedCycles * static_cast<std::uint64_t>(smCount);
        return denom ? static_cast<double>(busySmCycles) /
                           static_cast<double>(denom)
                     : 0.0;
    }
};

} // namespace equalizer

#endif // EQ_GPU_TENANT_HH
