/**
 * @file
 * The Global Work Distribution Engine: hands thread blocks to SMs.
 */

#ifndef EQ_GPU_GWDE_HH
#define EQ_GPU_GWDE_HH

#include "common/types.hh"
#include "gpu/kernel_launch.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * Tracks one invocation's grid and dispenses block ids in launch
 * order. SMs pull blocks when they have (and want) a free slot;
 * Equalizer's concurrency throttling works by making SMs stop pulling.
 *
 * One distributor per KernelInvocation: the cursor is invocation
 * state, not device state, so several grids can be in flight on
 * disjoint SM partitions and a mid-co-run checkpoint serializes every
 * cursor (kernel_invocation.hh).
 */
class GlobalWorkDistributor
{
  public:
    /** Begin distributing a new kernel's grid. */
    void
    launch(const KernelLaunch &kernel)
    {
        total_ = kernel.info().totalBlocks;
        next_ = 0;
    }

    bool hasBlocks() const { return next_ < total_; }

    /** Dispense the next block id; hasBlocks() must hold. */
    BlockId
    takeBlock()
    {
        return next_++;
    }

    int remaining() const { return total_ - next_; }
    int total() const { return total_; }

    void
    visitState(StateVisitor &v)
    {
        v.beginSection("gwde", 1);
        v.field(total_);
        v.field(next_);
        v.endSection();
    }

  private:
    int total_ = 0;
    BlockId next_ = 0;
};

} // namespace equalizer

#endif // EQ_GPU_GWDE_HH
