#include "kernel_invocation.hh"

namespace equalizer
{

void
KernelInvocation::visitState(StateVisitor &v)
{
    v.beginSection("kinv", 1);
    v.field(tenantId_);
    v.field(name_);
    v.field(sms_);
    gwde_.visitState(v);
    v.field(active_);
    v.field(launchCycle_);
    v.field(completeCycle_);
    v.field(instrBefore_);
    v.field(blocksBefore_);
    v.field(instructions_);
    v.field(blocksCompleted_);
    if (!v.saving())
        launch_ = nullptr; // resumeTenants()/resumeKernel() re-binds
    v.endSection();
}

} // namespace equalizer
