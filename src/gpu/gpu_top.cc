#include "gpu_top.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/log.hh"
#include "gpu/scheduler_core.hh"

namespace equalizer
{

namespace
{

/**
 * Tick of the clock edge that brings @p domain from its current cycle
 * @p dom_now to cycle @p c (requires c > dom_now). noWakeup maps to the
 * far future without overflowing the multiply.
 */
Tick
edgeTickOf(const ClockDomain &domain, Cycle c, Cycle dom_now)
{
    if (c == noWakeup)
        return std::numeric_limits<Tick>::max();
    return domain.nextEdge() +
           static_cast<Tick>(c - dom_now - 1) * domain.period();
}

/** Number of @p domain edges that fire at ticks strictly before @p t. */
Cycle
edgesBefore(const ClockDomain &domain, Tick t)
{
    if (domain.nextEdge() >= t)
        return 0;
    return static_cast<Cycle>((t - 1 - domain.nextEdge()) /
                              domain.period()) +
           1;
}

} // namespace

GpuTop::GpuTop(GpuConfig cfg, PowerConfig power)
    : cfg_(cfg), energy_(power), smDomain_("sm", cfg.smNominalHz),
      memDomain_("mem", cfg.memNominalHz),
      memSystem_(cfg_.mem, cfg_.numSms, energy_)
{
    energy_.ensureSmShards(cfg_.numSms);
    for (int s = 0; s < cfg_.numSms; ++s)
        sms_.push_back(std::make_unique<StreamingMultiprocessor>(
            cfg_, s, memSystem_, energy_));
    energy_.setDomainStates(smDomain_.state(), memDomain_.state());
    smInvocation_.assign(static_cast<std::size_t>(cfg_.numSms), -1);
    configureTenants({});
}

void
GpuTop::tickSms(Cycle mem_now)
{
    // The parallel phase: SMs share no mutable state with each other
    // (each owns its warps, L1, LSU, injection/response queues and
    // energy shard), so they may tick concurrently. Everything after
    // this call runs on the calling thread — the epoch barrier.
    if (executor_ && executor_->threads() > 1) {
        executor_->parallelFor(numSms(), [this, mem_now](int s) {
            sms_[static_cast<std::size_t>(s)]->tick(mem_now);
        });
    } else {
        for (const auto &sm : sms_)
            sm->tick(mem_now);
    }
}

void
GpuTop::requestVfState(PowerDomain domain, VfState target)
{
    ClockDomain &d =
        domain == PowerDomain::Sm ? smDomain_ : memDomain_;
    if (d.state() == target && !d.transitionPending())
        return;
    const Tick delay = vrmTransitionSmCycles * smDomain_.period();
    d.scheduleState(target, d.nextEdge() + delay);
}

void
GpuTop::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_) {
        tracer_->attach(numSms());
        for (int s = 0; s < numSms(); ++s)
            sms_[static_cast<std::size_t>(s)]->setTraceRing(
                tracer_->ring(s));
        // Built-in device gauges, sampled once per tracer epoch.
        auto &g = tracer_->gauges();
        g.define("instructions");
        g.define("l1_hit_rate");
        g.define("l2_hit_rate");
        g.define("dram_accesses");
        g.define("mean_dram_queue_depth");
        defineTenantGauges();
    } else {
        for (const auto &sm : sms_)
            sm->setTraceRing(nullptr);
    }
}

void
GpuTop::defineTenantGauges()
{
    // Only explicitly configured tenants get gauges: the implicit
    // whole-device tenant must leave single-tenant traces byte-
    // identical to the pre-tenant format.
    if (!explicitTenants_)
        return;
    for (auto &t : tenants_) {
        t.setGaugeNames("tenant." + t.name() + ".dispatched_blocks",
                        "tenant." + t.name() + ".limiter_debt",
                        "tenant." + t.name() + ".occupancy_share");
        if (tracer_) {
            auto &g = tracer_->gauges();
            g.define(t.gaugeDispatched());
            g.define(t.gaugeDebt());
            g.define(t.gaugeShare());
        }
    }
}

void
GpuTop::traceEpoch(Cycle cycle)
{
    // Per-SM queue high-water marks, collected at the barrier where
    // nothing else runs (the counters are single-writer during the
    // parallel phase; reading them here is ordered by the join).
    std::uint64_t issued = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    for (int s = 0; s < numSms(); ++s) {
        auto &sm = *sms_[static_cast<std::size_t>(s)];
        tracer_->emit(makeSmEvent(
            TraceEventKind::HighWater, cycle, s,
            static_cast<std::int64_t>(sm.lsu().takeQueueHighWater()),
            static_cast<std::int64_t>(
                memSystem_.smInjectQueue(s).takeHighWater()),
            static_cast<std::int64_t>(sm.l1().takeMshrHighWater())));
        issued += sm.instructionsIssued();
        l1_hits += sm.l1().hits();
        l1_misses += sm.l1().misses();
    }

    auto &g = tracer_->gauges();
    g.set("instructions", static_cast<double>(issued));
    const std::uint64_t l1_total = l1_hits + l1_misses;
    g.set("l1_hit_rate", l1_total ? static_cast<double>(l1_hits) /
                                        static_cast<double>(l1_total)
                                  : 0.0);
    const std::uint64_t l2_total =
        memSystem_.l2Hits() + memSystem_.l2Misses();
    g.set("l2_hit_rate",
          l2_total ? static_cast<double>(memSystem_.l2Hits()) /
                         static_cast<double>(l2_total)
                   : 0.0);
    g.set("dram_accesses",
          static_cast<double>(memSystem_.dramAccesses()));
    g.set("mean_dram_queue_depth", memSystem_.meanDramQueueDepth());

    // Per-tenant attribution gauges (explicit tenants only, so the
    // single-tenant trace format is unchanged). Set here in the serial
    // barrier — the canonical drain keeps traces byte-identical across
    // thread counts.
    if (explicitTenants_) {
        for (const auto &t : tenants_) {
            g.set(t.gaugeDispatched(),
                  static_cast<double>(t.dispatchedBlocks()));
            g.set(t.gaugeDebt(), t.limiterDebt());
            g.set(t.gaugeShare(), t.occupancyShare());
        }
    }

    tracer_->drainEpoch(cycle);
}

void
GpuTop::setAllTargetBlocks(int target)
{
    for (const auto &sm : sms_)
        sm->setTargetBlocks(target);
}

void
GpuTop::clearPolicyHooks()
{
    for (const auto &sm : sms_) {
        sm->l1().setEvictionHook({});
        sm->l1().setMissHook({});
        sm->setMemIssueFilter({});
    }
}

void
GpuTop::configureTenants(const std::vector<TenantSpec> &specs,
                         PartitionPolicy policy)
{
    if (run_.active)
        fatal("configureTenants: not allowed while a run is in flight");
    if (pendingLaunches_ > 0)
        fatal("configureTenants: ", pendingLaunches_,
              " queued launch(es) pending; run or reset them first");

    tenants_.clear();
    invocations_.clear();
    std::fill(smInvocation_.begin(), smInvocation_.end(), -1);

    if (specs.empty()) {
        // The implicit whole-device tenant of the classic paths.
        std::vector<int> all(static_cast<std::size_t>(numSms()));
        std::iota(all.begin(), all.end(), 0);
        tenants_.emplace_back(0, TenantSpec{"default", 1.0},
                              std::move(all));
        explicitTenants_ = false;
        return;
    }

    const int nt = static_cast<int>(specs.size());
    if (nt > numSms())
        fatal("configureTenants: ", nt, " tenants but only ", numSms(),
              " SMs (partitions are exclusive)");

    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nt));
    for (int s = 0; s < numSms(); ++s) {
        const int t = policy == PartitionPolicy::RoundRobin
                          ? s % nt
                          : std::min(nt - 1, s * nt / numSms());
        parts[static_cast<std::size_t>(t)].push_back(s);
    }

    for (int i = 0; i < nt; ++i) {
        TenantSpec spec = specs[static_cast<std::size_t>(i)];
        if (spec.name.empty())
            spec.name = "t" + std::to_string(i);
        if (!(spec.smLimit > 0.0) || spec.smLimit > 1.0)
            fatal("tenant '", spec.name, "': sm_limit must be in (0, 1]"
                  ", got ", spec.smLimit);
        tenants_.emplace_back(i, std::move(spec),
                              std::move(parts[static_cast<std::size_t>(
                                  i)]));
    }
    explicitTenants_ = true;
    defineTenantGauges();
}

void
GpuTop::enqueueKernel(int tenant, const KernelLaunch &kernel)
{
    if (tenant < 0 || tenant >= numTenants())
        fatal("enqueueKernel: no tenant ", tenant, " (have ",
              numTenants(), ")");
    tenants_[static_cast<std::size_t>(tenant)].enqueue(&kernel);
    ++pendingLaunches_;
}

std::uint64_t
GpuTop::instructionsOn(const std::vector<int> &sm_set) const
{
    std::uint64_t n = 0;
    for (int s : sm_set)
        n += sms_[static_cast<std::size_t>(s)]->instructionsIssued();
    return n;
}

std::uint64_t
GpuTop::blocksCompletedOn(const std::vector<int> &sm_set) const
{
    std::uint64_t n = 0;
    for (int s : sm_set)
        n += sms_[static_cast<std::size_t>(s)]->blocksCompleted();
    return n;
}

KernelInvocation &
GpuTop::makeInvocation(Tenant &tenant, const KernelLaunch &kernel)
{
    invocations_.emplace_back(tenant.id(), &kernel, tenant.smSet());
    KernelInvocation &inv = invocations_.back();
    const int idx = static_cast<int>(invocations_.size()) - 1;
    for (int s : inv.smSet()) {
        sms_[static_cast<std::size_t>(s)]->setKernel(&kernel);
        smInvocation_[static_cast<std::size_t>(s)] = idx;
    }
    return inv;
}

void
GpuTop::launchHooks(KernelInvocation &inv)
{
    inv.onLaunch(smDomain_.cycle(), instructionsOn(inv.smSet()),
                 blocksCompletedOn(inv.smSet()));
    if (controller_)
        controller_->onInvocationLaunch(*this, inv);
    if (tracer_)
        tracer_->emit(makeStringEvent(TraceEventKind::KernelBegin,
                                      smDomain_.cycle(),
                                      inv.name().c_str()));
}

void
GpuTop::distributeBlocks()
{
    // Breadth-first per invocation: one block per SM per sweep, so
    // small grids spread across the partition instead of piling onto
    // the first few SMs. Dispatch is gated by the owning tenant's
    // token bucket (tenant.hh); partitions are exclusive, so the
    // per-invocation order equals the legacy whole-device sweep.
    for (auto &inv : invocations_) {
        if (!inv.active() || !inv.gwde().hasBlocks())
            continue;
        Tenant &t = tenants_[static_cast<std::size_t>(inv.tenantId())];
        if (!t.canDispatch())
            continue;
        bool assigned = true;
        while (assigned && inv.gwde().hasBlocks()) {
            assigned = false;
            for (int s : inv.smSet()) {
                if (!inv.gwde().hasBlocks())
                    break;
                auto &sm = *sms_[static_cast<std::size_t>(s)];
                if (sm.wantsBlock()) {
                    sm.assignBlock(inv.gwde().takeBlock());
                    t.onDispatch();
                    assigned = true;
                }
            }
        }
    }
}

bool
GpuTop::allDone() const
{
    if (pendingLaunches_ > 0)
        return false;
    for (const auto &inv : invocations_)
        if (inv.active() && inv.gwde().hasBlocks())
            return false;
    for (const auto &sm : sms_)
        if (!sm->idle())
            return false;
    return true;
}

void
GpuTop::completeInvocation(KernelInvocation &inv)
{
    inv.onComplete(smDomain_.cycle(), instructionsOn(inv.smSet()),
                   blocksCompletedOn(inv.smSet()));
    for (int s : inv.smSet())
        smInvocation_[static_cast<std::size_t>(s)] = -1;
    if (tracer_)
        tracer_->emit(makeStringEvent(TraceEventKind::KernelEnd,
                                      smDomain_.cycle(),
                                      inv.name().c_str()));
}

void
GpuTop::serviceTenants()
{
    // Relaunch: the cycle an invocation's grid drains, its tenant's
    // next queued kernel takes over the partition. Checked before the
    // limiter step so a fresh grid's pending work is visible to it.
    if (pendingLaunches_ > 0) {
        for (std::size_t i = 0; i < invocations_.size(); ++i) {
            KernelInvocation &inv = invocations_[i];
            if (!inv.active() || inv.gwde().hasBlocks())
                continue;
            Tenant &t =
                tenants_[static_cast<std::size_t>(inv.tenantId())];
            if (t.queueEmpty())
                continue; // completion detected lazily by allDone()
            bool idle = true;
            for (int s : inv.smSet()) {
                if (!sms_[static_cast<std::size_t>(s)]->idle()) {
                    idle = false;
                    break;
                }
            }
            if (!idle)
                continue;
            completeInvocation(inv);
            const KernelLaunch *next = t.popQueue();
            --pendingLaunches_;
            // makeInvocation may reallocate invocations_; inv is dead
            // after this point.
            KernelInvocation &fresh = makeInvocation(t, *next);
            launchHooks(fresh);
        }
    }

    // Token-bucket limiter step for every tenant (busy accounting also
    // feeds the occupancy gauges and the fairness bench).
    if (explicitTenants_) {
        for (auto &t : tenants_) {
            int busy = 0;
            for (int s : t.smSet()) {
                if (sms_[static_cast<std::size_t>(s)]->residentBlocks() >
                    0)
                    ++busy;
            }
            bool pending = false;
            for (const auto &inv : invocations_) {
                if (inv.active() && inv.tenantId() == t.id() &&
                    inv.gwde().hasBlocks()) {
                    pending = true;
                    break;
                }
            }
            t.tickLimiter(busy, pending);
        }
    }
}

GpuTop::Snapshot
GpuTop::takeSnapshot() const
{
    Snapshot s;
    s.smCycles = smDomain_.cycle();
    s.memCycles = memDomain_.cycle();
    s.dynamicJoules = energy_.dynamicJoules();
    for (const auto &sm : sms_) {
        s.instructions += sm->instructionsIssued();
        s.outcomes += sm->outcomeTotals();
        s.l1Hits += sm->l1().hits();
        s.l1Misses += sm->l1().misses();
    }
    s.l2Hits = memSystem_.l2Hits();
    s.l2Misses = memSystem_.l2Misses();
    s.dramAccesses = memSystem_.dramAccesses();
    s.dramRowHits = memSystem_.dramRowHits();
    s.dramPoweredDownCycles = memSystem_.dramPoweredDownCycles();
    for (int i = 0; i < numVfStates; ++i) {
        const auto v = static_cast<VfState>(i);
        s.smResidency[static_cast<std::size_t>(i)] = smDomain_.residency(v);
        s.memResidency[static_cast<std::size_t>(i)] =
            memDomain_.residency(v);
    }
    return s;
}

void
GpuTop::beginRun(const std::string &label, Cycle max_sm_cycles)
{
    currentKernelName_ = label;
    run_.before = takeSnapshot();
    run_.cycleLimit = smDomain_.cycle() + max_sm_cycles;
    run_.active = true;
    ffAtRunStart_ = fastForwardedCycles_;
}

bool
GpuTop::tryFastForward(Cycle sm_stop)
{
    // A per-cycle observer may read (or mutate) anything; never skip
    // an edge it would have seen.
    if (observer_)
        return false;

    // Multi-tenant runs (explicit partitions, queued relaunches or
    // several in-flight invocations) take the slow path outright: the
    // limiter and relaunch logic act on arbitrary cycles.
    if (explicitTenants_ || pendingLaunches_ > 0 ||
        invocations_.size() != 1)
        return false;

    const Cycle sm_now = smDomain_.cycle();
    if (sm_now < ffBackoffUntil_)
        return false;
    // Deterministic backoff: a failed probe in a busy phase doubles the
    // re-probe distance (capped low — stall onsets must not be missed
    // by much). Purely a probe-cost throttle: skips are transparent, so
    // when the probe runs has no effect on any simulated quantity.
    const auto fail = [&] {
        ffBackoffUntil_ = sm_now + ffBackoff_;
        ffBackoff_ = std::min<Cycle>(ffBackoff_ * 2, 32);
        return false;
    };

    // The controller's next possible action bounds the span; the
    // default (0) is a standing veto for policies without the hook.
    const Cycle ctrl_bound =
        controller_ ? controller_->nextActionCycle(*this, sm_now)
                    : noWakeup;
    if (ctrl_bound <= sm_now)
        return fail();

    // Per-SM stall probes in fixed index order, so the decision (and
    // the min-reduce below) is identical at any threads= setting.
    Cycle sm_wakeup = noWakeup;
    for (int s = 0; s < numSms(); ++s) {
        const auto chk = sms_[static_cast<std::size_t>(s)]->checkStalled();
        if (!chk.skippable)
            return fail();
        if (chk.wakeup <= sm_now)
            fatal("fast path: SM ", s, " reported stall wakeup ",
                  chk.wakeup, " at cycle ", sm_now,
                  " (not in the future); rerun with fast_path=0 and "
                  "diff traces — see docs/FAST_PATH.md");
        sm_wakeup = std::min(sm_wakeup, chk.wakeup);
    }

    // Safety net: pending work the barrier phase would distribute means
    // the machine is not quiescent. (Normally unreachable — the last
    // distributeBlocks() already satisfied every willing SM.)
    const KernelInvocation &inv = invocations_.front();
    if (inv.active() && inv.gwde().hasBlocks())
        for (const auto &sm : sms_)
            if (sm->wantsBlock())
                return fail();

    const Cycle mem_now = memDomain_.cycle();
    const Cycle mem_ev = memSystem_.nextEventCycle(mem_now);
    if (mem_ev <= mem_now)
        return fail(); // hard veto: a matured response awaits an SM tick

    Cycle sm_bound = std::min(sm_wakeup, ctrl_bound);
    if (tracer_ && tracer_->attached()) {
        const Cycle e = tracer_->epochCycles();
        sm_bound = std::min(sm_bound, (sm_now / e + 1) * e);
    }
    // The edge after the limit must run slowly so the panic fires.
    sm_bound = std::min(sm_bound, run_.cycleLimit + 1);
    // A bounded step() pauses once its quantum boundary is reached, so
    // a skip may land exactly on it but never beyond. (sm_stop !=
    // noWakeup, so the + 1 cannot wrap.)
    if (sm_stop != noWakeup)
        sm_bound = std::min(sm_bound, sm_stop + 1);

    // Convert both bounds to global time and skip every edge strictly
    // before the earliest, leaving that edge for the slow path. VF
    // transitions apply on an edge at-or-after their due tick, so
    // clamping to the due tick keeps the span transition-free.
    Tick tstar = std::min(edgeTickOf(smDomain_, sm_bound, sm_now),
                          edgeTickOf(memDomain_, mem_ev, mem_now));
    if (smDomain_.transitionPending())
        tstar = std::min(tstar, smDomain_.pendingAt());
    if (memDomain_.transitionPending())
        tstar = std::min(tstar, memDomain_.pendingAt());

    const Cycle n_mem = edgesBefore(memDomain_, tstar);
    const Cycle n_sm = edgesBefore(smDomain_, tstar);
    if (n_mem == 0 && n_sm == 0)
        return fail();

    memDomain_.advanceCycles(n_mem);
    memSystem_.skipCycles(mem_now, n_mem);
    smDomain_.advanceCycles(n_sm);
    if (n_sm > 0)
        for (const auto &sm : sms_)
            sm->skipCycles(n_sm);
    fastForwardedCycles_ += n_sm;
    ffBackoff_ = 1;
    ffBackoffUntil_ = 0;
    return true;
}

RunMetrics
GpuTop::finishRun()
{
    if (controller_)
        controller_->onKernelComplete(*this);

    // Close out invocations still open — the common case: the final
    // invocation's completion is detected lazily by allDone(), so its
    // KernelEnd lands here, after the controller's completion hook,
    // exactly like the legacy single-kernel path.
    for (auto &inv : invocations_)
        if (inv.active())
            completeInvocation(inv);

    if (tracer_)
        tracer_->drainRings(smDomain_.cycle());

    const Snapshot before = run_.before;
    const Snapshot after = takeSnapshot();
    run_.active = false;

    RunMetrics m;
    m.kernel = currentKernelName_;
    m.smCycles = after.smCycles - before.smCycles;
    m.memCycles = after.memCycles - before.memCycles;
    m.instructions = after.instructions - before.instructions;
    m.dynamicJoules = after.dynamicJoules - before.dynamicJoules;

    std::array<Tick, numVfStates> sm_res{};
    std::array<Tick, numVfStates> mem_res{};
    Tick elapsed = 0;
    for (std::size_t i = 0; i < numVfStates; ++i) {
        sm_res[i] = after.smResidency[i] - before.smResidency[i];
        mem_res[i] = after.memResidency[i] - before.memResidency[i];
        elapsed += sm_res[i];
    }
    m.smResidency = sm_res;
    m.memResidency = mem_res;
    m.seconds = static_cast<double>(elapsed) /
                static_cast<double>(ticksPerSecond);

    const std::uint64_t pd_cycles =
        after.dramPoweredDownCycles - before.dramPoweredDownCycles;
    const std::uint64_t partition_cycles =
        (after.memCycles - before.memCycles) *
        static_cast<std::uint64_t>(memSystem_.numPartitions());
    m.dramPowerDownFraction =
        partition_cycles
            ? static_cast<double>(pd_cycles) /
                  static_cast<double>(partition_cycles)
            : 0.0;
    m.staticJoules = energy_.staticJoules(sm_res, mem_res,
                                          m.dramPowerDownFraction);

    m.outcomeTotals = after.outcomes;
    m.outcomeTotals.active -= before.outcomes.active;
    m.outcomeTotals.waiting -= before.outcomes.waiting;
    m.outcomeTotals.issued -= before.outcomes.issued;
    m.outcomeTotals.excessAlu -= before.outcomes.excessAlu;
    m.outcomeTotals.excessMem -= before.outcomes.excessMem;
    m.outcomeTotals.barrier -= before.outcomes.barrier;
    m.outcomeTotals.unaccounted -= before.outcomes.unaccounted;
    m.outcomeCycles = (after.smCycles - before.smCycles) *
                      static_cast<std::uint64_t>(numSms());

    m.l1Hits = after.l1Hits - before.l1Hits;
    m.l1Misses = after.l1Misses - before.l1Misses;
    m.l2Hits = after.l2Hits - before.l2Hits;
    m.l2Misses = after.l2Misses - before.l2Misses;
    m.dramAccesses = after.dramAccesses - before.dramAccesses;
    m.dramRowHits = after.dramRowHits - before.dramRowHits;
    m.fastForwardedCycles = fastForwardedCycles_ - ffAtRunStart_;
    return m;
}

RunMetrics
GpuTop::runKernel(const KernelLaunch &kernel, Cycle max_sm_cycles)
{
    SchedulerCore core(*this);
    core.launchKernel(kernel, max_sm_cycles);
    core.run();
    return core.finish();
}

RunMetrics
GpuTop::runTenants(Cycle max_sm_cycles, const std::string &label)
{
    SchedulerCore core(*this);
    core.launchTenants(max_sm_cycles, label);
    core.run();
    return core.finish();
}

RunMetrics
GpuTop::runKernelsConcurrent(
    const std::vector<const KernelLaunch *> &kernels, Cycle max_sm_cycles)
{
    EQ_ASSERT(!kernels.empty(), "runKernelsConcurrent with no kernels");

    // Compatibility shim: one unlimited tenant per kernel on the
    // legacy round-robin partition (SM i -> kernel i % nk).
    std::vector<TenantSpec> specs;
    std::string co_name = "concurrent";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        specs.push_back({"t" + std::to_string(i), 1.0});
        co_name += ":" + kernels[i]->info().name;
    }
    configureTenants(specs, PartitionPolicy::RoundRobin);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        enqueueKernel(static_cast<int>(i), *kernels[i]);

    RunMetrics m = runTenants(max_sm_cycles, co_name);

    // Restore the implicit whole-device tenant so a later runKernel()
    // sees the classic configuration.
    configureTenants({});
    return m;
}

RunMetrics
GpuTop::resumeKernel(const KernelLaunch &kernel)
{
    SchedulerCore core(*this);
    core.adoptResumedKernel(kernel);
    core.run();
    return core.finish();
}

RunMetrics
GpuTop::resumeTenants(const std::vector<const KernelLaunch *> &kernels)
{
    SchedulerCore core(*this);
    core.adoptResumedTenants(kernels);
    core.run();
    return core.finish();
}

void
GpuTop::rebuildSmInvocationMap()
{
    std::fill(smInvocation_.begin(), smInvocation_.end(), -1);
    for (std::size_t i = 0; i < invocations_.size(); ++i) {
        if (!invocations_[i].active())
            continue;
        for (int s : invocations_[i].smSet())
            smInvocation_[static_cast<std::size_t>(s)] =
                static_cast<int>(i);
    }
}

void
GpuTop::visitState(StateVisitor &v, ControllerMismatch on_mismatch)
{
    v.beginSection("gpu", 2);
    v.field(smDomain_);
    v.field(memDomain_);
    v.field(energy_);
    v.field(memSystem_);
    for (const auto &sm : sms_)
        v.field(*sm);

    // v2: tenants and first-class invocations replace the former
    // device-global work-distribution cursor, so a checkpoint taken
    // mid-co-run carries every in-flight grid (docs/MULTI_TENANT.md).
    std::uint64_t n_tenants = tenants_.size();
    v.field(n_tenants);
    if (!v.saving())
        tenants_.assign(static_cast<std::size_t>(n_tenants), Tenant{});
    for (auto &t : tenants_)
        t.visitState(v);
    v.field(explicitTenants_);

    std::uint64_t n_inv = invocations_.size();
    v.field(n_inv);
    if (!v.saving())
        invocations_.assign(static_cast<std::size_t>(n_inv),
                            KernelInvocation{});
    for (auto &inv : invocations_)
        inv.visitState(v);

    v.field(run_.active);
    v.field(run_.before);
    v.field(run_.cycleLimit);
    v.field(currentKernelName_);
    if (!v.saving()) {
        rebuildSmInvocationMap();
        pendingLaunches_ = 0;
        for (const auto &t : tenants_)
            pendingLaunches_ += t.queueSize();
        defineTenantGauges();
    }

    // Controller state is tagged with the policy name so a restore can
    // tell whether the stored state belongs to the live controller.
    v.beginSection("ctrl", 1);
    std::string stored = controller_ ? controller_->name() : "";
    v.field(stored);
    if (v.saving()) {
        if (controller_)
            controller_->visitControllerState(v, *this);
    } else {
        const std::string live = controller_ ? controller_->name() : "";
        if (stored == live) {
            if (controller_)
                controller_->visitControllerState(v, *this);
        } else if (on_mismatch == ControllerMismatch::Fatal) {
            fatal("checkpoint carries state of controller '", stored,
                  "' but this instance runs '", live,
                  "'; use the same policy (or fork, which drops it)");
        } else {
            v.skipRemainingSection();
        }
    }
    v.endSection();

    v.endSection();
}

std::vector<std::uint8_t>
GpuTop::saveStateBuffer() const
{
    // Serialization through the visitor only reads when saving; the
    // const_cast lets one visitState() serve both directions.
    auto &self = const_cast<GpuTop &>(*this);
    BufferStateWriter w(configFingerprint(cfg_, energy_.config()));
    self.visitState(w, ControllerMismatch::Fatal);

    // Complete the trace prefix: drain buffered SM events, then mark
    // the save point so a resumed run's suffix trace concatenates onto
    // this one (docs/TRACING.md).
    if (tracer_ && tracer_->attached()) {
        tracer_->drainRings(smDomain_.cycle());
        tracer_->emit(makeDeviceEvent(TraceEventKind::Checkpoint,
                                      smDomain_.cycle()));
    }
    return w.take();
}

void
GpuTop::loadStateBuffer(const std::vector<std::uint8_t> &buf,
                        ControllerMismatch on_mismatch)
{
    // Events recorded before the restore belong to the abandoned
    // timeline; push them out before the clock jumps.
    if (tracer_ && tracer_->attached())
        tracer_->drainRings(smDomain_.cycle());

    BufferStateReader r(buf, configFingerprint(cfg_, energy_.config()));
    visitState(r, on_mismatch);
    r.finish();

    if (tracer_)
        tracer_->emit(makeDeviceEvent(TraceEventKind::Restore,
                                      smDomain_.cycle()));
}

void
GpuTop::saveCheckpoint(const std::string &path) const
{
    writeCheckpointFile(path, saveStateBuffer());
}

void
GpuTop::loadCheckpoint(const std::string &path)
{
    loadStateBuffer(readCheckpointFile(path), ControllerMismatch::Fatal);
}

void
GpuTop::forkFrom(const GpuTop &parent)
{
    loadStateBuffer(parent.saveStateBuffer(), ControllerMismatch::Drop);
    if (tracer_)
        tracer_->emit(makeDeviceEvent(TraceEventKind::Fork,
                                      smDomain_.cycle()));
}

} // namespace equalizer
