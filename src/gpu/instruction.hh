/**
 * @file
 * The abstract warp instruction consumed by the SM pipeline model.
 *
 * Instruction streams are synthetic (see DESIGN.md): each instruction
 * carries exactly the microarchitectural information the timing model
 * needs — operation class, dependence on earlier results, and, for memory
 * operations, the coalesced line addresses.
 */

#ifndef EQ_GPU_INSTRUCTION_HH
#define EQ_GPU_INSTRUCTION_HH

#include <array>

#include "common/types.hh"

namespace equalizer
{

/** Functional class of a warp instruction. */
enum class OpClass
{
    Alu,    ///< integer/float arithmetic
    Sfu,    ///< special function (transcendental)
    Mem,    ///< global/texture load or store
    Shared, ///< on-chip scratchpad (shared memory) access
    Sync,   ///< block-wide barrier
};

/** SIMT width of a warp. */
inline constexpr int warpLanes = 32;

/** Maximum coalesced 128 B transactions per warp memory instruction. */
inline constexpr int maxTransactionsPerInst = 32;

/** One decoded warp instruction at the head of the instruction buffer. */
struct WarpInstruction
{
    OpClass op = OpClass::Alu;

    /**
     * Active SIMT lanes (branch divergence): fewer lanes do the same
     * work in time but burn proportionally less datapath energy.
     */
    int activeLanes = warpLanes;

    /**
     * For Shared ops: bank-conflict serialization factor. A conflicted
     * access occupies the shared-memory pipe for this many cycles.
     */
    int conflictWays = 1;

    /**
     * True when this instruction reads the result of the warp's previous
     * arithmetic instruction (stalls until its latency elapses).
     */
    bool dependsOnPrev = false;

    /**
     * True when this instruction consumes data from the warp's
     * outstanding loads (stalls until pendingLoads reaches zero).
     */
    bool dependsOnLoads = false;

    // --- Memory-instruction payload.
    bool write = false;
    bool texture = false;
    int transactionCount = 0;
    std::array<Addr, maxTransactionsPerInst> lineAddrs{};
};

} // namespace equalizer

#endif // EQ_GPU_INSTRUCTION_HH
