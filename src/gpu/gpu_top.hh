/**
 * @file
 * The whole GPU: clock domains, SMs, memory system, energy accounting,
 * work distribution and the controller hook.
 */

#ifndef EQ_GPU_GPU_TOP_HH
#define EQ_GPU_GPU_TOP_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/controller.hh"
#include "gpu/gpu_config.hh"
#include "gpu/gwde.hh"
#include "gpu/kernel_launch.hh"
#include "gpu/metrics.hh"
#include "gpu/sm.hh"
#include "mem/memory_system.hh"
#include "power/energy_model.hh"
#include "sim/clock_domain.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{

/** Latency of a VF transition once committed (paper: 512 SM cycles). */
inline constexpr Cycle vrmTransitionSmCycles = 512;

/**
 * Top-level GPU model.
 *
 * runKernel() executes one kernel invocation to completion, interleaving
 * the SM and memory clock domains in global-time order, and returns the
 * invocation's metrics. The instance retains architectural state (VF
 * states, controller state, L2 contents) across invocations, so an
 * application is simulated by calling runKernel repeatedly.
 */
class GpuTop
{
  public:
    explicit GpuTop(GpuConfig cfg = GpuConfig::gtx480(),
                    PowerConfig power = PowerConfig::gtx480());

    /** Install the runtime policy (non-owning; may be nullptr). */
    void setController(GpuController *controller)
    {
        controller_ = controller;
    }

    /**
     * Install a worker pool for the per-SM parallel phase (non-owning;
     * nullptr or a 1-thread pool selects the serial oracle path). SMs
     * then tick concurrently between epoch barriers; the memory system,
     * controller hooks, observers, work distribution and stats all stay
     * on the calling thread, so results are bit-identical to the serial
     * path for any thread count (docs/PARALLELISM.md).
     */
    void setParallelExecutor(ParallelExecutor *executor)
    {
        executor_ = executor;
    }

    /** Threads used for the SM phase (1 = serial path). */
    int simThreads() const
    {
        return executor_ ? executor_->threads() : 1;
    }

    /**
     * Install a per-SM-cycle observer (tracing for figures). Runs after
     * the controller hook.
     */
    void setCycleObserver(std::function<void(GpuTop &)> observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Execute one kernel invocation to completion.
     *
     * @param kernel The launch to run.
     * @param max_sm_cycles Safety valve: panic when exceeded.
     */
    RunMetrics runKernel(const KernelLaunch &kernel,
                         Cycle max_sm_cycles = 2'000'000'000ULL);

    /**
     * Execute several kernels concurrently, each on its own SM
     * partition (SM i runs kernels[i % kernels.size()]), as newer GPU
     * generations allow — the scenario the paper cites as motivation
     * for per-SM decision making (Section I). Equalizer's per-SM block
     * tuning still works per kernel; the single global VRM must
     * compromise between the kernels' frequency preferences.
     *
     * @return Combined metrics over the co-run.
     */
    RunMetrics
    runKernelsConcurrent(const std::vector<const KernelLaunch *> &kernels,
                         Cycle max_sm_cycles = 2'000'000'000ULL);

    /**
     * Request a VF state change on one domain. Takes effect after the
     * VRM transition latency (512 SM cycles), paper Section V-A1.
     */
    void requestVfState(PowerDomain domain, VfState target);

    // --- Component access (controllers, tests, harness).
    int numSms() const { return static_cast<int>(sms_.size()); }

    StreamingMultiprocessor &sm(int i)
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    const StreamingMultiprocessor &sm(int i) const
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    ClockDomain &smDomain() { return smDomain_; }
    ClockDomain &memDomain() { return memDomain_; }
    const ClockDomain &smDomain() const { return smDomain_; }
    const ClockDomain &memDomain() const { return memDomain_; }

    MemorySystem &memorySystem() { return memSystem_; }
    EnergyModel &energy() { return energy_; }
    GlobalWorkDistributor &gwde() { return gwde_; }

    const GpuConfig &config() const { return cfg_; }

    /** The launch currently (or most recently) running. */
    const KernelLaunch *currentKernel() const { return currentKernel_; }

    /** Uniformly set every SM's target block count. */
    void setAllTargetBlocks(int target);

  private:
    struct Snapshot
    {
        Cycle smCycles = 0;
        Cycle memCycles = 0;
        std::uint64_t instructions = 0;
        double dynamicJoules = 0.0;
        WarpStateCounts outcomes;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t dramAccesses = 0;
        std::uint64_t dramRowHits = 0;
        std::uint64_t dramPoweredDownCycles = 0;
        std::array<Tick, numVfStates> smResidency{};
        std::array<Tick, numVfStates> memResidency{};
    };

    Snapshot takeSnapshot() const;
    void distributeBlocks();
    bool kernelDone() const;
    void tickSms(Cycle mem_now);

    GpuConfig cfg_;
    EnergyModel energy_;
    ClockDomain smDomain_;
    ClockDomain memDomain_;
    MemorySystem memSystem_;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms_;
    GlobalWorkDistributor gwde_;

    GpuController *controller_ = nullptr;
    ParallelExecutor *executor_ = nullptr;
    std::function<void(GpuTop &)> observer_;
    const KernelLaunch *currentKernel_ = nullptr;
};

} // namespace equalizer

#endif // EQ_GPU_GPU_TOP_HH
