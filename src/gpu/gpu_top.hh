/**
 * @file
 * The whole GPU: clock domains, SMs, memory system, energy accounting,
 * tenants, kernel invocations and the controller hook.
 */

#ifndef EQ_GPU_GPU_TOP_HH
#define EQ_GPU_GPU_TOP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/controller.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_invocation.hh"
#include "gpu/kernel_launch.hh"
#include "gpu/metrics.hh"
#include "gpu/sm.hh"
#include "gpu/tenant.hh"
#include "mem/memory_system.hh"
#include "power/energy_model.hh"
#include "sim/clock_domain.hh"
#include "sim/parallel_executor.hh"
#include "sim/state.hh"
#include "trace/tracer.hh"

namespace equalizer
{

/** Latency of a VF transition once committed (paper: 512 SM cycles). */
inline constexpr Cycle vrmTransitionSmCycles = 512;

/**
 * What to do when a checkpoint's controller state does not belong to
 * the live controller.
 */
enum class ControllerMismatch
{
    Fatal, ///< refuse the restore (loadCheckpoint: strict)
    Drop,  ///< discard the stored controller state (forkFrom: points
           ///< deliberately swap policies at the fork)
};

/**
 * Top-level GPU model.
 *
 * Execution is organised around first-class KernelInvocation objects,
 * each owning a launch, an SM partition and a work-distribution
 * cursor, grouped under Tenants (docs/MULTI_TENANT.md):
 *
 *  - runKernel() executes one whole-device invocation to completion
 *    and returns its metrics. The instance retains architectural state
 *    (VF states, controller state, L2 contents) across invocations, so
 *    an application is simulated by calling runKernel repeatedly.
 *  - configureTenants()/enqueueKernel()/runTenants() co-run several
 *    tenants on exclusive SM partitions, each with a queue of
 *    invocations and an optional SM-utilization limiter.
 */
class GpuTop
{
  public:
    explicit GpuTop(GpuConfig cfg = GpuConfig::gtx480(),
                    PowerConfig power = PowerConfig::gtx480());

    /** Install the runtime policy (non-owning; may be nullptr). */
    void setController(GpuController *controller)
    {
        controller_ = controller;
    }

    /**
     * Remove every per-SM hook a policy may have installed (L1
     * eviction/miss observers, memory-issue filters). Called when a
     * sweep swaps policies mid-application so a hook-installing
     * warm-up policy (e.g. CCWS) cannot keep steering the suffix.
     */
    void clearPolicyHooks();

    /**
     * Install a worker pool for the per-SM parallel phase (non-owning;
     * nullptr or a 1-thread pool selects the serial oracle path). SMs
     * then tick concurrently between epoch barriers; the memory system,
     * controller hooks, observers, work distribution and stats all stay
     * on the calling thread, so results are bit-identical to the serial
     * path for any thread count (docs/PARALLELISM.md).
     */
    void setParallelExecutor(ParallelExecutor *executor)
    {
        executor_ = executor;
    }

    /** Threads used for the SM phase (1 = serial path). */
    int simThreads() const
    {
        return executor_ ? executor_->threads() : 1;
    }

    /**
     * Install a per-SM-cycle observer (tracing for figures). Runs after
     * the controller hook.
     */
    void setCycleObserver(std::function<void(GpuTop &)> observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Install the epoch-level tracer (non-owning; nullptr detaches).
     * Attaches a ring to every SM, registers the built-in device
     * gauges (plus per-tenant gauges when tenants are configured), and
     * drains at every tracer epoch boundary inside the serial barrier
     * phase — so a threads=N trace is byte-identical to threads=1
     * (docs/TRACING.md).
     */
    void setTracer(Tracer *tracer);

    /** The installed tracer, or nullptr (components emit through it). */
    Tracer *tracer() const { return tracer_; }

    /**
     * Execute one kernel invocation to completion on the whole device.
     * Requires the default single-tenant configuration (co-runs go
     * through enqueueKernel()/runTenants()).
     *
     * @param kernel The launch to run.
     * @param max_sm_cycles Safety valve: panic when exceeded.
     */
    RunMetrics runKernel(const KernelLaunch &kernel,
                         Cycle max_sm_cycles = 2'000'000'000ULL);

    // --- Multi-tenant residency (docs/MULTI_TENANT.md).

    /**
     * Carve the device into exclusive per-tenant SM partitions. An
     * empty spec list restores the implicit single tenant owning every
     * SM with no utilization limit. Not allowed mid-run. Tenant
     * smLimit values must lie in (0, 1]; 1.0 disables the limiter.
     */
    void configureTenants(const std::vector<TenantSpec> &specs,
                          PartitionPolicy policy =
                              PartitionPolicy::RoundRobin);

    int numTenants() const { return static_cast<int>(tenants_.size()); }
    Tenant &tenant(int i) { return tenants_[static_cast<std::size_t>(i)]; }
    const Tenant &tenant(int i) const
    {
        return tenants_[static_cast<std::size_t>(i)];
    }

    /** True after configureTenants() with a non-empty spec list. */
    bool explicitTenants() const { return explicitTenants_; }

    /** Queue a launch on one tenant (non-owning pointer). */
    void enqueueKernel(int tenant, const KernelLaunch &kernel);

    /**
     * Run every tenant's queue to completion: each tenant launches its
     * queue head on its partition, relaunching the next queued kernel
     * the cycle an invocation's grid drains. Returns combined
     * whole-device metrics; per-tenant attribution comes from
     * tenant(i) counters and the invocations() records.
     *
     * @param label RunMetrics::kernel for the co-run ("" derives
     *        "concurrent:a:b..." from the initial launches).
     */
    RunMetrics runTenants(Cycle max_sm_cycles = 2'000'000'000ULL,
                          const std::string &label = "");

    /**
     * Execute several kernels concurrently, each on its own SM
     * partition (SM i runs kernels[i % kernels.size()]).
     *
     * @deprecated Compatibility shim over configureTenants()/
     * enqueueKernel()/runTenants() — one unlimited tenant per kernel,
     * round-robin partition (bit-identical to the pre-tenant
     * implementation; single-kernel co-runs are bit-identical to
     * runKernel()). New code should drive the tenant API directly.
     *
     * @return Combined metrics over the co-run.
     */
    RunMetrics
    runKernelsConcurrent(const std::vector<const KernelLaunch *> &kernels,
                         Cycle max_sm_cycles = 2'000'000'000ULL);

    /** Invocations of the current (or most recent) run. */
    const std::vector<KernelInvocation> &invocations() const
    {
        return invocations_;
    }

    /**
     * Index into invocations() of the invocation owning SM @p s, or -1
     * when the SM is not bound to any current invocation.
     */
    int invocationOnSm(int s) const
    {
        return smInvocation_[static_cast<std::size_t>(s)];
    }

    /**
     * Request a VF state change on one domain. Takes effect after the
     * VRM transition latency (512 SM cycles), paper Section V-A1.
     */
    void requestVfState(PowerDomain domain, VfState target);

    // --- Component access (controllers, tests, harness).
    int numSms() const { return static_cast<int>(sms_.size()); }

    StreamingMultiprocessor &sm(int i)
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    const StreamingMultiprocessor &sm(int i) const
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    ClockDomain &smDomain() { return smDomain_; }
    ClockDomain &memDomain() { return memDomain_; }
    const ClockDomain &smDomain() const { return smDomain_; }
    const ClockDomain &memDomain() const { return memDomain_; }

    MemorySystem &memorySystem() { return memSystem_; }
    EnergyModel &energy() { return energy_; }

    const GpuConfig &config() const { return cfg_; }

    /**
     * The launch currently (or most recently) running, when the run
     * has a single identity; nullptr during multi-invocation co-runs.
     */
    const KernelLaunch *currentKernel() const
    {
        return invocations_.size() == 1 ? invocations_.front().launch()
                                        : nullptr;
    }

    /** Uniformly set every SM's target block count. */
    void setAllTargetBlocks(int target);

    // --- Checkpoint / restore / fork (docs/SNAPSHOT.md).

    /**
     * Serialize or restore the complete architectural state, including
     * tenants and in-flight invocations — a checkpoint taken mid-co-run
     * round-trips (resumeTenants()). On load, @p on_mismatch decides
     * what happens when the stored controller state belongs to a
     * different policy than the live controller.
     */
    void visitState(StateVisitor &v, ControllerMismatch on_mismatch);

    /** Serialize the full state into an in-memory checkpoint. */
    std::vector<std::uint8_t> saveStateBuffer() const;

    /**
     * Restore from an in-memory checkpoint. The checkpoint must carry
     * the fingerprint of this instance's configuration; any structural
     * difference is fatal().
     */
    void loadStateBuffer(const std::vector<std::uint8_t> &buf,
                         ControllerMismatch on_mismatch =
                             ControllerMismatch::Fatal);

    /** saveStateBuffer() to a file. */
    void saveCheckpoint(const std::string &path) const;

    /** Strict restore from a file written by saveCheckpoint(). */
    void loadCheckpoint(const std::string &path);

    /**
     * Become an exact copy of @p parent (same GpuConfig/PowerConfig
     * required). Controller state transfers when both sides run the
     * same policy and is dropped otherwise, so a sweep can fork one
     * warmed-up prefix into N differently-controlled points.
     */
    void forkFrom(const GpuTop &parent);

    /**
     * Continue a single-invocation run that was mid-flight when the
     * state was saved. @p kernel must be the same launch (validated by
     * name); instruction streams are rebuilt by deterministic replay.
     * Returns the full invocation's metrics, bit-identical to an
     * uninterrupted runKernel().
     */
    RunMetrics resumeKernel(const KernelLaunch &kernel);

    /**
     * Continue a (possibly multi-tenant) run that was mid-flight when
     * the state was saved. @p kernels must offer a launch for every
     * in-flight invocation and queued launch (matched by name).
     * Returns the whole run's combined metrics, bit-identical to an
     * uninterrupted runTenants().
     */
    RunMetrics
    resumeTenants(const std::vector<const KernelLaunch *> &kernels);

    /** True when the (restored) state is inside a run. */
    bool midKernel() const { return run_.active; }

    /**
     * SM cycles jumped over by the cycle-skipping fast path since
     * construction (docs/FAST_PATH.md). Deliberately not serialized and
     * not exported — it differs between fast- and slow-path runs, which
     * must stay byte-comparable everywhere else.
     */
    Cycle fastForwardedCycles() const { return fastForwardedCycles_; }

    /** Label of the in-flight (or most recent) run. */
    const std::string &currentKernelName() const
    {
        return currentKernelName_;
    }

  private:
    /**
     * The steppable run loop (gpu/scheduler_core.hh) owns the launch
     * preambles and the clock-edge interleave that used to live here;
     * runKernel()/runTenants()/resume*() are thin clients of it.
     */
    friend class SchedulerCore;

    struct Snapshot
    {
        Cycle smCycles = 0;
        Cycle memCycles = 0;
        std::uint64_t instructions = 0;
        double dynamicJoules = 0.0;
        WarpStateCounts outcomes;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t dramAccesses = 0;
        std::uint64_t dramRowHits = 0;
        std::uint64_t dramPoweredDownCycles = 0;
        std::array<Tick, numVfStates> smResidency{};
        std::array<Tick, numVfStates> memResidency{};
    };

    /**
     * Everything a run keeps between launch and completion, promoted
     * to a member so a checkpoint taken mid-run carries it and
     * resumeKernel()/resumeTenants() can re-enter the loop.
     */
    struct RunContext
    {
        bool active = false; ///< between beginRun() and run completion
        Snapshot before;     ///< baseline for the run's metrics
        Cycle cycleLimit = 0;
    };

    Snapshot takeSnapshot() const;
    void distributeBlocks();
    bool allDone() const;
    void tickSms(Cycle mem_now);

    /**
     * The cycle-skipping fast path (docs/FAST_PATH.md): when every SM
     * is provably stalled and the memory system provably quiet, compute
     * a conservative global bound (SM wakeups, memory deadlines,
     * controller actions, tracer epoch boundaries, the cycle limit, VF
     * transitions) and fire all clock edges strictly before it at once,
     * replaying their per-cycle bookkeeping analytically. Returns true
     * when at least one edge was skipped. Bit-identical to ticking by
     * construction; the caller re-enters the normal loop either way.
     * Vetoed outright during multi-tenant runs (docs/MULTI_TENANT.md).
     *
     * @param sm_stop Absolute SM cycle of the caller's quantum
     *     boundary (noWakeup = unbounded): a skip may land exactly on
     *     it but never beyond, so SchedulerCore::step(n) pauses on
     *     time even when the whole quantum is skippable.
     */
    bool tryFastForward(Cycle sm_stop);

    /** Whole-run setup shared by runKernel() and runTenants(). */
    void beginRun(const std::string &label, Cycle max_sm_cycles);

    /**
     * Create the invocation for @p tenant's launch @p kernel, bind its
     * SM partition and reset its work cursor. Hook/trace emission is
     * separate (launchHooks) so a run's initial launches bind every SM
     * before the first controller callback, like the legacy paths.
     */
    KernelInvocation &makeInvocation(Tenant &tenant,
                                     const KernelLaunch &kernel);

    /** onInvocationLaunch + KernelBegin trace event for @p inv. */
    void launchHooks(KernelInvocation &inv);

    /**
     * Record completion on @p inv (metrics deltas over its SM set),
     * unbind its SMs and emit its KernelEnd trace event.
     */
    void completeInvocation(KernelInvocation &inv);

    /**
     * Per-SM-cycle tenant bookkeeping in the serial barrier phase:
     * token-bucket limiter steps, and — when a tenant's grid drains —
     * invocation completion and relaunch of its next queued kernel.
     * Skipped entirely for the implicit single tenant (zero overhead
     * on the classic path).
     */
    void serviceTenants();

    /** Completion hooks, final trace events and the metrics delta. */
    RunMetrics finishRun();

    void traceEpoch(Cycle cycle);
    void defineTenantGauges();
    void rebuildSmInvocationMap();
    std::uint64_t instructionsOn(const std::vector<int> &sm_set) const;
    std::uint64_t blocksCompletedOn(const std::vector<int> &sm_set) const;

    GpuConfig cfg_;
    EnergyModel energy_;
    ClockDomain smDomain_;
    ClockDomain memDomain_;
    MemorySystem memSystem_;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms_;

    GpuController *controller_ = nullptr;
    ParallelExecutor *executor_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::function<void(GpuTop &)> observer_;

    /// Exclusive SM partitions; always at least the implicit tenant 0.
    std::vector<Tenant> tenants_;
    bool explicitTenants_ = false;

    /// The current (or most recent) run's invocations.
    std::vector<KernelInvocation> invocations_;

    /// SM index -> invocations_ index (-1 = unbound). Rebuilt, never
    /// serialized.
    std::vector<int> smInvocation_;

    /// Launches still queued across all tenants (cheap loop guard).
    std::size_t pendingLaunches_ = 0;

    /// Serialized label of the run (single kernel: its name).
    std::string currentKernelName_;
    RunContext run_;

    // --- Fast-path bookkeeping (none of it serialized: skips are
    // transparent, so the skip pattern may differ across a
    // checkpoint/restore while every simulated quantity stays equal).
    Cycle fastForwardedCycles_ = 0;
    Cycle ffAtRunStart_ = 0;  ///< counter value at beginRun()
    Cycle ffBackoffUntil_ = 0;///< SM cycle before which probes are skipped
    Cycle ffBackoff_ = 1;     ///< current backoff span (doubles to 32)
};

} // namespace equalizer

#endif // EQ_GPU_GPU_TOP_HH
