#include "lsu.hh"

#include <algorithm>

namespace equalizer
{

LoadStoreUnit::LoadStoreUnit(const GpuConfig &cfg, SmId sm, L1Cache &l1,
                             MemorySystem &mem_system)
    : cfg_(cfg), sm_(sm), l1_(l1), memSystem_(mem_system),
      hitWakeups_(/*capacity=*/4096)
{
}

void
LoadStoreUnit::accept(WarpId warp, const WarpInstruction &inst)
{
    EQ_ASSERT(canAccept(), "LSU accept() without canAccept()");
    EQ_ASSERT(inst.op == OpClass::Mem, "LSU fed a non-memory instruction");
    queue_.push_back(Entry{warp, inst, 0});
    queueHighWater_ = std::max<std::uint64_t>(queueHighWater_,
                                              queue_.size());
    acceptedThisCycle_ = true;
}

void
LoadStoreUnit::tick(Cycle sm_now)
{
    if (queue_.empty())
        return;

    int budget = cfg_.lsuThroughput;
    Entry &head = queue_.front();

    while (budget > 0 && head.next < head.inst.transactionCount) {
        const Addr line =
            head.inst.lineAddrs[static_cast<std::size_t>(head.next)];

        if (head.inst.texture) {
            // Texture path: deep buffering downstream, bypasses the L1.
            auto &tq = memSystem_.texInjectQueue(sm_);
            if (tq.full()) {
                ++blockedCycles_;
                return;
            }
            tq.push(MemAccess{line, sm_, head.warp, head.inst.write,
                              /*texture=*/true});
        } else {
            const auto result =
                l1_.access(head.warp, line, head.inst.write);
            if (result == L1Cache::Result::Blocked) {
                ++blockedCycles_;
                return;
            }
            if (result == L1Cache::Result::Hit && !head.inst.write) {
                const bool ok = hitWakeups_.push(
                    head.warp, sm_now + cfg_.mem.l1HitLatency);
                EQ_ASSERT(ok, "hit-wakeup queue overflow");
            }
        }
        ++head.next;
        ++transactions_;
        --budget;
    }

    if (head.next >= head.inst.transactionCount)
        queue_.pop_front();
}

bool
LoadStoreUnit::wouldIdle() const
{
    if (queue_.empty())
        return true;
    const Entry &head = queue_.front();
    EQ_ASSERT(head.next < head.inst.transactionCount,
              "LSU queue holds a completed instruction");
    const Addr line =
        head.inst.lineAddrs[static_cast<std::size_t>(head.next)];
    if (head.inst.texture)
        return memSystem_.texInjectQueue(sm_).full();
    return l1_.accessWouldBlock(line, head.inst.write);
}

void
LoadStoreUnit::skipCycles(Cycle n)
{
    // Each skipped cycle begins with beginCycle(); the gate is already
    // false whenever the SM is skippable (an accept implies an issuing
    // warp, which needs a refill next cycle), but reset it anyway so
    // the replay mirrors the slow path unconditionally.
    acceptedThisCycle_ = false;
    if (queue_.empty())
        return;

    const Entry &head = queue_.front();
    blockedCycles_ += n;
    if (!head.inst.texture) {
        // A blocked non-texture head re-probes the L1 every cycle.
        l1_.skipBlockedCycles(n);
    }
}

std::vector<WarpId>
LoadStoreUnit::drainHitWakeups(Cycle sm_now)
{
    std::vector<WarpId> out;
    while (auto warp = hitWakeups_.popReady(sm_now))
        out.push_back(*warp);
    return out;
}

void
LoadStoreUnit::reset()
{
    queue_.clear();
    hitWakeups_.clear();
    acceptedThisCycle_ = false;
}

} // namespace equalizer
