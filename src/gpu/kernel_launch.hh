/**
 * @file
 * The contract between the GPU model and a workload: a kernel launch
 * produces one instruction stream per warp.
 */

#ifndef EQ_GPU_KERNEL_LAUNCH_HH
#define EQ_GPU_KERNEL_LAUNCH_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "gpu/instruction.hh"

namespace equalizer
{

/** Per-warp program: a generator of WarpInstructions. */
class InstructionStream
{
  public:
    virtual ~InstructionStream() = default;

    /**
     * Produce the warp's next instruction.
     * @return false when the warp has retired (out is untouched).
     */
    virtual bool next(WarpInstruction &out) = 0;
};

/** Structural facts about a launch. */
struct KernelInfo
{
    std::string name;
    int totalBlocks = 1;    ///< grid size in thread blocks
    int warpsPerBlock = 1;  ///< W_cta
    int maxBlocksPerSm = 8; ///< occupancy limit from registers/smem
};

/**
 * A kernel launch: structural info plus a factory for warp programs.
 *
 * Implementations must be deterministic: the stream for (block, warp) is
 * a pure function of those coordinates (plus the kernel's own seed).
 */
class KernelLaunch
{
  public:
    virtual ~KernelLaunch() = default;

    virtual const KernelInfo &info() const = 0;

    /** Create the instruction stream of one warp of one block. */
    virtual std::unique_ptr<InstructionStream>
    makeWarpStream(BlockId block, int warp_in_block) const = 0;
};

} // namespace equalizer

#endif // EQ_GPU_KERNEL_LAUNCH_HH
