/**
 * @file
 * Per-warp execution context and the warp-state taxonomy of the paper.
 */

#ifndef EQ_GPU_WARP_HH
#define EQ_GPU_WARP_HH

#include <memory>

#include "common/types.hh"
#include "gpu/instruction.hh"
#include "gpu/kernel_launch.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * Scheduling outcome of a warp in a cycle — the observable the paper's
 * four counters are built from (Section III-A).
 */
enum class WarpOutcome
{
    Unaccounted, ///< no valid instruction-buffer entry (or slot empty)
    Paused,      ///< CTA-paused: excluded from scheduling and counters
    Waiting,     ///< operands not ready (scoreboard)
    Issued,      ///< issued an instruction this cycle
    ExcessAlu,   ///< ready for the arithmetic pipe, no issue slot (X_alu)
    ExcessMem,   ///< ready for the LD/ST pipe, blocked (X_mem)
    Barrier,     ///< waiting on a block-wide barrier ("Others")
    Done,        ///< retired
};

/** One warp slot of an SM. */
struct WarpSlot
{
    bool active = false;      ///< a warp is resident in this slot
    bool paused = false;      ///< CTA pause bit (instruction buffer mask)
    int blockSlot = -1;       ///< owning block slot on the SM
    BlockId block = -1;       ///< global block id (for debugging)

    std::unique_ptr<InstructionStream> stream;
    bool hasInst = false;     ///< instruction-buffer head valid
    WarpInstruction inst;     ///< head instruction
    int nextTransaction = 0;  ///< progress through inst's transactions

    int pendingLoads = 0;     ///< outstanding load transactions
    Cycle readyAt = 0;        ///< scoreboard: earliest issue cycle
    Cycle lastIssueCycle = 0;
    Cycle lastResultLatency = 0;

    bool atBarrier = false;   ///< parked at a Sync instruction
    bool streamDone = false;  ///< generator exhausted

    /**
     * Instructions drawn from the stream so far. The stream itself is a
     * deterministic generator seeded by (kernel, invocation, block,
     * warp), so this count is all a checkpoint needs: a restore rebuilds
     * the stream and replays it this many times (Sm::rebindKernel).
     */
    std::uint64_t fetched = 0;

    /// Outcome of the most recent scheduling pass (sampled by Equalizer).
    WarpOutcome outcome = WarpOutcome::Unaccounted;

    /** Fully retired: program finished and all loads returned. */
    bool
    retired() const
    {
        return active && streamDone && !hasInst && pendingLoads == 0;
    }

    /** Clear the slot for a new warp. */
    void
    reset()
    {
        active = false;
        paused = false;
        blockSlot = -1;
        block = -1;
        stream.reset();
        hasInst = false;
        nextTransaction = 0;
        pendingLoads = 0;
        readyAt = 0;
        lastIssueCycle = 0;
        lastResultLatency = 0;
        atBarrier = false;
        streamDone = false;
        fetched = 0;
        outcome = WarpOutcome::Unaccounted;
    }

    /**
     * Serialize everything except the stream pointer, which is
     * reconstructed from the kernel by replaying `fetched` draws.
     */
    void
    visitState(StateVisitor &v)
    {
        v.field(active);
        v.field(paused);
        v.field(blockSlot);
        v.field(block);
        v.field(hasInst);
        v.field(inst);
        v.field(nextTransaction);
        v.field(pendingLoads);
        v.field(readyAt);
        v.field(lastIssueCycle);
        v.field(lastResultLatency);
        v.field(atBarrier);
        v.field(streamDone);
        v.field(fetched);
        v.field(outcome);
        if (!v.saving())
            stream.reset(); // rebuilt by Sm::rebindKernel()
    }
};

} // namespace equalizer

#endif // EQ_GPU_WARP_HH
