#include "gpu/scheduler_core.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/gpu_top.hh"

namespace equalizer
{

const char *
toString(StepStatus status)
{
    switch (status) {
      case StepStatus::Running:
        return "running";
      case StepStatus::Drained:
        return "drained";
      case StepStatus::PreemptPoint:
        return "preempt-point";
    }
    return "unknown";
}

void
SchedulerCore::launchKernel(const KernelLaunch &kernel, Cycle max_sm_cycles)
{
    GpuTop &g = gpu_;
    if (g.numTenants() > 1)
        fatal("runKernel: the device is partitioned into ", g.numTenants(),
              " tenants; use enqueueKernel()/runTenants()");
    if (g.pendingLaunches_ > 0)
        fatal("runKernel: queued launches pending; use runTenants()");

    g.invocations_.clear();
    g.makeInvocation(g.tenants_.front(), kernel);
    if (g.controller_)
        g.controller_->onKernelLaunch(g);
    g.beginRun(kernel.info().name, max_sm_cycles);
    g.launchHooks(g.invocations_.front());
    g.distributeBlocks();
}

void
SchedulerCore::launchTenants(Cycle max_sm_cycles, const std::string &label)
{
    GpuTop &g = gpu_;
    if (g.run_.active)
        fatal("runTenants: a run is already in flight");
    if (g.pendingLaunches_ == 0)
        fatal("runTenants: nothing queued; enqueueKernel() first");

    // Bind every tenant's queue head before the first controller
    // callback, mirroring the legacy launch ordering.
    g.invocations_.clear();
    std::fill(g.smInvocation_.begin(), g.smInvocation_.end(), -1);
    std::vector<std::size_t> initial;
    for (auto &t : g.tenants_) {
        if (t.queueEmpty())
            continue;
        const KernelLaunch *k = t.popQueue();
        --g.pendingLaunches_;
        g.makeInvocation(t, *k);
        initial.push_back(g.invocations_.size() - 1);
    }
    if (g.controller_)
        g.controller_->onKernelLaunch(g);

    std::string lbl = label;
    if (lbl.empty()) {
        if (initial.size() == 1) {
            lbl = g.invocations_[initial.front()].name();
        } else {
            lbl = "concurrent";
            for (std::size_t i : initial)
                lbl += ":" + g.invocations_[i].name();
        }
    }
    g.beginRun(lbl, max_sm_cycles);
    for (std::size_t i : initial)
        g.launchHooks(g.invocations_[i]);
    g.distributeBlocks();
}

void
SchedulerCore::adoptResumedKernel(const KernelLaunch &kernel)
{
    GpuTop &g = gpu_;
    if (!g.run_.active)
        fatal("resumeKernel: the restored state is not inside a kernel "
              "invocation");
    if (g.invocations_.size() != 1)
        fatal("resumeKernel: the restored run has ", g.invocations_.size(),
              " invocations; use resumeTenants()");
    if (kernel.info().name != g.currentKernelName_)
        fatal("resumeKernel: state was saved inside kernel '",
              g.currentKernelName_, "', not '", kernel.info().name, "'");
    g.invocations_.front().rebindLaunch(&kernel);
    for (int s : g.invocations_.front().smSet())
        g.sms_[static_cast<std::size_t>(s)]->rebindKernel(&kernel);
}

void
SchedulerCore::adoptResumedTenants(
    const std::vector<const KernelLaunch *> &kernels)
{
    GpuTop &g = gpu_;
    if (!g.run_.active)
        fatal("resumeTenants: the restored state is not inside a run");
    for (auto &inv : g.invocations_) {
        if (!inv.active())
            continue;
        const KernelLaunch *match = nullptr;
        for (const auto *k : kernels)
            if (k->info().name == inv.name())
                match = k;
        if (!match)
            fatal("resumeTenants: no launch named '", inv.name(),
                  "' offered for an in-flight invocation");
        inv.rebindLaunch(match);
        for (int s : inv.smSet())
            g.sms_[static_cast<std::size_t>(s)]->rebindKernel(match);
    }
    for (auto &t : g.tenants_)
        t.rebindQueue(kernels);
}

StepStatus
SchedulerCore::step(Cycle n_cycles)
{
    GpuTop &g = gpu_;
    if (!g.run_.active)
        fatal("SchedulerCore::step: no run armed; launch or adopt first");

    // The quantum boundary in absolute SM cycles; saturate so a huge
    // quantum degrades to "unbounded" instead of wrapping.
    const Cycle sm_now = g.smDomain_.cycle();
    const Cycle stop = (n_cycles == noWakeup || n_cycles >= noWakeup - sm_now)
                           ? noWakeup
                           : sm_now + n_cycles;

    // The loop body below is the pre-refactor GpuTop::runLoop() —
    // pausing between iterations is state-neutral, so any step()
    // partition of a run is bit-identical to run-to-completion.
    while (true) {
        if (preemptRequested_) {
            preemptRequested_ = false;
            return StepStatus::PreemptPoint;
        }
        if (g.allDone())
            return StepStatus::Drained;
        if (stop != noWakeup && g.smDomain_.cycle() >= stop)
            return StepStatus::Running;
        if (g.cfg_.fastPath && g.tryFastForward(stop))
            continue;
        if (g.memDomain_.nextEdge() <= g.smDomain_.nextEdge()) {
            g.memDomain_.advance();
            g.energy_.setDomainStates(g.smDomain_.state(),
                                      g.memDomain_.state());
            g.memSystem_.tick(g.memDomain_.cycle());
        } else {
            g.smDomain_.advance();
            g.energy_.setDomainStates(g.smDomain_.state(),
                                      g.memDomain_.state());
            const Cycle mem_now = g.memDomain_.cycle();
            g.tickSms(mem_now);
            g.serviceTenants();
            g.distributeBlocks();
            if (g.controller_)
                g.controller_->onSmCycle(g);
            if (g.observer_)
                g.observer_(g);
            if (g.tracer_ && g.tracer_->epochBoundary(g.smDomain_.cycle()))
                g.traceEpoch(g.smDomain_.cycle());

            if (g.smDomain_.cycle() > g.run_.cycleLimit)
                panic("kernel '", g.currentKernelName_,
                      "' exceeded its cycle limit at SM cycle ",
                      g.smDomain_.cycle(), "; likely a deadlock");
        }
    }
}

void
SchedulerCore::run()
{
    while (step() != StepStatus::Drained) {
    }
}

RunMetrics
SchedulerCore::finish()
{
    return gpu_.finishRun();
}

bool
SchedulerCore::active() const
{
    return gpu_.run_.active;
}

} // namespace equalizer
