/**
 * @file
 * A kernel invocation as a first-class object: the launch, the SM-slot
 * set it runs on, its private work-distribution cursor and its
 * per-invocation accounting, replacing the former device-global
 * currentKernel_/GlobalWorkDistributor pair inside GpuTop.
 */

#ifndef EQ_GPU_KERNEL_INVOCATION_HH
#define EQ_GPU_KERNEL_INVOCATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/gwde.hh"
#include "gpu/kernel_launch.hh"
#include "sim/state.hh"

namespace equalizer
{

/**
 * One in-flight (or completed) execution of a kernel grid on a subset
 * of the device's SMs.
 *
 * GpuTop owns a vector of these; a whole-device runKernel() is simply
 * the degenerate case of one invocation whose SM set covers every SM.
 * The invocation carries everything that used to live on
 * runKernelsConcurrent()'s stack, which is what makes a checkpoint
 * taken mid-co-run restorable (docs/SNAPSHOT.md).
 */
class KernelInvocation
{
  public:
    KernelInvocation() = default;

    KernelInvocation(int tenant_id, const KernelLaunch *launch,
                     std::vector<int> sm_set)
        : tenantId_(tenant_id), launch_(launch),
          name_(launch->info().name), sms_(std::move(sm_set))
    {
        gwde_.launch(*launch);
    }

    int tenantId() const { return tenantId_; }

    /** The launch; nullptr after a restore until rebindLaunch(). */
    const KernelLaunch *launch() const { return launch_; }

    /** Serialized identity of the launch (pointers don't persist). */
    const std::string &name() const { return name_; }

    /** SM indices this invocation may dispatch blocks to. */
    const std::vector<int> &smSet() const { return sms_; }

    /** The invocation-private work-distribution cursor. */
    GlobalWorkDistributor &gwde() { return gwde_; }
    const GlobalWorkDistributor &gwde() const { return gwde_; }

    /** True between launch and grid completion. */
    bool active() const { return active_; }

    Cycle launchCycle() const { return launchCycle_; }
    Cycle completeCycle() const { return completeCycle_; }

    /** Warp instructions its SMs issued over the invocation. */
    std::uint64_t instructions() const { return instructions_; }

    /** Blocks its SMs completed over the invocation. */
    std::uint64_t blocksCompleted() const { return blocksCompleted_; }

    /**
     * Record the launch-time baselines (the SM set is exclusive to
     * this invocation, so per-SM counter deltas attribute cleanly).
     */
    void
    onLaunch(Cycle cycle, std::uint64_t instr_before,
             std::uint64_t blocks_before)
    {
        active_ = true;
        launchCycle_ = cycle;
        instrBefore_ = instr_before;
        blocksBefore_ = blocks_before;
    }

    /** Close the accounting window and deactivate. */
    void
    onComplete(Cycle cycle, std::uint64_t instr_now,
               std::uint64_t blocks_now)
    {
        active_ = false;
        completeCycle_ = cycle;
        instructions_ = instr_now - instrBefore_;
        blocksCompleted_ = blocks_now - blocksBefore_;
    }

    /** Re-attach the launch after a restore (validated by name). */
    void rebindLaunch(const KernelLaunch *launch) { launch_ = launch; }

    void visitState(StateVisitor &v);

  private:
    int tenantId_ = 0;
    const KernelLaunch *launch_ = nullptr;
    std::string name_;
    std::vector<int> sms_;
    GlobalWorkDistributor gwde_;
    bool active_ = false;

    Cycle launchCycle_ = 0;
    Cycle completeCycle_ = 0;
    std::uint64_t instrBefore_ = 0;
    std::uint64_t blocksBefore_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t blocksCompleted_ = 0;
};

} // namespace equalizer

#endif // EQ_GPU_KERNEL_INVOCATION_HH
