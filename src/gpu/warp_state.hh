/**
 * @file
 * Aggregated warp-state counts — one sample of the four Equalizer
 * counters (plus companions used for analysis figures).
 */

#ifndef EQ_GPU_WARP_STATE_HH
#define EQ_GPU_WARP_STATE_HH

#include <cstdint>

namespace equalizer
{

/**
 * Counts of warps per state. Used both for a single-cycle sample on one
 * SM (values <= warp count) and as a whole-run accumulator, hence the
 * wide integer type.
 */
struct WarpStateCounts
{
    std::int64_t active = 0;     ///< unpaused, accounted warps
    std::int64_t waiting = 0;    ///< scoreboard-stalled warps
    std::int64_t issued = 0;     ///< warps that issued this cycle
    std::int64_t excessAlu = 0;  ///< X_alu: ready-ALU, no issue slot
    std::int64_t excessMem = 0;  ///< X_mem: ready-MEM, pipe blocked
    std::int64_t barrier = 0;    ///< "Others": barrier / no instruction
    std::int64_t unaccounted = 0;

    WarpStateCounts &
    operator+=(const WarpStateCounts &o)
    {
        active += o.active;
        waiting += o.waiting;
        issued += o.issued;
        excessAlu += o.excessAlu;
        excessMem += o.excessMem;
        barrier += o.barrier;
        unaccounted += o.unaccounted;
        return *this;
    }

    /**
     * Accumulate @p n identical samples at once — the fast path folds a
     * span of stalled cycles into one call (docs/FAST_PATH.md).
     */
    WarpStateCounts &
    addScaled(const WarpStateCounts &o, std::int64_t n)
    {
        active += o.active * n;
        waiting += o.waiting * n;
        issued += o.issued * n;
        excessAlu += o.excessAlu * n;
        excessMem += o.excessMem * n;
        barrier += o.barrier * n;
        unaccounted += o.unaccounted * n;
        return *this;
    }
};

} // namespace equalizer

#endif // EQ_GPU_WARP_STATE_HH
