/**
 * @file
 * The load/store unit of one SM: a bounded queue of warp memory
 * instructions whose coalesced transactions are presented to the L1 (or
 * the texture path) at a fixed rate. When downstream resources fill, the
 * head blocks and the queue backs up — the condition that makes ready
 * memory warps X_mem.
 */

#ifndef EQ_GPU_LSU_HH
#define EQ_GPU_LSU_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "gpu/gpu_config.hh"
#include "gpu/instruction.hh"
#include "mem/l1_cache.hh"
#include "mem/memory_system.hh"
#include "mem/queues.hh"

namespace equalizer
{

/** LD/ST pipeline of one SM. */
class LoadStoreUnit
{
  public:
    LoadStoreUnit(const GpuConfig &cfg, SmId sm, L1Cache &l1,
                  MemorySystem &mem_system);

    /** Reset the one-accept-per-cycle gate; call at the top of a cycle. */
    void beginCycle() { acceptedThisCycle_ = false; }

    /**
     * Whether a new warp memory instruction can enter the pipe this
     * cycle (at most one per cycle; queue must have room).
     */
    bool
    canAccept() const
    {
        return !acceptedThisCycle_ &&
               static_cast<int>(queue_.size()) < cfg_.lsuQueueDepth;
    }

    /** Enqueue a warp memory instruction (canAccept() must hold). */
    void accept(WarpId warp, const WarpInstruction &inst);

    /**
     * Process the head instruction: present up to lsuThroughput
     * transactions to the L1 / texture path; stop on a Blocked result.
     */
    void tick(Cycle sm_now);

    /**
     * Pop warps whose L1-hit data becomes available at @p sm_now.
     * The caller decrements their pendingLoads.
     */
    std::vector<WarpId> drainHitWakeups(Cycle sm_now);

    bool empty() const { return queue_.empty(); }
    std::size_t queueDepth() const { return queue_.size(); }

    /** Queue at capacity (the gate that turns ready warps X_mem). */
    bool
    queueFull() const
    {
        return static_cast<int>(queue_.size()) >= cfg_.lsuQueueDepth;
    }

    // --- Fast-path support (docs/FAST_PATH.md).

    /**
     * Whether tick() would make no progress next cycle: the queue is
     * empty, or the head's next transaction would be rejected by its
     * destination (texture queue full / L1 blocked). Pure probe.
     */
    bool wouldIdle() const;

    /**
     * Earliest SM cycle at which a buffered L1-hit wakeup matures, or
     * noWakeup when none are in flight.
     */
    Cycle
    nextHitWakeup() const
    {
        return hitWakeups_.empty() ? noWakeup : hitWakeups_.headReadyAt();
    }

    /**
     * Replay @p n idle cycles: beginCycle()'s accept-gate reset, plus —
     * when a head is present and blocked — the per-cycle blocked retry
     * (one blocked cycle and one L1 access probe per cycle). Only valid
     * when wouldIdle() held and nothing changed since.
     */
    void skipCycles(Cycle n);

    /**
     * Deepest queue occupancy since the last call; resets to the
     * current depth. Sampled per tracer epoch (HighWater events).
     */
    std::uint64_t
    takeQueueHighWater()
    {
        const std::uint64_t hw = queueHighWater_;
        queueHighWater_ = queue_.size();
        return hw;
    }

    std::uint64_t transactionsIssued() const { return transactions_; }
    std::uint64_t blockedCycles() const { return blockedCycles_; }

    /** Drop all buffered work (kernel boundary). */
    void reset();

    void
    visitState(StateVisitor &v)
    {
        // v2: queue high-water mark, so HighWater trace events after a
        // restore match an uninterrupted run's (docs/TRACING.md).
        v.beginSection("lsu", 2);
        v.field(queue_);
        v.field(acceptedThisCycle_);
        v.field(hitWakeups_);
        v.field(transactions_);
        v.field(blockedCycles_);
        v.field(queueHighWater_);
        v.endSection();
    }

  private:
    struct Entry
    {
        WarpId warp;
        WarpInstruction inst;
        int next = 0; ///< next transaction index
    };

    const GpuConfig &cfg_;
    SmId sm_;
    L1Cache &l1_;
    MemorySystem &memSystem_;

    std::deque<Entry> queue_;
    bool acceptedThisCycle_ = false;

    DelayQueue<WarpId> hitWakeups_;

    std::uint64_t transactions_ = 0;
    std::uint64_t blockedCycles_ = 0;
    std::uint64_t queueHighWater_ = 0;
};

} // namespace equalizer

#endif // EQ_GPU_LSU_HH
