#include "tenant.hh"

#include "common/log.hh"

namespace equalizer
{

PartitionPolicy
partitionPolicyFromName(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return PartitionPolicy::RoundRobin;
    if (name == "blocked")
        return PartitionPolicy::Blocked;
    fatal("unknown partition policy '", name,
          "'; use 'rr' (round-robin) or 'blocked'");
}

const char *
partitionPolicyName(PartitionPolicy policy)
{
    switch (policy) {
      case PartitionPolicy::RoundRobin:
        return "rr";
      case PartitionPolicy::Blocked:
        return "blocked";
    }
    return "?";
}

std::vector<std::string>
Tenant::queuedNames() const
{
    std::vector<std::string> names;
    names.reserve(queue_.size());
    for (const auto &p : queue_)
        names.push_back(p.name);
    return names;
}

void
Tenant::rebindQueue(const std::vector<const KernelLaunch *> &launches)
{
    for (auto &p : queue_) {
        if (p.launch)
            continue;
        for (const auto *k : launches) {
            if (k->info().name == p.name) {
                p.launch = k;
                break;
            }
        }
        if (!p.launch)
            fatal("tenant '", name(), "': no launch named '", p.name,
                  "' offered for the restored queue");
    }
}

void
Tenant::setGaugeNames(std::string dispatched, std::string debt,
                      std::string share)
{
    gaugeDispatched_ = std::move(dispatched);
    gaugeDebt_ = std::move(debt);
    gaugeShare_ = std::move(share);
}

void
Tenant::visitState(StateVisitor &v)
{
    v.beginSection("tenant", 1);
    v.field(id_);
    v.field(spec_.name);
    v.field(spec_.smLimit);
    v.field(sms_);
    v.field(tokens_);
    v.field(dispatchedBlocks_);
    v.field(busySmCycles_);
    v.field(limitedCycles_);
    v.field(elapsedCycles_);

    // The queue persists as names; launches re-bind on resume.
    std::vector<std::string> names = queuedNames();
    v.field(names);
    if (!v.saving()) {
        queue_.clear();
        for (auto &n : names)
            queue_.push_back({nullptr, std::move(n)});
    }
    v.endSection();
}

} // namespace equalizer
