/**
 * @file
 * The streaming multiprocessor: warp contexts, dual-issue warp
 * scheduling, block (CTA) slots with pause bits, the LSU and the L1.
 */

#ifndef EQ_GPU_SM_HH
#define EQ_GPU_SM_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_launch.hh"
#include "gpu/lsu.hh"
#include "gpu/warp.hh"
#include "gpu/warp_state.hh"
#include "mem/l1_cache.hh"
#include "mem/memory_system.hh"
#include "power/energy_model.hh"
#include "trace/ring_buffer.hh"

namespace equalizer
{

/**
 * One SM.
 *
 * Warp slots are grouped into block slots of W_cta consecutive warps.
 * Each SM cycle: memory responses are drained, the warp scheduler makes
 * a dual-issue pass (recording every warp's WarpOutcome — the substrate
 * of Equalizer's counters), and the LSU pushes transactions toward the
 * L1/memory system. CTA pausing masks whole block slots out of both
 * scheduling and the counters, per paper Section IV.
 */
class StreamingMultiprocessor
{
  public:
    /** Callback fired when a block fully retires: (sm, block id). */
    using BlockCompleteHook = std::function<void(SmId, BlockId)>;

    /** CCWS-style gate: may this warp issue a memory instruction now? */
    using MemIssueFilter = std::function<bool(WarpId)>;

    StreamingMultiprocessor(const GpuConfig &cfg, SmId id,
                            MemorySystem &mem_system, EnergyModel &energy);

    /**
     * Bind a kernel; clears all slots and per-kernel state. The SM has
     * no whole-device assumption: under multi-tenant residency each
     * invocation binds only its own SM partition (kernel_invocation.hh)
     * and neighbouring SMs may run a different kernel.
     */
    void setKernel(const KernelLaunch *kernel);

    /** The bound launch (nullptr before any bind or after a restore). */
    const KernelLaunch *kernel() const { return kernel_; }

    /** Effective block-slot count for the bound kernel. */
    int blockSlotCount() const { return blockSlots_; }

    /** Number of occupied block slots. */
    int residentBlocks() const;

    /** Number of occupied, unpaused block slots. */
    int unpausedBlocks() const;

    /** Whether a fresh block can be placed. */
    bool hasFreeSlot() const;

    /**
     * Whether the SM wants another block from the GWDE: a free slot
     * exists, no paused block is available to unpause, and the resident
     * unpaused count is below target.
     */
    bool wantsBlock() const;

    /** Install a block into a free slot and spawn its warp streams. */
    void assignBlock(BlockId block);

    /**
     * Set the desired number of concurrently *running* blocks.
     * Decreases take effect by pausing the youngest running blocks;
     * increases first unpause, then leave room for GWDE requests.
     * Clamped to [1, blockSlotCount()].
     */
    void setTargetBlocks(int target);

    int targetBlocks() const { return targetBlocks_; }

    /** Advance one SM cycle. @param mem_now current memory-domain cycle. */
    void tick(Cycle mem_now);

    // --- Fast-path support (docs/FAST_PATH.md).

    /** Result of checkStalled(). */
    struct StallCheck
    {
        /** Every warp is provably stalled through the next cycle. */
        bool skippable = false;

        /**
         * Earliest SM cycle at which some warp might unstall for an
         * SM-local reason (scoreboard release, shared-memory pipe
         * drain, L1 hit-wakeup maturing); noWakeup when every stall is
         * bound by memory-system events or epoch boundaries instead.
         * Meaningful only when skippable.
         */
        Cycle wakeup = noWakeup;
    };

    /**
     * Whether the next tick would provably change nothing except the
     * per-cycle bookkeeping that skipCycles() replays. Conservative:
     * any warp that might issue, refill, retire or park — or an LSU
     * head that would move a transaction, or an installed mem-issue
     * filter — reports not-skippable. Pure probe.
     */
    StallCheck checkStalled() const;

    /**
     * Replay @p n fully-stalled ticks: cycle count, scheduler rotation,
     * warp outcomes and their per-cycle counter accumulation, LSU
     * blocked-head bookkeeping and active-cycle accounting. Only valid
     * when checkStalled() reported skippable and every replayed cycle
     * is strictly below its wakeup (and any memory-side bound).
     */
    void skipCycles(Cycle n);

    /**
     * Test seam: force checkStalled() to report skippable with the
     * given wakeup, bypassing the real probe. Lets tests exercise the
     * fast path's wakeup-consistency check (which aborts on a wakeup
     * in the past). reset by setKernel().
     */
    void
    debugSetStallWakeup(Cycle wakeup)
    {
        debugStallWakeup_ = wakeup;
        invalidateStallCache();
    }

    /** No resident blocks. */
    bool idle() const { return residentBlocks() == 0; }

    /** Warp states observed in the most recent cycle. */
    WarpStateCounts sampleStates() const;

    Cycle cycle() const { return cycle_; }

    L1Cache &l1() { return l1_; }
    const L1Cache &l1() const { return l1_; }
    LoadStoreUnit &lsu() { return lsu_; }

    void setBlockCompleteHook(BlockCompleteHook hook)
    {
        onBlockComplete_ = std::move(hook);
    }

    void setMemIssueFilter(MemIssueFilter filter)
    {
        memIssueFilter_ = std::move(filter);
        invalidateStallCache();
    }

    /**
     * Bind this SM's trace ring (non-owning; nullptr detaches). Only
     * this SM writes to it during the parallel phase; GpuTop drains it
     * serially at tracer epoch boundaries.
     */
    void setTraceRing(TraceRing *ring) { traceRing_ = ring; }

    // --- Aggregate statistics (since setKernel or resetStats).
    std::uint64_t instructionsIssued() const { return issued_; }
    std::uint64_t activeCycles() const { return activeCycles_; }
    const WarpStateCounts &outcomeTotals() const { return outcomeTotals_; }
    std::uint64_t blocksCompleted() const { return blocksCompleted_; }

    /** Zero statistic accumulators (not architectural state). */
    void resetStats();

    /**
     * Serialize all per-SM state except the kernel binding and the
     * hooks. Warp instruction streams are captured as replay counts;
     * rebindKernel() reconstructs them after a restore.
     */
    void visitState(StateVisitor &v);

    /**
     * Re-attach a kernel after visitState() restored mid-kernel state:
     * validates the restored geometry against @p kernel and rebuilds
     * the instruction stream of every in-flight warp by replaying its
     * recorded draw count. Unlike setKernel(), nothing is cleared.
     */
    void rebindKernel(const KernelLaunch *kernel);

    int warpsPerBlock() const { return warpsPerBlock_; }

    /** Read-only view of one warp slot (tests and tracing). */
    const WarpSlot &warp(WarpId w) const
    {
        return warps_[static_cast<std::size_t>(w)];
    }

  private:
    struct BlockSlot
    {
        bool occupied = false;
        bool paused = false;
        BlockId block = -1;
        int warpsDone = 0;
        std::uint64_t assignOrder = 0; ///< for youngest-first pausing
    };

    /** Warp range of a block slot. */
    int firstWarpOf(int slot) const { return slot * warpsPerBlock_; }

    void schedulePass();

    /**
     * The outcome a fully-stalled schedulePass() would record for warp
     * @p wid next cycle (accumulating its counter contribution into
     * @p counts and lowering @p wakeup when the stall has a known
     * SM-local release cycle), or nullopt when the warp might make
     * progress — issue, refill, retire or park at a barrier.
     */
    std::optional<WarpOutcome> stalledOutcome(WarpId wid,
                                              WarpStateCounts &counts,
                                              Cycle &wakeup) const;

    void refillInstruction(WarpSlot &w);
    void handleRetirement(WarpId wid);
    void releaseBarriers();
    void applyPauseState();

    /**
     * Replay one memoized stalled cycle in O(1) instead of running the
     * full tick (docs/FAST_PATH.md). Returns false — leaving all state
     * untouched — when the cache is invalid, the wakeup cycle arrived,
     * or a matured memory response awaits draining.
     */
    bool tryFastTick(Cycle mem_now);

    void invalidateStallCache() { stallCache_.valid = false; }

    const GpuConfig &cfg_;
    SmId id_;
    MemorySystem &memSystem_;
    EnergyModel &energy_;

    L1Cache l1_;
    LoadStoreUnit lsu_;

    const KernelLaunch *kernel_ = nullptr;
    int warpsPerBlock_ = 1;
    int blockSlots_ = 0;

    std::vector<WarpSlot> warps_;
    std::vector<BlockSlot> blocks_;
    std::vector<bool> warpRetiredCounted_;

    int targetBlocks_ = 1;
    std::uint64_t assignCounter_ = 0;

    Cycle cycle_ = 0;
    int rrStart_ = 0;   ///< LRR rotation pointer
    int greedyWarp_ = 0;///< GTO priority head
    Cycle smemBusyUntil_ = 0; ///< shared-memory pipe occupancy

    BlockCompleteHook onBlockComplete_;
    MemIssueFilter memIssueFilter_;
    TraceRing *traceRing_ = nullptr;

    /// Test-only checkStalled() override (not serialized).
    std::optional<Cycle> debugStallWakeup_;

    /**
     * Memoized stall verdict backing the O(1) fast tick
     * (docs/FAST_PATH.md). While valid, every warp's outcome is frozen
     * at the cached counts and the cached wakeup bounds the span; any
     * external mutation that could unstall a warp (block assignment,
     * target changes, policy hooks, restores) must invalidate it.
     * Deliberately not serialized: pure memoization, rebuilt lazily.
     */
    struct StallCache
    {
        bool valid = false;
        Cycle wakeup = noWakeup;
        WarpStateCounts counts;
    };
    StallCache stallCache_;

    std::uint64_t issued_ = 0;
    std::uint64_t activeCycles_ = 0;
    std::uint64_t blocksCompleted_ = 0;
    WarpStateCounts outcomeTotals_;
    WarpStateCounts lastCounts_;
};

} // namespace equalizer

#endif // EQ_GPU_SM_HH
