/**
 * @file
 * The fitted performance/energy model behind the model-guided sweep
 * (docs/AUTOTUNE.md).
 *
 * Form: a wave-aware bilinear time model in the spirit of WaveTune
 * (arXiv:2604.10187). With x = SM frequency scale, m = memory
 * frequency scale and c = concurrent blocks per SM,
 *
 *   seconds(c, x, m) = M(c) / m + K(c) / x,
 *   M(c), K(c)       = a + b/c + d*c            (all coefficients >= 0)
 *
 * M is the memory-bound share (scales with the memory clock), K the
 * compute-bound share (scales with the SM clock); both get a rational
 * CTA shape whose b/c term models wave parallelism and whose d*c term
 * models contention growth (cache thrash), so an interior CTA optimum
 * is representable. Energy is a second stage over the time model:
 *
 *   joules(c, x, m) = r0 + r1*x^2 + r2*m^2 + r3*seconds(c, x, m)
 *
 * (dynamic energy scales with V^2 ~ f^2 per domain, static energy
 * with time; all coefficients >= 0, so an interior VF energy optimum
 * is representable).
 *
 * Both stages fit by least squares with a deterministic non-negativity
 * active-set loop: solve, zero the most negative coefficient, repeat.
 * The non-negative coefficients make two properties structural, and
 * tests/autotune_test.cc asserts them across the synthetic zoo:
 * predicted seconds are non-increasing in either frequency, and
 * predicted SM cycles (seconds * x * f_nom) are non-decreasing in x.
 */

#ifndef EQ_AUTOTUNE_MODEL_HH
#define EQ_AUTOTUNE_MODEL_HH

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "harness/sweep.hh"
#include "sim/vf.hh"

namespace equalizer
{

/** One simulated probe: an operating point and what it measured. */
struct MeasuredSample
{
    OperatingPoint point;
    double seconds = 0.0;
    double joules = 0.0;
};

/** The fitted seconds+joules surface over (VF, CTA). */
class SweepModel
{
  public:
    /**
     * Fit both stages from @p samples (needs at least one; six or
     * more well-spread probes identify all coefficients). @p sm_hz is
     * the nominal SM clock used to express predictions in cycles.
     */
    static SweepModel fit(const std::vector<MeasuredSample> &samples,
                          double sm_hz);

    double predictSeconds(const OperatingPoint &p) const;
    double predictJoules(const OperatingPoint &p) const;

    /** predictSeconds() expressed in SM cycles at the point's clock. */
    double predictCycles(const OperatingPoint &p) const;

    /** Mean |predicted - measured| / measured over the fit set. */
    double fitErrorSeconds() const { return fitErrSeconds_; }
    double fitErrorJoules() const { return fitErrJoules_; }

  private:
    static constexpr std::size_t numTimeTerms = 6;
    static constexpr std::size_t numEnergyTerms = 4;

    std::array<double, numTimeTerms> timeBasis(const OperatingPoint &p)
        const;
    std::array<double, numEnergyTerms>
    energyBasis(const OperatingPoint &p) const;

    std::array<double, numTimeTerms> timeCoef_{};
    std::array<double, numEnergyTerms> energyCoef_{};
    double smHz_ = 1.0;
    double fallbackSeconds_ = 0.0; ///< mean; used if the fit degenerates
    double fitErrSeconds_ = 0.0;
    double fitErrJoules_ = 0.0;
};

/**
 * Indices of the epsilon-Pareto frontier of @p objectives (both axes
 * minimized). A point survives unless another point beats it by more
 * than the slack factor on both axes (and strictly on one); slack 0 is
 * the exact frontier, larger values keep a band of near-frontier
 * points. Returned in input order.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<std::pair<double, double>> &objectives,
               double slack);

} // namespace equalizer

#endif // EQ_AUTOTUNE_MODEL_HH
