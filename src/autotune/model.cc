#include "model.hh"

#include <cmath>

#include "common/log.hh"

namespace equalizer
{

namespace
{

/**
 * Least squares with non-negative coefficients: build the normal
 * equations over the active columns, solve by Gaussian elimination
 * with partial pivoting, and while any solved coefficient is negative,
 * deactivate the most negative one and re-solve. Deterministic: ties
 * resolve to the lowest column index, near-singular pivots zero their
 * column instead of dividing by noise.
 */
template <std::size_t N>
std::array<double, N>
nonNegativeLeastSquares(
    const std::vector<std::array<double, N>> &rows,
    const std::vector<double> &targets)
{
    std::array<bool, N> active;
    active.fill(true);
    std::array<double, N> coef{};

    for (;;) {
        // Normal equations A^T A x = A^T y over the active columns.
        double ata[N][N] = {};
        double aty[N] = {};
        for (std::size_t r = 0; r < rows.size(); ++r) {
            for (std::size_t i = 0; i < N; ++i) {
                if (!active[i])
                    continue;
                aty[i] += rows[r][i] * targets[r];
                for (std::size_t j = 0; j < N; ++j) {
                    if (active[j])
                        ata[i][j] += rows[r][i] * rows[r][j];
                }
            }
        }

        // Gaussian elimination with partial pivoting; a vanishing
        // pivot zeroes that unknown (degenerate probe geometry).
        std::array<std::size_t, N> order{};
        std::size_t n = 0;
        for (std::size_t i = 0; i < N; ++i) {
            if (active[i])
                order[n++] = i;
        }
        std::vector<std::vector<double>> a(
            n, std::vector<double>(n + 1, 0.0));
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                a[i][j] = ata[order[i]][order[j]];
            a[i][n] = aty[order[i]];
        }
        std::vector<double> x(n, 0.0);
        std::vector<bool> solved(n, true);
        for (std::size_t col = 0; col < n; ++col) {
            std::size_t pivot = col;
            for (std::size_t r = col + 1; r < n; ++r) {
                if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                    pivot = r;
            }
            if (std::fabs(a[pivot][col]) < 1e-12) {
                solved[col] = false;
                continue;
            }
            std::swap(a[col], a[pivot]);
            for (std::size_t r = 0; r < n; ++r) {
                if (r == col)
                    continue;
                const double f = a[r][col] / a[col][col];
                for (std::size_t j = col; j <= n; ++j)
                    a[r][j] -= f * a[col][j];
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            x[i] = solved[i] ? a[i][n] / a[i][i] : 0.0;

        // Clamp: drop the most negative coefficient and refit.
        std::size_t worst = n;
        double worst_val = -1e-12;
        for (std::size_t i = 0; i < n; ++i) {
            if (x[i] < worst_val) {
                worst_val = x[i];
                worst = i;
            }
        }
        if (worst == n) {
            coef.fill(0.0);
            for (std::size_t i = 0; i < n; ++i)
                coef[order[i]] = x[i] < 0.0 ? 0.0 : x[i];
            return coef;
        }
        active[order[worst]] = false;
    }
}

} // namespace

std::array<double, SweepModel::numTimeTerms>
SweepModel::timeBasis(const OperatingPoint &p) const
{
    const double x = frequencyScale(p.smVf);
    const double m = frequencyScale(p.memVf);
    const double c = static_cast<double>(p.cta);
    return {1.0 / m,     1.0 / (m * c), c / m,
            1.0 / x,     1.0 / (x * c), c / x};
}

std::array<double, SweepModel::numEnergyTerms>
SweepModel::energyBasis(const OperatingPoint &p) const
{
    const double x = frequencyScale(p.smVf);
    const double m = frequencyScale(p.memVf);
    return {1.0, x * x, m * m, predictSeconds(p)};
}

SweepModel
SweepModel::fit(const std::vector<MeasuredSample> &samples, double sm_hz)
{
    if (samples.empty())
        fatal("SweepModel::fit needs at least one probe sample");

    SweepModel model;
    model.smHz_ = sm_hz;
    double mean = 0.0;
    for (const auto &s : samples)
        mean += s.seconds;
    model.fallbackSeconds_ = mean / static_cast<double>(samples.size());

    std::vector<std::array<double, numTimeTerms>> time_rows;
    std::vector<double> seconds;
    for (const auto &s : samples) {
        time_rows.push_back(model.timeBasis(s.point));
        seconds.push_back(s.seconds);
    }
    model.timeCoef_ = nonNegativeLeastSquares(time_rows, seconds);

    std::vector<std::array<double, numEnergyTerms>> energy_rows;
    std::vector<double> joules;
    for (const auto &s : samples) {
        energy_rows.push_back(model.energyBasis(s.point));
        joules.push_back(s.joules);
    }
    model.energyCoef_ = nonNegativeLeastSquares(energy_rows, joules);

    double sec_err = 0.0;
    double joule_err = 0.0;
    for (const auto &s : samples) {
        if (s.seconds > 0.0) {
            sec_err += std::fabs(model.predictSeconds(s.point) -
                                 s.seconds) /
                       s.seconds;
        }
        if (s.joules > 0.0) {
            joule_err += std::fabs(model.predictJoules(s.point) -
                                   s.joules) /
                         s.joules;
        }
    }
    model.fitErrSeconds_ = sec_err / static_cast<double>(samples.size());
    model.fitErrJoules_ = joule_err / static_cast<double>(samples.size());
    return model;
}

double
SweepModel::predictSeconds(const OperatingPoint &p) const
{
    const auto basis = timeBasis(p);
    double sec = 0.0;
    for (std::size_t i = 0; i < numTimeTerms; ++i)
        sec += timeCoef_[i] * basis[i];
    return sec > 0.0 ? sec : fallbackSeconds_;
}

double
SweepModel::predictCycles(const OperatingPoint &p) const
{
    return predictSeconds(p) * frequencyScale(p.smVf) * smHz_;
}

double
SweepModel::predictJoules(const OperatingPoint &p) const
{
    const auto basis = energyBasis(p);
    double joules = 0.0;
    for (std::size_t i = 0; i < numEnergyTerms; ++i)
        joules += energyCoef_[i] * basis[i];
    return joules;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<std::pair<double, double>> &objectives,
               double slack)
{
    if (slack < 0.0)
        fatal("paretoFrontier: slack must be non-negative, got ", slack);
    const double keep = 1.0 + slack;
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < objectives.size() && !dominated;
             ++j) {
            if (j == i)
                continue;
            // j must beat i by more than the slack on BOTH axes.
            dominated =
                objectives[j].first * keep < objectives[i].first &&
                objectives[j].second * keep < objectives[i].second;
        }
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

} // namespace equalizer
