/**
 * @file
 * Feature extraction for the model-guided sweep (docs/AUTOTUNE.md).
 *
 * Two feature families feed the autotuner:
 *
 *  - StaticFeatures come from the kernel parameters and the occupancy
 *    calculator alone — no simulation. They bound the CTA axis and
 *    provide the wave counts the frontier pruner keys on.
 *  - ProbeFeatures come from one warmed probe run: the measured
 *    RunMetrics plus the per-epoch gauge samples of the probe's
 *    execution trace. They summarize where the kernel's time actually
 *    went (memory waiting vs issue pressure), which the report and
 *    export surface next to the fitted model.
 */

#ifndef EQ_AUTOTUNE_FEATURES_HH
#define EQ_AUTOTUNE_FEATURES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "autotune/occupancy.hh"
#include "gpu/metrics.hh"

namespace equalizer
{

/** Simulation-free features of one kernel on one device. */
struct StaticFeatures
{
    int warpsPerBlock = 0;
    int totalBlocks = 0;
    int instrsPerWarp = 0;
    double aluPerMem = 0.0;      ///< phase-weighted compute:memory mix
    double sharedFraction = 0.0; ///< phase-weighted shared-memory share

    int maxBlocksPerSm = 0; ///< occupancy- and Table II-limited
    double occupancy = 0.0; ///< warp occupancy at maxBlocksPerSm
    OccupancyLimiter limiter = OccupancyLimiter::BlockSlots;

    /** Waves to drain the grid at @p cta concurrent blocks per SM. */
    int wavesAt(int cta) const;

    int numSms = 0; ///< device SMs the wave count divides over
};

StaticFeatures extractStaticFeatures(const GpuConfig &cfg,
                                     const KernelParams &params);

/** What one warmed probe run revealed about the kernel. */
struct ProbeFeatures
{
    double ipc = 0.0;
    double waitingFraction = 0.0; ///< scoreboard-blocked warp share
    double xMemFraction = 0.0;    ///< memory-backpressure warp share
    double xAluFraction = 0.0;    ///< issue-width-blocked warp share
    double l1HitRate = 0.0;
    double dramPerKcycle = 0.0;   ///< DRAM accesses per 1000 SM cycles

    /**
     * Memory-pressure score in [0, 1]: the share of active warp-cycles
     * spent waiting on memory (waiting + X_mem). The report labels the
     * kernel memory-bound above 0.5.
     */
    double memoryPressure() const;

    /** Mean of every per-epoch gauge over the probe's trace. */
    std::map<std::string, double> gaugeMeans;

    /** Epoch drains the probe trace recorded (0 without a trace). */
    std::uint64_t epochSamples = 0;
};

/**
 * Aggregate @p metrics and (optionally) a binary probe trace into
 * ProbeFeatures. @p trace_bytes may be empty (no tracer attached);
 * gauge means and the epoch-sample count are then zero and the
 * warp-state fractions come from the metrics outcome totals alone.
 */
ProbeFeatures
extractProbeFeatures(const RunMetrics &metrics,
                     const std::vector<std::uint8_t> &trace_bytes);

} // namespace equalizer

#endif // EQ_AUTOTUNE_FEATURES_HH
