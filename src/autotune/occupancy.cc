#include "occupancy.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

SmResources
SmResources::fromConfig(const GpuConfig &cfg)
{
    SmResources r;
    r.maxWarps = cfg.maxWarpsPerSm;
    r.maxBlocks = cfg.maxBlocksPerSm;
    return r;
}

BlockRequirements
BlockRequirements::fromKernel(const KernelParams &params)
{
    BlockRequirements req;
    req.warpsPerBlock = params.warpsPerBlock;
    req.regsPerThread = 21;

    // Weighted shared fraction over the phase schedule; a kernel that
    // touches shared memory at all stages a per-warp working set there.
    double shared = 0.0;
    double weight = 0.0;
    std::size_t ws = 0;
    for (const auto &ph : params.phases) {
        shared += ph.weight * ph.sharedFraction;
        weight += ph.weight;
        ws = std::max(ws, ph.workingSetBytes);
    }
    if (weight > 0.0 && shared / weight > 0.0) {
        req.smemPerBlock =
            static_cast<std::size_t>(params.warpsPerBlock) * ws;
    }
    return req;
}

const char *
occupancyLimiterName(OccupancyLimiter l)
{
    switch (l) {
      case OccupancyLimiter::BlockSlots:
        return "block-slots";
      case OccupancyLimiter::Warps:
        return "warps";
      case OccupancyLimiter::Registers:
        return "registers";
      case OccupancyLimiter::SharedMem:
        return "shared-memory";
    }
    return "?";
}

namespace
{

/** Round @p v up to a multiple of @p unit (unit >= 1). */
std::size_t
roundUp(std::size_t v, std::size_t unit)
{
    return unit <= 1 ? v : (v + unit - 1) / unit * unit;
}

} // namespace

OccupancyResult
computeOccupancy(const SmResources &sm, const BlockRequirements &block)
{
    if (block.warpsPerBlock <= 0)
        fatal("occupancy: warpsPerBlock must be positive, got ",
              block.warpsPerBlock);
    if (sm.maxWarps <= 0 || sm.maxBlocks <= 0)
        fatal("occupancy: SM has no warp/block slots (maxWarps=",
              sm.maxWarps, ", maxBlocks=", sm.maxBlocks, ")");
    if (block.regsPerThread < 0)
        fatal("occupancy: negative regsPerThread ", block.regsPerThread);

    OccupancyResult result;
    result.blocksPerSm = sm.maxBlocks;
    result.limiter = OccupancyLimiter::BlockSlots;

    auto tighten = [&result](int blocks, OccupancyLimiter why) {
        if (blocks < result.blocksPerSm) {
            result.blocksPerSm = blocks;
            result.limiter = why;
        }
    };

    tighten(sm.maxWarps / block.warpsPerBlock, OccupancyLimiter::Warps);

    if (block.regsPerThread > 0) {
        if (sm.registerFile <= 0) {
            fatal("occupancy: kernel needs ", block.regsPerThread,
                  " regs/thread but the SM has no register file");
        }
        // Registers allocate per warp, 32 threads each, rounded to the
        // allocation unit.
        const std::size_t per_warp =
            roundUp(static_cast<std::size_t>(block.regsPerThread) * 32,
                    static_cast<std::size_t>(std::max(1, sm.regAllocUnit)));
        const std::size_t per_block =
            per_warp * static_cast<std::size_t>(block.warpsPerBlock);
        tighten(static_cast<int>(
                    static_cast<std::size_t>(sm.registerFile) / per_block),
                OccupancyLimiter::Registers);
    }

    if (block.smemPerBlock > 0) {
        if (sm.sharedMemBytes == 0) {
            fatal("occupancy: kernel needs ", block.smemPerBlock,
                  " B of shared memory but the SM has none");
        }
        const std::size_t per_block =
            roundUp(block.smemPerBlock, sm.smemAllocUnit);
        tighten(static_cast<int>(sm.sharedMemBytes / per_block),
                OccupancyLimiter::SharedMem);
    }

    if (result.blocksPerSm <= 0) {
        fatal("occupancy: one block (", block.warpsPerBlock, " warps, ",
              block.regsPerThread, " regs/thread, ", block.smemPerBlock,
              " B smem) does not fit on an empty SM; limited by ",
              occupancyLimiterName(result.limiter));
    }

    result.activeWarps = result.blocksPerSm * block.warpsPerBlock;
    result.occupancy = static_cast<double>(result.activeWarps) /
                       static_cast<double>(sm.maxWarps);
    return result;
}

int
wavesForGrid(int total_blocks, int num_sms, int blocks_per_sm)
{
    if (total_blocks <= 0)
        return 0;
    if (num_sms <= 0 || blocks_per_sm <= 0)
        fatal("wavesForGrid: need positive SMs and blocks per SM, got ",
              num_sms, " and ", blocks_per_sm);
    const int per_sm = (total_blocks + num_sms - 1) / num_sms;
    return (per_sm + blocks_per_sm - 1) / blocks_per_sm;
}

int
effectiveMaxBlocks(const GpuConfig &cfg, const KernelParams &params)
{
    const OccupancyResult occ = computeOccupancy(
        SmResources::fromConfig(cfg),
        BlockRequirements::fromKernel(params));
    return std::min(occ.blocksPerSm, params.maxBlocksPerSm);
}

} // namespace equalizer
