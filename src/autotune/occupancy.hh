/**
 * @file
 * Static occupancy calculator (docs/AUTOTUNE.md).
 *
 * Answers the question every CTA-tuning decision starts from: how many
 * thread blocks of a kernel can be resident on one SM at once, and
 * which resource runs out first. The calculator mirrors the classic
 * CUDA occupancy spreadsheet: blocks are limited by warp slots, block
 * slots, the register file and shared memory, each with its own
 * allocation granularity; the binding resource is the minimum.
 *
 * The synthetic zoo carries its Table II occupancy limit in
 * KernelParams::maxBlocksPerSm; the calculator reproduces that bound
 * from first principles and the autotuner uses the tighter of the two
 * when it builds a CTA grid.
 */

#ifndef EQ_AUTOTUNE_OCCUPANCY_HH
#define EQ_AUTOTUNE_OCCUPANCY_HH

#include <cstddef>
#include <string>

#include "gpu/gpu_config.hh"
#include "kernels/kernel_params.hh"

namespace equalizer
{

/** Per-SM resource pools an occupancy computation divides up. */
struct SmResources
{
    int maxWarps = 48;  ///< warp slots (GTX480: 48)
    int maxBlocks = 8;  ///< block slots (GTX480: 8)

    /** 32-bit registers per SM (Fermi: 32 K). */
    int registerFile = 32768;

    /** Per-warp register allocation granularity (Fermi: 64). */
    int regAllocUnit = 64;

    /** Shared-memory bytes per SM (Fermi: 48 KiB). */
    std::size_t sharedMemBytes = 49152;

    /** Shared-memory allocation granularity in bytes (Fermi: 128). */
    std::size_t smemAllocUnit = 128;

    /**
     * Warp/block slots from @p cfg, register file and shared memory
     * from the GTX480 defaults above.
     */
    static SmResources fromConfig(const GpuConfig &cfg);
};

/** What one thread block of a kernel asks of an SM. */
struct BlockRequirements
{
    int warpsPerBlock = 0;        ///< warp slots per block (required > 0)
    int regsPerThread = 0;        ///< 0 = no register pressure
    std::size_t smemPerBlock = 0; ///< shared-memory bytes per block

    /**
     * Derive the requirements of one zoo kernel: warps from W_cta, a
     * fixed 21-registers-per-thread estimate (the zoo does not model
     * register allocation) and a shared-memory footprint of one
     * working set per warp scaled by the kernel's weighted shared
     * fraction.
     */
    static BlockRequirements fromKernel(const KernelParams &params);
};

/** The resource that caps residency. */
enum class OccupancyLimiter
{
    BlockSlots, ///< SmResources::maxBlocks
    Warps,      ///< warp slots
    Registers,  ///< register file
    SharedMem,  ///< shared memory
};

const char *occupancyLimiterName(OccupancyLimiter l);

/** Result of one occupancy computation. */
struct OccupancyResult
{
    int blocksPerSm = 0;     ///< maximum resident blocks
    int activeWarps = 0;     ///< blocksPerSm * warpsPerBlock
    double occupancy = 0.0;  ///< activeWarps / maxWarps
    OccupancyLimiter limiter = OccupancyLimiter::BlockSlots;
};

/**
 * Maximum resident blocks per SM and the binding resource.
 *
 * fatal()s on impossible inputs: non-positive warp requirements or
 * pools, or a block that does not fit on an empty SM (zero resident
 * blocks has no occupancy).  Ties between limiters resolve in the
 * OccupancyLimiter declaration order, so the reported limiter is
 * deterministic.
 */
OccupancyResult computeOccupancy(const SmResources &sm,
                                 const BlockRequirements &block);

/**
 * Waves needed to drain @p total_blocks over @p num_sms SMs running
 * @p blocks_per_sm concurrent blocks each (the WaveTune wave count:
 * points in the same wave class perform nearly identically).
 */
int wavesForGrid(int total_blocks, int num_sms, int blocks_per_sm);

/**
 * The CTA axis the autotuner sweeps for @p params on @p cfg: the
 * calculator's bound clamped by the kernel's Table II limit and the
 * device block slots.
 */
int effectiveMaxBlocks(const GpuConfig &cfg, const KernelParams &params);

} // namespace equalizer

#endif // EQ_AUTOTUNE_OCCUPANCY_HH
