/**
 * @file
 * The model-guided sweep driver (docs/AUTOTUNE.md).
 *
 * runModelSweep() executes a SweepPlan with SweepStrategy::Model: it
 * simulates the shared warm-up prefix once, forks a handful of probe
 * points off the warmed state (plus one traced fork that feeds the
 * feature extractor), fits a SweepModel to the probe measurements,
 * predicts time and energy for every grid point, and then simulates
 * only the predicted epsilon-Pareto frontier — the predicted best-perf
 * and best-energy points, their CTA neighbours, and as many further
 * frontier points as the simulation budget (one fifth of the grid)
 * allows. The returned winners are chosen from *measured* values of
 * the simulated subset, so a model sweep that explores the true optima
 * reports exactly the same best-perf/best-energy answers as an
 * exhaustive sweep (bench/bench_autotune.cc gates this).
 */

#ifndef EQ_AUTOTUNE_AUTOTUNER_HH
#define EQ_AUTOTUNE_AUTOTUNER_HH

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace equalizer
{

/**
 * Expand a declarative grid into operating points, SM state major,
 * then memory state, then CTA. An empty CTA axis becomes
 * 1..effectiveMaxBlocks(cfg, kernel).
 */
std::vector<OperatingPoint> expandSweepGrid(const GpuConfig &cfg,
                                            const KernelParams &kernel,
                                            const SweepGrid &grid);

/**
 * The probe schedule of a model sweep: up to @p budget unique grid
 * points interleaving the two extreme SM/memory frequency ratios
 * across a spread of CTA values (min, max, mid, ...), so the time
 * model's per-domain and per-CTA coefficients are all identifiable.
 */
std::vector<OperatingPoint>
selectProbePoints(const std::vector<OperatingPoint> &grid_points,
                  const SweepGrid &grid, int budget);

/** Model-strategy sweep (declared friend of ExperimentRunner). */
SweepResult runModelSweep(ExperimentRunner &runner, const SweepPlan &plan);

} // namespace equalizer

#endif // EQ_AUTOTUNE_AUTOTUNER_HH
