#include "autotuner.hh"

#include <algorithm>
#include <utility>

#include "autotune/features.hh"
#include "autotune/model.hh"
#include "autotune/occupancy.hh"
#include "common/log.hh"
#include "kernels/synthetic_kernel.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"

namespace equalizer
{

std::vector<OperatingPoint>
expandSweepGrid(const GpuConfig &cfg, const KernelParams &kernel,
                const SweepGrid &grid)
{
    if (grid.smStates.empty() || grid.memStates.empty())
        fatal("sweep grid needs at least one SM and one memory VF state");

    std::vector<int> blocks = grid.blocks;
    if (blocks.empty()) {
        const int max_blocks = effectiveMaxBlocks(cfg, kernel);
        for (int c = 1; c <= max_blocks; ++c)
            blocks.push_back(c);
    }
    for (int c : blocks) {
        if (c <= 0)
            fatal("sweep grid CTA values must be positive, got ", c);
    }

    std::vector<OperatingPoint> points;
    for (VfState sm : grid.smStates)
        for (VfState mem : grid.memStates)
            for (int c : blocks)
                points.push_back(OperatingPoint{sm, mem, c});
    return points;
}

namespace
{

/** CTA values of the grid in probe-spread order: min, max, mid, rest. */
std::vector<int>
ctaSpreadOrder(const std::vector<OperatingPoint> &grid_points)
{
    std::vector<int> ctas;
    for (const auto &p : grid_points) {
        if (std::find(ctas.begin(), ctas.end(), p.cta) == ctas.end())
            ctas.push_back(p.cta);
    }
    std::sort(ctas.begin(), ctas.end());

    std::vector<int> spread;
    auto take = [&spread, &ctas](std::size_t i) {
        if (std::find(spread.begin(), spread.end(), ctas[i]) ==
            spread.end()) {
            spread.push_back(ctas[i]);
        }
    };
    take(0);
    take(ctas.size() - 1);
    take(ctas.size() / 2);
    for (std::size_t i = 0; i < ctas.size(); ++i)
        take(i);
    return spread;
}

} // namespace

std::vector<OperatingPoint>
selectProbePoints(const std::vector<OperatingPoint> &grid_points,
                  const SweepGrid &grid, int budget)
{
    if (grid_points.empty())
        fatal("cannot select probes from an empty grid");
    budget = std::min<int>(std::max(budget, 1),
                           static_cast<int>(grid_points.size()));

    // The two extreme frequency ratios: memory favoured over SM and
    // the reverse. Distinct x:m ratios are what make the time model's
    // memory-bound and compute-bound shares separable.
    std::vector<std::pair<VfState, VfState>> pairs = {
        {grid.smStates.front(), grid.memStates.back()},
        {grid.smStates.back(), grid.memStates.front()},
    };
    if (pairs[0] == pairs[1])
        pairs.pop_back();

    const std::vector<int> spread = ctaSpreadOrder(grid_points);
    auto contains = [](const std::vector<OperatingPoint> &v,
                       const OperatingPoint &p) {
        return std::find(v.begin(), v.end(), p) != v.end();
    };

    // Diagonal interleave: both ratios at CTA min before either moves
    // to CTA max, so any prefix of the schedule stays well-spread.
    std::vector<OperatingPoint> probes;
    const std::size_t n_pairs = pairs.size();
    for (std::size_t k = 0; k < n_pairs * spread.size(); ++k) {
        if (static_cast<int>(probes.size()) >= budget)
            return probes;
        const auto &[sm, mem] = pairs[k % n_pairs];
        const OperatingPoint p{sm, mem, spread[k / n_pairs]};
        if (contains(grid_points, p) && !contains(probes, p))
            probes.push_back(p);
    }
    // Ratio pairs exhausted (tiny grids): top up in grid id order.
    for (const auto &p : grid_points) {
        if (static_cast<int>(probes.size()) >= budget)
            break;
        if (!contains(probes, p))
            probes.push_back(p);
    }
    return probes;
}

namespace
{

/** Index of @p p in @p grid_points; -1 when absent. */
int
gridIndexOf(const std::vector<OperatingPoint> &grid_points,
            const OperatingPoint &p)
{
    for (std::size_t i = 0; i < grid_points.size(); ++i) {
        if (grid_points[i] == p)
            return static_cast<int>(i);
    }
    return -1;
}

/** argmin of @p value over all rows; ties go to the lower id. */
int
predictedArgmin(const std::vector<SweepPointRow> &table, bool by_energy)
{
    int best = -1;
    double best_value = 0.0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        const double v = by_energy ? table[i].predictedJoules
                                   : table[i].predictedSeconds;
        if (best < 0 || v < best_value) {
            best = static_cast<int>(i);
            best_value = v;
        }
    }
    return best;
}

} // namespace

SweepResult
runModelSweep(ExperimentRunner &runner, const SweepPlan &plan)
{
    runner.checkPrefix(plan.kernel, plan.prefixInvocations);
    if (!plan.points.empty()) {
        fatal("the model sweep strategy is grid-driven; it cannot take "
              "explicit policy points");
    }

    const GpuConfig &cfg = runner.gpuConfig();
    const std::vector<OperatingPoint> grid_points =
        expandSweepGrid(cfg, plan.kernel, plan.grid);
    const int grid_n = static_cast<int>(grid_points.size());
    runner.stats_.counter("sweep.grid_points") +=
        static_cast<std::uint64_t>(grid_n);

    // Simulation budget: one fifth of the grid is the reduction target
    // (bench_autotune gates >= 5x); never below the probe schedule
    // itself so tiny grids still fit a model.
    const std::vector<OperatingPoint> probes =
        selectProbePoints(grid_points, plan.grid, plan.probePoints);
    const int budget = std::max(grid_n / 5,
                                static_cast<int>(probes.size()));

    // --- Warm the parent once; every simulated point forks it.
    GpuTop parent(runner.gpuCfg_, runner.powerCfg_);
    parent.setParallelExecutor(runner.executor_.get());
    if (runner.tracer_)
        parent.setTracer(runner.tracer_);
    auto warmup = plan.prefixPolicy.build();
    parent.setController(warmup.get());
    for (int inv = 0; inv < plan.prefixInvocations; ++inv) {
        SyntheticKernel launch(plan.kernel, inv);
        parent.runKernel(launch);
        ++runner.stats_.counter("sweep.prefix_invocations");
    }
    parent.setController(nullptr);

    SweepResult result;
    std::vector<int> simulated_ids;
    auto simulatePoint = [&](const OperatingPoint &op,
                             Tracer *point_tracer) {
        GpuTop child(runner.gpuCfg_, runner.powerCfg_);
        child.setParallelExecutor(runner.executor_.get());
        if (point_tracer)
            child.setTracer(point_tracer);
        else if (runner.tracer_)
            child.setTracer(runner.tracer_);
        child.forkFrom(parent);
        ++runner.stats_.counter("sweep.forks");
        AppRunResult r = runner.runSuffix(
            child, plan.kernel,
            policies::operatingPoint(op.smVf, op.memVf, op.cta),
            plan.prefixInvocations);
        ++runner.stats_.counter("sweep.points");
        return r;
    };

    // --- Probe runs. The first probe also records an epoch-level
    // trace (unless the caller attached their own tracer) so the
    // feature extractor sees per-epoch gauges, not just run totals.
    // Tracing is observational: the traced fork's metrics are
    // bit-identical to an untraced run of the same point
    // (tests/autotune_test.cc cross-checks this against the
    // exhaustive sweep).
    MemoryTraceSink feature_sink;
    Tracer feature_tracer(TraceConfig{}, feature_sink);
    const bool own_feature_trace = runner.tracer_ == nullptr;

    std::vector<MeasuredSample> samples;
    ProbeFeatures probe_features;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        Tracer *t = i == 0 && own_feature_trace ? &feature_tracer
                                                : nullptr;
        AppRunResult r = simulatePoint(probes[i], t);
        if (t) {
            t->finish();
            probe_features = extractProbeFeatures(
                r.total, feature_sink.serialize());
        } else if (i == 0) {
            probe_features = extractProbeFeatures(r.total, {});
        }
        samples.push_back(MeasuredSample{probes[i], r.total.seconds,
                                         r.total.totalJoules()});
        simulated_ids.push_back(gridIndexOf(grid_points, probes[i]));
        result.points.push_back(std::move(r));
        ++runner.stats_.counter("sweep.probes");
    }
    result.probeIpc = probe_features.ipc;
    result.probeMemoryPressure = probe_features.memoryPressure();
    result.probeEpochSamples = probe_features.epochSamples;

    // --- Fit and predict every grid point.
    const SweepModel model = SweepModel::fit(samples, cfg.smNominalHz);
    result.fitErrorSeconds = model.fitErrorSeconds();
    result.fitErrorJoules = model.fitErrorJoules();
    for (int i = 0; i < grid_n; ++i) {
        const OperatingPoint &op = grid_points[i];
        SweepPointRow row;
        row.id = i;
        row.policy =
            policies::operatingPoint(op.smVf, op.memVf, op.cta).name;
        row.smVf = op.smVf;
        row.memVf = op.memVf;
        row.cta = op.cta;
        row.predictedSeconds = model.predictSeconds(op);
        row.predictedCycles = model.predictCycles(op);
        row.predictedJoules = model.predictJoules(op);
        result.table.push_back(std::move(row));
    }
    for (std::size_t i = 0; i < probes.size(); ++i) {
        SweepPointRow &row =
            result.table[static_cast<std::size_t>(simulated_ids[i])];
        const RunMetrics &m = result.points[i].total;
        row.measuredSeconds = m.seconds;
        row.measuredCycles = static_cast<double>(m.smCycles);
        row.measuredJoules = m.totalJoules();
        row.simulated = true;
    }

    // --- Choose what else to simulate: the predicted winners, their
    // CTA neighbours (the model's CTA optimum is the least certain
    // axis), then the rest of the predicted epsilon-Pareto frontier,
    // alternating between its performance and energy ends.
    std::vector<int> to_simulate;
    auto enqueue = [&](int id) {
        if (id < 0 || result.table[static_cast<std::size_t>(id)].simulated)
            return;
        if (std::find(to_simulate.begin(), to_simulate.end(), id) ==
            to_simulate.end()) {
            to_simulate.push_back(id);
        }
    };
    auto neighbours = [&](int id) {
        if (id < 0)
            return;
        const OperatingPoint &op = grid_points[static_cast<std::size_t>(id)];
        for (int d : {-1, 1}) {
            enqueue(gridIndexOf(
                grid_points,
                OperatingPoint{op.smVf, op.memVf, op.cta + d}));
        }
    };
    const int pred_perf = predictedArgmin(result.table, false);
    const int pred_energy = predictedArgmin(result.table, true);
    enqueue(pred_perf);
    enqueue(pred_energy);
    // The probe schedule only visits the anti-diagonal VF pairs (that
    // is what makes the fit well-conditioned), so the corners the
    // winners usually live at — all-high for performance, all-low for
    // energy — are priors worth a simulation each, at the predicted
    // winner's CTA.
    if (pred_perf >= 0) {
        enqueue(gridIndexOf(
            grid_points,
            OperatingPoint{
                plan.grid.smStates.back(), plan.grid.memStates.back(),
                grid_points[static_cast<std::size_t>(pred_perf)].cta}));
    }
    if (pred_energy >= 0) {
        enqueue(gridIndexOf(
            grid_points,
            OperatingPoint{
                plan.grid.smStates.front(),
                plan.grid.memStates.front(),
                grid_points[static_cast<std::size_t>(pred_energy)]
                    .cta}));
    }
    neighbours(pred_perf);
    neighbours(pred_energy);

    std::vector<std::pair<double, double>> objectives;
    for (const auto &row : result.table)
        objectives.emplace_back(row.predictedSeconds, row.predictedJoules);
    std::vector<std::size_t> frontier =
        paretoFrontier(objectives, plan.paretoSlack);
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto key = [&](std::size_t i) {
                      return std::make_pair(objectives[i].first, i);
                  };
                  return key(a) < key(b);
              });
    for (std::size_t lo = 0, hi = frontier.size(); lo < hi;) {
        enqueue(static_cast<int>(frontier[lo++]));
        if (lo < hi)
            enqueue(static_cast<int>(frontier[--hi]));
    }

    const int extra_budget =
        budget - static_cast<int>(result.points.size());
    if (static_cast<int>(to_simulate.size()) > extra_budget) {
        to_simulate.resize(
            static_cast<std::size_t>(std::max(extra_budget, 0)));
    }

    for (int id : to_simulate) {
        const OperatingPoint &op = grid_points[static_cast<std::size_t>(id)];
        AppRunResult r = simulatePoint(op, nullptr);
        SweepPointRow &row = result.table[static_cast<std::size_t>(id)];
        row.measuredSeconds = r.total.seconds;
        row.measuredCycles = static_cast<double>(r.total.smCycles);
        row.measuredJoules = r.total.totalJoules();
        row.simulated = true;
        result.points.push_back(std::move(r));
        ++runner.stats_.counter("sweep.frontier_sims");
    }

    // --- The winners are measured, never predicted: the model only
    // decided where to spend simulations.
    result.bestPerf = bestSweepRow(result.table, false);
    result.bestEnergy = bestSweepRow(result.table, true);
    result.stats = runner.stats_.snapshotAndReset();
    return result;
}

} // namespace equalizer
