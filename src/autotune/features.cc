#include "features.hh"

#include <algorithm>

#include "common/log.hh"
#include "trace/trace_reader.hh"

namespace equalizer
{

int
StaticFeatures::wavesAt(int cta) const
{
    return wavesForGrid(totalBlocks, numSms, cta);
}

StaticFeatures
extractStaticFeatures(const GpuConfig &cfg, const KernelParams &params)
{
    StaticFeatures f;
    f.warpsPerBlock = params.warpsPerBlock;
    f.totalBlocks = params.totalBlocks;
    f.instrsPerWarp = params.instrsPerWarp;
    f.numSms = cfg.numSms;

    double weight = 0.0;
    for (const auto &ph : params.phases) {
        f.aluPerMem += ph.weight * ph.aluPerMem;
        f.sharedFraction += ph.weight * ph.sharedFraction;
        weight += ph.weight;
    }
    if (weight > 0.0) {
        f.aluPerMem /= weight;
        f.sharedFraction /= weight;
    }

    const OccupancyResult occ = computeOccupancy(
        SmResources::fromConfig(cfg),
        BlockRequirements::fromKernel(params));
    f.maxBlocksPerSm = std::min(occ.blocksPerSm, params.maxBlocksPerSm);
    f.limiter = occ.limiter;
    f.occupancy =
        static_cast<double>(f.maxBlocksPerSm * params.warpsPerBlock) /
        static_cast<double>(std::max(1, cfg.maxWarpsPerSm));
    return f;
}

double
ProbeFeatures::memoryPressure() const
{
    return std::min(1.0, waitingFraction + xMemFraction);
}

ProbeFeatures
extractProbeFeatures(const RunMetrics &metrics,
                     const std::vector<std::uint8_t> &trace_bytes)
{
    ProbeFeatures f;
    f.ipc = metrics.ipc();
    const double active = std::max<double>(
        1.0, static_cast<double>(metrics.outcomeTotals.active));
    f.waitingFraction =
        static_cast<double>(metrics.outcomeTotals.waiting) / active;
    f.xMemFraction =
        static_cast<double>(metrics.outcomeTotals.excessMem) / active;
    f.xAluFraction =
        static_cast<double>(metrics.outcomeTotals.excessAlu) / active;
    f.l1HitRate = metrics.l1HitRate();
    f.dramPerKcycle =
        metrics.smCycles
            ? static_cast<double>(metrics.dramAccesses) * 1000.0 /
                  static_cast<double>(metrics.smCycles)
            : 0.0;

    if (trace_bytes.empty())
        return f;

    const TraceReader reader = TraceReader::fromBytes(trace_bytes);
    const std::vector<std::string> names = reader.gaugeNames();
    std::vector<double> sums(names.size(), 0.0);
    std::vector<std::uint64_t> counts(names.size(), 0);
    for (const auto &e : reader.events()) {
        if (e.kind == TraceEventKind::Gauge) {
            const auto id = static_cast<std::size_t>(e.sm);
            if (id < names.size()) {
                sums[id] += e.p.d[0];
                ++counts[id];
            }
        } else if (e.kind == TraceEventKind::HighWater && e.sm == 0) {
            // One HighWater event per SM per epoch drain: counting a
            // single SM's counts the epochs themselves.
            ++f.epochSamples;
        }
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (counts[i] > 0) {
            f.gaugeMeans[names[i]] =
                sums[i] / static_cast<double>(counts[i]);
        }
    }
    return f;
}

} // namespace equalizer
