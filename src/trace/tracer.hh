/**
 * @file
 * The Tracer: per-SM lock-free event rings, a serial emit path for
 * barrier-phase components (Equalizer, the frequency manager, clock
 * domains), per-epoch gauge sampling, and the serial drain that hands
 * canonically-ordered batches to a TraceSink.
 *
 * Ordering contract (the determinism guarantee): events reach the sink
 * in simulated-time order — serial emits in program order, then at
 * every epoch boundary the gauges followed by each SM's ring drained
 * in SM index order. None of this depends on which worker thread
 * ticked an SM, so a threads=N trace is byte-identical to threads=1
 * (tests/trace_test.cc asserts it).
 */

#ifndef EQ_TRACE_TRACER_HH
#define EQ_TRACE_TRACER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/gauge.hh"
#include "trace/ring_buffer.hh"
#include "trace/sink.hh"
#include "trace/trace_event.hh"

namespace equalizer
{

/** Tunables of one Tracer. */
struct TraceConfig
{
    /** Per-SM ring capacity in KiB (knob: trace_buf_kb). */
    std::size_t bufKb = 64;

    /**
     * Cycles between drains / gauge samples (knob: trace_epoch).
     * Must be a power of two — the hot-loop boundary test is a mask.
     */
    Cycle epochCycles = 4096;
};

/** The epoch-level tracing engine (docs/TRACING.md). */
class Tracer
{
  public:
    /** @param sink Non-owning; must outlive the tracer. */
    Tracer(TraceConfig cfg, TraceSink &sink);
    ~Tracer();

    /**
     * Size the per-SM rings and write the segment header. Called by
     * GpuTop::setTracer(); re-attaching with the same SM count is a
     * no-op so one tracer can span a whole sweep (parent and forked
     * children share the rings — only one GPU runs at a time).
     */
    void attach(int num_sms);

    bool attached() const { return !rings_.empty(); }
    int numSms() const { return static_cast<int>(rings_.size()); }

    /** The ring an SM writes into during the parallel phase. */
    TraceRing *ring(int sm)
    {
        return rings_[static_cast<std::size_t>(sm)].get();
    }

    /** True when @p cycle is a drain boundary (one mask test). */
    bool epochBoundary(Cycle cycle) const
    {
        return (cycle & epochMask_) == 0;
    }

    Cycle epochCycles() const { return epochMask_ + 1; }

    /** Serial-phase emit: append directly to the pending batch. */
    void
    emit(const TraceEvent &e)
    {
        if constexpr (traceCompiledIn)
            pending_.push_back(e);
    }

    /** Live metrics sampled once per epoch. */
    GaugeRegistry &gauges() { return gauges_; }

    /**
     * The serial epoch drain: sample gauges, drain every ring in SM
     * index order (recording per-SM drop counts), and hand the batch
     * to the sink. Must run in the barrier phase.
     */
    void drainEpoch(Cycle cycle);

    /** Ring drain without gauge sampling (kernel end, checkpoints). */
    void drainRings(Cycle cycle);

    /** Final drain and sink finish. Idempotent; ~Tracer calls it. */
    void finish();

    std::uint64_t eventsRecorded() const { return recorded_; }
    std::uint64_t eventsDropped() const { return dropped_; }

  private:
    void flushPending();

    TraceConfig cfg_;
    TraceSink &sink_;
    Cycle epochMask_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
    std::vector<TraceEvent> pending_;
    GaugeRegistry gauges_;
    Cycle lastCycle_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    bool headerWritten_ = false;
    bool finished_ = false;
};

} // namespace equalizer

#endif // EQ_TRACE_TRACER_HH
