#include "trace_reader.hh"

#include <cstring>
#include <fstream>

#include "common/log.hh"

namespace equalizer
{

bool
isTraceMarker(TraceEventKind k)
{
    return k == TraceEventKind::Checkpoint ||
           k == TraceEventKind::Restore || k == TraceEventKind::Fork;
}

TraceReader
TraceReader::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    TraceReader r;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < sizeof(TraceHeader))
            fatal("truncated trace: ", bytes.size() - pos,
                  " trailing bytes are no header");
        TraceHeader h;
        std::memcpy(&h, bytes.data() + pos, sizeof(h));
        if (h.magic != TraceHeader::traceMagic)
            fatal("not a trace segment at offset ", pos,
                  " (bad magic)");
        if (h.version != TraceHeader::traceFormatVersion)
            fatal("trace format version ", h.version,
                  " is not supported (this build reads version ",
                  TraceHeader::traceFormatVersion, ")");
        if (h.recordSize != sizeof(TraceEvent))
            fatal("trace record size ", h.recordSize,
                  " does not match this build's ", sizeof(TraceEvent));
        if (r.segments_ == 0) {
            r.header_ = h;
        } else if (h.numSms != r.header_.numSms) {
            fatal("concatenated trace segments disagree on SM count (",
                  r.header_.numSms, " vs ", h.numSms, ")");
        }
        ++r.segments_;
        pos += sizeof(TraceHeader);

        if (h.eventCount > 0) {
            // Finished segment: the header says exactly how many
            // records follow.
            const std::size_t need =
                static_cast<std::size_t>(h.eventCount) *
                sizeof(TraceEvent);
            if (bytes.size() - pos < need)
                fatal("trace segment claims ", h.eventCount,
                      " records but only ",
                      (bytes.size() - pos) / sizeof(TraceEvent),
                      " are present");
            for (std::uint64_t i = 0; i < h.eventCount; ++i) {
                TraceEvent e;
                std::memcpy(&e, bytes.data() + pos, sizeof(e));
                r.events_.push_back(e);
                pos += sizeof(TraceEvent);
            }
            continue;
        }

        // Unterminated segment (count never back-patched): records run
        // to the end of the input; it must be the last segment.
        const std::size_t rest = bytes.size() - pos;
        if (rest % sizeof(TraceEvent) != 0)
            fatal("trace ends mid-record (", rest % sizeof(TraceEvent),
                  " dangling bytes)");
        while (pos < bytes.size()) {
            TraceEvent e;
            std::memcpy(&e, bytes.data() + pos, sizeof(e));
            r.events_.push_back(e);
            pos += sizeof(TraceEvent);
        }
    }
    return r;
}

TraceReader
TraceReader::fromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file '", path, "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        fatal("I/O error reading trace file '", path, "'");
    return fromBytes(bytes);
}

std::vector<TraceEvent>
TraceReader::smEvents(int sm) const
{
    std::vector<TraceEvent> out;
    for (const auto &e : events_) {
        if (e.kind == TraceEventKind::Gauge ||
            e.kind == TraceEventKind::GaugeDef) {
            continue; // sm field is a gauge id there
        }
        if (e.sm == sm)
            out.push_back(e);
    }
    return out;
}

std::vector<TraceEvent>
TraceReader::deviceEvents() const
{
    std::vector<TraceEvent> out;
    for (const auto &e : events_) {
        if (e.sm == -1 || e.kind == TraceEventKind::Gauge ||
            e.kind == TraceEventKind::GaugeDef) {
            out.push_back(e);
        }
    }
    return out;
}

std::vector<TraceEvent>
TraceReader::eventsWithoutMarkers() const
{
    std::vector<TraceEvent> out;
    for (const auto &e : events_)
        if (!isTraceMarker(e.kind))
            out.push_back(e);
    return out;
}

std::vector<std::string>
TraceReader::gaugeNames() const
{
    std::vector<std::string> names;
    for (const auto &e : events_) {
        if (e.kind != TraceEventKind::GaugeDef)
            continue;
        const auto id = static_cast<std::size_t>(e.sm);
        if (names.size() <= id)
            names.resize(id + 1);
        names[id] = traceEventString(e);
    }
    return names;
}

} // namespace equalizer
