#include "sink.hh"

#include <cstddef>
#include <cstring>

#include "common/log.hh"

namespace equalizer
{

std::vector<std::uint8_t>
MemoryTraceSink::serialize() const
{
    TraceHeader h = header_;
    h.eventCount = events_.size();
    std::vector<std::uint8_t> out(sizeof(TraceHeader) +
                                  events_.size() * sizeof(TraceEvent));
    std::memcpy(out.data(), &h, sizeof(TraceHeader));
    if (!events_.empty())
        std::memcpy(out.data() + sizeof(TraceHeader), events_.data(),
                    events_.size() * sizeof(TraceEvent));
    return out;
}

FileTraceSink::FileTraceSink(const std::string &path)
    : path_(path), os_(path, std::ios::binary)
{
    if (!os_)
        fatal("cannot open trace file '", path, "' for writing");
}

void
FileTraceSink::begin(const TraceHeader &header)
{
    headerPos_ = os_.tellp();
    os_.write(reinterpret_cast<const char *>(&header), sizeof(header));
}

void
FileTraceSink::events(const TraceEvent *e, std::size_t n)
{
    if (n > 0) {
        os_.write(reinterpret_cast<const char *>(e),
                  static_cast<std::streamsize>(n * sizeof(TraceEvent)));
        count_ += n;
    }
}

void
FileTraceSink::finish()
{
    // Back-patch the segment's event count so readers can split a
    // concatenated file exactly (no magic sniffing inside records).
    if (headerPos_ >= std::streampos(0)) {
        const std::streampos end = os_.tellp();
        os_.seekp(headerPos_ +
                  static_cast<std::streamoff>(
                      offsetof(TraceHeader, eventCount)));
        os_.write(reinterpret_cast<const char *>(&count_),
                  sizeof(count_));
        os_.seekp(end);
    }
    os_.flush();
    if (!os_)
        fatal("I/O error while writing trace file '", path_, "'");
}

} // namespace equalizer
