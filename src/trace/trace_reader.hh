/**
 * @file
 * TraceReader: loads binary trace files back into memory.
 *
 * A file may hold several header+records segments — a checkpointed
 * prefix with a resumed suffix appended, or a plain `cat` of two trace
 * files. The reader validates every header and exposes the merged
 * event stream plus per-SM and device-level views.
 */

#ifndef EQ_TRACE_TRACE_READER_HH
#define EQ_TRACE_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hh"
#include "trace/trace_event.hh"

namespace equalizer
{

/** In-memory view of a loaded trace. */
class TraceReader
{
  public:
    /** Parse @p bytes (one or more segments); fatal() on corruption. */
    static TraceReader fromBytes(const std::vector<std::uint8_t> &bytes);

    /** Load a trace file; fatal() on I/O or format errors. */
    static TraceReader fromFile(const std::string &path);

    const TraceHeader &header() const { return header_; }
    int segments() const { return segments_; }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events of one SM, in emission order. */
    std::vector<TraceEvent> smEvents(int sm) const;

    /** Device-level events (sm = -1), in emission order. */
    std::vector<TraceEvent> deviceEvents() const;

    /**
     * Events with checkpoint/restore/fork markers removed — the view
     * under which a prefix+suffix trace equals an uninterrupted one
     * (docs/TRACING.md).
     */
    std::vector<TraceEvent> eventsWithoutMarkers() const;

    /** Gauge id -> name map reconstructed from GaugeDef events. */
    std::vector<std::string> gaugeNames() const;

  private:
    TraceHeader header_;
    int segments_ = 0;
    std::vector<TraceEvent> events_;
};

/** True for the Checkpoint/Restore/Fork lifecycle markers. */
bool isTraceMarker(TraceEventKind k);

} // namespace equalizer

#endif // EQ_TRACE_TRACE_READER_HH
