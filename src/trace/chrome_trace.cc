#include "chrome_trace.hh"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/log.hh"

namespace equalizer
{

namespace
{

// Process ids of the synthetic non-SM tracks. SM tracks use the SM
// index itself as pid, so these start far above any real SM count.
constexpr int devicePid = 10000;
constexpr int clocksPid = 10001;
constexpr int gaugesPid = 10002;

// Keep in sync with equalizer::Tendency (src/equalizer/decision.hh);
// eq_trace must not link eq_core, so the names live here too.
const char *const tendencyNames[] = {
    "MemoryHeavy",     "ComputeHeavy",  "MemorySaturated",
    "UnsaturatedComp", "UnsaturatedMem", "IdleImbalance",
    "Degenerate",
};

// Keep in sync with equalizer::VfState (src/sim/vf.hh).
const char *const vfStateNames[] = { "Low", "Normal", "High" };

// VfStep payload convention: i[0] = 0 for the SM domain, 1 for the
// memory domain (see FrequencyManager::resolve()).
const char *const clockDomainNames[] = { "sm_clock", "mem_clock" };

const char *
namedOr(const char *const *table, std::size_t n, std::int64_t idx,
        const char *fallback)
{
    if (idx >= 0 && static_cast<std::size_t>(idx) < n)
        return table[static_cast<std::size_t>(idx)];
    return fallback;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Emits trace_event JSON objects with shared comma bookkeeping. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os)
    {
        os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    }

    void
    close()
    {
        os_ << "\n]}\n";
    }

    void
    meta(int pid, const std::string &name)
    {
        sep();
        os_ << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":\""
            << jsonEscape(name) << "\"}}";
    }

    void
    counter(int pid, Cycle ts, const std::string &name,
            const std::string &args)
    {
        sep();
        os_ << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":"
            << ts << ",\"name\":\"" << jsonEscape(name)
            << "\",\"args\":{" << args << "}}";
    }

    void
    instant(int pid, Cycle ts, const std::string &name,
            const std::string &args = "")
    {
        sep();
        os_ << "{\"ph\":\"i\",\"s\":\"p\",\"pid\":" << pid
            << ",\"tid\":0,\"ts\":" << ts << ",\"name\":\""
            << jsonEscape(name) << "\"";
        if (!args.empty())
            os_ << ",\"args\":{" << args << "}";
        os_ << "}";
    }

    void
    span(char ph, int pid, Cycle ts, const std::string &name)
    {
        sep();
        os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
            << ",\"tid\":0,\"ts\":" << ts << ",\"name\":\""
            << jsonEscape(name) << "\"}";
    }

  private:
    void
    sep()
    {
        if (!first_)
            os_ << ",\n";
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

std::string
intArgs(const char *k0, std::int64_t v0, const char *k1 = nullptr,
        std::int64_t v1 = 0, const char *k2 = nullptr,
        std::int64_t v2 = 0, const char *k3 = nullptr,
        std::int64_t v3 = 0)
{
    std::ostringstream ss;
    ss << "\"" << k0 << "\":" << v0;
    if (k1)
        ss << ",\"" << k1 << "\":" << v1;
    if (k2)
        ss << ",\"" << k2 << "\":" << v2;
    if (k3)
        ss << ",\"" << k3 << "\":" << v3;
    return ss.str();
}

} // namespace

void
writeChromeTrace(const TraceReader &trace, std::ostream &os)
{
    const auto gauges = trace.gaugeNames();
    EventWriter w(os);

    w.meta(devicePid, "device");
    w.meta(clocksPid, "clocks");
    if (!gauges.empty())
        w.meta(gaugesPid, "gauges");
    for (std::uint32_t sm = 0; sm < trace.header().numSms; ++sm)
        w.meta(static_cast<int>(sm), "SM " + std::to_string(sm));

    for (const auto &e : trace.events()) {
        const int pid = e.sm >= 0 ? e.sm : devicePid;
        switch (e.kind) {
          case TraceEventKind::KernelBegin:
            w.span('B', devicePid, e.cycle, traceEventString(e));
            break;
          case TraceEventKind::KernelEnd:
            w.span('E', devicePid, e.cycle, traceEventString(e));
            break;
          case TraceEventKind::EpochSample: {
            std::ostringstream ss;
            ss.precision(6);
            ss << "\"active\":" << e.p.d[0] << ",\"waiting\":"
               << e.p.d[1] << ",\"x_alu\":" << e.p.d[2]
               << ",\"x_mem\":" << e.p.d[3];
            w.counter(pid, e.cycle, "warp_states", ss.str());
            break;
          }
          case TraceEventKind::Tendency:
            w.instant(pid, e.cycle,
                      std::string("tendency: ") +
                          namedOr(tendencyNames,
                                  std::size(tendencyNames), e.p.i[0],
                                  "?"),
                      intArgs("block_delta", e.p.i[1],
                              "target_blocks", e.p.i[2]));
            w.counter(pid, e.cycle, "target_blocks",
                      intArgs("blocks", e.p.i[2]));
            break;
          case TraceEventKind::BlockTarget:
            w.counter(pid, e.cycle, "target_blocks",
                      intArgs("blocks", e.p.i[0]));
            break;
          case TraceEventKind::CtaPause:
            w.instant(pid, e.cycle, "cta_pause",
                      intArgs("slot", e.p.i[0], "block", e.p.i[1]));
            break;
          case TraceEventKind::CtaResume:
            w.instant(pid, e.cycle, "cta_resume",
                      intArgs("slot", e.p.i[0], "block", e.p.i[1]));
            break;
          case TraceEventKind::BlockComplete:
            w.counter(pid, e.cycle, "blocks_done",
                      intArgs("blocks", e.p.i[1]));
            break;
          case TraceEventKind::VfVote:
            w.counter(pid, e.cycle, "vf_vote",
                      intArgs("sm", e.p.i[0], "mem", e.p.i[1]));
            break;
          case TraceEventKind::VfStep: {
            const char *dom =
                namedOr(clockDomainNames, std::size(clockDomainNames),
                        e.p.i[0], "clock");
            w.counter(clocksPid, e.cycle, dom,
                      intArgs("level", e.p.i[2]));
            w.instant(clocksPid, e.cycle,
                      std::string(dom) + ": " +
                          namedOr(vfStateNames, std::size(vfStateNames),
                                  e.p.i[1], "?") +
                          " -> " +
                          namedOr(vfStateNames, std::size(vfStateNames),
                                  e.p.i[2], "?"));
            break;
          }
          case TraceEventKind::HighWater:
            w.counter(pid, e.cycle, "queues",
                      intArgs("lsu", e.p.i[0], "inject", e.p.i[1],
                              "mshr", e.p.i[2]));
            break;
          case TraceEventKind::GaugeDef:
            break; // consumed via gaugeNames()
          case TraceEventKind::Gauge: {
            const auto id = static_cast<std::size_t>(e.sm);
            const std::string name =
                id < gauges.size() && !gauges[id].empty()
                    ? gauges[id]
                    : "gauge_" + std::to_string(e.sm);
            std::ostringstream ss;
            ss.precision(9);
            ss << "\"value\":" << e.p.d[0];
            w.counter(gaugesPid, e.cycle, name, ss.str());
            break;
          }
          case TraceEventKind::Checkpoint:
            w.instant(devicePid, e.cycle, "checkpoint");
            break;
          case TraceEventKind::Restore:
            w.instant(devicePid, e.cycle, "restore");
            break;
          case TraceEventKind::Fork:
            w.instant(devicePid, e.cycle, "fork");
            break;
          case TraceEventKind::Drops:
            w.instant(pid, e.cycle, "trace_drops",
                      intArgs("dropped", e.p.i[0]));
            break;
        }
    }
    w.close();
}

void
writeChromeTraceFile(const TraceReader &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeChromeTrace(trace, os);
    os.flush();
    if (!os)
        fatal("I/O error writing Chrome trace '", path, "'");
}

bool
chromeTracePath(const std::string &path)
{
    const std::string suffix = ".json";
    return path.size() > suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace equalizer
