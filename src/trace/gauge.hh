/**
 * @file
 * The tracer's gauge registry: named live metrics sampled once per
 * tracer epoch into the event stream.
 *
 * The stream is self-describing: the first sample after a gauge is
 * defined emits a GaugeDef event carrying the name, and every sample
 * emits one Gauge event per registered gauge (a fixed count per epoch,
 * keeping traces byte-identical across thread counts). The `sm` field
 * of both kinds carries the gauge id.
 */

#ifndef EQ_TRACE_GAUGE_HH
#define EQ_TRACE_GAUGE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "trace/trace_event.hh"

namespace equalizer
{

/** Registry of named gauges for one Tracer. */
class GaugeRegistry
{
  public:
    /**
     * Get-or-create the gauge called @p name and return its id.
     * Ids are dense and assigned in definition order.
     */
    int define(const std::string &name);

    /** The gauge behind an id (define() first). */
    Gauge &at(int id);
    const Gauge &at(int id) const;

    /** Shorthand: define-or-find by name and set the value. */
    void set(const std::string &name, double v);

    const std::string &name(int id) const;
    int size() const { return static_cast<int>(gauges_.size()); }

    /**
     * Emit GaugeDef events for gauges defined since the last call,
     * then one Gauge event per registered gauge, into @p out.
     */
    void sampleInto(std::vector<TraceEvent> &out, Cycle cycle);

  private:
    struct Entry
    {
        std::string name;
        Gauge gauge;
        bool announced = false;
    };

    std::vector<Entry> gauges_;
};

} // namespace equalizer

#endif // EQ_TRACE_GAUGE_HH
