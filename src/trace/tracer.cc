#include "tracer.hh"

#include <algorithm>

#include "common/log.hh"

namespace equalizer
{

namespace
{

bool
isPowerOfTwo(Cycle v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Tracer::Tracer(TraceConfig cfg, TraceSink &sink)
    : cfg_(cfg), sink_(sink), epochMask_(cfg.epochCycles - 1)
{
    if (!isPowerOfTwo(cfg.epochCycles))
        fatal("trace epoch must be a power of two, got ",
              cfg.epochCycles);
    if (cfg.bufKb == 0)
        fatal("trace_buf_kb must be positive");
}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::attach(int num_sms)
{
    if (attached()) {
        if (num_sms != numSms())
            fatal("tracer already attached to ", numSms(),
                  " SMs; cannot re-attach to ", num_sms);
        return;
    }
    const std::size_t cap =
        std::max<std::size_t>(1, cfg_.bufKb * 1024 / sizeof(TraceEvent));
    for (int i = 0; i < num_sms; ++i)
        rings_.push_back(std::make_unique<TraceRing>(cap));

    TraceHeader h;
    h.numSms = static_cast<std::uint32_t>(num_sms);
    sink_.begin(h);
    headerWritten_ = true;
}

void
Tracer::drainRings(Cycle cycle)
{
    if constexpr (!traceCompiledIn)
        return;
    lastCycle_ = cycle;
    for (std::size_t s = 0; s < rings_.size(); ++s) {
        TraceRing &ring = *rings_[s];
        ring.drainInto(pending_);
        const std::uint64_t drops = ring.takeDrops();
        if (drops > 0) {
            dropped_ += drops;
            pending_.push_back(makeSmEvent(
                TraceEventKind::Drops, cycle, static_cast<int>(s),
                static_cast<std::int64_t>(drops)));
        }
    }
    flushPending();
}

void
Tracer::drainEpoch(Cycle cycle)
{
    if constexpr (!traceCompiledIn)
        return;
    gauges_.sampleInto(pending_, cycle);
    drainRings(cycle);
}

void
Tracer::flushPending()
{
    if (pending_.empty())
        return;
    recorded_ += pending_.size();
    sink_.events(pending_.data(), pending_.size());
    pending_.clear();
}

void
Tracer::finish()
{
    if (finished_)
        return;
    if (attached())
        drainRings(lastCycle_);
    else
        flushPending();
    sink_.finish();
    finished_ = true;
}

} // namespace equalizer
