/**
 * @file
 * Trace output sinks: where drained events go.
 *
 * The binary trace format is a 24-byte header followed by a flat run of
 * fixed-size TraceEvent records:
 *
 *   u32 magic 'EQTR' | u32 format version | u32 num SMs |
 *   u32 record size  | u64 reserved       | records...
 *
 * A file may contain several header+records segments (a resumed run
 * appended after its prefix, or plain `cat prefix suffix`); TraceReader
 * accepts the concatenation.
 */

#ifndef EQ_TRACE_SINK_HH
#define EQ_TRACE_SINK_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_event.hh"

namespace equalizer
{

/** Fixed header opening every binary trace segment. */
struct TraceHeader
{
    std::uint32_t magic = traceMagic;
    std::uint32_t version = traceFormatVersion;
    std::uint32_t numSms = 0;
    std::uint32_t recordSize = sizeof(TraceEvent);

    /**
     * Records in this segment. FileTraceSink back-patches it in
     * finish(); 0 means "unterminated segment, records run to the next
     * header or EOF" (a run that crashed before finishing).
     */
    std::uint64_t eventCount = 0;

    static constexpr std::uint32_t traceMagic = 0x52545145; // "EQTR"
    static constexpr std::uint32_t traceFormatVersion = 1;
};

static_assert(sizeof(TraceHeader) == 24, "header is part of the format");

/** Consumer of drained trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per attached tracer, before any events. */
    virtual void begin(const TraceHeader &header) = 0;

    /** A batch of drained events, already in canonical order. */
    virtual void events(const TraceEvent *e, std::size_t n) = 0;

    /** Final drain happened; flush downstream buffers. */
    virtual void finish() = 0;
};

/** Swallows everything (overhead measurements, disabled tracing). */
class NullTraceSink : public TraceSink
{
  public:
    void begin(const TraceHeader &) override {}
    void events(const TraceEvent *, std::size_t) override {}
    void finish() override {}
};

/** Accumulates events in memory (tests, post-run conversion). */
class MemoryTraceSink : public TraceSink
{
  public:
    void begin(const TraceHeader &header) override { header_ = header; }

    void
    events(const TraceEvent *e, std::size_t n) override
    {
        events_.insert(events_.end(), e, e + n);
    }

    void finish() override {}

    const TraceHeader &header() const { return header_; }
    const std::vector<TraceEvent> &events() const { return events_; }

    /** The exact bytes a FileTraceSink would have written. */
    std::vector<std::uint8_t> serialize() const;

  private:
    TraceHeader header_;
    std::vector<TraceEvent> events_;
};

/** Streams the binary format to a file as drains happen. */
class FileTraceSink : public TraceSink
{
  public:
    /** fatal() when @p path cannot be opened. */
    explicit FileTraceSink(const std::string &path);

    void begin(const TraceHeader &header) override;
    void events(const TraceEvent *e, std::size_t n) override;
    void finish() override;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream os_;
    std::streampos headerPos_{-1};
    std::uint64_t count_ = 0;
};

} // namespace equalizer

#endif // EQ_TRACE_SINK_HH
