#include "gauge.hh"

#include "common/log.hh"

namespace equalizer
{

int
GaugeRegistry::define(const std::string &name)
{
    for (std::size_t i = 0; i < gauges_.size(); ++i)
        if (gauges_[i].name == name)
            return static_cast<int>(i);
    gauges_.push_back(Entry{name, Gauge{}, false});
    return static_cast<int>(gauges_.size() - 1);
}

Gauge &
GaugeRegistry::at(int id)
{
    EQ_ASSERT(id >= 0 && id < size(), "unknown gauge id ", id);
    return gauges_[static_cast<std::size_t>(id)].gauge;
}

const Gauge &
GaugeRegistry::at(int id) const
{
    EQ_ASSERT(id >= 0 && id < size(), "unknown gauge id ", id);
    return gauges_[static_cast<std::size_t>(id)].gauge;
}

void
GaugeRegistry::set(const std::string &name, double v)
{
    at(define(name)).set(v);
}

const std::string &
GaugeRegistry::name(int id) const
{
    EQ_ASSERT(id >= 0 && id < size(), "unknown gauge id ", id);
    return gauges_[static_cast<std::size_t>(id)].name;
}

void
GaugeRegistry::sampleInto(std::vector<TraceEvent> &out, Cycle cycle)
{
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        auto &e = gauges_[i];
        if (!e.announced) {
            out.push_back(makeStringEvent(TraceEventKind::GaugeDef,
                                          cycle, e.name.c_str(),
                                          static_cast<int>(i)));
            e.announced = true;
        }
        TraceEvent ev;
        ev.cycle = cycle;
        ev.kind = TraceEventKind::Gauge;
        ev.sm = static_cast<int>(i);
        ev.p.d[0] = e.gauge.value();
        out.push_back(ev);
    }
}

} // namespace equalizer
