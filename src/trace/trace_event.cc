#include "trace_event.hh"

#include <algorithm>

namespace equalizer
{

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::KernelBegin:
        return "kernel_begin";
      case TraceEventKind::KernelEnd:
        return "kernel_end";
      case TraceEventKind::EpochSample:
        return "epoch_sample";
      case TraceEventKind::Tendency:
        return "tendency";
      case TraceEventKind::BlockTarget:
        return "block_target";
      case TraceEventKind::CtaPause:
        return "cta_pause";
      case TraceEventKind::CtaResume:
        return "cta_resume";
      case TraceEventKind::BlockComplete:
        return "block_complete";
      case TraceEventKind::VfVote:
        return "vf_vote";
      case TraceEventKind::VfStep:
        return "vf_step";
      case TraceEventKind::HighWater:
        return "high_water";
      case TraceEventKind::GaugeDef:
        return "gauge_def";
      case TraceEventKind::Gauge:
        return "gauge";
      case TraceEventKind::Checkpoint:
        return "checkpoint";
      case TraceEventKind::Restore:
        return "restore";
      case TraceEventKind::Fork:
        return "fork";
      case TraceEventKind::Drops:
        return "drops";
    }
    return "unknown";
}

TraceEvent
makeDeviceEvent(TraceEventKind kind, Cycle cycle)
{
    TraceEvent e;
    e.cycle = cycle;
    e.kind = kind;
    e.sm = -1;
    return e;
}

TraceEvent
makeSmEvent(TraceEventKind kind, Cycle cycle, int sm, std::int64_t i0,
            std::int64_t i1, std::int64_t i2, std::int64_t i3)
{
    TraceEvent e;
    e.cycle = cycle;
    e.kind = kind;
    e.sm = sm;
    e.p.i[0] = i0;
    e.p.i[1] = i1;
    e.p.i[2] = i2;
    e.p.i[3] = i3;
    return e;
}

TraceEvent
makeSampleEvent(TraceEventKind kind, Cycle cycle, int sm, double d0,
                double d1, double d2, double d3)
{
    TraceEvent e;
    e.cycle = cycle;
    e.kind = kind;
    e.sm = sm;
    e.p.d[0] = d0;
    e.p.d[1] = d1;
    e.p.d[2] = d2;
    e.p.d[3] = d3;
    return e;
}

TraceEvent
makeStringEvent(TraceEventKind kind, Cycle cycle, const char *s, int sm)
{
    TraceEvent e;
    e.cycle = cycle;
    e.kind = kind;
    e.sm = sm;
    // The payload was zeroed by the constructor; copy at most 31 chars
    // so the last byte stays NUL (and trailing bytes stay deterministic
    // for byte-identical trace comparisons).
    const std::size_t n =
        std::min<std::size_t>(std::strlen(s), sizeof(e.p.str) - 1);
    std::memcpy(e.p.str, s, n);
    return e;
}

std::string
traceEventString(const TraceEvent &e)
{
    const std::size_t n = sizeof(e.p.str);
    std::size_t len = 0;
    while (len < n && e.p.str[len] != '\0')
        ++len;
    return std::string(e.p.str, len);
}

} // namespace equalizer
