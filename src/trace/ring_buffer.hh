/**
 * @file
 * The per-SM trace ring: a fixed-capacity FIFO of TraceEvents with
 * counted-drop overflow semantics.
 *
 * Concurrency contract: during the parallel SM phase each ring is
 * written only by the one worker thread ticking its SM; the serial
 * drain runs in the epoch barrier after the executor has joined all
 * workers, so writer and drainer are ordered by the barrier and no
 * atomics are needed — the ring is lock-free by construction, the same
 * partitioning argument as the per-SM energy shards
 * (docs/PARALLELISM.md).
 */

#ifndef EQ_TRACE_RING_BUFFER_HH
#define EQ_TRACE_RING_BUFFER_HH

#include <cstdint>
#include <vector>

#include "trace/trace_event.hh"

namespace equalizer
{

/** Fixed-capacity event FIFO; overflow drops the newest event. */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity)
        : buf_(capacity ? capacity : 1)
    {
    }

    /**
     * Append one event. When the ring is full the event is dropped and
     * counted — tracing must never block or slow the simulation, and a
     * deterministic drop count keeps threads=N traces byte-identical.
     */
    void
    push(const TraceEvent &e)
    {
        if (size_ == buf_.size()) {
            ++drops_;
            return;
        }
        buf_[(head_ + size_) % buf_.size()] = e;
        ++size_;
    }

    /** Move every buffered event, FIFO order, into @p out. */
    void
    drainInto(std::vector<TraceEvent> &out)
    {
        while (size_ > 0) {
            out.push_back(buf_[head_]);
            head_ = (head_ + 1) % buf_.size();
            --size_;
        }
        head_ = 0;
    }

    /** Events dropped since the last takeDrops(). */
    std::uint64_t drops() const { return drops_; }

    /** Read and reset the drop count (per drain window). */
    std::uint64_t
    takeDrops()
    {
        const std::uint64_t d = drops_;
        drops_ = 0;
        return d;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

  private:
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t drops_ = 0;
};

/**
 * Emit helper used at instrumentation sites: compiles away entirely
 * when the tracing subsystem is disabled (-DEQ_TRACE=OFF), and costs
 * one pointer test when no ring is attached. @p make is only invoked
 * when the event will actually be recorded.
 */
template <typename F>
inline void
traceEmit(TraceRing *ring, F &&make)
{
    if constexpr (traceCompiledIn) {
        if (ring)
            ring->push(make());
    } else {
        (void)ring;
        (void)make;
    }
}

} // namespace equalizer

#endif // EQ_TRACE_RING_BUFFER_HH
