/**
 * @file
 * Chrome trace_event JSON exporter: renders a loaded trace as a JSON
 * object Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
 *
 * Track layout: one process per SM (warp-state counters, target-block
 * counter, tendency/pause instants), one "device" process (kernel
 * begin/end spans, VF steps, checkpoint markers) and one "clocks"
 * process with a counter track per clock domain. Timestamps are SM
 * cycles, exported through the `ts` microsecond field (1 us == 1
 * cycle).
 */

#ifndef EQ_TRACE_CHROME_TRACE_HH
#define EQ_TRACE_CHROME_TRACE_HH

#include <iostream>
#include <string>
#include <vector>

#include "trace/trace_reader.hh"

namespace equalizer
{

/** Render @p trace as Chrome trace_event JSON onto @p os. */
void writeChromeTrace(const TraceReader &trace, std::ostream &os);

/** writeChromeTrace() to a file; fatal() on I/O failure. */
void writeChromeTraceFile(const TraceReader &trace,
                          const std::string &path);

/** True when @p path names a Chrome JSON trace (".json" suffix). */
bool chromeTracePath(const std::string &path);

} // namespace equalizer

#endif // EQ_TRACE_CHROME_TRACE_HH
