/**
 * @file
 * The typed binary trace event — the unit of the epoch-level tracing
 * subsystem (docs/TRACING.md).
 *
 * Events are fixed-size, trivially copyable records so a ring buffer is
 * an array, a trace file is a header plus a flat run of records, and a
 * threads=N run serializes bit-identically to threads=1 (the drain
 * order is simulated-time order, never thread order).
 */

#ifndef EQ_TRACE_TRACE_EVENT_HH
#define EQ_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "common/types.hh"

#ifndef EQ_TRACE_ENABLED
#define EQ_TRACE_ENABLED 1
#endif

namespace equalizer
{

/** True when the tracing emit paths are compiled in (-DEQ_TRACE=OFF
 *  turns every emit helper into a no-op; the API stays compilable). */
inline constexpr bool traceCompiledIn = EQ_TRACE_ENABLED != 0;

/** What one trace record describes. */
enum class TraceEventKind : std::uint32_t
{
    KernelBegin,  ///< str = kernel name
    KernelEnd,    ///< str = kernel name
    EpochSample,  ///< per SM: d = {nActive, nWaiting, nAlu, nMem}
    Tendency,     ///< per SM: i = {tendency, blockDelta, targetBlocks}
    BlockTarget,  ///< per SM: i = {new target, old target}
    CtaPause,     ///< per SM: i = {block slot, block id}
    CtaResume,    ///< per SM: i = {block slot, block id}
    BlockComplete,///< per SM: i = {block id, blocks completed so far}
    VfVote,       ///< per SM: i = {sm vote, mem vote} (VfState values)
    VfStep,       ///< device: i = {domain, from, to} (requested step)
    HighWater,    ///< per SM: i = {lsu queue, inject queue, mshr}
    GaugeDef,     ///< device: str = gauge name; sm field = gauge id
    Gauge,        ///< device: d[0] = value; sm field = gauge id
    Checkpoint,   ///< device: state was saved at this cycle
    Restore,      ///< device: state was restored at this cycle
    Fork,         ///< device: this instance was forked from a parent
    Drops,        ///< per SM: i[0] = events dropped since last drain
};

/** Human-readable kind name (decision logs, debugging). */
const char *traceEventKindName(TraceEventKind k);

/**
 * One fixed-size trace record.
 *
 * The payload union carries either numbers or a short string depending
 * on the kind (see TraceEventKind). For Gauge/GaugeDef events the `sm`
 * field carries the gauge id instead of an SM index; device-level
 * events use sm = -1.
 */
struct TraceEvent
{
    Cycle cycle = 0;        ///< SM-domain cycle of the event
    TraceEventKind kind = TraceEventKind::KernelBegin;
    std::int32_t sm = -1;   ///< SM index, gauge id, or -1 (device)

    union Payload
    {
        double d[4];
        std::int64_t i[4];
        char str[32];
    } p;

    TraceEvent() { std::memset(&p, 0, sizeof(p)); }
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "trace events are serialized as raw bytes");
static_assert(sizeof(TraceEvent) == 48,
              "record size is part of the trace file format");

/** A device-level event (sm = -1) at @p cycle. */
TraceEvent makeDeviceEvent(TraceEventKind kind, Cycle cycle);

/** A per-SM event with up to four integer payload values. */
TraceEvent makeSmEvent(TraceEventKind kind, Cycle cycle, int sm,
                       std::int64_t i0 = 0, std::int64_t i1 = 0,
                       std::int64_t i2 = 0, std::int64_t i3 = 0);

/** A per-SM event with four double payload values. */
TraceEvent makeSampleEvent(TraceEventKind kind, Cycle cycle, int sm,
                           double d0, double d1, double d2, double d3);

/** An event whose payload is a (truncated) string, e.g. KernelBegin. */
TraceEvent makeStringEvent(TraceEventKind kind, Cycle cycle,
                           const char *s, int sm = -1);

/** The string payload, guaranteed NUL-terminated. */
std::string traceEventString(const TraceEvent &e);

} // namespace equalizer

#endif // EQ_TRACE_TRACE_EVENT_HH
