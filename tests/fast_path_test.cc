/**
 * @file
 * Tests for the cycle-skipping fast path (docs/FAST_PATH.md): bit
 * identity of metrics, energy and traces against the slow path at any
 * thread count, engagement of the whole-device fast-forward on a fully
 * stalled machine, checkpointing out of a skip-heavy run, replication
 * of time-averaged memory gauges, and the wakeup-sanity fatal.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/controller.hh"
#include "gpu/gpu_top.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "sim/parallel_executor.hh"
#include "test_streams.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name = "fp")
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

GpuConfig
smallGpu(int sms = 4, bool fast_path = true)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    cfg.fastPath = fast_path;
    return cfg;
}

/**
 * A kernel whose warps spend nearly all their time stalled on SFU
 * result latency with zero memory traffic: long spans where every SM
 * is stalled with a known wakeup and the memory system is quiescent —
 * exactly the regime the whole-device fast-forward targets.
 */
ScriptedKernel
sfuChainKernel(int blocks, int insts = 200)
{
    WarpInstruction sfu;
    sfu.op = OpClass::Sfu;
    sfu.dependsOnPrev = true;
    std::vector<WarpInstruction> script(
        static_cast<std::size_t>(insts), sfu);
    return ScriptedKernel(info(blocks, /*wcta=*/1, /*max_blocks=*/1),
                          std::move(script));
}

/** Exported-JSON form of one run (every figure-visible field). */
std::string
jsonOf(const std::string &kernel, const AppRunResult &r)
{
    MetricsExporter e;
    e.addResult(kernel, r.policy, r.total, r.invocations);
    std::ostringstream os;
    e.writeJson(os);
    return os.str();
}

/** Equalizer tuned so sampling and epochs churn within short runs. */
PolicySpec
churnyEqualizer()
{
    EqualizerConfig ecfg;
    ecfg.epochCycles = 512;
    ecfg.sampleInterval = 64;
    return policies::equalizer(EqualizerMode::Performance, ecfg);
}

/** Run a zoo application with the fast path on or off. */
AppRunResult
runApp(const std::string &kernel, int threads, bool fast_path,
       const PolicySpec &policy)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.fastPath = fast_path;
    ExperimentRunner runner(cfg, PowerConfig::gtx480(), threads);
    return runner.runByName(kernel, policy);
}

/** Same, recording the run into a trace; returns the serialized bytes. */
std::vector<std::uint8_t>
tracedRunBytes(const std::string &kernel, int threads, bool fast_path)
{
    TraceConfig tcfg;
    tcfg.epochCycles = 512;
    MemoryTraceSink sink;
    Tracer tracer(tcfg, sink);
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.fastPath = fast_path;
    ExperimentRunner runner(cfg, PowerConfig::gtx480(), threads);
    runner.setTracer(&tracer);
    runner.runByName(kernel, churnyEqualizer());
    tracer.finish();
    return sink.serialize();
}

// --- Bit identity against the slow path --------------------------------

struct IdentityCase
{
    const char *kernel;
    int threads;
};

class FastPathIdentity : public ::testing::TestWithParam<IdentityCase>
{
};

/**
 * The core guarantee: with the fast path enabled, every exported metric
 * of a full application run — cycles, instructions, energy joules,
 * cache/DRAM counters, warp-outcome totals, VF residencies — is byte
 * identical to the slow path's, per invocation and in aggregate, at
 * any thread count.
 */
TEST_P(FastPathIdentity, MetricsMatchSlowPath)
{
    const auto [kernel, threads] = GetParam();
    const AppRunResult fast =
        runApp(kernel, threads, true, policies::baseline());
    const AppRunResult slow =
        runApp(kernel, threads, false, policies::baseline());

    EXPECT_EQ(jsonOf(kernel, fast), jsonOf(kernel, slow));

    // Spot-check the raw fields behind the JSON, including exact double
    // equality on the energy totals (the fast path replays the same
    // per-event deposits, not an analytic approximation).
    EXPECT_EQ(fast.total.smCycles, slow.total.smCycles);
    EXPECT_EQ(fast.total.memCycles, slow.total.memCycles);
    EXPECT_EQ(fast.total.instructions, slow.total.instructions);
    EXPECT_EQ(fast.total.dynamicJoules, slow.total.dynamicJoules);
    EXPECT_EQ(fast.total.staticJoules, slow.total.staticJoules);
    EXPECT_EQ(fast.total.l1Misses, slow.total.l1Misses);
    EXPECT_EQ(fast.total.dramAccesses, slow.total.dramAccesses);
    EXPECT_EQ(fast.total.dramPowerDownFraction,
              slow.total.dramPowerDownFraction);
    EXPECT_EQ(fast.total.outcomeTotals.waiting,
              slow.total.outcomeTotals.waiting);
    EXPECT_EQ(fast.total.outcomeTotals.issued,
              slow.total.outcomeTotals.issued);

    // The diagnostic skip counter is the one permitted difference.
    EXPECT_EQ(slow.total.fastForwardedCycles, 0u);
}

/** Same guarantee under a live Equalizer controller. */
TEST_P(FastPathIdentity, MetricsMatchSlowPathUnderEqualizer)
{
    const auto [kernel, threads] = GetParam();
    const AppRunResult fast =
        runApp(kernel, threads, true, churnyEqualizer());
    const AppRunResult slow =
        runApp(kernel, threads, false, churnyEqualizer());
    EXPECT_EQ(jsonOf(kernel, fast), jsonOf(kernel, slow));
}

INSTANTIATE_TEST_SUITE_P(
    KernelZoo, FastPathIdentity,
    ::testing::Values(IdentityCase{"sgemm", 1}, IdentityCase{"sgemm", 4},
                      IdentityCase{"lbm", 1}, IdentityCase{"lbm", 4},
                      IdentityCase{"kmn", 1}, IdentityCase{"kmn", 4}),
    [](const ::testing::TestParamInfo<IdentityCase> &i) {
        return std::string(i.param.kernel) + "_t" +
               std::to_string(i.param.threads);
    });

/**
 * Epoch traces are part of the identity contract too: a traced run
 * (which clamps whole-device skips to epoch boundaries) must serialize
 * to the same bytes with the fast path on and off.
 */
TEST(FastPathTrace, TraceBytesMatchSlowPath)
{
    EXPECT_EQ(tracedRunBytes("lbm", 1, true),
              tracedRunBytes("lbm", 1, false));
    EXPECT_EQ(tracedRunBytes("kmn", 4, true),
              tracedRunBytes("kmn", 4, false));
}

// --- Engagement --------------------------------------------------------

/**
 * On a machine where every warp is stalled on a known-latency result
 * and the memory system is idle, the whole-device fast-forward must
 * actually engage (FastForwardedCycles > 0) — and still reproduce the
 * slow path's metrics exactly, including the time-averaged DRAM queue
 * gauge that skipCycles() replicates analytically.
 */
TEST(FastPathEngagement, FastForwardsAllStalledMachine)
{
    auto run_once = [](bool fast_path) {
        GpuTop gpu(smallGpu(4, fast_path));
        ScriptedKernel k = sfuChainKernel(4);
        const RunMetrics m = gpu.runKernel(k);
        return std::make_pair(m, gpu.memorySystem().meanDramQueueDepth());
    };
    const auto [fast, fast_depth] = run_once(true);
    const auto [slow, slow_depth] = run_once(false);

    EXPECT_GT(fast.fastForwardedCycles, 0u);
    EXPECT_EQ(slow.fastForwardedCycles, 0u);
    EXPECT_EQ(fast.smCycles, slow.smCycles);
    EXPECT_EQ(fast.memCycles, slow.memCycles);
    EXPECT_EQ(fast.instructions, slow.instructions);
    EXPECT_EQ(fast.dynamicJoules, slow.dynamicJoules);
    EXPECT_EQ(fast.staticJoules, slow.staticJoules);
    EXPECT_EQ(fast_depth, slow_depth);
}

/** fast_path=0 must fully disable both tiers. */
TEST(FastPathEngagement, KnobDisablesSkipping)
{
    GpuTop gpu(smallGpu(4, /*fast_path=*/false));
    ScriptedKernel k = sfuChainKernel(4);
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_EQ(m.fastForwardedCycles, 0u);
}

// --- Checkpointing out of a skip-heavy run -----------------------------

/**
 * Saves a whole-GPU checkpoint from onSmCycle at a target cycle, and
 * bounds fast-forward spans via nextActionCycle so the save cycle is
 * ticked rather than jumped over. Construct disarmed for runs that
 * should never save (and never veto a skip).
 */
class SaveAtController : public GpuController
{
  public:
    SaveAtController(Cycle save_cycle, std::vector<std::uint8_t> *out)
        : saveCycle_(save_cycle), out_(out)
    {
    }

    std::string name() const override { return "save-at"; }

    void
    onSmCycle(GpuTop &g) override
    {
        if (out_ && out_->empty() &&
            g.smDomain().cycle() >= saveCycle_)
            *out_ = g.saveStateBuffer();
    }

    Cycle
    nextActionCycle(const GpuTop &, Cycle /*now*/) const override
    {
        return (out_ && out_->empty()) ? saveCycle_ : noWakeup;
    }

  private:
    Cycle saveCycle_;
    std::vector<std::uint8_t> *out_;
};

/**
 * Checkpointing in the middle of a skip-heavy run — with fast-forward
 * spans active before and after the save cycle — must restore into a
 * run whose final metrics match both the uninterrupted fast run and
 * the slow path.
 */
TEST(FastPathCheckpoint, MidSkipSaveRestoresIdentically)
{
    const Cycle save_cycle = 1000;

    auto make_kernel = [] { return sfuChainKernel(4); };

    // Uninterrupted runs, fast and slow, for the reference metrics.
    RunMetrics slow_ref;
    {
        GpuTop gpu(smallGpu(4, /*fast_path=*/false));
        ScriptedKernel k = make_kernel();
        slow_ref = gpu.runKernel(k);
    }

    // Donor: fast path on, saves mid-run, keeps going.
    std::vector<std::uint8_t> saved;
    RunMetrics donor_m;
    {
        GpuTop gpu(smallGpu(4, /*fast_path=*/true));
        SaveAtController ctrl(save_cycle, &saved);
        gpu.setController(&ctrl);
        ScriptedKernel k = make_kernel();
        donor_m = gpu.runKernel(k);
        ASSERT_FALSE(saved.empty()) << "kernel shorter than save cycle";
        EXPECT_GT(donor_m.fastForwardedCycles, 0u);
    }

    // Restored: fresh GPU, disarmed controller (skips stay enabled).
    RunMetrics restored_m;
    {
        GpuTop gpu(smallGpu(4, /*fast_path=*/true));
        SaveAtController ctrl(save_cycle, nullptr);
        gpu.setController(&ctrl);
        gpu.loadStateBuffer(saved);
        ASSERT_TRUE(gpu.midKernel());
        EXPECT_EQ(gpu.smDomain().cycle(), save_cycle);
        ScriptedKernel k = make_kernel();
        restored_m = gpu.resumeKernel(k);
    }

    EXPECT_EQ(donor_m.smCycles, slow_ref.smCycles);
    EXPECT_EQ(restored_m.smCycles, slow_ref.smCycles);
    EXPECT_EQ(restored_m.instructions, slow_ref.instructions);
    EXPECT_EQ(restored_m.dynamicJoules, slow_ref.dynamicJoules);
    EXPECT_EQ(restored_m.staticJoules, slow_ref.staticJoules);
    EXPECT_EQ(restored_m.memCycles, slow_ref.memCycles);
}

// --- Wakeup sanity -----------------------------------------------------

/** Plants a stale debug stall verdict once the kernel is bound. */
class StaleWakeupController : public GpuController
{
  public:
    std::string name() const override { return "stale-wakeup"; }

    void
    onKernelLaunch(GpuTop &g) override
    {
        // setKernel() clears the seam, so plant it afterwards: SM 0 now
        // claims to be stalled until cycle 1 forever.
        g.sm(0).debugSetStallWakeup(1);
    }

    Cycle
    nextActionCycle(const GpuTop &, Cycle /*now*/) const override
    {
        return noWakeup;
    }
};

/**
 * A stall verdict whose wakeup is not in the future is a corrupted
 * invariant; the fast-forward probe must die loudly rather than skip
 * (or spin) on it.
 */
TEST(FastPathDeath, PastWakeupIsFatal)
{
    EXPECT_EXIT(
        {
            GpuTop gpu(smallGpu(4, /*fast_path=*/true));
            StaleWakeupController ctrl;
            gpu.setController(&ctrl);
            std::vector<WarpInstruction> script(64, aluInst());
            ScriptedKernel k(info(4, 1, 1), std::move(script));
            gpu.runKernel(k);
        },
        ::testing::ExitedWithCode(1), "not in the future");
}

} // namespace
} // namespace equalizer
