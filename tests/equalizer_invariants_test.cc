/**
 * @file
 * Paper-level invariants of the Equalizer runtime, checked on live runs
 * of roster kernels:
 *  - the frequency ladder moves at most one step per epoch;
 *  - energy mode never boosts a domain; performance mode never
 *    throttles one;
 *  - running concurrency never exceeds the controller's target;
 *  - epoch cadence matches the configuration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{
namespace
{

KernelParams
mini(const std::string &name)
{
    KernelParams p = KernelZoo::byName(name).params;
    p.totalBlocks = std::max(15, p.totalBlocks / 2);
    p.instrsPerWarp = std::max(100, p.instrsPerWarp / 2);
    p.name = name + "-inv";
    return p;
}

std::vector<EqualizerEpochRecord>
traceRun(const std::string &kernel, EqualizerMode mode)
{
    std::vector<EqualizerEpochRecord> records;
    ExperimentRunner runner;
    runner.run(mini(kernel), policies::equalizer(mode),
               [&records](GpuTop &, GpuController *ctrl) {
                   auto *eq = dynamic_cast<EqualizerEngine *>(ctrl);
                   eq->setEpochTrace(
                       [&records](const EqualizerEpochRecord &r) {
                           records.push_back(r);
                       });
               });
    return records;
}

class EqualizerInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EqualizerInvariants, FrequencyMovesAtMostOneStepPerEpoch)
{
    for (auto mode :
         {EqualizerMode::Performance, EqualizerMode::Energy}) {
        const auto records = traceRun(GetParam(), mode);
        for (std::size_t i = 1; i < records.size(); ++i) {
            const int sm_delta =
                std::abs(static_cast<int>(records[i].smState) -
                         static_cast<int>(records[i - 1].smState));
            const int mem_delta =
                std::abs(static_cast<int>(records[i].memState) -
                         static_cast<int>(records[i - 1].memState));
            EXPECT_LE(sm_delta, 1) << GetParam() << " epoch " << i;
            EXPECT_LE(mem_delta, 1) << GetParam() << " epoch " << i;
        }
    }
}

TEST_P(EqualizerInvariants, EnergyModeNeverBoosts)
{
    for (const auto &r : traceRun(GetParam(), EqualizerMode::Energy)) {
        EXPECT_NE(r.smState, VfState::High) << GetParam();
        EXPECT_NE(r.memState, VfState::High) << GetParam();
    }
}

TEST_P(EqualizerInvariants, PerformanceModeNeverThrottles)
{
    for (const auto &r :
         traceRun(GetParam(), EqualizerMode::Performance)) {
        EXPECT_NE(r.smState, VfState::Low) << GetParam();
        EXPECT_NE(r.memState, VfState::Low) << GetParam();
    }
}

TEST_P(EqualizerInvariants, BlockTargetsStayWithinFeasibleRange)
{
    const auto &entry = KernelZoo::byName(GetParam());
    for (auto mode :
         {EqualizerMode::Performance, EqualizerMode::Energy}) {
        for (const auto &r : traceRun(GetParam(), mode)) {
            EXPECT_GE(r.meanTargetBlocks, 1.0) << GetParam();
            // Epsilon for the /numSms accumulation rounding.
            EXPECT_LE(r.meanTargetBlocks,
                      static_cast<double>(entry.params.maxBlocksPerSm) +
                          1e-6)
                << GetParam();
        }
    }
}

TEST_P(EqualizerInvariants, RunningConcurrencyNeverExceedsTarget)
{
    ExperimentRunner runner;
    bool violated = false;
    runner.run(
        mini(GetParam()),
        policies::equalizer(EqualizerMode::Performance),
        [&violated](GpuTop &gpu, GpuController *) {
            gpu.setCycleObserver([&violated](GpuTop &g) {
                if (g.smDomain().cycle() % 257 != 0)
                    return;
                for (int s = 0; s < g.numSms(); ++s)
                    if (g.sm(s).unpausedBlocks() > g.sm(s).targetBlocks())
                        violated = true;
            });
        });
    EXPECT_FALSE(violated);
}

// One representative per category keeps the suite quick.
INSTANTIATE_TEST_SUITE_P(Representatives, EqualizerInvariants,
                         ::testing::Values("mri-q", "cfd-2", "kmn",
                                           "sad-1"));

TEST(EqualizerCadence, EpochsMatchConfiguredWindow)
{
    std::vector<Cycle> epoch_cycles;
    ExperimentRunner runner;
    EqualizerConfig cfg;
    cfg.mode = EqualizerMode::Performance;
    cfg.epochCycles = 2048;
    runner.run(mini("sgemm"), policies::equalizer(cfg.mode, cfg),
               [&epoch_cycles](GpuTop &, GpuController *ctrl) {
                   auto *eq = dynamic_cast<EqualizerEngine *>(ctrl);
                   eq->setEpochTrace(
                       [&epoch_cycles](const EqualizerEpochRecord &r) {
                           epoch_cycles.push_back(r.cycle);
                       });
               });
    ASSERT_GE(epoch_cycles.size(), 2u);
    for (std::size_t i = 1; i < epoch_cycles.size(); ++i)
        EXPECT_EQ(epoch_cycles[i] - epoch_cycles[i - 1], 2048u);
}

} // namespace
} // namespace equalizer
