/**
 * @file
 * Unit tests for the common substrate: Config, Rng, StatRegistry, log.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace equalizer
{
namespace
{

// ---------------------------------------------------------------- Config

TEST(Config, ParsesKeyValuePairs)
{
    const Config cfg = Config::fromArgs({"alpha=1", "beta=two", "c=3.5"});
    EXPECT_EQ(cfg.getInt("alpha", 0), 1);
    EXPECT_EQ(cfg.getString("beta", ""), "two");
    EXPECT_DOUBLE_EQ(cfg.getDouble("c", 0.0), 3.5);
}

TEST(Config, ReturnsDefaultsForMissingKeys)
{
    const Config cfg;
    EXPECT_EQ(cfg.getInt("nope", 42), 42);
    EXPECT_EQ(cfg.getString("nope", "d"), "d");
    EXPECT_DOUBLE_EQ(cfg.getDouble("nope", 2.25), 2.25);
    EXPECT_TRUE(cfg.getBool("nope", true));
    EXPECT_FALSE(cfg.contains("nope"));
}

TEST(Config, BoolAcceptsCommonSpellings)
{
    Config cfg;
    cfg.set("a", "true");
    cfg.set("b", "0");
    cfg.set("c", "Yes");
    cfg.set("d", "off");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
    EXPECT_FALSE(cfg.getBool("d", true));
}

TEST(Config, OverwriteReplacesValue)
{
    Config cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
    EXPECT_EQ(cfg.entries().size(), 1u);
}

TEST(ConfigDeath, MalformedOptionIsFatal)
{
    EXPECT_EXIT(Config::fromArgs({"novalue"}), ::testing::ExitedWithCode(1),
                "malformed option");
}

// The documented knob registry: canonicalization, aliases, usage.

std::vector<Knob>
sampleKnobs()
{
    return {
        {"warm_start", "baseline warm-up invocations", {}},
        {"export", "write metrics", {"json"}},
        {"threads", "worker threads", {}},
    };
}

TEST(Knobs, CanonicalNamesParseSilently)
{
    const Config cfg = Config::fromArgs(
        {"warm_start=4", "export=out.json"}, sampleKnobs());
    EXPECT_EQ(cfg.getInt("warm_start", 0), 4);
    EXPECT_EQ(cfg.getString("export", ""), "out.json");
}

TEST(Knobs, HyphenSpellingCanonicalizesToUnderscore)
{
    const Config cfg =
        Config::fromArgs({"warm-start=2"}, sampleKnobs());
    EXPECT_EQ(cfg.getInt("warm_start", 0), 2);
    EXPECT_FALSE(cfg.contains("warm-start"));
}

TEST(Knobs, AliasStoresUnderCanonicalName)
{
    const Config cfg = Config::fromArgs({"json=m.json"}, sampleKnobs());
    EXPECT_EQ(cfg.getString("export", ""), "m.json");
    EXPECT_FALSE(cfg.contains("json"));
}

TEST(KnobsDeath, UnknownKnobSuggestsCanonicalNames)
{
    EXPECT_EXIT(Config::fromArgs({"thread=2"}, sampleKnobs()),
                ::testing::ExitedWithCode(1),
                "unknown option 'thread'.*did you mean 'threads'");
}

TEST(Knobs, UsageListsEveryKnobAndAliases)
{
    const std::string usage = Config::knobUsage(sampleKnobs());
    EXPECT_NE(usage.find("warm_start"), std::string::npos);
    EXPECT_NE(usage.find("worker threads"), std::string::npos);
    EXPECT_NE(usage.find("[aliases: json]"), std::string::npos);
}

TEST(ConfigDeath, NonIntegerValueIsFatal)
{
    Config cfg;
    cfg.set("k", "abc");
    EXPECT_EXIT(cfg.getInt("k", 0), ::testing::ExitedWithCode(1),
                "non-integer");
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng r(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u); // all values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// ----------------------------------------------------------------- Stats

TEST(Stats, CounterAccumulates)
{
    StatRegistry reg;
    reg.counter("a.b") += 5;
    ++reg.counter("a.b");
    EXPECT_EQ(reg.counterValue("a.b"), 6u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    StatRegistry reg;
    auto &d = reg.distribution("d");
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Stats, ResetAllZeroes)
{
    StatRegistry reg;
    reg.counter("x") += 3;
    reg.distribution("y").sample(4.0);
    reg.resetAll();
    EXPECT_EQ(reg.counterValue("x"), 0u);
    EXPECT_EQ(reg.distribution("y").count(), 0u);
}

TEST(Stats, DumpContainsNames)
{
    StatRegistry reg;
    reg.counter("alpha") += 1;
    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("alpha 1"), std::string::npos);
}

// ------------------------------------------------------------------- log

TEST(Log, VerboseToggle)
{
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "boom");
}

TEST(LogDeath, AssertMacroFires)
{
    EXPECT_DEATH(EQ_ASSERT(1 == 2, "math broke"), "math broke");
}

} // namespace
} // namespace equalizer
