/**
 * @file
 * Unit and property tests for the set-associative LRU tag array.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "mem/tag_array.hh"

namespace equalizer
{
namespace
{

constexpr Addr line = 128;

TEST(TagArray, MissThenHitAfterInsert)
{
    TagArray tags(4, 2);
    EXPECT_FALSE(tags.lookup(0));
    tags.insert(0);
    EXPECT_TRUE(tags.lookup(0));
}

TEST(TagArray, EvictsLruWithinSet)
{
    TagArray tags(4, 2);
    // Three lines mapping to set 0: line indices 0, 4, 8.
    tags.insert(0 * line);
    tags.insert(4 * line);
    tags.lookup(0 * line); // make line 0 MRU
    auto evicted = tags.insert(8 * line);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->lineAddr, 4 * line);
    EXPECT_TRUE(tags.probe(0 * line));
    EXPECT_FALSE(tags.probe(4 * line));
    EXPECT_TRUE(tags.probe(8 * line));
}

TEST(TagArray, InsertExistingTouchesInsteadOfEvicting)
{
    TagArray tags(4, 2);
    tags.insert(0);
    auto evicted = tags.insert(0);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(tags.validCount(), 1);
}

TEST(TagArray, ProbeDoesNotTouchLru)
{
    TagArray tags(4, 2);
    tags.insert(0 * line);
    tags.insert(4 * line);
    // Probe (unlike lookup) must not promote line 0.
    tags.probe(0 * line);
    auto evicted = tags.insert(8 * line);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->lineAddr, 0 * line);
}

TEST(TagArray, OwnerIsTrackedAndReportedOnEviction)
{
    TagArray tags(1, 1);
    tags.insert(0, /*owner=*/7);
    auto evicted = tags.insert(1 * line, /*owner=*/9);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->owner, 7);
}

TEST(TagArray, LookupUpdatesOwner)
{
    TagArray tags(1, 1);
    tags.insert(0, 1);
    tags.lookup(0, 2);
    auto evicted = tags.insert(1 * line, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->owner, 2);
}

TEST(TagArray, InvalidateRemovesLine)
{
    TagArray tags(4, 2);
    tags.insert(0);
    EXPECT_TRUE(tags.invalidate(0));
    EXPECT_FALSE(tags.probe(0));
    EXPECT_FALSE(tags.invalidate(0));
}

TEST(TagArray, InvalidateAllClearsEverything)
{
    TagArray tags(4, 2);
    for (int i = 0; i < 8; ++i)
        tags.insert(static_cast<Addr>(i) * line);
    EXPECT_GT(tags.validCount(), 0);
    tags.invalidateAll();
    EXPECT_EQ(tags.validCount(), 0);
}

TEST(TagArray, DistinctSetsDoNotInterfere)
{
    TagArray tags(4, 1);
    tags.insert(0 * line); // set 0
    tags.insert(1 * line); // set 1
    EXPECT_TRUE(tags.probe(0 * line));
    EXPECT_TRUE(tags.probe(1 * line));
}

TEST(TagArrayDeath, RejectsNonPowerOfTwoSets)
{
    EXPECT_DEATH(TagArray(3, 2), "power-of-two");
}

/**
 * Property test: the tag array must agree with a reference true-LRU
 * model across random access traces, for several geometries.
 */
struct Geometry
{
    int sets;
    int ways;
};

class TagArrayProperty : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(TagArrayProperty, MatchesReferenceLruModel)
{
    const auto [sets, ways] = GetParam();
    TagArray tags(sets, ways);

    // Reference model: per set, a list in LRU order (front = LRU).
    std::map<int, std::list<Addr>> ref;
    auto ref_set = [&](Addr a) {
        return static_cast<int>((a / line) % static_cast<Addr>(sets));
    };

    Rng rng(static_cast<std::uint64_t>(sets * 1000 + ways));
    for (int step = 0; step < 5000; ++step) {
        const Addr a = rng.below(static_cast<std::uint64_t>(sets) * ways * 3) *
                       line;
        auto &lru = ref[ref_set(a)];
        const auto it = std::find(lru.begin(), lru.end(), a);
        const bool ref_hit = it != lru.end();

        const bool hit = tags.lookup(a);
        ASSERT_EQ(hit, ref_hit) << "step " << step << " addr " << a;

        if (ref_hit) {
            lru.erase(it);
            lru.push_back(a);
        } else {
            tags.insert(a);
            if (static_cast<int>(lru.size()) >= ways)
                lru.pop_front();
            lru.push_back(a);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagArrayProperty,
    ::testing::Values(Geometry{1, 1}, Geometry{1, 4}, Geometry{4, 2},
                      Geometry{16, 4}, Geometry{64, 4}, Geometry{128, 8}));

} // namespace
} // namespace equalizer
