/**
 * @file
 * Unit tests for the DRAM partition and the L2 partition.
 */

#include <gtest/gtest.h>

#include "mem/l2_cache.hh"

namespace equalizer
{
namespace
{

MemAccess
makeLoad(Addr line_addr, SmId sm = 0, WarpId warp = 0)
{
    MemAccess a;
    a.lineAddr = line_addr;
    a.sm = sm;
    a.warp = warp;
    return a;
}

/** Address of the i-th line owned by partition 0 (lines stripe). */
Addr
partition0Line(const MemConfig &cfg, int i)
{
    return static_cast<Addr>(i) * static_cast<Addr>(cfg.numPartitions) *
           lineBytes;
}

// ------------------------------------------------------------------ DRAM

class DramTest : public ::testing::Test
{
  protected:
    DramTest() : energy(PowerConfig::gtx480()), dram(cfg, 0, energy) {}

    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    DramPartition dram;

    /** Tick until a completion pops or max cycles pass. */
    std::optional<MemAccess>
    runUntilComplete(Cycle &now, Cycle max = 1000)
    {
        for (Cycle i = 0; i < max; ++i) {
            if (auto done = dram.tick(now))
                return done;
            ++now;
        }
        return std::nullopt;
    }
};

TEST_F(DramTest, FirstAccessIsRowMiss)
{
    Cycle now = 0;
    dram.submit(makeLoad(partition0Line(cfg, 0)), now);
    auto done = runUntilComplete(now);
    ASSERT_TRUE(done.has_value());
    // A row miss occupies the partition for dramRowMissCycles.
    EXPECT_EQ(now, cfg.dramRowMissCycles);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(energy.eventCount(EnergyEvent::DramActivate), 1u);
}

TEST_F(DramTest, SameRowBackToBackIsRowHit)
{
    Cycle now = 0;
    dram.submit(makeLoad(partition0Line(cfg, 0)), now);
    dram.submit(makeLoad(partition0Line(cfg, 1)), now); // same row
    runUntilComplete(now);
    const Cycle first_done = now;
    runUntilComplete(now);
    EXPECT_EQ(now - first_done, cfg.dramRowHitCycles);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST_F(DramTest, FrFcfsPrefersRowHitOverOlder)
{
    Cycle now = 0;
    // Open row 0 by serving one access.
    dram.submit(makeLoad(partition0Line(cfg, 0)), now);
    runUntilComplete(now);
    ++now;

    // Queue: first an access to a *different* row, then one to the open
    // row. FR-FCFS should service the row hit first.
    const Addr other_row =
        partition0Line(cfg, cfg.linesPerRow * cfg.banksPerPartition);
    const Addr open_row = partition0Line(cfg, 1);
    dram.submit(makeLoad(other_row, 0, 10), now);
    dram.submit(makeLoad(open_row, 0, 20), now);
    auto first = runUntilComplete(now);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->warp, 20);
}

TEST_F(DramTest, QueueCapacityEnforced)
{
    for (std::size_t i = 0; i < cfg.dramQueueCap; ++i)
        EXPECT_TRUE(dram.submit(makeLoad(partition0Line(cfg, (int)i)), 0));
    EXPECT_TRUE(dram.full());
    EXPECT_FALSE(dram.submit(makeLoad(partition0Line(cfg, 99)), 0));
}

TEST_F(DramTest, AccessEnergyPerBurst)
{
    Cycle now = 0;
    dram.submit(makeLoad(partition0Line(cfg, 0)), now);
    dram.submit(makeLoad(partition0Line(cfg, 1)), now);
    runUntilComplete(now);
    runUntilComplete(now);
    EXPECT_EQ(energy.eventCount(EnergyEvent::DramAccess), 2u);
}

TEST_F(DramTest, BandwidthMatchesServiceInterval)
{
    // Saturate with same-row traffic; steady state is one access per
    // dramRowHitCycles.
    Cycle now = 0;
    int completed = 0;
    int submitted = 0;
    const Cycle horizon = 400;
    while (now < horizon) {
        while (!dram.full())
            dram.submit(makeLoad(partition0Line(cfg, submitted++ % 8)), now);
        if (dram.tick(now))
            ++completed;
        ++now;
    }
    const double per_access =
        static_cast<double>(horizon) / std::max(1, completed);
    EXPECT_NEAR(per_access, static_cast<double>(cfg.dramRowHitCycles), 0.5);
}

// -------------------------------------------------------------------- L2

class L2Test : public ::testing::Test
{
  protected:
    L2Test() : energy(PowerConfig::gtx480()), l2(cfg, 0, energy) {}

    /** Run cycles; collect any ready outputs. */
    std::vector<MemAccess>
    runCycles(Cycle count)
    {
        std::vector<MemAccess> out;
        for (Cycle i = 0; i < count; ++i) {
            l2.tick(now);
            while (auto r = l2.output().popReady(now))
                out.push_back(*r);
            ++now;
        }
        return out;
    }

    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    L2Partition l2;
    Cycle now = 0;
};

TEST_F(L2Test, MissGoesToDramAndReturns)
{
    l2.input().push(makeLoad(partition0Line(cfg, 0), 3, 7), now);
    const auto out = runCycles(200);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sm, 3);
    EXPECT_EQ(out[0].warp, 7);
    EXPECT_EQ(l2.misses(), 1u);
}

TEST_F(L2Test, SecondAccessHits)
{
    const Addr a = partition0Line(cfg, 0);
    l2.input().push(makeLoad(a), now);
    runCycles(200);
    l2.input().push(makeLoad(a), now);
    const auto out = runCycles(200);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(l2.hits(), 1u);
}

TEST_F(L2Test, HitLatencyApplied)
{
    const Addr a = partition0Line(cfg, 0);
    l2.input().push(makeLoad(a), now);
    runCycles(200);

    const Cycle inject = now;
    l2.input().push(makeLoad(a), now);
    Cycle arrival = 0;
    for (Cycle i = 0; i < 200; ++i) {
        l2.tick(now);
        if (l2.output().popReady(now)) {
            arrival = now;
            break;
        }
        ++now;
    }
    EXPECT_EQ(arrival - inject, cfg.l2HitLatency);
}

TEST_F(L2Test, WritesAllocateDirtyAndProduceNoResponse)
{
    MemAccess store = makeLoad(partition0Line(cfg, 0));
    store.write = true;
    l2.input().push(store, now);
    const auto out = runCycles(100);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(l2.misses(), 1u);

    // Evicting the dirty line costs a writeback.
    // Fill the same set: set count * stride apart lines map to set 0.
    const int stride = cfg.l2SetsPerPartition * cfg.numPartitions;
    for (int w = 1; w <= cfg.l2Ways; ++w) {
        l2.input().push(
            makeLoad(static_cast<Addr>(w) * static_cast<Addr>(stride) *
                     lineBytes),
            now);
        runCycles(100);
    }
    EXPECT_EQ(l2.writebacks(), 1u);
}

TEST_F(L2Test, FlushDropsCachedLines)
{
    const Addr a = partition0Line(cfg, 0);
    l2.input().push(makeLoad(a), now);
    runCycles(200);
    l2.flush();
    l2.input().push(makeLoad(a), now);
    runCycles(200);
    EXPECT_EQ(l2.hits(), 0u);
    EXPECT_EQ(l2.misses(), 2u);
}

} // namespace
} // namespace equalizer
