/**
 * @file
 * End-to-end invariants: each kernel category produces the paper's
 * warp-state signature and responds to the tuning knobs the way the
 * paper's Section II characterization says it should.
 *
 * Kernels are downscaled (fewer blocks, shorter warps) so the suite
 * stays fast; the signatures are scale-free.
 */

#include <gtest/gtest.h>

#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{
namespace
{

/** Downscale a roster kernel for test speed. */
KernelParams
mini(const std::string &name, double block_scale = 0.5,
     double length_scale = 0.35)
{
    KernelParams p = KernelZoo::byName(name).params;
    p.totalBlocks = std::max(
        15, static_cast<int>(p.totalBlocks * block_scale));
    p.instrsPerWarp = std::max(
        60, static_cast<int>(p.instrsPerWarp * length_scale));
    p.name = name + "-mini";
    return p;
}

struct Signature
{
    double xAlu;    ///< mean X_alu warps per cycle per SM
    double xMem;    ///< mean X_mem warps per cycle per SM
    double waiting; ///< mean waiting warps
    double l1Hit;
};

Signature
signatureOf(const RunMetrics &m)
{
    const double n = static_cast<double>(m.outcomeCycles);
    return Signature{
        static_cast<double>(m.outcomeTotals.excessAlu) / n,
        static_cast<double>(m.outcomeTotals.excessMem) / n,
        static_cast<double>(m.outcomeTotals.waiting) / n,
        m.l1HitRate(),
    };
}

// ------------------------------------------------ category signatures

TEST(CategorySignature, ComputeKernelSaturatesAluPipes)
{
    ExperimentRunner runner;
    const auto r = runner.run(mini("sgemm"), policies::baseline());
    const auto sig = signatureOf(r.total);
    const int wcta = KernelZoo::byName("sgemm").params.warpsPerBlock;
    EXPECT_GT(sig.xAlu, static_cast<double>(wcta));
    EXPECT_LT(sig.xMem, 2.0);
    EXPECT_GT(sig.l1Hit, 0.6);
}

TEST(CategorySignature, MemoryKernelSaturatesBandwidth)
{
    ExperimentRunner runner;
    const auto r = runner.run(mini("cfd-1"), policies::baseline());
    const auto sig = signatureOf(r.total);
    EXPECT_GT(sig.xMem, 2.0); // the paper's saturation indicator
    EXPECT_LT(sig.xAlu, 2.0);
    EXPECT_LT(sig.l1Hit, 0.2);
}

TEST(CategorySignature, CacheKernelThrashesAtFullOccupancy)
{
    ExperimentRunner runner;
    const auto r = runner.run(mini("kmn", 0.6, 0.6), policies::baseline());
    const auto sig = signatureOf(r.total);
    EXPECT_LT(sig.l1Hit, 0.25); // thrashing
    EXPECT_GT(sig.xMem,
              static_cast<double>(
                  KernelZoo::byName("kmn").params.warpsPerBlock));
}

TEST(CategorySignature, UnsaturatedKernelSaturatesNothing)
{
    ExperimentRunner runner;
    const auto r = runner.run(mini("stncl"), policies::baseline());
    const auto sig = signatureOf(r.total);
    const int wcta = KernelZoo::byName("stncl").params.warpsPerBlock;
    EXPECT_LT(sig.xAlu, static_cast<double>(wcta));
    EXPECT_LT(sig.xMem, static_cast<double>(wcta));
    EXPECT_GT(sig.waiting, 1.0);
}

TEST(CategorySignature, TextureKernelHidesBackPressure)
{
    // leuko-1 saturates DRAM through the texture path, yet X_mem stays
    // near zero — the paper's explanation for Equalizer's one miss.
    ExperimentRunner runner;
    const auto r = runner.run(mini("leuko-1"), policies::baseline());
    const auto sig = signatureOf(r.total);
    EXPECT_LT(sig.xMem, 0.5);
    EXPECT_GT(sig.waiting, 5.0);
}

TEST(CategorySignature, LoadImbalancedKernelIdlesMostSms)
{
    ExperimentRunner runner;
    KernelParams p = KernelZoo::byName("prtcl-2").params;
    p.instrsPerWarp = 300;
    p.name = "prtcl-2-mini";
    const auto r = runner.run(p, policies::baseline());
    // One straggler block: issued warps per cycle per SM collapses well
    // below the issue width once the short blocks drain.
    const double issued_per_cycle =
        static_cast<double>(r.total.outcomeTotals.issued) /
        static_cast<double>(r.total.outcomeCycles);
    EXPECT_LT(issued_per_cycle, 0.5);
}

// ------------------------------------------------ knob responses (Fig 1)

TEST(KnobResponse, SmBoostSpeedsComputeNotMemory)
{
    ExperimentRunner runner;
    const auto comp_base = runner.run(mini("cutcp"), policies::baseline());
    const auto comp_fast = runner.run(mini("cutcp"), policies::smHigh());
    const double comp_speedup =
        speedupOver(comp_base.total, comp_fast.total);
    EXPECT_GT(comp_speedup, 1.05);

    const auto mem_base = runner.run(mini("lbm"), policies::baseline());
    const auto mem_fast = runner.run(mini("lbm"), policies::smHigh());
    const double mem_speedup = speedupOver(mem_base.total, mem_fast.total);
    EXPECT_LT(mem_speedup, 1.05);
    EXPECT_GT(comp_speedup, mem_speedup);
}

TEST(KnobResponse, MemBoostSpeedsMemoryNotCompute)
{
    ExperimentRunner runner;
    const auto mem_base = runner.run(mini("lbm"), policies::baseline());
    const auto mem_fast = runner.run(mini("lbm"), policies::memHigh());
    EXPECT_GT(speedupOver(mem_base.total, mem_fast.total), 1.08);

    const auto comp_base = runner.run(mini("cutcp"), policies::baseline());
    const auto comp_fast = runner.run(mini("cutcp"), policies::memHigh());
    EXPECT_LT(speedupOver(comp_base.total, comp_fast.total), 1.05);
}

TEST(KnobResponse, SmThrottleCheapForMemoryKernels)
{
    ExperimentRunner runner;
    const auto base = runner.run(mini("cfd-2"), policies::baseline());
    const auto low = runner.run(mini("cfd-2"), policies::smLow());
    // Little performance loss, real energy gain.
    EXPECT_GT(speedupOver(base.total, low.total), 0.93);
    EXPECT_GT(energyEfficiencyOver(base.total, low.total), 1.03);
}

TEST(KnobResponse, MemThrottleCheapForComputeKernels)
{
    ExperimentRunner runner;
    const auto base = runner.run(mini("mri-q"), policies::baseline());
    const auto low = runner.run(mini("mri-q"), policies::memLow());
    EXPECT_GT(speedupOver(base.total, low.total), 0.96);
    EXPECT_GT(energyEfficiencyOver(base.total, low.total), 1.02);
}

TEST(KnobResponse, CacheKernelPrefersFewerBlocks)
{
    ExperimentRunner runner;
    const KernelParams p = mini("kmn", 0.6, 0.6);
    const auto full = runner.run(p, policies::baseline());
    const auto one = runner.run(p, policies::staticBlocks(1));
    EXPECT_GT(speedupOver(full.total, one.total), 1.5);
    EXPECT_GT(one.total.l1HitRate(), full.total.l1HitRate() + 0.3);
}

TEST(KnobResponse, MemoryKernelPerformanceSaturatesWithBlocks)
{
    // Figure 5: beyond a few blocks, more concurrency buys nothing.
    ExperimentRunner runner;
    const KernelParams p = mini("cfd-1");
    const auto two = runner.run(p, policies::staticBlocks(2));
    const auto max = runner.run(p, policies::baseline());
    EXPECT_NEAR(speedupOver(two.total, max.total), 1.0, 0.08);
}

// ------------------------------------------------ Equalizer end-to-end

TEST(EqualizerEndToEnd, PerformanceModeNeverBadlyRegresses)
{
    ExperimentRunner runner;
    for (const auto *name : {"sgemm", "lbm", "stncl"}) {
        const auto base = runner.run(mini(name), policies::baseline());
        const auto eq = runner.run(
            mini(name), policies::equalizer(EqualizerMode::Performance));
        EXPECT_GT(speedupOver(base.total, eq.total), 0.95) << name;
    }
}

TEST(EqualizerEndToEnd, PerformanceModeBoostsCacheKernelHard)
{
    ExperimentRunner runner;
    const KernelParams p = mini("kmn", 0.6, 0.6);
    const auto base = runner.run(p, policies::baseline());
    const auto eq =
        runner.run(p, policies::equalizer(EqualizerMode::Performance));
    EXPECT_GT(speedupOver(base.total, eq.total), 1.5);
}

TEST(EqualizerEndToEnd, EnergyModeSavesEnergyOnSkewedKernels)
{
    ExperimentRunner runner;
    for (const auto *name : {"sgemm", "cfd-2"}) {
        const auto base = runner.run(mini(name), policies::baseline());
        const auto eq = runner.run(
            mini(name), policies::equalizer(EqualizerMode::Energy));
        EXPECT_GT(energyEfficiencyOver(base.total, eq.total), 1.02)
            << name;
        EXPECT_GT(speedupOver(base.total, eq.total), 0.93) << name;
    }
}

TEST(EqualizerEndToEnd, DeterministicAcrossIdenticalRuns)
{
    const KernelParams p = mini("sc");
    ExperimentRunner a;
    ExperimentRunner b;
    const auto ra =
        a.run(p, policies::equalizer(EqualizerMode::Performance));
    const auto rb =
        b.run(p, policies::equalizer(EqualizerMode::Performance));
    EXPECT_EQ(ra.total.smCycles, rb.total.smCycles);
    EXPECT_DOUBLE_EQ(ra.total.dynamicJoules, rb.total.dynamicJoules);
}

} // namespace
} // namespace equalizer
