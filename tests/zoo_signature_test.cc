/**
 * @file
 * Category-signature sweep over the complete 27-kernel roster: every
 * kernel, downscaled for test speed, must land in its paper category by
 * the warp-state observables Algorithm 1 consumes.
 */

#include <gtest/gtest.h>

#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{
namespace
{

struct Signature
{
    double xAlu;
    double xMem;
    double waiting;
    double l1Hit;
};

class ZooSignature : public ::testing::TestWithParam<std::string>
{
  protected:
    static Signature
    measure(const std::string &name)
    {
        KernelParams p = KernelZoo::byName(name).params;
        p.totalBlocks = std::max(15, p.totalBlocks / 2);
        p.instrsPerWarp = std::max(80, p.instrsPerWarp * 2 / 5);
        p.name = name + "-sig";
        ExperimentRunner runner;
        const auto r = runner.run(p, policies::baseline());
        const double n = static_cast<double>(r.total.outcomeCycles);
        return Signature{
            static_cast<double>(r.total.outcomeTotals.excessAlu) / n,
            static_cast<double>(r.total.outcomeTotals.excessMem) / n,
            static_cast<double>(r.total.outcomeTotals.waiting) / n,
            r.total.l1HitRate()};
    }
};

TEST_P(ZooSignature, BaselineSignatureMatchesPaperCategory)
{
    const std::string name = GetParam();
    const auto &entry = KernelZoo::byName(name);
    const int wcta = entry.params.warpsPerBlock;
    const Signature sig = measure(name);

    switch (entry.params.category) {
      case KernelCategory::Compute:
        if (name == "prtcl-2") {
            // Load imbalance: averaged over the long idle tail the
            // absolute pressure is small, but the inclination holds.
            EXPECT_GT(sig.xAlu, sig.xMem);
            break;
        }
        // Dominant ALU pressure beyond the Algorithm 1 threshold.
        EXPECT_GT(sig.xAlu, static_cast<double>(wcta)) << name;
        EXPECT_GT(sig.xAlu, sig.xMem) << name;
        break;

      case KernelCategory::Memory:
        if (name == "leuko-1") {
            // Texture buffering hides the pressure: the paper's
            // documented misdetection case.
            EXPECT_LT(sig.xMem, 1.0);
            EXPECT_GT(sig.waiting, 5.0);
            break;
        }
        EXPECT_GT(sig.xMem, 2.0) << name; // bandwidth saturated
        EXPECT_GT(sig.xMem, sig.xAlu) << name;
        break;

      case KernelCategory::Cache:
        EXPECT_LT(sig.l1Hit, 0.45) << name; // thrashing at max blocks
        EXPECT_GT(sig.xMem, sig.xAlu) << name;
        EXPECT_GT(sig.xMem, 2.0) << name;
        break;

      case KernelCategory::Unsaturated:
        EXPECT_LT(sig.xAlu, static_cast<double>(wcta)) << name;
        EXPECT_LT(sig.xMem, static_cast<double>(wcta)) << name;
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(All27, ZooSignature,
                         ::testing::ValuesIn(KernelZoo::names()));

} // namespace
} // namespace equalizer
