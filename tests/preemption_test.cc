/**
 * @file
 * Preemption-identity tests (docs/SERVING.md): a kernel evicted to a
 * checkpoint shelf mid-quantum, displaced by an interloper kernel on
 * the same warm device, and then restored must finish bit-identical to
 * the uninterrupted run — exported metrics and the traced event-stream
 * suffix — at any threads= setting. This is the property that lets
 * the preemptive dispatcher treat eviction as free of simulation-side
 * effects (only the modeled wall-clock cost remains).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "gpu/scheduler_core.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "sim/parallel_executor.hh"
#include "trace/sink.hh"
#include "trace/trace_reader.hh"
#include "trace/tracer.hh"

namespace equalizer
{
namespace
{

bool
sameEvents(const std::vector<TraceEvent> &a,
           const std::vector<TraceEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(TraceEvent)) != 0)
            return false;
    return true;
}

/** A tracing config that drains often within short test runs. */
TraceConfig
fastTrace()
{
    TraceConfig cfg;
    cfg.epochCycles = 512;
    return cfg;
}

/** Equalizer tuned so decisions churn within short runs. */
PolicySpec
churnyEqualizer()
{
    EqualizerConfig ecfg;
    ecfg.epochCycles = 512;
    ecfg.sampleInterval = 64;
    return policies::equalizer(EqualizerMode::Performance, ecfg);
}

/** Exported-JSON form of a run's metrics (the figures' data). */
std::string
jsonOf(const std::string &kernel, const RunMetrics &m)
{
    MetricsExporter e;
    e.addResult(kernel, "test", m, {m});
    std::ostringstream os;
    return (e.writeJson(os), os.str());
}

struct PreemptCase
{
    const char *kernel;
    int threads;
};

class PreemptionIdentity : public ::testing::TestWithParam<PreemptCase>
{
};

/**
 * The serve-mode eviction flow, end to end on one warm device: step
 * the victim to an exact mid-run cycle, shelve it with
 * saveStateBuffer(), run a whole interloper kernel on the same device,
 * restore the shelf and finish. The victim's exported metrics must be
 * byte-identical to an uninterrupted run's, and its trace must replay
 * the uninterrupted run's suffix event for event.
 */
TEST_P(PreemptionIdentity, ResumedVictimIsByteIdentical)
{
    const auto [kernel_name, threads] = GetParam();
    const KernelParams &params = KernelZoo::byName(kernel_name).params;
    const KernelParams &interloper_params =
        KernelZoo::byName("bp-1").params;
    const GpuConfig gcfg = GpuConfig::gtx480();
    const PowerConfig pcfg = PowerConfig::gtx480();
    const PolicySpec policy = churnyEqualizer();
    const Cycle save_cycle = 1800; // mid-epoch on the 512 grid

    // --- Uninterrupted reference run, traced.
    MemoryTraceSink full_sink;
    Tracer full_tracer(fastTrace(), full_sink);
    std::string full_json;
    {
        std::unique_ptr<ParallelExecutor> exec;
        if (threads > 1)
            exec = std::make_unique<ParallelExecutor>(threads);
        GpuTop gpu(gcfg, pcfg);
        gpu.setParallelExecutor(exec.get());
        gpu.setTracer(&full_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        SyntheticKernel launch(params, 0);
        full_json = jsonOf(params.name, gpu.runKernel(launch));
    }
    full_tracer.finish();

    // --- Preempted run on one warm device. The prefix must trace on
    // the same epoch grid (sink contents don't matter): epoch drains
    // reset the high-water counters, so only an equally-traced prefix
    // checkpoints the counter windows the full run sees.
    MemoryTraceSink resumed_sink;
    Tracer resumed_tracer(fastTrace(), resumed_sink);
    std::string resumed_json;
    {
        std::unique_ptr<ParallelExecutor> exec;
        if (threads > 1)
            exec = std::make_unique<ParallelExecutor>(threads);
        GpuTop gpu(gcfg, pcfg);
        gpu.setParallelExecutor(exec.get());
        NullTraceSink null_sink;
        Tracer prefix_tracer(fastTrace(), null_sink);
        gpu.setTracer(&prefix_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        SchedulerCore core(gpu);

        SyntheticKernel victim(params, 0);
        core.launchKernel(victim);
        ASSERT_EQ(core.step(save_cycle), StepStatus::Running)
            << "victim finished before the save cycle";
        ASSERT_EQ(gpu.smDomain().cycle(), save_cycle);
        const std::vector<std::uint8_t> shelf = gpu.saveStateBuffer();

        // Interloper: a different kernel, launched on the warm device
        // the victim was evicted from, run to completion.
        SyntheticKernel interloper(interloper_params, 0);
        core.launchKernel(interloper);
        core.run();
        EXPECT_GT(core.finish().instructions, 0u);

        // Restore the shelf on the same device and finish the victim.
        gpu.setTracer(&resumed_tracer);
        gpu.loadStateBuffer(shelf);
        ASSERT_TRUE(gpu.midKernel());
        EXPECT_EQ(gpu.currentKernelName(), params.name);
        EXPECT_EQ(gpu.smDomain().cycle(), save_cycle);
        core.adoptResumedKernel(victim);
        core.run();
        resumed_json = jsonOf(params.name, core.finish());
    }
    resumed_tracer.finish();

    EXPECT_EQ(full_json, resumed_json);

    const TraceReader full =
        TraceReader::fromBytes(full_sink.serialize());
    const TraceReader resumed =
        TraceReader::fromBytes(resumed_sink.serialize());

    // The resumed trace opens with the Restore marker at the shelf
    // cycle — the eviction is visible in the trace, not silent.
    const auto resumed_device = resumed.deviceEvents();
    ASSERT_FALSE(resumed_device.empty());
    EXPECT_EQ(resumed_device.front().kind, TraceEventKind::Restore);
    EXPECT_EQ(resumed_device.front().cycle, save_cycle);

    // Suffix equality: the full run's events after the save cycle ==
    // the resumed run's events, modulo markers and the one-time
    // GaugeDef records.
    auto comparable = [save_cycle](const TraceReader &r) {
        std::vector<TraceEvent> out;
        for (const auto &e : r.eventsWithoutMarkers()) {
            if (e.kind == TraceEventKind::GaugeDef)
                continue;
            if (e.cycle > save_cycle)
                out.push_back(e);
        }
        return out;
    };
    const auto full_suffix = comparable(full);
    const auto resumed_all = comparable(resumed);
    ASSERT_FALSE(full_suffix.empty());
    EXPECT_TRUE(sameEvents(full_suffix, resumed_all))
        << "suffix streams diverged: " << full_suffix.size() << " vs "
        << resumed_all.size() << " events";
}

INSTANTIATE_TEST_SUITE_P(
    KernelZoo, PreemptionIdentity,
    ::testing::Values(PreemptCase{"sgemm", 1}, PreemptCase{"sgemm", 4},
                      PreemptCase{"lbm", 1}, PreemptCase{"lbm", 4},
                      PreemptCase{"kmn", 1}, PreemptCase{"kmn", 4}),
    [](const auto &info) {
        return std::string(info.param.kernel) + "_threads" +
               std::to_string(info.param.threads);
    });

} // namespace
} // namespace equalizer
