/**
 * @file
 * Branch-complete tests of Algorithm 1 and the Table I objective map.
 */

#include <gtest/gtest.h>

#include "equalizer/decision.hh"

namespace equalizer
{
namespace
{

DecisionInputs
inputs(double mem, double alu, double waiting, double active,
       int wcta = 8, int blocks = 4, int max_blocks = 8)
{
    DecisionInputs in;
    in.counters.nMem = mem;
    in.counters.nAlu = alu;
    in.counters.nWaiting = waiting;
    in.counters.nActive = active;
    in.counters.samples = 32;
    in.wCta = wcta;
    in.numBlocks = blocks;
    in.maxBlocks = max_blocks;
    return in;
}

// --------------------------------------------------- Algorithm 1 branches

TEST(Decision, MemoryHeavyReducesBlocksAndRequestsMemAction)
{
    const Decision d = decide(inputs(/*mem=*/9, /*alu=*/0, 20, 40));
    EXPECT_EQ(d.tendency, Tendency::MemoryHeavy);
    EXPECT_EQ(d.blockDelta, -1);
    EXPECT_TRUE(d.memAction);
    EXPECT_FALSE(d.compAction);
}

TEST(Decision, MemoryHeavyAtOneBlockHoldsConcurrency)
{
    const Decision d = decide(inputs(9, 0, 20, 40, 8, /*blocks=*/1));
    EXPECT_EQ(d.tendency, Tendency::MemoryHeavy);
    EXPECT_EQ(d.blockDelta, 0);
    EXPECT_TRUE(d.memAction);
}

TEST(Decision, ComputeHeavyRequestsCompAction)
{
    const Decision d = decide(inputs(/*mem=*/1, /*alu=*/12, 10, 40));
    EXPECT_EQ(d.tendency, Tendency::ComputeHeavy);
    EXPECT_EQ(d.blockDelta, 0);
    EXPECT_TRUE(d.compAction);
    EXPECT_FALSE(d.memAction);
}

TEST(Decision, MemHeavyWinsOverComputeHeavy)
{
    // Algorithm 1 checks nMem first.
    const Decision d = decide(inputs(9, 12, 10, 40));
    EXPECT_EQ(d.tendency, Tendency::MemoryHeavy);
}

TEST(Decision, BandwidthSaturationWithoutBlockChange)
{
    const Decision d = decide(inputs(/*mem=*/3, /*alu=*/2, 10, 40));
    EXPECT_EQ(d.tendency, Tendency::MemorySaturated);
    EXPECT_EQ(d.blockDelta, 0);
    EXPECT_TRUE(d.memAction);
}

TEST(Decision, ThresholdsAreStrictlyGreater)
{
    // nMem == Wcta is NOT "definitely memory intensive"; nMem == 2 is
    // NOT saturation; both fall through.
    const Decision d = decide(inputs(/*mem=*/2, /*alu=*/8, /*waiting=*/1,
                                     /*active=*/40, /*wcta=*/8));
    EXPECT_EQ(d.tendency, Tendency::Degenerate);
}

TEST(Decision, WaitingDominatedAddsBlockWithComputeInclination)
{
    const Decision d =
        decide(inputs(/*mem=*/1, /*alu=*/2, /*waiting=*/25, /*active=*/40));
    EXPECT_EQ(d.tendency, Tendency::UnsaturatedComp);
    EXPECT_EQ(d.blockDelta, +1);
    EXPECT_TRUE(d.compAction);
}

TEST(Decision, WaitingDominatedMemoryInclination)
{
    const Decision d =
        decide(inputs(/*mem=*/2, /*alu=*/1, /*waiting=*/25, /*active=*/40));
    EXPECT_EQ(d.tendency, Tendency::UnsaturatedMem);
    EXPECT_EQ(d.blockDelta, +1);
    EXPECT_TRUE(d.memAction);
}

TEST(Decision, WaitingDominatedAtMaxBlocksHolds)
{
    const Decision d = decide(
        inputs(1, 2, 25, 40, 8, /*blocks=*/8, /*max_blocks=*/8));
    EXPECT_EQ(d.blockDelta, 0);
    EXPECT_TRUE(d.compAction);
}

TEST(Decision, IdleSmTriggersImbalanceAction)
{
    const Decision d = decide(inputs(0, 0, 0, /*active=*/0));
    EXPECT_EQ(d.tendency, Tendency::IdleImbalance);
    EXPECT_TRUE(d.compAction);
}

TEST(Decision, DegenerateChangesNothing)
{
    const Decision d =
        decide(inputs(/*mem=*/1, /*alu=*/1, /*waiting=*/5, /*active=*/40));
    EXPECT_EQ(d.tendency, Tendency::Degenerate);
    EXPECT_EQ(d.blockDelta, 0);
    EXPECT_FALSE(d.memAction);
    EXPECT_FALSE(d.compAction);
}

TEST(Decision, ActionsAreMutuallyExclusive)
{
    for (double mem = 0; mem <= 20; mem += 1.0)
        for (double alu = 0; alu <= 20; alu += 1.0) {
            const Decision d = decide(inputs(mem, alu, 10, 30));
            EXPECT_FALSE(d.memAction && d.compAction);
            EXPECT_GE(d.blockDelta, -1);
            EXPECT_LE(d.blockDelta, 1);
        }
}

// --------------------------------------------------- Table I objective map

TEST(Objective, ComputeEnergyThrottlesMemory)
{
    Decision d;
    d.compAction = true;
    const VfTargets t = applyObjective(d, EqualizerMode::Energy,
                                       VfState::Normal, VfState::Normal);
    EXPECT_EQ(t.sm, VfState::Normal);
    EXPECT_EQ(t.mem, VfState::Low);
}

TEST(Objective, ComputePerformanceBoostsSm)
{
    Decision d;
    d.compAction = true;
    const VfTargets t = applyObjective(d, EqualizerMode::Performance,
                                       VfState::Normal, VfState::Normal);
    EXPECT_EQ(t.sm, VfState::High);
    EXPECT_EQ(t.mem, VfState::Normal);
}

TEST(Objective, MemoryEnergyThrottlesSm)
{
    Decision d;
    d.memAction = true;
    const VfTargets t = applyObjective(d, EqualizerMode::Energy,
                                       VfState::Normal, VfState::Normal);
    EXPECT_EQ(t.sm, VfState::Low);
    EXPECT_EQ(t.mem, VfState::Normal);
}

TEST(Objective, MemoryPerformanceBoostsMemory)
{
    Decision d;
    d.memAction = true;
    const VfTargets t = applyObjective(d, EqualizerMode::Performance,
                                       VfState::Normal, VfState::Normal);
    EXPECT_EQ(t.sm, VfState::Normal);
    EXPECT_EQ(t.mem, VfState::High);
}

TEST(Objective, NoActionKeepsCurrentStates)
{
    const Decision d; // degenerate
    const VfTargets t = applyObjective(d, EqualizerMode::Performance,
                                       VfState::High, VfState::Low);
    EXPECT_EQ(t.sm, VfState::High);
    EXPECT_EQ(t.mem, VfState::Low);
}

TEST(Objective, ActionsRecenterTheUntouchedDomain)
{
    // A compute-heavy verdict in performance mode pulls a previously
    // boosted memory domain back to Normal.
    Decision d;
    d.compAction = true;
    const VfTargets t = applyObjective(d, EqualizerMode::Performance,
                                       VfState::Low, VfState::High);
    EXPECT_EQ(t.sm, VfState::High);
    EXPECT_EQ(t.mem, VfState::Normal);
}

TEST(Objective, TendencyNamesAreDistinct)
{
    EXPECT_STRNE(tendencyName(Tendency::MemoryHeavy),
                 tendencyName(Tendency::ComputeHeavy));
    EXPECT_STRNE(tendencyName(Tendency::UnsaturatedComp),
                 tendencyName(Tendency::UnsaturatedMem));
    EXPECT_STRNE(tendencyName(Tendency::Degenerate),
                 tendencyName(Tendency::IdleImbalance));
}

/**
 * Property sweep over the input lattice: the paper's priority order is
 * respected (memory-heavy > compute-heavy > saturation > waiting).
 */
class DecisionPriority
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(DecisionPriority, PriorityOrderHolds)
{
    const auto [mem, alu] = GetParam();
    const Decision d = decide(inputs(mem, alu, 30, 40));
    if (mem > 8) {
        EXPECT_EQ(d.tendency, Tendency::MemoryHeavy);
    } else if (alu > 8) {
        EXPECT_EQ(d.tendency, Tendency::ComputeHeavy);
    } else if (mem > 2) {
        EXPECT_EQ(d.tendency, Tendency::MemorySaturated);
    } else {
        // waiting (30) > active/2 (20)
        EXPECT_TRUE(d.tendency == Tendency::UnsaturatedComp ||
                    d.tendency == Tendency::UnsaturatedMem);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, DecisionPriority,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.5, 8.0, 9.0, 30.0),
                       ::testing::Values(0.0, 1.0, 5.0, 9.0, 30.0)));

} // namespace
} // namespace equalizer
