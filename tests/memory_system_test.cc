/**
 * @file
 * Integration tests for the full memory system (NoC + L2 + DRAM).
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace equalizer
{
namespace
{

class MemorySystemTest : public ::testing::Test
{
  protected:
    MemorySystemTest()
        : energy(PowerConfig::gtx480()), mem(cfg, numSms, energy)
    {
    }

    static constexpr int numSms = 4;

    MemAccess
    makeLoad(Addr line, SmId sm, WarpId warp = 0)
    {
        MemAccess a;
        a.lineAddr = line;
        a.sm = sm;
        a.warp = warp;
        return a;
    }

    /** Advance the memory system and collect responses for all SMs. */
    std::vector<MemAccess>
    runCycles(Cycle count)
    {
        std::vector<MemAccess> all;
        for (Cycle i = 0; i < count; ++i) {
            mem.tick(now);
            for (int s = 0; s < numSms; ++s)
                for (auto &r : mem.drainResponses(s, now, 100))
                    all.push_back(r);
            ++now;
        }
        return all;
    }

    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    MemorySystem mem;
    Cycle now = 0;
};

TEST_F(MemorySystemTest, LoadRoundTripReturnsToIssuingSm)
{
    mem.smInjectQueue(2).push(makeLoad(0x1000, 2, 5));
    const auto responses = runCycles(400);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].sm, 2);
    EXPECT_EQ(responses[0].warp, 5);
    EXPECT_EQ(responses[0].lineAddr, 0x1000u);
    EXPECT_TRUE(mem.drainResponses(0, now, 100).empty());
}

TEST_F(MemorySystemTest, RoundTripLatencyIsAtLeastTheNetworkDelays)
{
    mem.smInjectQueue(0).push(makeLoad(0x2000, 0));
    Cycle arrival = 0;
    for (Cycle i = 0; i < 1000 && arrival == 0; ++i) {
        mem.tick(now);
        if (!mem.drainResponses(0, now, 1).empty())
            arrival = now;
        ++now;
    }
    ASSERT_GT(arrival, 0u);
    const Cycle floor = cfg.nocRequestLatency + cfg.nocResponseLatency +
                        cfg.l2HitLatency + cfg.dramRowMissCycles;
    EXPECT_GE(arrival, floor);
    EXPECT_LE(arrival, floor + 40); // arbitration slack only
}

TEST_F(MemorySystemTest, SecondAccessHitsInL2AndReturnsFaster)
{
    mem.smInjectQueue(0).push(makeLoad(0x3000, 0));
    runCycles(400);
    const Cycle start = now;
    mem.smInjectQueue(0).push(makeLoad(0x3000, 0));
    Cycle arrival = 0;
    for (Cycle i = 0; i < 1000 && arrival == 0; ++i) {
        mem.tick(now);
        if (!mem.drainResponses(0, now, 1).empty())
            arrival = now;
        ++now;
    }
    EXPECT_EQ(mem.l2Hits(), 1u);
    const Cycle hit_latency = arrival - start;
    EXPECT_LT(hit_latency,
              cfg.nocRequestLatency + cfg.nocResponseLatency +
                  cfg.l2HitLatency + cfg.dramRowMissCycles);
}

TEST_F(MemorySystemTest, LinesStripeAcrossPartitions)
{
    // Consecutive lines land on consecutive partitions: saturating one
    // partition must not be possible with striped addresses.
    for (int i = 0; i < cfg.numPartitions; ++i)
        mem.smInjectQueue(0).push(
            makeLoad(static_cast<Addr>(i) * lineBytes, 0, i));
    runCycles(400);
    EXPECT_EQ(mem.dramAccesses(),
              static_cast<std::uint64_t>(cfg.numPartitions));
    // Each partition saw exactly one access: no row hits anywhere.
    EXPECT_EQ(mem.dramRowHits(), 0u);
}

TEST_F(MemorySystemTest, WritesReachDramButProduceNoResponse)
{
    MemAccess store = makeLoad(0x5000, 0);
    store.write = true;
    mem.smInjectQueue(0).push(store);
    const auto responses = runCycles(400);
    EXPECT_TRUE(responses.empty());
    // The write allocated in L2 (write-back), so no DRAM access yet.
    EXPECT_EQ(mem.l2Misses(), 1u);
}

TEST_F(MemorySystemTest, TexturePathDeliversResponses)
{
    MemAccess tex = makeLoad(0x6000, 1, 3);
    tex.texture = true;
    mem.texInjectQueue(1).push(tex);
    const auto responses = runCycles(400);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].texture);
    EXPECT_EQ(responses[0].sm, 1);
}

TEST_F(MemorySystemTest, RegularPathHasPriorityOverTexture)
{
    MemAccess tex = makeLoad(0x7000, 0, 1);
    tex.texture = true;
    mem.texInjectQueue(0).push(tex);
    mem.smInjectQueue(0).push(makeLoad(0x7000 + lineBytes, 0, 2));
    // Both are pending for SM 0; one NoC sweep should move the regular
    // request first (it shares the per-SM arbitration slot).
    mem.tick(now);
    EXPECT_TRUE(mem.smInjectQueue(0).empty());
}

TEST_F(MemorySystemTest, BandwidthLimitThrottlesInjection)
{
    // Offer far more requests than the NoC accepts per cycle.
    for (int s = 0; s < numSms; ++s)
        for (int i = 0; i < 8; ++i)
            mem.smInjectQueue(s).push(
                makeLoad(static_cast<Addr>(s * 100 + i) * lineBytes, s, i));
    std::size_t before = 0;
    for (int s = 0; s < numSms; ++s)
        before += mem.smInjectQueue(s).size();
    mem.tick(now);
    std::size_t after = 0;
    for (int s = 0; s < numSms; ++s)
        after += mem.smInjectQueue(s).size();
    EXPECT_LE(before - after,
              static_cast<std::size_t>(cfg.nocRequestBwPerCycle));
}

TEST_F(MemorySystemTest, SustainedOverloadBacksUpInjectQueues)
{
    // Hammer a single partition (same line stride) from all SMs until
    // its queues fill; the inject queues must eventually stay full.
    const Addr stride =
        static_cast<Addr>(cfg.numPartitions) * lineBytes;
    int seq = 0;
    bool saw_backpressure = false;
    for (Cycle i = 0; i < 2000; ++i) {
        for (int s = 0; s < numSms; ++s) {
            auto &q = mem.smInjectQueue(s);
            while (!q.full()) {
                const int n = seq++;
                q.push(makeLoad(static_cast<Addr>(n) * stride, s,
                                (n + 1) % 32));
            }
        }
        mem.tick(now);
        for (int s = 0; s < numSms; ++s)
            mem.drainResponses(s, now, 100);
        ++now;
        if (mem.smInjectQueue(0).full())
            saw_backpressure = true;
    }
    EXPECT_TRUE(saw_backpressure);
    // All traffic went to one partition.
    EXPECT_EQ(mem.dramAccesses(), mem.partition(0).dram().accesses());
}

TEST_F(MemorySystemTest, FlushCachesDropsL2Contents)
{
    mem.smInjectQueue(0).push(makeLoad(0x9000, 0));
    runCycles(400);
    mem.flushCaches();
    mem.smInjectQueue(0).push(makeLoad(0x9000, 0));
    runCycles(400);
    EXPECT_EQ(mem.l2Hits(), 0u);
    EXPECT_EQ(mem.l2Misses(), 2u);
}

TEST_F(MemorySystemTest, NocEnergyRecorded)
{
    mem.smInjectQueue(0).push(makeLoad(0xa000, 0));
    runCycles(400);
    // 1 request flit + 5 response flits (address + 4 data).
    EXPECT_EQ(energy.eventCount(EnergyEvent::NocFlit), 6u);
}

} // namespace
} // namespace equalizer
