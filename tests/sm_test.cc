/**
 * @file
 * Unit tests for the streaming multiprocessor: block slots, CTA pausing,
 * warp-state classification, barriers and retirement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/sm.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;
using testing::syncInst;

class SmTest : public ::testing::Test
{
  protected:
    SmTest()
        : energy(PowerConfig::gtx480()), mem(cfg.mem, 1, energy),
          sm(cfg, 0, mem, energy)
    {
    }

    /** One SM cycle with the memory system ticking alongside. */
    void
    step(int cycles = 1)
    {
        for (int i = 0; i < cycles; ++i) {
            ++memNow;
            mem.tick(memNow);
            sm.tick(memNow);
        }
    }

    GpuConfig cfg = GpuConfig::gtx480();
    EnergyModel energy;
    MemorySystem mem;
    StreamingMultiprocessor sm;
    Cycle memNow = 0;
};

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name = "test")
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

TEST_F(SmTest, BlockSlotCountRespectsOccupancyLimits)
{
    ScriptedKernel k(info(10, 8, 6), {aluInst()});
    sm.setKernel(&k);
    EXPECT_EQ(sm.blockSlotCount(), 6); // 48 warps / 8 per block

    ScriptedKernel wide(info(10, 24, 3), {aluInst()});
    sm.setKernel(&wide);
    EXPECT_EQ(sm.blockSlotCount(), 2); // warp capacity clamps 3 -> 2

    ScriptedKernel narrow(info(10, 2, 8), {aluInst()});
    sm.setKernel(&narrow);
    EXPECT_EQ(sm.blockSlotCount(), 8); // config cap

    // A kernel wider than the whole SM still gets one slot.
    ScriptedKernel huge(info(10, 64, 1), {aluInst()});
    sm.setKernel(&huge);
    EXPECT_EQ(sm.blockSlotCount(), 1);
}

TEST_F(SmTest, AssignBlockActivatesItsWarps)
{
    ScriptedKernel k(info(10, 4, 4), {aluInst(), aluInst()});
    sm.setKernel(&k);
    EXPECT_TRUE(sm.wantsBlock());
    sm.assignBlock(0);
    EXPECT_EQ(sm.residentBlocks(), 1);
    for (int w = 0; w < 4; ++w)
        EXPECT_TRUE(sm.warp(w).active);
    EXPECT_FALSE(sm.warp(4).active);
}

TEST_F(SmTest, PureAluKernelIssuesAtFullWidthAndShowsExcessAlu)
{
    std::vector<WarpInstruction> script(50, aluInst());
    ScriptedKernel k(info(10, 8, 2), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    step(5);
    const auto counts = sm.sampleStates();
    EXPECT_EQ(counts.issued, cfg.issueWidth);
    // 16 ready warps, 2 issue slots: the rest are X_alu.
    EXPECT_EQ(counts.excessAlu, 16 - cfg.issueWidth);
    EXPECT_EQ(counts.active, 16);
}

TEST_F(SmTest, DependentChainCreatesWaitingWarps)
{
    // Each warp: ALU then a dependent ALU, repeatedly. The dependent
    // instruction waits ~aluDepLatency cycles.
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 30; ++i) {
        script.push_back(aluInst(false));
        script.push_back(aluInst(true));
    }
    ScriptedKernel k(info(10, 4, 1), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    step(6);
    const auto counts = sm.sampleStates();
    EXPECT_GT(counts.waiting, 0);
}

TEST_F(SmTest, LoadUseStallsUntilDataReturns)
{
    ScriptedKernel k(info(10, 1, 1),
                     {loadInst(0x4000), loadUse(), aluInst()});
    sm.setKernel(&k);
    sm.assignBlock(0);
    step(2); // load issues
    EXPECT_GT(sm.warp(0).pendingLoads, 0);
    const auto counts = sm.sampleStates();
    EXPECT_EQ(counts.waiting, 1); // the dependent use waits
    step(400); // plenty for a DRAM round trip
    EXPECT_EQ(sm.warp(0).pendingLoads, 0);
}

TEST_F(SmTest, ExcessMemAppearsWhenLsuSaturates)
{
    // Every warp issues loads back to back; the LSU accepts one warp
    // instruction per cycle, so ready memory warps pile up as X_mem.
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 40; ++i)
        script.push_back(loadInst(static_cast<Addr>(i) * 128));
    ScriptedKernel k(info(10, 8, 2),
                     [script](BlockId b, int w) {
                         auto s = script;
                         for (auto &inst : s)
                             for (int t = 0; t < inst.transactionCount; ++t)
                                 inst.lineAddrs[static_cast<std::size_t>(t)] +=
                                     static_cast<Addr>(b * 1000 + w * 100) *
                                     4096;
                         return s;
                     });
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    bool saw_xmem = false;
    for (int i = 0; i < 50 && !saw_xmem; ++i) {
        step(1);
        saw_xmem = sm.sampleStates().excessMem > 0;
    }
    EXPECT_TRUE(saw_xmem);
}

TEST_F(SmTest, PausedBlocksAreExcludedFromCounters)
{
    std::vector<WarpInstruction> script(2000, aluInst());
    ScriptedKernel k(info(10, 8, 2), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    step(2);
    EXPECT_EQ(sm.sampleStates().active, 16);

    sm.setTargetBlocks(1);
    EXPECT_EQ(sm.unpausedBlocks(), 1);
    EXPECT_EQ(sm.residentBlocks(), 2);
    step(1);
    EXPECT_EQ(sm.sampleStates().active, 8);

    sm.setTargetBlocks(2);
    EXPECT_EQ(sm.unpausedBlocks(), 2);
    step(1);
    EXPECT_EQ(sm.sampleStates().active, 16);
}

TEST_F(SmTest, PausesYoungestBlockFirst)
{
    std::vector<WarpInstruction> script(2000, aluInst());
    ScriptedKernel k(info(10, 8, 2), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    sm.setTargetBlocks(1);
    // Block in slot 1 (assigned last) is the paused one.
    EXPECT_FALSE(sm.warp(0).paused);
    EXPECT_TRUE(sm.warp(8).paused);
}

TEST_F(SmTest, TargetBlocksClampedToValidRange)
{
    ScriptedKernel k(info(10, 8, 4), {aluInst()});
    sm.setKernel(&k);
    sm.setTargetBlocks(100);
    EXPECT_EQ(sm.targetBlocks(), sm.blockSlotCount());
    sm.setTargetBlocks(-3);
    EXPECT_EQ(sm.targetBlocks(), 1);
}

TEST_F(SmTest, WantsBlockHonorsTargetAndPausedBlocks)
{
    std::vector<WarpInstruction> script(2000, aluInst());
    ScriptedKernel k(info(10, 8, 4), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    EXPECT_TRUE(sm.wantsBlock());
    sm.setTargetBlocks(2);
    EXPECT_FALSE(sm.wantsBlock());
    sm.setTargetBlocks(1); // one block paused now
    sm.setTargetBlocks(3); // unpauses it; still below target, no paused
    EXPECT_TRUE(sm.wantsBlock());
}

TEST_F(SmTest, BlockCompletionFreesSlotAndFiresHook)
{
    std::vector<std::pair<SmId, BlockId>> completed;
    sm.setBlockCompleteHook([&completed](SmId s, BlockId b) {
        completed.emplace_back(s, b);
    });
    ScriptedKernel k(info(10, 2, 2), {aluInst(), aluInst()});
    sm.setKernel(&k);
    sm.assignBlock(7);
    step(10);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].first, 0);
    EXPECT_EQ(completed[0].second, 7);
    EXPECT_TRUE(sm.idle());
    EXPECT_EQ(sm.blocksCompleted(), 1u);
}

TEST_F(SmTest, CompletionUnpausesAPausedBlock)
{
    // Two short blocks, then pause one; when the active one finishes,
    // the paused one resumes without a new assignment (paper IV-B).
    ScriptedKernel k(info(10, 2, 2), {aluInst(), aluInst(), aluInst()});
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    sm.setTargetBlocks(1);
    EXPECT_EQ(sm.unpausedBlocks(), 1);
    step(20);
    // Block 0 finished; block 1 was unpaused and finished too.
    EXPECT_TRUE(sm.idle());
    EXPECT_EQ(sm.blocksCompleted(), 2u);
}

TEST_F(SmTest, BarrierParksWarpsUntilAllArrive)
{
    // Warp 0 has extra work before the barrier; warp 1 reaches it fast.
    ScriptedKernel k(info(10, 2, 1), [](BlockId, int w) {
        std::vector<WarpInstruction> s;
        const int pre = w == 0 ? 12 : 1;
        for (int i = 0; i < pre; ++i)
            s.push_back(aluInst());
        s.push_back(syncInst());
        s.push_back(aluInst());
        return s;
    });
    sm.setKernel(&k);
    sm.assignBlock(0);
    step(3);
    // Warp 1 is parked at the barrier while warp 0 still computes.
    EXPECT_TRUE(sm.warp(1).atBarrier);
    EXPECT_FALSE(sm.warp(0).atBarrier);
    EXPECT_GT(sm.sampleStates().barrier, 0);
    step(30);
    EXPECT_TRUE(sm.idle()); // everyone released and retired
}

TEST_F(SmTest, OutcomeTotalsAccumulate)
{
    std::vector<WarpInstruction> script(100, aluInst());
    ScriptedKernel k(info(10, 8, 1), script);
    sm.setKernel(&k);
    sm.assignBlock(0);
    step(10);
    const auto &totals = sm.outcomeTotals();
    EXPECT_GT(totals.issued, 0);
    EXPECT_GT(totals.active, 0);
    sm.resetStats();
    EXPECT_EQ(sm.outcomeTotals().issued, 0);
}

TEST_F(SmTest, MemIssueFilterThrottlesWarps)
{
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 50; ++i)
        script.push_back(loadInst(static_cast<Addr>(i) * 128));
    ScriptedKernel k(info(10, 4, 1), script);
    sm.setKernel(&k);
    sm.setMemIssueFilter([](WarpId w) { return w == 0; });
    sm.assignBlock(0);
    step(8);
    // Only warp 0 ever issues memory instructions.
    EXPECT_GT(sm.warp(0).pendingLoads, 0);
    for (int w = 1; w < 4; ++w)
        EXPECT_EQ(sm.warp(w).pendingLoads, 0);
}

TEST_F(SmTest, InstructionsIssuedCountsAllWarps)
{
    ScriptedKernel k(info(10, 2, 2), {aluInst(), aluInst(), aluInst()});
    sm.setKernel(&k);
    sm.assignBlock(0);
    sm.assignBlock(1);
    step(30);
    EXPECT_EQ(sm.instructionsIssued(), 4u * 3u);
}

} // namespace
} // namespace equalizer
