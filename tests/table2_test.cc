/**
 * @file
 * Full Table II fidelity: every roster kernel carries exactly the
 * paper's structural parameters (W_cta, max blocks per SM, application,
 * time fraction, category) — all 27 rows, not spot checks.
 */

#include <gtest/gtest.h>

#include <map>

#include "kernels/kernel_zoo.hh"

namespace equalizer
{
namespace
{

struct PaperRow
{
    const char *application;
    const char *kernel;
    KernelCategory category;
    double fraction;
    int numBlocks; ///< paper "num Blocks" column (max blocks per SM)
    int wcta;      ///< paper "W_cta" column (warps per block)
};

/**
 * Paper Table II verbatim, with the two documented adjustments:
 * spmv is classified cache-sensitive (the figures' treatment; the
 * table's "Compute" appears to be a typo), and bfs's single kernel is
 * named bfs-2 as the text and Figures 2a/10/11a call it.
 */
const PaperRow paperTable2[] = {
    {"backprop", "bp-1", KernelCategory::Unsaturated, 0.57, 6, 8},
    {"backprop", "bp-2", KernelCategory::Cache, 0.43, 6, 8},
    {"bfs", "bfs-2", KernelCategory::Cache, 0.95, 3, 16},
    {"cfd", "cfd-1", KernelCategory::Memory, 0.85, 3, 16},
    {"cfd", "cfd-2", KernelCategory::Memory, 0.15, 3, 6},
    {"cutcp", "cutcp", KernelCategory::Compute, 1.00, 8, 6},
    {"histo", "histo-1", KernelCategory::Cache, 0.30, 3, 16},
    {"histo", "histo-2", KernelCategory::Compute, 0.53, 3, 24},
    {"histo", "histo-3", KernelCategory::Memory, 0.17, 3, 16},
    {"kmeans", "kmn", KernelCategory::Cache, 0.24, 6, 8},
    {"lavaMD", "lavaMD", KernelCategory::Compute, 1.00, 4, 4},
    {"lbm", "lbm", KernelCategory::Memory, 1.00, 7, 4},
    {"leukocyte", "leuko-1", KernelCategory::Memory, 0.64, 6, 6},
    {"leukocyte", "leuko-2", KernelCategory::Compute, 0.36, 3, 6},
    {"mri-g", "mri-g-1", KernelCategory::Unsaturated, 0.68, 8, 2},
    {"mri-g", "mri-g-2", KernelCategory::Unsaturated, 0.07, 3, 8},
    {"mri-g", "mri-g-3", KernelCategory::Compute, 0.13, 6, 8},
    {"mri-q", "mri-q", KernelCategory::Compute, 1.00, 5, 8},
    {"mummer", "mmer", KernelCategory::Cache, 1.00, 6, 8},
    {"particle", "prtcl-1", KernelCategory::Cache, 0.45, 3, 16},
    {"particle", "prtcl-2", KernelCategory::Compute, 0.35, 3, 6},
    {"pathfinder", "pf", KernelCategory::Compute, 1.00, 6, 8},
    {"sad", "sad-1", KernelCategory::Unsaturated, 0.85, 8, 2},
    {"sgemm", "sgemm", KernelCategory::Compute, 1.00, 6, 4},
    {"sc", "sc", KernelCategory::Unsaturated, 1.00, 3, 16},
    {"spmv", "spmv", KernelCategory::Cache, 1.00, 8, 6},
    {"stencile", "stncl", KernelCategory::Unsaturated, 1.00, 5, 4},
};

class Table2Row : public ::testing::TestWithParam<PaperRow>
{
};

TEST_P(Table2Row, MatchesPaper)
{
    const PaperRow &row = GetParam();
    const ZooEntry &entry = KernelZoo::byName(row.kernel);
    EXPECT_EQ(entry.application, row.application) << row.kernel;
    EXPECT_EQ(entry.params.category, row.category) << row.kernel;
    EXPECT_NEAR(entry.appFraction, row.fraction, 1e-9) << row.kernel;
    EXPECT_EQ(entry.params.maxBlocksPerSm, row.numBlocks) << row.kernel;
    EXPECT_EQ(entry.params.warpsPerBlock, row.wcta) << row.kernel;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, Table2Row, ::testing::ValuesIn(paperTable2),
    [](const ::testing::TestParamInfo<PaperRow> &info) {
        std::string name = info.param.kernel;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Table2, RowCountIs27)
{
    EXPECT_EQ(std::size(paperTable2), 27u);
    EXPECT_EQ(KernelZoo::all().size(), 27u);
}

TEST(Table2, ApplicationFractionsNeverExceedOne)
{
    // The paper's fractions cover only the kernels it evaluates, so an
    // app's listed kernels sum to at most 1 (exactly 1 when all of its
    // kernels made the roster, e.g. histo and cfd).
    std::map<std::string, double> sums;
    for (const auto &e : KernelZoo::all())
        sums[e.application] += e.appFraction;
    for (const auto &[app, sum] : sums)
        EXPECT_LE(sum, 1.0 + 1e-9) << app;
    EXPECT_NEAR(sums["histo"], 1.0, 1e-9);
    EXPECT_NEAR(sums["cfd"], 1.0, 1e-9);
    EXPECT_NEAR(sums["backprop"], 1.0, 1e-9);
    EXPECT_NEAR(sums["leukocyte"], 1.0, 1e-9);
}

} // namespace
} // namespace equalizer
