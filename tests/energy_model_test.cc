/**
 * @file
 * Unit and property tests for the energy model and DVFS scaling.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

namespace equalizer
{
namespace
{

TEST(EnergyModel, EventDepositsConfiguredEnergy)
{
    PowerConfig cfg = PowerConfig::gtx480();
    EnergyModel e(cfg);
    e.record(EnergyEvent::SmAluOp, 10);
    const double expected =
        10.0 * cfg.eventEnergy[static_cast<int>(EnergyEvent::SmAluOp)];
    EXPECT_DOUBLE_EQ(e.dynamicJoules(EnergyEvent::SmAluOp), expected);
    EXPECT_DOUBLE_EQ(e.dynamicJoules(), expected);
    EXPECT_EQ(e.eventCount(EnergyEvent::SmAluOp), 10u);
}

TEST(EnergyModel, SmEventsScaleWithSmVoltageSquared)
{
    EnergyModel e;
    e.record(EnergyEvent::SmAluOp);
    const double base = e.dynamicJoules();
    e.setDomainStates(VfState::High, VfState::Normal);
    e.record(EnergyEvent::SmAluOp);
    const double boosted = e.dynamicJoules() - base;
    EXPECT_NEAR(boosted / base, 1.15 * 1.15, 1e-9);
}

TEST(EnergyModel, MemEventsScaleWithMemVoltageOnly)
{
    EnergyModel e;
    e.record(EnergyEvent::DramAccess);
    const double base = e.dynamicJoules();
    // Raising the SM domain must not affect memory-domain events.
    e.setDomainStates(VfState::High, VfState::Normal);
    e.record(EnergyEvent::DramAccess);
    EXPECT_NEAR(e.dynamicJoules() - base, base, 1e-15);
    // Lowering the memory domain scales them by 0.85^2.
    e.setDomainStates(VfState::High, VfState::Low);
    const double before = e.dynamicJoules();
    e.record(EnergyEvent::DramAccess);
    EXPECT_NEAR((e.dynamicJoules() - before) / base, 0.85 * 0.85, 1e-9);
}

TEST(EnergyModel, EventDomainsAreCorrect)
{
    EXPECT_EQ(eventDomain(EnergyEvent::SmAluOp), PowerDomain::Sm);
    EXPECT_EQ(eventDomain(EnergyEvent::SmIssue), PowerDomain::Sm);
    EXPECT_EQ(eventDomain(EnergyEvent::L1Access), PowerDomain::Sm);
    EXPECT_EQ(eventDomain(EnergyEvent::NocFlit), PowerDomain::Memory);
    EXPECT_EQ(eventDomain(EnergyEvent::L2Access), PowerDomain::Memory);
    EXPECT_EQ(eventDomain(EnergyEvent::DramAccess), PowerDomain::Memory);
    EXPECT_EQ(eventDomain(EnergyEvent::DramActivate), PowerDomain::Memory);
}

TEST(EnergyModel, LeakageScalesLinearlyWithVoltage)
{
    EnergyModel e;
    const auto &cfg = e.config();
    const double nominal =
        e.leakageWatts(VfState::Normal, VfState::Normal);
    EXPECT_DOUBLE_EQ(nominal, cfg.smLeakageWatts + cfg.memLeakageWatts);
    const double sm_high = e.leakageWatts(VfState::High, VfState::Normal);
    EXPECT_NEAR(sm_high - nominal, cfg.smLeakageWatts * 0.15, 1e-9);
}

TEST(EnergyModel, DramStandbyGrowsWithFrequencyState)
{
    EnergyModel e;
    const double low = e.dramStandbyWatts(VfState::Low);
    const double normal = e.dramStandbyWatts(VfState::Normal);
    const double high = e.dramStandbyWatts(VfState::High);
    EXPECT_LT(low, normal);
    EXPECT_LT(normal, high);
    // The paper's GDDR5 reference: ~30% higher idle current at high
    // data rates. Across our Low->High window the modelled standby
    // power swing should be in that ballpark (>25%).
    EXPECT_GT(high / normal, 1.25);
}

TEST(EnergyModel, StaticJoulesIntegratesResidency)
{
    EnergyModel e;
    std::array<Tick, numVfStates> sm{};
    std::array<Tick, numVfStates> mem{};
    // One second at Normal for both domains.
    sm[static_cast<int>(VfState::Normal)] = ticksPerSecond;
    mem[static_cast<int>(VfState::Normal)] = ticksPerSecond;
    const double joules = e.staticJoules(sm, mem);
    const double expected =
        e.config().smLeakageWatts + e.config().memLeakageWatts +
        e.dramStandbyWatts(VfState::Normal);
    EXPECT_NEAR(joules, expected, 1e-6);
}

TEST(EnergyModel, StaticJoulesZeroForZeroResidency)
{
    EnergyModel e;
    std::array<Tick, numVfStates> zero{};
    EXPECT_DOUBLE_EQ(e.staticJoules(zero, zero), 0.0);
}

TEST(EnergyModel, ResetClearsAccumulation)
{
    EnergyModel e;
    e.record(EnergyEvent::SmIssue, 100);
    e.reset();
    EXPECT_DOUBLE_EQ(e.dynamicJoules(), 0.0);
    EXPECT_EQ(e.eventCount(EnergyEvent::SmIssue), 0u);
}

TEST(EnergyModel, EventNamesAreDistinct)
{
    for (int i = 0; i < numEnergyEvents; ++i)
        for (int j = i + 1; j < numEnergyEvents; ++j)
            EXPECT_STRNE(energyEventName(static_cast<EnergyEvent>(i)),
                         energyEventName(static_cast<EnergyEvent>(j)));
}

/** Property sweep: totals equal the sum of per-event energies. */
class EnergyAdditivity : public ::testing::TestWithParam<int>
{
};

TEST_P(EnergyAdditivity, TotalEqualsSumOfParts)
{
    EnergyModel e;
    unsigned state = static_cast<unsigned>(GetParam());
    for (int step = 0; step < 500; ++step) {
        state = state * 1664525u + 1013904223u;
        const auto ev = static_cast<EnergyEvent>(state % numEnergyEvents);
        const auto count = 1 + (state >> 8) % 7;
        if (step % 37 == 0) {
            e.setDomainStates(static_cast<VfState>((state >> 4) % 3),
                              static_cast<VfState>((state >> 6) % 3));
        }
        e.record(ev, count);
    }
    double sum = 0.0;
    for (int i = 0; i < numEnergyEvents; ++i)
        sum += e.dynamicJoules(static_cast<EnergyEvent>(i));
    EXPECT_NEAR(e.dynamicJoules(), sum, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyAdditivity,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace equalizer
