/**
 * @file
 * Tests for the Equalizer runtime: sampler, frequency manager, and the
 * engine's closed-loop behaviour on scripted workloads.
 */

#include <gtest/gtest.h>

#include "equalizer/equalizer.hh"
#include "equalizer/frequency_manager.hh"
#include "equalizer/sampler.hh"
#include "gpu/gpu_top.hh"
#include <algorithm>

#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;

// --------------------------------------------------------------- Sampler

TEST(Sampler, AveragesAccumulatedSamples)
{
    WarpStateSampler s;
    WarpStateCounts a;
    a.active = 40;
    a.waiting = 20;
    a.excessAlu = 10;
    a.excessMem = 4;
    WarpStateCounts b;
    b.active = 20;
    b.waiting = 10;
    b.excessAlu = 0;
    b.excessMem = 2;
    s.accumulate(a);
    s.accumulate(b);
    const EpochCounters avg = s.average();
    EXPECT_EQ(avg.samples, 2);
    EXPECT_DOUBLE_EQ(avg.nActive, 30.0);
    EXPECT_DOUBLE_EQ(avg.nWaiting, 15.0);
    EXPECT_DOUBLE_EQ(avg.nAlu, 5.0);
    EXPECT_DOUBLE_EQ(avg.nMem, 3.0);
}

TEST(Sampler, EmptyEpochAveragesToZero)
{
    WarpStateSampler s;
    const EpochCounters avg = s.average();
    EXPECT_EQ(avg.samples, 0);
    EXPECT_DOUBLE_EQ(avg.nActive, 0.0);
}

TEST(Sampler, ResetStartsFreshEpoch)
{
    WarpStateSampler s;
    WarpStateCounts c;
    c.active = 48;
    s.accumulate(c);
    s.reset();
    EXPECT_EQ(s.samples(), 0);
    EXPECT_EQ(s.rawActive(), 0);
}

TEST(Sampler, RawCountersFitHardwareWidth)
{
    // 32 samples of 48 warps: max raw value 1536 fits 11 bits (paper).
    WarpStateSampler s;
    WarpStateCounts c;
    c.active = 48;
    c.waiting = 48;
    c.excessAlu = 48;
    c.excessMem = 48;
    for (int i = 0; i < 32; ++i)
        s.accumulate(c);
    EXPECT_EQ(s.rawActive(), 1536);
    EXPECT_LT(s.rawActive(), 1 << 11);
}

// ----------------------------------------------------- FrequencyManager

TEST(FrequencyManager, StrictMajorityWins)
{
    FrequencyManager fm(5);
    for (int i = 0; i < 3; ++i)
        fm.submit(i, VfState::High, VfState::Normal);
    for (int i = 3; i < 5; ++i)
        fm.submit(i, VfState::Low, VfState::Normal);
    EXPECT_EQ(fm.majorityTarget(false, VfState::Normal), VfState::High);
    EXPECT_EQ(fm.majorityTarget(true, VfState::Low), VfState::Normal);
}

TEST(FrequencyManager, NoStrictMajorityHoldsCurrent)
{
    FrequencyManager fm(4);
    fm.submit(0, VfState::High, VfState::Normal);
    fm.submit(1, VfState::High, VfState::Normal);
    fm.submit(2, VfState::Low, VfState::Normal);
    fm.submit(3, VfState::Low, VfState::Normal);
    // 2-2 split: hold the fallback.
    EXPECT_EQ(fm.majorityTarget(false, VfState::Normal), VfState::Normal);
}

TEST(FrequencyManager, NoVotesHoldsCurrent)
{
    FrequencyManager fm(3);
    EXPECT_EQ(fm.votesReceived(), 0);
    EXPECT_EQ(fm.majorityTarget(false, VfState::Low), VfState::Low);
}

TEST(FrequencyManager, ResolveStepsOneLevelAndClearsBallot)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 3;
    GpuTop gpu(cfg);
    FrequencyManager fm(3);
    for (int i = 0; i < 3; ++i)
        fm.submit(i, VfState::High, VfState::Low);
    fm.resolve(gpu);
    EXPECT_EQ(fm.votesReceived(), 0);
    EXPECT_EQ(fm.transitionsRequested(), 2u);
    // The domains have pending transitions toward the one-step targets.
    EXPECT_TRUE(gpu.smDomain().transitionPending());
    EXPECT_TRUE(gpu.memDomain().transitionPending());
}

TEST(FrequencyManager, ResolveWithoutVotesDoesNothing)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 2;
    GpuTop gpu(cfg);
    FrequencyManager fm(2);
    fm.resolve(gpu);
    EXPECT_EQ(fm.transitionsRequested(), 0u);
    EXPECT_FALSE(gpu.smDomain().transitionPending());
}

// --------------------------------------------------------- Engine loops

GpuConfig
smallGpu(int sms = 4)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    return cfg;
}

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name)
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

/** A long pure-ALU kernel: X_alu >> W_cta on every SM. */
ScriptedKernel
computeKernel(const char *name = "compute")
{
    std::vector<WarpInstruction> script(30000, aluInst());
    return ScriptedKernel(info(16, 4, 4, name), script);
}

TEST(EqualizerEngine, DetectsComputeKernelAndBoostsSmInPerfMode)
{
    GpuTop gpu(smallGpu());
    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    gpu.setController(&eq);

    std::vector<Tendency> tendencies;
    eq.setEpochTrace([&](const EqualizerEpochRecord &r) {
        tendencies.push_back(r.tendency);
    });

    auto k = computeKernel();
    gpu.runKernel(k);

    ASSERT_GE(tendencies.size(), 3u);
    int compute_epochs = 0;
    for (auto t : tendencies)
        compute_epochs += t == Tendency::ComputeHeavy ? 1 : 0;
    EXPECT_GT(compute_epochs, static_cast<int>(tendencies.size()) / 2);
    EXPECT_EQ(gpu.smDomain().state(), VfState::High);
    EXPECT_EQ(gpu.memDomain().state(), VfState::Normal);
}

TEST(EqualizerEngine, ComputeKernelInEnergyModeLowersMemory)
{
    GpuTop gpu(smallGpu());
    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Energy, 128, 4096, 3, 2.0});
    gpu.setController(&eq);
    auto k = computeKernel();
    gpu.runKernel(k);
    EXPECT_EQ(gpu.smDomain().state(), VfState::Normal);
    EXPECT_EQ(gpu.memDomain().state(), VfState::Low);
}

TEST(EqualizerEngine, EpochsResolveAtConfiguredCadence)
{
    GpuTop gpu(smallGpu());
    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    gpu.setController(&eq);
    auto k = computeKernel();
    const RunMetrics m = gpu.runKernel(k);
    const auto expected = m.smCycles / 4096;
    EXPECT_NEAR(static_cast<double>(eq.epochsResolved()),
                static_cast<double>(expected), 1.5);
}

TEST(EqualizerEngine, HysteresisDelaysBlockChanges)
{
    // A memory-hammering kernel that keeps nMem above W_cta: the first
    // block-count change must come only after `hysteresis` epochs.
    GpuTop gpu(smallGpu());
    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    gpu.setController(&eq);

    std::vector<double> blocks_per_epoch;
    eq.setEpochTrace([&](const EqualizerEpochRecord &r) {
        blocks_per_epoch.push_back(r.meanTargetBlocks);
    });

    std::vector<WarpInstruction> script;
    for (int i = 0; i < 500; ++i) {
        WarpInstruction ld = loadInst(0);
        ld.transactionCount = 2;
        ld.lineAddrs[0] = static_cast<Addr>(i) * 2 * 128;
        ld.lineAddrs[1] = ld.lineAddrs[0] + 128;
        script.push_back(ld);
        script.push_back(loadUse());
    }
    ScriptedKernel k(
        info(64, 4, 8, "membound"), [script](BlockId b, int w) {
            auto s = script;
            for (auto &inst : s)
                if (inst.op == OpClass::Mem)
                    for (int t = 0; t < inst.transactionCount; ++t)
                        inst.lineAddrs[static_cast<std::size_t>(t)] +=
                            (static_cast<Addr>(b) * 64 +
                             static_cast<Addr>(w))
                            << 24;
            return s;
        });
    gpu.runKernel(k);

    ASSERT_GE(blocks_per_epoch.size(), 4u);
    // Epochs 1 and 2 must still be at the maximum (8); a change can
    // appear at epoch 3 at the earliest.
    EXPECT_DOUBLE_EQ(blocks_per_epoch[0], 8.0);
    EXPECT_DOUBLE_EQ(blocks_per_epoch[1], 8.0);
    EXPECT_GT(eq.blockChanges(), 0u);
}

TEST(EqualizerEngine, RemembersBlockTargetsAcrossInvocations)
{
    GpuTop gpu(smallGpu());
    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    gpu.setController(&eq);

    // Same memory-bound kernel as above, run twice under the same name.
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 500; ++i) {
        WarpInstruction ld = loadInst(0);
        ld.transactionCount = 2;
        ld.lineAddrs[0] = static_cast<Addr>(i) * 2 * 128;
        ld.lineAddrs[1] = ld.lineAddrs[0] + 128;
        script.push_back(ld);
        script.push_back(loadUse());
    }
    ScriptedKernel k(
        info(64, 4, 8, "remember"), [script](BlockId b, int w) {
            auto s = script;
            for (auto &inst : s)
                if (inst.op == OpClass::Mem)
                    for (int t = 0; t < inst.transactionCount; ++t)
                        inst.lineAddrs[static_cast<std::size_t>(t)] +=
                            (static_cast<Addr>(b) * 64 +
                             static_cast<Addr>(w))
                            << 24;
            return s;
        });

    std::vector<double> targets;
    eq.setEpochTrace([&targets](const EqualizerEpochRecord &r) {
        targets.push_back(r.meanTargetBlocks);
    });
    gpu.runKernel(k);
    ASSERT_FALSE(targets.empty());
    double min_target = 8.0;
    for (double v : targets)
        min_target = std::min(min_target, v);
    EXPECT_LT(min_target, 8.0); // a decrease happened
    const double end_of_first = targets.back();

    targets.clear();
    gpu.runKernel(k);
    ASSERT_FALSE(targets.empty());
    // The second invocation starts from the carried-over target: its
    // first epoch can differ from the end of the first invocation only
    // by whatever that epoch itself changed (at most one step). (The
    // absolute value may be back at max: the drain tail legitimately
    // raises the target again when bandwidth stops being saturated.)
    EXPECT_NEAR(targets.front(), end_of_first, 1.0);
}

TEST(EqualizerEngine, NameReflectsMode)
{
    EqualizerEngine p(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    EqualizerEngine e(
        EqualizerConfig{EqualizerMode::Energy, 128, 4096, 3, 2.0});
    EXPECT_EQ(p.name(), "equalizer-perf");
    EXPECT_EQ(e.name(), "equalizer-energy");
}

} // namespace
} // namespace equalizer
