/**
 * @file
 * Tests for multi-tenant SM sharing (docs/MULTI_TENANT.md): partition
 * exclusivity, the token-bucket SM-utilization limiter, thread-count
 * bit-identity of co-runs, the deprecated runKernelsConcurrent() shim,
 * queued-invocation relaunch and mid-co-run checkpoint round-trips.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "harness/co_run.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "sim/parallel_executor.hh"
#include "test_streams.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name)
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

GpuConfig
smallGpu(int sms = 2)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    return cfg;
}

/** A compute-bound script long enough for block lifetime to dominate. */
std::vector<WarpInstruction>
denseScript(int length = 64)
{
    std::vector<WarpInstruction> script;
    for (int i = 0; i < length; ++i)
        script.push_back(aluInst(true));
    return script;
}

/** Field-by-field RunMetrics equality (bitwise, including doubles). */
void
expectSameMetrics(const RunMetrics &a, const RunMetrics &b,
                  bool compare_label = true,
                  bool compare_fast_forward = true)
{
    if (compare_label) {
        EXPECT_EQ(a.kernel, b.kernel);
    }
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.smCycles, b.smCycles);
    EXPECT_EQ(a.memCycles, b.memCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.dynamicJoules, b.dynamicJoules);
    EXPECT_EQ(a.staticJoules, b.staticJoules);
    EXPECT_EQ(a.outcomeTotals.active, b.outcomeTotals.active);
    EXPECT_EQ(a.outcomeTotals.waiting, b.outcomeTotals.waiting);
    EXPECT_EQ(a.outcomeTotals.issued, b.outcomeTotals.issued);
    EXPECT_EQ(a.outcomeTotals.excessAlu, b.outcomeTotals.excessAlu);
    EXPECT_EQ(a.outcomeTotals.excessMem, b.outcomeTotals.excessMem);
    EXPECT_EQ(a.outcomeTotals.barrier, b.outcomeTotals.barrier);
    EXPECT_EQ(a.outcomeTotals.unaccounted, b.outcomeTotals.unaccounted);
    EXPECT_EQ(a.outcomeCycles, b.outcomeCycles);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.dramRowHits, b.dramRowHits);
    EXPECT_EQ(a.dramPowerDownFraction, b.dramPowerDownFraction);
    if (compare_fast_forward) {
        EXPECT_EQ(a.fastForwardedCycles, b.fastForwardedCycles);
    }
    for (int i = 0; i < numVfStates; ++i) {
        const auto s = static_cast<std::size_t>(i);
        EXPECT_EQ(a.smResidency[s], b.smResidency[s]);
        EXPECT_EQ(a.memResidency[s], b.memResidency[s]);
    }
}

// ------------------------------------------------------------- partition

TEST(MultiTenantPartition, RoundRobinInterleavesAndCoversAllSms)
{
    GpuTop gpu(smallGpu(7));
    gpu.configureTenants({{"a", 1.0}, {"b", 1.0}, {"c", 1.0}},
                         PartitionPolicy::RoundRobin);
    ASSERT_EQ(gpu.numTenants(), 3);

    std::vector<int> owner(7, -1);
    for (int t = 0; t < 3; ++t) {
        for (int s : gpu.tenant(t).smSet()) {
            EXPECT_EQ(owner[static_cast<std::size_t>(s)], -1)
                << "SM " << s << " owned twice";
            owner[static_cast<std::size_t>(s)] = t;
        }
    }
    for (int s = 0; s < 7; ++s)
        EXPECT_EQ(owner[static_cast<std::size_t>(s)], s % 3);

    gpu.configureTenants({});
    EXPECT_FALSE(gpu.explicitTenants());
    EXPECT_EQ(gpu.numTenants(), 1);
    EXPECT_EQ(gpu.tenant(0).smSet().size(), 7u);
}

TEST(MultiTenantPartition, BlockedStripesAreContiguousAndExclusive)
{
    GpuTop gpu(smallGpu(7));
    gpu.configureTenants({{"a", 1.0}, {"b", 1.0}},
                         PartitionPolicy::Blocked);

    std::vector<int> owner(7, -1);
    for (int t = 0; t < 2; ++t) {
        for (int s : gpu.tenant(t).smSet()) {
            EXPECT_EQ(owner[static_cast<std::size_t>(s)], -1);
            owner[static_cast<std::size_t>(s)] = t;
        }
    }
    // Stripes are contiguous: once the owner steps up it never drops.
    for (int s = 1; s < 7; ++s) {
        EXPECT_NE(owner[static_cast<std::size_t>(s)], -1);
        EXPECT_GE(owner[static_cast<std::size_t>(s)],
                  owner[static_cast<std::size_t>(s - 1)]);
    }
    EXPECT_EQ(partitionPolicyFromName("rr"), PartitionPolicy::RoundRobin);
    EXPECT_EQ(partitionPolicyFromName("blocked"),
              PartitionPolicy::Blocked);
    gpu.configureTenants({});
}

TEST(MultiTenantPartition, InvocationsNeverLeaveTheirSmSet)
{
    GpuTop gpu(smallGpu(4));
    gpu.configureTenants({{"a", 1.0}, {"b", 1.0}},
                         PartitionPolicy::RoundRobin);

    ScriptedKernel ka(info(40, 2, 4, "pa"), denseScript());
    ScriptedKernel kb(info(40, 2, 4, "pb"), denseScript());
    gpu.enqueueKernel(0, ka);
    gpu.enqueueKernel(1, kb);

    int violations = 0;
    gpu.setCycleObserver([&violations](GpuTop &g) {
        for (int s = 0; s < g.numSms(); ++s) {
            const int idx = g.invocationOnSm(s);
            if (idx < 0)
                continue;
            const auto &inv = g.invocations()[
                static_cast<std::size_t>(idx)];
            // RoundRobin on 4 SMs: tenant 0 owns {0, 2}, 1 owns {1, 3}.
            if (inv.tenantId() != s % 2)
                ++violations;
        }
    });
    const RunMetrics m = gpu.runTenants();
    gpu.setCycleObserver(nullptr);
    gpu.configureTenants({});

    EXPECT_EQ(violations, 0);
    EXPECT_EQ(m.kernel, "concurrent:pa:pb");
    for (const auto &inv : gpu.invocations())
        EXPECT_EQ(inv.blocksCompleted(), 40u);
}

// --------------------------------------------------------------- limiter

TEST(MultiTenantLimiter, HalfLimitHoldsDispatchShareNearHalf)
{
    GpuTop gpu(smallGpu(4));
    gpu.configureTenants({{"capped", 0.5}, {"free", 1.0}},
                         PartitionPolicy::RoundRobin);
    ASSERT_TRUE(gpu.tenant(0).limited());
    ASSERT_FALSE(gpu.tenant(1).limited());

    ScriptedKernel ka(info(800, 2, 8, "la"), denseScript());
    ScriptedKernel kb(info(800, 2, 8, "lb"), denseScript());
    gpu.enqueueKernel(0, ka);
    gpu.enqueueKernel(1, kb);

    // Sample both dispatch counters the first time the unlimited
    // tenant crosses 400 blocks -- late enough that the initial
    // burst-capacity fill has washed out, early enough that both
    // grids still have work, so the rates are directly comparable.
    std::uint64_t capped_at_mark = 0, free_at_mark = 0;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (free_at_mark == 0 && g.tenant(1).dispatchedBlocks() >= 400) {
            capped_at_mark = g.tenant(0).dispatchedBlocks();
            free_at_mark = g.tenant(1).dispatchedBlocks();
        }
    });
    gpu.runTenants();
    gpu.setCycleObserver(nullptr);

    ASSERT_GT(free_at_mark, 0u);
    const double share = static_cast<double>(capped_at_mark) /
                         static_cast<double>(free_at_mark);
    EXPECT_GE(share, 0.45) << capped_at_mark << " vs " << free_at_mark;
    EXPECT_LE(share, 0.55) << capped_at_mark << " vs " << free_at_mark;

    // The limiter throttles occupancy, not completion: both grids
    // drain fully, and the capped tenant logs throttled cycles.
    EXPECT_GT(gpu.tenant(0).limitedCycles(), 0u);
    EXPECT_EQ(gpu.tenant(1).limitedCycles(), 0u);
    for (const auto &inv : gpu.invocations())
        EXPECT_EQ(inv.blocksCompleted(), 800u);

    // Occupancy over the whole run also sits near the cap.
    const double occ = gpu.tenant(0).occupancyShare();
    EXPECT_GE(occ, 0.40);
    EXPECT_LE(occ, 0.60);
    gpu.configureTenants({});
}

TEST(MultiTenantLimiter, UnlimitedTenantAccruesNoDebt)
{
    GpuTop gpu(smallGpu(2));
    gpu.configureTenants({{"a", 1.0}, {"b", 1.0}},
                         PartitionPolicy::RoundRobin);
    ScriptedKernel ka(info(30, 2, 4, "da"), denseScript());
    ScriptedKernel kb(info(30, 2, 4, "db"), denseScript());
    gpu.enqueueKernel(0, ka);
    gpu.enqueueKernel(1, kb);
    gpu.runTenants();
    EXPECT_EQ(gpu.tenant(0).limiterDebt(), 0.0);
    EXPECT_EQ(gpu.tenant(0).limitedCycles(), 0u);
    EXPECT_EQ(gpu.tenant(1).limiterDebt(), 0.0);
    gpu.configureTenants({});
}

// ------------------------------------------------- thread-count identity

TEST(MultiTenant, CoRunBitIdenticalAcrossThreadCounts)
{
    const std::vector<CoRunTenant> tenants = {
        {"lbm", 0.5, "t0"},
        {"kmn", 1.0, "t1"},
    };

    auto run = [&tenants](int threads, std::vector<std::uint8_t> &bytes) {
        MemoryTraceSink sink;
        TraceConfig tcfg;
        tcfg.epochCycles = 2048;
        Tracer tracer(tcfg, sink);
        GpuTop gpu(GpuConfig::gtx480());
        std::unique_ptr<ParallelExecutor> exec;
        if (threads != 1) {
            exec = std::make_unique<ParallelExecutor>(threads);
            gpu.setParallelExecutor(exec.get());
        }
        gpu.setTracer(&tracer);
        const CoRunResult r = runCoRun(gpu, tenants);
        gpu.setTracer(nullptr);
        tracer.finish();
        bytes = sink.serialize();
        return r;
    };

    std::vector<std::uint8_t> bytes1, bytes4;
    const CoRunResult r1 = run(1, bytes1);
    const CoRunResult r4 = run(4, bytes4);

    expectSameMetrics(r1.combined, r4.combined);
    ASSERT_EQ(r1.tenants.size(), r4.tenants.size());
    for (std::size_t i = 0; i < r1.tenants.size(); ++i) {
        const auto &a = r1.tenants[i];
        const auto &b = r4.tenants[i];
        EXPECT_EQ(a.dispatchedBlocks, b.dispatchedBlocks);
        EXPECT_EQ(a.blocksCompleted, b.blocksCompleted);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.busySmCycles, b.busySmCycles);
        EXPECT_EQ(a.limitedCycles, b.limitedCycles);
        EXPECT_EQ(a.elapsedCycles, b.elapsedCycles);
    }

    // Trace bytes -- including the per-tenant gauge samples drained on
    // the canonical serial path -- are identical across thread counts.
    EXPECT_EQ(bytes1, bytes4);

    // The per-tenant gauges are defined in the stream.
    const std::string blob(bytes1.begin(), bytes1.end());
    EXPECT_NE(blob.find("tenant.t0.dispatched_blocks"),
              std::string::npos);
    EXPECT_NE(blob.find("tenant.t1.occupancy_share"), std::string::npos);
    EXPECT_NE(blob.find("tenant.t0.limiter_debt"), std::string::npos);
}

// ------------------------------------------------------------------ shim

TEST(MultiTenantShim, SingleKernelMatchesRunKernel)
{
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 40; ++i) {
        script.push_back(loadInst(static_cast<Addr>(i) * 128));
        script.push_back(aluInst(true));
    }

    GpuTop direct(smallGpu(2));
    ScriptedKernel kd(info(24, 2, 4, "solo"), script);
    const RunMetrics md = direct.runKernel(kd);

    GpuTop shim(smallGpu(2));
    ScriptedKernel ks(info(24, 2, 4, "solo"), script);
    const RunMetrics ms = shim.runKernelsConcurrent({&ks});

    // Identical physics; only the label and the fast-forward
    // diagnostic differ (the shim path always ticks every cycle).
    EXPECT_EQ(md.kernel, "solo");
    EXPECT_EQ(ms.kernel, "concurrent:solo");
    expectSameMetrics(md, ms, /*compare_label=*/false,
                      /*compare_fast_forward=*/false);
    EXPECT_EQ(ms.fastForwardedCycles, 0u);

    // The shim restores the implicit whole-device tenant.
    EXPECT_FALSE(shim.explicitTenants());
    EXPECT_EQ(shim.numTenants(), 1);
}

TEST(MultiTenantShim, TwoKernelsKeepConcurrentLabelAndFinish)
{
    GpuTop gpu(smallGpu(2));
    ScriptedKernel ka(info(20, 2, 4, "ca"), denseScript());
    ScriptedKernel kb(info(20, 2, 4, "cb"), denseScript());
    const RunMetrics m = gpu.runKernelsConcurrent({&ka, &kb});
    EXPECT_EQ(m.kernel, "concurrent:ca:cb");
    EXPECT_GT(m.instructions, 0u);
    EXPECT_FALSE(gpu.explicitTenants());
}

// ------------------------------------------------------ queued relaunch

TEST(MultiTenant, QueuedInvocationsRelaunchUntilDrained)
{
    GpuTop gpu(smallGpu(2));
    gpu.configureTenants({{"a", 1.0}, {"b", 1.0}},
                         PartitionPolicy::RoundRobin);

    ScriptedKernel a0(info(12, 2, 4, "qa0"), denseScript());
    ScriptedKernel a1(info(18, 2, 4, "qa1"), denseScript());
    ScriptedKernel b0(info(15, 2, 4, "qb0"), denseScript());
    gpu.enqueueKernel(0, a0);
    gpu.enqueueKernel(0, a1);
    gpu.enqueueKernel(1, b0);

    const RunMetrics m = gpu.runTenants();
    EXPECT_EQ(m.kernel, "concurrent:qa0:qb0");

    // Tenant 0 ran both queued invocations back to back on its SM.
    ASSERT_EQ(gpu.invocations().size(), 3u);
    std::uint64_t tenant0_blocks = 0;
    for (const auto &inv : gpu.invocations()) {
        EXPECT_FALSE(inv.active());
        if (inv.tenantId() == 0)
            tenant0_blocks += inv.blocksCompleted();
    }
    EXPECT_EQ(tenant0_blocks, 30u);
    EXPECT_EQ(gpu.tenant(0).dispatchedBlocks(), 30u);
    EXPECT_EQ(gpu.tenant(1).dispatchedBlocks(), 15u);
    gpu.configureTenants({});
}

// ------------------------------------------------- mid-co-run checkpoint

TEST(MultiTenantCheckpoint, MidCoRunRoundTripIsBitIdentical)
{
    const GpuConfig gcfg = GpuConfig::gtx480();
    const KernelParams &pa = KernelZoo::byName("sgemm").params;
    const KernelParams &pb = KernelZoo::byName("lbm").params;
    const Cycle save_cycle = 9000;

    auto configure = [](GpuTop &g) {
        g.configureTenants({{"a", 0.75}, {"b", 1.0}},
                           PartitionPolicy::RoundRobin);
    };

    // Uninterrupted reference co-run.
    RunMetrics ref;
    std::uint64_t ref_dispatched[2] = {0, 0};
    {
        GpuTop gpu(gcfg);
        configure(gpu);
        SyntheticKernel ka(pa, 0), kb(pb, 0);
        gpu.enqueueKernel(0, ka);
        gpu.enqueueKernel(1, kb);
        ref = gpu.runTenants();
        ref_dispatched[0] = gpu.tenant(0).dispatchedBlocks();
        ref_dispatched[1] = gpu.tenant(1).dispatchedBlocks();
    }

    // Donor run, checkpointed mid-co-run.
    std::vector<std::uint8_t> saved;
    {
        GpuTop donor(gcfg);
        configure(donor);
        SyntheticKernel ka(pa, 0), kb(pb, 0);
        donor.enqueueKernel(0, ka);
        donor.enqueueKernel(1, kb);
        donor.setCycleObserver([&saved, save_cycle](GpuTop &g) {
            if (saved.empty() && g.smDomain().cycle() == save_cycle)
                saved = g.saveStateBuffer();
        });
        const RunMetrics donor_m = donor.runTenants();
        expectSameMetrics(ref, donor_m);
    }
    ASSERT_FALSE(saved.empty());

    // Restore into a fresh device and finish.
    {
        GpuTop gpu(gcfg);
        gpu.loadStateBuffer(saved);
        ASSERT_TRUE(gpu.midKernel());
        ASSERT_EQ(gpu.numTenants(), 2);
        ASSERT_TRUE(gpu.explicitTenants());
        ASSERT_EQ(gpu.invocations().size(), 2u);

        SyntheticKernel ka(pa, 0), kb(pb, 0);
        const RunMetrics resumed = gpu.resumeTenants({&ka, &kb});
        expectSameMetrics(ref, resumed);
        EXPECT_EQ(gpu.tenant(0).dispatchedBlocks(), ref_dispatched[0]);
        EXPECT_EQ(gpu.tenant(1).dispatchedBlocks(), ref_dispatched[1]);
    }
}

} // namespace
} // namespace equalizer
