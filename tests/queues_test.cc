/**
 * @file
 * Unit tests for the bounded/delay queue building blocks.
 */

#include <gtest/gtest.h>

#include "mem/queues.hh"

namespace equalizer
{
namespace
{

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(*q.pop(), 1);
    EXPECT_EQ(*q.pop(), 2);
    EXPECT_EQ(*q.pop(), 3);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, RejectsWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_FALSE(q.full());
    EXPECT_TRUE(q.push(3));
}

TEST(BoundedQueue, FrontPeeksWithoutPopping)
{
    BoundedQueue<int> q(2);
    q.push(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, ClearEmpties)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueDeath, FrontOnEmptyPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_DEATH(q.front(), "empty");
}

TEST(DelayQueue, HonorsReadyTimes)
{
    DelayQueue<int> q(8);
    EXPECT_TRUE(q.push(1, 10));
    EXPECT_TRUE(q.push(2, 20));
    EXPECT_FALSE(q.headReady(9));
    EXPECT_TRUE(q.headReady(10));
    EXPECT_EQ(*q.popReady(10), 1);
    EXPECT_FALSE(q.popReady(15).has_value());
    EXPECT_EQ(*q.popReady(25), 2);
}

TEST(DelayQueue, RejectsWhenFull)
{
    DelayQueue<int> q(1);
    EXPECT_TRUE(q.push(1, 0));
    EXPECT_FALSE(q.push(2, 5));
    EXPECT_EQ(q.size(), 1u);
}

TEST(DelayQueue, SameReadyTimeKeepsFifo)
{
    DelayQueue<int> q(4);
    q.push(1, 5);
    q.push(2, 5);
    EXPECT_EQ(*q.popReady(5), 1);
    EXPECT_EQ(*q.popReady(5), 2);
}

TEST(DelayQueueDeath, RejectsDecreasingReadyTimes)
{
    DelayQueue<int> q(4);
    q.push(1, 10);
    EXPECT_DEATH(q.push(2, 5), "non-decreasing");
}

TEST(DelayQueue, ClearEmpties)
{
    DelayQueue<int> q(4);
    q.push(1, 1);
    q.clear();
    EXPECT_TRUE(q.empty());
    // After a clear, earlier ready times are acceptable again.
    EXPECT_TRUE(q.push(2, 0));
}

/** Property sweep: random push/pop sequences preserve count and order. */
class BoundedQueueProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BoundedQueueProperty, NeverExceedsCapacityAndStaysFifo)
{
    const int cap = GetParam();
    BoundedQueue<int> q(static_cast<std::size_t>(cap));
    int next_in = 0;
    int next_out = 0;
    unsigned state = 12345u + static_cast<unsigned>(cap);
    for (int step = 0; step < 2000; ++step) {
        state = state * 1664525u + 1013904223u;
        if (state & 1) {
            if (q.push(next_in))
                ++next_in;
            else
                EXPECT_EQ(q.size(), static_cast<std::size_t>(cap));
        } else {
            auto v = q.pop();
            if (v) {
                EXPECT_EQ(*v, next_out);
                ++next_out;
            } else {
                EXPECT_TRUE(q.empty());
            }
        }
        EXPECT_LE(q.size(), static_cast<std::size_t>(cap));
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BoundedQueueProperty,
                         ::testing::Values(1, 2, 4, 8, 64));

} // namespace
} // namespace equalizer
