/**
 * @file
 * Tests for the autotune subsystem (docs/AUTOTUNE.md): occupancy
 * calculator boundary cases, the epsilon-Pareto frontier, structural
 * monotonicity of the fitted model across the synthetic zoo, and the
 * model-guided sweep's determinism and exactness contracts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autotune/autotuner.hh"
#include "autotune/features.hh"
#include "autotune/model.hh"
#include "autotune/occupancy.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

using namespace equalizer;

namespace
{

SmResources
gtx480Sm()
{
    return SmResources::fromConfig(GpuConfig::gtx480());
}

/** A plan over bp-1's tail with a small explicit grid. */
SweepPlan
smallPlan(SweepStrategy strategy)
{
    SweepPlan plan;
    plan.kernel = KernelZoo::byName("bp-1").params;
    plan.kernel.invocations.assign(3, InvocationMod{});
    plan.strategy = strategy;
    plan.prefixPolicy = policies::baseline();
    plan.prefixInvocations = 2;
    plan.grid.smStates = {VfState::Low, VfState::High};
    plan.grid.memStates = {VfState::Normal};
    plan.grid.blocks = {1, 2};
    return plan;
}

} // namespace

// --------------------------------------------------------------------
// Occupancy calculator

TEST(Occupancy, BlockSlotLimited)
{
    // One warp per block, no other pressure: the 8 block slots bind
    // long before the 48 warp slots.
    BlockRequirements block;
    block.warpsPerBlock = 1;
    const OccupancyResult r = computeOccupancy(gtx480Sm(), block);
    EXPECT_EQ(r.blocksPerSm, 8);
    EXPECT_EQ(r.limiter, OccupancyLimiter::BlockSlots);
    EXPECT_EQ(r.activeWarps, 8);
    EXPECT_NEAR(r.occupancy, 8.0 / 48.0, 1e-12);
}

TEST(Occupancy, WarpLimited)
{
    // 16 warps per block: 48 / 16 = 3 blocks, under the 8 block slots.
    BlockRequirements block;
    block.warpsPerBlock = 16;
    const OccupancyResult r = computeOccupancy(gtx480Sm(), block);
    EXPECT_EQ(r.blocksPerSm, 3);
    EXPECT_EQ(r.limiter, OccupancyLimiter::Warps);
    EXPECT_EQ(r.activeWarps, 48);
    EXPECT_NEAR(r.occupancy, 1.0, 1e-12);
}

TEST(Occupancy, RegisterLimited)
{
    // 8 warps x 32 regs x 32 threads = 8192 registers per block out of
    // a 32 K file: 4 blocks, tighter than warps (48/8 = 6) and slots.
    BlockRequirements block;
    block.warpsPerBlock = 8;
    block.regsPerThread = 32;
    const OccupancyResult r = computeOccupancy(gtx480Sm(), block);
    EXPECT_EQ(r.blocksPerSm, 4);
    EXPECT_EQ(r.limiter, OccupancyLimiter::Registers);
}

TEST(Occupancy, RegisterAllocGranularityRoundsUp)
{
    // 33 regs/thread = 1056 per warp, which rounds up to 1088 in
    // 64-register units: 4 warps -> 4352/block -> 7 blocks, not the 7.7
    // a granularity-free division would suggest.
    BlockRequirements block;
    block.warpsPerBlock = 4;
    block.regsPerThread = 33;
    const OccupancyResult r = computeOccupancy(gtx480Sm(), block);
    EXPECT_EQ(r.blocksPerSm, 7);
    EXPECT_EQ(r.limiter, OccupancyLimiter::Registers);
}

TEST(Occupancy, SharedMemLimited)
{
    // 16 KiB of shared memory per block out of 48 KiB: 3 blocks,
    // tighter than warps (48/4 = 12) and block slots.
    BlockRequirements block;
    block.warpsPerBlock = 4;
    block.smemPerBlock = 16384;
    const OccupancyResult r = computeOccupancy(gtx480Sm(), block);
    EXPECT_EQ(r.blocksPerSm, 3);
    EXPECT_EQ(r.limiter, OccupancyLimiter::SharedMem);
}

TEST(Occupancy, TieBreaksInDeclarationOrder)
{
    // Block slots and warps both allow exactly 3: the reported limiter
    // is the earlier-declared one (BlockSlots).
    SmResources sm = gtx480Sm();
    sm.maxBlocks = 3;
    BlockRequirements block;
    block.warpsPerBlock = 16;
    const OccupancyResult r = computeOccupancy(sm, block);
    EXPECT_EQ(r.blocksPerSm, 3);
    EXPECT_EQ(r.limiter, OccupancyLimiter::BlockSlots);
}

TEST(OccupancyDeath, RejectsImpossibleInputs)
{
    const SmResources sm = gtx480Sm();

    BlockRequirements zero_warps;
    zero_warps.warpsPerBlock = 0;
    EXPECT_DEATH(computeOccupancy(sm, zero_warps), "warpsPerBlock");

    BlockRequirements too_wide;
    too_wide.warpsPerBlock = 64; // > 48 warp slots: never fits
    EXPECT_DEATH(computeOccupancy(sm, too_wide), "does not fit");

    BlockRequirements reg_hog;
    reg_hog.warpsPerBlock = 1;
    reg_hog.regsPerThread = 4096; // 131072 regs > the 32 K file
    EXPECT_DEATH(computeOccupancy(sm, reg_hog), "register");

    BlockRequirements smem_hog;
    smem_hog.warpsPerBlock = 1;
    smem_hog.smemPerBlock = 65536; // > 48 KiB pool
    EXPECT_DEATH(computeOccupancy(sm, smem_hog), "shared-memory");

    SmResources no_slots = sm;
    no_slots.maxWarps = 0;
    BlockRequirements ok;
    ok.warpsPerBlock = 1;
    EXPECT_DEATH(computeOccupancy(no_slots, ok), "slots");
}

TEST(Occupancy, WavesForGrid)
{
    // lbm: 120 blocks over 15 SMs = 8 per SM; at 4 concurrent = 2
    // waves, at 7 concurrent = 2 waves, at 8 = 1.
    EXPECT_EQ(wavesForGrid(120, 15, 4), 2);
    EXPECT_EQ(wavesForGrid(120, 15, 7), 2);
    EXPECT_EQ(wavesForGrid(120, 15, 8), 1);
    EXPECT_EQ(wavesForGrid(1, 15, 8), 1);
    EXPECT_DEATH(wavesForGrid(120, 0, 4), "positive");
}

TEST(Occupancy, EffectiveMaxBlocksRespectsTableTwoAcrossZoo)
{
    // The sweepable CTA axis never exceeds the kernel's Table II
    // residency limit or the device block slots, and always admits at
    // least one block.
    const GpuConfig cfg = GpuConfig::gtx480();
    for (const auto &entry : KernelZoo::all()) {
        const int eff = effectiveMaxBlocks(cfg, entry.params);
        EXPECT_GE(eff, 1) << entry.params.name;
        EXPECT_LE(eff, entry.params.maxBlocksPerSm) << entry.params.name;
        EXPECT_LE(eff, cfg.maxBlocksPerSm) << entry.params.name;
    }
}

// --------------------------------------------------------------------
// Pareto frontier

TEST(Pareto, ExactFrontierDropsDominatedPoints)
{
    // (1,3) and (3,1) trade off; (2,2) survives too (neither beats it
    // on both axes); (4,4) is dominated by everything.
    const std::vector<std::pair<double, double>> pts = {
        {1.0, 3.0}, {3.0, 1.0}, {2.0, 2.0}, {4.0, 4.0}};
    const std::vector<std::size_t> f = paretoFrontier(pts, 0.0);
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, AxisMinimaAlwaysSurvive)
{
    const std::vector<std::pair<double, double>> pts = {
        {1.0, 100.0}, {100.0, 1.0}, {50.0, 50.0}};
    const std::vector<std::size_t> f = paretoFrontier(pts, 0.0);
    ASSERT_GE(f.size(), 2u);
    EXPECT_EQ(f[0], 0u);
    EXPECT_EQ(f[1], 1u);
}

TEST(Pareto, SlackKeepsNearFrontierPoints)
{
    // (1.04, 1.04) is strictly dominated by (1, 1) but within a 5%
    // band on both axes, so slack 0.05 keeps it and slack 0 drops it.
    const std::vector<std::pair<double, double>> pts = {
        {1.0, 1.0}, {1.04, 1.04}, {2.0, 2.0}};
    EXPECT_EQ(paretoFrontier(pts, 0.0),
              (std::vector<std::size_t>{0}));
    EXPECT_EQ(paretoFrontier(pts, 0.05),
              (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoDeath, RejectsNegativeSlack)
{
    EXPECT_DEATH(paretoFrontier({{1.0, 1.0}}, -0.1), "non-negative");
}

// --------------------------------------------------------------------
// Model monotonicity across the synthetic zoo

namespace
{

/**
 * Analytic ground-truth samples spanning the VF grid and CTA axis,
 * with per-kernel constants derived from the zoo entry so every fit
 * sees a different surface shape.
 */
std::vector<MeasuredSample>
zooShapedSamples(const KernelParams &params, int max_cta)
{
    const double mem_share =
        1e-4 * (1.0 + params.warpsPerBlock / 8.0);
    const double alu_share = 1e-4 * (1.0 + params.instrsPerWarp / 500.0);
    const double wave_share = 5e-5 * params.totalBlocks / 60.0;

    std::vector<MeasuredSample> samples;
    for (VfState sm : {VfState::Low, VfState::Normal, VfState::High}) {
        for (VfState mem :
             {VfState::Low, VfState::Normal, VfState::High}) {
            for (int c = 1; c <= max_cta; ++c) {
                const double x = frequencyScale(sm);
                const double m = frequencyScale(mem);
                MeasuredSample s;
                s.point = OperatingPoint{sm, mem, c};
                s.seconds = mem_share / m + alu_share / x +
                            wave_share / (c * m);
                s.joules = 0.01 + 0.004 * x * x + 0.003 * m * m +
                           5.0 * s.seconds;
                samples.push_back(s);
            }
        }
    }
    return samples;
}

} // namespace

TEST(Model, MonotonicInFrequenciesAcrossZoo)
{
    // Non-negative coefficients over {1/m, 1/x, ...} bases make this
    // structural: raising either clock never predicts a slowdown, and
    // predicted SM cycles never shrink when the SM clock rises.
    const GpuConfig cfg = GpuConfig::gtx480();
    const std::vector<VfState> order = {VfState::Low, VfState::Normal,
                                        VfState::High};
    for (const auto &entry : KernelZoo::all()) {
        const int max_cta = effectiveMaxBlocks(cfg, entry.params);
        const SweepModel model = SweepModel::fit(
            zooShapedSamples(entry.params, max_cta), cfg.smNominalHz);
        EXPECT_LT(model.fitErrorSeconds(), 0.05) << entry.params.name;

        for (int c = 1; c <= max_cta; ++c) {
            for (std::size_t i = 1; i < order.size(); ++i) {
                for (VfState other : order) {
                    const OperatingPoint slow{order[i - 1], other, c};
                    const OperatingPoint fast{order[i], other, c};
                    EXPECT_LE(model.predictSeconds(fast),
                              model.predictSeconds(slow) + 1e-12)
                        << entry.params.name << " sm-axis cta " << c;
                    EXPECT_GE(model.predictCycles(fast),
                              model.predictCycles(slow) - 1e-9)
                        << entry.params.name << " cycles cta " << c;

                    const OperatingPoint mem_slow{other, order[i - 1],
                                                  c};
                    const OperatingPoint mem_fast{other, order[i], c};
                    EXPECT_LE(model.predictSeconds(mem_fast),
                              model.predictSeconds(mem_slow) + 1e-12)
                        << entry.params.name << " mem-axis cta " << c;
                }
            }
        }
    }
}

TEST(ModelDeath, RejectsEmptyFit)
{
    EXPECT_DEATH(SweepModel::fit({}, 700e6), "at least one");
}

// --------------------------------------------------------------------
// Grid expansion and probe selection

TEST(SweepGridExpansion, StableSmMajorOrder)
{
    SweepGrid grid;
    grid.smStates = {VfState::Low, VfState::High};
    grid.memStates = {VfState::Normal};
    grid.blocks = {1, 2};
    const auto points = expandSweepGrid(
        GpuConfig::gtx480(), KernelZoo::byName("bp-1").params, grid);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0], (OperatingPoint{VfState::Low, VfState::Normal,
                                         1}));
    EXPECT_EQ(points[1], (OperatingPoint{VfState::Low, VfState::Normal,
                                         2}));
    EXPECT_EQ(points[2], (OperatingPoint{VfState::High, VfState::Normal,
                                         1}));
    EXPECT_EQ(points[3], (OperatingPoint{VfState::High, VfState::Normal,
                                         2}));
}

TEST(SweepGridExpansion, EmptyBlocksUsesOccupancyBound)
{
    SweepGrid grid; // default 3x3 states, empty blocks
    const GpuConfig cfg = GpuConfig::gtx480();
    const KernelParams &params = KernelZoo::byName("lbm").params;
    const auto points = expandSweepGrid(cfg, params, grid);
    EXPECT_EQ(static_cast<int>(points.size()),
              9 * effectiveMaxBlocks(cfg, params));
}

TEST(ProbeSelection, SpreadsRatiosAndCtas)
{
    // Six probes over a 3x3x7 grid must cover both extreme frequency
    // ratios and three distinct CTA values — the spread that makes the
    // six-term time fit well-conditioned.
    SweepGrid grid;
    const auto points = expandSweepGrid(
        GpuConfig::gtx480(), KernelZoo::byName("lbm").params, grid);
    const auto probes = selectProbePoints(points, grid, 6);
    ASSERT_EQ(probes.size(), 6u);

    std::vector<int> ctas;
    int low_high = 0, high_low = 0;
    for (const auto &p : probes) {
        if (std::find(ctas.begin(), ctas.end(), p.cta) == ctas.end())
            ctas.push_back(p.cta);
        low_high += p.smVf == VfState::Low && p.memVf == VfState::High;
        high_low += p.smVf == VfState::High && p.memVf == VfState::Low;
    }
    EXPECT_EQ(ctas.size(), 3u);
    EXPECT_EQ(low_high, 3);
    EXPECT_EQ(high_low, 3);
}

TEST(ProbeSelection, BudgetClampsToGrid)
{
    SweepGrid grid;
    grid.smStates = {VfState::Normal};
    grid.memStates = {VfState::Normal};
    grid.blocks = {1, 2};
    const auto points = expandSweepGrid(
        GpuConfig::gtx480(), KernelZoo::byName("bp-1").params, grid);
    EXPECT_EQ(selectProbePoints(points, grid, 10).size(), 2u);
}

// --------------------------------------------------------------------
// Sweep API contracts (simulation-backed; bp-1 is the cheap kernel)

TEST(SweepApi, ShimsMatchPlans)
{
    // The deprecated entry points are byte-identical shims over
    // runSweep(): same points, same totals, same counters.
    const std::vector<PolicySpec> points = {
        policies::operatingPoint(VfState::High, VfState::Normal, 2)};
    SweepPlan plan = smallPlan(SweepStrategy::Warm);
    plan.grid = SweepGrid{};
    plan.points = points;

    ExperimentRunner a;
    SweepResult via_shim = a.runWarmSweep(plan.kernel, plan.prefixPolicy,
                                          plan.prefixInvocations, points);
    ExperimentRunner b;
    SweepResult via_plan = b.runSweep(plan);

    ASSERT_EQ(via_shim.points.size(), via_plan.points.size());
    EXPECT_EQ(via_shim.points[0].total.smCycles,
              via_plan.points[0].total.smCycles);
    EXPECT_EQ(via_shim.points[0].total.instructions,
              via_plan.points[0].total.instructions);
    EXPECT_EQ(via_shim.points[0].total.dynamicJoules,
              via_plan.points[0].total.dynamicJoules);
    EXPECT_TRUE(via_shim.table.empty());
    EXPECT_TRUE(via_plan.table.empty());
    EXPECT_EQ(via_shim.stats.counterValue("sweep.forks"),
              via_plan.stats.counterValue("sweep.forks"));
}

TEST(SweepApi, ModelSweepMeasurementsMatchExhaustive)
{
    // On a grid small enough that the model simulates every point, the
    // model sweep's measured values and winners must equal the warm
    // exhaustive sweep's bit for bit — the feature tracer on probe 0
    // must be purely observational.
    ExperimentRunner warm_runner;
    const SweepResult exhaustive =
        warm_runner.runSweep(smallPlan(SweepStrategy::Warm));
    ExperimentRunner model_runner;
    const SweepResult model =
        model_runner.runSweep(smallPlan(SweepStrategy::Model));

    ASSERT_EQ(exhaustive.table.size(), 4u);
    ASSERT_EQ(model.table.size(), 4u);
    for (std::size_t i = 0; i < model.table.size(); ++i) {
        EXPECT_TRUE(model.table[i].simulated) << i;
        EXPECT_EQ(model.table[i].policy, exhaustive.table[i].policy);
        EXPECT_EQ(model.table[i].measuredSeconds,
                  exhaustive.table[i].measuredSeconds) << i;
        EXPECT_EQ(model.table[i].measuredCycles,
                  exhaustive.table[i].measuredCycles) << i;
        EXPECT_EQ(model.table[i].measuredJoules,
                  exhaustive.table[i].measuredJoules) << i;
    }
    EXPECT_EQ(model.bestPerf, exhaustive.bestPerf);
    EXPECT_EQ(model.bestEnergy, exhaustive.bestEnergy);
    EXPECT_GT(model.probeEpochSamples, 0u);
}

TEST(AutotuneDeterminism, ModelSweepIdenticalAcrossThreads)
{
    // The whole model pipeline — probes, fit, frontier, extra sims —
    // must be bit-identical whether the SMs tick serially or on two
    // workers.
    ExperimentRunner serial(GpuConfig::gtx480(), PowerConfig::gtx480(),
                            1);
    ExperimentRunner parallel(GpuConfig::gtx480(),
                              PowerConfig::gtx480(), 2);
    const SweepResult a =
        serial.runSweep(smallPlan(SweepStrategy::Model));
    const SweepResult b =
        parallel.runSweep(smallPlan(SweepStrategy::Model));

    ASSERT_EQ(a.table.size(), b.table.size());
    for (std::size_t i = 0; i < a.table.size(); ++i) {
        EXPECT_EQ(a.table[i].simulated, b.table[i].simulated) << i;
        EXPECT_EQ(a.table[i].predictedSeconds,
                  b.table[i].predictedSeconds) << i;
        EXPECT_EQ(a.table[i].predictedJoules,
                  b.table[i].predictedJoules) << i;
        EXPECT_EQ(a.table[i].measuredSeconds, b.table[i].measuredSeconds)
            << i;
        EXPECT_EQ(a.table[i].measuredJoules, b.table[i].measuredJoules)
            << i;
    }
    EXPECT_EQ(a.bestPerf, b.bestPerf);
    EXPECT_EQ(a.bestEnergy, b.bestEnergy);
    EXPECT_EQ(a.fitErrorSeconds, b.fitErrorSeconds);
    EXPECT_EQ(a.probeEpochSamples, b.probeEpochSamples);
}

TEST(SweepApi, BestRowSelection)
{
    std::vector<SweepPointRow> table(3);
    for (int i = 0; i < 3; ++i) {
        table[static_cast<std::size_t>(i)].id = i;
        table[static_cast<std::size_t>(i)].simulated = true;
    }
    table[0].measuredSeconds = 2.0;
    table[1].measuredSeconds = 1.0;
    table[2].measuredSeconds = 1.0; // tie: lower id wins
    table[0].measuredJoules = 0.5;
    table[1].measuredJoules = 0.7;
    table[2].measuredJoules = 0.6;
    EXPECT_EQ(bestSweepRow(table, false), 1);
    EXPECT_EQ(bestSweepRow(table, true), 0);

    table[0].simulated = false; // unsimulated rows never win
    EXPECT_EQ(bestSweepRow(table, true), 2);
    EXPECT_EQ(bestSweepRow({}, false), -1);
}

// --------------------------------------------------------------------
// Static features

TEST(Features, StaticFeaturesMatchZooParameters)
{
    const GpuConfig cfg = GpuConfig::gtx480();
    const KernelParams &lbm = KernelZoo::byName("lbm").params;
    const StaticFeatures f = extractStaticFeatures(cfg, lbm);
    EXPECT_EQ(f.warpsPerBlock, lbm.warpsPerBlock);
    EXPECT_EQ(f.totalBlocks, lbm.totalBlocks);
    EXPECT_EQ(f.numSms, cfg.numSms);
    EXPECT_EQ(f.maxBlocksPerSm, effectiveMaxBlocks(cfg, lbm));
    EXPECT_GT(f.occupancy, 0.0);
    // Wave counts shrink (weakly) as concurrency grows.
    for (int c = 2; c <= f.maxBlocksPerSm; ++c)
        EXPECT_LE(f.wavesAt(c), f.wavesAt(c - 1)) << c;
}
