/**
 * @file
 * Tests for the parallel per-SM execution path: ParallelExecutor
 * mechanics, bit-exact determinism of multi-threaded simulation against
 * the serial oracle, and the epoch-barrier ordering of the staged
 * SM->L2 injection queues.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpu/gpu_top.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "mem/memory_system.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{
namespace
{

// --- ParallelExecutor mechanics ---------------------------------------

TEST(ParallelExecutor, ChunksPartitionTheRange)
{
    for (int threads : {1, 2, 3, 4, 8}) {
        for (int n : {0, 1, 2, 7, 15, 16, 100}) {
            std::vector<int> covered(static_cast<std::size_t>(n), 0);
            int prev_hi = 0;
            for (int w = 0; w < threads; ++w) {
                const auto [lo, hi] =
                    ParallelExecutor::chunkOf(w, threads, n);
                EXPECT_EQ(lo, prev_hi); // contiguous, in worker order
                prev_hi = hi;
                for (int i = lo; i < hi; ++i)
                    ++covered[static_cast<std::size_t>(i)];
            }
            EXPECT_EQ(prev_hi, n);
            for (int c : covered)
                EXPECT_EQ(c, 1); // each index exactly once
        }
    }
}

TEST(ParallelExecutor, RunsEveryIndexOnce)
{
    ParallelExecutor exec(4);
    EXPECT_EQ(exec.threads(), 4);

    const int n = 1000;
    std::vector<std::atomic<int>> hits(n);
    exec.parallelFor(n, [&hits](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, ReusableAcrossEpochs)
{
    ParallelExecutor exec(3);
    std::atomic<long> sum{0};
    const int rounds = 200;
    for (int r = 0; r < rounds; ++r)
        exec.parallelFor(16, [&sum](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), static_cast<long>(rounds) * (15 * 16 / 2));
    EXPECT_EQ(exec.epochsDispatched(),
              static_cast<std::uint64_t>(rounds));
}

TEST(ParallelExecutor, SingleThreadRunsInline)
{
    ParallelExecutor exec(1);
    EXPECT_EQ(exec.threads(), 1);
    int calls = 0;
    exec.parallelFor(5, [&calls](int) { ++calls; });
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(exec.epochsDispatched(), 0u); // never woke the pool
}

TEST(ParallelExecutor, HardwareThreadsIsPositive)
{
    EXPECT_GE(ParallelExecutor::hardwareThreads(), 1);
}

// --- Bit-exact determinism against the serial oracle ------------------

/** Every field of RunMetrics, compared exactly (doubles bit-for-bit). */
void
expectIdenticalMetrics(const RunMetrics &serial, const RunMetrics &par)
{
    EXPECT_EQ(serial.smCycles, par.smCycles);
    EXPECT_EQ(serial.memCycles, par.memCycles);
    EXPECT_EQ(serial.instructions, par.instructions);
    EXPECT_EQ(serial.seconds, par.seconds);
    EXPECT_EQ(serial.dynamicJoules, par.dynamicJoules);
    EXPECT_EQ(serial.staticJoules, par.staticJoules);
    EXPECT_EQ(serial.dramPowerDownFraction, par.dramPowerDownFraction);
    EXPECT_EQ(serial.l1Hits, par.l1Hits);
    EXPECT_EQ(serial.l1Misses, par.l1Misses);
    EXPECT_EQ(serial.l2Hits, par.l2Hits);
    EXPECT_EQ(serial.l2Misses, par.l2Misses);
    EXPECT_EQ(serial.dramAccesses, par.dramAccesses);
    EXPECT_EQ(serial.dramRowHits, par.dramRowHits);
    EXPECT_EQ(serial.outcomeCycles, par.outcomeCycles);
    EXPECT_EQ(serial.outcomeTotals.active, par.outcomeTotals.active);
    EXPECT_EQ(serial.outcomeTotals.waiting, par.outcomeTotals.waiting);
    EXPECT_EQ(serial.outcomeTotals.issued, par.outcomeTotals.issued);
    EXPECT_EQ(serial.outcomeTotals.excessAlu,
              par.outcomeTotals.excessAlu);
    EXPECT_EQ(serial.outcomeTotals.excessMem,
              par.outcomeTotals.excessMem);
    EXPECT_EQ(serial.outcomeTotals.barrier, par.outcomeTotals.barrier);
    for (int i = 0; i < numVfStates; ++i) {
        const auto s = static_cast<std::size_t>(i);
        EXPECT_EQ(serial.smResidency[s], par.smResidency[s]);
        EXPECT_EQ(serial.memResidency[s], par.memResidency[s]);
    }
}

class ParallelDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ParallelDeterminism, MetricsMatchSerialOracle)
{
    const std::string kernel = GetParam();
    ExperimentRunner serial(GpuConfig::gtx480(), PowerConfig::gtx480(),
                            /*threads=*/1);
    ExperimentRunner parallel(GpuConfig::gtx480(), PowerConfig::gtx480(),
                              /*threads=*/4);
    ASSERT_EQ(serial.threads(), 1);
    ASSERT_EQ(parallel.threads(), 4);

    const auto s = serial.runByName(kernel, policies::baseline());
    const auto p = parallel.runByName(kernel, policies::baseline());
    ASSERT_EQ(s.invocations.size(), p.invocations.size());
    expectIdenticalMetrics(s.total, p.total);
    for (std::size_t i = 0; i < s.invocations.size(); ++i)
        expectIdenticalMetrics(s.invocations[i], p.invocations[i]);
}

// One kernel-zoo workload per paper category that the tuning studies
// sweep: compute-, memory- and cache-sensitive.
INSTANTIATE_TEST_SUITE_P(KernelZoo, ParallelDeterminism,
                         ::testing::Values("sgemm", "lbm", "kmn"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(ParallelDeterminismPolicies, EqualizerPerfMatchesSerialOracle)
{
    // The DVFS vote + CTA throttling path: controller decisions feed
    // back into SM state, so any divergence would compound visibly.
    ExperimentRunner serial(GpuConfig::gtx480(), PowerConfig::gtx480(),
                            /*threads=*/1);
    ExperimentRunner parallel(GpuConfig::gtx480(), PowerConfig::gtx480(),
                              /*threads=*/4);
    const auto spec = policies::equalizer(EqualizerMode::Performance);
    const auto s = serial.runByName("kmn", spec);
    const auto p = parallel.runByName("kmn", spec);
    expectIdenticalMetrics(s.total, p.total);
}

TEST(ParallelDeterminismPerSm, PerSmStateMatchesSerialOracle)
{
    // Per-SM residency/stat state, not just GPU-level aggregates.
    KernelParams params = KernelZoo::byName("kmn").params;

    GpuTop serial_gpu;
    GpuTop parallel_gpu;
    ParallelExecutor exec(4);
    parallel_gpu.setParallelExecutor(&exec);
    ASSERT_EQ(parallel_gpu.simThreads(), 4);

    SyntheticKernel launch(params, 0);
    serial_gpu.runKernel(launch);
    parallel_gpu.runKernel(launch);

    ASSERT_EQ(serial_gpu.numSms(), parallel_gpu.numSms());
    for (int i = 0; i < serial_gpu.numSms(); ++i) {
        const auto &s = serial_gpu.sm(i);
        const auto &p = parallel_gpu.sm(i);
        EXPECT_EQ(s.cycle(), p.cycle());
        EXPECT_EQ(s.instructionsIssued(), p.instructionsIssued());
        EXPECT_EQ(s.activeCycles(), p.activeCycles());
        EXPECT_EQ(s.blocksCompleted(), p.blocksCompleted());
        EXPECT_EQ(s.l1().hits(), p.l1().hits());
        EXPECT_EQ(s.l1().misses(), p.l1().misses());
        EXPECT_EQ(s.l1().writes(), p.l1().writes());
    }
}

// --- Epoch-barrier ordering of the staged SM->L2 queues ---------------

/**
 * The per-SM injection queues are the staging buffers of the parallel
 * phase: SMs push into their own queue concurrently, and the memory
 * system drains them at the barrier in fixed round-robin SM order. The
 * drain order therefore must depend only on queue contents, never on
 * the order in which different SMs staged their requests.
 */
TEST(StagedInjectQueues, BarrierDrainOrderIgnoresStagingOrder)
{
    const MemConfig cfg = MemConfig::gtx480();
    const int num_sms = 4;
    EnergyModel e1, e2;
    MemorySystem forward(cfg, num_sms, e1);
    MemorySystem reverse(cfg, num_sms, e2);

    // All requests target partition 0; the address encodes the SM.
    auto addr_of = [&cfg](int sm) {
        return static_cast<Addr>(sm) * lineBytes *
               static_cast<Addr>(cfg.numPartitions);
    };
    for (int sm = 0; sm < num_sms; ++sm)
        forward.smInjectQueue(sm).push(
            MemAccess{addr_of(sm), sm, 0, false, false});
    for (int sm = num_sms - 1; sm >= 0; --sm)
        reverse.smInjectQueue(sm).push(
            MemAccess{addr_of(sm), sm, 0, false, false});

    // One barrier drain (one memory tick) moves them — bandwidth
    // permitting — into the partition input queue.
    forward.tick(1);
    reverse.tick(1);

    std::vector<SmId> forward_order, reverse_order;
    const Cycle late = 1 + cfg.nocRequestLatency + 1;
    while (auto a = forward.partition(0).input().popReady(late))
        forward_order.push_back(a->sm);
    while (auto a = reverse.partition(0).input().popReady(late))
        reverse_order.push_back(a->sm);

    ASSERT_FALSE(forward_order.empty());
    EXPECT_EQ(forward_order, reverse_order);
    // Fixed arbitration: ascending SM order on the first barrier.
    for (std::size_t i = 1; i < forward_order.size(); ++i)
        EXPECT_LT(forward_order[i - 1], forward_order[i]);
}

TEST(StagedInjectQueues, BackPressureIsIdenticalAcrossModes)
{
    // Overfill one SM's staging queue; the bounded capacity (the
    // back-pressure signal Equalizer's X_mem counter observes) must be
    // enforced identically however the queue was filled.
    const MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    MemorySystem ms(cfg, 1, energy);
    auto &q = ms.smInjectQueue(0);
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < cfg.smInjectQueueCap + 3; ++i) {
        if (q.push(MemAccess{static_cast<Addr>(i) * lineBytes, 0, 0,
                             false, false}))
            ++accepted;
    }
    EXPECT_EQ(accepted, cfg.smInjectQueueCap);
    EXPECT_TRUE(q.full());
}

} // namespace
} // namespace equalizer
