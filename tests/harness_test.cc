/**
 * @file
 * Tests for the experiment harness: metrics math, policies, the runner
 * and the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/policies.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"

namespace equalizer
{
namespace
{

// ----------------------------------------------------------------- math

TEST(HarnessMath, SpeedupAndEnergyHelpers)
{
    RunMetrics base;
    base.seconds = 2.0;
    base.dynamicJoules = 6.0;
    base.staticJoules = 4.0;
    RunMetrics fast;
    fast.seconds = 1.0;
    fast.dynamicJoules = 8.0;
    fast.staticJoules = 3.0;
    EXPECT_DOUBLE_EQ(speedupOver(base, fast), 2.0);
    EXPECT_DOUBLE_EQ(energyEfficiencyOver(base, fast), 10.0 / 11.0);
    EXPECT_NEAR(energyIncreaseOver(base, fast), 0.1, 1e-12);
}

TEST(HarnessMath, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(HarnessMath, MetricsAccumulate)
{
    RunMetrics a;
    a.seconds = 1.0;
    a.smCycles = 100;
    a.instructions = 10;
    a.l1Hits = 5;
    RunMetrics b = a;
    a += b;
    EXPECT_DOUBLE_EQ(a.seconds, 2.0);
    EXPECT_EQ(a.smCycles, 200u);
    EXPECT_EQ(a.instructions, 20u);
    EXPECT_EQ(a.l1Hits, 10u);
}

// ------------------------------------------------------------- policies

TEST(Policies, NamesAreStable)
{
    EXPECT_EQ(policies::baseline().name, "baseline");
    EXPECT_EQ(policies::smHigh().name, "sm-high");
    EXPECT_EQ(policies::smLow().name, "sm-low");
    EXPECT_EQ(policies::memHigh().name, "mem-high");
    EXPECT_EQ(policies::memLow().name, "mem-low");
    EXPECT_EQ(policies::staticBlocks(3).name, "blocks-3");
    EXPECT_EQ(policies::equalizer(EqualizerMode::Performance).name,
              "equalizer-perf");
    EXPECT_EQ(policies::equalizer(EqualizerMode::Energy).name,
              "equalizer-energy");
    EXPECT_EQ(policies::dynCta().name, "dyncta");
    EXPECT_EQ(policies::ccws().name, "ccws");
}

TEST(Policies, BaselineBuildsNoController)
{
    EXPECT_EQ(policies::baseline().build(), nullptr);
}

TEST(Policies, NonBaselineBuildsController)
{
    auto c = policies::equalizer(EqualizerMode::Energy).build();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), "equalizer-energy");
}

// ---------------------------------------------------------------- runner

TEST(Runner, RunsAllInvocationsOfAKernel)
{
    // A downscaled bfs-2 keeps this test quick but multi-invocation.
    KernelParams p = KernelZoo::byName("bfs-2").params;
    p.totalBlocks = 15;
    p.instrsPerWarp = 60;
    ExperimentRunner runner;
    const auto result = runner.run(p, policies::baseline());
    EXPECT_EQ(result.invocations.size(), 12u);
    double sum = 0.0;
    for (const auto &inv : result.invocations)
        sum += inv.seconds;
    EXPECT_NEAR(result.total.seconds, sum, 1e-12);
}

TEST(Runner, CacheReturnsIdenticalResults)
{
    KernelParams p = KernelZoo::byName("sgemm").params;
    p.totalBlocks = 12;
    p.instrsPerWarp = 100;
    p.name = "sgemm-mini";
    ExperimentRunner runner;
    const auto a = runner.run(p, policies::baseline());
    const auto b = runner.run(p, policies::baseline());
    EXPECT_EQ(a.total.smCycles, b.total.smCycles);
    EXPECT_DOUBLE_EQ(a.total.dynamicJoules, b.total.dynamicJoules);
}

TEST(Runner, InstrumentHookReceivesGpuAndController)
{
    KernelParams p = KernelZoo::byName("sgemm").params;
    p.totalBlocks = 12;
    p.instrsPerWarp = 100;
    p.name = "sgemm-mini2";
    ExperimentRunner runner;
    bool saw_gpu = false;
    bool controller_null = true;
    runner.run(p, policies::dynCta(),
               [&](GpuTop &gpu, GpuController *ctrl) {
                   saw_gpu = gpu.numSms() > 0;
                   controller_null = ctrl == nullptr;
               });
    EXPECT_TRUE(saw_gpu);
    EXPECT_FALSE(controller_null);
}

TEST(Runner, RunByNameResolvesRosterEntries)
{
    ExperimentRunner runner;
    GpuConfig tiny = GpuConfig::gtx480();
    ExperimentRunner small(tiny);
    // Just resolve; use the smallest kernel for speed.
    const auto result = small.runByName("histo-2", policies::baseline());
    EXPECT_EQ(result.kernel, "histo-2");
    EXPECT_GT(result.total.smCycles, 0u);
}

// ---------------------------------------------------------------- report

TEST(Report, FmtAndPct)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(pct(0.1234, 1), "12.3%");
}

TEST(Report, TableAlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(ReportDeath, MismatchedRowPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "cells");
}

} // namespace
} // namespace equalizer
