/**
 * @file
 * Tests for the request-serving frontend (docs/SERVING.md): arrival
 * determinism and trace round-trips, the structural runtime predictor,
 * dispatcher-policy behaviour (fcfs order, sjf reordering, preemptive
 * eviction), thread-count determinism of a whole serve() run, the
 * latency-percentile math, and the sm_limit= knob boundary semantics.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "harness/co_run.hh"
#include "kernels/kernel_zoo.hh"
#include "serve/arrival.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{
namespace
{

/** A small mixed-kernel Poisson spec used across the tests. */
ArrivalSpec
smallSpec()
{
    ArrivalSpec spec;
    spec.count = 40;
    spec.ratePerMcycle = 100.0;
    spec.seed = 42;
    spec.mix = {{"sgemm", 1}, {"bp-1", 0}};
    return spec;
}

bool
sameRequests(const std::vector<ServeRequest> &a,
             const std::vector<ServeRequest> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].kernel != b[i].kernel ||
            a[i].priority != b[i].priority ||
            a[i].arrivalCycle != b[i].arrivalCycle ||
            a[i].sloCycles != b[i].sloCycles)
            return false;
    return true;
}

// --- Arrival processes -------------------------------------------------

TEST(Arrival, PoissonScheduleIsAPureFunctionOfTheSpec)
{
    const auto a = generateArrivals(smallSpec());
    const auto b = generateArrivals(smallSpec());
    ASSERT_EQ(a.size(), 40u);
    EXPECT_TRUE(sameRequests(a, b));

    // Sorted by arrival, ids dense in arrival order, gaps >= 1 cycle.
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int>(i));
        if (i > 0) {
            EXPECT_GE(a[i].arrivalCycle, a[i - 1].arrivalCycle + 1);
        }
    }
    // The mix's priorities ride along with the picked kernel.
    for (const auto &r : a)
        EXPECT_EQ(r.priority, r.kernel == "sgemm" ? 1 : 0);
}

TEST(Arrival, DifferentSeedsGiveDifferentSchedules)
{
    ArrivalSpec other = smallSpec();
    other.seed = 43;
    EXPECT_FALSE(sameRequests(generateArrivals(smallSpec()),
                              generateArrivals(other)));
}

TEST(Arrival, TraceRoundTripPreservesEveryField)
{
    ArrivalSpec spec = smallSpec();
    spec.sloCycles = 123456;
    const auto a = generateArrivals(spec);
    const std::string path =
        ::testing::TempDir() + "eq_serve_trace_test.txt";
    writeRequestTrace(path, a);
    EXPECT_TRUE(sameRequests(a, readRequestTrace(path)));
}

TEST(ArrivalDeath, MalformedTraceLineIsFatal)
{
    const std::string path =
        ::testing::TempDir() + "eq_serve_bad_trace.txt";
    writeRequestTrace(path, {});
    {
        std::ofstream os(path, std::ios::app);
        os << "100 sgemm not-a-priority 0\n";
    }
    EXPECT_EXIT(readRequestTrace(path), ::testing::ExitedWithCode(1),
                "request trace");
}

TEST(ArrivalDeath, EmptyMixAndBadRateAreFatal)
{
    EXPECT_EXIT(
        {
            ArrivalSpec spec;
            generateArrivals(spec);
        },
        ::testing::ExitedWithCode(1), "empty kernel mix");
    EXPECT_EXIT(
        {
            ArrivalSpec spec = smallSpec();
            spec.ratePerMcycle = 0.0;
            generateArrivals(spec);
        },
        ::testing::ExitedWithCode(1), "rate must be positive");
    EXPECT_EXIT(arrivalKindFromString("bursty"),
                ::testing::ExitedWithCode(1), "unknown arrival kind");
}

TEST(Arrival, KindAndPolicyNamesRoundTrip)
{
    EXPECT_EQ(arrivalKindFromString(toString(ArrivalKind::Poisson)),
              ArrivalKind::Poisson);
    EXPECT_EQ(arrivalKindFromString(toString(ArrivalKind::Replay)),
              ArrivalKind::Replay);
    for (const ServePolicy p :
         {ServePolicy::Fcfs, ServePolicy::Sjf, ServePolicy::Preempt})
        EXPECT_EQ(servePolicyFromString(toString(p)), p);
    EXPECT_EXIT(servePolicyFromString("lifo"),
                ::testing::ExitedWithCode(1), "unknown serve policy");
}

// --- Runtime predictor -------------------------------------------------

TEST(Predictor, PriorRefinedByEwmaOfObservations)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    RuntimePredictor p(15, 0.4);
    const Cycle prior = p.prior(params);
    ASSERT_GT(prior, 0u);
    // Unseen kernel: the prediction IS the prior (ratio 1.0).
    EXPECT_EQ(p.predict(params), prior);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 1.0);

    // The first observation seeds the ratio directly...
    p.observe(params, prior * 2);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 2.0);
    // ...and later ones fold in with weight alpha.
    p.observe(params, prior);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 0.4 * 1.0 + 0.6 * 2.0);
}

TEST(Predictor, BiggerGridsGetBiggerPriors)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    KernelParams bigger = params;
    bigger.totalBlocks *= 4;
    RuntimePredictor p(15);
    EXPECT_GT(p.prior(bigger), p.prior(params));
}

// --- Percentile math ---------------------------------------------------

TEST(Percentile, NearestRankInclusive)
{
    EXPECT_EQ(latencyPercentile({}, 99.0), 0u);
    EXPECT_EQ(latencyPercentile({7}, 50.0), 7u);
    std::vector<Cycle> ten;
    for (Cycle v = 10; v <= 100; v += 10)
        ten.push_back(v);
    EXPECT_EQ(latencyPercentile(ten, 50.0), 50u);
    EXPECT_EQ(latencyPercentile(ten, 95.0), 100u);
    EXPECT_EQ(latencyPercentile(ten, 99.0), 100u);
    EXPECT_EQ(latencyPercentile(ten, 100.0), 100u);
    // 101 samples: p99 is the 2nd-worst, not the max.
    std::vector<Cycle> many;
    for (Cycle v = 1; v <= 101; ++v)
        many.push_back(v * 10);
    EXPECT_EQ(latencyPercentile(many, 99.0), 1000u);
}

// --- Kernel scaling ----------------------------------------------------

TEST(ScaleKernel, ShrinksWithFloorsAndDropsTheSchedule)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    const KernelParams scaled = scaleKernelParams(params, 0.25);
    EXPECT_LT(scaled.totalBlocks, params.totalBlocks);
    EXPECT_GE(scaled.totalBlocks, 1);
    EXPECT_GE(scaled.instrsPerWarp, 32);
    EXPECT_LE(scaled.longBlocks, scaled.totalBlocks);
    EXPECT_EQ(scaled.invocationCount(), 1);

    // scale >= 1 is the identity; tiny scales hit the floors.
    EXPECT_EQ(scaleKernelParams(params, 1.0).totalBlocks,
              params.totalBlocks);
    EXPECT_GE(scaleKernelParams(params, 1e-9).totalBlocks, 1);
    EXPECT_EXIT(scaleKernelParams(params, 0.0),
                ::testing::ExitedWithCode(1), "scale must be positive");
}

// --- Dispatcher policies ----------------------------------------------

/** Serve @p requests under @p policy on a fresh device. */
ServeReport
serveUnder(ServePolicy policy, const std::vector<ServeRequest> &requests,
           int threads = 1)
{
    std::unique_ptr<ParallelExecutor> exec;
    if (threads > 1)
        exec = std::make_unique<ParallelExecutor>(threads);
    GpuTop gpu;
    gpu.setParallelExecutor(exec.get());
    ServeOptions opts;
    opts.policy = policy;
    opts.kernelScale = 0.25;
    RequestServer server(gpu, opts);
    return server.serve(requests);
}

/** One long low-priority request, then two short urgent ones. */
std::vector<ServeRequest>
longThenShorts()
{
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 1, 1000, 0};
    reqs[2] = {2, "sgemm", 1, 1500, 0};
    return reqs;
}

TEST(ServePolicyBehaviour, FcfsRunsInArrivalOrder)
{
    const ServeReport rep = serveUnder(ServePolicy::Fcfs,
                                       longThenShorts());
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.preemptions, 0);
    // Head-of-line blocking: each start waits out the previous finish.
    EXPECT_GE(rep.records[1].startCycle, rep.records[0].completeCycle);
    EXPECT_GE(rep.records[2].startCycle, rep.records[1].completeCycle);
}

TEST(ServePolicyBehaviour, SjfPicksThePredictedShortFirst)
{
    // While the first long runs, a second long (earlier) and a short
    // (later) queue up; sjf serves the short first, fcfs would not.
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "prtcl-2", 0, 1000, 0};
    reqs[2] = {2, "sgemm", 0, 1500, 0};
    const ServeReport rep = serveUnder(ServePolicy::Sjf, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.preemptions, 0); // non-preemptive
    EXPECT_LT(rep.records[2].startCycle, rep.records[1].startCycle);
}

TEST(ServePolicyBehaviour, PreemptEvictsTheRunningLong)
{
    const ServeReport rep = serveUnder(ServePolicy::Preempt,
                                       longThenShorts());
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_GE(rep.records[0].preemptions, 1);
    EXPECT_GE(rep.summary.preemptions, 1);
    // The urgent shorts finish before the evicted long does.
    EXPECT_LT(rep.records[1].completeCycle, rep.records[0].completeCycle);
    EXPECT_LT(rep.records[2].completeCycle, rep.records[0].completeCycle);
    // The wall clock was charged the modeled save/restore costs.
    ServeOptions defaults;
    EXPECT_GE(rep.summary.wallCycles,
              rep.summary.executedCycles +
                  static_cast<Cycle>(rep.summary.preemptions) *
                      (defaults.preemptSaveCycles +
                       defaults.preemptRestoreCycles));
}

TEST(ServePolicyBehaviour, SloViolationsAreCounted)
{
    std::vector<ServeRequest> reqs = longThenShorts();
    reqs[1].sloCycles = 1; // impossible deadline
    const ServeReport rep = serveUnder(ServePolicy::Fcfs, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_TRUE(rep.records[1].sloViolated);
    EXPECT_EQ(rep.summary.sloViolations, 1);
    EXPECT_NEAR(rep.summary.sloViolationRate, 1.0 / 3.0, 1e-12);
}

/**
 * The serving determinism contract: a whole serve() run — every
 * per-request record and the summary — is identical across thread
 * counts, including runs that exercise preemption shelves.
 */
TEST(ServeDeterminism, ThreadCountsProduceIdenticalReports)
{
    ArrivalSpec spec = smallSpec();
    spec.count = 12;
    spec.ratePerMcycle = 150.0;
    spec.mix = {{"sgemm", 1}, {"prtcl-2", 0}};
    const auto requests = generateArrivals(spec);

    const ServeReport serial =
        serveUnder(ServePolicy::Preempt, requests, 1);
    const ServeReport parallel =
        serveUnder(ServePolicy::Preempt, requests, 4);
    ASSERT_EQ(serial.summary.completed, 12);
    EXPECT_GE(serial.summary.preemptions, 1)
        << "workload too tame to exercise the shelves";

    EXPECT_EQ(serial.summary.wallCycles, parallel.summary.wallCycles);
    EXPECT_EQ(serial.summary.preemptions, parallel.summary.preemptions);
    EXPECT_EQ(serial.summary.p99Latency, parallel.summary.p99Latency);
    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        const RequestRecord &a = serial.records[i];
        const RequestRecord &b = parallel.records[i];
        EXPECT_EQ(a.req.id, b.req.id);
        EXPECT_EQ(a.startCycle, b.startCycle);
        EXPECT_EQ(a.completeCycle, b.completeCycle);
        EXPECT_EQ(a.latencyCycles, b.latencyCycles);
        EXPECT_EQ(a.executedCycles, b.executedCycles);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.instructions, b.instructions);
    }
}

TEST(ServeDeath, BusyOrPartitionedDevicesAreRejected)
{
    EXPECT_EXIT(
        {
            GpuTop gpu;
            gpu.configureTenants({{"a", 0.5}, {"b", 0.5}},
                                 PartitionPolicy::RoundRobin);
            RequestServer server(gpu, ServeOptions{});
        },
        ::testing::ExitedWithCode(1), "partitioned into tenants");
    EXPECT_EXIT(
        {
            GpuTop gpu;
            ServeOptions opts;
            opts.quantumCycles = 0;
            RequestServer server(gpu, opts);
        },
        ::testing::ExitedWithCode(1), "quantum must be positive");
}

// --- sm_limit= knob boundaries (docs/MULTI_TENANT.md) ------------------

TEST(SmLimitKnob, BoundaryValuesAreExplicit)
{
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("1"), 1.0);
    // Above the whole partition: clamped to unlimited, not fatal.
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("1.5"), 1.0);
}

TEST(SmLimitKnobDeath, ZeroNegativeAndGarbageAreFatal)
{
    EXPECT_EXIT(parseSmLimitKnob("0"), ::testing::ExitedWithCode(1),
                "sm_limit=0 would starve the tenant");
    EXPECT_EXIT(parseSmLimitKnob("0.0"), ::testing::ExitedWithCode(1),
                "starve");
    EXPECT_EXIT(parseSmLimitKnob("-0.25"), ::testing::ExitedWithCode(1),
                "negative");
    EXPECT_EXIT(parseSmLimitKnob("half"), ::testing::ExitedWithCode(1),
                "not a number");
    EXPECT_EXIT(parseSmLimitKnob("0.5x"), ::testing::ExitedWithCode(1),
                "not a number");
}

} // namespace
} // namespace equalizer
