/**
 * @file
 * Tests for the request-serving frontend (docs/SERVING.md): arrival
 * determinism and trace round-trips, the structural runtime predictor,
 * dispatcher-policy behaviour (fcfs order, sjf reordering, edf/llf
 * deadline ordering, predictor-gated preemptive eviction), predictive
 * admission control, multi-device sharding, thread-count determinism
 * of a whole serve() run, the latency-percentile math, and the
 * sm_limit= knob boundary semantics.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "harness/co_run.hh"
#include "kernels/kernel_zoo.hh"
#include "serve/arrival.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "sim/parallel_executor.hh"

namespace equalizer
{
namespace
{

/** A small mixed-kernel Poisson spec used across the tests. */
ArrivalSpec
smallSpec()
{
    ArrivalSpec spec;
    spec.count = 40;
    spec.ratePerMcycle = 100.0;
    spec.seed = 42;
    spec.mix = {{"sgemm", 1}, {"bp-1", 0}};
    return spec;
}

bool
sameRequests(const std::vector<ServeRequest> &a,
             const std::vector<ServeRequest> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].kernel != b[i].kernel ||
            a[i].priority != b[i].priority ||
            a[i].arrivalCycle != b[i].arrivalCycle ||
            a[i].sloCycles != b[i].sloCycles)
            return false;
    return true;
}

// --- Arrival processes -------------------------------------------------

TEST(Arrival, PoissonScheduleIsAPureFunctionOfTheSpec)
{
    const auto a = generateArrivals(smallSpec());
    const auto b = generateArrivals(smallSpec());
    ASSERT_EQ(a.size(), 40u);
    EXPECT_TRUE(sameRequests(a, b));

    // Sorted by arrival, ids dense in arrival order, gaps >= 1 cycle.
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int>(i));
        if (i > 0) {
            EXPECT_GE(a[i].arrivalCycle, a[i - 1].arrivalCycle + 1);
        }
    }
    // The mix's priorities ride along with the picked kernel.
    for (const auto &r : a)
        EXPECT_EQ(r.priority, r.kernel == "sgemm" ? 1 : 0);
}

TEST(Arrival, DifferentSeedsGiveDifferentSchedules)
{
    ArrivalSpec other = smallSpec();
    other.seed = 43;
    EXPECT_FALSE(sameRequests(generateArrivals(smallSpec()),
                              generateArrivals(other)));
}

TEST(Arrival, TraceRoundTripPreservesEveryField)
{
    ArrivalSpec spec = smallSpec();
    spec.sloCycles = 123456;
    const auto a = generateArrivals(spec);
    const std::string path =
        ::testing::TempDir() + "eq_serve_trace_test.txt";
    writeRequestTrace(path, a);
    EXPECT_TRUE(sameRequests(a, readRequestTrace(path)));
}

TEST(ArrivalDeath, MalformedTraceLineIsFatal)
{
    const std::string path =
        ::testing::TempDir() + "eq_serve_bad_trace.txt";
    writeRequestTrace(path, {});
    {
        std::ofstream os(path, std::ios::app);
        os << "100 sgemm not-a-priority 0\n";
    }
    EXPECT_EXIT(readRequestTrace(path), ::testing::ExitedWithCode(1),
                "request trace");
}

TEST(ArrivalDeath, EmptyMixAndBadRateAreFatal)
{
    EXPECT_EXIT(
        {
            ArrivalSpec spec;
            generateArrivals(spec);
        },
        ::testing::ExitedWithCode(1), "empty kernel mix");
    EXPECT_EXIT(
        {
            ArrivalSpec spec = smallSpec();
            spec.ratePerMcycle = 0.0;
            generateArrivals(spec);
        },
        ::testing::ExitedWithCode(1), "rate must be positive");
    EXPECT_EXIT(arrivalKindFromString("bursty"),
                ::testing::ExitedWithCode(1), "unknown arrival kind");
}

TEST(Arrival, KindAndPolicyNamesRoundTrip)
{
    EXPECT_EQ(arrivalKindFromString(toString(ArrivalKind::Poisson)),
              ArrivalKind::Poisson);
    EXPECT_EQ(arrivalKindFromString(toString(ArrivalKind::Replay)),
              ArrivalKind::Replay);
    for (const ServePolicy p :
         {ServePolicy::Fcfs, ServePolicy::Sjf, ServePolicy::Edf,
          ServePolicy::Llf, ServePolicy::Preempt})
        EXPECT_EQ(servePolicyFromString(toString(p)), p);
    EXPECT_EXIT(servePolicyFromString("lifo"),
                ::testing::ExitedWithCode(1), "unknown serve policy");
    for (const AdmissionPolicy a :
         {AdmissionPolicy::None, AdmissionPolicy::Predictive})
        EXPECT_EQ(admissionPolicyFromString(toString(a)), a);
    EXPECT_EXIT(admissionPolicyFromString("oracle"),
                ::testing::ExitedWithCode(1),
                "unknown admission policy");
}

// --- Runtime predictor -------------------------------------------------

TEST(Predictor, PriorRefinedByEwmaOfObservations)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    RuntimePredictor p(15, 0.4);
    const Cycle prior = p.prior(params);
    ASSERT_GT(prior, 0u);
    // Unseen kernel: the prediction IS the prior (ratio 1.0).
    EXPECT_EQ(p.predict(params), prior);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 1.0);

    // The first observation seeds the ratio directly...
    p.observe(params, prior * 2);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 2.0);
    // ...and later ones fold in with weight alpha.
    p.observe(params, prior);
    EXPECT_DOUBLE_EQ(p.ratio(params.name), 0.4 * 1.0 + 0.6 * 2.0);
}

TEST(Predictor, BiggerGridsGetBiggerPriors)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    KernelParams bigger = params;
    bigger.totalBlocks *= 4;
    RuntimePredictor p(15);
    EXPECT_GT(p.prior(bigger), p.prior(params));
}

TEST(Predictor, LongBlockCriticalPathFloorsThePrior)
{
    // prtcl-2's single 25x block is a serial critical path: the prior
    // must be at least that chain, not just waves x work-per-wave.
    const KernelParams &prtcl = KernelZoo::byName("prtcl-2").params;
    RuntimePredictor p(15);
    const double chain = static_cast<double>(prtcl.warpsPerBlock) *
                         static_cast<double>(prtcl.instrsPerWarp) *
                         prtcl.longBlockFactor * 2.0;
    EXPECT_GE(p.prior(prtcl), static_cast<Cycle>(chain));
    // Balanced kernels are unaffected by the floor.
    KernelParams balanced = prtcl;
    balanced.longBlocks = 0;
    EXPECT_LT(p.prior(balanced), p.prior(prtcl));
}

TEST(Predictor, RemainingSaturatesAtZero)
{
    EXPECT_EQ(predictedRemaining(100, 40), 60u);
    EXPECT_EQ(predictedRemaining(100, 100), 0u);
    // Prediction overtaken by reality: remaining clamps to 0 instead
    // of wrapping — the request just ranks as "nearly done".
    EXPECT_EQ(predictedRemaining(100, 150), 0u);
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    RuntimePredictor p(15);
    EXPECT_EQ(p.remaining(params, p.predict(params) + 12345), 0u);
    EXPECT_GT(p.remaining(params, 0), 0u);
}

// --- Percentile math ---------------------------------------------------

TEST(Percentile, NearestRankInclusive)
{
    EXPECT_EQ(latencyPercentile({}, 99.0), 0u);
    EXPECT_EQ(latencyPercentile({7}, 50.0), 7u);
    std::vector<Cycle> ten;
    for (Cycle v = 10; v <= 100; v += 10)
        ten.push_back(v);
    EXPECT_EQ(latencyPercentile(ten, 50.0), 50u);
    EXPECT_EQ(latencyPercentile(ten, 95.0), 100u);
    EXPECT_EQ(latencyPercentile(ten, 99.0), 100u);
    EXPECT_EQ(latencyPercentile(ten, 100.0), 100u);
    // 101 samples: p99 is the 2nd-worst, not the max.
    std::vector<Cycle> many;
    for (Cycle v = 1; v <= 101; ++v)
        many.push_back(v * 10);
    EXPECT_EQ(latencyPercentile(many, 99.0), 1000u);
}

TEST(Percentile, EdgeRanksAndBoundaries)
{
    // The extremes map to min and max, for any sample size.
    EXPECT_EQ(latencyPercentile({42}, 0.0), 42u);
    EXPECT_EQ(latencyPercentile({42}, 100.0), 42u);
    const std::vector<Cycle> four = {10, 20, 30, 40};
    EXPECT_EQ(latencyPercentile(four, 0.0), 10u);
    EXPECT_EQ(latencyPercentile(four, 100.0), 40u);
    // Exact-rank boundaries: nearest-rank is inclusive, so a pct that
    // lands exactly on rank k picks the k-th smallest, and one cycle
    // past it moves to the next.
    EXPECT_EQ(latencyPercentile(four, 25.0), 10u);
    EXPECT_EQ(latencyPercentile(four, 25.1), 20u);
    EXPECT_EQ(latencyPercentile(four, 50.0), 20u);
    EXPECT_EQ(latencyPercentile(four, 75.0), 30u);
    EXPECT_EQ(latencyPercentile(four, 75.1), 40u);
    // The input need not be pre-sorted.
    EXPECT_EQ(latencyPercentile({40, 10, 30, 20}, 50.0), 20u);
}

// --- Kernel scaling ----------------------------------------------------

TEST(ScaleKernel, ShrinksWithFloorsAndDropsTheSchedule)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    const KernelParams scaled = scaleKernelParams(params, 0.25);
    EXPECT_LT(scaled.totalBlocks, params.totalBlocks);
    EXPECT_GE(scaled.totalBlocks, 1);
    EXPECT_GE(scaled.instrsPerWarp, 32);
    EXPECT_LE(scaled.longBlocks, scaled.totalBlocks);
    EXPECT_EQ(scaled.invocationCount(), 1);

    // scale >= 1 keeps the grid; tiny scales hit the floors.
    EXPECT_EQ(scaleKernelParams(params, 1.0).totalBlocks,
              params.totalBlocks);
    EXPECT_GE(scaleKernelParams(params, 1e-9).totalBlocks, 1);
    EXPECT_EXIT(scaleKernelParams(params, 0.0),
                ::testing::ExitedWithCode(1), "scale must be positive");
}

/**
 * Regression: scale >= 1 used to return the params untouched, leaking
 * the application's multi-invocation schedule (and an unclamped
 * longBlocks) into what serve() treats as a single-grid request. The
 * schedule must be dropped at EVERY scale.
 */
TEST(ScaleKernel, FullScaleStillDropsTheInvocationSchedule)
{
    const KernelParams &params = KernelZoo::byName("bfs-2").params;
    ASSERT_GT(params.invocationCount(), 1); // the bug needs a schedule
    const KernelParams scaled = scaleKernelParams(params, 1.0);
    EXPECT_EQ(scaled.invocationCount(), 1);
    EXPECT_EQ(scaled.totalBlocks, params.totalBlocks);
    EXPECT_LE(scaled.longBlocks, scaled.totalBlocks);
}

/**
 * And end to end: a request served at serve_scale=1.0 executes exactly
 * the kernel's nominal grid — the same cycles a direct run of the
 * schedule-stripped params takes, not invocation 0 of the original
 * schedule (bfs-2's invocation 0 is scaled to 0.4 of the grid, so the
 * pre-fix behaviour is cycles-distinguishable).
 */
TEST(ScaleKernel, FullScaleServeMatchesTheNominalGrid)
{
    KernelParams stripped = KernelZoo::byName("bfs-2").params;
    stripped.invocations.clear();
    GpuTop reference;
    const SyntheticKernel nominal(stripped, 0);
    const RunMetrics direct = reference.runKernel(nominal);

    std::vector<ServeRequest> reqs(1);
    reqs[0] = {0, "bfs-2", 0, 0, 0};
    GpuTop gpu;
    ServeOptions opts;
    opts.kernelScale = 1.0;
    RequestServer server(gpu, opts);
    const ServeReport rep = server.serve(reqs);
    ASSERT_EQ(rep.summary.completed, 1);
    EXPECT_EQ(rep.records[0].executedCycles, direct.smCycles);
    EXPECT_EQ(rep.records[0].instructions, direct.instructions);
}

// --- Dispatcher policies ----------------------------------------------

/** Serve @p requests under @p policy on a fresh device. */
ServeReport
serveUnder(ServePolicy policy, const std::vector<ServeRequest> &requests,
           int threads = 1,
           AdmissionPolicy admission = AdmissionPolicy::None)
{
    std::unique_ptr<ParallelExecutor> exec;
    if (threads > 1)
        exec = std::make_unique<ParallelExecutor>(threads);
    GpuTop gpu;
    gpu.setParallelExecutor(exec.get());
    ServeOptions opts;
    opts.policy = policy;
    opts.admission = admission;
    opts.kernelScale = 0.25;
    RequestServer server(gpu, opts);
    return server.serve(requests);
}

/** One long low-priority request, then two short urgent ones. */
std::vector<ServeRequest>
longThenShorts()
{
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 1, 1000, 0};
    reqs[2] = {2, "sgemm", 1, 1500, 0};
    return reqs;
}

TEST(ServePolicyBehaviour, FcfsRunsInArrivalOrder)
{
    const ServeReport rep = serveUnder(ServePolicy::Fcfs,
                                       longThenShorts());
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.preemptions, 0);
    // Head-of-line blocking: each start waits out the previous finish.
    EXPECT_GE(rep.records[1].startCycle, rep.records[0].completeCycle);
    EXPECT_GE(rep.records[2].startCycle, rep.records[1].completeCycle);
}

TEST(ServePolicyBehaviour, SjfPicksThePredictedShortFirst)
{
    // While the first long runs, a second long (earlier) and a short
    // (later) queue up; sjf serves the short first, fcfs would not.
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "prtcl-2", 0, 1000, 0};
    reqs[2] = {2, "sgemm", 0, 1500, 0};
    const ServeReport rep = serveUnder(ServePolicy::Sjf, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.preemptions, 0); // non-preemptive
    EXPECT_LT(rep.records[2].startCycle, rep.records[1].startCycle);
}

TEST(ServePolicyBehaviour, PreemptEvictsTheRunningLong)
{
    const ServeReport rep = serveUnder(ServePolicy::Preempt,
                                       longThenShorts());
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_GE(rep.records[0].preemptions, 1);
    EXPECT_GE(rep.summary.preemptions, 1);
    // The urgent shorts finish before the evicted long does.
    EXPECT_LT(rep.records[1].completeCycle, rep.records[0].completeCycle);
    EXPECT_LT(rep.records[2].completeCycle, rep.records[0].completeCycle);
    // The wall clock was charged the modeled save/restore costs.
    ServeOptions defaults;
    EXPECT_GE(rep.summary.wallCycles,
              rep.summary.executedCycles +
                  static_cast<Cycle>(rep.summary.preemptions) *
                      (defaults.preemptSaveCycles +
                       defaults.preemptRestoreCycles));
}

TEST(ServePolicyBehaviour, PreemptionDeclinesWhenTheVictimIsNearlyDone)
{
    // A higher priority alone no longer evicts: the victim is the same
    // kernel as the challenger, so its predicted remaining can never
    // exceed the challenger's full service plus the save/restore round
    // trip — shelving would only add cost.
    std::vector<ServeRequest> reqs(2);
    reqs[0] = {0, "sgemm", 0, 0, 0};
    reqs[1] = {1, "sgemm", 5, 100, 0}; // more urgent, same length
    const ServeReport rep = serveUnder(ServePolicy::Preempt, reqs);
    ASSERT_EQ(rep.summary.completed, 2);
    EXPECT_EQ(rep.summary.preemptions, 0);
    EXPECT_GE(rep.records[1].startCycle, rep.records[0].completeCycle);
}

/**
 * Regression: an evicted request used to be pushed to the queue TAIL,
 * so it lost every later tie-break to requests admitted after it.
 * Here the evicted long A and a queued long B tie on priority once
 * the urgent short finishes; admission order says A resumes first.
 */
TEST(ServePolicyBehaviour, EvictedRequestKeepsItsAdmissionRank)
{
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};    // running, then evicted
    reqs[1] = {1, "prtcl-2", 0, 1000, 0}; // queued behind it
    reqs[2] = {2, "sgemm", 1, 1500, 0};   // the urgent evictor
    const ServeReport rep = serveUnder(ServePolicy::Preempt, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    ASSERT_GE(rep.records[0].preemptions, 1);
    // A resumes (and finishes) before B ever starts.
    EXPECT_GE(rep.records[1].startCycle, rep.records[0].completeCycle);
    EXPECT_LT(rep.records[0].completeCycle, rep.records[1].completeCycle);
}

TEST(ServePolicyBehaviour, EdfPicksTheEarliestDeadlineFirst)
{
    // While the long runs, an earlier deadline-free request and a
    // later deadline-carrying one queue up: edf serves the deadline
    // first and orders deadline-free requests last; fcfs would not.
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 0, 1000, 0};      // no deadline
    reqs[2] = {2, "sgemm", 0, 1500, 500000}; // deadline 501500
    const ServeReport rep = serveUnder(ServePolicy::Edf, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.preemptions, 0); // non-preemptive
    EXPECT_LT(rep.records[2].startCycle, rep.records[1].startCycle);
}

TEST(ServePolicyBehaviour, EdfBreaksEqualDeadlinesByAdmission)
{
    // Identical (arrival + slo) sums: edf degenerates to admission
    // order, so the tie-break must be first-admitted.
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 0, 1000, 70000}; // deadline 71000
    reqs[2] = {2, "sgemm", 0, 1200, 69800}; // deadline 71000 too
    const ServeReport rep = serveUnder(ServePolicy::Edf, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_LT(rep.records[1].startCycle, rep.records[2].startCycle);
}

TEST(ServePolicyBehaviour, LlfWeighsRemainingServiceIntoUrgency)
{
    // The sgemm's deadline is EARLIER, but the prtcl-2's predicted
    // service is so much longer that its laxity is smaller: edf and
    // llf disagree on exactly this pair.
    std::vector<ServeRequest> reqs(3);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 0, 1000, 200000};   // deadline 201000
    reqs[2] = {2, "prtcl-2", 0, 1100, 210000}; // deadline 211100
    const ServeReport edf = serveUnder(ServePolicy::Edf, reqs);
    ASSERT_EQ(edf.summary.completed, 3);
    EXPECT_LT(edf.records[1].startCycle, edf.records[2].startCycle);
    const ServeReport llf = serveUnder(ServePolicy::Llf, reqs);
    ASSERT_EQ(llf.summary.completed, 3);
    EXPECT_LT(llf.records[2].startCycle, llf.records[1].startCycle);
}

TEST(ServePolicyBehaviour, PredictiveAdmissionRejectsDoomedRequests)
{
    // The sgemm arrives behind a long-running prtcl-2 with a deadline
    // the predicted backlog already busts: predictive admission turns
    // it away at arrival (counted, not silently dropped); admission=
    // none serves it late instead.
    std::vector<ServeRequest> reqs(2);
    reqs[0] = {0, "prtcl-2", 0, 0, 0};
    reqs[1] = {1, "sgemm", 0, 1000, 5000}; // deadline 6000: hopeless
    const ServeReport rejecting =
        serveUnder(ServePolicy::Fcfs, reqs, 1,
                   AdmissionPolicy::Predictive);
    EXPECT_EQ(rejecting.summary.completed, 1);
    EXPECT_EQ(rejecting.summary.rejected, 1);
    EXPECT_NEAR(rejecting.summary.rejectionRate, 0.5, 1e-12);
    EXPECT_EQ(rejecting.summary.sloViolations, 0);
    EXPECT_TRUE(rejecting.records[1].rejected);
    EXPECT_FALSE(rejecting.records[1].completed);
    EXPECT_EQ(rejecting.records[1].executedCycles, 0u);

    const ServeReport admitting = serveUnder(ServePolicy::Fcfs, reqs);
    EXPECT_EQ(admitting.summary.completed, 2);
    EXPECT_EQ(admitting.summary.rejected, 0);
    EXPECT_TRUE(admitting.records[1].sloViolated);
}

TEST(ServePolicyBehaviour, AdmissionNeverRejectsDeadlineFreeRequests)
{
    std::vector<ServeRequest> reqs = longThenShorts(); // all slo = 0
    const ServeReport rep =
        serveUnder(ServePolicy::Fcfs, reqs, 1,
                   AdmissionPolicy::Predictive);
    EXPECT_EQ(rep.summary.completed, 3);
    EXPECT_EQ(rep.summary.rejected, 0);
}

TEST(ServePolicyBehaviour, SloViolationsAreCounted)
{
    std::vector<ServeRequest> reqs = longThenShorts();
    reqs[1].sloCycles = 1; // impossible deadline
    const ServeReport rep = serveUnder(ServePolicy::Fcfs, reqs);
    ASSERT_EQ(rep.summary.completed, 3);
    EXPECT_TRUE(rep.records[1].sloViolated);
    EXPECT_EQ(rep.summary.sloViolations, 1);
    EXPECT_NEAR(rep.summary.sloViolationRate, 1.0 / 3.0, 1e-12);
}

/**
 * The serving determinism contract: a whole serve() run — every
 * per-request record and the summary — is identical across thread
 * counts, including runs that exercise preemption shelves.
 */
TEST(ServeDeterminism, ThreadCountsProduceIdenticalReports)
{
    ArrivalSpec spec = smallSpec();
    spec.count = 12;
    spec.ratePerMcycle = 150.0;
    spec.mix = {{"sgemm", 1}, {"prtcl-2", 0}};
    const auto requests = generateArrivals(spec);

    const ServeReport serial =
        serveUnder(ServePolicy::Preempt, requests, 1);
    const ServeReport parallel =
        serveUnder(ServePolicy::Preempt, requests, 4);
    ASSERT_EQ(serial.summary.completed, 12);
    EXPECT_GE(serial.summary.preemptions, 1)
        << "workload too tame to exercise the shelves";

    EXPECT_EQ(serial.summary.wallCycles, parallel.summary.wallCycles);
    EXPECT_EQ(serial.summary.preemptions, parallel.summary.preemptions);
    EXPECT_EQ(serial.summary.p99Latency, parallel.summary.p99Latency);
    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        const RequestRecord &a = serial.records[i];
        const RequestRecord &b = parallel.records[i];
        EXPECT_EQ(a.req.id, b.req.id);
        EXPECT_EQ(a.startCycle, b.startCycle);
        EXPECT_EQ(a.completeCycle, b.completeCycle);
        EXPECT_EQ(a.latencyCycles, b.latencyCycles);
        EXPECT_EQ(a.executedCycles, b.executedCycles);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.instructions, b.instructions);
    }
}

TEST(ServeDeath, BusyOrPartitionedDevicesAreRejected)
{
    EXPECT_EXIT(
        {
            GpuTop gpu;
            gpu.configureTenants({{"a", 0.5}, {"b", 0.5}},
                                 PartitionPolicy::RoundRobin);
            RequestServer server(gpu, ServeOptions{});
        },
        ::testing::ExitedWithCode(1), "partitioned into tenants");
    EXPECT_EXIT(
        {
            GpuTop gpu;
            ServeOptions opts;
            opts.quantumCycles = 0;
            RequestServer server(gpu, opts);
        },
        ::testing::ExitedWithCode(1), "quantum must be positive");
}

// --- Multi-device serving ---------------------------------------------

/**
 * Serve @p requests across @p devices forked devices (device 0 cold,
 * the rest warm forks of it — the same construction eqsim uses).
 */
ServeReport
serveAcross(int devices, ServePolicy policy,
            const std::vector<ServeRequest> &requests, int threads = 1)
{
    std::unique_ptr<ParallelExecutor> exec;
    if (threads > 1)
        exec = std::make_unique<ParallelExecutor>(threads);
    std::vector<std::unique_ptr<GpuTop>> gpus;
    std::vector<GpuTop *> ptrs;
    for (int d = 0; d < devices; ++d) {
        gpus.push_back(std::make_unique<GpuTop>());
        if (d > 0)
            gpus.back()->forkFrom(*gpus.front());
        gpus.back()->setParallelExecutor(exec.get());
        ptrs.push_back(gpus.back().get());
    }
    ServeOptions opts;
    opts.policy = policy;
    opts.kernelScale = 0.25;
    RequestServer server(ptrs, opts);
    return server.serve(requests);
}

/** A burst of close arrivals that one device can only serialize. */
std::vector<ServeRequest>
burstOfEight()
{
    std::vector<ServeRequest> reqs(8);
    for (int i = 0; i < 8; ++i)
        reqs[i] = {i, i % 2 == 0 ? "sgemm" : "bp-1", 0,
                   static_cast<Cycle>(100 * i), 0};
    return reqs;
}

TEST(MultiDeviceServe, ShardsTheQueueAcrossBothDevices)
{
    const ServeReport rep =
        serveAcross(2, ServePolicy::Fcfs, burstOfEight());
    ASSERT_EQ(rep.summary.completed, 8);
    EXPECT_EQ(rep.summary.devices, 2);
    ASSERT_EQ(rep.deviceStats.size(), 2u);
    EXPECT_GT(rep.deviceStats[0].completed, 0);
    EXPECT_GT(rep.deviceStats[1].completed, 0);
    EXPECT_EQ(rep.deviceStats[0].completed + rep.deviceStats[1].completed,
              8);
    Cycle executed = 0;
    for (const auto &rec : rep.records) {
        EXPECT_TRUE(rec.device == 0 || rec.device == 1);
        executed += rec.executedCycles;
    }
    EXPECT_EQ(rep.deviceStats[0].executedCycles +
                  rep.deviceStats[1].executedCycles,
              executed);
}

TEST(MultiDeviceServe, TwoDevicesBeatOneOnWallClock)
{
    const ServeReport one =
        serveAcross(1, ServePolicy::Fcfs, burstOfEight());
    const ServeReport two =
        serveAcross(2, ServePolicy::Fcfs, burstOfEight());
    ASSERT_EQ(one.summary.completed, 8);
    ASSERT_EQ(two.summary.completed, 8);
    EXPECT_LT(two.summary.wallCycles, one.summary.wallCycles);
    EXPECT_GT(two.summary.throughputPerMcycle,
              one.summary.throughputPerMcycle);
}

TEST(MultiDeviceServe, ThreadCountsProduceIdenticalReports)
{
    const ServeReport serial =
        serveAcross(2, ServePolicy::Fcfs, burstOfEight(), 1);
    const ServeReport parallel =
        serveAcross(2, ServePolicy::Fcfs, burstOfEight(), 4);
    ASSERT_EQ(serial.records.size(), parallel.records.size());
    EXPECT_EQ(serial.summary.wallCycles, parallel.summary.wallCycles);
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        const RequestRecord &a = serial.records[i];
        const RequestRecord &b = parallel.records[i];
        EXPECT_EQ(a.device, b.device);
        EXPECT_EQ(a.startCycle, b.startCycle);
        EXPECT_EQ(a.completeCycle, b.completeCycle);
        EXPECT_EQ(a.executedCycles, b.executedCycles);
        EXPECT_EQ(a.instructions, b.instructions);
    }
    ASSERT_EQ(serial.deviceStats.size(), parallel.deviceStats.size());
    for (std::size_t k = 0; k < serial.deviceStats.size(); ++k) {
        EXPECT_EQ(serial.deviceStats[k].completed,
                  parallel.deviceStats[k].completed);
        EXPECT_EQ(serial.deviceStats[k].wallCycles,
                  parallel.deviceStats[k].wallCycles);
    }
}

TEST(MultiDeviceServeDeath, MismatchedOrRepeatedDevicesAreFatal)
{
    EXPECT_EXIT(
        {
            GpuTop gpu;
            RequestServer server({&gpu, &gpu}, ServeOptions{});
        },
        ::testing::ExitedWithCode(1), "repeats device");
    EXPECT_EXIT(
        {
            GpuConfig small = GpuConfig::gtx480();
            small.numSms = 4;
            GpuTop a;
            GpuTop b(small, PowerConfig::gtx480());
            RequestServer server({&a, &b}, ServeOptions{});
        },
        ::testing::ExitedWithCode(1), "identically sized");
    EXPECT_EXIT(RequestServer({}, ServeOptions{}),
                ::testing::ExitedWithCode(1), "at least one device");
}

// --- sm_limit= knob boundaries (docs/MULTI_TENANT.md) ------------------

TEST(SmLimitKnob, BoundaryValuesAreExplicit)
{
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("1"), 1.0);
    // Above the whole partition: clamped to unlimited, not fatal.
    EXPECT_DOUBLE_EQ(parseSmLimitKnob("1.5"), 1.0);
}

TEST(SmLimitKnobDeath, ZeroNegativeAndGarbageAreFatal)
{
    EXPECT_EXIT(parseSmLimitKnob("0"), ::testing::ExitedWithCode(1),
                "sm_limit=0 would starve the tenant");
    EXPECT_EXIT(parseSmLimitKnob("0.0"), ::testing::ExitedWithCode(1),
                "starve");
    EXPECT_EXIT(parseSmLimitKnob("-0.25"), ::testing::ExitedWithCode(1),
                "negative");
    EXPECT_EXIT(parseSmLimitKnob("half"), ::testing::ExitedWithCode(1),
                "not a number");
    EXPECT_EXIT(parseSmLimitKnob("0.5x"), ::testing::ExitedWithCode(1),
                "not a number");
}

} // namespace
} // namespace equalizer
