/**
 * @file
 * Deep-coverage tests for paths the module suites leave untouched:
 * L2 stall/writeback corners, memory-system fairness, SM issue gating
 * details, GTO greediness, and metric-merge arithmetic.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gpu/gpu_top.hh"
#include "mem/memory_system.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;
using testing::storeInst;

// ------------------------------------------------------------- L2 corners

TEST(L2Corners, HeadBlocksWhileDramQueueFull)
{
    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    L2Partition l2(cfg, 0, energy);
    Cycle now = 0;

    // Saturate the DRAM queue with distinct-row loads.
    const Addr stride = static_cast<Addr>(cfg.numPartitions) * lineBytes *
                        cfg.linesPerRow * cfg.banksPerPartition;
    int pushed = 0;
    while (!l2.input().full()) {
        MemAccess a;
        a.lineAddr = static_cast<Addr>(pushed++) * stride;
        l2.input().push(a, now);
    }
    // One cycle can move at most one request into DRAM; after enough
    // cycles the DRAM queue fills and the L2 input stops draining.
    for (int i = 0; i < 4; ++i)
        l2.tick(now++);
    const std::size_t drained_early = l2.input().size();
    for (int i = 0; i < 40; ++i)
        l2.tick(now++);
    // Still bounded: the input never drains faster than DRAM serves.
    EXPECT_GE(l2.input().size() + cfg.dramQueueCap + 1,
              static_cast<std::size_t>(pushed) - 8);
    EXPECT_LE(l2.input().size(), drained_early);
}

TEST(L2Corners, ResponsesPreserveFifoPerPartition)
{
    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    L2Partition l2(cfg, 0, energy);
    Cycle now = 0;

    // Warm two lines so both hit, then re-request in order.
    const Addr a = 0;
    const Addr b = static_cast<Addr>(cfg.numPartitions) * lineBytes;
    for (Addr line : {a, b}) {
        MemAccess acc;
        acc.lineAddr = line;
        l2.input().push(acc, now);
        for (int i = 0; i < 120; ++i) {
            l2.tick(now);
            l2.output().popReady(now);
            ++now;
        }
    }
    MemAccess first;
    first.lineAddr = a;
    first.warp = 1;
    MemAccess second;
    second.lineAddr = b;
    second.warp = 2;
    l2.input().push(first, now);
    l2.input().push(second, now);
    std::vector<WarpId> order;
    for (int i = 0; i < 120 && order.size() < 2; ++i) {
        l2.tick(now);
        while (auto r = l2.output().popReady(now))
            order.push_back(r->warp);
        ++now;
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

// ------------------------------------------------- memory-system fairness

TEST(MemFairness, RoundRobinServesAllSmsUnderContention)
{
    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    constexpr int num_sms = 4;
    MemorySystem mem(cfg, num_sms, energy);

    std::map<int, int> responses;
    Cycle now = 0;
    int seq = 0;
    for (int i = 0; i < 4000; ++i) {
        ++now;
        for (int s = 0; s < num_sms; ++s) {
            auto &q = mem.smInjectQueue(s);
            while (!q.full()) {
                MemAccess a;
                a.sm = s;
                a.lineAddr = static_cast<Addr>(seq++) * lineBytes;
                q.push(a);
            }
        }
        mem.tick(now);
        for (int s = 0; s < num_sms; ++s)
            responses[s] += static_cast<int>(
                mem.drainResponses(s, now, 100).size());
    }
    // Under saturation the per-SM FIFOs head-of-line block on whichever
    // partition is backed up, so service is uneven by design — but no
    // SM may starve outright.
    int lo = 1 << 30;
    for (auto &[s, n] : responses)
        lo = std::min(lo, n);
    EXPECT_GT(lo, 50);
}

// ----------------------------------------------------------- SM details

class SmDetail : public ::testing::Test
{
  protected:
    SmDetail()
        : energy(PowerConfig::gtx480()), mem(cfg.mem, 1, energy),
          sm(cfg, 0, mem, energy)
    {
    }

    void
    step(int n = 1)
    {
        for (int i = 0; i < n; ++i) {
            ++memNow;
            mem.tick(memNow);
            sm.tick(memNow);
        }
    }

    GpuConfig cfg = GpuConfig::gtx480();
    EnergyModel energy;
    MemorySystem mem;
    StreamingMultiprocessor sm;
    Cycle memNow = 0;
};

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name = "t")
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

TEST_F(SmDetail, StoresDoNotCreatePendingLoads)
{
    ScriptedKernel k(info(1, 1, 1),
                     {storeInst(0x1000), aluInst(), aluInst()});
    sm.setKernel(&k);
    sm.assignBlock(0);
    step(3);
    EXPECT_EQ(sm.warp(0).pendingLoads, 0);
}

TEST_F(SmDetail, DependentAluGatedByResultLatency)
{
    ScriptedKernel k(info(1, 1, 1), {aluInst(false), aluInst(true)});
    sm.setKernel(&k);
    sm.assignBlock(0);
    // First ALU issues on cycle 1; the dependent one must wait roughly
    // aluDepLatency (+/- the convoy-breaking jitter of 2).
    step(1);
    EXPECT_EQ(sm.instructionsIssued(), 1u);
    step(static_cast<int>(cfg.aluDepLatency) - 4);
    EXPECT_EQ(sm.instructionsIssued(), 1u);
    step(8);
    EXPECT_EQ(sm.instructionsIssued(), 2u);
}

TEST_F(SmDetail, ActiveCyclesCountOnlyResidentWork)
{
    ScriptedKernel k(info(1, 1, 1), {aluInst()});
    sm.setKernel(&k);
    step(5); // idle: nothing resident
    EXPECT_EQ(sm.activeCycles(), 0u);
    sm.assignBlock(0);
    step(3);
    EXPECT_GT(sm.activeCycles(), 0u);
}

TEST_F(SmDetail, GtoKeepsIssuingTheSameWarp)
{
    GpuConfig gto = cfg;
    gto.scheduler = SchedulerPolicy::GreedyThenOldest;
    StreamingMultiprocessor gto_sm(gto, 0, mem, energy);
    // Two warps with plenty of independent ALU work: under GTO the
    // greedy warp 0 should finish its stream well before warp 1 does.
    ScriptedKernel k(info(1, 2, 1), [](BlockId, int) {
        return std::vector<WarpInstruction>(100, aluInst());
    });
    gto_sm.setKernel(&k);
    gto_sm.assignBlock(0);
    for (int i = 0; i < 30; ++i) {
        ++memNow;
        mem.tick(memNow);
        gto_sm.tick(memNow);
    }
    // Both warps progressed (dual issue), but the SM stayed saturated.
    EXPECT_EQ(gto_sm.instructionsIssued(), 60u);
}

// --------------------------------------------------------- metric merges

TEST(MetricsMerge, PowerDownFractionIsTimeWeighted)
{
    RunMetrics a;
    a.memCycles = 100;
    a.dramPowerDownFraction = 1.0;
    RunMetrics b;
    b.memCycles = 300;
    b.dramPowerDownFraction = 0.0;
    a += b;
    EXPECT_EQ(a.memCycles, 400u);
    EXPECT_NEAR(a.dramPowerDownFraction, 0.25, 1e-12);
}

TEST(MetricsMerge, ResidencyArraysAddComponentwise)
{
    RunMetrics a;
    a.smResidency[0] = 10;
    a.smResidency[2] = 5;
    RunMetrics b;
    b.smResidency[0] = 1;
    b.smResidency[1] = 2;
    a += b;
    EXPECT_EQ(a.smResidency[0], 11u);
    EXPECT_EQ(a.smResidency[1], 2u);
    EXPECT_EQ(a.smResidency[2], 5u);
}

// ----------------------------------------------------- partition striping

TEST(Striping, ConsecutiveLinesCoverAllPartitions)
{
    MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    MemorySystem mem(cfg, 1, energy);
    std::set<std::uint64_t> partitions_hit;
    Cycle now = 0;
    for (int i = 0; i < cfg.numPartitions; ++i) {
        MemAccess a;
        a.lineAddr = static_cast<Addr>(i) * lineBytes;
        mem.smInjectQueue(0).push(a);
    }
    for (int i = 0; i < 400; ++i) {
        ++now;
        mem.tick(now);
        mem.drainResponses(0, now, 100);
    }
    for (int p = 0; p < cfg.numPartitions; ++p)
        if (mem.partition(p).dram().accesses() > 0)
            partitions_hit.insert(static_cast<std::uint64_t>(p));
    EXPECT_EQ(partitions_hit.size(),
              static_cast<std::size_t>(cfg.numPartitions));
}

} // namespace
} // namespace equalizer
