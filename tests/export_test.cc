/**
 * @file
 * Tests for the unified ExportSink API and the deprecated
 * MetricsExporter shim over it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/export.hh"

namespace equalizer
{
namespace
{

RunMetrics
sampleMetrics()
{
    RunMetrics m;
    m.seconds = 0.001;
    m.smCycles = 700000;
    m.memCycles = 924000;
    m.instructions = 1000000;
    m.dynamicJoules = 0.05;
    m.staticJoules = 0.06;
    m.l1Hits = 800;
    m.l1Misses = 200;
    m.outcomeTotals.active = 1000;
    m.outcomeTotals.waiting = 500;
    m.outcomeTotals.excessMem = 100;
    m.outcomeTotals.excessAlu = 200;
    m.smResidency[static_cast<int>(VfState::Normal)] = 1000;
    m.memResidency[static_cast<int>(VfState::Normal)] = 1000;
    return m;
}

TEST(Exporter, CsvHasHeaderAndOneLinePerRow)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"kmn", "baseline", -1, sampleMetrics()});
    ex.add(MetricsRow{"kmn", "equalizer-perf", 0, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    const std::string out = os.str();
    // Header + 2 rows = 3 newline-terminated lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    EXPECT_NE(out.find("kernel,policy,invocation"), std::string::npos);
    EXPECT_NE(out.find("kmn,baseline,-1"), std::string::npos);
    EXPECT_NE(out.find("kmn,equalizer-perf,0"), std::string::npos);
}

TEST(Exporter, CsvColumnCountsMatchHeader)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"a", "b", 1, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    std::istringstream is(os.str());
    std::string header;
    std::string row;
    std::getline(is, header);
    std::getline(is, row);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(header.begin(), header.end(), ',')) + 1,
              MetricsExporter::columns().size());
}

TEST(Exporter, JsonIsWellFormedish)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"lbm", "mem-high", -1, sampleMetrics()});
    std::ostringstream os;
    ex.writeJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.size() - 2], ']');
    EXPECT_NE(out.find("\"kernel\": \"lbm\""), std::string::npos);
    EXPECT_NE(out.find("\"ipc\": "), std::string::npos);
}

TEST(Exporter, AddResultExpandsInvocations)
{
    MetricsExporter ex;
    std::vector<RunMetrics> invs(3, sampleMetrics());
    ex.addResult("bfs-2", "baseline", sampleMetrics(), invs);
    EXPECT_EQ(ex.size(), 4u); // 3 invocations + total
    ex.clear();
    EXPECT_EQ(ex.size(), 0u);
}

TEST(Exporter, FractionsAreNormalized)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"x", "y", -1, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    // waiting_frac = 500/1000 = 0.5 must appear in the row.
    EXPECT_NE(os.str().find("0.5"), std::string::npos);
}

TEST(ExportSink, FormatNamesRoundTrip)
{
    EXPECT_EQ(exportFormatFromName("csv"), ExportFormat::Csv);
    EXPECT_EQ(exportFormatFromName("json"), ExportFormat::Json);
    EXPECT_EQ(exportFormatFromName("trace-event"),
              ExportFormat::TraceEvent);
    EXPECT_EQ(exportFormatFromName("trace_event"),
              ExportFormat::TraceEvent);
    for (auto f : {ExportFormat::Csv, ExportFormat::Json,
                   ExportFormat::TraceEvent})
        EXPECT_EQ(exportFormatFromName(exportFormatName(f)), f);
}

TEST(ExportSink, FormatInferredFromPathSuffix)
{
    const auto fb = ExportFormat::Csv;
    EXPECT_EQ(exportFormatForPath("a/b.csv", fb), ExportFormat::Csv);
    EXPECT_EQ(exportFormatForPath("out.json", fb), ExportFormat::Json);
    EXPECT_EQ(exportFormatForPath("run.trace.json", fb),
              ExportFormat::TraceEvent);
    EXPECT_EQ(exportFormatForPath("plain.txt", fb), fb);
    EXPECT_EQ(exportFormatForPath("", ExportFormat::Json),
              ExportFormat::Json);
}

TEST(ExportSink, UnknownFormatNameIsFatal)
{
    EXPECT_EXIT(exportFormatFromName("xml"), testing::ExitedWithCode(1),
                "unknown export format");
}

TEST(ExportSink, CsvCarriesMetaAsComments)
{
    ExportSink sink({"threads", "wall_seconds"});
    sink.meta("bench", ExportCell::str("parallel_scaling"));
    sink.meta("sms", ExportCell::integer(15));
    sink.row({ExportCell::integer(4), ExportCell::num(1.25)});
    std::ostringstream os;
    sink.write(os, ExportFormat::Csv);
    const std::string out = os.str();
    EXPECT_NE(out.find("# bench = parallel_scaling\n"),
              std::string::npos);
    EXPECT_NE(out.find("# sms = 15\n"), std::string::npos);
    EXPECT_NE(out.find("threads,wall_seconds\n"), std::string::npos);
    EXPECT_NE(out.find("4,1.25\n"), std::string::npos);
}

TEST(ExportSink, JsonObjectHasMetaAndRows)
{
    ExportSink sink({"name", "value"});
    sink.meta("kernel", ExportCell::str("sgemm"));
    sink.row({ExportCell::str("ipc"), ExportCell::num(0.75)});
    std::ostringstream os;
    sink.write(os, ExportFormat::Json);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"meta\": {\"kernel\": \"sgemm\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"rows\": ["), std::string::npos);
    EXPECT_NE(out.find("{\"name\": \"ipc\", \"value\": 0.75}"),
              std::string::npos);
}

TEST(ExportSink, MetaOverwritesExistingKey)
{
    ExportSink sink({"c"});
    sink.meta("k", ExportCell::str("old"));
    sink.meta("k", ExportCell::str("new"));
    std::ostringstream os;
    sink.write(os, ExportFormat::Json);
    EXPECT_EQ(os.str().find("old"), std::string::npos);
    EXPECT_NE(os.str().find("\"k\": \"new\""), std::string::npos);
}

TEST(ExportSink, RowArityMismatchIsFatal)
{
    ExportSink sink({"a", "b"});
    EXPECT_EXIT(sink.row({ExportCell::integer(1)}),
                testing::ExitedWithCode(1), "cells");
}

TEST(ExportSink, TraceEventFormatEmitsCounters)
{
    ExportSink sink({"point", "ipc"});
    sink.row({ExportCell::str("a"), ExportCell::num(0.5)});
    sink.row({ExportCell::str("b"), ExportCell::num(0.75)});
    std::ostringstream os;
    sink.write(os, ExportFormat::TraceEvent);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
    // One counter per numeric column per row, at ts = row index; the
    // quoted identity column is skipped.
    EXPECT_NE(out.find("\"ph\": \"C\", \"pid\": 0, \"tid\": 0, "
                       "\"ts\": 0, \"name\": \"ipc\", \"args\": "
                       "{\"value\": 0.5}"),
              std::string::npos);
    EXPECT_NE(out.find("\"ts\": 1, \"name\": \"ipc\", \"args\": "
                       "{\"value\": 0.75}"),
              std::string::npos);
    EXPECT_EQ(out.find("\"name\": \"point\""), std::string::npos);
}

TEST(ExportSink, JsonEscapesQuotesInStrings)
{
    ExportSink sink({"name"});
    sink.row({ExportCell::str("he said \"hi\"")});
    std::ostringstream os;
    sink.write(os, ExportFormat::Json);
    EXPECT_NE(os.str().find("he said \\\"hi\\\""), std::string::npos);
}

TEST(ExportSink, MetricsTableMatchesShimOutput)
{
    // The deprecated MetricsExporter must stay byte-identical to an
    // ExportSink metrics table without metadata.
    MetricsExporter shim;
    shim.add(MetricsRow{"kmn", "baseline", -1, sampleMetrics()});
    ExportSink sink = ExportSink::metricsTable();
    sink.addMetrics("kmn", "baseline", -1, sampleMetrics());

    std::ostringstream shim_csv, sink_csv;
    shim.writeCsv(shim_csv);
    sink.write(sink_csv, ExportFormat::Csv);
    EXPECT_EQ(shim_csv.str(), sink_csv.str());
}

} // namespace
} // namespace equalizer
