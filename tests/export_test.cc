/**
 * @file
 * Tests for the CSV/JSON metrics exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/export.hh"

namespace equalizer
{
namespace
{

RunMetrics
sampleMetrics()
{
    RunMetrics m;
    m.seconds = 0.001;
    m.smCycles = 700000;
    m.memCycles = 924000;
    m.instructions = 1000000;
    m.dynamicJoules = 0.05;
    m.staticJoules = 0.06;
    m.l1Hits = 800;
    m.l1Misses = 200;
    m.outcomeTotals.active = 1000;
    m.outcomeTotals.waiting = 500;
    m.outcomeTotals.excessMem = 100;
    m.outcomeTotals.excessAlu = 200;
    m.smResidency[static_cast<int>(VfState::Normal)] = 1000;
    m.memResidency[static_cast<int>(VfState::Normal)] = 1000;
    return m;
}

TEST(Exporter, CsvHasHeaderAndOneLinePerRow)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"kmn", "baseline", -1, sampleMetrics()});
    ex.add(MetricsRow{"kmn", "equalizer-perf", 0, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    const std::string out = os.str();
    // Header + 2 rows = 3 newline-terminated lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    EXPECT_NE(out.find("kernel,policy,invocation"), std::string::npos);
    EXPECT_NE(out.find("kmn,baseline,-1"), std::string::npos);
    EXPECT_NE(out.find("kmn,equalizer-perf,0"), std::string::npos);
}

TEST(Exporter, CsvColumnCountsMatchHeader)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"a", "b", 1, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    std::istringstream is(os.str());
    std::string header;
    std::string row;
    std::getline(is, header);
    std::getline(is, row);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(header.begin(), header.end(), ',')) + 1,
              MetricsExporter::columns().size());
}

TEST(Exporter, JsonIsWellFormedish)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"lbm", "mem-high", -1, sampleMetrics()});
    std::ostringstream os;
    ex.writeJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.size() - 2], ']');
    EXPECT_NE(out.find("\"kernel\": \"lbm\""), std::string::npos);
    EXPECT_NE(out.find("\"ipc\": "), std::string::npos);
}

TEST(Exporter, AddResultExpandsInvocations)
{
    MetricsExporter ex;
    std::vector<RunMetrics> invs(3, sampleMetrics());
    ex.addResult("bfs-2", "baseline", sampleMetrics(), invs);
    EXPECT_EQ(ex.size(), 4u); // 3 invocations + total
    ex.clear();
    EXPECT_EQ(ex.size(), 0u);
}

TEST(Exporter, FractionsAreNormalized)
{
    MetricsExporter ex;
    ex.add(MetricsRow{"x", "y", -1, sampleMetrics()});
    std::ostringstream os;
    ex.writeCsv(os);
    // waiting_frac = 500/1000 = 0.5 must appear in the row.
    EXPECT_NE(os.str().find("0.5"), std::string::npos);
}

} // namespace
} // namespace equalizer
