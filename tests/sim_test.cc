/**
 * @file
 * Unit tests for clock domains, VF states and the two-domain scheduler.
 */

#include <gtest/gtest.h>

#include "sim/clock_domain.hh"
#include "sim/two_domain.hh"
#include "sim/vf.hh"

namespace equalizer
{
namespace
{

// -------------------------------------------------------------------- VF

TEST(Vf, FrequencyScales)
{
    EXPECT_DOUBLE_EQ(frequencyScale(VfState::Normal), 1.0);
    EXPECT_DOUBLE_EQ(frequencyScale(VfState::High), 1.15);
    EXPECT_DOUBLE_EQ(frequencyScale(VfState::Low), 0.85);
}

TEST(Vf, VoltageTracksFrequencyLinearly)
{
    for (auto s : {VfState::Low, VfState::Normal, VfState::High})
        EXPECT_DOUBLE_EQ(voltageScale(s), frequencyScale(s));
}

TEST(Vf, StepsSaturate)
{
    EXPECT_EQ(stepUp(VfState::Low), VfState::Normal);
    EXPECT_EQ(stepUp(VfState::Normal), VfState::High);
    EXPECT_EQ(stepUp(VfState::High), VfState::High);
    EXPECT_EQ(stepDown(VfState::High), VfState::Normal);
    EXPECT_EQ(stepDown(VfState::Normal), VfState::Low);
    EXPECT_EQ(stepDown(VfState::Low), VfState::Low);
}

TEST(Vf, Names)
{
    EXPECT_STREQ(vfStateName(VfState::Low), "low");
    EXPECT_STREQ(vfStateName(VfState::Normal), "normal");
    EXPECT_STREQ(vfStateName(VfState::High), "high");
}

// ----------------------------------------------------------- ClockDomain

TEST(ClockDomain, PeriodMatchesFrequency)
{
    ClockDomain d("t", 1e9); // 1 GHz -> 1 ns = 1e6 fs
    EXPECT_EQ(d.period(), 1'000'000u);
    EXPECT_DOUBLE_EQ(d.frequencyHz(), 1e9);
}

TEST(ClockDomain, AdvanceCountsCyclesAndTime)
{
    ClockDomain d("t", 1e9);
    EXPECT_EQ(d.cycle(), 0u);
    EXPECT_EQ(d.advance(), 0u); // first edge at t=0
    EXPECT_EQ(d.cycle(), 1u);
    EXPECT_EQ(d.advance(), 1'000'000u);
    EXPECT_EQ(d.cycle(), 2u);
}

TEST(ClockDomain, HighStateShortensPeriod)
{
    ClockDomain d("t", 1e9);
    d.scheduleState(VfState::High, 0);
    d.advance(); // state applied at the first edge
    EXPECT_EQ(d.state(), VfState::High);
    const Tick expected = periodFromHz(1e9 * 1.15);
    EXPECT_EQ(d.period(), expected);
}

TEST(ClockDomain, TransitionWaitsForScheduledTick)
{
    ClockDomain d("t", 1e9);
    d.scheduleState(VfState::Low, 2'500'000); // between edges 2 and 3
    d.advance(); // t=0
    d.advance(); // t=1e6
    d.advance(); // t=2e6, still before 2.5e6
    EXPECT_EQ(d.state(), VfState::Normal);
    EXPECT_TRUE(d.transitionPending());
    d.advance(); // t=3e6 >= 2.5e6: applied
    EXPECT_EQ(d.state(), VfState::Low);
    EXPECT_FALSE(d.transitionPending());
}

TEST(ClockDomain, ResidencyAccruesPerState)
{
    ClockDomain d("t", 1e9);
    d.advance(); // t=0 (no elapsed time yet)
    d.advance(); // accrues 1e6 at Normal
    d.scheduleState(VfState::High, 0);
    d.advance(); // accrues 1e6 at Normal, then switches
    d.advance(); // accrues one High period
    EXPECT_EQ(d.residency(VfState::Normal), 2'000'000u);
    EXPECT_EQ(d.residency(VfState::High), periodFromHz(1.15e9));
    EXPECT_EQ(d.totalTime(),
              d.residency(VfState::Normal) + d.residency(VfState::High));
}

TEST(ClockDomain, LaterRequestReplacesPending)
{
    ClockDomain d("t", 1e9);
    d.scheduleState(VfState::High, 0);
    d.scheduleState(VfState::Low, 0);
    d.advance();
    EXPECT_EQ(d.state(), VfState::Low);
}

TEST(ClockDomain, ResetStatsKeepsState)
{
    ClockDomain d("t", 1e9);
    d.scheduleState(VfState::High, 0);
    d.advance();
    d.advance();
    d.resetStats();
    EXPECT_EQ(d.cycle(), 0u);
    EXPECT_EQ(d.totalTime(), 0u);
    EXPECT_EQ(d.state(), VfState::High);
}

TEST(ClockDomainDeath, RejectsNonPositiveFrequency)
{
    EXPECT_DEATH(ClockDomain("bad", 0.0), "positive frequency");
}

// ---------------------------------------------------- TwoDomainScheduler

TEST(TwoDomain, InterleavesByTime)
{
    ClockDomain sm("sm", 1e9);    // 1e6 fs period
    ClockDomain mem("mem", 2e9);  // 5e5 fs period
    TwoDomainScheduler sched(sm, mem);

    // Both start at t=0; memory wins ties.
    EXPECT_EQ(sched.step(), DomainKind::Memory); // t=0
    EXPECT_EQ(sched.step(), DomainKind::Sm);     // t=0
    EXPECT_EQ(sched.step(), DomainKind::Memory); // t=5e5
    EXPECT_EQ(sched.step(), DomainKind::Memory); // t=1e6 (tie -> mem)
    EXPECT_EQ(sched.step(), DomainKind::Sm);     // t=1e6
}

TEST(TwoDomain, FasterDomainTicksMoreOften)
{
    ClockDomain sm("sm", 700e6);
    ClockDomain mem("mem", 924e6);
    TwoDomainScheduler sched(sm, mem);
    for (int i = 0; i < 10000; ++i)
        sched.step();
    const double ratio = static_cast<double>(mem.cycle()) /
                         static_cast<double>(sm.cycle());
    EXPECT_NEAR(ratio, 924.0 / 700.0, 0.01);
}

} // namespace
} // namespace equalizer
