/**
 * @file
 * Unit tests for the per-SM L1 data cache.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/l1_cache.hh"

namespace equalizer
{
namespace
{

class L1CacheTest : public ::testing::Test
{
  protected:
    L1CacheTest()
        : queue(cfg.smInjectQueueCap), energy(PowerConfig::gtx480()),
          l1(cfg, /*sm=*/0, queue, energy)
    {
    }

    MemConfig cfg = MemConfig::gtx480();
    BoundedQueue<MemAccess> queue;
    EnergyModel energy;
    L1Cache l1;
};

TEST_F(L1CacheTest, ColdMissIssuesRequest)
{
    EXPECT_EQ(l1.access(0, 0x1000, false), L1Cache::Result::MissIssued);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.front().lineAddr, 0x1000u);
    EXPECT_FALSE(queue.front().write);
    EXPECT_EQ(l1.misses(), 1u);
}

TEST_F(L1CacheTest, SecondaryMissMergesWithoutTraffic)
{
    l1.access(0, 0x1000, false);
    EXPECT_EQ(l1.access(1, 0x1000, false), L1Cache::Result::MissMerged);
    EXPECT_EQ(queue.size(), 1u); // no extra downstream request
    EXPECT_EQ(l1.misses(), 2u);
}

TEST_F(L1CacheTest, FillWakesAllWaitersAndCachesLine)
{
    l1.access(0, 0x1000, false);
    l1.access(1, 0x1000, false);
    const auto waiters = l1.fill(0x1000);
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0], 0);
    EXPECT_EQ(waiters[1], 1);
    EXPECT_EQ(l1.access(2, 0x1000, false), L1Cache::Result::Hit);
    EXPECT_EQ(l1.hits(), 1u);
}

TEST_F(L1CacheTest, BlockedWhenMissQueueFull)
{
    // Fill the downstream queue with distinct lines.
    Addr a = 0;
    while (!queue.full()) {
        l1.access(0, a, false);
        a += 128;
    }
    EXPECT_EQ(l1.access(0, a, false), L1Cache::Result::Blocked);
    EXPECT_GT(l1.blocked(), 0u);
}

TEST_F(L1CacheTest, BlockedWhenMshrsExhausted)
{
    // MSHR capacity is smaller than what the queue alone would allow.
    MemConfig small = cfg;
    small.l1MshrEntries = 2;
    BoundedQueue<MemAccess> big_queue(64);
    L1Cache tiny(small, 0, big_queue, energy);
    EXPECT_EQ(tiny.access(0, 0 * 128, false), L1Cache::Result::MissIssued);
    EXPECT_EQ(tiny.access(0, 1 * 128, false), L1Cache::Result::MissIssued);
    EXPECT_EQ(tiny.access(0, 2 * 128, false), L1Cache::Result::Blocked);
}

TEST_F(L1CacheTest, MergeListFullBlocks)
{
    MemConfig small = cfg;
    small.l1MaxMerges = 2;
    BoundedQueue<MemAccess> big_queue(64);
    L1Cache tiny(small, 0, big_queue, energy);
    tiny.access(0, 0x1000, false);
    tiny.access(1, 0x1000, false);
    EXPECT_EQ(tiny.access(2, 0x1000, false), L1Cache::Result::Blocked);
}

TEST_F(L1CacheTest, StoresAreWriteThroughNoAllocate)
{
    EXPECT_EQ(l1.access(0, 0x2000, true), L1Cache::Result::Hit);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_TRUE(queue.front().write);
    // The store did not allocate: a subsequent load misses.
    EXPECT_EQ(l1.access(0, 0x2000, false), L1Cache::Result::MissIssued);
    EXPECT_EQ(l1.writes(), 1u);
}

TEST_F(L1CacheTest, StoreBlockedOnlyByQueueSpace)
{
    while (!queue.full())
        l1.access(0, 0x40000, true);
    EXPECT_EQ(l1.access(0, 0x40000, true), L1Cache::Result::Blocked);
}

TEST_F(L1CacheTest, EvictionHookSeesVictims)
{
    std::vector<std::pair<Addr, int>> evictions;
    l1.setEvictionHook([&evictions](Addr a, int owner) {
        evictions.emplace_back(a, owner);
    });
    // Fill one set (4 ways; same set every 64 lines): 5 lines to set 0.
    for (int i = 0; i < 5; ++i) {
        const Addr a = static_cast<Addr>(i) * 64 * 128;
        l1.access(static_cast<WarpId>(i), a, false);
        l1.fill(a);
    }
    ASSERT_EQ(evictions.size(), 1u);
    EXPECT_EQ(evictions[0].first, 0u);
    EXPECT_EQ(evictions[0].second, 0); // owner = requesting warp
}

TEST_F(L1CacheTest, MissHookFiresOnEveryLoadMiss)
{
    int miss_count = 0;
    l1.setMissHook([&miss_count](WarpId, Addr) { ++miss_count; });
    l1.access(0, 0x1000, false); // primary
    l1.access(1, 0x1000, false); // merged
    l1.fill(0x1000);
    l1.access(0, 0x1000, false); // hit: no callback
    EXPECT_EQ(miss_count, 2);
}

TEST_F(L1CacheTest, FlushDropsLinesAndMshrs)
{
    l1.access(0, 0x1000, false);
    l1.fill(0x1000);
    l1.flush();
    EXPECT_EQ(l1.access(0, 0x1000, false), L1Cache::Result::MissIssued);
    EXPECT_EQ(l1.mshrOutstanding(), 1);
}

TEST_F(L1CacheTest, HitRateComputation)
{
    l1.access(0, 0x1000, false);
    l1.fill(0x1000);
    l1.access(0, 0x1000, false);
    l1.access(0, 0x1000, false);
    EXPECT_NEAR(l1.hitRate(), 2.0 / 3.0, 1e-9);
}

TEST_F(L1CacheTest, EnergyEventsRecorded)
{
    const auto before = energy.eventCount(EnergyEvent::L1Access);
    l1.access(0, 0x1000, false);
    l1.access(0, 0x2000, true);
    EXPECT_EQ(energy.eventCount(EnergyEvent::L1Access), before + 2);
}

} // namespace
} // namespace equalizer
