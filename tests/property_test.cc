/**
 * @file
 * Cross-cutting property tests: conservation laws and invariants that
 * must hold for arbitrary traffic/workloads, swept with parameterized
 * gtest.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "equalizer/decision.hh"
#include "gpu/gpu_top.hh"
#include "mem/memory_system.hh"
#include "sim/clock_domain.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;
using testing::storeInst;
using testing::syncInst;

// -------------------------------------------- memory-request conservation

/**
 * Every load injected into the memory system comes back exactly once,
 * regardless of traffic pattern.
 */
class MemConservation : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemConservation, EveryLoadGetsExactlyOneResponse)
{
    const MemConfig cfg = MemConfig::gtx480();
    EnergyModel energy;
    constexpr int num_sms = 3;
    MemorySystem mem(cfg, num_sms, energy);
    Rng rng(GetParam());

    std::map<Addr, int> outstanding; // line -> pending responses
    int injected = 0;
    int returned = 0;
    Cycle now = 0;

    for (int step = 0; step < 6000; ++step) {
        ++now;
        // Random injection mix: loads, stores, hot/cold lines.
        if (injected < 600 && rng.chance(0.4)) {
            const int sm = static_cast<int>(rng.below(num_sms));
            auto &q = mem.smInjectQueue(sm);
            if (!q.full()) {
                MemAccess a;
                a.sm = sm;
                a.warp = static_cast<WarpId>(rng.below(48));
                a.write = rng.chance(0.25);
                // Cluster addresses so L2 hits, row hits and misses mix.
                a.lineAddr = rng.below(160) * lineBytes;
                if (q.push(a) && !a.write) {
                    ++injected;
                    ++outstanding[a.lineAddr];
                }
            }
        }
        mem.tick(now);
        for (int sm = 0; sm < num_sms; ++sm) {
            for (const auto &resp : mem.drainResponses(sm, now, 100)) {
                ASSERT_FALSE(resp.write);
                auto it = outstanding.find(resp.lineAddr);
                ASSERT_NE(it, outstanding.end())
                    << "unexpected response for " << resp.lineAddr;
                if (--it->second == 0)
                    outstanding.erase(it);
                ++returned;
            }
        }
    }
    // Drain fully.
    for (int extra = 0; extra < 5000 && returned < injected; ++extra) {
        ++now;
        mem.tick(now);
        for (int sm = 0; sm < num_sms; ++sm)
            returned +=
                static_cast<int>(mem.drainResponses(sm, now, 100).size());
    }
    EXPECT_EQ(returned, injected);
    EXPECT_TRUE(outstanding.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemConservation,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ------------------------------------------------ GPU liveness/accounting

/**
 * Random scripted kernels always run to completion, issue exactly the
 * number of instructions they contain, and leave no pending loads.
 */
class GpuLiveness : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GpuLiveness, RandomKernelsDrainCompletely)
{
    Rng rng(GetParam());
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 3;
    GpuTop gpu(cfg);

    const int wcta = 1 + static_cast<int>(rng.below(8));
    const int blocks = 4 + static_cast<int>(rng.below(12));
    const int len = 40 + static_cast<int>(rng.below(120));

    KernelInfo info;
    info.name = "random";
    info.totalBlocks = blocks;
    info.warpsPerBlock = wcta;
    info.maxBlocksPerSm = 1 + static_cast<int>(rng.below(8));

    const std::uint64_t kernel_seed = rng.next();
    auto make_script = [kernel_seed, len](BlockId b, int w) {
        Rng wr(kernel_seed ^ (static_cast<std::uint64_t>(b) << 20) ^
               static_cast<std::uint64_t>(w));
        std::vector<WarpInstruction> s;
        const Addr base =
            (static_cast<Addr>(b) * 64 + static_cast<Addr>(w)) << 22;
        for (int i = 0; i < len; ++i) {
            const double dice = wr.uniform();
            if (dice < 0.25) {
                s.push_back(loadInst(base + wr.below(64) * lineBytes));
            } else if (dice < 0.32) {
                s.push_back(storeInst(base + wr.below(64) * lineBytes));
            } else if (dice < 0.40) {
                s.push_back(loadUse());
            } else if (dice < 0.44) {
                s.push_back(syncInst());
            } else {
                s.push_back(aluInst(wr.chance(0.5)));
            }
        }
        return s;
    };
    ScriptedKernel k(info, make_script);

    // Barriers are consumed at release, never issued, so the expected
    // issue count excludes Sync instructions.
    std::uint64_t expected = 0;
    for (int b = 0; b < blocks; ++b)
        for (int w = 0; w < wcta; ++w)
            for (const auto &inst : make_script(b, w))
                expected += inst.op == OpClass::Sync ? 0 : 1;

    const RunMetrics m = gpu.runKernel(k, /*max_sm_cycles=*/3'000'000);
    EXPECT_EQ(m.instructions, expected);
    for (int s = 0; s < gpu.numSms(); ++s)
        EXPECT_TRUE(gpu.sm(s).idle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuLiveness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

// --------------------------------------------------- residency invariant

/** Residency always sums to elapsed time across random VF churn. */
class ResidencyConservation : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ResidencyConservation, ResidencySumsToElapsedTime)
{
    Rng rng(GetParam());
    ClockDomain d("t", 1e9);
    Tick last_edge = 0;
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(0.05)) {
            d.scheduleState(static_cast<VfState>(rng.below(3)),
                            d.nextEdge() + rng.below(5) * d.period());
        }
        last_edge = d.advance();
    }
    EXPECT_EQ(d.totalTime(), last_edge);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResidencyConservation,
                         ::testing::Values(101u, 202u, 303u));

// ------------------------------------------------------ decision algebra

/** The decision function is scale-consistent in its thresholds. */
class DecisionScale : public ::testing::TestWithParam<int>
{
};

TEST_P(DecisionScale, WctaBoundaryIsExact)
{
    const int wcta = GetParam();
    DecisionInputs in;
    in.wCta = wcta;
    in.numBlocks = 4;
    in.maxBlocks = 8;
    in.counters.nActive = 40;
    in.counters.nWaiting = 0;

    // Exactly W_cta is not enough; epsilon above is.
    in.counters.nMem = wcta;
    EXPECT_NE(decide(in).tendency, Tendency::MemoryHeavy);
    in.counters.nMem = wcta + 0.01;
    EXPECT_EQ(decide(in).tendency, Tendency::MemoryHeavy);

    in.counters.nMem = 0;
    in.counters.nAlu = wcta;
    EXPECT_NE(decide(in).tendency, Tendency::ComputeHeavy);
    in.counters.nAlu = wcta + 0.01;
    EXPECT_EQ(decide(in).tendency, Tendency::ComputeHeavy);
}

INSTANTIATE_TEST_SUITE_P(Wctas, DecisionScale,
                         ::testing::Values(2, 4, 6, 8, 16, 24));

// ----------------------------------------------------- energy monotonicity

/** More events never reduce energy; higher V never reduces per-event cost. */
TEST(EnergyMonotonicity, EnergyGrowsWithWorkAndVoltage)
{
    EnergyModel low;
    EnergyModel high;
    low.setDomainStates(VfState::Low, VfState::Low);
    high.setDomainStates(VfState::High, VfState::High);
    for (int i = 0; i < 100; ++i) {
        low.record(EnergyEvent::SmAluOp);
        high.record(EnergyEvent::SmAluOp);
        EXPECT_LT(low.dynamicJoules(), high.dynamicJoules());
    }
    const double before = low.dynamicJoules();
    low.record(EnergyEvent::DramAccess);
    EXPECT_GT(low.dynamicJoules(), before);
}

} // namespace
} // namespace equalizer
